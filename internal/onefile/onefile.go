// Package onefile reproduces the OneFile tool distributed with the Alberta
// Workloads: it combines a multiple-file mini-C program into a single
// compilation unit suitable as a 502.gcc_r workload. The challenges the
// paper lists are handled the same way: per-file preprocessing (so macro
// definitions stay file-local), tracking of file-scope `static` definitions,
// and name-mangling of those statics to avoid collisions between files.
package onefile

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/benchmarks/gcc/cc"
)

// SourceFile is one input translation unit.
type SourceFile struct {
	// Name is the file name; its stem becomes the mangling prefix.
	Name string
	// Content is the file's source text (may contain preprocessor
	// directives).
	Content string
}

// ErrCombine reports a merge failure.
var ErrCombine = errors.New("onefile: cannot combine")

// Combine merges the files into a single compilation unit. Static
// file-scope names are renamed to <stem>__<name>; non-static duplicate
// definitions across files are an error (the human-intervention case the
// paper mentions).
func Combine(files []SourceFile) (string, error) {
	if len(files) == 0 {
		return "", fmt.Errorf("%w: no input files", ErrCombine)
	}
	globalSeen := map[string]string{} // non-static name → file that defined it
	var out strings.Builder
	out.WriteString("/* combined by onefile */\n")

	for _, f := range files {
		pre, err := cc.Preprocess(f.Content)
		if err != nil {
			return "", fmt.Errorf("%w: %s: %v", ErrCombine, f.Name, err)
		}
		toks, err := cc.Lex(pre)
		if err != nil {
			return "", fmt.Errorf("%w: %s: %v", ErrCombine, f.Name, err)
		}
		statics, globals, err := topLevelNames(toks)
		if err != nil {
			return "", fmt.Errorf("%w: %s: %v", ErrCombine, f.Name, err)
		}
		for _, g := range globals {
			if prev, dup := globalSeen[g]; dup {
				return "", fmt.Errorf("%w: %q defined in both %s and %s (make one static or rename)",
					ErrCombine, g, prev, f.Name)
			}
			globalSeen[g] = f.Name
		}
		prefix := manglePrefix(f.Name)
		rename := map[string]string{}
		for _, s := range statics {
			rename[s] = prefix + "__" + s
		}
		fmt.Fprintf(&out, "/* ---- %s ---- */\n", f.Name)
		out.WriteString(render(toks, rename))
	}
	return out.String(), nil
}

// manglePrefix derives the mangling prefix from a file name.
func manglePrefix(name string) string {
	stem := name
	if i := strings.LastIndexByte(stem, '/'); i >= 0 {
		stem = stem[i+1:]
	}
	if i := strings.IndexByte(stem, '.'); i >= 0 {
		stem = stem[:i]
	}
	var sb strings.Builder
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "file"
	}
	return sb.String()
}

// topLevelNames scans the token stream for file-scope definitions,
// returning static names and non-static (external) names. main is never
// treated as static.
func topLevelNames(toks []cc.Token) (statics, globals []string, err error) {
	depth := 0
	i := 0
	for i < len(toks) && toks[i].Kind != cc.TokEOF {
		t := toks[i]
		if t.Kind == cc.TokPunct {
			switch t.Text {
			case "{":
				depth++
			case "}":
				depth--
				if depth < 0 {
					return nil, nil, fmt.Errorf("unbalanced braces at line %d", t.Line)
				}
			}
			i++
			continue
		}
		if depth == 0 && t.Kind == cc.TokKeyword && (t.Text == "static" || t.Text == "int" || t.Text == "void") {
			isStatic := false
			if t.Text == "static" {
				isStatic = true
				i++
				if i >= len(toks) || toks[i].Kind != cc.TokKeyword {
					return nil, nil, fmt.Errorf("static without type at line %d", t.Line)
				}
			}
			// Skip the type keyword.
			i++
			// Collect declarator names until ';' or the function body.
			for i < len(toks) && toks[i].Kind != cc.TokEOF {
				if toks[i].Kind == cc.TokIdent {
					name := toks[i].Text
					if name != "main" {
						if isStatic {
							statics = append(statics, name)
						} else {
							globals = append(globals, name)
						}
					}
					i++
					// A '(' means a function: record only the function
					// name, and skip the parameter list so parameter
					// declarations are not mistaken for globals.
					if i < len(toks) && toks[i].Kind == cc.TokPunct && toks[i].Text == "(" {
						parens := 0
						for i < len(toks) && toks[i].Kind != cc.TokEOF {
							if toks[i].Kind == cc.TokPunct {
								if toks[i].Text == "(" {
									parens++
								} else if toks[i].Text == ")" {
									parens--
									if parens == 0 {
										i++
										break
									}
								}
							}
							i++
						}
						break
					}
					// Skip past initializers/array sizes to ',' or ';'.
					for i < len(toks) && !(toks[i].Kind == cc.TokPunct && (toks[i].Text == "," || toks[i].Text == ";")) {
						i++
					}
					if i < len(toks) && toks[i].Text == "," {
						i++
						continue
					}
					break
				}
				i++
			}
			continue
		}
		i++
	}
	if depth != 0 {
		return nil, nil, errors.New("unbalanced braces at end of file")
	}
	return statics, globals, nil
}

// render emits the token stream back to source, applying renames. Spacing
// is canonical: identifiers/keywords/numbers separated by spaces, with
// newlines after ';' and braces for readability.
func render(toks []cc.Token, rename map[string]string) string {
	var sb strings.Builder
	prevNeedsSpace := false
	for _, t := range toks {
		if t.Kind == cc.TokEOF {
			break
		}
		text := t.Text
		if t.Kind == cc.TokIdent {
			if r, ok := rename[text]; ok {
				text = r
			}
		}
		wordLike := t.Kind == cc.TokIdent || t.Kind == cc.TokKeyword || t.Kind == cc.TokNumber
		if prevNeedsSpace && wordLike {
			sb.WriteByte(' ')
		} else if prevNeedsSpace {
			// Operators also need separation from preceding words and
			// from each other to avoid token fusion ("+ +" vs "++").
			sb.WriteByte(' ')
		}
		sb.WriteString(text)
		switch {
		case t.Kind == cc.TokPunct && (t.Text == ";" || t.Text == "{" || t.Text == "}"):
			sb.WriteByte('\n')
			prevNeedsSpace = false
		default:
			prevNeedsSpace = true
		}
	}
	return sb.String()
}
