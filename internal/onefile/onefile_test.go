package onefile

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/benchmarks/gcc/cc"
)

// runCombined compiles and runs a combined unit.
func runCombined(t *testing.T, files []SourceFile) cc.RunResult {
	t.Helper()
	combined, err := Combine(files)
	if err != nil {
		t.Fatalf("combine: %v", err)
	}
	unit, err := cc.CompileSource(combined, cc.O2, nil, nil)
	if err != nil {
		t.Fatalf("compile combined:\n%s\nerror: %v", combined, err)
	}
	res, err := cc.Run(unit, cc.VMOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestCombineTwoFiles(t *testing.T) {
	files := []SourceFile{
		{Name: "util.c", Content: `
int scale = 3;
int times(int x) { return x * scale; }
`},
		{Name: "main.c", Content: `
int main() { return times(7); }
`},
	}
	res := runCombined(t, files)
	if res.Return != 21 {
		t.Errorf("return = %d, want 21", res.Return)
	}
}

func TestCombineManglesStaticCollisions(t *testing.T) {
	// Both files define a static helper with the same name; the paper's
	// "name collisions between identifiers used in different files".
	files := []SourceFile{
		{Name: "a.c", Content: `
static int helper(int x) { return x + 1; }
int fromA(int x) { return helper(x); }
`},
		{Name: "b.c", Content: `
static int helper(int x) { return x * 10; }
int fromB(int x) { return helper(x); }
`},
		{Name: "main.c", Content: `
int main() { return fromA(5) + fromB(5); }
`},
	}
	res := runCombined(t, files)
	if res.Return != 56 {
		t.Errorf("return = %d, want 56 (6 + 50)", res.Return)
	}
}

func TestCombineManglesStaticGlobals(t *testing.T) {
	files := []SourceFile{
		{Name: "x.c", Content: `
static int counter = 100;
int getX() { counter += 1; return counter; }
`},
		{Name: "y.c", Content: `
static int counter = 200;
int getY() { counter += 1; return counter; }
`},
		{Name: "main.c", Content: `
int main() { return getX() + getY(); }
`},
	}
	res := runCombined(t, files)
	if res.Return != 302 {
		t.Errorf("return = %d, want 302", res.Return)
	}
}

func TestCombineRejectsNonStaticCollision(t *testing.T) {
	files := []SourceFile{
		{Name: "a.c", Content: `int shared() { return 1; }`},
		{Name: "b.c", Content: `int shared() { return 2; }`},
	}
	if _, err := Combine(files); !errors.Is(err, ErrCombine) {
		t.Errorf("err = %v, want ErrCombine", err)
	}
}

func TestCombinePreprocessesPerFile(t *testing.T) {
	// The same macro with different values in each file must stay
	// file-local (the paper's "preprocessing logic may produce wrong code
	// when simply concatenated").
	files := []SourceFile{
		{Name: "a.c", Content: "#define K 10\nint ka() { return K; }\n"},
		{Name: "b.c", Content: "#define K 20\nint kb() { return K; }\n"},
		{Name: "main.c", Content: "int main() { return ka() * 100 + kb(); }\n"},
	}
	res := runCombined(t, files)
	if res.Return != 1020 {
		t.Errorf("return = %d, want 1020", res.Return)
	}
}

func TestCombineEmptyInput(t *testing.T) {
	if _, err := Combine(nil); !errors.Is(err, ErrCombine) {
		t.Errorf("err = %v, want ErrCombine", err)
	}
}

func TestCombineBadSource(t *testing.T) {
	files := []SourceFile{{Name: "bad.c", Content: "int x = $;"}}
	if _, err := Combine(files); !errors.Is(err, ErrCombine) {
		t.Errorf("err = %v, want ErrCombine", err)
	}
}

func TestCombinedOutputMentionsOrigin(t *testing.T) {
	out, err := Combine([]SourceFile{{Name: "solo.c", Content: "int main() { return 0; }"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "solo.c") {
		t.Error("combined output should carry per-file markers")
	}
}

func TestManglePrefix(t *testing.T) {
	cases := map[string]string{
		"dir/a-b.c": "a_b",
		"x.c":       "x",
		"...":       "file",
	}
	for in, want := range cases {
		if got := manglePrefix(in); got != want {
			t.Errorf("manglePrefix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStaticArraysMangled(t *testing.T) {
	files := []SourceFile{
		{Name: "m1.c", Content: `
static int buf[8];
int putget1(int v) { buf[2] = v; return buf[2]; }
`},
		{Name: "m2.c", Content: `
static int buf[8];
int putget2(int v) { buf[2] = v + 1; return buf[2]; }
`},
		{Name: "main.c", Content: `int main() { return putget1(5) * 100 + putget2(5); }`},
	}
	res := runCombined(t, files)
	if res.Return != 506 {
		t.Errorf("return = %d, want 506", res.Return)
	}
}
