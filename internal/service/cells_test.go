package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness/report"
)

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, s *Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+id, "")
		switch st["state"] {
		case stateDone, stateFailed, stateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func cellCounts(t *testing.T, st map[string]any) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for k, v := range st["cells"].(map[string]any) {
		out[k] = v.(float64)
	}
	return out
}

// TestSingleFlight submits N identical jobs that all block on the same
// gated benchmark: every cell must execute exactly once, with the other
// jobs deduplicating onto the in-flight executions, and all N results
// must be byte-identical. Run under -race this also exercises the
// store's leader/waiter handoff.
func TestSingleFlight(t *testing.T) {
	bench := &countBench{name: "990.count_r", gate: make(chan struct{})}
	suite, err := core.NewSuite(bench)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Suite: suite, JobWorkers: 4, RunWorkers: 4, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)

	body := `{"benchmarks": ["990.count_r"], "config": {"reps": 1}, "sections": ["table2"]}`
	const jobs = 4
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		rec, doc := doJSON(t, s.Handler(), "POST", "/v1/jobs", body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d\n%s", i, rec.Code, rec.Body.String())
		}
		ids = append(ids, doc["id"].(string))
	}
	// Hold the gate until every flight is in position: 3 leaders (one per
	// cell, blocked inside the benchmark) and 9 waiters (the other three
	// jobs' cells, blocked on the in-flight entries). Nothing can resolve
	// while the gate is closed, so the counters must get there.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.cells.stats()
		if st.Misses == 3 && st.InflightWaits == 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flights never lined up: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(bench.gate)

	var local, deduped, cached float64
	var results []string
	for _, id := range ids {
		st := waitTerminal(t, s, id)
		if st["state"] != stateDone {
			t.Fatalf("job %s: %+v", id, st)
		}
		cc := cellCounts(t, st)
		local += cc["local"]
		deduped += cc["deduped"]
		cached += cc["cached"]
		rec, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+id+"/result", "")
		results = append(results, rec.Body.String())
	}

	// The heart of single-flight: 4 jobs × 3 cells, exactly 3 executions.
	if got := bench.runs.Load(); got != 3 {
		t.Errorf("benchmark ran %d times, want 3 (one per cell)", got)
	}
	if local != 3 {
		t.Errorf("local executions across jobs = %v, want 3", local)
	}
	if local+deduped+cached != float64(jobs*3) {
		t.Errorf("cell accounting: local %v + deduped %v + cached %v != %d", local, deduped, cached, jobs*3)
	}
	for i, r := range results[1:] {
		if r != results[0] {
			t.Errorf("result %d differs from result 0", i+1)
		}
	}

	var m Metrics
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Cells.LocalRuns != 3 || m.Cells.Misses != 3 {
		t.Errorf("cells = %+v", m.Cells)
	}
	if m.Cells.InflightWaits == 0 {
		t.Errorf("no inflight waits recorded across %d overlapping jobs: %+v", jobs, m.Cells)
	}
}

// TestCellDedupAcrossJobs is the acceptance scenario: job {A,B} then job
// {B,C} runs B's cells exactly once — the second job reads them from the
// cell cache and executes only C.
func TestCellDedupAcrossJobs(t *testing.T) {
	a := &countBench{name: "901.a_r"}
	b := &countBench{name: "902.b_r"}
	c := &countBench{name: "903.c_r"}
	s := newTestServer(t, a, b, c)

	_, st1 := submitAndWait(t, s, `{"benchmarks": ["901.a_r", "902.b_r"], "config": {"reps": 1}}`)
	if st1["state"] != stateDone {
		t.Fatalf("job 1: %+v", st1)
	}
	if a.runs.Load() != 3 || b.runs.Load() != 3 {
		t.Fatalf("job 1 runs: a=%d b=%d, want 3 each", a.runs.Load(), b.runs.Load())
	}

	_, st2 := submitAndWait(t, s, `{"benchmarks": ["902.b_r", "903.c_r"], "config": {"reps": 1}}`)
	if st2["state"] != stateDone {
		t.Fatalf("job 2: %+v", st2)
	}
	if got := b.runs.Load(); got != 3 {
		t.Errorf("B re-executed: %d runs, want 3", got)
	}
	if got := c.runs.Load(); got != 3 {
		t.Errorf("C ran %d times, want 3", got)
	}
	cc := cellCounts(t, st2)
	if cc["cached"] != 3 || cc["local"] != 3 {
		t.Errorf("job 2 cells = %v, want 3 cached (B) + 3 local (C)", cc)
	}
}

// TestPresentationOnlyChangeIsCacheHit pins the measurement/presentation
// split: a repeat request differing only in sections and figure2_top_n —
// and even one widening the matrix with include_test — reuses every
// already-measured cell.
func TestPresentationOnlyChangeIsCacheHit(t *testing.T) {
	bench := &countBench{name: "990.count_r"}
	s := newTestServer(t, bench)

	_, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}, "sections": ["table2"]}`)
	if st["state"] != stateDone {
		t.Fatalf("first job: %+v", st)
	}
	runs := bench.runs.Load()

	// Same measurements, different presentation: born done, zero runs.
	rec, st2 := doJSON(t, s.Handler(), "POST", "/v1/jobs",
		`{"benchmarks": ["990.count_r"], "config": {"reps": 1}, "sections": ["kernels", "figure1"], "figure2_top_n": 3}`)
	if rec.Code != http.StatusOK || st2["state"] != stateDone || st2["cached"] != true {
		t.Fatalf("section-only change missed the cache: %d %+v", rec.Code, st2)
	}
	if got := bench.runs.Load(); got != runs {
		t.Errorf("section-only change executed benchmarks: runs %d → %d", runs, got)
	}
	recR, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+st2["id"].(string)+"/result", "")
	env, err := report.Decode(recR.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if env.Table2 != nil || env.Kernels == nil || env.Figure1 == nil {
		t.Errorf("presentation not applied: table2=%v kernels=%v figure1=%v",
			env.Table2 != nil, env.Kernels != nil, env.Figure1 != nil)
	}

	// include_test widens the plan by one cell; the three measured cells
	// are reused and only the test workload executes.
	_, st3 := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1, "include_test": true}}`)
	if st3["state"] != stateDone {
		t.Fatalf("include_test job: %+v", st3)
	}
	if got := bench.runs.Load(); got != runs+1 {
		t.Errorf("include_test ran %d new cells, want 1", got-runs)
	}
	cc := cellCounts(t, st3)
	if cc["cached"] != 3 || cc["local"] != 1 {
		t.Errorf("include_test cells = %v, want 3 cached + 1 local", cc)
	}
}

// normalizeWall blanks the one nondeterministic envelope field so byte
// comparisons test everything else, exactly as scripts/serve-smoke.sh does.
var wallRe = regexp.MustCompile(`"wall_seconds": [0-9.eE+-]+`)

func normalizeWall(s string) string {
	return wallRe.ReplaceAllString(s, `"wall_seconds": 0`)
}

// twoWorkerCoordinator builds a coordinator backed by two worker daemons,
// each with its own suite of fresh benchmark instances.
func twoWorkerCoordinator(t *testing.T) (*Server, []*countBench) {
	t.Helper()
	var workerURLs []string
	var workerBenches []*countBench
	for i := 0; i < 2; i++ {
		wb := &countBench{name: "990.count_r"}
		suite, err := core.NewSuite(wb)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := NewServer(Config{Suite: suite, WorkerOnly: true, RunWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(ws.Handler())
		t.Cleanup(ts.Close)
		workerURLs = append(workerURLs, ts.URL)
		workerBenches = append(workerBenches, wb)
	}
	coordBench := &countBench{name: "990.count_r"}
	suite, err := core.NewSuite(coordBench)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewServer(Config{Suite: suite, JobWorkers: 1, RunWorkers: 1, Workers: workerURLs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Drain)
	return coord, append(workerBenches, coordBench)
}

// TestCoordinatorWorkerBitIdentity proves the merge-determinism claim:
// a coordinator sharding cells across two workers produces a report.Suite
// envelope byte-identical to a single-node run (wall_seconds normalized),
// and executes nothing locally while the fleet is healthy.
func TestCoordinatorWorkerBitIdentity(t *testing.T) {
	body := `{"benchmarks": ["990.count_r"], "config": {"reps": 2}, "sections": ["measurements", "table2", "kernels"]}`

	single := newTestServer(t, &countBench{name: "990.count_r"})
	idS, stS := submitAndWait(t, single, body)
	if stS["state"] != stateDone {
		t.Fatalf("single-node job: %+v", stS)
	}
	recS, _ := doJSON(t, single.Handler(), "GET", "/v1/jobs/"+idS+"/result", "")

	coord, benches := twoWorkerCoordinator(t)
	idC, stC := submitAndWait(t, coord, body)
	if stC["state"] != stateDone {
		t.Fatalf("coordinator job: %+v", stC)
	}
	cc := cellCounts(t, stC)
	if cc["remote"] != 3 || cc["local"] != 0 {
		t.Errorf("coordinator cells = %v, want 3 remote + 0 local", cc)
	}
	coordBench := benches[len(benches)-1]
	if coordBench.runs.Load() != 0 {
		t.Errorf("coordinator executed %d cells locally with a healthy fleet", coordBench.runs.Load())
	}
	if ran := benches[0].runs.Load() + benches[1].runs.Load(); ran != 6 {
		t.Errorf("workers ran %d times, want 6 (3 cells × 2 reps)", ran)
	}

	recC, _ := doJSON(t, coord.Handler(), "GET", "/v1/jobs/"+idC+"/result", "")
	if normalizeWall(recC.Body.String()) != normalizeWall(recS.Body.String()) {
		t.Error("coordinator envelope differs from single-node envelope (wall_seconds normalized)")
	}
}

// TestWorkerFailover: with every worker dead the coordinator falls back
// to local execution per cell; with one dead and one live worker the
// retry finds the live one and no cell runs locally.
func TestWorkerFailover(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	t.Run("all dead → local", func(t *testing.T) {
		bench := &countBench{name: "990.count_r"}
		suite, err := core.NewSuite(bench)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(Config{Suite: suite, Workers: []string{dead.URL}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Drain)
		_, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`)
		if st["state"] != stateDone {
			t.Fatalf("job: %+v", st)
		}
		if cc := cellCounts(t, st); cc["local"] != 3 || cc["remote"] != 0 {
			t.Errorf("cells = %v, want 3 local", cc)
		}
		if bench.runs.Load() != 3 {
			t.Errorf("local fallback ran %d times, want 3", bench.runs.Load())
		}
		if stats := s.cells.stats(); stats.RemoteFailovers != 3 || stats.RemoteErrors == 0 {
			t.Errorf("cells = %+v, want 3 failovers", stats)
		}
	})

	t.Run("one dead → retry next", func(t *testing.T) {
		wb := &countBench{name: "990.count_r"}
		wsuite, err := core.NewSuite(wb)
		if err != nil {
			t.Fatal(err)
		}
		worker, err := NewServer(Config{Suite: wsuite, WorkerOnly: true, RunWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		live := httptest.NewServer(worker.Handler())
		t.Cleanup(live.Close)

		bench := &countBench{name: "990.count_r"}
		suite, err := core.NewSuite(bench)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(Config{Suite: suite, Workers: []string{dead.URL, live.URL}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Drain)
		_, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`)
		if st["state"] != stateDone {
			t.Fatalf("job: %+v", st)
		}
		if cc := cellCounts(t, st); cc["remote"] != 3 || cc["local"] != 0 {
			t.Errorf("cells = %v, want 3 remote via the live worker", cc)
		}
		if bench.runs.Load() != 0 {
			t.Errorf("coordinator ran %d cells locally despite a live worker", bench.runs.Load())
		}
		if wb.runs.Load() != 3 {
			t.Errorf("live worker ran %d times, want 3", wb.runs.Load())
		}
	})
}

// TestWorkerMalformedResponse: a worker that answers 200 with a
// truncated or mismatched Measurement body must count as a remote error
// and fall through to local execution — and the garbage must never enter
// the cell store. The /metrics remote-error detail must name the cell
// key, benchmark/workload and attempt number, not just the worker.
func TestWorkerMalformedResponse(t *testing.T) {
	bodies := map[string]string{
		"truncated json":    `{"schema_version": 1, "measurement": {"benchmark": "990.`,
		"wrong measurement": `{"schema_version": 1, "measurement": {"benchmark": "990.count_r", "workload": "not-a-workload"}}`,
	}
	for name, body := range bodies {
		t.Run(name, func(t *testing.T) {
			bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(body))
			}))
			t.Cleanup(bad.Close)

			bench := &countBench{name: "990.count_r"}
			suite, err := core.NewSuite(bench)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewServer(Config{Suite: suite, Workers: []string{bad.URL}})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(s.Drain)

			_, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`)
			if st["state"] != stateDone {
				t.Fatalf("job: %+v", st)
			}
			if cc := cellCounts(t, st); cc["local"] != 3 || cc["remote"] != 0 {
				t.Errorf("cells = %v, want 3 local after malformed worker answers", cc)
			}
			if bench.runs.Load() != 3 {
				t.Errorf("local fallback ran %d times, want 3", bench.runs.Load())
			}
			stats := s.cells.stats()
			if stats.RemoteErrors != 3 || stats.RemoteFailovers != 3 {
				t.Errorf("remote_errors=%d remote_failovers=%d, want 3/3", stats.RemoteErrors, stats.RemoteFailovers)
			}
			if len(stats.RemoteErrorLog) != 3 {
				t.Fatalf("remote_error_log has %d entries, want 3: %v", len(stats.RemoteErrorLog), stats.RemoteErrorLog)
			}
			for _, entry := range stats.RemoteErrorLog {
				if !strings.HasPrefix(entry, "cell ") {
					t.Errorf("error detail does not lead with the cell key: %q", entry)
				}
				if !strings.Contains(entry, "990.count_r/") {
					t.Errorf("error detail missing benchmark/workload: %q", entry)
				}
				if !strings.Contains(entry, "attempt 1/1:") {
					t.Errorf("error detail missing attempt number: %q", entry)
				}
				if !strings.Contains(entry, "worker "+bad.URL) {
					t.Errorf("error detail missing the worker error: %q", entry)
				}
			}

			// The garbage must not have poisoned the store: the same job
			// resubmitted is born done from clean locally-run cells, with
			// zero additional executions and an identical envelope.
			rec1, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+jobID(t, st)+"/result", "")
			rec2, st2 := doJSON(t, s.Handler(), "POST", "/v1/jobs", `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`)
			if rec2.Code != http.StatusOK || st2["state"] != stateDone || st2["cached"] != true {
				t.Fatalf("resubmit not served from cache: code=%d %+v", rec2.Code, st2)
			}
			if bench.runs.Load() != 3 {
				t.Errorf("resubmit re-executed: %d runs", bench.runs.Load())
			}
			rec3, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+jobID(t, st2)+"/result", "")
			if rec1.Body.String() != rec3.Body.String() {
				t.Error("cached envelope differs from the original")
			}
		})
	}
}

func jobID(t *testing.T, st map[string]any) string {
	t.Helper()
	id, ok := st["id"].(string)
	if !ok || id == "" {
		t.Fatalf("status has no id: %+v", st)
	}
	return id
}

// TestCellExecuteEndpoint exercises the worker wire protocol directly.
func TestCellExecuteEndpoint(t *testing.T) {
	s := newTestServer(t)

	rec, doc := doJSON(t, s.Handler(), "POST", "/v1/cells:execute",
		`{"benchmark": "990.count_r", "workload": "train", "config": {"reps": 1}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("cells:execute = %d\n%s", rec.Code, rec.Body.String())
	}
	if doc["schema_version"] != float64(report.SchemaVersion) {
		t.Errorf("schema_version = %v", doc["schema_version"])
	}
	m := doc["measurement"].(map[string]any)
	if m["benchmark"] != "990.count_r" || m["workload"] != "train" || m["checksum"] == float64(0) {
		t.Errorf("measurement = %+v", m)
	}

	// Repeat: single-flight store serves the cached cell.
	doJSON(t, s.Handler(), "POST", "/v1/cells:execute",
		`{"benchmark": "990.count_r", "workload": "train", "config": {"reps": 1}}`)
	if st := s.cells.stats(); st.Hits != 1 || st.LocalRuns != 1 {
		t.Errorf("cells = %+v, want 1 hit and 1 local run", st)
	}

	for name, body := range map[string]string{
		"unknown benchmark": `{"benchmark": "999.ghost_r", "workload": "train", "config": {}}`,
		"unknown workload":  `{"benchmark": "990.count_r", "workload": "ghost", "config": {}}`,
		"negative reps":     `{"benchmark": "990.count_r", "workload": "train", "config": {"reps": -1}}`,
		"bad json":          `{`,
	} {
		if rec, _ := doJSON(t, s.Handler(), "POST", "/v1/cells:execute", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, rec.Code)
		}
	}
}

// TestCacheEndpoints covers GET /v1/cache introspection and DELETE
// /v1/cache flush-then-re-execute.
func TestCacheEndpoints(t *testing.T) {
	bench := &countBench{name: "990.count_r"}
	s := newTestServer(t, bench)
	body := `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`
	if _, st := submitAndWait(t, s, body); st["state"] != stateDone {
		t.Fatalf("job: %+v", st)
	}

	rec, doc := doJSON(t, s.Handler(), "GET", "/v1/cache", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/cache = %d", rec.Code)
	}
	cache := doc["cache"].(map[string]any)
	if cache["cells"] != float64(3) || cache["bytes"] == float64(0) {
		t.Errorf("cache = %+v", cache)
	}
	per := doc["per_benchmark"].([]any)
	if len(per) != 1 {
		t.Fatalf("per_benchmark = %+v", per)
	}
	if row := per[0].(map[string]any); row["benchmark"] != "990.count_r" || row["cells"] != float64(3) {
		t.Errorf("per_benchmark row = %+v", row)
	}

	rec, doc = doJSON(t, s.Handler(), "DELETE", "/v1/cache", "")
	if rec.Code != http.StatusOK || doc["flushed"] != float64(3) {
		t.Fatalf("DELETE /v1/cache = %d %+v", rec.Code, doc)
	}
	_, doc = doJSON(t, s.Handler(), "GET", "/v1/cache", "")
	if cache := doc["cache"].(map[string]any); cache["cells"] != float64(0) || cache["bytes"] != float64(0) {
		t.Errorf("cache after flush = %+v", cache)
	}

	// A repeat job after the flush re-executes every cell.
	if rec, _ := doJSON(t, s.Handler(), "POST", "/v1/jobs", body); rec.Code != http.StatusAccepted {
		t.Fatalf("post-flush submit = %d, want 202", rec.Code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for bench.runs.Load() != 6 {
		if time.Now().After(deadline) {
			t.Fatalf("post-flush job ran %d cells, want 3 more", bench.runs.Load()-3)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSampledCellKeyDistinct: a sampled cell and its exact twin must never
// alias in the cache — extrapolated counters differ from exact ones — and
// the sampled knobs (interval, phases) are part of the identity because
// they change the plan. The integration half proves it end to end: after
// an exact job resolves a cell, a sampled job for the same matrix point
// must execute, not hit the cache.
func TestSampledCellKeyDistinct(t *testing.T) {
	exact := report.RunConfig{Reps: 1, Stride: 1}
	sampled := report.RunConfig{Reps: 1, Stride: 1, Sampled: true, SampledInterval: 16 << 10, SampledPhases: 16}
	keys := map[string]string{
		"exact":    cellKey("b", "w", exact),
		"sampled":  cellKey("b", "w", sampled),
		"interval": cellKey("b", "w", report.RunConfig{Reps: 1, Stride: 1, Sampled: true, SampledInterval: 32 << 10, SampledPhases: 16}),
		"phases":   cellKey("b", "w", report.RunConfig{Reps: 1, Stride: 1, Sampled: true, SampledInterval: 16 << 10, SampledPhases: 8}),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("cell keys alias: %s == %s", name, prev)
		}
		seen[k] = name
	}

	bench := &countBench{name: "990.count_r"}
	s := newTestServer(t, bench)
	_, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`)
	if st["state"] != stateDone {
		t.Fatalf("exact job: %+v", st)
	}
	runs := bench.runs.Load()
	_, st2 := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1, "sampled": true}}`)
	if st2["state"] != stateDone {
		t.Fatalf("sampled job: %+v", st2)
	}
	if st2["cached"] == true {
		t.Fatal("sampled job must not resolve from exact cells")
	}
	if got := bench.runs.Load(); got == runs {
		t.Fatal("sampled job executed no benchmarks")
	}
	// Same sampled config again: now it is a pure cache hit.
	_, st3 := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1, "sampled": true}}`)
	if st3["state"] != stateDone || st3["cached"] != true {
		t.Fatalf("identical sampled job missed the cache: %+v", st3)
	}
}
