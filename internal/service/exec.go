package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/harness/report"
)

// cellOutcome classifies how one cell of a job was satisfied.
type cellOutcome int

const (
	// cellCached: the cell was already resolved in the store.
	cellCached cellOutcome = iota
	// cellDeduped: another flight was executing the cell; this caller
	// waited and shared its measurement.
	cellDeduped
	// cellLocal: this caller led the flight and executed locally.
	cellLocal
	// cellRemote: this caller led the flight and a worker daemon executed.
	cellRemote
)

// cellMeasurement resolves one cell with single-flight semantics: the
// first caller to reach a cold cell becomes the leader and executes it
// (remotely when workers are configured and allowRemote is set, locally
// otherwise); every concurrent caller blocks on that one execution and
// receives the identical measurement. A genuine execution failure is
// propagated to all waiters and the entry is dropped so a later request
// can retry; a leader canceled mid-flight (its client gave up) also drops
// the entry, but waiters then loop and re-acquire — one of them becomes
// the new leader, so one canceled job never poisons another's cells.
//
// onStart, when non-nil, fires once if this caller becomes the leader,
// just before execution begins — the hook jobs use to publish their
// per-cell start events (cached and deduped cells publish no start).
func (s *Server) cellMeasurement(ctx context.Context, c plannedCell, cfg report.RunConfig, allowRemote bool, onStart func()) (report.Measurement, cellOutcome, error) {
	waited := false
	for {
		e, acq := s.cells.acquire(c.key, c.bench.Name())
		switch acq {
		case acqResolved:
			out := cellCached
			if waited {
				out = cellDeduped
			}
			return e.m, out, nil
		case acqInflight:
			waited = true
			if err := e.wait(ctx); err != nil {
				return report.Measurement{}, 0, err
			}
			if e.err == nil {
				return e.m, cellDeduped, nil
			}
			if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				// The leader's context ended, not the cell itself: take
				// over by re-acquiring (the abandoned entry is gone).
				continue
			}
			return report.Measurement{}, 0, e.err
		default: // acqLeader
			if onStart != nil {
				onStart()
			}
			m, out, err := s.executeCell(ctx, c, cfg, allowRemote)
			if err != nil {
				s.cells.abandon(c.key, e, err)
				return report.Measurement{}, 0, err
			}
			s.cells.resolve(c.key, e, m, out)
			s.accountCell(m)
			return m, out, nil
		}
	}
}

// executeCell runs one cold cell as its flight leader: try the sharded
// worker fleet first (when configured), fall back to bounded local
// execution. Local runs take a slot of localSem, the server-wide bound on
// concurrent measurements (cmd/albertad's -parallel).
func (s *Server) executeCell(ctx context.Context, c plannedCell, cfg report.RunConfig, allowRemote bool) (report.Measurement, cellOutcome, error) {
	if allowRemote && len(s.cfg.Workers) > 0 {
		if m, ok := s.remoteCell(ctx, c, cfg); ok {
			return m, cellRemote, nil
		}
		if err := ctx.Err(); err != nil {
			return report.Measurement{}, 0, err
		}
		s.cells.noteFailover()
	}
	select {
	case s.localSem <- struct{}{}:
	case <-ctx.Done():
		return report.Measurement{}, 0, ctx.Err()
	}
	defer func() { <-s.localSem }()
	opts := harness.Options{
		Reps: cfg.Reps, Stride: cfg.Stride, Reference: cfg.Reference,
		Sampled: cfg.Sampled, SampledInterval: cfg.SampledInterval, SampledPhases: cfg.SampledPhases,
	}
	m, err := harness.RunWorkload(ctx, c.bench, c.w, opts)
	if err != nil {
		return report.Measurement{}, 0, err
	}
	return m, cellLocal, nil
}

// remoteCell tries to execute the cell on the worker fleet. The home
// worker is chosen by a stable hash of the cell key, so the same cell
// always lands on the same worker and its cell cache concentrates hits;
// on failure one more worker is tried before giving up (the caller then
// fails over to local execution). Concurrent remote calls are bounded by
// remoteSem (Config.RemoteFanout).
func (s *Server) remoteCell(ctx context.Context, c plannedCell, cfg report.RunConfig) (report.Measurement, bool) {
	select {
	case s.remoteSem <- struct{}{}:
	case <-ctx.Done():
		return report.Measurement{}, false
	}
	defer func() { <-s.remoteSem }()
	n := len(s.cfg.Workers)
	attempts := 2
	if attempts > n {
		attempts = n
	}
	home := shardIndex(c.key, n)
	for a := 0; a < attempts; a++ {
		if ctx.Err() != nil {
			return report.Measurement{}, false
		}
		base := s.cfg.Workers[(home+a)%n]
		m, err := s.executeOnWorker(ctx, base, c, cfg)
		if err == nil {
			return m, true
		}
		s.cells.noteRemoteError(fmt.Sprintf("cell %.12s %s/%s attempt %d/%d: %v",
			c.key, c.bench.Name(), c.w.WorkloadName(), a+1, attempts, err))
	}
	return report.Measurement{}, false
}

// shardIndex maps a cell key onto one of n workers, stably.
func shardIndex(key string, n int) int {
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32() % uint32(n))
}

// cellExecuteRequest is the body of POST /v1/cells:execute — the
// coordinator→worker wire format. Config rides the same report.RunConfig
// the public API uses; the worker re-normalizes and re-derives the cell
// key itself, so coordinator and worker cannot disagree on identity.
type cellExecuteRequest struct {
	Benchmark string           `json:"benchmark"`
	Workload  string           `json:"workload"`
	Config    report.RunConfig `json:"config"`
}

// cellExecuteResponse is the worker's answer: the measurement, verbatim.
// report.Measurement survives a JSON round trip bit-exactly (float64
// encodes shortest-round-trip, uint64 decodes from literal digits), which
// is what makes the coordinator's merged envelope byte-identical to a
// single-node run.
type cellExecuteResponse struct {
	SchemaVersion int                `json:"schema_version"`
	Measurement   report.Measurement `json:"measurement"`
}

// executeOnWorker runs one cell on one worker daemon.
func (s *Server) executeOnWorker(ctx context.Context, base string, c plannedCell, cfg report.RunConfig) (report.Measurement, error) {
	body, err := json.Marshal(cellExecuteRequest{
		Benchmark: c.bench.Name(),
		Workload:  c.w.WorkloadName(),
		Config:    cfg,
	})
	if err != nil {
		return report.Measurement{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cells:execute", bytes.NewReader(body))
	if err != nil {
		return report.Measurement{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return report.Measurement{}, fmt.Errorf("worker %s: %w", base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return report.Measurement{}, fmt.Errorf("worker %s: reading response: %w", base, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return report.Measurement{}, fmt.Errorf("worker %s: status %d: %s", base, resp.StatusCode, msg)
	}
	var out cellExecuteResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return report.Measurement{}, fmt.Errorf("worker %s: decoding response: %w", base, err)
	}
	if out.SchemaVersion != report.SchemaVersion {
		return report.Measurement{}, fmt.Errorf("worker %s: schema_version %d, want %d", base, out.SchemaVersion, report.SchemaVersion)
	}
	if out.Measurement.Benchmark != c.bench.Name() || out.Measurement.Workload != c.w.WorkloadName() {
		return report.Measurement{}, fmt.Errorf("worker %s: returned measurement for %s/%s, want %s/%s",
			base, out.Measurement.Benchmark, out.Measurement.Workload, c.bench.Name(), c.w.WorkloadName())
	}
	return out.Measurement, nil
}

// handleCellExecute is POST /v1/cells:execute — the worker side of the
// coordinator protocol. The cell is resolved through this server's own
// cell store, so a worker single-flights and caches exactly like a
// coordinator; allowRemote is false, so workers never forward (a
// misconfigured worker ring cannot loop a cell forever).
func (s *Server) handleCellExecute(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req cellExecuteRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	b, ok := s.cfg.Suite.Lookup(req.Benchmark)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Benchmark)
		return
	}
	// ResolveWorkload, not FindWorkload: sweep cells name generated
	// workloads that are in no inventory — a worker regenerates them from
	// the provenance in the name (core.Generator's contract), so a
	// coordinator can shard a sweep across the fleet like any other job.
	wl, err := core.ResolveWorkload(b, req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := harness.Options{
		Reps:            req.Config.Reps,
		Stride:          req.Config.Stride,
		Reference:       req.Config.Reference,
		Sampled:         req.Config.Sampled,
		SampledInterval: req.Config.SampledInterval,
		SampledPhases:   req.Config.SampledPhases,
	}.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := opts.ReportConfig()
	c := plannedCell{bench: b, w: wl, key: cellKey(b.Name(), wl.WorkloadName(), cfg)}
	m, _, err := s.cellMeasurement(r.Context(), c, cfg, false, nil)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing useful to write
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cellExecuteResponse{SchemaVersion: report.SchemaVersion, Measurement: m})
}

// accountCell folds one executed cell into the per-benchmark wall-time
// metrics. Cached and deduped cells are not re-counted: the metric is
// measured cost, not serving volume.
func (s *Server) accountCell(m report.Measurement) {
	s.statsMu.Lock()
	s.benchWall[m.Benchmark] += m.WallSeconds
	s.benchCells[m.Benchmark]++
	s.statsMu.Unlock()
}
