package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/leakcheck"
	"repro/internal/perf"
)

// TestMain gates the whole package on goroutine hygiene: every job
// worker, cell flight, SSE publisher and keep-alive connection spawned
// by any test must be gone once the run ends, or the package fails even
// with every test green. This is the executable form of the Drain
// contract.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}

// countBench is a tiny deterministic benchmark that counts Run calls, so
// tests can assert a cache hit executed zero measurements. With a gate it
// blocks until released, letting tests hold a job in the running state.
type countBench struct {
	name string
	runs atomic.Int64
	gate chan struct{}
}

func (b *countBench) Name() string { return b.name }
func (b *countBench) Area() string { return "testing" }
func (b *countBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{
		core.Meta{Name: "test", Kind: core.KindTest},
		core.Meta{Name: "train", Kind: core.KindTrain},
		core.Meta{Name: "refrate", Kind: core.KindRefrate},
		core.Meta{Name: "alberta.a", Kind: core.KindAlberta},
	}, nil
}

func (b *countBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	if b.gate != nil {
		<-b.gate
	}
	b.runs.Add(1)
	n := uint64(len(w.WorkloadName())) * 300
	p.Do("alpha", func() {
		for i := uint64(0); i < n; i++ {
			p.Ops(3)
			p.Branch(1, i%2 == 0)
			p.Load(i * 64 % (1 << 16))
		}
	})
	p.Do("beta", func() { p.Ops(n % 5000) })
	sum := core.NewChecksum().AddString(w.WorkloadName())
	return core.Result{
		Benchmark: b.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum.Value(),
	}, nil
}

func newTestServer(t *testing.T, benches ...core.Benchmark) *Server {
	t.Helper()
	if len(benches) == 0 {
		benches = []core.Benchmark{&countBench{name: "990.count_r"}}
	}
	suite, err := core.NewSuite(benches...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Suite: suite, JobWorkers: 1, RunWorkers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc map[string]any
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s %s: invalid JSON response: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec, doc
}

// submitAndWait posts a job and polls it to a terminal state.
func submitAndWait(t *testing.T, s *Server, body string) (id string, final map[string]any) {
	t.Helper()
	rec, doc := doJSON(t, s.Handler(), "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
		t.Fatalf("submit: %d\n%s", rec.Code, rec.Body.String())
	}
	id = doc["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+id, "")
		switch st["state"] {
		case stateDone, stateFailed, stateCanceled:
			return id, st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"nope": 1}`},
		{"unknown benchmark", `{"benchmarks": ["999.ghost_r"]}`},
		{"duplicate benchmark", `{"benchmarks": ["990.count_r", "990.count_r"]}`},
		{"negative reps", `{"config": {"reps": -1}}`},
		{"negative stride", `{"config": {"stride": -2}}`},
		{"unknown section", `{"sections": ["bogus"]}`},
		{"negative top n", `{"figure2_top_n": -1}`},
	}
	for _, tc := range cases {
		rec, doc := doJSON(t, s.Handler(), "POST", "/v1/jobs", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, rec.Code)
		}
		if doc["error"] == "" || doc["schema_version"] != float64(report.SchemaVersion) {
			t.Errorf("%s: error envelope = %v", tc.name, doc)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t)
	id, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}, "sections": ["table2"]}`)
	if st["state"] != stateDone {
		t.Fatalf("state = %v (error %v)", st["state"], st["error"])
	}
	if st["cached"] != false || st["completed"] != float64(3) || st["total"] != float64(3) {
		t.Errorf("status = %+v", st)
	}

	rec, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+id+"/result", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("result: %d\n%s", rec.Code, rec.Body.String())
	}
	env, err := report.Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Benchmarks) != 1 || env.Benchmarks[0] != "990.count_r" || env.Table2 == nil {
		t.Errorf("envelope = %+v", env)
	}
	if env.Config.Reps != 1 || env.Config.Stride != 1 {
		t.Errorf("config not normalized: %+v", env.Config)
	}

	// Unknown job id → 404 everywhere.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		if rec, _ := doJSON(t, s.Handler(), "GET", path, ""); rec.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, rec.Code)
		}
	}

	// The job list includes the job.
	_, list := doJSON(t, s.Handler(), "GET", "/v1/jobs", "")
	if jobs := list["jobs"].([]any); len(jobs) != 1 {
		t.Errorf("job list = %+v", list)
	}
}

func TestCacheHitBitIdentity(t *testing.T) {
	bench := &countBench{name: "990.count_r"}
	s := newTestServer(t, bench)
	body := `{"benchmarks": ["990.count_r"], "config": {"reps": 2}, "sections": ["measurements", "table2"]}`

	id1, st1 := submitAndWait(t, s, body)
	if st1["state"] != stateDone {
		t.Fatalf("first job: %+v", st1)
	}
	runsAfterFirst := bench.runs.Load()
	if runsAfterFirst == 0 {
		t.Fatal("first job executed no benchmarks")
	}
	rec1, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+id1+"/result", "")

	// Second identical request: answered 200 from cache, born done, zero
	// additional benchmark executions, byte-identical result.
	rec, st2 := doJSON(t, s.Handler(), "POST", "/v1/jobs", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("cache hit status = %d, want 200", rec.Code)
	}
	if st2["state"] != stateDone || st2["cached"] != true {
		t.Errorf("cached job status = %+v", st2)
	}
	if got := bench.runs.Load(); got != runsAfterFirst {
		t.Errorf("cache hit executed benchmarks: runs %d → %d", runsAfterFirst, got)
	}
	rec2, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+st2["id"].(string)+"/result", "")
	if rec1.Body.String() != rec2.Body.String() {
		t.Error("cache hit result is not byte-identical to the original")
	}

	// A different request misses the cache.
	if rec, _ := doJSON(t, s.Handler(), "POST", "/v1/jobs", `{"benchmarks": ["990.count_r"], "config": {"reps": 1}}`); rec.Code != http.StatusAccepted {
		t.Errorf("different config should miss the cache: %d", rec.Code)
	}
}

func TestSSEMonotonicCompleted(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, st := submitAndWait(t, s, `{"benchmarks": ["990.count_r"], "config": {"reps": 1}, "sections": ["table2"]}`)
	if st["state"] != stateDone {
		t.Fatalf("job: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // terminal job → stream ends by itself
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	var names []string
	for _, frame := range strings.Split(strings.TrimSpace(string(raw)), "\n\n") {
		lines := strings.SplitN(frame, "\n", 2)
		if len(lines) != 2 {
			t.Fatalf("malformed frame: %q", frame)
		}
		names = append(names, strings.TrimPrefix(lines[0], "event: "))
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(lines[1], "data: ")), &e); err != nil {
			t.Fatalf("frame data: %v in %q", err, frame)
		}
		events = append(events, e)
	}
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	// Completed is monotone non-decreasing across the whole stream and the
	// final frame is the terminal with Completed == Total (the pinned
	// harness Event contract, preserved over SSE).
	prev := -1
	for i, e := range events {
		if e.Completed < prev {
			t.Errorf("event %d: completed %d < %d", i, e.Completed, prev)
		}
		prev = e.Completed
	}
	last := events[len(events)-1]
	if names[len(names)-1] != "done" || last.Kind != "terminal" || last.State != stateDone {
		t.Errorf("terminal frame = %q %+v", names[len(names)-1], last)
	}
	if last.Completed != last.Total || last.Total != 3 {
		t.Errorf("terminal completed/total = %d/%d", last.Completed, last.Total)
	}
	// Every measurement produced exactly one start and one done event.
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	if counts["start"] != 3 || counts["done"] != 3 || counts["terminal"] != 1 {
		t.Errorf("event mix = %v", counts)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	blocker := &countBench{name: "990.count_r", gate: make(chan struct{})}
	s := newTestServer(t, blocker)

	// Job A occupies the single worker (its benchmark blocks on the gate).
	recA, docA := doJSON(t, s.Handler(), "POST", "/v1/jobs", `{"config": {"reps": 1}}`)
	if recA.Code != http.StatusAccepted {
		t.Fatalf("job A: %d", recA.Code)
	}
	// Job B sits in the queue behind it; different body → no cache overlap.
	recB, docB := doJSON(t, s.Handler(), "POST", "/v1/jobs", `{"config": {"reps": 2}}`)
	if recB.Code != http.StatusAccepted {
		t.Fatalf("job B: %d", recB.Code)
	}
	idB := docB["id"].(string)

	// Result of a non-done job → 409.
	if rec, _ := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+idB+"/result", ""); rec.Code != http.StatusConflict {
		t.Errorf("result of queued job = %d, want 409", rec.Code)
	}

	rec, st := doJSON(t, s.Handler(), "DELETE", "/v1/jobs/"+idB, "")
	if rec.Code != http.StatusOK || st["state"] != stateCanceled {
		t.Fatalf("cancel B: %d %+v", rec.Code, st)
	}
	// Canceling again → 409.
	if rec, _ := doJSON(t, s.Handler(), "DELETE", "/v1/jobs/"+idB, ""); rec.Code != http.StatusConflict {
		t.Errorf("double cancel = %d, want 409", rec.Code)
	}

	close(blocker.gate)
	idA := docA["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, st := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+idA, "")
		if st["state"] == stateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job A stuck: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The canceled job stayed canceled and never ran.
	_, stB := doJSON(t, s.Handler(), "GET", "/v1/jobs/"+idB, "")
	if stB["state"] != stateCanceled {
		t.Errorf("job B = %+v", stB)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s := newTestServer(t)
	_, st := submitAndWait(t, s, `{"config": {"reps": 1}}`)
	if st["state"] != stateDone {
		t.Fatalf("job: %+v", st)
	}
	s.Drain() // idempotent with the t.Cleanup drain
	rec, doc := doJSON(t, s.Handler(), "POST", "/v1/jobs", `{"config": {"reps": 3}}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", rec.Code)
	}
	if _, health := doJSON(t, s.Handler(), "GET", "/healthz", ""); health["draining"] != true {
		t.Errorf("healthz = %v", health)
	}
	_ = doc
}

func TestMetrics(t *testing.T) {
	s := newTestServer(t)
	body := `{"benchmarks": ["990.count_r"], "config": {"reps": 1}, "sections": ["table2"]}`
	if _, st := submitAndWait(t, s, body); st["state"] != stateDone {
		t.Fatalf("job: %+v", st)
	}
	doJSON(t, s.Handler(), "POST", "/v1/jobs", body) // cache hit

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var m Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.SchemaVersion != report.SchemaVersion {
		t.Errorf("schema_version = %d", m.SchemaVersion)
	}
	if m.Jobs.Done != 2 {
		t.Errorf("jobs = %+v", m.Jobs)
	}
	// First job: 3 cold cells (misses, local runs); repeat job: 3 cell
	// hits at submit time, born done.
	if m.Cells.Misses != 3 || m.Cells.Hits != 3 || m.Cells.Cells != 3 || m.Cells.LocalRuns != 3 {
		t.Errorf("cells = %+v", m.Cells)
	}
	if m.Cells.Bytes == 0 || m.Cells.HitRatio != 0.5 || m.Cells.Inflight != 0 {
		t.Errorf("cells = %+v", m.Cells)
	}
	if len(m.PerBenchmark) != 1 || m.PerBenchmark[0].Benchmark != "990.count_r" || m.PerBenchmark[0].Measurements != 3 {
		t.Errorf("per_benchmark = %+v", m.PerBenchmark)
	}
	if m.Mem.Allocs == 0 || m.Mem.Bytes == 0 {
		t.Errorf("mem deltas missing: %+v", m.Mem)
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	s := newTestServer(t)
	rec, doc := doJSON(t, s.Handler(), "GET", "/v1/benchmarks", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("benchmarks: %d", rec.Code)
	}
	bs := doc["benchmarks"].([]any)
	if len(bs) != 1 {
		t.Fatalf("benchmarks = %+v", bs)
	}
	b := bs[0].(map[string]any)
	if b["name"] != "990.count_r" || len(b["workloads"].([]any)) != 4 {
		t.Errorf("benchmark = %+v", b)
	}
}

func TestCellKey(t *testing.T) {
	base := report.RunConfig{Reps: 3, Stride: 1}
	k1 := cellKey("990.count_r", "train", base)
	if k2 := cellKey("990.count_r", "train", base); k2 != k1 {
		t.Error("equal inputs produced different keys")
	}

	// Everything that feeds the measurement changes the key.
	seen := map[string]bool{k1: true}
	c2 := base
	c2.Reps = 4
	c3 := base
	c3.Stride = 2
	c4 := base
	c4.Reference = true
	distinct := []string{
		cellKey("991.other_r", "train", base),
		cellKey("990.count_r", "refrate", base),
		cellKey("990.count_r", "train", c2),
		cellKey("990.count_r", "train", c3),
		cellKey("990.count_r", "train", c4),
	}
	for i, v := range distinct {
		if seen[v] {
			t.Errorf("variant %d collides with an earlier key", i)
		}
		seen[v] = true
	}

	// Matrix selection and presentation do not: include_test widens the
	// plan but never re-identifies a cell.
	c5 := base
	c5.IncludeTest = true
	if cellKey("990.count_r", "train", c5) != k1 {
		t.Error("include_test changed the cell key")
	}
}

func TestQueueFull(t *testing.T) {
	blocker := &countBench{name: "990.count_r", gate: make(chan struct{})}
	suite, err := core.NewSuite(blocker)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{Suite: suite, JobWorkers: 1, RunWorkers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(blocker.gate); s.Drain() }()

	// Distinct bodies defeat the cache; worker takes the first, the second
	// fills the depth-1 queue, the third must bounce.
	codes := []int{}
	for reps := 1; reps <= 3; reps++ {
		rec, _ := doJSON(t, s.Handler(), "POST", "/v1/jobs", fmt.Sprintf(`{"config": {"reps": %d}}`, reps))
		codes = append(codes, rec.Code)
	}
	// The worker may or may not have dequeued job 1 before job 2 arrived,
	// but three concurrent one-slot-queue jobs cannot all be accepted.
	if codes[0] != http.StatusAccepted {
		t.Errorf("first submit = %d", codes[0])
	}
	if codes[2] == http.StatusAccepted && codes[1] == http.StatusAccepted {
		// Only possible if the worker dequeued job 2 before job 3 arrived —
		// it cannot have: it is blocked on job 1's gate.
		t.Errorf("all three jobs accepted with queue depth 1: %v", codes)
	}
}
