package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"

	"repro/internal/harness/report"
)

// cacheKey derives the content key a result is stored under. Two requests
// share a key exactly when the envelope bytes they would produce are
// byte-identical (up to WallSeconds, which the cache deliberately freezes
// at first-run values), so the key covers everything that feeds the
// document and nothing that doesn't:
//
//   - the envelope schema version (a bump must invalidate old entries),
//   - the build identity (module version/sum and Go version from the
//     embedded build info — a rebuilt binary may model differently),
//   - the sorted benchmark list,
//   - the normalized result-affecting run config (reps, stride,
//     include_test, reference),
//   - the section selection and the Figure 2 top-N fold.
//
// Scheduling knobs (worker counts, queue sizing, progress) are absent on
// purpose: the harness guarantees bit-identical results across worker
// counts except for wall time.
func cacheKey(benchmarks []string, cfg report.RunConfig, sections report.Sections, topN int) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\n", report.SchemaVersion)
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintf(h, "go=%s module=%s@%s sum=%s\n",
			bi.GoVersion, bi.Main.Path, bi.Main.Version, bi.Main.Sum)
	}
	fmt.Fprintf(h, "benchmarks=%s\n", strings.Join(benchmarks, ","))
	fmt.Fprintf(h, "reps=%d stride=%d include_test=%t reference=%t\n",
		cfg.Reps, cfg.Stride, cfg.IncludeTest, cfg.Reference)
	fmt.Fprintf(h, "sections=%s\n", strings.Join(sections.Names(), ","))
	fmt.Fprintf(h, "figure2_top_n=%d\n", topN)
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache maps cache keys to encoded report.Suite envelopes. Entries
// are immutable once stored; callers serve the byte slices verbatim.
type resultCache struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    uint64
	misses  uint64
}

func newResultCache() *resultCache {
	return &resultCache{entries: map[string][]byte{}}
}

// get returns the stored envelope bytes, counting a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return data, ok
}

// put stores envelope bytes under key. First write wins: a concurrent
// duplicate run produced identical bytes anyway (the harness determinism
// guarantee, modulo WallSeconds — and keeping the first entry is exactly
// what makes repeat responses bit-identical).
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		c.entries[key] = data
	}
}

// stats snapshots the counters for /metrics.
func (c *resultCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
