package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/harness/report"
)

// cellKey derives the identity of one cell — a (benchmark × workload ×
// normalized measurement config) point of the characterization matrix.
// Two cells share a key exactly when the report.Measurement they would
// produce is byte-identical (up to WallSeconds, which the cache
// deliberately freezes at first-run values), so the key covers everything
// that feeds a measurement and nothing that doesn't:
//
//   - the envelope schema version (a bump must invalidate old entries),
//   - the build identity (module version/sum and Go version from the
//     embedded build info — a rebuilt binary may model differently),
//   - the benchmark and workload names,
//   - the normalized measurement-affecting config (reps, stride,
//     reference).
//
// Presentation knobs — the section selection and the Figure 2 top-N fold —
// and matrix-selection knobs — include_test, the benchmark list — are
// absent on purpose: they choose which cells a job comprises and how the
// envelope presents them, but never change a cell's measurement. That is
// the measurement/presentation split: a job differing only in sections or
// top-N resolves every cell from the cache and executes nothing.
func cellKey(benchmark, workload string, cfg report.RunConfig) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\n", report.SchemaVersion)
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintf(h, "go=%s module=%s@%s sum=%s\n",
			bi.GoVersion, bi.Main.Path, bi.Main.Version, bi.Main.Sum)
	}
	fmt.Fprintf(h, "benchmark=%s workload=%s\n", benchmark, workload)
	fmt.Fprintf(h, "reps=%d stride=%d reference=%t\n", cfg.Reps, cfg.Stride, cfg.Reference)
	// Sampled measurements extrapolate probe counters, so a sampled cell
	// and its exact twin must never alias; the interval and phase knobs
	// change the plan and with it every extrapolated field.
	fmt.Fprintf(h, "sampled=%t interval=%d phases=%d\n", cfg.Sampled, cfg.SampledInterval, cfg.SampledPhases)
	return hex.EncodeToString(h.Sum(nil))
}

// cellState is the lifecycle of a cellEntry: inflight (one leader is
// executing, everyone else waits on done) → resolved (m is final and
// immutable). Abandoned entries — the leader failed or was canceled — are
// removed from the store; their waiters wake through done and re-acquire.
type cellState int

const (
	cellInflight cellState = iota
	cellResolved
)

// cellEntry is one cell of the store. Fields are written under the store
// mutex before done is closed and never after, so waiters may read m and
// err lock-free once done is closed.
type cellEntry struct {
	benchmark string
	done      chan struct{}
	state     cellState
	m         report.Measurement
	err       error // abandonment cause (leader failure or cancellation)
	size      int   // canonical JSON size of m, for byte accounting
}

// wait blocks until the entry resolves or is abandoned, or ctx ends.
func (e *cellEntry) wait(ctx context.Context) error {
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquireResult classifies an acquire call.
type acquireResult int

const (
	// acqLeader: the caller created the entry and must execute the cell,
	// then resolve or abandon it.
	acqLeader acquireResult = iota
	// acqResolved: the cell is cached; the entry's measurement is final.
	acqResolved
	// acqInflight: another flight owns the cell; wait on entry.done.
	acqInflight
)

// cellStore is the cell-granular result cache with single-flight
// semantics: concurrent requests for the same cell block on one execution
// and all receive the identical measurement. Resolved entries are
// immutable and survive until flushed, so a repeat job re-reads the exact
// bytes-producing values (including WallSeconds) of the first run.
type cellStore struct {
	mu      sync.Mutex
	entries map[string]*cellEntry //lint:guardedby mu
	bytes   int                   //lint:guardedby mu

	hits            uint64 //lint:guardedby mu — acquire found a resolved entry
	misses          uint64 //lint:guardedby mu — acquire created the entry (caller leads)
	inflightWaits   uint64 //lint:guardedby mu — acquire joined another flight
	localRuns       uint64 //lint:guardedby mu — cells resolved by local execution
	remoteRuns      uint64 //lint:guardedby mu — cells resolved by a worker daemon
	remoteErrors    uint64 //lint:guardedby mu — failed remote attempts (before retry/failover)
	remoteFailovers uint64 //lint:guardedby mu — cells that fell back to local execution
	flushes         uint64 //lint:guardedby mu — DELETE /v1/cache calls

	// remoteErrLog retains the most recent remote failure details (cell
	// key, benchmark/workload, attempt, worker error) for /metrics.
	remoteErrLog []string //lint:guardedby mu
}

func newCellStore() *cellStore {
	return &cellStore{entries: map[string]*cellEntry{}}
}

// acquire looks the cell up, counting a hit, a wait, or — when the caller
// becomes the leader — a miss.
func (c *cellStore) acquire(key, benchmark string) (*cellEntry, acquireResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.state == cellResolved {
			c.hits++
			return e, acqResolved
		}
		c.inflightWaits++
		return e, acqInflight
	}
	c.misses++
	e := &cellEntry{benchmark: benchmark, done: make(chan struct{})}
	c.entries[key] = e
	return e, acqLeader
}

// resolve finalizes a leader's entry with its measurement and wakes all
// waiters. The entry may have been flushed from the map while inflight; it
// still resolves for its waiters, it just isn't re-inserted.
func (c *cellStore) resolve(key string, e *cellEntry, m report.Measurement, out cellOutcome) {
	size := 0
	if data, err := json.Marshal(m); err == nil {
		size = len(data)
	}
	c.mu.Lock()
	e.m = m
	e.size = size
	e.state = cellResolved
	if c.entries[key] == e {
		c.bytes += size
	}
	switch out {
	case cellRemote:
		c.remoteRuns++
	default:
		c.localRuns++
	}
	close(e.done)
	c.mu.Unlock()
}

// abandon removes a leader's failed entry so a later flight can retry the
// cell, and wakes waiters with the cause. Waiters distinguish the leader's
// cancellation (re-acquire and take over) from a genuine measurement
// failure (propagate).
func (c *cellStore) abandon(key string, e *cellEntry, err error) {
	c.mu.Lock()
	e.err = err
	if c.entries[key] == e {
		delete(c.entries, key)
	}
	close(e.done)
	c.mu.Unlock()
}

// allResolved returns the measurements for keys if — and only if — every
// one of them is already resolved; countHits then credits one hit per
// cell. It backs the submit-time born-done path: a job whose whole plan is
// cached is answered synchronously without touching the queue.
func (c *cellStore) allResolved(keys []string, countHits bool) ([]report.Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms := make([]report.Measurement, len(keys))
	for i, k := range keys {
		e, ok := c.entries[k]
		if !ok || e.state != cellResolved {
			return nil, false
		}
		ms[i] = e.m
	}
	if countHits {
		c.hits += uint64(len(keys))
	}
	return ms, true
}

// remoteErrLogCap bounds the /metrics remote-error detail ring.
const remoteErrLogCap = 16

// noteRemoteError counts one failed remote attempt and retains its
// detail (cell key, benchmark/workload, attempt number, worker error) in
// a bounded ring surfaced by /metrics.
func (c *cellStore) noteRemoteError(detail string) {
	c.mu.Lock()
	c.remoteErrors++
	if len(c.remoteErrLog) == remoteErrLogCap {
		copy(c.remoteErrLog, c.remoteErrLog[1:])
		c.remoteErrLog[len(c.remoteErrLog)-1] = detail
	} else {
		c.remoteErrLog = append(c.remoteErrLog, detail)
	}
	c.mu.Unlock()
}

func (c *cellStore) noteFailover() {
	c.mu.Lock()
	c.remoteFailovers++
	c.mu.Unlock()
}

// flush drops every resolved entry (inflight cells keep their waiters) and
// returns how many were dropped.
func (c *cellStore) flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.entries {
		if e.state == cellResolved {
			delete(c.entries, k)
			c.bytes -= e.size
			n++
		}
	}
	c.flushes++
	return n
}

// CellCacheStats snapshots the store for /metrics and GET /v1/cache.
type CellCacheStats struct {
	// Cells is the number of resolved (cached) cells; Inflight counts
	// cells currently executing somewhere.
	Cells    int `json:"cells"`
	Inflight int `json:"inflight"`
	// Bytes is the canonical JSON size of every cached measurement.
	Bytes int `json:"bytes"`

	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	InflightWaits uint64 `json:"inflight_waits"`
	// HitRatio is Hits / (Hits + Misses); 0 before any lookup.
	HitRatio float64 `json:"hit_ratio"`

	LocalRuns       uint64 `json:"local_runs"`
	RemoteRuns      uint64 `json:"remote_runs"`
	RemoteErrors    uint64 `json:"remote_errors"`
	RemoteFailovers uint64 `json:"remote_failovers"`
	Flushes         uint64 `json:"flushes"`

	// RemoteErrorLog is the detail behind RemoteErrors: the most recent
	// failed attempts, each carrying the cell key, benchmark/workload,
	// attempt number, and the worker's error.
	RemoteErrorLog []string `json:"remote_error_log,omitempty"`
}

func (c *cellStore) stats() CellCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CellCacheStats{
		Bytes:           c.bytes,
		Hits:            c.hits,
		Misses:          c.misses,
		InflightWaits:   c.inflightWaits,
		LocalRuns:       c.localRuns,
		RemoteRuns:      c.remoteRuns,
		RemoteErrors:    c.remoteErrors,
		RemoteFailovers: c.remoteFailovers,
		Flushes:         c.flushes,
		RemoteErrorLog:  append([]string(nil), c.remoteErrLog...),
	}
	for _, e := range c.entries {
		if e.state == cellResolved {
			st.Cells++
		} else {
			st.Inflight++
		}
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRatio = float64(st.Hits) / float64(total)
	}
	return st
}

// BenchmarkCacheStats is one row of the GET /v1/cache per-benchmark
// breakdown.
type BenchmarkCacheStats struct {
	Benchmark string `json:"benchmark"`
	Cells     int    `json:"cells"`
	Bytes     int    `json:"bytes"`
}

// breakdown reports the resolved cells per benchmark, sorted by name.
func (c *cellStore) breakdown() []BenchmarkCacheStats {
	c.mu.Lock()
	cells := map[string]int{}
	bytes := map[string]int{}
	for _, e := range c.entries {
		if e.state == cellResolved {
			cells[e.benchmark]++
			bytes[e.benchmark] += e.size
		}
	}
	c.mu.Unlock()
	names := make([]string, 0, len(cells))
	for name := range cells {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]BenchmarkCacheStats, 0, len(names))
	for _, name := range names {
		out = append(out, BenchmarkCacheStats{Benchmark: name, Cells: cells[name], Bytes: bytes[name]})
	}
	return out
}
