package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/harness/report"
	"repro/internal/sweep"
)

// SweepRequest is the body of POST /v1/sweeps: a workload-space sweep —
// generate per_benchmark workloads per benchmark from seed, measure every
// cell, cluster, and select k representatives per benchmark. The response
// streams: one frame per completed cell, then one selection frame per
// benchmark, then the final report frame (internal/sweep's Report — the
// identical document cmd/albertasweep -json emits for the same plan).
//
// The stream is NDJSON by default; clients sending Accept:
// text/event-stream get the same frames as SSE events instead (the event
// name is the frame kind).
type SweepRequest struct {
	// Benchmarks to sweep (empty = every generator-capable benchmark).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// PerBenchmark workloads are generated per benchmark (default 16).
	PerBenchmark int `json:"per_benchmark,omitempty"`
	// Seed feeds the workload generators (core.Generator's contract).
	Seed int64 `json:"seed,omitempty"`
	// K representatives are kept per benchmark (default 3).
	K int `json:"k,omitempty"`
	// Features picks the clustering embedding: combined (default),
	// topdown or coverage.
	Features string `json:"features,omitempty"`
	// ClusterSeed perturbs the k-medoids initialization (0 = canonical).
	ClusterSeed int64 `json:"cluster_seed,omitempty"`
	// Window bounds in-flight cells (default 2 × the server's RunWorkers):
	// the sweep holds at most Window unreported measurements, however many
	// cells the plan has.
	Window int `json:"window,omitempty"`
	// Config is the measurement configuration (reps, stride, sampling) —
	// part of every cell's cache identity, exactly as in POST /v1/jobs.
	Config report.RunConfig `json:"config"`
}

// sweepCellEvent is one completed cell, emitted in completion order (the
// only nondeterministic part of the stream; everything reducible is
// deterministic and lives in the selection and report frames). Source
// records how the cell store satisfied the cell — repeated sweeps are
// answered from cache without re-measuring.
type sweepCellEvent struct {
	Kind      string `json:"kind"` // "cell"
	Index     int    `json:"index"`
	Total     int    `json:"total"`
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	Checksum  uint64 `json:"checksum"`
	Cycles    uint64 `json:"cycles"`
	Source    string `json:"source"` // cached | deduped | local | remote
}

// sweepSelectionEvent is one benchmark's reduction.
type sweepSelectionEvent struct {
	Kind string `json:"kind"` // "selection"
	sweep.BenchmarkSweep
}

// sweepReportEvent is the terminal frame of a successful sweep.
type sweepReportEvent struct {
	Kind   string        `json:"kind"` // "report"
	Report *sweep.Report `json:"report"`
}

// sweepErrorEvent is the terminal frame of a failed sweep. The HTTP
// status is already 200 by the time cells execute, so stream consumers
// must treat an error frame (or a stream ending without a report frame)
// as failure.
type sweepErrorEvent struct {
	Kind  string `json:"kind"` // "error"
	Error string `json:"error"`
}

func (o cellOutcome) String() string {
	switch o {
	case cellCached:
		return "cached"
	case cellDeduped:
		return "deduped"
	case cellLocal:
		return "local"
	case cellRemote:
		return "remote"
	}
	return "unknown"
}

// handleSweep is POST /v1/sweeps. The sweep runs inside the request: a
// bounded pool of Window workers pulls plan indices, resolves each cell
// through the cell store (cache, single-flight dedup, worker fleet), and
// streams a frame per completion; the accumulator compacts each
// measurement to a behaviour point and releases it, so the handler holds
// O(Window) measurements regardless of plan size. Selection happens after
// the last cell, keyed by plan index — the representative sets are
// byte-identical to cmd/albertasweep's for the same request.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if req.Features == "" {
		req.Features = "combined"
	}
	feats, err := cluster.ParseFeatures(req.Features)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	swcfg, err := sweep.Config{
		Benchmarks:   req.Benchmarks,
		PerBenchmark: req.PerBenchmark,
		Seed:         req.Seed,
		K:            req.K,
		Features:     feats,
		ClusterSeed:  req.ClusterSeed,
	}.Normalize(s.cfg.Suite)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := harness.Options{
		Reps:            req.Config.Reps,
		Stride:          req.Config.Stride,
		Reference:       req.Config.Reference,
		Sampled:         req.Config.Sampled,
		SampledInterval: req.Config.SampledInterval,
		SampledPhases:   req.Config.SampledPhases,
	}.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := opts.ReportConfig()
	units, err := sweep.Plan(s.cfg.Suite, swcfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Window < 0 {
		writeError(w, http.StatusBadRequest, "window must be >= 0 (got %d)", req.Window)
		return
	}
	window := req.Window
	if window == 0 {
		window = 2 * s.cfg.RunWorkers
	}
	if window > len(units) {
		window = len(units)
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}

	// Sweeps ride the request, not the job queue, but they must still
	// respect Drain: a draining server answers 503, and Drain waits for
	// in-flight sweeps alongside the job workers.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.sweepWG.Add(1)
	s.mu.Unlock()
	defer s.sweepWG.Done()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// emit writes one frame. Callers hold mu (frames from concurrent
	// workers must not interleave).
	emit := func(kind string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	acc := sweep.NewAccumulator(swcfg)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error //lint:guardedby mu
	)
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	indices := make(chan int)
	wg.Add(window)
	for wkr := 0; wkr < window; wkr++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				u := units[i]
				c := plannedCell{
					bench: u.Benchmark,
					w:     u.Workload,
					key:   cellKey(u.Benchmark.Name(), u.Workload.WorkloadName(), cfg),
				}
				m, out, err := s.cellMeasurement(ctx, c, cfg, true, nil)
				mu.Lock()
				if err != nil {
					fail(err)
					mu.Unlock()
					continue
				}
				acc.Add(i, m)
				if err := emit("cell", sweepCellEvent{
					Kind:      "cell",
					Index:     i,
					Total:     len(units),
					Benchmark: m.Benchmark,
					Workload:  m.Workload,
					Checksum:  m.Checksum,
					Cycles:    m.Cycles,
					Source:    out.String(),
				}); err != nil {
					fail(err)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range units {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	if firstErr != nil {
		if r.Context().Err() == nil {
			emit("error", sweepErrorEvent{Kind: "error", Error: firstErr.Error()})
		}
		return
	}
	rep, err := acc.Report(cfg)
	if err != nil {
		emit("error", sweepErrorEvent{Kind: "error", Error: err.Error()})
		return
	}
	for i := range rep.Benchmarks {
		if err := emit("selection", sweepSelectionEvent{Kind: "selection", BenchmarkSweep: rep.Benchmarks[i]}); err != nil {
			return
		}
	}
	emit("report", sweepReportEvent{Kind: "report", Report: rep})
}
