package service

import (
	"net/http"
	"runtime"
	"sort"

	"repro/internal/harness/report"
)

// Metrics is the GET /metrics document: job counts by state, cell-cache
// effectiveness (hit/miss/inflight/remote counters — see CellCacheStats),
// per-benchmark measured wall seconds, and the process's allocation
// deltas since the server was constructed. All timing facts come from the
// measurements themselves (WallSeconds) — the service never reads the
// wall clock.
type Metrics struct {
	SchemaVersion int                `json:"schema_version"`
	Jobs          JobCounts          `json:"jobs"`
	Cells         CellCacheStats     `json:"cells"`
	PerBenchmark  []BenchmarkMetrics `json:"per_benchmark"`
	Mem           MemStats           `json:"mem"`
}

// JobCounts tallies jobs by lifecycle state.
type JobCounts struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// BenchmarkMetrics accumulates one benchmark's measured cost across every
// executed cell (cache hits and dedup waits are not re-counted).
type BenchmarkMetrics struct {
	Benchmark    string  `json:"benchmark"`
	WallSeconds  float64 `json:"wall_seconds"`
	Measurements int     `json:"measurements"`
}

// MemStats is the allocation delta since server construction.
type MemStats struct {
	Allocs   uint64 `json:"allocs"`
	Bytes    uint64 `json:"bytes"`
	GCCycles uint32 `json:"gc_cycles"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := Metrics{SchemaVersion: report.SchemaVersion}

	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		switch j.status().State {
		case stateQueued:
			m.Jobs.Queued++
		case stateRunning:
			m.Jobs.Running++
		case stateDone:
			m.Jobs.Done++
		case stateFailed:
			m.Jobs.Failed++
		case stateCanceled:
			m.Jobs.Canceled++
		}
	}

	m.Cells = s.cells.stats()

	s.statsMu.Lock()
	names := make([]string, 0, len(s.benchWall))
	for name := range s.benchWall {
		names = append(names, name)
	}
	sort.Strings(names)
	m.PerBenchmark = make([]BenchmarkMetrics, 0, len(names))
	for _, name := range names {
		m.PerBenchmark = append(m.PerBenchmark, BenchmarkMetrics{
			Benchmark:    name,
			WallSeconds:  s.benchWall[name],
			Measurements: s.benchCells[name],
		})
	}
	s.statsMu.Unlock()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Mem = MemStats{
		Allocs:   ms.Mallocs - s.memBase.Mallocs,
		Bytes:    ms.TotalAlloc - s.memBase.TotalAlloc,
		GCCycles: ms.NumGC - s.memBase.NumGC,
	}

	writeJSON(w, http.StatusOK, m)
}
