package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/harness/report"
	"repro/internal/perf"
	"repro/internal/sweep"
)

// genBench is a generator-capable test benchmark whose behaviour varies
// by generated index, so clustering has real structure to find. Run
// counts executions, letting tests assert cache reuse.
type genBench struct {
	name string
	runs atomic.Int64
}

func (b *genBench) Name() string { return b.name }
func (b *genBench) Area() string { return "testing" }
func (b *genBench) Workloads() ([]core.Workload, error) {
	return []core.Workload{core.Meta{Name: "refrate", Kind: core.KindRefrate}}, nil
}

func (b *genBench) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	ws := make([]core.Workload, n)
	for i := range ws {
		ws[i] = core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta}
	}
	return ws, nil
}

func (b *genBench) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	b.runs.Add(1)
	_, idx, ok := core.ParseGeneratedName(w.WorkloadName())
	if !ok {
		idx = 0
	}
	n := uint64(300 + 191*idx)
	p.Do(fmt.Sprintf("phase.%d", idx%3), func() {
		for i := uint64(0); i < n; i++ {
			p.Ops(2)
			p.Branch(1, i%uint64(idx+2) == 0)
			p.Load(i * 64 % (1 << 14))
		}
	})
	p.Do("tail", func() { p.Ops(n % 701) })
	sum := core.NewChecksum().AddString(b.name).AddString(w.WorkloadName())
	return core.Result{
		Benchmark: b.name, Workload: w.WorkloadName(),
		Kind: w.WorkloadKind(), Checksum: sum.Value(),
	}, nil
}

// postSweep posts a sweep request and returns the recorder.
func postSweep(t *testing.T, s *Server, body string, sse bool) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sweeps", strings.NewReader(body))
	if sse {
		req.Header.Set("Accept", "text/event-stream")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// sweepFrames decodes an NDJSON sweep stream into per-kind buckets,
// keeping each frame's raw bytes.
func sweepFrames(t *testing.T, body string) map[string][]json.RawMessage {
	t.Helper()
	out := map[string][]json.RawMessage{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("invalid NDJSON frame: %v\n%s", err, line)
		}
		out[probe.Kind] = append(out[probe.Kind], json.RawMessage(line))
	}
	return out
}

func TestSweepStream(t *testing.T) {
	b := &genBench{name: "991.gen_r"}
	s := newTestServer(t, b)
	rec := postSweep(t, s, `{"benchmarks":["991.gen_r"],"per_benchmark":6,"seed":7,"k":2,"config":{"reps":1}}`, false)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	frames := sweepFrames(t, rec.Body.String())
	if len(frames["cell"]) != 6 {
		t.Fatalf("%d cell frames, want 6", len(frames["cell"]))
	}
	seen := map[int]bool{}
	for _, raw := range frames["cell"] {
		var c sweepCellEvent
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatal(err)
		}
		if seen[c.Index] {
			t.Errorf("cell %d delivered twice", c.Index)
		}
		seen[c.Index] = true
		if c.Total != 6 || c.Benchmark != "991.gen_r" || !strings.HasPrefix(c.Workload, "gen.s7.") {
			t.Errorf("unexpected cell frame: %+v", c)
		}
		if c.Source != "local" {
			t.Errorf("cell %d source = %q, want local on a cold store", c.Index, c.Source)
		}
	}
	if len(frames["selection"]) != 1 {
		t.Fatalf("%d selection frames, want 1", len(frames["selection"]))
	}
	var sel sweepSelectionEvent
	if err := json.Unmarshal(frames["selection"][0], &sel); err != nil {
		t.Fatal(err)
	}
	if sel.Benchmark != "991.gen_r" || sel.Cells != 6 || sel.K != 2 || len(sel.Representatives) != 2 {
		t.Errorf("unexpected selection: %+v", sel)
	}
	if sel.CoverageLoss.Dropped != 4 {
		t.Errorf("coverage loss dropped = %d, want 4", sel.CoverageLoss.Dropped)
	}
	if len(frames["report"]) != 1 {
		t.Fatalf("%d report frames, want 1", len(frames["report"]))
	}
	if int(b.runs.Load()) != 6 {
		t.Errorf("benchmark executed %d times, want 6", b.runs.Load())
	}
}

// TestSweepMatchesCLIPath pins the cross-frontend determinism guarantee:
// the service's final report frame is byte-identical to the report the
// CLI path (sweep.Plan → harness stream → Accumulator) produces for the
// same request.
func TestSweepMatchesCLIPath(t *testing.T) {
	s := newTestServer(t, &genBench{name: "991.gen_r"})
	rec := postSweep(t, s, `{"benchmarks":["991.gen_r"],"per_benchmark":8,"seed":3,"k":3,"window":3}`, false)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d\n%s", rec.Code, rec.Body.String())
	}
	frames := sweepFrames(t, rec.Body.String())
	if len(frames["report"]) != 1 {
		t.Fatalf("%d report frames, want 1\n%s", len(frames["report"]), rec.Body.String())
	}
	var frame struct {
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(frames["report"][0], &frame); err != nil {
		t.Fatal(err)
	}

	// The CLI path, on a fresh benchmark instance of the same name.
	suite, err := core.NewSuite(&genBench{name: "991.gen_r"})
	if err != nil {
		t.Fatal(err)
	}
	swcfg, err := sweep.Config{Benchmarks: []string{"991.gen_r"}, PerBenchmark: 8, Seed: 3, K: 3}.Normalize(suite)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := harness.Options{Workers: 2, FailFast: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	units, err := sweep.Plan(suite, swcfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := sweep.NewAccumulator(swcfg)
	err = harness.NewPlanRunner(units, opts).Stream(context.Background(), func(c harness.Cell, m report.Measurement) error {
		acc.Add(c.Index, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := acc.Report(opts.ReportConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(frame.Report) != string(wantJSON) {
		t.Errorf("service report differs from CLI path:\nservice: %s\ncli:     %s", frame.Report, wantJSON)
	}
}

// TestSweepCacheReuse proves repeated sweep cells are free: a second
// identical sweep answers every cell from the store and executes nothing.
func TestSweepCacheReuse(t *testing.T) {
	b := &genBench{name: "991.gen_r"}
	s := newTestServer(t, b)
	body := `{"benchmarks":["991.gen_r"],"per_benchmark":5,"seed":11,"k":2,"config":{"reps":1}}`
	if rec := postSweep(t, s, body, false); rec.Code != http.StatusOK {
		t.Fatalf("first sweep: %d\n%s", rec.Code, rec.Body.String())
	}
	first := b.runs.Load()
	rec := postSweep(t, s, body, false)
	if rec.Code != http.StatusOK {
		t.Fatalf("second sweep: %d\n%s", rec.Code, rec.Body.String())
	}
	if b.runs.Load() != first {
		t.Errorf("second sweep executed %d cells, want 0", b.runs.Load()-first)
	}
	for _, raw := range sweepFrames(t, rec.Body.String())["cell"] {
		var c sweepCellEvent
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatal(err)
		}
		if c.Source != "cached" {
			t.Errorf("repeat cell %d source = %q, want cached", c.Index, c.Source)
		}
	}
}

func TestSweepSSE(t *testing.T) {
	s := newTestServer(t, &genBench{name: "991.gen_r"})
	rec := postSweep(t, s, `{"benchmarks":["991.gen_r"],"per_benchmark":3,"seed":1,"k":1}`, true)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"event: cell\n", "event: selection\n", "event: report\n"} {
		if !strings.Contains(body, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, body)
		}
	}
}

func TestSweepRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, &genBench{name: "991.gen_r"}, &countBench{name: "990.count_r"})
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown benchmark", `{"benchmarks":["999.none_r"]}`},
		{"non-generator benchmark", `{"benchmarks":["990.count_r"]}`},
		{"bad features", `{"features":"vibes"}`},
		{"negative window", `{"window":-1}`},
		{"bad per_benchmark", `{"per_benchmark":-2}`},
		{"unknown field", `{"bogus":true}`},
	} {
		rec := postSweep(t, s, tc.body, false)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400\n%s", tc.name, rec.Code, rec.Body.String())
		}
	}
}

func TestSweepDrainingAnswers503(t *testing.T) {
	s := newTestServer(t, &genBench{name: "991.gen_r"})
	s.Drain()
	rec := postSweep(t, s, `{"benchmarks":["991.gen_r"]}`, false)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", rec.Code)
	}
}
