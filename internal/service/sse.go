package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleJobEvents is GET /v1/jobs/{id}/events: a Server-Sent Events
// stream of the job's progress. Past events replay first (late
// subscribers see the full history), then live events follow; the stream
// ends after the terminal frame. Frames:
//
//	event: progress
//	data: {"kind":"done","benchmark":"557.xz_r","workload":"train","completed":3,"total":12}
//
//	event: done
//	data: {"kind":"terminal","state":"done","completed":12,"total":12}
//
// The progress frames preserve the harness Event contract: Completed is
// monotone non-decreasing and the final frame of a completed run reports
// Completed == Total.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, unsub := j.subscribe()
	defer unsub()
	for {
		select {
		case e, open := <-ch:
			if !open {
				return
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event frame. Terminal frames use the SSE event name
// "done" so EventSource clients can close on addEventListener("done").
func writeSSE(w http.ResponseWriter, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	name := "progress"
	if e.Kind == "terminal" {
		name = "done"
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	return err
}
