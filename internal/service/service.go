// Package service implements albertad, the characterization daemon: a
// long-running HTTP server that runs the harness's benchmark × workload
// matrix on demand and serves the results through the versioned
// report.Suite envelope (schema_version 1) — the same document
// `albertarun -json` emits, so service results and one-shot CLI results
// are interchangeable.
//
// Architecture: POST /v1/jobs enqueues a characterization request onto a
// bounded queue drained by a fixed pool of job workers. A job is planned
// into cells — one (benchmark × workload × normalized config) point of
// the matrix — and each cell resolves independently through the
// cell-granular result cache (cache.go): cached cells are read back,
// cold cells execute under single-flight so concurrent jobs needing the
// same cell share one execution, and when a worker fleet is configured
// (Config.Workers) cold cells are sharded across it over HTTP with
// failover to local execution (exec.go). The envelope is then assembled
// from the job's cells via report.Assemble — byte-identical to a
// monolithic run, however the cells were obtained. Per-job progress
// streams over SSE (Completed is monotone, the final terminal event
// reports Completed == Total).
//
// The same server is also the worker side of the protocol: POST
// /v1/cells:execute runs one cell through the same store, so a worker
// deduplicates and caches exactly like a coordinator.
//
// The package deliberately never reads the wall clock: timing facts come
// from the measurements' WallSeconds fields and allocation counters from
// runtime.ReadMemStats, keeping the whole tree inside albertalint's
// determinism surface.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/harness/report"
)

// Config sizes a Server.
type Config struct {
	// Suite is the benchmark inventory served. Required.
	Suite *core.Suite
	// JobWorkers bounds how many jobs run concurrently (default 1).
	JobWorkers int
	// RunWorkers bounds concurrent local cell executions across the whole
	// server — jobs and /v1/cells:execute requests together (default 1,
	// not GOMAXPROCS, so a daemon's default footprint stays small and
	// predictable).
	RunWorkers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 16). A full queue answers 503.
	QueueDepth int
	// Workers are base URLs of worker daemons (e.g. "http://host:8081").
	// When non-empty the server runs as a coordinator: cold cells are
	// sharded across the fleet by a stable hash of the cell key, with one
	// retry on the next worker and failover to local execution.
	Workers []string
	// RemoteFanout bounds concurrent in-flight remote cell executions
	// (default 2 × len(Workers)).
	RemoteFanout int
	// WorkerOnly serves only the worker surface — /v1/cells:execute, the
	// cache resources, /metrics, /healthz — and starts no job workers.
	WorkerOnly bool
	// Client performs worker HTTP calls (default a plain http.Client).
	Client *http.Client
}

// Server is the albertad HTTP service. Create with NewServer, serve its
// Handler, and call Drain before exit to finish in-flight jobs.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	cells  *cellStore
	client *http.Client

	// localSem bounds concurrent local cell executions server-wide;
	// remoteSem bounds in-flight remote executions when coordinating.
	localSem  chan struct{}
	remoteSem chan struct{}

	mu       sync.Mutex
	jobs     map[string]*job //lint:guardedby mu
	order    []string        //lint:guardedby mu — job ids in creation order
	nextID   int             //lint:guardedby mu
	draining bool            //lint:guardedby mu
	queue    chan *job

	wg      sync.WaitGroup // job workers
	sweepWG sync.WaitGroup // in-flight POST /v1/sweeps requests

	// memBase is the allocation baseline captured at construction;
	// /metrics reports deltas against it.
	memBase runtime.MemStats

	// benchWall / benchCells accumulate per-benchmark measured wall
	// seconds and executed-cell counts (cache hits are not re-counted).
	statsMu    sync.Mutex
	benchWall  map[string]float64 //lint:guardedby statsMu
	benchCells map[string]int     //lint:guardedby statsMu
}

// NewServer builds the service and starts its job workers.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Suite == nil {
		return nil, errors.New("service: Config.Suite is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.RunWorkers <= 0 {
		cfg.RunWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RemoteFanout <= 0 {
		cfg.RemoteFanout = 2 * len(cfg.Workers)
	}
	if cfg.RemoteFanout <= 0 {
		cfg.RemoteFanout = 1 // no fleet: the semaphore is never used
	}
	s := &Server{
		cfg:        cfg,
		cells:      newCellStore(),
		client:     cfg.Client,
		localSem:   make(chan struct{}, cfg.RunWorkers),
		remoteSem:  make(chan struct{}, cfg.RemoteFanout),
		jobs:       map[string]*job{},
		queue:      make(chan *job, cfg.QueueDepth),
		benchWall:  map[string]float64{},
		benchCells: map[string]int{},
	}
	if s.client == nil {
		s.client = &http.Client{}
	}
	runtime.ReadMemStats(&s.memBase)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheGet)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheFlush)
	s.mux.HandleFunc("POST /v1/cells:execute", s.handleCellExecute)
	if !cfg.WorkerOnly {
		s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
		s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
		s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
		s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
		s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
		s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
		s.wg.Add(cfg.JobWorkers)
		for i := 0; i < cfg.JobWorkers; i++ {
			go s.worker()
		}
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting new jobs and sweeps (POST answers 503) and
// blocks until every queued and running job — and every in-flight sweep
// stream — reaches a terminal state. Safe to call once; used for
// graceful SIGTERM shutdown. Worker-only servers drain trivially —
// /v1/cells:execute rides request contexts, not the queue.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	if !already {
		s.wg.Wait()
		s.sweepWG.Wait()
		// Drop keep-alive connections to the worker fleet; their readLoop
		// goroutines would otherwise outlive the server (leakcheck).
		s.client.CloseIdleConnections()
	}
}

// errorEnvelope is the uniform JSON error body.
type errorEnvelope struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.MarshalIndent(errorEnvelope{SchemaVersion: report.SchemaVersion, Error: fmt.Sprintf(format, args...)}, "", "  ")
	w.Write(append(data, '\n'))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"status":         "ok",
		"draining":       draining,
	})
}

// handleCacheGet is GET /v1/cache: operator introspection of the cell
// store — counts, bytes, hit ratio, and the per-benchmark breakdown.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"cache":          s.cells.stats(),
		"per_benchmark":  s.cells.breakdown(),
	})
}

// handleCacheFlush is DELETE /v1/cache: drop every resolved cell (cells
// currently executing are untouched) and report how many were flushed.
func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"flushed":        s.cells.flush(),
	})
}

// benchmarkInfo is one row of GET /v1/benchmarks.
type benchmarkInfo struct {
	Name      string         `json:"name"`
	Area      string         `json:"area"`
	Workloads []workloadInfo `json:"workloads"`
}

type workloadInfo struct {
	Name string    `json:"name"`
	Kind core.Kind `json:"kind"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var out []benchmarkInfo
	for _, b := range s.cfg.Suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%s: %v", b.Name(), err)
			return
		}
		info := benchmarkInfo{Name: b.Name(), Area: b.Area()}
		for _, wl := range ws {
			info.Workloads = append(info.Workloads, workloadInfo{Name: wl.WorkloadName(), Kind: wl.WorkloadKind()})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"benchmarks":     out,
	})
}

// handleSubmit is POST /v1/jobs: validate and plan into cells. A job
// whose every cell is already resolved is born done — the envelope is
// assembled synchronously from the cache and answered 200 without
// touching the queue. Otherwise enqueue (202) unless draining or full
// (503).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	nr, err := s.normalizeRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), nr)

	if ms, ok := s.cells.allResolved(nr.cellKeys(), true); ok {
		// Every cell is cached: the job is born done, nothing executes.
		// A request differing only in presentation (sections, top-N)
		// from a completed one lands here by construction — presentation
		// is not part of cell identity.
		env, err := buildEnvelope(nr, ms)
		if err != nil {
			s.nextID--
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		j.finishFromCache(env)
		writeJSON(w, http.StatusOK, j.status())
		return
	}

	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		s.nextID-- // job was never admitted
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "job queue is full (depth %d)", s.cfg.QueueDepth)
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"jobs":           statuses,
	})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, "job %s already %s", j.id, j.status().State)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	st := j.status()
	if st.State != stateDone {
		writeError(w, http.StatusConflict, "job %s is %s, result not available", j.id, st.State)
		return
	}
	// Envelope bytes are assembled from cached cells deterministically —
	// bit-identical across repeats by construction.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(j.resultBytes())
}

// worker drains the job queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// buildEnvelope assembles a job's envelope bytes from its resolved cells,
// in plan order. Plan order is sorted-benchmark × workload-inventory
// order — the same order a monolithic harness.Runner walks — so Assemble
// reconstructs identical Results and Build/Encode (both deterministic)
// produce identical bytes whether the cells came from one process, the
// cache, or a worker fleet.
func buildEnvelope(nr normalized, ms []report.Measurement) ([]byte, error) {
	env, err := report.Build(report.Assemble(ms), nr.cfg, report.BuildOptions{
		Sections:    nr.sections,
		Figure2TopN: nr.topN,
	})
	if err != nil {
		return nil, err
	}
	return env.Encode()
}

// runJob executes one queued job end to end: resolve every cell of the
// plan (cache / single-flight dedup / remote worker / local execution),
// assemble and encode the envelope, publish the terminal state.
func (s *Server) runJob(j *job) {
	if !j.begin() {
		return // canceled while queued; terminal event already published
	}
	ms, err := s.resolveJobCells(j)
	if err != nil {
		if j.ctx.Err() != nil {
			j.finishCanceled()
		} else {
			j.fail(err)
		}
		return
	}
	data, err := buildEnvelope(j.req, ms)
	if err != nil {
		j.fail(err)
		return
	}
	j.finish(data)
}

// resolveJobCells resolves every cell of the job's plan concurrently.
// Parallelism is effectively bounded by the server's execution
// semaphores (localSem, remoteSem) — the per-cell goroutines themselves
// only coordinate. The first cell error cancels the rest and fails the
// job; a canceled job reports context.Canceled.
func (s *Server) resolveJobCells(j *job) ([]report.Measurement, error) {
	cells := j.req.cells
	ms := make([]report.Measurement, len(cells))
	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	wg.Add(len(cells))
	for i := range cells {
		go func(i int) {
			defer wg.Done()
			c := cells[i]
			m, out, err := s.cellMeasurement(ctx, c, j.req.cfg, true, func() { j.cellStarted(c) })
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
					j.cellFailed(c, err)
					cancel()
				}
				errMu.Unlock()
				return
			}
			ms[i] = m
			j.cellDone(c, out)
		}(i)
	}
	wg.Wait()
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return ms, nil
}

// plannedCell is one cell of a job's plan: a benchmark/workload pair plus
// the cell's cache identity.
type plannedCell struct {
	bench core.Benchmark
	w     core.Workload
	key   string
}

// normalized is a validated, canonicalized job request plus its cell plan.
type normalized struct {
	benchmarks []string // sorted, validated
	cfg        report.RunConfig
	sections   report.Sections
	topN       int
	// cells is the benchmark × workload plan in sorted-benchmark ×
	// workload-inventory order; total = len(cells).
	cells []plannedCell
	total int
}

func (n normalized) cellKeys() []string {
	keys := make([]string, len(n.cells))
	for i, c := range n.cells {
		keys[i] = c.key
	}
	return keys
}

// normalizeRequest validates a JobRequest against the suite and collapses
// it to canonical form, the single place request-side defaults live: the
// harness's own Options.Normalize supplies reps/stride defaults, empty
// benchmark lists mean the whole suite, empty section lists mean all.
// The request is planned into cells here; include_test widens the plan
// but is not part of any cell's identity.
func (s *Server) normalizeRequest(req JobRequest) (normalized, error) {
	opts, err := harness.Options{
		Reps:            req.Config.Reps,
		Stride:          req.Config.Stride,
		IncludeTest:     req.Config.IncludeTest,
		Reference:       req.Config.Reference,
		Sampled:         req.Config.Sampled,
		SampledInterval: req.Config.SampledInterval,
		SampledPhases:   req.Config.SampledPhases,
	}.Normalize()
	if err != nil {
		return normalized{}, err
	}
	var n normalized
	n.cfg = opts.ReportConfig()

	if len(req.Benchmarks) == 0 {
		for _, b := range s.cfg.Suite.Benchmarks() {
			n.benchmarks = append(n.benchmarks, b.Name())
		}
	} else {
		seen := map[string]bool{}
		for _, name := range req.Benchmarks {
			if _, ok := s.cfg.Suite.Lookup(name); !ok {
				return normalized{}, fmt.Errorf("unknown benchmark %q", name)
			}
			if seen[name] {
				return normalized{}, fmt.Errorf("duplicate benchmark %q", name)
			}
			seen[name] = true
			n.benchmarks = append(n.benchmarks, name)
		}
	}
	sort.Strings(n.benchmarks)

	if n.sections, err = report.ParseSections(req.Sections); err != nil {
		return normalized{}, err
	}
	if req.Figure2TopN < 0 {
		return normalized{}, fmt.Errorf("figure2_top_n must be >= 0 (got %d)", req.Figure2TopN)
	}
	n.topN = req.Figure2TopN
	if n.topN == 0 {
		n.topN = 6
	}

	for _, name := range n.benchmarks {
		b, _ := s.cfg.Suite.Lookup(name)
		ws, err := b.Workloads()
		if err != nil {
			return normalized{}, fmt.Errorf("%s: %w", name, err)
		}
		for _, wl := range ws {
			if n.cfg.IncludeTest || wl.WorkloadKind() != core.KindTest {
				n.cells = append(n.cells, plannedCell{
					bench: b,
					w:     wl,
					key:   cellKey(name, wl.WorkloadName(), n.cfg),
				})
			}
		}
	}
	n.total = len(n.cells)
	return n, nil
}
