// Package service implements albertad, the characterization daemon: a
// long-running HTTP server that runs the harness's benchmark × workload
// matrix on demand and serves the results through the versioned
// report.Suite envelope (schema_version 1) — the same document
// `albertarun -json` emits, so service results and one-shot CLI results
// are interchangeable.
//
// Architecture: POST /v1/jobs enqueues a characterization request onto a
// bounded queue drained by a fixed pool of job workers; each job runs a
// harness.Runner (with its own measurement worker pool) under a
// per-job context so it can be canceled. Results are stored in a
// content-keyed cache — see cache.go for the key derivation — and a
// repeated request is answered from the cache byte-identically without
// executing a single benchmark. Per-job progress streams over SSE built
// on the harness Event contract (Completed is monotone, the final
// terminal event reports Completed == Total).
//
// The package deliberately never reads the wall clock: timing facts come
// from the measurements' WallSeconds fields and allocation counters from
// runtime.ReadMemStats, keeping the whole tree inside albertalint's
// determinism surface.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/harness/report"
)

// Config sizes a Server.
type Config struct {
	// Suite is the benchmark inventory served. Required.
	Suite *core.Suite
	// JobWorkers bounds how many jobs run concurrently (default 1).
	JobWorkers int
	// RunWorkers is the harness measurement worker pool size per job
	// (default 1; 0 is normalized to 1, not GOMAXPROCS, so a daemon's
	// default footprint stays small and predictable).
	RunWorkers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 16). A full queue answers 503.
	QueueDepth int
}

// Server is the albertad HTTP service. Create with NewServer, serve its
// Handler, and call Drain before exit to finish in-flight jobs.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *resultCache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job ids in creation order
	nextID   int
	queue    chan *job
	draining bool

	wg sync.WaitGroup // job workers

	// memBase is the allocation baseline captured at construction;
	// /metrics reports deltas against it.
	memBase runtime.MemStats

	// benchWall / benchCells accumulate per-benchmark measured wall
	// seconds and measurement counts across completed jobs.
	statsMu    sync.Mutex
	benchWall  map[string]float64
	benchCells map[string]int
}

// NewServer builds the service and starts its job workers.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Suite == nil {
		return nil, errors.New("service: Config.Suite is required")
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.RunWorkers <= 0 {
		cfg.RunWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	s := &Server{
		cfg:        cfg,
		cache:      newResultCache(),
		jobs:       map[string]*job{},
		queue:      make(chan *job, cfg.QueueDepth),
		benchWall:  map[string]float64{},
		benchCells: map[string]int{},
	}
	runtime.ReadMemStats(&s.memBase)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.wg.Add(cfg.JobWorkers)
	for i := 0; i < cfg.JobWorkers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting new jobs (POST answers 503) and blocks until
// every queued and running job reaches a terminal state. Safe to call
// once; used for graceful SIGTERM shutdown.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	if !already {
		s.wg.Wait()
	}
}

// errorEnvelope is the uniform JSON error body.
type errorEnvelope struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.MarshalIndent(errorEnvelope{SchemaVersion: report.SchemaVersion, Error: fmt.Sprintf(format, args...)}, "", "  ")
	w.Write(append(data, '\n'))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"status":         "ok",
		"draining":       draining,
	})
}

// benchmarkInfo is one row of GET /v1/benchmarks.
type benchmarkInfo struct {
	Name      string         `json:"name"`
	Area      string         `json:"area"`
	Workloads []workloadInfo `json:"workloads"`
}

type workloadInfo struct {
	Name string    `json:"name"`
	Kind core.Kind `json:"kind"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var out []benchmarkInfo
	for _, b := range s.cfg.Suite.Benchmarks() {
		ws, err := b.Workloads()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%s: %v", b.Name(), err)
			return
		}
		info := benchmarkInfo{Name: b.Name(), Area: b.Area()}
		for _, wl := range ws {
			info.Workloads = append(info.Workloads, workloadInfo{Name: wl.WorkloadName(), Kind: wl.WorkloadKind()})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"benchmarks":     out,
	})
}

// handleSubmit is POST /v1/jobs: validate, answer cache hits immediately
// (200, state done), otherwise enqueue (202) unless draining or full (503).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	nr, err := s.normalizeRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), nr)

	if data, ok := s.cache.get(nr.key); ok {
		// Cache hit: the job is born done, no benchmark executes.
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		j.finishFromCache(data)
		writeJSON(w, http.StatusOK, j.status())
		return
	}

	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		s.nextID-- // job was never admitted
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "job queue is full (depth %d)", s.cfg.QueueDepth)
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"schema_version": report.SchemaVersion,
		"jobs":           statuses,
	})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	if !j.requestCancel() {
		writeError(w, http.StatusConflict, "job %s already %s", j.id, j.status().State)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	st := j.status()
	if st.State != stateDone {
		writeError(w, http.StatusConflict, "job %s is %s, result not available", j.id, st.State)
		return
	}
	// The cached envelope bytes are served verbatim — bit-identical across
	// cache hits by construction.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(j.resultBytes())
}

// worker drains the job queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued job end to end: run the matrix, build and
// encode the envelope, populate the cache, account metrics.
func (s *Server) runJob(j *job) {
	if !j.begin() {
		return // canceled while queued; terminal event already published
	}

	sub, err := s.subSuite(j.req.benchmarks)
	if err != nil {
		j.fail(err)
		return
	}
	opts := harness.Options{
		Reps:        j.req.cfg.Reps,
		Stride:      j.req.cfg.Stride,
		IncludeTest: j.req.cfg.IncludeTest,
		Reference:   j.req.cfg.Reference,
		Workers:     s.cfg.RunWorkers,
		Progress:    j.progress,
	}
	results, err := harness.NewRunner(sub, opts).Run(j.ctx)
	if err != nil {
		if j.ctx.Err() != nil {
			j.finishCanceled()
		} else {
			j.fail(err)
		}
		return
	}
	env, err := report.Build(results, j.req.cfg, report.BuildOptions{
		Sections:    j.req.sections,
		Figure2TopN: j.req.topN,
	})
	if err != nil {
		j.fail(err)
		return
	}
	data, err := env.Encode()
	if err != nil {
		j.fail(err)
		return
	}
	s.cache.put(j.req.key, data)
	s.accountRun(results)
	j.finish(data)
}

// subSuite builds the requested sub-inventory. Names were validated at
// submit time, so Lookup cannot miss unless the suite changed underneath.
func (s *Server) subSuite(names []string) (*core.Suite, error) {
	bs := make([]core.Benchmark, 0, len(names))
	for _, n := range names {
		b, ok := s.cfg.Suite.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("benchmark %q vanished from the suite", n)
		}
		bs = append(bs, b)
	}
	return core.NewSuite(bs...)
}

// accountRun folds one run's measured wall seconds into the per-benchmark
// metrics. Updates are commutative, so job completion order is irrelevant.
func (s *Server) accountRun(results report.Results) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	for name, ms := range results {
		for _, m := range ms {
			s.benchWall[name] += m.WallSeconds
		}
		s.benchCells[name] += len(ms)
	}
}

// normalized is a validated, canonicalized job request plus its cache key.
type normalized struct {
	benchmarks []string // sorted, validated
	cfg        report.RunConfig
	sections   report.Sections
	topN       int
	key        string
	total      int // size of the benchmark × workload matrix
}

// normalizeRequest validates a JobRequest against the suite and collapses
// it to canonical form, the single place request-side defaults live: the
// harness's own Options.Normalize supplies reps/stride defaults, empty
// benchmark lists mean the whole suite, empty section lists mean all.
func (s *Server) normalizeRequest(req JobRequest) (normalized, error) {
	opts, err := harness.Options{
		Reps:        req.Config.Reps,
		Stride:      req.Config.Stride,
		IncludeTest: req.Config.IncludeTest,
		Reference:   req.Config.Reference,
	}.Normalize()
	if err != nil {
		return normalized{}, err
	}
	var n normalized
	n.cfg = opts.ReportConfig()

	if len(req.Benchmarks) == 0 {
		for _, b := range s.cfg.Suite.Benchmarks() {
			n.benchmarks = append(n.benchmarks, b.Name())
		}
	} else {
		seen := map[string]bool{}
		for _, name := range req.Benchmarks {
			if _, ok := s.cfg.Suite.Lookup(name); !ok {
				return normalized{}, fmt.Errorf("unknown benchmark %q", name)
			}
			if seen[name] {
				return normalized{}, fmt.Errorf("duplicate benchmark %q", name)
			}
			seen[name] = true
			n.benchmarks = append(n.benchmarks, name)
		}
	}
	sort.Strings(n.benchmarks)

	if n.sections, err = report.ParseSections(req.Sections); err != nil {
		return normalized{}, err
	}
	if req.Figure2TopN < 0 {
		return normalized{}, fmt.Errorf("figure2_top_n must be >= 0 (got %d)", req.Figure2TopN)
	}
	n.topN = req.Figure2TopN
	if n.topN == 0 {
		n.topN = 6
	}

	for _, name := range n.benchmarks {
		b, _ := s.cfg.Suite.Lookup(name)
		ws, err := b.Workloads()
		if err != nil {
			return normalized{}, fmt.Errorf("%s: %w", name, err)
		}
		for _, wl := range ws {
			if n.cfg.IncludeTest || wl.WorkloadKind() != core.KindTest {
				n.total++
			}
		}
	}

	n.key = cacheKey(n.benchmarks, n.cfg, n.sections, n.topN)
	return n, nil
}
