package service

import (
	"context"
	"sync"

	"repro/internal/harness"
	"repro/internal/harness/report"
)

// Job lifecycle states. queued → running → done|failed|canceled; a queued
// job may also go straight to canceled (DELETE before a worker picks it
// up) or be born done (cache hit at submit time).
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// JobRequest is the body of POST /v1/jobs. Zero values take the harness
// defaults: empty benchmarks = the whole suite, empty sections = all,
// zero reps/stride from harness.Options.Normalize, figure2_top_n 0 = 6.
type JobRequest struct {
	Benchmarks  []string         `json:"benchmarks,omitempty"`
	Config      report.RunConfig `json:"config"`
	Sections    []string         `json:"sections,omitempty"`
	Figure2TopN int              `json:"figure2_top_n,omitempty"`
}

// JobStatus is the job resource returned by the /v1/jobs handlers.
type JobStatus struct {
	SchemaVersion int              `json:"schema_version"`
	ID            string           `json:"id"`
	State         string           `json:"state"`
	Benchmarks    []string         `json:"benchmarks"`
	Sections      []string         `json:"sections"`
	Config        report.RunConfig `json:"config"`
	Figure2TopN   int              `json:"figure2_top_n"`
	// Cached reports whether the result came from the cache without
	// executing any benchmark.
	Cached    bool   `json:"cached"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`
}

// Event is one SSE progress frame. Terminal frames (the `done` SSE event)
// carry the final state; progress frames mirror the harness Event fields,
// so Completed is monotone non-decreasing and the last frame of a full
// run reports Completed == Total.
type Event struct {
	Kind      string `json:"kind"` // start | done | error | terminal
	Benchmark string `json:"benchmark,omitempty"`
	Workload  string `json:"workload,omitempty"`
	State     string `json:"state,omitempty"` // terminal frames only
	Error     string `json:"error,omitempty"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
}

// job is the server-side state of one characterization request.
type job struct {
	id  string
	req normalized

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	cached    bool
	completed int
	errMsg    string
	result    []byte
	events    []Event      // replay log for late SSE subscribers
	subs      []chan Event // live subscribers
	closed    bool         // terminal event published
}

func newJob(id string, nr normalized) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{id: id, req: nr, ctx: ctx, cancel: cancel, state: stateQueued}
}

// status snapshots the job resource.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		SchemaVersion: report.SchemaVersion,
		ID:            j.id,
		State:         j.state,
		Benchmarks:    j.req.benchmarks,
		Sections:      j.req.sections.Names(),
		Config:        j.req.cfg,
		Figure2TopN:   j.req.topN,
		Cached:        j.cached,
		Completed:     j.completed,
		Total:         j.req.total,
		Error:         j.errMsg,
	}
}

func (j *job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// begin moves queued → running; false means the job was canceled while
// queued and must not run.
func (j *job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	return true
}

// requestCancel cancels a queued or running job; false means the job was
// already terminal. A queued job is canceled immediately; a running one
// keeps state "running" until the harness observes the context (between
// measurements) and the worker marks it canceled.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	switch j.state {
	case stateQueued:
		j.state = stateCanceled
		j.cancel()
		j.publishTerminalLocked()
		j.mu.Unlock()
		return true
	case stateRunning:
		j.mu.Unlock()
		j.cancel()
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// progress is the harness Progress callback: it mirrors the harness event
// into the replay log and live subscribers. The harness serializes
// Progress calls, so events append in contract order (Completed monotone).
func (j *job) progress(e harness.Event) {
	ev := Event{
		Kind:      e.Kind.String(),
		Benchmark: e.Benchmark,
		Workload:  e.Workload,
		Completed: e.Completed,
		Total:     e.Total,
	}
	if e.Err != nil {
		ev.Error = e.Err.Error()
	}
	j.mu.Lock()
	j.completed = e.Completed
	j.publishLocked(ev)
	j.mu.Unlock()
}

func (j *job) finish(result []byte) {
	j.mu.Lock()
	j.state = stateDone
	j.result = result
	j.completed = j.req.total
	j.publishTerminalLocked()
	j.mu.Unlock()
}

// finishFromCache completes a job at birth from cached envelope bytes:
// state done, zero measurements executed, terminal event published so SSE
// subscribers see an immediate end of stream.
func (j *job) finishFromCache(result []byte) {
	j.mu.Lock()
	j.state = stateDone
	j.cached = true
	j.result = result
	j.completed = j.req.total
	j.publishTerminalLocked()
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = stateFailed
	j.errMsg = err.Error()
	j.publishTerminalLocked()
	j.mu.Unlock()
}

func (j *job) finishCanceled() {
	j.mu.Lock()
	j.state = stateCanceled
	j.publishTerminalLocked()
	j.mu.Unlock()
}

// publishLocked appends to the replay log and fans out to subscribers.
// Subscriber channels are sized for the whole event budget (see
// subscribe), so sends never block even if a client stalls.
func (j *job) publishLocked(e Event) {
	j.events = append(j.events, e)
	for _, ch := range j.subs {
		ch <- e
	}
}

func (j *job) publishTerminalLocked() {
	j.publishLocked(Event{Kind: "terminal", State: j.state, Error: j.errMsg,
		Completed: j.completed, Total: j.req.total})
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.closed = true
}

// subscribe returns a channel replaying every past event and delivering
// every future one; the channel closes after the terminal event. The
// capacity covers the maximum event budget of a run — a start and a
// terminal-per-cell event for each matrix cell plus the job terminal —
// so the publisher never blocks on a slow consumer.
func (j *job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 2*j.req.total+4)
	for _, e := range j.events {
		ch <- e
	}
	if j.closed {
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	unsub := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
	return ch, unsub
}
