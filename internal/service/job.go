package service

import (
	"context"
	"sync"

	"repro/internal/harness/report"
)

// Job lifecycle states. queued → running → done|failed|canceled; a queued
// job may also go straight to canceled (DELETE before a worker picks it
// up) or be born done (every cell cached at submit time).
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// JobRequest is the body of POST /v1/jobs. Zero values take the harness
// defaults: empty benchmarks = the whole suite, empty sections = all,
// zero reps/stride from harness.Options.Normalize, figure2_top_n 0 = 6.
type JobRequest struct {
	Benchmarks  []string         `json:"benchmarks,omitempty"`
	Config      report.RunConfig `json:"config"`
	Sections    []string         `json:"sections,omitempty"`
	Figure2TopN int              `json:"figure2_top_n,omitempty"`
}

// CellBreakdown reports how a job's matrix cells were satisfied: read
// from the cache, deduplicated onto another job's in-flight execution,
// executed locally, or executed on a remote worker.
type CellBreakdown struct {
	Cached  int `json:"cached"`
	Deduped int `json:"deduped"`
	Local   int `json:"local"`
	Remote  int `json:"remote"`
}

// JobStatus is the job resource returned by the /v1/jobs handlers.
type JobStatus struct {
	SchemaVersion int              `json:"schema_version"`
	ID            string           `json:"id"`
	State         string           `json:"state"`
	Benchmarks    []string         `json:"benchmarks"`
	Sections      []string         `json:"sections"`
	Config        report.RunConfig `json:"config"`
	Figure2TopN   int              `json:"figure2_top_n"`
	// Cached reports whether every cell came from the cache without
	// executing or waiting on any benchmark.
	Cached bool `json:"cached"`
	// Cells breaks down completed cells by how they were satisfied.
	Cells     CellBreakdown `json:"cells"`
	Completed int           `json:"completed"`
	Total     int           `json:"total"`
	Error     string        `json:"error,omitempty"`
}

// Event is one SSE progress frame. Terminal frames (the `done` SSE event)
// carry the final state; progress frames are per cell — a start when this
// job's flight begins executing a cold cell, a done when the cell
// resolves (with cached=true when it was read from the cache) — so
// Completed is monotone non-decreasing and the last frame of a full run
// reports Completed == Total.
type Event struct {
	Kind      string `json:"kind"` // start | done | error | terminal
	Benchmark string `json:"benchmark,omitempty"`
	Workload  string `json:"workload,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	State     string `json:"state,omitempty"` // terminal frames only
	Error     string `json:"error,omitempty"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
}

// job is the server-side state of one characterization request.
type job struct {
	id  string
	req normalized

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string       //lint:guardedby mu
	cached    bool         //lint:guardedby mu
	counts    [4]int       //lint:guardedby mu — indexed by cellOutcome
	completed int          //lint:guardedby mu
	errMsg    string       //lint:guardedby mu
	result    []byte       //lint:guardedby mu
	events    []Event      //lint:guardedby mu — replay log for late SSE subscribers
	subs      []chan Event //lint:guardedby mu — live subscribers
	closed    bool         //lint:guardedby mu — terminal event published
}

func newJob(id string, nr normalized) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{id: id, req: nr, ctx: ctx, cancel: cancel, state: stateQueued}
}

// status snapshots the job resource.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		SchemaVersion: report.SchemaVersion,
		ID:            j.id,
		State:         j.state,
		Benchmarks:    j.req.benchmarks,
		Sections:      j.req.sections.Names(),
		Config:        j.req.cfg,
		Figure2TopN:   j.req.topN,
		Cached:        j.cached,
		Cells: CellBreakdown{
			Cached:  j.counts[cellCached],
			Deduped: j.counts[cellDeduped],
			Local:   j.counts[cellLocal],
			Remote:  j.counts[cellRemote],
		},
		Completed: j.completed,
		Total:     j.req.total,
		Error:     j.errMsg,
	}
}

func (j *job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// begin moves queued → running; false means the job was canceled while
// queued and must not run.
func (j *job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateQueued {
		return false
	}
	j.state = stateRunning
	return true
}

// requestCancel cancels a queued or running job; false means the job was
// already terminal. A queued job is canceled immediately; a running one
// keeps state "running" until its cell resolutions observe the context
// and the worker marks it canceled.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	switch j.state {
	case stateQueued:
		j.state = stateCanceled
		j.cancel()
		j.publishTerminalLocked()
		j.mu.Unlock()
		return true
	case stateRunning:
		j.mu.Unlock()
		j.cancel()
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// cellStarted publishes a start event: this job's flight is about to
// execute a cold cell. Cells read from the cache or deduplicated onto
// another flight publish no start — only a done.
func (j *job) cellStarted(c plannedCell) {
	j.mu.Lock()
	j.publishLocked(Event{
		Kind:      "start",
		Benchmark: c.bench.Name(),
		Workload:  c.w.WorkloadName(),
		Completed: j.completed,
		Total:     j.req.total,
	})
	j.mu.Unlock()
}

// cellDone records one resolved cell and publishes its done event.
// Completed increments under the job lock, so it is monotone across
// concurrent cell resolutions.
func (j *job) cellDone(c plannedCell, out cellOutcome) {
	j.mu.Lock()
	j.completed++
	j.counts[out]++
	j.publishLocked(Event{
		Kind:      "done",
		Benchmark: c.bench.Name(),
		Workload:  c.w.WorkloadName(),
		Cached:    out == cellCached,
		Completed: j.completed,
		Total:     j.req.total,
	})
	j.mu.Unlock()
}

// cellFailed publishes an error event for the cell that failed the job.
// Cells aborted by the job's own cancellation stay silent — the terminal
// frame carries the canceled state.
func (j *job) cellFailed(c plannedCell, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ctx.Err() != nil {
		return
	}
	j.publishLocked(Event{
		Kind:      "error",
		Benchmark: c.bench.Name(),
		Workload:  c.w.WorkloadName(),
		Error:     err.Error(),
		Completed: j.completed,
		Total:     j.req.total,
	})
}

func (j *job) finish(result []byte) {
	j.mu.Lock()
	j.state = stateDone
	j.result = result
	j.cached = j.counts[cellCached] == j.req.total
	j.completed = j.req.total
	j.publishTerminalLocked()
	j.mu.Unlock()
}

// finishFromCache completes a job at birth: every cell was already
// resolved at submit time, the envelope was assembled synchronously, zero
// measurements executed. The terminal event is published immediately so
// SSE subscribers see an instant end of stream.
func (j *job) finishFromCache(result []byte) {
	j.mu.Lock()
	j.state = stateDone
	j.cached = true
	j.counts[cellCached] = j.req.total
	j.result = result
	j.completed = j.req.total
	j.publishTerminalLocked()
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = stateFailed
	j.errMsg = err.Error()
	j.publishTerminalLocked()
	j.mu.Unlock()
}

func (j *job) finishCanceled() {
	j.mu.Lock()
	j.state = stateCanceled
	j.publishTerminalLocked()
	j.mu.Unlock()
}

// publishLocked appends to the replay log and fans out to subscribers.
// Subscriber channels are sized for the whole event budget (see
// subscribe), so sends never block even if a client stalls.
func (j *job) publishLocked(e Event) {
	j.events = append(j.events, e)
	for _, ch := range j.subs {
		ch <- e //lint:allow blocking-send subscriber channels are sized for the whole event budget (subscribe); the send cannot block
	}
}

func (j *job) publishTerminalLocked() {
	j.publishLocked(Event{Kind: "terminal", State: j.state, Error: j.errMsg,
		Completed: j.completed, Total: j.req.total})
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.closed = true
}

// subscribe returns a channel replaying every past event and delivering
// every future one; the channel closes after the terminal event. The
// capacity covers the maximum event budget of a run — a start and a done
// event for each cell plus the job terminal — so the publisher never
// blocks on a slow consumer.
func (j *job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, 2*j.req.total+4)
	for _, e := range j.events {
		ch <- e
	}
	if j.closed {
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	unsub := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
	return ch, unsub
}
