package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBimodalLearnsAlwaysTaken(t *testing.T) {
	p := NewBimodal(10)
	correct := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if p.Observe(0x400123, true) {
			correct++
		}
	}
	if correct < n-2 {
		t.Errorf("bimodal correct = %d/%d on always-taken branch", correct, n)
	}
}

func TestBimodalAlternatingIsHard(t *testing.T) {
	p := NewBimodal(10)
	correct := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if p.Observe(0x400123, i%2 == 0) {
			correct++
		}
	}
	// A 2-bit counter cannot learn strict alternation: accuracy should be
	// mediocre.
	if correct > n*3/4 {
		t.Errorf("bimodal correct = %d/%d on alternating branch, expected poor accuracy", correct, n)
	}
}

func TestGShareLearnsAlternating(t *testing.T) {
	p := NewGShare(12, 8)
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.Observe(0x400123, i%2 == 0) {
			correct++
		}
	}
	// Global history makes alternation trivially learnable after warmup.
	if correct < n*9/10 {
		t.Errorf("gshare correct = %d/%d on alternating branch", correct, n)
	}
}

func TestGShareLearnsShortPattern(t *testing.T) {
	p := NewGShare(14, 10)
	pattern := []bool{true, true, false, true, false, false}
	correct := 0
	const n = 6000
	for i := 0; i < n; i++ {
		if p.Observe(0xbeef, pattern[i%len(pattern)]) {
			correct++
		}
	}
	if correct < n*85/100 {
		t.Errorf("gshare correct = %d/%d on periodic pattern", correct, n)
	}
}

func TestTournamentAtLeastAsGoodAsWorstComponent(t *testing.T) {
	// On random outcomes every predictor hovers near 50%; on biased
	// outcomes the tournament should do well.
	p := NewTournament(12)
	rng := rand.New(rand.NewSource(1))
	correct := 0
	const n = 5000
	for i := 0; i < n; i++ {
		taken := rng.Float64() < 0.9
		if p.Observe(uint64(i%16)*64, taken) {
			correct++
		}
	}
	if correct < n*80/100 {
		t.Errorf("tournament correct = %d/%d on 90%%-biased branches", correct, n)
	}
}

func TestPredictorReset(t *testing.T) {
	preds := []Predictor{NewBimodal(8), NewGShare(8, 8), NewTournament(8)}
	for _, p := range preds {
		for i := 0; i < 100; i++ {
			p.Observe(42, false)
		}
		p.Reset()
		// After reset the initial state is weakly-taken, so a taken
		// branch is predicted correctly again.
		if !p.Observe(42, true) {
			t.Errorf("%T: post-reset state should predict taken", p)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeB: 1024, Ways: 2, LineSize: 64})
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1008) {
		t.Error("same-line access should hit")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Errorf("stats = %d/%d, want 3/1", acc, miss)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 8 sets of 64B lines: three lines mapping to the
	// same set must evict the least recently used.
	c := NewCache(CacheConfig{Name: "t", SizeB: 1024, Ways: 2, LineSize: 64})
	sets := uint64(8)
	a := uint64(0)
	b := a + sets*64   // same set, different tag
	d := a + 2*sets*64 // same set, third tag
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Error("a should still be resident")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	// A working set that fits sees ~100% hits after warmup; one that is
	// 4x the capacity thrashes.
	c := NewCache(CacheConfig{Name: "t", SizeB: 4096, Ways: 4, LineSize: 64})
	fit := uint64(4096)
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < fit; addr += 64 {
			c.Access(addr)
		}
	}
	if r := c.MissRate(); r > 0.3 {
		t.Errorf("fitting working set miss rate = %v", r)
	}
	c.Reset()
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 4*fit; addr += 64 {
			c.Access(addr)
		}
	}
	if r := c.MissRate(); r < 0.9 {
		t.Errorf("thrashing working set miss rate = %v, want ~1", r)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeB: 1024, Ways: 2, LineSize: 64})
	c.Access(0x40)
	c.Reset()
	if c.Access(0x40) {
		t.Error("access after Reset should miss")
	}
	if acc, miss := c.Stats(); acc != 1 || miss != 1 {
		t.Errorf("stats after reset = %d/%d, want 1/1", acc, miss)
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on non-power-of-two line size")
		}
	}()
	NewCache(CacheConfig{Name: "bad", SizeB: 1024, Ways: 2, LineSize: 48})
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy()
	// First touch misses everywhere → memory.
	res, _ := h.Access(0x100000)
	if res != HitMemory {
		t.Errorf("cold access = %v, want memory", res)
	}
	// Immediately after, it is in L1.
	res, _ = h.Access(0x100000)
	if res != HitL1 {
		t.Errorf("warm access = %v, want L1", res)
	}
}

func TestHierarchyL2Capture(t *testing.T) {
	h := NewHierarchy()
	// Stream a working set larger than L1 (32 KiB) but smaller than L2
	// (256 KiB): steady-state accesses should mostly hit L2.
	size := uint64(128 << 10)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < size; a += 64 {
			h.Access(a)
		}
	}
	l2hits := 0
	total := 0
	for a := uint64(0); a < size; a += 64 {
		res, _ := h.Access(a)
		total++
		if res == HitL2 {
			l2hits++
		}
	}
	if l2hits < total/2 {
		t.Errorf("L2 hits = %d/%d for L2-sized working set", l2hits, total)
	}
}

func TestHierarchyTLB(t *testing.T) {
	h := NewHierarchy()
	// Touch 256 distinct pages: far beyond the 64-entry DTLB.
	for p := uint64(0); p < 256; p++ {
		h.Access(p << 12)
	}
	if h.TLBMisses() != 256 {
		t.Errorf("cold TLB misses = %d, want 256", h.TLBMisses())
	}
	h.Reset()
	// One page touched repeatedly: one miss only.
	for i := 0; i < 100; i++ {
		h.Access(0x5000)
	}
	if h.TLBMisses() != 1 {
		t.Errorf("hot-page TLB misses = %d, want 1", h.TLBMisses())
	}
}

func TestModelAccountPureCompute(t *testing.T) {
	m := DefaultModel()
	s := m.Account(Events{Ops: 4000})
	if s.Retiring != 4000 || s.BadSpec != 0 || s.BackEnd != 0 || s.FrontEnd != 0 {
		t.Errorf("pure compute slots = %+v", s)
	}
	if c := m.Cycles(s); c != 1000 {
		t.Errorf("cycles = %d, want 1000", c)
	}
}

func TestModelAccountMispredicts(t *testing.T) {
	m := DefaultModel()
	s := m.Account(Events{Ops: 100, Mispredicts: 10})
	want := 10 * m.MispredictPenalty * m.IssueWidth
	if s.BadSpec != want {
		t.Errorf("badspec slots = %d, want %d", s.BadSpec, want)
	}
}

func TestModelAccountMemory(t *testing.T) {
	m := DefaultModel()
	s := m.Account(Events{Ops: 100, Loads: 50, MemHits: 50})
	if s.BackEnd == 0 {
		t.Error("memory-bound events should produce back-end slots")
	}
	s2 := m.Account(Events{Ops: 100, Loads: 50, L2Hits: 50})
	if s2.BackEnd >= s.BackEnd {
		t.Error("L2 hits should stall less than DRAM hits")
	}
}

func TestModelFractionsSumToOne(t *testing.T) {
	f := func(ops, mis, l2, llc, mem, ic uint16) bool {
		m := DefaultModel()
		s := m.Account(Events{
			Ops:         uint64(ops) + 1,
			Mispredicts: uint64(mis),
			L2Hits:      uint64(l2),
			LLCHits:     uint64(llc),
			MemHits:     uint64(mem),
			ICMisses:    uint64(ic),
		})
		fe, be, bs, rt := s.Fractions()
		sum := fe + be + bs + rt
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotsAddAndEventsAdd(t *testing.T) {
	var s Slots
	s.Add(Slots{Retiring: 1, BadSpec: 2, FrontEnd: 3, BackEnd: 4})
	s.Add(Slots{Retiring: 10, BadSpec: 20, FrontEnd: 30, BackEnd: 40})
	if s.Total() != 110 {
		t.Errorf("total = %d, want 110", s.Total())
	}
	var e Events
	e.Add(Events{Ops: 5, Loads: 2})
	e.Add(Events{Ops: 1, Stores: 3})
	if e.Ops != 6 || e.Loads != 2 || e.Stores != 3 {
		t.Errorf("events = %+v", e)
	}
}

func TestMemoryResultString(t *testing.T) {
	for res, want := range map[MemoryResult]string{HitL1: "L1", HitL2: "L2", HitLLC: "LLC", HitMemory: "memory"} {
		if res.String() != want {
			t.Errorf("%d.String() = %q, want %q", res, res.String(), want)
		}
	}
}
