package uarch

import (
	"math/rand"
	"testing"
)

// cacheGeometries are the differential-test geometries: the real hierarchy's
// shapes plus deliberately awkward ones (direct-mapped-ish, single-set,
// tall-and-narrow, TLB-like pages).
var cacheGeometries = []CacheConfig{
	{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineSize: 64},
	{Name: "L2", SizeB: 256 << 10, Ways: 8, LineSize: 64},
	{Name: "LLC", SizeB: 8 << 20, Ways: 16, LineSize: 64},
	{Name: "DTLB", SizeB: 64 * 4096, Ways: 4, LineSize: 4096},
	{Name: "tiny", SizeB: 512, Ways: 2, LineSize: 32},
	{Name: "one-set", SizeB: 1024, Ways: 16, LineSize: 64},
	{Name: "one-way", SizeB: 4096, Ways: 1, LineSize: 64},
	{Name: "byte-lines", SizeB: 256, Ways: 4, LineSize: 1},
}

// streamFor builds an address stream that mixes the regimes the profiler
// generates: hot reuse, sequential streaming, strided walks, and uniform
// noise, so LRU state is exercised through hits, cold fills and evictions.
func streamFor(rng *rand.Rand, cfg CacheConfig, n int) []uint64 {
	span := 4 * cfg.SizeB // 4x capacity: plenty of conflict misses
	hot := make([]uint64, 16)
	for i := range hot {
		hot[i] = rng.Uint64() % span
	}
	stream := make([]uint64, n)
	seq := rng.Uint64() % span
	for i := range stream {
		switch rng.Intn(4) {
		case 0:
			stream[i] = hot[rng.Intn(len(hot))]
		case 1:
			seq += cfg.LineSize
			stream[i] = seq % (2 * span)
		case 2:
			stream[i] = (uint64(i) * 3 * cfg.LineSize) % span
		default:
			stream[i] = rng.Uint64() % (8 * span)
		}
	}
	return stream
}

// TestCacheMatchesReference holds the optimized Cache to the exact hit/miss
// sequence of the retained pre-optimization RefCache over randomized address
// streams on every geometry, including across a mid-stream Reset.
func TestCacheMatchesReference(t *testing.T) {
	for _, cfg := range cacheGeometries {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			opt := NewCache(cfg)
			ref := NewRefCache(cfg)
			stream := streamFor(rng, cfg, 20000)
			for i, addr := range stream {
				if i == len(stream)/2 {
					opt.Reset()
					ref.Reset()
				}
				oh, rh := opt.Access(addr), ref.Access(addr)
				if oh != rh {
					t.Fatalf("access %d (addr %#x): optimized hit=%v, reference hit=%v", i, addr, oh, rh)
				}
			}
			oa, om := opt.Stats()
			ra, rm := ref.Stats()
			if oa != ra || om != rm {
				t.Errorf("stats diverged: optimized %d/%d, reference %d/%d", oa, om, ra, rm)
			}
		})
	}
}

// TestHierarchyMatchesReference checks the full data hierarchy: every access
// must be satisfied at the same level with the same TLB outcome.
func TestHierarchyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opt := NewHierarchy()
	ref := NewRefHierarchy()
	stream := streamFor(rng, CacheConfig{SizeB: 1 << 20, LineSize: 64}, 50000)
	for i, addr := range stream {
		or, ot := opt.Access(addr)
		rr, rt := ref.Access(addr)
		if or != rr || ot != rt {
			t.Fatalf("access %d (addr %#x): optimized (%v, tlb=%v), reference (%v, tlb=%v)",
				i, addr, or, ot, rr, rt)
		}
	}
	if opt.TLBMisses() != ref.TLBMisses() {
		t.Errorf("TLB misses diverged: %d vs %d", opt.TLBMisses(), ref.TLBMisses())
	}
}

// TestTournamentMatchesReference holds the single-hash Tournament to the
// prediction sequence of the retained three-hash RefTournament over random
// branch sites and outcomes, across a mid-stream Reset.
func TestTournamentMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opt := NewTournament(14)
	ref := NewRefTournament(14)
	const n = 100000
	for i := 0; i < n; i++ {
		if i == n/2 {
			opt.Reset()
			ref.Reset()
		}
		site := uint64(rng.Intn(512)) * 8
		// Mix of biased, patterned and random branches.
		var taken bool
		switch site % 3 {
		case 0:
			taken = rng.Float64() < 0.9
		case 1:
			taken = i%4 != 0
		default:
			taken = rng.Intn(2) == 0
		}
		oc, rc := opt.Observe(site, taken), ref.Observe(site, taken)
		if oc != rc {
			t.Fatalf("branch %d (site %#x): optimized correct=%v, reference correct=%v", i, site, oc, rc)
		}
	}
}

// TestCacheLineShift pins the coalescing granularity the profiler's batched
// APIs depend on.
func TestCacheLineShift(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeB: 1024, Ways: 2, LineSize: 64})
	if c.LineShift() != 6 {
		t.Errorf("LineShift = %d, want 6", c.LineShift())
	}
}
