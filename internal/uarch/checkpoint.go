package uarch

import "fmt"

// Checkpoint/Restore snapshot the mutable state of the optimized event-path
// simulators so a caller can rewind them to a known point. The sampled
// execution mode (internal/perf) is the client: it captures the warmed-up
// simulator state at the end of the first instruction interval and restores
// it at every dead→live interval transition, so each fully-simulated
// representative interval starts from the same canonical warm state instead
// of whatever the previous live interval left behind.
//
// Snapshots are deep copies: restoring one is idempotent and a restored
// simulator is bit-identical — same hits, misses, replacement decisions,
// predictions — to the simulator at capture time, which the checkpoint tests
// assert by replaying identical access streams.

// CacheState is a point-in-time snapshot of a Cache (or TLB).
type CacheState struct {
	entries  []wayEntry
	mru      []int32
	accesses uint64
	misses   uint64
}

// Checkpoint captures the cache's complete replacement state and statistics.
func (c *Cache) Checkpoint() *CacheState {
	return &CacheState{
		entries:  append([]wayEntry(nil), c.entries...),
		mru:      append([]int32(nil), c.mru...),
		accesses: c.accesses,
		misses:   c.misses,
	}
}

// Restore rewinds the cache to a snapshot taken from the same geometry. It
// copies in place — no allocation — and panics on a geometry mismatch, which
// indicates a checkpoint from a different cache.
func (c *Cache) Restore(st *CacheState) {
	if len(st.entries) != len(c.entries) || len(st.mru) != len(c.mru) {
		panic(fmt.Sprintf("uarch: restore of cache %q from mismatched snapshot (%d/%d entries)",
			c.name, len(st.entries), len(c.entries)))
	}
	copy(c.entries, st.entries)
	copy(c.mru, st.mru)
	c.accesses = st.accesses
	c.misses = st.misses
}

// HierarchyState is a point-in-time snapshot of a Hierarchy.
type HierarchyState struct {
	l1, l2, llc, dtlb *CacheState
	tlbMisses         uint64
}

// Checkpoint captures all four levels plus the DTLB miss counter.
func (h *Hierarchy) Checkpoint() *HierarchyState {
	return &HierarchyState{
		l1:        h.L1.Checkpoint(),
		l2:        h.L2.Checkpoint(),
		llc:       h.LLC.Checkpoint(),
		dtlb:      h.DTLB.Checkpoint(),
		tlbMisses: h.tlbMisses,
	}
}

// Restore rewinds every level to the snapshot.
func (h *Hierarchy) Restore(st *HierarchyState) {
	h.L1.Restore(st.l1)
	h.L2.Restore(st.l2)
	h.LLC.Restore(st.llc)
	h.DTLB.Restore(st.dtlb)
	h.tlbMisses = st.tlbMisses
}

// TournamentState is a point-in-time snapshot of a Tournament predictor.
type TournamentState struct {
	sites   []tournEntry
	gshare  []twoBit
	history uint64
}

// Checkpoint captures both component tables, the choosers, and the global
// history register.
func (t *Tournament) Checkpoint() *TournamentState {
	return &TournamentState{
		sites:   append([]tournEntry(nil), t.sites...),
		gshare:  append([]twoBit(nil), t.gshare...),
		history: t.history,
	}
}

// Restore rewinds the predictor to a snapshot taken from the same table
// geometry; it panics on a size mismatch.
func (t *Tournament) Restore(st *TournamentState) {
	if len(st.sites) != len(t.sites) || len(st.gshare) != len(t.gshare) {
		panic(fmt.Sprintf("uarch: restore of tournament from mismatched snapshot (%d/%d sites)",
			len(st.sites), len(t.sites)))
	}
	copy(t.sites, st.sites)
	copy(t.gshare, st.gshare)
	t.history = st.history
}
