// Reference (pre-optimization) simulator implementations, retained verbatim
// when the event path was rewritten for speed. They are the ground truth the
// optimized models are differentially tested against: uarch's tests hold
// Cache/RefCache and Tournament/RefTournament to identical outputs over
// randomized streams, and harness's differential test replays every
// benchmark × workload through both paths asserting bit-identical Reports
// (perf.Options.Reference selects this path end to end).
//
// Do not optimize this file. Its value is that it stays the naive, obviously
// correct model: modulo set selection, parallel lines/valid/lru slices, a
// full O(ways) probe and an unconditional O(ways) LRU update.

package uarch

import "fmt"

// RefCache is the retained pre-optimization set-associative true-LRU cache.
type RefCache struct {
	name      string
	sets      uint64
	ways      int
	lineShift uint
	// lines[set*ways+way] holds the tag; lru[set*ways+way] holds the age
	// (0 = most recently used).
	lines []uint64
	valid []bool
	lru   []uint8

	accesses uint64
	misses   uint64
}

// NewRefCache builds a reference cache from its geometry, with the same
// validity panics as NewCache.
func NewRefCache(cfg CacheConfig) *RefCache {
	if cfg.Ways <= 0 || cfg.SizeB == 0 || cfg.LineSize == 0 {
		panic(fmt.Sprintf("uarch: invalid cache config %+v", cfg))
	}
	if cfg.SizeB%(uint64(cfg.Ways)*cfg.LineSize) != 0 {
		panic(fmt.Sprintf("uarch: cache %q size %d not divisible by ways*linesize", cfg.Name, cfg.SizeB))
	}
	sets := cfg.SizeB / (uint64(cfg.Ways) * cfg.LineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("uarch: cache %q set count %d not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	if cfg.LineSize != 1<<shift {
		panic(fmt.Sprintf("uarch: cache %q line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	n := int(sets) * cfg.Ways
	return &RefCache{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		lines:     make([]uint64, n),
		valid:     make([]bool, n),
		lru:       make([]uint8, n),
	}
}

// Access looks up addr, updating replacement state, and reports whether it
// hit. On a miss the line is installed.
func (c *RefCache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := line % c.sets
	tag := line / c.sets
	base := int(set) * c.ways

	// Hit path.
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == tag {
			c.touch(base, w)
			return true
		}
	}

	// Miss: fill the LRU (or first invalid) way.
	c.misses++
	victim := 0
	oldest := uint8(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	c.lines[base+victim] = tag
	c.valid[base+victim] = true
	// Treat the victim as the oldest line so that touch ages every other
	// way; otherwise cold fills would collapse all ages to zero and the
	// set would degenerate to fixed-way replacement.
	c.lru[base+victim] = uint8(c.ways - 1)
	c.touch(base, victim)
	return false
}

// touch marks way w of the set at base as most recently used.
func (c *RefCache) touch(base, w int) {
	age := c.lru[base+w]
	for i := 0; i < c.ways; i++ {
		if c.lru[base+i] < age {
			c.lru[base+i]++
		}
	}
	c.lru[base+w] = 0
}

// Reset invalidates all lines and clears statistics.
func (c *RefCache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.accesses = 0
	c.misses = 0
}

// Stats reports accesses and misses since the last Reset.
func (c *RefCache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Name returns the configured cache name.
func (c *RefCache) Name() string { return c.name }

// RefHierarchy is the reference counterpart of Hierarchy: the same
// three-level inclusive data hierarchy plus DTLB, built from RefCaches.
type RefHierarchy struct {
	L1   *RefCache
	L2   *RefCache
	LLC  *RefCache
	DTLB *RefCache

	tlbMisses uint64
}

// NewRefHierarchy builds the default hierarchy from reference caches, with
// the same geometry as NewHierarchy.
func NewRefHierarchy() *RefHierarchy {
	return &RefHierarchy{
		L1:   NewRefCache(CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineSize: 64}),
		L2:   NewRefCache(CacheConfig{Name: "L2", SizeB: 256 << 10, Ways: 8, LineSize: 64}),
		LLC:  NewRefCache(CacheConfig{Name: "LLC", SizeB: 8 << 20, Ways: 16, LineSize: 64}),
		DTLB: NewRefCache(CacheConfig{Name: "DTLB", SizeB: 64 * 4096, Ways: 4, LineSize: 4096}),
	}
}

// Access walks addr through the hierarchy and reports the level that
// satisfied it plus whether the DTLB missed.
func (h *RefHierarchy) Access(addr uint64) (MemoryResult, bool) {
	tlbMiss := !h.DTLB.Access(addr)
	if tlbMiss {
		h.tlbMisses++
	}
	if h.L1.Access(addr) {
		return HitL1, tlbMiss
	}
	if h.L2.Access(addr) {
		return HitL2, tlbMiss
	}
	if h.LLC.Access(addr) {
		return HitLLC, tlbMiss
	}
	return HitMemory, tlbMiss
}

// Reset clears all levels and statistics.
func (h *RefHierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.DTLB.Reset()
	h.tlbMisses = 0
}

// TLBMisses reports DTLB misses since the last Reset.
func (h *RefHierarchy) TLBMisses() uint64 { return h.tlbMisses }

// refBimodal is the retained pre-optimization bimodal predictor: mix() is
// recomputed on every Observe rather than shared with the tournament's
// chooser lookup.
type refBimodal struct {
	table []twoBit
	mask  uint64
}

func newRefBimodal(bits uint) *refBimodal {
	n := uint64(1) << bits
	b := &refBimodal{table: make([]twoBit, n), mask: n - 1}
	b.Reset()
	return b
}

// Reset restores every counter to weakly taken.
func (b *refBimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// Observe implements Predictor.
func (b *refBimodal) Observe(site uint64, taken bool) bool {
	idx := mix(site) & b.mask
	correct := b.table[idx].taken() == taken
	b.table[idx] = b.table[idx].update(taken)
	return correct
}

// refGShare is the retained pre-optimization gshare predictor: the history
// mask is recomputed from histLen on every Observe.
type refGShare struct {
	table   []twoBit
	mask    uint64
	history uint64
	histLen uint
}

func newRefGShare(bits, historyLen uint) *refGShare {
	n := uint64(1) << bits
	g := &refGShare{table: make([]twoBit, n), mask: n - 1, histLen: historyLen}
	g.Reset()
	return g
}

// Reset clears the history and restores counters to weakly taken.
func (g *refGShare) Reset() {
	g.history = 0
	for i := range g.table {
		g.table[i] = 2
	}
}

// Observe implements Predictor.
func (g *refGShare) Observe(site uint64, taken bool) bool {
	idx := (mix(site) ^ g.history) & g.mask
	correct := g.table[idx].taken() == taken
	g.table[idx] = g.table[idx].update(taken)
	g.history = (g.history << 1) & ((1 << g.histLen) - 1)
	if taken {
		g.history |= 1
	}
	return correct
}

// RefTournament is the retained pre-optimization tournament predictor: each
// component hashes the site independently (three mix() calls per branch).
type RefTournament struct {
	bimodal *refBimodal
	gshare  *refGShare
	chooser []twoBit // ≥2 selects gshare
	mask    uint64
}

// NewRefTournament returns a reference tournament predictor with 2^bits
// entries in each component table.
func NewRefTournament(bits uint) *RefTournament {
	n := uint64(1) << bits
	t := &RefTournament{
		bimodal: newRefBimodal(bits),
		gshare:  newRefGShare(bits, 12),
		chooser: make([]twoBit, n),
		mask:    n - 1,
	}
	t.Reset()
	return t
}

// Reset restores all component predictors and the chooser.
func (t *RefTournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.chooser {
		t.chooser[i] = 2 // weakly prefer gshare
	}
}

// Observe implements Predictor.
func (t *RefTournament) Observe(site uint64, taken bool) bool {
	idx := mix(site) & t.mask
	useGshare := t.chooser[idx].taken()
	bCorrect := t.bimodal.Observe(site, taken)
	gCorrect := t.gshare.Observe(site, taken)
	// Train the chooser toward whichever component was right.
	if gCorrect != bCorrect {
		t.chooser[idx] = t.chooser[idx].update(gCorrect)
	}
	if useGshare {
		return gCorrect
	}
	return bCorrect
}
