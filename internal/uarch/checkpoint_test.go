package uarch

import "testing"

// lcg is a tiny deterministic generator for checkpoint test streams.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

func TestCacheCheckpointRestore(t *testing.T) {
	c := NewCache(CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineSize: 64})
	g := lcg(1)
	for i := 0; i < 50000; i++ {
		c.Access(g.next() % (1 << 20))
	}
	st := c.Checkpoint()
	accesses0, misses0 := c.Stats()

	// Continue past the checkpoint, then restore and replay the identical
	// stream: the hit/miss sequence and statistics must repeat exactly.
	replay := g
	var first []bool
	for i := 0; i < 20000; i++ {
		first = append(first, c.Access(replay.next()%(1<<20)))
	}
	c.Restore(st)
	if a, m := c.Stats(); a != accesses0 || m != misses0 {
		t.Fatalf("restore did not rewind stats: got %d/%d want %d/%d", a, m, accesses0, misses0)
	}
	replay = g
	for i := 0; i < 20000; i++ {
		if got := c.Access(replay.next() % (1 << 20)); got != first[i] {
			t.Fatalf("access %d diverged after restore: got %v want %v", i, got, first[i])
		}
	}
}

func TestHierarchyCheckpointRestore(t *testing.T) {
	h := NewHierarchy()
	g := lcg(7)
	for i := 0; i < 80000; i++ {
		h.Access(g.next() % (64 << 20))
	}
	st := h.Checkpoint()
	tlb0 := h.TLBMisses()

	replay := g
	type outcome struct {
		res  MemoryResult
		miss bool
	}
	var first []outcome
	for i := 0; i < 30000; i++ {
		r, m := h.Access(replay.next() % (64 << 20))
		first = append(first, outcome{r, m})
	}
	h.Restore(st)
	if h.TLBMisses() != tlb0 {
		t.Fatalf("restore did not rewind TLB misses: got %d want %d", h.TLBMisses(), tlb0)
	}
	replay = g
	for i := 0; i < 30000; i++ {
		r, m := h.Access(replay.next() % (64 << 20))
		if r != first[i].res || m != first[i].miss {
			t.Fatalf("access %d diverged after restore: got %v/%v want %v/%v",
				i, r, m, first[i].res, first[i].miss)
		}
	}
}

func TestTournamentCheckpointRestore(t *testing.T) {
	tr := NewTournament(14)
	g := lcg(42)
	for i := 0; i < 60000; i++ {
		v := g.next()
		tr.Observe(v%4096, v&(1<<40) != 0)
	}
	st := tr.Checkpoint()

	replay := g
	var first []bool
	for i := 0; i < 20000; i++ {
		v := replay.next()
		first = append(first, tr.Observe(v%4096, v&(1<<40) != 0))
	}
	tr.Restore(st)
	replay = g
	for i := 0; i < 20000; i++ {
		v := replay.next()
		if got := tr.Observe(v%4096, v&(1<<40) != 0); got != first[i] {
			t.Fatalf("branch %d diverged after restore: got %v want %v", i, got, first[i])
		}
	}
}

func TestCacheRestoreMismatchPanics(t *testing.T) {
	small := NewCache(CacheConfig{Name: "small", SizeB: 4 << 10, Ways: 4, LineSize: 64})
	big := NewCache(CacheConfig{Name: "big", SizeB: 32 << 10, Ways: 8, LineSize: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring from a mismatched snapshot")
		}
	}()
	big.Restore(small.Checkpoint())
}
