package uarch

import "fmt"

// invalidTag marks an empty way. Tags are full line numbers (addr >>
// lineShift), so the sentinel collides only with an address in the last
// modeled line of the 64-bit space, which no benchmark address map reaches.
const invalidTag = ^uint64(0)

// wayEntry packs one way's replacement state into a single cache-friendly
// record: the full line number acting as tag (invalidTag when empty) and the
// LRU age (0 = most recently used). A set's ways are contiguous in
// Cache.ways, so a probe touches one array instead of chasing the three
// parallel slices (lines/valid/lru) the pre-optimization model used — see
// RefCache for that retained implementation.
type wayEntry struct {
	tag uint64
	age uint8
}

// Cache is a set-associative cache (or TLB, with LineSize = page size) with
// true-LRU replacement. This is the optimized event-path model: set
// selection is a mask (NewCache guarantees power-of-two sets), the probe
// checks the set's MRU way first so looping and streaming patterns hit on
// the first compare, and touch early-outs when the way is already MRU.
// Behaviour is bit-identical to RefCache; TestCacheMatchesReference holds
// the two to the same hit/miss sequence over randomized streams.
type Cache struct {
	name      string
	sets      uint64
	setMask   uint64
	ways      int
	lineShift uint
	// ways of set s occupy entries[s*ways : (s+1)*ways].
	entries []wayEntry
	// mru[s] is the way index of set s's most-recently-used entry, probed
	// before the way loop.
	mru []int32

	accesses uint64
	misses   uint64
}

// CacheConfig describes a cache geometry.
type CacheConfig struct {
	Name     string
	SizeB    uint64 // total capacity in bytes
	Ways     int
	LineSize uint64 // bytes per line (page size for TLBs)
}

// NewCache builds a cache from its geometry. It panics on invalid geometry
// because configurations are compile-time constants of the model.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Ways <= 0 || cfg.SizeB == 0 || cfg.LineSize == 0 {
		panic(fmt.Sprintf("uarch: invalid cache config %+v", cfg))
	}
	if cfg.SizeB%(uint64(cfg.Ways)*cfg.LineSize) != 0 {
		panic(fmt.Sprintf("uarch: cache %q size %d not divisible by ways*linesize", cfg.Name, cfg.SizeB))
	}
	sets := cfg.SizeB / (uint64(cfg.Ways) * cfg.LineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("uarch: cache %q set count %d not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	if cfg.LineSize != 1<<shift {
		panic(fmt.Sprintf("uarch: cache %q line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	c := &Cache{
		name:      cfg.Name,
		sets:      sets,
		setMask:   sets - 1,
		ways:      cfg.Ways,
		lineShift: shift,
		entries:   make([]wayEntry, int(sets)*cfg.Ways),
		mru:       make([]int32, sets),
	}
	for i := range c.entries {
		c.entries[i].tag = invalidTag
	}
	return c
}

// LineShift returns log2 of the line size: the granularity below which two
// addresses are indistinguishable to the model. The profiler's batched event
// APIs use it to coalesce consecutive same-line accesses.
func (c *Cache) LineShift() uint { return c.lineShift }

// Access looks up addr, updating replacement state, and reports whether it
// hit. On a miss the line is installed.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := line & c.setMask
	base := int(set) * c.ways
	ws := c.entries[base : base+c.ways : base+c.ways]

	// MRU-first probe: repeated and streaming accesses resolve on one
	// compare, and an MRU hit needs no replacement update at all.
	if ws[c.mru[set]].tag == line {
		return true
	}
	for w := range ws {
		if ws[w].tag == line {
			c.touch(ws, set, w)
			return true
		}
	}

	// Miss: fill the first invalid way, or the LRU one.
	c.misses++
	victim := 0
	oldest := uint8(0)
	for w := range ws {
		if ws[w].tag == invalidTag {
			victim = w
			break
		}
		if ws[w].age >= oldest {
			oldest = ws[w].age
			victim = w
		}
	}
	ws[victim].tag = line
	// Treat the victim as the oldest line so that touch ages every other
	// way; otherwise cold fills would collapse all ages to zero and the
	// set would degenerate to fixed-way replacement.
	ws[victim].age = uint8(c.ways - 1)
	c.touch(ws, set, victim)
	return false
}

// touch marks way w of the set as most recently used. Callers on the hit
// path only reach it for non-MRU ways, so the aging loop always has work.
func (c *Cache) touch(ws []wayEntry, set uint64, w int) {
	age := ws[w].age
	if age == 0 {
		c.mru[set] = int32(w)
		return
	}
	for i := range ws {
		if ws[i].age < age {
			ws[i].age++
		}
	}
	ws[w].age = 0
	c.mru[set] = int32(w)
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = wayEntry{tag: invalidTag}
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
	c.accesses = 0
	c.misses = 0
}

// Stats reports accesses and misses since the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 when the cache was never accessed.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.name }

// MemoryResult classifies where a data access was satisfied.
type MemoryResult int

// Levels of the modeled memory hierarchy, ordered by increasing latency.
const (
	HitL1 MemoryResult = iota
	HitL2
	HitLLC
	HitMemory
)

// String returns the level name.
func (r MemoryResult) String() string {
	switch r {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	default:
		return "memory"
	}
}

// Hierarchy is an inclusive three-level data-cache hierarchy plus a DTLB,
// mirroring the i7-2600 memory system the paper's measurements ran on.
type Hierarchy struct {
	L1   *Cache
	L2   *Cache
	LLC  *Cache
	DTLB *Cache

	tlbMisses uint64
}

// NewHierarchy builds the default hierarchy: 32 KiB/8-way L1, 256 KiB/8-way
// L2, 8 MiB/16-way LLC, 64-entry 4-way DTLB with 4 KiB pages.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:   NewCache(CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineSize: 64}),
		L2:   NewCache(CacheConfig{Name: "L2", SizeB: 256 << 10, Ways: 8, LineSize: 64}),
		LLC:  NewCache(CacheConfig{Name: "LLC", SizeB: 8 << 20, Ways: 16, LineSize: 64}),
		DTLB: NewCache(CacheConfig{Name: "DTLB", SizeB: 64 * 4096, Ways: 4, LineSize: 4096}),
	}
}

// Access walks addr through the hierarchy and reports the level that
// satisfied it plus whether the DTLB missed.
func (h *Hierarchy) Access(addr uint64) (MemoryResult, bool) {
	tlbMiss := !h.DTLB.Access(addr)
	if tlbMiss {
		h.tlbMisses++
	}
	if h.L1.Access(addr) {
		return HitL1, tlbMiss
	}
	if h.L2.Access(addr) {
		return HitL2, tlbMiss
	}
	if h.LLC.Access(addr) {
		return HitLLC, tlbMiss
	}
	return HitMemory, tlbMiss
}

// Reset clears all levels and statistics.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.DTLB.Reset()
	h.tlbMisses = 0
}

// TLBMisses reports DTLB misses since the last Reset.
func (h *Hierarchy) TLBMisses() uint64 { return h.tlbMisses }
