package uarch

import "fmt"

// Cache is a set-associative cache (or TLB, with LineSize = page size) with
// true-LRU replacement.
type Cache struct {
	name      string
	sets      uint64
	ways      int
	lineShift uint
	// lines[set*ways+way] holds the tag; lru[set*ways+way] holds the age
	// (0 = most recently used).
	lines []uint64
	valid []bool
	lru   []uint8

	accesses uint64
	misses   uint64
}

// CacheConfig describes a cache geometry.
type CacheConfig struct {
	Name     string
	SizeB    uint64 // total capacity in bytes
	Ways     int
	LineSize uint64 // bytes per line (page size for TLBs)
}

// NewCache builds a cache from its geometry. It panics on invalid geometry
// because configurations are compile-time constants of the model.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Ways <= 0 || cfg.SizeB == 0 || cfg.LineSize == 0 {
		panic(fmt.Sprintf("uarch: invalid cache config %+v", cfg))
	}
	if cfg.SizeB%(uint64(cfg.Ways)*cfg.LineSize) != 0 {
		panic(fmt.Sprintf("uarch: cache %q size %d not divisible by ways*linesize", cfg.Name, cfg.SizeB))
	}
	sets := cfg.SizeB / (uint64(cfg.Ways) * cfg.LineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("uarch: cache %q set count %d not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	if cfg.LineSize != 1<<shift {
		panic(fmt.Sprintf("uarch: cache %q line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	n := int(sets) * cfg.Ways
	return &Cache{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		lines:     make([]uint64, n),
		valid:     make([]bool, n),
		lru:       make([]uint8, n),
	}
}

// Access looks up addr, updating replacement state, and reports whether it
// hit. On a miss the line is installed.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := line % c.sets
	tag := line / c.sets
	base := int(set) * c.ways

	// Hit path.
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == tag {
			c.touch(base, w)
			return true
		}
	}

	// Miss: fill the LRU (or first invalid) way.
	c.misses++
	victim := 0
	oldest := uint8(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	c.lines[base+victim] = tag
	c.valid[base+victim] = true
	// Treat the victim as the oldest line so that touch ages every other
	// way; otherwise cold fills would collapse all ages to zero and the
	// set would degenerate to fixed-way replacement.
	c.lru[base+victim] = uint8(c.ways - 1)
	c.touch(base, victim)
	return false
}

// touch marks way w of the set at base as most recently used.
func (c *Cache) touch(base, w int) {
	age := c.lru[base+w]
	for i := 0; i < c.ways; i++ {
		if c.lru[base+i] < age {
			c.lru[base+i]++
		}
	}
	c.lru[base+w] = 0
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.accesses = 0
	c.misses = 0
}

// Stats reports accesses and misses since the last Reset.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses, or 0 when the cache was never accessed.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.name }

// MemoryResult classifies where a data access was satisfied.
type MemoryResult int

// Levels of the modeled memory hierarchy, ordered by increasing latency.
const (
	HitL1 MemoryResult = iota
	HitL2
	HitLLC
	HitMemory
)

// String returns the level name.
func (r MemoryResult) String() string {
	switch r {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	default:
		return "memory"
	}
}

// Hierarchy is an inclusive three-level data-cache hierarchy plus a DTLB,
// mirroring the i7-2600 memory system the paper's measurements ran on.
type Hierarchy struct {
	L1   *Cache
	L2   *Cache
	LLC  *Cache
	DTLB *Cache

	tlbMisses uint64
}

// NewHierarchy builds the default hierarchy: 32 KiB/8-way L1, 256 KiB/8-way
// L2, 8 MiB/16-way LLC, 64-entry 4-way DTLB with 4 KiB pages.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:   NewCache(CacheConfig{Name: "L1D", SizeB: 32 << 10, Ways: 8, LineSize: 64}),
		L2:   NewCache(CacheConfig{Name: "L2", SizeB: 256 << 10, Ways: 8, LineSize: 64}),
		LLC:  NewCache(CacheConfig{Name: "LLC", SizeB: 8 << 20, Ways: 16, LineSize: 64}),
		DTLB: NewCache(CacheConfig{Name: "DTLB", SizeB: 64 * 4096, Ways: 4, LineSize: 4096}),
	}
}

// Access walks addr through the hierarchy and reports the level that
// satisfied it plus whether the DTLB missed.
func (h *Hierarchy) Access(addr uint64) (MemoryResult, bool) {
	tlbMiss := !h.DTLB.Access(addr)
	if tlbMiss {
		h.tlbMisses++
	}
	if h.L1.Access(addr) {
		return HitL1, tlbMiss
	}
	if h.L2.Access(addr) {
		return HitL2, tlbMiss
	}
	if h.LLC.Access(addr) {
		return HitLLC, tlbMiss
	}
	return HitMemory, tlbMiss
}

// Reset clears all levels and statistics.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.DTLB.Reset()
	h.tlbMisses = 0
}

// TLBMisses reports DTLB misses since the last Reset.
func (h *Hierarchy) TLBMisses() uint64 { return h.tlbMisses }
