package uarch

// Model holds the cost parameters of the pipeline-slot accounting model.
// Every event observed by the profiler is converted to issue slots in one of
// the four top-down categories; fractions are then slots-per-category over
// total slots, exactly as Intel's methodology defines them.
type Model struct {
	// IssueWidth is the number of micro-op issue slots per cycle.
	IssueWidth uint64
	// MispredictPenalty is the number of cycles of issue lost to a branch
	// mispredict (pipeline re-steer + wrong-path work).
	MispredictPenalty uint64
	// TakenBranchBubble is the front-end fetch-redirect cost, in cycles,
	// charged per taken branch (even correctly predicted taken branches
	// redirect the fetch stream).
	TakenBranchBubble uint64
	// L2HitPenalty, LLCHitPenalty, MemPenalty are the additional stall
	// cycles charged to the back end for a load satisfied at each level.
	// L1 hits are assumed fully hidden by out-of-order execution.
	L2HitPenalty  uint64
	LLCHitPenalty uint64
	MemPenalty    uint64
	// TLBPenalty is the page-walk stall charged per DTLB miss.
	TLBPenalty uint64
	// LongOpPenalty is the back-end stall charged per long-latency
	// arithmetic op (divisions, square roots, transcendental kernels).
	LongOpPenalty uint64
	// ICacheMissPenalty and ITLBMissPenalty are front-end fetch stalls.
	ICacheMissPenalty uint64
	ITLBMissPenalty   uint64
	// MLP is the memory-level-parallelism divisor: the modeled back-end
	// memory stall is the raw latency sum divided by MLP, reflecting
	// overlapping misses. Must be ≥ 1.
	MLP uint64
}

// DefaultModel returns cost parameters loosely calibrated to the Sandy
// Bridge i7-2600 generation used in the paper: 4-wide issue, ~15-cycle
// mispredict penalty, 12/26/180-cycle L2/LLC/memory latencies.
func DefaultModel() Model {
	return Model{
		IssueWidth:        4,
		MispredictPenalty: 12,
		TakenBranchBubble: 2,
		L2HitPenalty:      12,
		LLCHitPenalty:     26,
		MemPenalty:        180,
		TLBPenalty:        30,
		LongOpPenalty:     20,
		ICacheMissPenalty: 14,
		ITLBMissPenalty:   30,
		MLP:               2,
	}
}

// Events aggregates the raw activity of an instrumented region or program.
type Events struct {
	Ops         uint64 // retired simple micro-ops
	LongOps     uint64 // retired long-latency micro-ops (also counted toward retiring)
	Branches    uint64 // dynamic conditional branches (retire as ops too)
	Taken       uint64 // taken branches (fetch redirects)
	Mispredicts uint64 // branches the modeled predictor got wrong
	Loads       uint64
	Stores      uint64
	L2Hits      uint64 // loads satisfied in L2
	LLCHits     uint64 // loads satisfied in LLC
	MemHits     uint64 // loads satisfied in DRAM
	TLBMisses   uint64
	ICMisses    uint64 // instruction-cache misses
	ITLBMisses  uint64
}

// Add accumulates o into e.
func (e *Events) Add(o Events) {
	e.Ops += o.Ops
	e.LongOps += o.LongOps
	e.Branches += o.Branches
	e.Taken += o.Taken
	e.Mispredicts += o.Mispredicts
	e.Loads += o.Loads
	e.Stores += o.Stores
	e.L2Hits += o.L2Hits
	e.LLCHits += o.LLCHits
	e.MemHits += o.MemHits
	e.TLBMisses += o.TLBMisses
	e.ICMisses += o.ICMisses
	e.ITLBMisses += o.ITLBMisses
}

// Slots is the top-down classification of all issue slots of a region.
type Slots struct {
	Retiring uint64
	BadSpec  uint64
	FrontEnd uint64
	BackEnd  uint64
}

// Total returns the total number of issue slots.
func (s Slots) Total() uint64 { return s.Retiring + s.BadSpec + s.FrontEnd + s.BackEnd }

// Add accumulates o into s.
func (s *Slots) Add(o Slots) {
	s.Retiring += o.Retiring
	s.BadSpec += o.BadSpec
	s.FrontEnd += o.FrontEnd
	s.BackEnd += o.BackEnd
}

// Fractions returns the four slot fractions (f, b, s, r order is the
// caller's concern; fields are named). A region with no slots returns all
// zeros.
func (s Slots) Fractions() (frontend, backend, badspec, retiring float64) {
	t := s.Total()
	if t == 0 {
		return 0, 0, 0, 0
	}
	ft := float64(t)
	return float64(s.FrontEnd) / ft, float64(s.BackEnd) / ft, float64(s.BadSpec) / ft, float64(s.Retiring) / ft
}

// Account converts raw events into classified issue slots under the model.
func (m Model) Account(e Events) Slots {
	mlp := m.MLP
	if mlp == 0 {
		mlp = 1
	}

	// Retiring: every retired op occupies one slot. Memory ops and
	// branches retire as ops; callers count them in Ops as well as in
	// their specific counters, or not — we defensively add the specific
	// counters so a caller that only reports Loads still retires them.
	retiring := e.Ops + e.LongOps

	// Bad speculation: every mispredict throws away a full pipeline's
	// worth of issue for the re-steer period.
	badSpec := e.Mispredicts * m.MispredictPenalty * m.IssueWidth

	// Back end: memory stalls (divided by the MLP factor to model
	// overlapping misses) plus long-op and TLB stalls.
	memStall := (e.L2Hits*m.L2HitPenalty + e.LLCHits*m.LLCHitPenalty + e.MemHits*m.MemPenalty) / mlp
	backStall := memStall + e.TLBMisses*m.TLBPenalty + e.LongOps*m.LongOpPenalty
	backEnd := backStall * m.IssueWidth

	// Front end: fetch stalls, including taken-branch redirect bubbles.
	frontStall := e.ICMisses*m.ICacheMissPenalty + e.ITLBMisses*m.ITLBMissPenalty +
		e.Taken*m.TakenBranchBubble
	frontEnd := frontStall * m.IssueWidth

	return Slots{Retiring: retiring, BadSpec: badSpec, FrontEnd: frontEnd, BackEnd: backEnd}
}

// Cycles converts classified slots to modeled core cycles.
func (m Model) Cycles(s Slots) uint64 {
	w := m.IssueWidth
	if w == 0 {
		w = 1
	}
	return (s.Total() + w - 1) / w
}
