// Package uarch models the micro-architectural resources whose utilization
// Intel's top-down methodology measures: branch prediction, the cache/TLB
// hierarchy, and a pipeline-slot cycle-accounting model that classifies
// every issue slot as front-end bound, back-end bound, bad speculation, or
// retiring (Section V-B of the paper).
//
// The paper measured real hardware counters on an i7-2600; this package is
// the synthetic substitute. It is driven by the *actual* branch outcomes and
// memory addresses of the benchmark implementations, so workload-induced
// behaviour changes surface in the same four categories the paper reports.
package uarch

// Predictor is a branch direction predictor. Predict-then-update is folded
// into a single Observe call because the model never needs the prediction
// without immediately learning the outcome.
type Predictor interface {
	// Observe records a dynamic branch at the given site with the actual
	// outcome and reports whether the predictor had predicted it
	// correctly.
	Observe(site uint64, taken bool) (correct bool)
	// Reset restores the initial predictor state.
	Reset()
}

// twoBit is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 predict
// taken.
type twoBit uint8

func (c twoBit) taken() bool { return c >= 2 }

func (c twoBit) update(taken bool) twoBit {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic per-site 2-bit saturating counter predictor.
type Bimodal struct {
	table []twoBit
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters. Counters are
// initialized to weakly taken, matching common hardware reset state.
func NewBimodal(bits uint) *Bimodal {
	n := uint64(1) << bits
	b := &Bimodal{table: make([]twoBit, n), mask: n - 1}
	b.Reset()
	return b
}

// Reset restores every counter to weakly taken.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// Observe implements Predictor.
func (b *Bimodal) Observe(site uint64, taken bool) bool {
	return b.observeHashed(mix(site), taken)
}

// observeHashed is the table update with the site hash already computed, so
// a combining predictor can hash once per branch for all its components.
func (b *Bimodal) observeHashed(h uint64, taken bool) bool {
	idx := h & b.mask
	correct := b.table[idx].taken() == taken
	b.table[idx] = b.table[idx].update(taken)
	return correct
}

// GShare is a global-history predictor: the pattern-history table is indexed
// by the branch site XOR the global outcome history.
type GShare struct {
	table    []twoBit
	mask     uint64
	history  uint64
	histLen  uint
	histMask uint64
}

// NewGShare returns a gshare predictor with 2^bits counters and a history
// register of historyLen bits.
func NewGShare(bits, historyLen uint) *GShare {
	n := uint64(1) << bits
	g := &GShare{table: make([]twoBit, n), mask: n - 1, histLen: historyLen,
		histMask: (1 << historyLen) - 1}
	g.Reset()
	return g
}

// Reset clears the history and restores counters to weakly taken.
func (g *GShare) Reset() {
	g.history = 0
	for i := range g.table {
		g.table[i] = 2
	}
}

// Observe implements Predictor.
func (g *GShare) Observe(site uint64, taken bool) bool {
	return g.observeHashed(mix(site), taken)
}

// observeHashed is the table update with the site hash already computed.
func (g *GShare) observeHashed(h uint64, taken bool) bool {
	idx := (h ^ g.history) & g.mask
	correct := g.table[idx].taken() == taken
	g.table[idx] = g.table[idx].update(taken)
	g.history = (g.history << 1) & g.histMask
	if taken {
		g.history |= 1
	}
	return correct
}

// satNext is the saturating 2-bit counter transition table, indexed by
// (counter<<1)|outcome. It is twoBit.update flattened into a branchless
// lookup for the predictor hot path.
var satNext = [8]twoBit{
	0, 1, // from 0: not-taken → 0, taken → 1
	0, 2, // from 1
	1, 3, // from 2
	2, 3, // from 3
}

// tournEntry packs the two per-site tables the tournament indexes with the
// same hash — the bimodal counter and the chooser — into one slot, so a
// branch touches one cache line for both.
type tournEntry struct {
	bimodal twoBit
	chooser twoBit // ≥2 selects gshare
}

// Tournament combines a bimodal and a gshare predictor with a per-site
// chooser, approximating the hybrid predictors of the Sandy Bridge era
// machines used in the paper.
type Tournament struct {
	sites    []tournEntry
	gshare   []twoBit
	mask     uint64
	history  uint64
	histMask uint64
}

// NewTournament returns a tournament predictor with 2^bits entries in each
// component table and a 12-bit gshare history.
func NewTournament(bits uint) *Tournament {
	n := uint64(1) << bits
	t := &Tournament{
		sites:    make([]tournEntry, n),
		gshare:   make([]twoBit, n),
		mask:     n - 1,
		histMask: (1 << 12) - 1,
	}
	t.Reset()
	return t
}

// Reset restores all component predictors and the chooser.
func (t *Tournament) Reset() {
	for i := range t.sites {
		t.sites[i] = tournEntry{bimodal: 2, chooser: 2} // weakly taken, weakly prefer gshare
	}
	for i := range t.gshare {
		t.gshare[i] = 2
	}
	t.history = 0
}

// Observe implements Predictor. The site is hashed once and shared by the
// chooser and both component tables (the components index with the same
// mix(site) value they would compute themselves), and counters step through
// satNext, so predictions are bit-identical to the retained RefTournament —
// three hashes and branchy updates per branch — which
// TestTournamentMatchesReference asserts.
func (t *Tournament) Observe(site uint64, taken bool) bool {
	h := mix(site)
	e := &t.sites[h&t.mask]
	gi := (h ^ t.history) & t.mask
	g := t.gshare[gi]
	bit := twoBit(0)
	if taken {
		bit = 1
	}
	bCorrect := e.bimodal.taken() == taken
	gCorrect := g.taken() == taken
	useGshare := e.chooser.taken()
	e.bimodal = satNext[e.bimodal<<1|bit]
	t.gshare[gi] = satNext[g<<1|bit]
	t.history = (t.history<<1 | uint64(bit)) & t.histMask
	// Train the chooser toward whichever component was right.
	if gCorrect != bCorrect {
		gbit := twoBit(0)
		if gCorrect {
			gbit = 1
		}
		e.chooser = satNext[e.chooser<<1|gbit]
	}
	if useGshare {
		return gCorrect
	}
	return bCorrect
}

// mix is a 64-bit finalizer (splitmix64) that spreads branch-site
// identifiers across the predictor tables.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
