// Package uarch models the micro-architectural resources whose utilization
// Intel's top-down methodology measures: branch prediction, the cache/TLB
// hierarchy, and a pipeline-slot cycle-accounting model that classifies
// every issue slot as front-end bound, back-end bound, bad speculation, or
// retiring (Section V-B of the paper).
//
// The paper measured real hardware counters on an i7-2600; this package is
// the synthetic substitute. It is driven by the *actual* branch outcomes and
// memory addresses of the benchmark implementations, so workload-induced
// behaviour changes surface in the same four categories the paper reports.
package uarch

// Predictor is a branch direction predictor. Predict-then-update is folded
// into a single Observe call because the model never needs the prediction
// without immediately learning the outcome.
type Predictor interface {
	// Observe records a dynamic branch at the given site with the actual
	// outcome and reports whether the predictor had predicted it
	// correctly.
	Observe(site uint64, taken bool) (correct bool)
	// Reset restores the initial predictor state.
	Reset()
}

// twoBit is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 predict
// taken.
type twoBit uint8

func (c twoBit) taken() bool { return c >= 2 }

func (c twoBit) update(taken bool) twoBit {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic per-site 2-bit saturating counter predictor.
type Bimodal struct {
	table []twoBit
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters. Counters are
// initialized to weakly taken, matching common hardware reset state.
func NewBimodal(bits uint) *Bimodal {
	n := uint64(1) << bits
	b := &Bimodal{table: make([]twoBit, n), mask: n - 1}
	b.Reset()
	return b
}

// Reset restores every counter to weakly taken.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// Observe implements Predictor.
func (b *Bimodal) Observe(site uint64, taken bool) bool {
	idx := mix(site) & b.mask
	correct := b.table[idx].taken() == taken
	b.table[idx] = b.table[idx].update(taken)
	return correct
}

// GShare is a global-history predictor: the pattern-history table is indexed
// by the branch site XOR the global outcome history.
type GShare struct {
	table   []twoBit
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare returns a gshare predictor with 2^bits counters and a history
// register of historyLen bits.
func NewGShare(bits, historyLen uint) *GShare {
	n := uint64(1) << bits
	g := &GShare{table: make([]twoBit, n), mask: n - 1, histLen: historyLen}
	g.Reset()
	return g
}

// Reset clears the history and restores counters to weakly taken.
func (g *GShare) Reset() {
	g.history = 0
	for i := range g.table {
		g.table[i] = 2
	}
}

// Observe implements Predictor.
func (g *GShare) Observe(site uint64, taken bool) bool {
	idx := (mix(site) ^ g.history) & g.mask
	correct := g.table[idx].taken() == taken
	g.table[idx] = g.table[idx].update(taken)
	g.history = (g.history << 1) & ((1 << g.histLen) - 1)
	if taken {
		g.history |= 1
	}
	return correct
}

// Tournament combines a bimodal and a gshare predictor with a per-site
// chooser, approximating the hybrid predictors of the Sandy Bridge era
// machines used in the paper.
type Tournament struct {
	bimodal *Bimodal
	gshare  *GShare
	chooser []twoBit // ≥2 selects gshare
	mask    uint64
}

// NewTournament returns a tournament predictor with 2^bits entries in each
// component table.
func NewTournament(bits uint) *Tournament {
	n := uint64(1) << bits
	t := &Tournament{
		bimodal: NewBimodal(bits),
		gshare:  NewGShare(bits, 12),
		chooser: make([]twoBit, n),
		mask:    n - 1,
	}
	t.Reset()
	return t
}

// Reset restores all component predictors and the chooser.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.chooser {
		t.chooser[i] = 2 // weakly prefer gshare
	}
}

// Observe implements Predictor.
func (t *Tournament) Observe(site uint64, taken bool) bool {
	idx := mix(site) & t.mask
	useGshare := t.chooser[idx].taken()
	bCorrect := t.bimodal.Observe(site, taken)
	gCorrect := t.gshare.Observe(site, taken)
	// Train the chooser toward whichever component was right.
	if gCorrect != bCorrect {
		t.chooser[idx] = t.chooser[idx].update(gCorrect)
	}
	if useGshare {
		return gCorrect
	}
	return bCorrect
}

// mix is a 64-bit finalizer (splitmix64) that spreads branch-site
// identifiers across the predictor tables.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
