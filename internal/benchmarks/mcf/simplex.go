package mcf

import (
	"math"

	"repro/internal/perf"
)

// Synthetic data-address bases used to route the solver's real access
// pattern through the modeled cache hierarchy.
const (
	arcBase  = 0x1_0000_0000
	nodeBase = 0x2_0000_0000
	arcRec   = 32 // modeled bytes per arc record
	nodeRec  = 32 // modeled bytes per node record
)

// arc states in the simplex basis.
const (
	stateLower = iota
	stateTree
	stateUpper
)

// simplex is a primal network-simplex solver with an artificial-root Big-M
// start, block pricing, and full potential refresh after each pivot — the
// same algorithmic skeleton as Löbel's MCF code that 505.mcf_r wraps.
type simplex struct {
	in   *Instance
	p    *perf.Profiler
	n    int // real nodes
	root int // artificial root index (= n)

	// arcs = original arcs followed by n artificial arcs.
	from, to  []int
	cost, cap []int64
	flow      []int64
	state     []uint8

	parent    []int
	parentArc []int
	depth     []int32
	pi        []int64

	children []([]int) // rebuilt per refresh
	stack    []int     // refreshPotentials DFS scratch
	scanPos  int

	pivots int
}

const inf = math.MaxInt64 / 4

// newSimplex builds the Big-M starting basis.
func newSimplex(in *Instance, p *perf.Profiler) *simplex {
	n := in.NumNodes
	m := len(in.Arcs)
	s := &simplex{
		in:        in,
		p:         p,
		n:         n,
		root:      n,
		from:      make([]int, m+n),
		to:        make([]int, m+n),
		cost:      make([]int64, m+n),
		cap:       make([]int64, m+n),
		flow:      make([]int64, m+n),
		state:     make([]uint8, m+n),
		parent:    make([]int, n+1),
		parentArc: make([]int, n+1),
		depth:     make([]int32, n+1),
		pi:        make([]int64, n+1),
		children:  make([][]int, n+1),
	}
	var maxCost int64 = 1
	for i, a := range in.Arcs {
		s.from[i], s.to[i], s.cost[i], s.cap[i] = a.From, a.To, a.Cost, a.Cap
		s.state[i] = stateLower
		if c := a.Cost; c > maxCost {
			maxCost = c
		} else if -c > maxCost {
			maxCost = -c
		}
	}
	bigM := maxCost * int64(n+1) * 4
	for v := 0; v < n; v++ {
		i := m + v
		s.cost[i] = bigM
		s.cap[i] = inf
		s.state[i] = stateTree
		if in.Supply[v] >= 0 {
			s.from[i], s.to[i] = v, s.root
			s.flow[i] = in.Supply[v]
		} else {
			s.from[i], s.to[i] = s.root, v
			s.flow[i] = -in.Supply[v]
		}
		s.parent[v] = s.root
		s.parentArc[v] = i
		s.depth[v] = 1
	}
	s.parent[s.root] = -1
	s.parentArc[s.root] = -1
	s.refreshPotentials()
	return s
}

// refreshPotentials recomputes depth and node potentials by walking the
// spanning tree from the root (mirrors MCF's refresh_potential).
func (s *simplex) refreshPotentials() {
	if s.p != nil {
		s.p.Enter("refresh_potential")
		defer s.p.Leave()
	}
	for v := range s.children {
		s.children[v] = s.children[v][:0]
	}
	for v := 0; v <= s.n; v++ {
		if pa := s.parent[v]; pa >= 0 {
			s.children[pa] = append(s.children[pa], v)
		}
	}
	s.pi[s.root] = 0
	s.depth[s.root] = 0
	// The DFS stack is hoisted into the simplex: refreshPotentials runs
	// once per pivot, and a per-call allocation here dominated the solver's
	// heap churn.
	stack := append(s.stack[:0], s.root)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range s.children[u] {
			a := s.parentArc[v]
			if s.p != nil {
				s.p.Ops(4)
				s.p.Load(nodeBase + uint64(v)*nodeRec)
				s.p.Load(arcBase + uint64(a)*arcRec)
			}
			if s.from[a] == v { // arc points v -> parent
				s.pi[v] = s.cost[a] + s.pi[u]
			} else { // arc points parent -> v
				s.pi[v] = s.pi[u] - s.cost[a]
			}
			s.depth[v] = s.depth[u] + 1
			stack = append(stack, v)
		}
	}
	s.stack = stack
}

// reducedCost returns cost[a] - pi[from] + pi[to].
func (s *simplex) reducedCost(a int) int64 {
	return s.cost[a] - s.pi[s.from[a]] + s.pi[s.to[a]]
}

// priceEntering scans arcs in blocks for the most violating non-tree arc
// (mirrors MCF's primal_bea_mpp "best eligible arc, multiple partial
// pricing"). Returns -1 when the basis is optimal.
func (s *simplex) priceEntering() int {
	if s.p != nil {
		s.p.Enter("primal_bea_mpp")
		defer s.p.Leave()
	}
	m := len(s.from)
	block := m / 16
	if block < 64 {
		block = 64
	}
	scanned := 0
	best := -1
	var bestViol int64
	for scanned < m {
		end := scanned + block
		for i := 0; i < block && scanned+i < m; i++ {
			a := s.scanPos
			s.scanPos++
			if s.scanPos == m {
				s.scanPos = 0
			}
			if s.p != nil {
				s.p.Ops(3)
				s.p.Load(arcBase + uint64(a)*arcRec)
				s.p.Load(nodeBase + uint64(s.from[a])*nodeRec)
				s.p.Load(nodeBase + uint64(s.to[a])*nodeRec)
			}
			if s.state[a] == stateTree {
				continue
			}
			rc := s.reducedCost(a)
			var viol int64
			if s.state[a] == stateLower {
				viol = -rc
			} else {
				viol = rc
			}
			eligible := viol > 0
			if s.p != nil {
				s.p.Branch(1, eligible)
			}
			if eligible && viol > bestViol {
				best, bestViol = a, viol
			}
		}
		scanned = end
		if best >= 0 {
			return best
		}
	}
	return -1
}

// cycleStep describes one tree arc on the pivot cycle.
type cycleStep struct {
	arc   int
	along bool // true when cycle direction matches arc direction
	node  int  // the lower (deeper) endpoint whose parentArc this is
}

// pivot performs one simplex pivot with entering arc e. It returns false
// when the instance is unbounded (cannot happen with finite capacities).
func (s *simplex) pivot(e int) {
	s.pivots++
	// Flow pushes from eu to ev around the cycle.
	var eu, ev int
	if s.state[e] == stateLower {
		eu, ev = s.from[e], s.to[e]
	} else {
		eu, ev = s.to[e], s.from[e]
	}

	if s.p != nil {
		s.p.Enter("primal_iminus")
	}
	// Walk both endpoints to the LCA collecting cycle steps.
	var pathV, pathU []cycleStep // ev-side (traversed up, with cycle), eu-side (against)
	x, y := ev, eu
	for x != y {
		if s.p != nil {
			s.p.OpsBranch(4, 2, s.depth[x] >= s.depth[y])
			s.p.Load(nodeBase + uint64(x)*nodeRec)
			s.p.Load(nodeBase + uint64(y)*nodeRec)
		}
		if s.depth[x] >= s.depth[y] {
			a := s.parentArc[x]
			pathV = append(pathV, cycleStep{arc: a, along: s.from[a] == x, node: x})
			x = s.parent[x]
		} else {
			a := s.parentArc[y]
			pathU = append(pathU, cycleStep{arc: a, along: s.to[a] == y, node: y})
			y = s.parent[y]
		}
	}

	// Residual of the entering arc itself.
	var delta int64
	if s.state[e] == stateLower {
		delta = s.cap[e] - s.flow[e]
	} else {
		delta = s.flow[e]
	}
	leaving := -1    // cycle step index; -1 means the entering arc blocks itself
	leavingSide := 0 // 0: entering, 1: pathV, 2: pathU
	consider := func(side int, idx int, st cycleStep) {
		var res int64
		if st.along {
			res = s.cap[st.arc] - s.flow[st.arc]
		} else {
			res = s.flow[st.arc]
		}
		if s.p != nil {
			s.p.OpsBranch(3, 3, res < delta)
			s.p.Load(arcBase + uint64(st.arc)*arcRec)
		}
		if res < delta {
			delta = res
			leaving = idx
			leavingSide = side
		}
	}
	for i, st := range pathV {
		consider(1, i, st)
	}
	for i, st := range pathU {
		consider(2, i, st)
	}
	if s.p != nil {
		s.p.Leave()
	}

	// Apply the flow change.
	if s.state[e] == stateLower {
		s.flow[e] += delta
	} else {
		s.flow[e] -= delta
	}
	apply := func(st cycleStep) {
		if st.along {
			s.flow[st.arc] += delta
		} else {
			s.flow[st.arc] -= delta
		}
		if s.p != nil {
			s.p.Ops(2)
			s.p.Store(arcBase + uint64(st.arc)*arcRec)
		}
	}
	for _, st := range pathV {
		apply(st)
	}
	for _, st := range pathU {
		apply(st)
	}

	if leaving == -1 {
		// The entering arc saturated: it flips bound without entering
		// the basis.
		if s.state[e] == stateLower {
			s.state[e] = stateUpper
		} else {
			s.state[e] = stateLower
		}
		return
	}

	if s.p != nil {
		s.p.Enter("update_tree")
	}
	var out cycleStep
	var subtreeEnd int // endpoint of e inside the detached subtree
	if leavingSide == 1 {
		out = pathV[leaving]
		subtreeEnd = ev
	} else {
		out = pathU[leaving]
		subtreeEnd = eu
	}
	other := eu + ev - subtreeEnd

	// The leaving arc departs at its post-pivot bound.
	if s.flow[out.arc] == 0 {
		s.state[out.arc] = stateLower
	} else {
		s.state[out.arc] = stateUpper
	}
	s.state[e] = stateTree

	// Rehang the detached subtree: reverse parent pointers along the path
	// subtreeEnd → out.node, then attach subtreeEnd below `other` via e.
	prev, prevArc := other, e
	xn := subtreeEnd
	for {
		oldParent := s.parent[xn]
		oldArc := s.parentArc[xn]
		s.parent[xn] = prev
		s.parentArc[xn] = prevArc
		if s.p != nil {
			s.p.Ops(4)
			s.p.Store(nodeBase + uint64(xn)*nodeRec)
		}
		if xn == out.node {
			break
		}
		prev, prevArc = xn, oldArc
		xn = oldParent
	}
	if s.p != nil {
		s.p.Leave()
	}
	s.refreshPotentials()
}

// SolveSimplex solves the instance with the primal network simplex,
// reporting events to p (which may be nil for unprofiled runs).
func SolveSimplex(in *Instance, p *perf.Profiler) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := newSimplex(in, p)
	if p != nil {
		p.SetFootprint("primal_bea_mpp", 3<<10)
		p.SetFootprint("primal_iminus", 2<<10)
		p.SetFootprint("update_tree", 2<<10)
		p.SetFootprint("refresh_potential", 1<<10)
	}
	limit := 200 * (len(in.Arcs) + in.NumNodes + 16)
	for iter := 0; ; iter++ {
		if iter > limit {
			return nil, ErrIterationLimit
		}
		e := s.priceEntering()
		if e < 0 {
			break
		}
		s.pivot(e)
	}
	// Any residual flow on an artificial arc means infeasible.
	m := len(in.Arcs)
	for i := m; i < len(s.flow); i++ {
		if s.flow[i] != 0 {
			return nil, ErrInfeasible
		}
	}
	sol := &Solution{Flow: s.flow[:m:m], Iterations: s.pivots}
	for i := 0; i < m; i++ {
		sol.Cost += s.flow[i] * s.cost[i]
	}
	return sol, nil
}
