package mcf

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perf"
)

// Workload is one 505.mcf_r input: the parameters of a single-depot vehicle
// scheduling problem.
type Workload struct {
	core.Meta
	Params CityParams
}

// Benchmark is the 505.mcf_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "505.mcf_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Route planning" }

// Workloads returns SPEC-style train/refrate workloads plus the three
// automatically generated Alberta workloads described in the paper.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, p CityParams) core.Workload {
		return Workload{Meta: core.Meta{Name: name, Kind: kind}, Params: p}
	}
	small := DefaultCityParams()
	small.Trips = 60
	small.Stops = 16
	small.Seed = 100

	train := DefaultCityParams()
	train.Trips = 140
	train.Seed = 101

	ref := DefaultCityParams()
	ref.Trips = 260
	ref.Seed = 102

	// The three Alberta workloads: different density/connectivity levels.
	alb1 := DefaultCityParams()
	alb1.Trips = 200
	alb1.Connectivity = 45 // sparse deadhead graph
	alb1.PeakSharpness = 0.2
	alb1.Seed = 201

	alb2 := DefaultCityParams()
	alb2.Trips = 240
	alb2.Stops = 80
	alb2.Connectivity = 150 // dense deadhead graph
	alb2.PeakSharpness = 3.0
	alb2.Seed = 202

	alb3 := DefaultCityParams()
	alb3.Trips = 300
	alb3.Stops = 24
	alb3.GridSize = 32 // compact city, short deadheads
	alb3.VehicleCost = 2000
	alb3.Seed = 203

	return []core.Workload{
		mk("test", core.KindTest, small),
		mk("train", core.KindTrain, train),
		mk("refrate", core.KindRefrate, ref),
		mk("alberta.sparse", core.KindAlberta, alb1),
		mk("alberta.dense", core.KindAlberta, alb2),
		mk("alberta.compact", core.KindAlberta, alb3),
	}, nil
}

// GenerateWorkloads implements core.Generator: fresh vehicle-scheduling
// problems from a seed, echoing the paper's "researchers can generate as
// many workloads as they wish".
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mcf: n must be positive, got %d", n)
	}
	out := make([]core.Workload, 0, n)
	for i := 0; i < n; i++ {
		p := DefaultCityParams()
		p.Seed = seed + int64(i)*7919
		p.Trips = 150 + int(p.Seed%5)*40
		p.Connectivity = 40 + int(p.Seed%4)*40
		p.PeakSharpness = 0.5 + float64(p.Seed%3)
		out = append(out, Workload{
			Meta:   core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Params: p,
		})
	}
	return out, nil
}

// Run implements core.Benchmark: generate the city, build the instance, and
// solve it with the network simplex. It is exactly Prepare followed by
// Execute, so prepared and cold runs share one code path.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the generated city and flow instance, both immutable after
// Prepare. The solver builds its basis from the instance on every Execute
// (SolveSimplex never mutates the instance), so no scratch reset is needed.
type prepared struct {
	b    *Benchmark
	mw   Workload
	city *City
	in   *Instance
}

// Prepare implements core.Preparer: generate the city and build the flow
// instance once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	mw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	city, err := GenerateCity(mw.Params)
	if err != nil {
		return nil, err
	}
	return &prepared{b: b, mw: mw, city: city, in: BuildInstance(city, mw.Params)}, nil
}

// Execute implements core.PreparedWorkload.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, mw, city, in := pw.b, pw.mw, pw.city, pw.in
	sol, err := SolveSimplex(in, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("mcf: workload %s: %w", mw.Name, err)
	}
	served := TripsServed(in, sol, len(city.Trips))
	if served != int64(len(city.Trips)) {
		return core.Result{}, fmt.Errorf("mcf: workload %s served %d of %d trips", mw.Name, served, len(city.Trips))
	}
	sum := core.NewChecksum().
		AddUint64(uint64(sol.Cost)).
		AddUint64(uint64(FleetSize(in, sol, len(city.Trips)))).
		AddUint64(uint64(sol.Iterations))
	for _, f := range sol.Flow {
		sum = sum.AddUint64(uint64(f))
	}
	return core.Result{
		Benchmark: b.Name(),
		Workload:  mw.Name,
		Kind:      mw.Kind,
		Checksum:  sum.Value(),
	}, nil
}
