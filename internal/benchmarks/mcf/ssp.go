package mcf

// SolveSSP is a reference minimum-cost-flow solver using successive shortest
// paths with SPFA path search. It is used to cross-validate the network
// simplex in tests and as the FDO-era "alternative implementation" ablation.
// It requires the instance to contain no negative-cost cycle (true for all
// vehicle-scheduling instances, whose costs are non-negative).
func SolveSSP(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.NumNodes
	src, dst := n, n+1
	nn := n + 2

	// Residual graph in adjacency-list form; each arc knows its reverse.
	type rarc struct {
		to   int
		cap  int64
		cost int64
		rev  int // index in adj[to]
		orig int // original arc index, -1 for artificial/reverse
	}
	adj := make([][]rarc, nn)
	addArc := func(u, v int, cap, cost int64, orig int) {
		adj[u] = append(adj[u], rarc{to: v, cap: cap, cost: cost, rev: len(adj[v]), orig: orig})
		adj[v] = append(adj[v], rarc{to: u, cap: 0, cost: -cost, rev: len(adj[u]) - 1, orig: -1})
	}
	for i, a := range in.Arcs {
		addArc(a.From, a.To, a.Cap, a.Cost, i)
	}
	var need int64
	for v, s := range in.Supply {
		if s > 0 {
			addArc(src, v, s, 0, -1)
			need += s
		} else if s < 0 {
			addArc(v, dst, -s, 0, -1)
		}
	}

	dist := make([]int64, nn)
	inQueue := make([]bool, nn)
	prevNode := make([]int, nn)
	prevEdge := make([]int, nn)

	var sent int64
	iterations := 0
	for {
		// SPFA from src.
		for i := range dist {
			dist[i] = inf
			prevNode[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		inQueue[src] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for ei := range adj[u] {
				e := &adj[u][ei]
				if e.cap <= 0 {
					continue
				}
				if nd := du + e.cost; nd < dist[e.to] {
					dist[e.to] = nd
					prevNode[e.to] = u
					prevEdge[e.to] = ei
					if !inQueue[e.to] {
						queue = append(queue, e.to)
						inQueue[e.to] = true
					}
				}
			}
		}
		if prevNode[dst] == -1 {
			break
		}
		// Bottleneck along the path.
		delta := int64(inf)
		for v := dst; v != src; v = prevNode[v] {
			e := adj[prevNode[v]][prevEdge[v]]
			if e.cap < delta {
				delta = e.cap
			}
		}
		for v := dst; v != src; v = prevNode[v] {
			e := &adj[prevNode[v]][prevEdge[v]]
			e.cap -= delta
			adj[v][e.rev].cap += delta
		}
		sent += delta
		iterations++
	}
	if sent != need {
		return nil, ErrInfeasible
	}

	sol := &Solution{Flow: make([]int64, len(in.Arcs)), Iterations: iterations}
	for u := range adj {
		for _, e := range adj[u] {
			if e.orig >= 0 {
				sol.Flow[e.orig] = in.Arcs[e.orig].Cap - e.cap
			}
		}
	}
	for i, f := range sol.Flow {
		sol.Cost += f * in.Arcs[i].Cost
	}
	return sol, nil
}
