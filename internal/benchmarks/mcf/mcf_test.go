package mcf

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

// tinyInstance is a hand-checkable 4-node problem.
//
//	0 --(cap2,c1)--> 1 --(cap2,c1)--> 3
//	0 --(cap2,c3)--> 2 --(cap2,c1)--> 3
//
// supply 0:+3, 3:-3 → optimal: 2 units via 1 (cost 4), 1 unit via 2
// (cost 4) = 8.
func tinyInstance() *Instance {
	return &Instance{
		NumNodes: 4,
		Supply:   []int64{3, 0, 0, -3},
		Arcs: []Arc{
			{From: 0, To: 1, Cap: 2, Cost: 1},
			{From: 1, To: 3, Cap: 2, Cost: 1},
			{From: 0, To: 2, Cap: 2, Cost: 3},
			{From: 2, To: 3, Cap: 2, Cost: 1},
		},
	}
}

func TestValidate(t *testing.T) {
	in := tinyInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyInstance()
	bad.Supply[0] = 5
	if err := bad.Validate(); err == nil {
		t.Error("unbalanced supplies should fail validation")
	}
	loop := tinyInstance()
	loop.Arcs[0].To = 0
	if err := loop.Validate(); err == nil {
		t.Error("self loops should fail validation")
	}
}

func TestSimplexTiny(t *testing.T) {
	sol, err := SolveSimplex(tinyInstance(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 8 {
		t.Errorf("cost = %d, want 8", sol.Cost)
	}
	if _, err := tinyInstance().CheckFlow(sol.Flow); err != nil {
		t.Errorf("flow infeasible: %v", err)
	}
}

func TestSSPTiny(t *testing.T) {
	sol, err := SolveSSP(tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 8 {
		t.Errorf("cost = %d, want 8", sol.Cost)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	in := &Instance{
		NumNodes: 2,
		Supply:   []int64{5, -5},
		Arcs:     []Arc{{From: 0, To: 1, Cap: 3, Cost: 1}},
	}
	if _, err := SolveSimplex(in, nil); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
	if _, err := SolveSSP(in); !errors.Is(err, ErrInfeasible) {
		t.Errorf("ssp err = %v, want ErrInfeasible", err)
	}
}

func TestSimplexNegativeCosts(t *testing.T) {
	// A negative-cost arc in a DAG: flow should prefer it.
	in := &Instance{
		NumNodes: 3,
		Supply:   []int64{2, 0, -2},
		Arcs: []Arc{
			{From: 0, To: 1, Cap: 2, Cost: 1},
			{From: 1, To: 2, Cap: 2, Cost: -5},
			{From: 0, To: 2, Cap: 2, Cost: 0},
		},
	}
	sol, err := SolveSimplex(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != -8 {
		t.Errorf("cost = %d, want -8 (route through the rewarded arc)", sol.Cost)
	}
}

// randomInstance builds a random feasible circulation-style instance by
// routing supply from node 0 to node n-1 over a DAG (guaranteeing a path
// with enough capacity).
func randomInstance(rng *rand.Rand, n int) *Instance {
	in := &Instance{NumNodes: n, Supply: make([]int64, n)}
	amount := int64(1 + rng.Intn(8))
	in.Supply[0] = amount
	in.Supply[n-1] = -amount
	// Backbone path with full capacity keeps it feasible.
	for v := 0; v+1 < n; v++ {
		in.Arcs = append(in.Arcs, Arc{From: v, To: v + 1, Cap: amount, Cost: int64(rng.Intn(20))})
	}
	// Random forward extra arcs.
	extra := rng.Intn(3 * n)
	for i := 0; i < extra; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		in.Arcs = append(in.Arcs, Arc{
			From: u, To: v,
			Cap:  int64(rng.Intn(6)),
			Cost: int64(rng.Intn(30)),
		})
	}
	return in
}

func TestSimplexMatchesSSPOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng, 4+rng.Intn(12))
		a, err := SolveSimplex(in, nil)
		if err != nil {
			t.Fatalf("trial %d: simplex: %v", trial, err)
		}
		b, err := SolveSSP(in)
		if err != nil {
			t.Fatalf("trial %d: ssp: %v", trial, err)
		}
		if a.Cost != b.Cost {
			t.Fatalf("trial %d: simplex cost %d != ssp cost %d", trial, a.Cost, b.Cost)
		}
		if cost, err := in.CheckFlow(a.Flow); err != nil || cost != a.Cost {
			t.Fatalf("trial %d: simplex flow check: cost=%d err=%v", trial, cost, err)
		}
	}
}

func TestGenerateCityDeterminism(t *testing.T) {
	p := DefaultCityParams()
	a, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trips) != len(b.Trips) {
		t.Fatal("trip counts differ")
	}
	for i := range a.Trips {
		if a.Trips[i] != b.Trips[i] {
			t.Fatalf("trip %d differs: %+v vs %+v", i, a.Trips[i], b.Trips[i])
		}
	}
}

func TestGenerateCityConsistency(t *testing.T) {
	p := DefaultCityParams()
	c, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range c.Trips {
		if tr.Arrive <= tr.Depart {
			t.Errorf("trip %d arrives (%d) before departing (%d)", i, tr.Arrive, tr.Depart)
		}
		if tr.FromStop == tr.ToStop {
			t.Errorf("trip %d is a null trip", i)
		}
		want := tr.Depart + c.travelMinutes(tr.FromStop, tr.ToStop)
		if tr.Arrive != want {
			t.Errorf("trip %d arrival %d inconsistent with travel time (want %d)", i, tr.Arrive, want)
		}
	}
}

func TestCircadianCycleShapesTimetable(t *testing.T) {
	p := DefaultCityParams()
	p.Trips = 3000
	p.PeakSharpness = 3
	c, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	rush, night := 0, 0
	for _, tr := range c.Trips {
		if tr.Depart >= 7*60+30 && tr.Depart <= 8*60+30 {
			rush++
		}
		if tr.Depart >= 4*60 && tr.Depart <= 5*60 {
			night++
		}
	}
	if rush <= 3*night {
		t.Errorf("rush-hour trips (%d) should dwarf small-hours trips (%d)", rush, night)
	}
}

func TestBuildInstanceIsValidAndAcyclicRewardSafe(t *testing.T) {
	p := DefaultCityParams()
	p.Trips = 50
	c, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	in := BuildInstance(c, p)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every deadhead link must respect time consistency.
	nTrips := len(c.Trips)
	for _, a := range in.Arcs {
		if a.From >= nTrips && a.From < 2*nTrips && a.To < nTrips {
			i, j := a.From-nTrips, a.To
			dh := c.travelMinutes(c.Trips[i].ToStop, c.Trips[j].FromStop)
			if c.Trips[i].Arrive+dh > c.Trips[j].Depart {
				t.Fatalf("deadhead %d→%d violates timing", i, j)
			}
		}
	}
}

func TestVehicleSchedulingServesAllTrips(t *testing.T) {
	p := DefaultCityParams()
	p.Trips = 80
	p.Seed = 5
	c, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	in := BuildInstance(c, p)
	sol, err := SolveSimplex(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if served := TripsServed(in, sol, len(c.Trips)); served != int64(len(c.Trips)) {
		t.Errorf("served %d of %d trips", served, len(c.Trips))
	}
	fleet := FleetSize(in, sol, len(c.Trips))
	if fleet <= 0 || fleet > int64(len(c.Trips)) {
		t.Errorf("fleet = %d, want within (0,%d]", fleet, len(c.Trips))
	}
	// Cross-validate optimality with SSP.
	ref, err := SolveSSP(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != ref.Cost {
		t.Errorf("simplex cost %d != ssp cost %d", sol.Cost, ref.Cost)
	}
}

func TestHigherVehicleCostShrinksOrKeepsFleet(t *testing.T) {
	base := DefaultCityParams()
	base.Trips = 80
	base.Seed = 9
	c, err := GenerateCity(base)
	if err != nil {
		t.Fatal(err)
	}
	cheap := base
	cheap.VehicleCost = 1
	expensive := base
	expensive.VehicleCost = 5000

	inCheap := BuildInstance(c, cheap)
	inExp := BuildInstance(c, expensive)
	solCheap, err := SolveSimplex(inCheap, nil)
	if err != nil {
		t.Fatal(err)
	}
	solExp, err := SolveSimplex(inExp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if FleetSize(inExp, solExp, len(c.Trips)) > FleetSize(inCheap, solCheap, len(c.Trips)) {
		t.Errorf("expensive vehicles should not enlarge the fleet: %d > %d",
			FleetSize(inExp, solExp, len(c.Trips)), FleetSize(inCheap, solCheap, len(c.Trips)))
	}
}

func TestBenchmarkInterface(t *testing.T) {
	b := New()
	if b.Name() != "505.mcf_r" {
		t.Errorf("name = %q", b.Name())
	}
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) < 5 {
		t.Fatalf("workloads = %d, want ≥5", len(ws))
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 3 {
		t.Errorf("alberta workloads = %d, want 3 (paper ships three)", alberta)
	}
}

func TestBenchmarkRunDeterministicChecksum(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Run(w, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(w, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum || r1.Checksum == 0 {
		t.Errorf("checksums: %x vs %x", r1.Checksum, r2.Checksum)
	}
}

func TestBenchmarkRunRejectsForeignWorkload(t *testing.T) {
	b := New()
	_, err := b.Run(core.Meta{Name: "x"}, perf.New())
	if !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v, want ErrUnknownWorkload", err)
	}
}

func TestGenerateWorkloads(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("generated %d, want 4", len(ws))
	}
	for _, w := range ws {
		if w.WorkloadKind() != core.KindAlberta {
			t.Errorf("generated workload kind = %v", w.WorkloadKind())
		}
	}
	// Deterministic in seed.
	ws2, err := b.GenerateWorkloads(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if ws[i].(Workload).Params != ws2[i].(Workload).Params {
			t.Errorf("workload %d params differ across identical seeds", i)
		}
	}
	if _, err := b.GenerateWorkloads(1, 0); err == nil {
		t.Error("n=0 should be rejected")
	}
}

func TestProfiledRunProducesTopDown(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	if _, err := b.Run(w, p); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if rep.Cycles == 0 {
		t.Fatal("no modeled cycles recorded")
	}
	if rep.Coverage["primal_bea_mpp"] == 0 {
		t.Error("pricing method should appear in coverage")
	}
	if s := rep.TopDown.Sum(); s < 0.999 || s > 1.001 {
		t.Errorf("topdown sum = %v", s)
	}
}
