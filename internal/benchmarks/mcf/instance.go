// Package mcf reproduces 505.mcf_r: a network-simplex solver for the
// minimum-cost-flow formulation of single-depot vehicle scheduling (Löbel's
// MCF), together with the Alberta workload generator that builds a synthetic
// city map, schedules buses over a circadian cycle, and derives a consistent
// vehicle-scheduling instance from it (Section IV-A of the paper).
package mcf

import (
	"errors"
	"fmt"
)

// Arc is a directed arc with capacity and cost. Lower bounds are always 0.
type Arc struct {
	From, To int
	Cap      int64
	Cost     int64
}

// Instance is a minimum-cost-flow problem: find the cheapest flow that
// satisfies every node's supply (positive = source, negative = sink).
type Instance struct {
	// NumNodes is the node count; nodes are 0..NumNodes-1.
	NumNodes int
	// Supply[v] is the net flow that must leave node v.
	Supply []int64
	// Arcs lists the directed arcs.
	Arcs []Arc
}

// Validate checks structural consistency: balanced supplies, in-range
// endpoints, non-negative capacities.
func (in *Instance) Validate() error {
	if in.NumNodes <= 0 {
		return errors.New("mcf: instance has no nodes")
	}
	if len(in.Supply) != in.NumNodes {
		return fmt.Errorf("mcf: %d supplies for %d nodes", len(in.Supply), in.NumNodes)
	}
	var total int64
	for _, s := range in.Supply {
		total += s
	}
	if total != 0 {
		return fmt.Errorf("mcf: supplies sum to %d, want 0", total)
	}
	for i, a := range in.Arcs {
		if a.From < 0 || a.From >= in.NumNodes || a.To < 0 || a.To >= in.NumNodes {
			return fmt.Errorf("mcf: arc %d endpoints (%d,%d) out of range", i, a.From, a.To)
		}
		if a.From == a.To {
			return fmt.Errorf("mcf: arc %d is a self loop", i)
		}
		if a.Cap < 0 {
			return fmt.Errorf("mcf: arc %d has negative capacity", i)
		}
	}
	return nil
}

// Solution is an optimal flow.
type Solution struct {
	// Flow[i] is the flow on Arcs[i].
	Flow []int64
	// Cost is the total cost of the flow.
	Cost int64
	// Iterations counts simplex pivots (or SSP augmentations).
	Iterations int
}

// ErrInfeasible is returned when no flow satisfies the supplies.
var ErrInfeasible = errors.New("mcf: infeasible instance")

// ErrIterationLimit is returned when the solver fails to converge within its
// safety bound (indicates degeneracy cycling; never observed on generated
// workloads, guarded for robustness).
var ErrIterationLimit = errors.New("mcf: iteration limit exceeded")

// CheckFlow verifies that flow is feasible for the instance and returns its
// cost.
func (in *Instance) CheckFlow(flow []int64) (int64, error) {
	if len(flow) != len(in.Arcs) {
		return 0, fmt.Errorf("mcf: flow has %d entries for %d arcs", len(flow), len(in.Arcs))
	}
	balance := make([]int64, in.NumNodes)
	copy(balance, in.Supply)
	var cost int64
	for i, a := range in.Arcs {
		f := flow[i]
		if f < 0 || f > a.Cap {
			return 0, fmt.Errorf("mcf: arc %d flow %d outside [0,%d]", i, f, a.Cap)
		}
		balance[a.From] -= f
		balance[a.To] += f
		cost += f * a.Cost
	}
	for v, b := range balance {
		if b != 0 {
			return 0, fmt.Errorf("mcf: node %d imbalance %d", v, b)
		}
	}
	return cost, nil
}
