package mcf

import (
	"fmt"
	"math"
	"math/rand"
)

// CityParams parameterize the Alberta workload generator for 505.mcf_r: a
// synthetic city map with a chosen density and connectivity, and a bus
// timetable whose intensity follows a circadian cycle. From the map and
// timetable a consistent single-depot vehicle-scheduling instance is built.
type CityParams struct {
	// Stops is the number of stops placed on the city grid.
	Stops int
	// GridSize is the city extent; stops live on [0,GridSize)².
	GridSize int
	// Trips is the number of timetabled trips in the day.
	Trips int
	// Connectivity is the maximum layover (minutes) for which a deadhead
	// link between two trips is generated; higher values produce denser
	// instances.
	Connectivity int
	// PeakSharpness shapes the circadian cycle: 0 = flat day, larger
	// values concentrate trips in the 8:00 and 17:00 rush hours.
	PeakSharpness float64
	// VehicleCost is the fixed cost of pulling a bus out of the depot
	// (fleet-size minimization pressure).
	VehicleCost int64
	// Seed drives all randomness.
	Seed int64
}

// DefaultCityParams returns a mid-sized city.
func DefaultCityParams() CityParams {
	return CityParams{
		Stops:         40,
		GridSize:      64,
		Trips:         220,
		Connectivity:  90,
		PeakSharpness: 2.0,
		VehicleCost:   500,
		Seed:          1,
	}
}

// Trip is one timetabled bus trip.
type Trip struct {
	FromStop, ToStop int
	Depart, Arrive   int // minutes after midnight
}

// City is the generated map and timetable.
type City struct {
	StopX, StopY []int
	Depot        int // index of the depot stop
	Trips        []Trip
}

// travelMinutes is the Manhattan travel time between stops a and b.
func (c *City) travelMinutes(a, b int) int {
	dx := c.StopX[a] - c.StopX[b]
	if dx < 0 {
		dx = -dx
	}
	dy := c.StopY[a] - c.StopY[b]
	if dy < 0 {
		dy = -dy
	}
	return 2 + (dx+dy)/2
}

// circadianWeight is the relative trip intensity at minute t of the day:
// a base load plus Gaussian bumps at the 8:00 and 17:00 rush hours.
func circadianWeight(t int, sharpness float64) float64 {
	m := float64(t)
	bump := func(center, width float64) float64 {
		d := (m - center) / width
		return math.Exp(-d * d)
	}
	w := 0.15 + sharpness*(bump(8*60, 70)+bump(17*60, 80)) + 0.3*bump(12.5*60, 120)
	// Suppress the small hours.
	if t < 5*60 {
		w *= 0.05
	}
	if t > 23*60 {
		w *= 0.1
	}
	return w
}

// GenerateCity builds the deterministic city map and circadian timetable.
func GenerateCity(p CityParams) (*City, error) {
	if p.Stops < 2 || p.Trips < 1 || p.GridSize < 2 {
		return nil, fmt.Errorf("mcf: invalid city params %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &City{
		StopX: make([]int, p.Stops),
		StopY: make([]int, p.Stops),
	}
	for i := range c.StopX {
		c.StopX[i] = rng.Intn(p.GridSize)
		c.StopY[i] = rng.Intn(p.GridSize)
	}
	c.Depot = 0

	// Build the circadian inverse-CDF over minutes 04:00..24:00.
	const dayStart, dayEnd = 4 * 60, 24 * 60
	cdf := make([]float64, dayEnd-dayStart+1)
	sum := 0.0
	for t := dayStart; t < dayEnd; t++ {
		sum += circadianWeight(t, p.PeakSharpness)
		cdf[t-dayStart+1] = sum
	}
	sampleMinute := func() int {
		u := rng.Float64() * sum
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return dayStart + lo - 1
	}

	for i := 0; i < p.Trips; i++ {
		from := rng.Intn(p.Stops)
		to := rng.Intn(p.Stops)
		for to == from {
			to = rng.Intn(p.Stops)
		}
		dep := sampleMinute()
		arr := dep + c.travelMinutes(from, to)
		c.Trips = append(c.Trips, Trip{FromStop: from, ToStop: to, Depart: dep, Arrive: arr})
	}
	return c, nil
}

// BuildInstance derives the single-depot vehicle-scheduling minimum-cost
// flow instance from a city: one split node pair per trip, pull-out/pull-in
// arcs to the depot, and deadhead arcs between time-compatible trips. A
// large negative reward on the serving arcs forces every trip to be served;
// the time-ordered structure keeps the network acyclic, so the reward
// creates no negative cycle.
func BuildInstance(c *City, p CityParams) *Instance {
	nTrips := len(c.Trips)
	// Node layout: 0..n-1 trip-in, n..2n-1 trip-out, 2n depot-out (source),
	// 2n+1 depot-in (sink).
	depotOut := 2 * nTrips
	depotIn := 2*nTrips + 1
	in := &Instance{
		NumNodes: 2*nTrips + 2,
		Supply:   make([]int64, 2*nTrips+2),
	}
	vehicles := int64(nTrips) // trivially sufficient fleet bound
	in.Supply[depotOut] = vehicles
	in.Supply[depotIn] = -vehicles

	maxDeadhead := int64(0)
	for i := range c.Trips {
		for _, s := range []int{c.Trips[i].FromStop, c.Trips[i].ToStop} {
			if d := int64(c.travelMinutes(c.Depot, s)); d > maxDeadhead {
				maxDeadhead = d
			}
		}
	}
	reward := 10 * (2*maxDeadhead + p.VehicleCost + 1)

	for i, t := range c.Trips {
		// Serving arc: trip-in → trip-out, capacity 1, large reward.
		in.Arcs = append(in.Arcs, Arc{From: i, To: nTrips + i, Cap: 1, Cost: -reward})
		// Pull-out: depot → trip-in (fleet cost + deadhead from depot).
		pullOut := p.VehicleCost + int64(c.travelMinutes(c.Depot, t.FromStop))
		in.Arcs = append(in.Arcs, Arc{From: depotOut, To: i, Cap: 1, Cost: pullOut})
		// Pull-in: trip-out → depot.
		pullIn := int64(c.travelMinutes(t.ToStop, c.Depot))
		in.Arcs = append(in.Arcs, Arc{From: nTrips + i, To: depotIn, Cap: 1, Cost: pullIn})
	}
	// Deadhead links between compatible trips (i then j).
	for i, ti := range c.Trips {
		for j, tj := range c.Trips {
			if i == j {
				continue
			}
			gap := tj.Depart - ti.Arrive
			if gap < 0 || gap > p.Connectivity {
				continue
			}
			dh := c.travelMinutes(ti.ToStop, tj.FromStop)
			if ti.Arrive+dh > tj.Depart {
				continue // cannot reach the next trip in time
			}
			in.Arcs = append(in.Arcs, Arc{From: nTrips + i, To: j, Cap: 1, Cost: int64(dh)})
		}
	}
	// Unused vehicles stay in the depot at no cost.
	in.Arcs = append(in.Arcs, Arc{From: depotOut, To: depotIn, Cap: vehicles, Cost: 0})
	return in
}

// FleetSize counts the vehicles pulled out of the depot in a solution of an
// instance built by BuildInstance.
func FleetSize(in *Instance, sol *Solution, nTrips int) int64 {
	depotOut := 2 * nTrips
	depotIn := 2*nTrips + 1
	var used int64
	for i, a := range in.Arcs {
		if a.From == depotOut && a.To != depotIn {
			used += sol.Flow[i]
		}
	}
	return used
}

// TripsServed counts serving arcs carrying flow.
func TripsServed(in *Instance, sol *Solution, nTrips int) int64 {
	var served int64
	for i, a := range in.Arcs {
		if a.Cost < 0 { // serving arcs are the only negative-cost arcs
			served += sol.Flow[i]
		}
	}
	return served
}
