package cactubssn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 4, Steps: 5, Courant: 0.1, Sigma: 1},
		{N: 16, Steps: 0, Courant: 0.1, Sigma: 1},
		{N: 16, Steps: 5, Courant: 0, Sigma: 1},
		{N: 16, Steps: 5, Courant: 1.5, Sigma: 1},
		{N: 16, Steps: 5, Courant: 0.1, Sigma: 0},
		{N: 16, Steps: 5, Courant: 0.1, Sigma: 1, Dissipation: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: err = %v, want ErrBadParams", p, err)
		}
	}
}

func TestEvolutionStableAndDynamic(t *testing.T) {
	prm := Params{N: 12, Steps: 10, Courant: 0.1, Dissipation: 0.01, Amplitude: 0.05, Sigma: 2, Lapse: 2}
	s, err := NewSolver(prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	norms, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The pulse must actually evolve: K starts at zero and must grow.
	if norms.K <= 0 {
		t.Errorf("K norm = %v, expected the curvature to evolve", norms.K)
	}
	if math.IsNaN(norms.Phi) || norms.Phi > 10 {
		t.Errorf("phi norm = %v, evolution unstable", norms.Phi)
	}
}

func TestGaugeCoupling(t *testing.T) {
	// With a stronger lapse coupling the gauge field departs farther from
	// its initial value of 1.
	run := func(lapse float64) float64 {
		prm := Params{N: 12, Steps: 12, Courant: 0.1, Dissipation: 0.01, Amplitude: 0.08, Sigma: 2, Lapse: lapse}
		s, err := NewSolver(prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		norms, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(norms.Alpha - 1)
	}
	if weak, strong := run(0.5), run(4); strong <= weak {
		t.Errorf("stronger gauge coupling should move alpha more: %v vs %v", strong, weak)
	}
}

func TestDissipationDamps(t *testing.T) {
	run := func(diss float64) float64 {
		prm := Params{N: 12, Steps: 16, Courant: 0.1, Dissipation: diss, Amplitude: 0.08, Sigma: 1.5, Lapse: 2}
		s, err := NewSolver(prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		norms, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return norms.Phi
	}
	if low, high := run(0.0), run(0.08); high >= low {
		t.Errorf("dissipation should damp phi: %v (damped) vs %v (undamped)", high, low)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Norms {
		prm := Params{N: 10, Steps: 8, Courant: 0.1, Dissipation: 0.01, Amplitude: 0.05, Sigma: 2, Lapse: 2}
		s, err := NewSolver(prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 7 {
		t.Errorf("alberta workloads = %d, want 7 (paper ships seven)", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	if rep.Coverage["bssn_rhs"] == 0 {
		t.Errorf("stencil kernel missing from coverage: %v", rep.Coverage)
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
