// Package cactubssn reproduces 507.cactuBSSN_r: solving Einstein's
// equations in vacuum on a 3D grid. The substitute kernel evolves a
// BSSN-flavored system of four coupled fields (conformal factor φ, trace of
// extrinsic curvature K, a conformal metric component γ, and the lapse α)
// with finite-difference stencils, RK2 time stepping and Kreiss-Oliger
// dissipation. A workload is a parameter file for the solver; the seven
// Alberta workloads vary the computational parameters, as the paper
// describes ("generated following suggestions for parameter setting from
// the benchmark authors").
package cactubssn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/perf"
)

// Params is the solver parameter file.
type Params struct {
	// N is the grid size per dimension (with one ghost cell each side).
	N int
	// Steps is the number of RK2 time steps.
	Steps int
	// Courant is the time step as a fraction of the grid spacing.
	Courant float64
	// Dissipation is the Kreiss-Oliger coefficient.
	Dissipation float64
	// Amplitude and Sigma shape the initial Gaussian pulse.
	Amplitude float64
	Sigma     float64
	// Lapse couples the gauge field evolution (1+log slicing strength).
	Lapse float64
}

// ErrBadParams reports invalid parameters.
var ErrBadParams = errors.New("cactubssn: bad parameters")

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.N < 8 || p.Steps < 1 || p.Courant <= 0 || p.Courant > 1 ||
		p.Sigma <= 0 || p.Dissipation < 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

// fields indexes the evolved variables.
const (
	fPhi = iota
	fK
	fGamma
	fAlpha
	numFields
)

const gridBase = 0xC0_0000_0000

// State holds the evolved fields.
type State struct {
	n int
	// v[f] is field f, flattened (n³).
	v [numFields][]float64
}

func newState(n int) *State {
	s := &State{n: n}
	for f := 0; f < numFields; f++ {
		s.v[f] = make([]float64, n*n*n)
	}
	return s
}

func (s *State) idx(x, y, z int) int { return (z*s.n+y)*s.n + x }

// Solver evolves the system.
type Solver struct {
	prm Params
	cur *State
	rhs *State
	tmp *State
	p   *perf.Profiler
}

// NewSolver initializes the Gaussian pulse initial data.
func NewSolver(prm Params, p *perf.Profiler) (*Solver, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{prm: prm, cur: newState(prm.N), rhs: newState(prm.N), tmp: newState(prm.N), p: p}
	n := prm.N
	c := float64(n-1) / 2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				r2 := dx*dx + dy*dy + dz*dz
				g := prm.Amplitude * math.Exp(-r2/(2*prm.Sigma*prm.Sigma))
				i := s.cur.idx(x, y, z)
				s.cur.v[fPhi][i] = g
				s.cur.v[fK][i] = 0
				s.cur.v[fGamma][i] = 1 + 0.1*g
				s.cur.v[fAlpha][i] = 1
			}
		}
	}
	if p != nil {
		p.SetFootprint("bssn_rhs", 8<<10)
		p.SetFootprint("rk_update", 3<<10)
		p.SetFootprint("dissipation", 4<<10)
	}
	return s, nil
}

// lap computes the 7-point Laplacian of field f at (x,y,z) with unit grid
// spacing; boundaries are handled by clamping (outgoing-wave-lite).
func (s *Solver) lap(st *State, f, x, y, z int) float64 {
	n := s.cur.n
	cl := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	c := st.v[f][st.idx(x, y, z)]
	return st.v[f][st.idx(cl(x+1), y, z)] + st.v[f][st.idx(cl(x-1), y, z)] +
		st.v[f][st.idx(x, cl(y+1), z)] + st.v[f][st.idx(x, cl(y-1), z)] +
		st.v[f][st.idx(x, y, cl(z+1))] + st.v[f][st.idx(x, y, cl(z-1))] - 6*c
}

// computeRHS fills s.rhs with the BSSN-flavored right-hand sides:
//
//	∂t φ = -α K / 6
//	∂t K = -∇²α + α (K² + R(γ))          (R approximated by ∇²γ)
//	∂t γ = -2 α ∇²φ                       (conformal coupling)
//	∂t α = -Lapse · α K                   (1+log slicing)
func (s *Solver) computeRHS(st *State) {
	if s.p != nil {
		s.p.Enter("bssn_rhs")
		defer s.p.Leave()
	}
	n := st.n
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				i := st.idx(x, y, z)
				alpha := st.v[fAlpha][i]
				K := st.v[fK][i]
				lapAlpha := s.lap(st, fAlpha, x, y, z)
				lapGamma := s.lap(st, fGamma, x, y, z)
				lapPhi := s.lap(st, fPhi, x, y, z)
				s.rhs.v[fPhi][i] = -alpha * K / 6
				s.rhs.v[fK][i] = -lapAlpha + alpha*(K*K+lapGamma)
				s.rhs.v[fGamma][i] = -2 * alpha * lapPhi
				s.rhs.v[fAlpha][i] = -s.prm.Lapse * alpha * K
				if s.p != nil && i%32 == 0 {
					s.p.Ops(60)
					s.p.LongOps(1)
					s.p.Load(gridBase + uint64(i)*32)
					s.p.Store(gridBase + uint64(i)*32 + 16)
					// Sparse data-dependent control flow (horizon/
					// excision style guards in the real code).
					s.p.Branch(150, K > 0)
					s.p.Branch(151, lapPhi > 0)
				}
			}
		}
	}
}

// applyDissipation adds Kreiss-Oliger-style smoothing.
func (s *Solver) applyDissipation(st *State, dt float64) {
	if s.prm.Dissipation == 0 {
		return
	}
	if s.p != nil {
		s.p.Enter("dissipation")
		defer s.p.Leave()
	}
	n := st.n
	for f := 0; f < numFields; f++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					i := st.idx(x, y, z)
					st.v[f][i] += dt * s.prm.Dissipation * s.lap(st, f, x, y, z)
					if s.p != nil && i%64 == 0 {
						s.p.Ops(16)
						s.p.Load(gridBase + uint64(i)*32)
					}
				}
			}
		}
	}
}

// Step advances one RK2 step.
func (s *Solver) Step() {
	dt := s.prm.Courant
	n := s.cur.n
	total := n * n * n
	// Half step: tmp = cur + dt/2 * rhs(cur).
	s.computeRHS(s.cur)
	if s.p != nil {
		s.p.Enter("rk_update")
	}
	for f := 0; f < numFields; f++ {
		for i := 0; i < total; i++ {
			s.tmp.v[f][i] = s.cur.v[f][i] + 0.5*dt*s.rhs.v[f][i]
		}
	}
	if s.p != nil {
		s.p.Ops(uint64(total) / 4)
		s.p.Leave()
	}
	// Full step: cur += dt * rhs(tmp).
	s.computeRHS(s.tmp)
	if s.p != nil {
		s.p.Enter("rk_update")
	}
	for f := 0; f < numFields; f++ {
		for i := 0; i < total; i++ {
			s.cur.v[f][i] += dt * s.rhs.v[f][i]
		}
	}
	if s.p != nil {
		s.p.Ops(uint64(total) / 4)
		s.p.Leave()
	}
	s.applyDissipation(s.cur, dt)
}

// Norms summarizes the state: L2 norms of each field (the benchmark's
// validation output).
type Norms struct {
	Phi, K, Gamma, Alpha float64
}

// Run evolves the configured number of steps and returns the norms.
func (s *Solver) Run() (Norms, error) {
	for t := 0; t < s.prm.Steps; t++ {
		s.Step()
	}
	n := s.cur.n
	total := float64(n * n * n)
	l2 := func(f int) float64 {
		sum := 0.0
		for _, v := range s.cur.v[f] {
			sum += v * v
		}
		return math.Sqrt(sum / total)
	}
	norms := Norms{Phi: l2(fPhi), K: l2(fK), Gamma: l2(fGamma), Alpha: l2(fAlpha)}
	for _, v := range []float64{norms.Phi, norms.K, norms.Gamma, norms.Alpha} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return norms, errors.New("cactubssn: evolution diverged")
		}
	}
	return norms, nil
}

// Workload is one 507.cactuBSSN_r input.
type Workload struct {
	core.Meta
	Params Params
}

// Benchmark is the 507.cactuBSSN_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "507.cactuBSSN_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Physics: relativity" }

// Workloads returns SPEC-style inputs plus seven Alberta parameter
// variations.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	base := Params{N: 16, Steps: 8, Courant: 0.1, Dissipation: 0.01, Amplitude: 0.05, Sigma: 2.5, Lapse: 2}
	mk := func(name string, kind core.Kind, mod func(*Params)) core.Workload {
		p := base
		mod(&p)
		return Workload{Meta: core.Meta{Name: name, Kind: kind}, Params: p}
	}
	return []core.Workload{
		mk("test", core.KindTest, func(p *Params) { p.N = 10; p.Steps = 3 }),
		mk("train", core.KindTrain, func(p *Params) { p.Steps = 6 }),
		mk("refrate", core.KindRefrate, func(p *Params) { p.N = 20; p.Steps = 14 }),
		mk("alberta.finegrid", core.KindAlberta, func(p *Params) { p.N = 24; p.Steps = 8 }),
		mk("alberta.longrun", core.KindAlberta, func(p *Params) { p.Steps = 30 }),
		mk("alberta.bigpulse", core.KindAlberta, func(p *Params) { p.Amplitude = 0.15; p.Sigma = 1.5 }),
		mk("alberta.lowdiss", core.KindAlberta, func(p *Params) { p.Dissipation = 0.001; p.Steps = 12 }),
		mk("alberta.highdiss", core.KindAlberta, func(p *Params) { p.Dissipation = 0.05; p.Steps = 12 }),
		mk("alberta.fastgauge", core.KindAlberta, func(p *Params) { p.Lapse = 4; p.Steps = 10 }),
		mk("alberta.smallcourant", core.KindAlberta, func(p *Params) { p.Courant = 0.05; p.Steps = 20 }),
	}, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cactubssn: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		out = append(out, Workload{
			Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Params: Params{
				N:           12 + int(s%4)*4,
				Steps:       6 + int(s%5)*4,
				Courant:     0.05 + 0.025*float64(s%3),
				Dissipation: 0.005 * float64(s%4),
				Amplitude:   0.03 + 0.02*float64(s%4),
				Sigma:       1.5 + 0.5*float64(s%3),
				Lapse:       1 + float64(s%3),
			},
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared wraps the workload: grid allocation and initial data are part of
// the measured phase (NewSolver is instrumented), so Prepare only validates
// the workload type.
type prepared struct {
	b  *Benchmark
	cw Workload
}

// Prepare implements core.Preparer.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	cw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	return &prepared{b: b, cw: cw}, nil
}

// Execute implements core.PreparedWorkload: build the solver and evolve.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, cw := pw.b, pw.cw
	solver, err := NewSolver(cw.Params, p)
	if err != nil {
		return core.Result{}, err
	}
	norms, err := solver.Run()
	if err != nil {
		return core.Result{}, fmt.Errorf("cactubssn: %s: %w", cw.Name, err)
	}
	sum := core.NewChecksum().
		AddFloat(norms.Phi).AddFloat(norms.K).
		AddFloat(norms.Gamma).AddFloat(norms.Alpha)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  cw.Name,
		Kind:      cw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
