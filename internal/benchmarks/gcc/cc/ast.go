package cc

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalVar
	Funcs   []*Func
}

// GlobalVar is a file-scope variable or array.
type GlobalVar struct {
	Name      string
	ArraySize int // 0 for scalars
	Init      int64
	Static    bool
}

// Func is a function definition.
type Func struct {
	Name   string
	Params []string
	Body   *Block
	Static bool
}

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// Block is a { ... } statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares a local int variable with an optional initializer.
type DeclStmt struct {
	Name string
	Init Expr // nil means zero
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body Stmt
}

// ReturnStmt returns a value (nil X returns 0).
type ReturnStmt struct {
	X Expr
}

func (*Block) isStmt()      {}
func (*DeclStmt) isStmt()   {}
func (*ExprStmt) isStmt()   {}
func (*IfStmt) isStmt()     {}
func (*WhileStmt) isStmt()  {}
func (*ForStmt) isStmt()    {}
func (*ReturnStmt) isStmt() {}

// Expr is an expression node.
type Expr interface{ isExpr() }

// NumExpr is an integer literal.
type NumExpr struct {
	V int64
}

// VarExpr references a scalar variable.
type VarExpr struct {
	Name string
}

// IndexExpr references an array element.
type IndexExpr struct {
	Name string
	Idx  Expr
}

// CallExpr calls a function (or the print builtin).
type CallExpr struct {
	Name string
	Args []Expr
}

// UnaryExpr is -x or !x or ~x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// AssignExpr assigns to a variable or array element. Op is "" for plain
// assignment or the compound operator ("+", "-"...).
type AssignExpr struct {
	Target Expr // *VarExpr or *IndexExpr
	Op     string
	Value  Expr
}

func (*NumExpr) isExpr()    {}
func (*VarExpr) isExpr()    {}
func (*IndexExpr) isExpr()  {}
func (*CallExpr) isExpr()   {}
func (*UnaryExpr) isExpr()  {}
func (*BinaryExpr) isExpr() {}
func (*AssignExpr) isExpr() {}
