package cc

import "fmt"

// OptLevel selects the optimization pipeline.
type OptLevel int

// Optimization levels.
const (
	O0 OptLevel = iota // parse + codegen only
	O1                 // constant folding, algebraic simplification
	O2                 // + dead-branch elimination, small-function inlining
	O3                 // + aggressive inlining
)

// BranchCount is an edge profile entry.
type BranchCount struct {
	Taken, Total uint64
}

// Profile is feedback collected by the VM: per-static-branch outcome counts
// and per-call-site execution counts, keyed by the stable node IDs assigned
// by Number.
type Profile struct {
	Branches  map[int]*BranchCount
	CallSites map[int]uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{Branches: map[int]*BranchCount{}, CallSites: map[int]uint64{}}
}

// Merge adds other's counts into p (the paper's combined-profiling
// methodology [Berube]: feedback from multiple training runs).
func (p *Profile) Merge(other *Profile) {
	for id, bc := range other.Branches {
		if cur, ok := p.Branches[id]; ok {
			cur.Taken += bc.Taken
			cur.Total += bc.Total
		} else {
			p.Branches[id] = &BranchCount{Taken: bc.Taken, Total: bc.Total}
		}
	}
	for id, n := range other.CallSites {
		p.CallSites[id] += n
	}
}

// node IDs are attached out-of-band to avoid cluttering every AST node:
// the numbering pass fills these maps. IDs survive cloning during inlining
// because clones share the original nodes' entries.
type nodeIDs struct {
	ifs    map[*IfStmt]int
	whiles map[*WhileStmt]int
	fors   map[*ForStmt]int
	logic  map[*BinaryExpr]int
	calls  map[*CallExpr]int
	next   int
}

// Number assigns stable IDs to every branch-carrying and call node in
// deterministic traversal order. It must run right after Parse, before any
// transformation, so that two compiles of the same source agree on IDs.
func Number(prog *Program) *nodeIDs {
	ids := &nodeIDs{
		ifs:    map[*IfStmt]int{},
		whiles: map[*WhileStmt]int{},
		fors:   map[*ForStmt]int{},
		logic:  map[*BinaryExpr]int{},
		calls:  map[*CallExpr]int{},
		next:   1,
	}
	for _, fn := range prog.Funcs {
		ids.numberStmt(fn.Body)
	}
	return ids
}

func (ids *nodeIDs) id() int { n := ids.next; ids.next++; return n }

func (ids *nodeIDs) numberStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		for _, c := range st.Stmts {
			ids.numberStmt(c)
		}
	case *DeclStmt:
		if st.Init != nil {
			ids.numberExpr(st.Init)
		}
	case *ExprStmt:
		ids.numberExpr(st.X)
	case *IfStmt:
		ids.ifs[st] = ids.id()
		ids.numberExpr(st.Cond)
		ids.numberStmt(st.Then)
		if st.Else != nil {
			ids.numberStmt(st.Else)
		}
	case *WhileStmt:
		ids.whiles[st] = ids.id()
		ids.numberExpr(st.Cond)
		ids.numberStmt(st.Body)
	case *ForStmt:
		ids.fors[st] = ids.id()
		if st.Init != nil {
			ids.numberStmt(st.Init)
		}
		if st.Cond != nil {
			ids.numberExpr(st.Cond)
		}
		if st.Post != nil {
			ids.numberStmt(st.Post)
		}
		ids.numberStmt(st.Body)
	case *ReturnStmt:
		if st.X != nil {
			ids.numberExpr(st.X)
		}
	}
}

func (ids *nodeIDs) numberExpr(e Expr) {
	switch x := e.(type) {
	case *UnaryExpr:
		ids.numberExpr(x.X)
	case *BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			ids.logic[x] = ids.id()
		}
		ids.numberExpr(x.L)
		ids.numberExpr(x.R)
	case *IndexExpr:
		ids.numberExpr(x.Idx)
	case *CallExpr:
		ids.calls[x] = ids.id()
		for _, a := range x.Args {
			ids.numberExpr(a)
		}
	case *AssignExpr:
		ids.numberExpr(x.Target)
		ids.numberExpr(x.Value)
	}
}

// foldExpr performs constant folding and algebraic simplification.
func foldExpr(e Expr) Expr {
	switch x := e.(type) {
	case *UnaryExpr:
		x.X = foldExpr(x.X)
		if n, ok := x.X.(*NumExpr); ok {
			switch x.Op {
			case "-":
				return &NumExpr{V: -n.V}
			case "!":
				if n.V == 0 {
					return &NumExpr{V: 1}
				}
				return &NumExpr{V: 0}
			case "~":
				return &NumExpr{V: ^n.V}
			}
		}
		return x
	case *BinaryExpr:
		x.L = foldExpr(x.L)
		x.R = foldExpr(x.R)
		l, lok := x.L.(*NumExpr)
		r, rok := x.R.(*NumExpr)
		if x.Op == "&&" || x.Op == "||" {
			// Logical operators fold only through the short-circuit rules:
			// a constant left operand decides the result without the right
			// operand ever evaluating, so dropping it is always safe — even
			// when it has side effects, exactly as at run time.
			isAnd := x.Op == "&&"
			switch {
			case lok && rok:
				if isAnd {
					return &NumExpr{V: b2i(l.V != 0 && r.V != 0)}
				}
				return &NumExpr{V: b2i(l.V != 0 || r.V != 0)}
			case lok && isAnd && l.V == 0:
				return &NumExpr{V: 0}
			case lok && !isAnd && l.V != 0:
				return &NumExpr{V: 1}
			}
			return x
		}
		if lok && rok {
			if v, ok := evalBinary(x.Op, l.V, r.V); ok {
				return &NumExpr{V: v}
			}
		}
		// Algebraic identities (safe: no side effects dropped when the
		// discarded operand is a constant).
		if rok {
			switch {
			case r.V == 0 && (x.Op == "+" || x.Op == "-" || x.Op == "|" || x.Op == "^" || x.Op == "<<" || x.Op == ">>"):
				return x.L
			case r.V == 1 && (x.Op == "*" || x.Op == "/"):
				return x.L
			case r.V == 0 && x.Op == "*" && sideEffectFree(x.L):
				return &NumExpr{V: 0}
			}
		}
		if lok {
			switch {
			case l.V == 0 && (x.Op == "+" || x.Op == "|" || x.Op == "^"):
				return x.R
			case l.V == 1 && x.Op == "*":
				return x.R
			case l.V == 0 && x.Op == "*" && sideEffectFree(x.R):
				return &NumExpr{V: 0}
			}
		}
		return x
	case *IndexExpr:
		x.Idx = foldExpr(x.Idx)
		return x
	case *CallExpr:
		for i := range x.Args {
			x.Args[i] = foldExpr(x.Args[i])
		}
		return x
	case *AssignExpr:
		x.Value = foldExpr(x.Value)
		if ix, ok := x.Target.(*IndexExpr); ok {
			ix.Idx = foldExpr(ix.Idx)
		}
		return x
	default:
		return e
	}
}

// evalBinary evaluates a constant binary op; division by zero is left for
// run time.
func evalBinary(op string, l, r int64) (int64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case "&":
		return l & r, true
	case "|":
		return l | r, true
	case "^":
		return l ^ r, true
	case "<<":
		return l << (uint64(r) & 63), true
	case ">>":
		return l >> (uint64(r) & 63), true
	case "<":
		return b2i(l < r), true
	case "<=":
		return b2i(l <= r), true
	case ">":
		return b2i(l > r), true
	case ">=":
		return b2i(l >= r), true
	case "==":
		return b2i(l == r), true
	case "!=":
		return b2i(l != r), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldStmt folds constants in a statement and eliminates dead branches.
// It returns the (possibly replaced) statement; nil means the statement was
// removed entirely.
func foldStmt(s Stmt, elimDead bool) Stmt {
	switch st := s.(type) {
	case *Block:
		out := st.Stmts[:0]
		for _, c := range st.Stmts {
			if f := foldStmt(c, elimDead); f != nil {
				out = append(out, f)
			}
		}
		st.Stmts = out
		return st
	case *DeclStmt:
		if st.Init != nil {
			st.Init = foldExpr(st.Init)
		}
		return st
	case *ExprStmt:
		st.X = foldExpr(st.X)
		return st
	case *IfStmt:
		st.Cond = foldExpr(st.Cond)
		st.Then = foldStmt(st.Then, elimDead)
		if st.Else != nil {
			st.Else = foldStmt(st.Else, elimDead)
		}
		if elimDead {
			if n, ok := st.Cond.(*NumExpr); ok {
				if n.V != 0 {
					return st.Then
				}
				if st.Else != nil {
					return st.Else
				}
				return nil
			}
		}
		return st
	case *WhileStmt:
		st.Cond = foldExpr(st.Cond)
		st.Body = foldStmt(st.Body, elimDead)
		if elimDead {
			if n, ok := st.Cond.(*NumExpr); ok && n.V == 0 {
				return nil
			}
		}
		return st
	case *ForStmt:
		if st.Init != nil {
			st.Init = foldStmt(st.Init, elimDead)
		}
		if st.Cond != nil {
			st.Cond = foldExpr(st.Cond)
		}
		if st.Post != nil {
			st.Post = foldStmt(st.Post, elimDead)
		}
		st.Body = foldStmt(st.Body, elimDead)
		return st
	case *ReturnStmt:
		if st.X != nil {
			st.X = foldExpr(st.X)
		}
		return st
	default:
		return s
	}
}

// inliner replaces calls to single-return-statement functions with the
// substituted return expression. With a profile, call sites whose count
// clears the hot threshold are inlined even when the callee is larger.
type inliner struct {
	prog      *Program
	ids       *nodeIDs
	profile   *Profile
	sizeLimit int
	// hotFraction is the share of all dynamic calls above which a call
	// site counts as hot.
	hotFraction float64
	totalCalls  uint64
	// Inlined counts how many call sites were replaced (exposed for the
	// gcc benchmark's statistics and the FDO ablation).
	Inlined int
}

// exprSize measures an expression for the inlining budget.
func exprSize(e Expr) int {
	switch x := e.(type) {
	case *UnaryExpr:
		return 1 + exprSize(x.X)
	case *BinaryExpr:
		return 1 + exprSize(x.L) + exprSize(x.R)
	case *IndexExpr:
		return 1 + exprSize(x.Idx)
	case *CallExpr:
		n := 2
		for _, a := range x.Args {
			n += exprSize(a)
		}
		return n
	case *AssignExpr:
		return 1 + exprSize(x.Target) + exprSize(x.Value)
	default:
		return 1
	}
}

// inlinableBody returns the return expression of fn when fn consists of a
// single return statement, else nil.
func inlinableBody(fn *Func) Expr {
	if fn.Body == nil || len(fn.Body.Stmts) != 1 {
		return nil
	}
	ret, ok := fn.Body.Stmts[0].(*ReturnStmt)
	if !ok || ret.X == nil {
		return nil
	}
	return ret.X
}

// substitute clones expression e replacing parameter references with the
// given argument expressions. Arguments must be side-effect free (the
// caller checks); parameters may appear multiple times.
func substitute(e Expr, params map[string]Expr) Expr {
	switch x := e.(type) {
	case *NumExpr:
		return &NumExpr{V: x.V}
	case *VarExpr:
		if arg, ok := params[x.Name]; ok {
			return arg
		}
		return &VarExpr{Name: x.Name}
	case *IndexExpr:
		return &IndexExpr{Name: x.Name, Idx: substitute(x.Idx, params)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: substitute(x.X, params)}
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: substitute(x.L, params), R: substitute(x.R, params)}
	case *CallExpr:
		c := &CallExpr{Name: x.Name}
		for _, a := range x.Args {
			c.Args = append(c.Args, substitute(a, params))
		}
		return c
	case *AssignExpr:
		return &AssignExpr{Target: substitute(x.Target, params), Op: x.Op, Value: substitute(x.Value, params)}
	default:
		return e
	}
}

// countUses counts references to the named variable in e.
func countUses(e Expr, name string) int {
	switch x := e.(type) {
	case *VarExpr:
		if x.Name == name {
			return 1
		}
		return 0
	case *IndexExpr:
		return countUses(x.Idx, name)
	case *UnaryExpr:
		return countUses(x.X, name)
	case *BinaryExpr:
		return countUses(x.L, name) + countUses(x.R, name)
	case *CallExpr:
		n := 0
		for _, a := range x.Args {
			n += countUses(a, name)
		}
		return n
	case *AssignExpr:
		return countUses(x.Target, name) + countUses(x.Value, name)
	default:
		return 0
	}
}

// trivialExpr reports whether duplicating e is free (a literal or a plain
// variable reference).
func trivialExpr(e Expr) bool {
	switch e.(type) {
	case *NumExpr, *VarExpr:
		return true
	default:
		return false
	}
}

// sideEffectFree reports whether e can be duplicated safely.
func sideEffectFree(e Expr) bool {
	switch x := e.(type) {
	case *NumExpr, *VarExpr:
		return true
	case *IndexExpr:
		return sideEffectFree(x.Idx)
	case *UnaryExpr:
		return sideEffectFree(x.X)
	case *BinaryExpr:
		return sideEffectFree(x.L) && sideEffectFree(x.R)
	default:
		return false
	}
}

// run performs inlining over the whole program.
func (in *inliner) run() {
	funcsByName := map[string]*Func{}
	for _, fn := range in.prog.Funcs {
		funcsByName[fn.Name] = fn
	}
	var rewrite func(e Expr) Expr
	rewrite = func(e Expr) Expr {
		switch x := e.(type) {
		case *UnaryExpr:
			x.X = rewrite(x.X)
			return x
		case *BinaryExpr:
			x.L = rewrite(x.L)
			x.R = rewrite(x.R)
			return x
		case *IndexExpr:
			x.Idx = rewrite(x.Idx)
			return x
		case *AssignExpr:
			x.Target = rewrite(x.Target)
			x.Value = rewrite(x.Value)
			return x
		case *CallExpr:
			for i := range x.Args {
				x.Args[i] = rewrite(x.Args[i])
			}
			callee, ok := funcsByName[x.Name]
			if !ok {
				return x
			}
			body := inlinableBody(callee)
			if body == nil || len(callee.Params) != len(x.Args) {
				return x
			}
			limit := in.sizeLimit
			if in.profile != nil && in.totalCalls > 0 {
				// FDO: a call site is hot when it carries a meaningful
				// share of all dynamic calls (relative, so combined
				// profiles from many training runs are comparable to a
				// single run's profile).
				cnt := in.profile.CallSites[in.ids.calls[x]]
				if float64(cnt) >= in.hotFraction*float64(in.totalCalls) {
					limit *= 4 // hot call sites get a bigger budget
				}
			}
			if exprSize(body) > limit {
				return x
			}
			for i, a := range x.Args {
				if !sideEffectFree(a) {
					return x
				}
				// A parameter referenced more than once would duplicate
				// its argument's computation: only trivial arguments
				// (literals, plain variables) may be bound to such
				// parameters.
				if countUses(body, callee.Params[i]) > 1 && !trivialExpr(a) {
					return x
				}
			}
			params := map[string]Expr{}
			for i, name := range callee.Params {
				params[name] = x.Args[i]
			}
			in.Inlined++
			return substitute(body, params)
		default:
			return e
		}
	}
	var walkStmt func(s Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, c := range st.Stmts {
				walkStmt(c)
			}
		case *DeclStmt:
			if st.Init != nil {
				st.Init = rewrite(st.Init)
			}
		case *ExprStmt:
			st.X = rewrite(st.X)
		case *IfStmt:
			st.Cond = rewrite(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *WhileStmt:
			st.Cond = rewrite(st.Cond)
			walkStmt(st.Body)
		case *ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				st.Cond = rewrite(st.Cond)
			}
			if st.Post != nil {
				walkStmt(st.Post)
			}
			walkStmt(st.Body)
		case *ReturnStmt:
			if st.X != nil {
				st.X = rewrite(st.X)
			}
		}
	}
	for _, fn := range in.prog.Funcs {
		walkStmt(fn.Body)
	}
}

// Optimize runs the pass pipeline for the given level. The profile, when
// non-nil, drives FDO decisions (hot-call inlining here; branch layout in
// codegen). It returns pass statistics for reporting.
func Optimize(prog *Program, ids *nodeIDs, level OptLevel, profile *Profile) (inlined int) {
	if level >= O1 {
		for _, fn := range prog.Funcs {
			fn.Body = foldStmt(fn.Body, level >= O2).(*Block)
		}
	}
	if level >= O2 {
		limit := 6
		if level >= O3 {
			limit = 16
		}
		in := &inliner{prog: prog, ids: ids, profile: profile, sizeLimit: limit, hotFraction: 0.02}
		if profile != nil {
			for _, n := range profile.CallSites {
				in.totalCalls += n
			}
		}
		in.run()
		inlined = in.Inlined
		// Re-fold: substitution exposes new constant expressions.
		for _, fn := range prog.Funcs {
			fn.Body = foldStmt(fn.Body, true).(*Block)
		}
	}
	return inlined
}

// String names the level like a compiler flag.
func (l OptLevel) String() string {
	if l < O0 || l > O3 {
		return fmt.Sprintf("OptLevel(%d)", int(l))
	}
	return [...]string{"-O0", "-O1", "-O2", "-O3"}[l]
}
