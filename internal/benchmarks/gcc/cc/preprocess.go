package cc

import (
	"errors"
	"fmt"
	"strings"
)

// ErrPreprocess reports a preprocessing failure.
var ErrPreprocess = errors.New("cc: preprocess error")

// Preprocess handles the directive subset the workloads use: object-like
// #define, #undef, #ifdef/#ifndef/#else/#endif, and strips any other '#'
// line. The gcc benchmark's inputs are single preprocessed compilation
// units (the paper: "The input to this benchmark is a single file that must
// be preprocessed").
func Preprocess(src string) (string, error) {
	defines := map[string]string{}
	var out strings.Builder
	// condStack holds whether each enclosing conditional branch is active.
	type cond struct {
		active    bool // this branch emits
		everTaken bool // some branch of this conditional was taken
	}
	var stack []cond

	emitting := func() bool {
		for _, c := range stack {
			if !c.active {
				return false
			}
		}
		return true
	}

	for lineNo, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(strings.TrimPrefix(trimmed, "#"))
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "define":
				if !emitting() {
					continue
				}
				if len(fields) < 2 {
					return "", fmt.Errorf("%w: line %d: bare #define", ErrPreprocess, lineNo+1)
				}
				value := ""
				if len(fields) > 2 {
					value = strings.Join(fields[2:], " ")
				}
				defines[fields[1]] = value
			case "undef":
				if emitting() && len(fields) >= 2 {
					delete(defines, fields[1])
				}
			case "ifdef", "ifndef":
				if len(fields) < 2 {
					return "", fmt.Errorf("%w: line %d: %s without name", ErrPreprocess, lineNo+1, fields[0])
				}
				_, defined := defines[fields[1]]
				active := defined == (fields[0] == "ifdef")
				stack = append(stack, cond{active: active, everTaken: active})
			case "else":
				if len(stack) == 0 {
					return "", fmt.Errorf("%w: line %d: #else without #if", ErrPreprocess, lineNo+1)
				}
				top := &stack[len(stack)-1]
				top.active = !top.everTaken
				top.everTaken = top.everTaken || top.active
			case "endif":
				if len(stack) == 0 {
					return "", fmt.Errorf("%w: line %d: #endif without #if", ErrPreprocess, lineNo+1)
				}
				stack = stack[:len(stack)-1]
			default:
				// #include and friends are stripped: workloads are
				// single compilation units (OneFile's job).
			}
			continue
		}
		if !emitting() {
			continue
		}
		out.WriteString(expandMacros(line, defines))
		out.WriteByte('\n')
	}
	if len(stack) != 0 {
		return "", fmt.Errorf("%w: unterminated conditional", ErrPreprocess)
	}
	return out.String(), nil
}

// expandMacros substitutes object-like macros at identifier boundaries,
// one pass (no recursive expansion; sufficient for the generated
// workloads).
func expandMacros(line string, defines map[string]string) string {
	if len(defines) == 0 {
		return line
	}
	var sb strings.Builder
	i := 0
	for i < len(line) {
		c := line[i]
		if isIdentStart(c) {
			start := i
			for i < len(line) && isIdentChar(line[i]) {
				i++
			}
			word := line[start:i]
			if val, ok := defines[word]; ok {
				sb.WriteString(val)
			} else {
				sb.WriteString(word)
			}
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}
