package cc

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/perf"
)

// VM execution errors.
var (
	ErrNoMain       = errors.New("cc: program has no main")
	ErrOutOfBounds  = errors.New("cc: array index out of bounds")
	ErrDivByZero    = errors.New("cc: division by zero")
	ErrStepLimit    = errors.New("cc: step limit exceeded")
	ErrStackOverflo = errors.New("cc: call stack overflow")
)

// Synthetic address bases for the modeled hierarchy.
const (
	vmGlobalBase = 0x60_0000_0000
	vmArrayBase  = 0x61_0000_0000
	vmLocalBase  = 0x62_0000_0000
	vmCodeBase   = 0x63_0000_0000
)

// RunResult is the outcome of executing a compiled unit.
type RunResult struct {
	// Return is main's return value.
	Return int64
	// Output checksums the print stream.
	Output uint64
	// Printed counts print calls.
	Printed uint64
	// Steps counts executed instructions.
	Steps uint64
}

// VMOptions configure execution.
type VMOptions struct {
	// StepLimit bounds executed instructions (0 = default 50M).
	StepLimit uint64
	// Globals overrides initial values of named scalar globals — the
	// mechanism by which one compiled program runs different inputs.
	Globals map[string]int64
	// Collect, when non-nil, receives branch and call-site counts (the
	// FDO training run).
	Collect *Profile
	// Prof, when non-nil, receives modeled hardware events (the FDO
	// evaluation run): function-level coverage, branch outcomes through
	// the modeled predictor, memory traffic.
	Prof *perf.Profiler
}

// frame is one call record.
type frame struct {
	fn     *CompiledFunc
	pc     int
	locals []int64
	base   int // operand-stack base
}

// Run executes the unit's main function.
func Run(u *Unit, opts VMOptions) (RunResult, error) {
	mainIdx, ok := u.FuncIndex["main"]
	if !ok {
		return RunResult{}, ErrNoMain
	}
	limit := opts.StepLimit
	if limit == 0 {
		limit = 50_000_000
	}
	globals := append([]int64(nil), u.GlobalInit...)
	for name, v := range opts.Globals {
		slot, ok := u.GlobalIndex[name]
		if !ok {
			return RunResult{}, fmt.Errorf("%w: no global %q to override", ErrCompile, name)
		}
		globals[slot] = v
	}
	arrays := make([][]int64, len(u.Arrays))
	for i, size := range u.Arrays {
		arrays[i] = make([]int64, size)
	}

	prof := opts.Prof
	collect := opts.Collect

	var res RunResult
	outSum := core.NewChecksum()
	stack := make([]int64, 0, 1024)
	frames := make([]frame, 0, 64)

	fn := u.Funcs[mainIdx]
	if fn.NumParams != 0 {
		return RunResult{}, fmt.Errorf("%w: main takes parameters", ErrCompile)
	}
	cur := frame{fn: fn, locals: make([]int64, fn.NumLocals)}
	if prof != nil {
		prof.Enter("vm:" + fn.Name)
	}

	pop := func() int64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v int64) { stack = append(stack, v) }

	branchEvent := func(id int32, taken bool) {
		if collect != nil && id != 0 {
			bc, ok := collect.Branches[int(id)]
			if !ok {
				bc = &BranchCount{}
				collect.Branches[int(id)] = bc
			}
			bc.Total++
			if taken {
				bc.Taken++
			}
		}
		if prof != nil {
			prof.Branch(uint64(id), taken)
			if taken {
				prof.Ops(1) // taken-jump fetch redirect
			}
		}
	}

	for {
		if res.Steps >= limit {
			return res, fmt.Errorf("%w after %d steps", ErrStepLimit, res.Steps)
		}
		res.Steps++
		in := cur.fn.Code[cur.pc]
		cur.pc++
		if prof != nil {
			prof.Ops(1)
		}
		switch in.Op {
		case OpConst:
			push(in.A)
		case OpLoadL:
			push(cur.locals[in.A])
			if prof != nil {
				prof.Load(vmLocalBase + uint64(len(frames))<<10 + uint64(in.A)*8)
			}
		case OpStoreL:
			cur.locals[in.A] = pop()
			if prof != nil {
				prof.Store(vmLocalBase + uint64(len(frames))<<10 + uint64(in.A)*8)
			}
		case OpLoadG:
			push(globals[in.A])
			if prof != nil {
				prof.Load(vmGlobalBase + uint64(in.A)*8)
			}
		case OpStoreG:
			globals[in.A] = pop()
			if prof != nil {
				prof.Store(vmGlobalBase + uint64(in.A)*8)
			}
		case OpALoad:
			idx := pop()
			arr := arrays[in.A]
			if idx < 0 || idx >= int64(len(arr)) {
				return res, fmt.Errorf("%w: %d of %d", ErrOutOfBounds, idx, len(arr))
			}
			push(arr[idx])
			if prof != nil {
				prof.Load(vmArrayBase + uint64(in.A)<<24 + uint64(idx)*8)
			}
		case OpAStore:
			idx := pop()
			val := pop()
			arr := arrays[in.A]
			if idx < 0 || idx >= int64(len(arr)) {
				return res, fmt.Errorf("%w: %d of %d", ErrOutOfBounds, idx, len(arr))
			}
			arr[idx] = val
			if prof != nil {
				prof.Store(vmArrayBase + uint64(in.A)<<24 + uint64(idx)*8)
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
			r := pop()
			l := pop()
			if (in.Op == OpDiv || in.Op == OpMod) && r == 0 {
				return res, ErrDivByZero
			}
			v, _ := evalBinary(opToStr[in.Op], l, r)
			push(v)
			if in.Op == OpDiv || in.Op == OpMod {
				if prof != nil {
					prof.LongOps(1)
				}
			}
		case OpNeg:
			push(-pop())
		case OpNot:
			push(b2i(pop() == 0))
		case OpBNot:
			push(^pop())
		case OpBool:
			push(b2i(pop() != 0))
		case OpJmp:
			cur.pc = int(in.A)
			if prof != nil {
				prof.Jump()
			}
		case OpJz:
			v := pop()
			taken := v == 0
			branchEvent(in.B, taken)
			if taken {
				cur.pc = int(in.A)
			}
		case OpJnz:
			v := pop()
			taken := v != 0
			branchEvent(in.B, taken)
			if taken {
				cur.pc = int(in.A)
			}
		case OpCall:
			callee := u.Funcs[in.A]
			if len(frames) >= 512 {
				return res, ErrStackOverflo
			}
			if collect != nil && in.B != 0 {
				collect.CallSites[int(in.B)]++
			}
			locals := make([]int64, callee.NumLocals)
			// Arguments were pushed left to right.
			for i := callee.NumParams - 1; i >= 0; i-- {
				locals[i] = pop()
			}
			frames = append(frames, cur)
			cur = frame{fn: callee, locals: locals, base: len(stack)}
			if prof != nil {
				prof.Ops(6) // call overhead
				prof.Enter("vm:" + callee.Name)
			}
		case OpRet:
			v := pop()
			if len(frames) == 0 {
				res.Return = v
				res.Output = outSum.Value()
				if prof != nil {
					prof.Leave()
				}
				return res, nil
			}
			stack = stack[:cur.base]
			cur = frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			push(v)
			if prof != nil {
				prof.Ops(4) // return overhead
				prof.Leave()
			}
		case OpPrint:
			v := pop()
			outSum = outSum.AddUint64(uint64(v))
			res.Printed++
		case OpPop:
			pop()
		case OpDup:
			push(stack[len(stack)-1])
		default:
			return res, fmt.Errorf("%w: bad opcode %d", ErrCompile, in.Op)
		}
	}
}

// opToStr maps arithmetic opcodes back to their operator for evalBinary.
var opToStr = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
}

// CompileSource is the full front-to-back driver: preprocess, parse,
// number, optimize, and lower. When prof is non-nil, the *compiler's own*
// execution is instrumented (this is what the 502.gcc_r benchmark
// measures). fdoProfile, when non-nil, drives FDO decisions.
func CompileSource(src string, level OptLevel, fdoProfile *Profile, prof *perf.Profiler) (*Unit, error) {
	if prof != nil {
		prof.SetFootprint("preprocess", 3<<10)
		prof.SetFootprint("lex", 4<<10)
		prof.SetFootprint("parse", 8<<10)
		prof.SetFootprint("fold_constants", 4<<10)
		prof.SetFootprint("inline_functions", 3<<10)
		prof.SetFootprint("codegen", 6<<10)
	}
	var pre string
	var err error
	if prof != nil {
		prof.Enter("preprocess")
		prof.Ops(uint64(len(src)) / 2)
		for i := 0; i < len(src); i += 64 {
			prof.Load(0x64_0000_0000 + uint64(i))
		}
	}
	pre, err = Preprocess(src)
	if prof != nil {
		prof.Leave()
	}
	if err != nil {
		return nil, err
	}

	var prog *Program
	if prof != nil {
		prof.Enter("parse")
		prof.Ops(uint64(len(pre)) * 2)
		for i := 0; i < len(pre); i += 32 {
			prof.Load(0x65_0000_0000 + uint64(i))
			if i%160 == 0 {
				prof.Branch(50, i%320 == 0)
			}
		}
	}
	prog, err = Parse(pre)
	if prof != nil {
		prof.Leave()
	}
	if err != nil {
		return nil, err
	}
	ids := Number(prog)

	var inlined int
	if prof != nil {
		prof.Enter("fold_constants")
		prof.Ops(uint64(ids.next) * 16)
		prof.Leave()
		prof.Enter("inline_functions")
	}
	inlined = Optimize(prog, ids, level, fdoProfile)
	if prof != nil {
		prof.Ops(uint64(len(prog.Funcs)) * 32)
		prof.Leave()
		prof.Enter("codegen")
	}
	unit, err := Compile(prog, ids, fdoProfile)
	if prof != nil {
		if unit != nil {
			n := 0
			for _, f := range unit.Funcs {
				n += len(f.Code)
			}
			prof.Ops(uint64(n) * 6)
			for i := 0; i < n; i++ {
				prof.Store(vmCodeBase + uint64(i)*16)
				if i%8 == 0 {
					prof.Branch(51, i%16 == 0)
				}
			}
		}
		prof.Leave()
	}
	if err != nil {
		return nil, err
	}
	unit.Inlined = inlined
	return unit, nil
}

// Checksum folds a compiled unit into a stable value (the gcc benchmark's
// output: the generated code).
func (u *Unit) Checksum() uint64 {
	sum := core.NewChecksum().AddUint64(uint64(u.NumGlobals)).AddUint64(uint64(len(u.Arrays)))
	for _, f := range u.Funcs {
		sum = sum.AddString(f.Name).AddUint64(uint64(f.NumLocals))
		for _, in := range f.Code {
			sum = sum.AddUint64(uint64(in.Op)).AddUint64(uint64(in.A))
		}
	}
	return sum.Value()
}
