package cc

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/perf"
)

// VM execution errors.
var (
	ErrNoMain        = errors.New("cc: program has no main")
	ErrOutOfBounds   = errors.New("cc: array index out of bounds")
	ErrDivByZero     = errors.New("cc: division by zero")
	ErrStepLimit     = errors.New("cc: step limit exceeded")
	ErrStackOverflow = errors.New("cc: call stack overflow")
)

// Synthetic address bases for the modeled hierarchy.
const (
	vmGlobalBase = 0x60_0000_0000
	vmArrayBase  = 0x61_0000_0000
	vmLocalBase  = 0x62_0000_0000
	vmCodeBase   = 0x63_0000_0000
)

// RunResult is the outcome of executing a compiled unit.
type RunResult struct {
	// Return is main's return value.
	Return int64
	// Output checksums the print stream.
	Output uint64
	// Printed counts print calls.
	Printed uint64
	// Steps counts executed instructions.
	Steps uint64
}

// VMOptions configure execution.
type VMOptions struct {
	// StepLimit bounds executed instructions (0 = default 50M).
	StepLimit uint64
	// Globals overrides initial values of named scalar globals — the
	// mechanism by which one compiled program runs different inputs.
	Globals map[string]int64
	// Collect, when non-nil, receives branch and call-site counts (the
	// FDO training run).
	Collect *Profile
	// Prof, when non-nil, receives modeled hardware events (the FDO
	// evaluation run): function-level coverage, branch outcomes through
	// the modeled predictor, memory traffic.
	Prof *perf.Profiler
	// Scratch, when non-nil, supplies reusable run buffers (operand stack,
	// call frames, locals arena, globals, array storage) so repeated runs
	// of prepared workloads do not re-allocate. A Scratch must not be
	// shared between concurrent Runs.
	Scratch *Scratch
}

// frame is one call record. Locals live in the run's shared arena at
// [lbase, lbase+fn.NumLocals); frames are LIFO so returning truncates the
// arena back to lbase.
type frame struct {
	fn    *CompiledFunc
	pc    int
	lbase int // locals-arena base
	base  int // operand-stack base
}

// Scratch holds the VM's reusable run state. The zero value is ready to
// use; buffers grow on first use and are recycled on subsequent runs.
type Scratch struct {
	stack   []int64
	frames  []frame
	arena   []int64 // locals arena, frames index into it by offset
	globals []int64
	arrays  [][]int64
	arrMem  []int64 // single backing store for all arrays
}

// growZero extends a by n zeroed slots, reusing capacity when available.
func growZero(a []int64, n int) []int64 {
	old := len(a)
	if old+n <= cap(a) {
		a = a[:old+n]
		clear(a[old:])
		return a
	}
	b := make([]int64, old+n, (old+n)*2+64)
	copy(b, a)
	return b
}

// Run executes the unit's main function. The dispatch loop operates
// directly on slice-indexed stacks (no per-op closures, no string-keyed
// operator dispatch) and draws frame locals from a LIFO arena so steady-
// state execution performs no per-call allocation.
func Run(u *Unit, opts VMOptions) (RunResult, error) {
	mainIdx, ok := u.FuncIndex["main"]
	if !ok {
		return RunResult{}, ErrNoMain
	}
	limit := opts.StepLimit
	if limit == 0 {
		limit = 50_000_000
	}
	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	globals := append(sc.globals[:0], u.GlobalInit...)
	sc.globals = globals
	for name, v := range opts.Globals {
		slot, ok := u.GlobalIndex[name]
		if !ok {
			return RunResult{}, fmt.Errorf("%w: no global %q to override", ErrCompile, name)
		}
		globals[slot] = v
	}
	total := 0
	for _, size := range u.Arrays {
		total += size
	}
	arrMem := growZero(sc.arrMem[:0], total)
	sc.arrMem = arrMem
	arrays := sc.arrays[:0]
	off := 0
	for _, size := range u.Arrays {
		arrays = append(arrays, arrMem[off:off+size:off+size])
		off += size
	}
	sc.arrays = arrays

	prof := opts.Prof
	collect := opts.Collect

	var res RunResult
	outSum := core.NewChecksum()
	stack := sc.stack[:0]
	frames := sc.frames[:0]
	arena := sc.arena[:0]
	defer func() {
		// Return grown buffers to the scratch for the next run.
		sc.stack = stack[:0]
		sc.frames = frames[:0]
		sc.arena = arena[:0]
	}()

	fn := u.Funcs[mainIdx]
	if fn.NumParams != 0 {
		return RunResult{}, fmt.Errorf("%w: main takes parameters", ErrCompile)
	}
	arena = growZero(arena, fn.NumLocals)
	cur := frame{fn: fn}
	if prof != nil {
		prof.Enter("vm:" + fn.Name)
	}

	branchEvent := func(id int32, taken bool) {
		if collect != nil && id != 0 {
			bc, ok := collect.Branches[int(id)]
			if !ok {
				bc = &BranchCount{}
				collect.Branches[int(id)] = bc
			}
			bc.Total++
			if taken {
				bc.Taken++
			}
		}
		if prof != nil {
			prof.Branch(uint64(id), taken)
			if taken {
				prof.Ops(1) // taken-jump fetch redirect
			}
		}
	}

	for {
		if res.Steps >= limit {
			return res, fmt.Errorf("%w after %d steps", ErrStepLimit, res.Steps)
		}
		res.Steps++
		in := cur.fn.Code[cur.pc]
		cur.pc++
		if prof != nil {
			prof.Ops(1)
		}
		switch in.Op {
		case OpConst:
			stack = append(stack, in.A)
		case OpLoadL:
			stack = append(stack, arena[cur.lbase+int(in.A)])
			if prof != nil {
				prof.Load(vmLocalBase + uint64(len(frames))<<10 + uint64(in.A)*8)
			}
		case OpStoreL:
			arena[cur.lbase+int(in.A)] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if prof != nil {
				prof.Store(vmLocalBase + uint64(len(frames))<<10 + uint64(in.A)*8)
			}
		case OpLoadG:
			stack = append(stack, globals[in.A])
			if prof != nil {
				prof.Load(vmGlobalBase + uint64(in.A)*8)
			}
		case OpStoreG:
			globals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if prof != nil {
				prof.Store(vmGlobalBase + uint64(in.A)*8)
			}
		case OpALoad:
			idx := stack[len(stack)-1]
			arr := arrays[in.A]
			if idx < 0 || idx >= int64(len(arr)) {
				return res, fmt.Errorf("%w: %d of %d", ErrOutOfBounds, idx, len(arr))
			}
			stack[len(stack)-1] = arr[idx]
			if prof != nil {
				prof.Load(vmArrayBase + uint64(in.A)<<24 + uint64(idx)*8)
			}
		case OpAStore:
			idx := stack[len(stack)-1]
			val := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			arr := arrays[in.A]
			if idx < 0 || idx >= int64(len(arr)) {
				return res, fmt.Errorf("%w: %d of %d", ErrOutOfBounds, idx, len(arr))
			}
			arr[idx] = val
			if prof != nil {
				prof.Store(vmArrayBase + uint64(in.A)<<24 + uint64(idx)*8)
			}
		case OpAdd:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] += r
		case OpSub:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] -= r
		case OpMul:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] *= r
		case OpDiv:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r == 0 {
				return res, ErrDivByZero
			}
			stack[len(stack)-1] /= r
			if prof != nil {
				prof.LongOps(1)
			}
		case OpMod:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r == 0 {
				return res, ErrDivByZero
			}
			stack[len(stack)-1] %= r
			if prof != nil {
				prof.LongOps(1)
			}
		case OpAnd:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] &= r
		case OpOr:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] |= r
		case OpXor:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] ^= r
		case OpShl:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] <<= uint64(r) & 63
		case OpShr:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] >>= uint64(r) & 63
		case OpLt:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2i(stack[len(stack)-1] < r)
		case OpLe:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2i(stack[len(stack)-1] <= r)
		case OpGt:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2i(stack[len(stack)-1] > r)
		case OpGe:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2i(stack[len(stack)-1] >= r)
		case OpEq:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2i(stack[len(stack)-1] == r)
		case OpNe:
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack[len(stack)-1] = b2i(stack[len(stack)-1] != r)
		case OpNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]
		case OpNot:
			stack[len(stack)-1] = b2i(stack[len(stack)-1] == 0)
		case OpBNot:
			stack[len(stack)-1] = ^stack[len(stack)-1]
		case OpBool:
			stack[len(stack)-1] = b2i(stack[len(stack)-1] != 0)
		case OpJmp:
			cur.pc = int(in.A)
			if prof != nil {
				prof.Jump()
			}
		case OpJz:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			taken := v == 0
			branchEvent(in.B, taken)
			if taken {
				cur.pc = int(in.A)
			}
		case OpJnz:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			taken := v != 0
			branchEvent(in.B, taken)
			if taken {
				cur.pc = int(in.A)
			}
		case OpCall:
			callee := u.Funcs[in.A]
			if len(frames) >= 512 {
				return res, ErrStackOverflow
			}
			if collect != nil && in.B != 0 {
				collect.CallSites[int(in.B)]++
			}
			lbase := len(arena)
			arena = growZero(arena, callee.NumLocals)
			// Arguments were pushed left to right.
			for i := callee.NumParams - 1; i >= 0; i-- {
				arena[lbase+i] = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			}
			frames = append(frames, cur)
			cur = frame{fn: callee, lbase: lbase, base: len(stack)}
			if prof != nil {
				prof.Ops(6) // call overhead
				prof.Enter("vm:" + callee.Name)
			}
		case OpRet:
			v := stack[len(stack)-1]
			if len(frames) == 0 {
				res.Return = v
				res.Output = outSum.Value()
				if prof != nil {
					prof.Leave()
				}
				return res, nil
			}
			stack = stack[:cur.base]
			arena = arena[:cur.lbase]
			cur = frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			stack = append(stack, v)
			if prof != nil {
				prof.Ops(4) // return overhead
				prof.Leave()
			}
		case OpPrint:
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			outSum = outSum.AddUint64(uint64(v))
			res.Printed++
		case OpPop:
			stack = stack[:len(stack)-1]
		case OpDup:
			stack = append(stack, stack[len(stack)-1])
		default:
			return res, fmt.Errorf("%w: bad opcode %d", ErrCompile, in.Op)
		}
	}
}

// CompileSource is the full front-to-back driver: preprocess, parse,
// number, optimize, and lower. When prof is non-nil, the *compiler's own*
// execution is instrumented (this is what the 502.gcc_r benchmark
// measures). fdoProfile, when non-nil, drives FDO decisions.
func CompileSource(src string, level OptLevel, fdoProfile *Profile, prof *perf.Profiler) (*Unit, error) {
	if prof != nil {
		prof.SetFootprint("preprocess", 3<<10)
		prof.SetFootprint("lex", 4<<10)
		prof.SetFootprint("parse", 8<<10)
		prof.SetFootprint("fold_constants", 4<<10)
		prof.SetFootprint("inline_functions", 3<<10)
		prof.SetFootprint("codegen", 6<<10)
	}
	var pre string
	var err error
	if prof != nil {
		prof.Enter("preprocess")
		prof.Ops(uint64(len(src)) / 2)
		for i := 0; i < len(src); i += 64 {
			prof.Load(0x64_0000_0000 + uint64(i))
		}
	}
	pre, err = Preprocess(src)
	if prof != nil {
		prof.Leave()
	}
	if err != nil {
		return nil, err
	}

	var prog *Program
	if prof != nil {
		prof.Enter("parse")
		prof.Ops(uint64(len(pre)) * 2)
		for i := 0; i < len(pre); i += 32 {
			prof.Load(0x65_0000_0000 + uint64(i))
			if i%160 == 0 {
				prof.Branch(50, i%320 == 0)
			}
		}
	}
	prog, err = Parse(pre)
	if prof != nil {
		prof.Leave()
	}
	if err != nil {
		return nil, err
	}
	ids := Number(prog)

	var inlined int
	if prof != nil {
		prof.Enter("fold_constants")
		prof.Ops(uint64(ids.next) * 16)
		prof.Leave()
		prof.Enter("inline_functions")
	}
	inlined = Optimize(prog, ids, level, fdoProfile)
	if prof != nil {
		prof.Ops(uint64(len(prog.Funcs)) * 32)
		prof.Leave()
		prof.Enter("codegen")
	}
	unit, err := Compile(prog, ids, fdoProfile)
	if prof != nil {
		if unit != nil {
			n := 0
			for _, f := range unit.Funcs {
				n += len(f.Code)
			}
			prof.Ops(uint64(n) * 6)
			for i := 0; i < n; i++ {
				prof.Store(vmCodeBase + uint64(i)*16)
				if i%8 == 0 {
					prof.Branch(51, i%16 == 0)
				}
			}
		}
		prof.Leave()
	}
	if err != nil {
		return nil, err
	}
	unit.Inlined = inlined
	return unit, nil
}

// Checksum folds a compiled unit into a stable value (the gcc benchmark's
// output: the generated code).
func (u *Unit) Checksum() uint64 {
	sum := core.NewChecksum().AddUint64(uint64(u.NumGlobals)).AddUint64(uint64(len(u.Arrays)))
	for _, f := range u.Funcs {
		sum = sum.AddString(f.Name).AddUint64(uint64(f.NumLocals))
		for _, in := range f.Code {
			sum = sum.AddUint64(uint64(in.Op)).AddUint64(uint64(in.A))
		}
	}
	return sum.Value()
}
