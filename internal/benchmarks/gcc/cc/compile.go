package cc

import (
	"errors"
	"fmt"
)

// Op is a bytecode opcode for the stack VM.
type Op uint8

// Opcodes.
const (
	OpConst  Op = iota // push constant A
	OpLoadL            // push local[A]
	OpStoreL           // pop into local[A]
	OpLoadG            // push global[A]
	OpStoreG           // pop into global[A]
	OpALoad            // pop index; push array[A][index]
	OpAStore           // pop index, pop value; array[A][index] = value
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpNeg
	OpNot
	OpBNot
	OpBool  // normalize top of stack to 0/1
	OpJmp   // jump to A
	OpJz    // pop; jump to A when zero (branch node B)
	OpJnz   // pop; jump to A when non-zero (branch node B)
	OpCall  // call function A with its declared arg count (call site B)
	OpRet   // return top of stack (or 0 when stack frame empty)
	OpPrint // pop and append to output
	OpPop   // discard top of stack
	OpDup   // duplicate top of stack
)

// Instr is one bytecode instruction.
type Instr struct {
	Op Op
	A  int64 // operand: constant value, slot, target pc, or function index
	B  int32 // auxiliary: branch/call-site node ID
}

// CompiledFunc is one function's bytecode.
type CompiledFunc struct {
	Name      string
	NumParams int
	NumLocals int
	Code      []Instr
}

// Unit is a compiled program image.
type Unit struct {
	Funcs      []*CompiledFunc
	FuncIndex  map[string]int
	NumGlobals int
	GlobalInit []int64
	// GlobalIndex maps scalar global names to their slots (inputs are
	// injected by overriding initial values; see VMOptions.Globals).
	GlobalIndex map[string]int
	Arrays      []int // array sizes, indexed by array slot
	// Inlined reports how many call sites the optimizer inlined.
	Inlined int
}

// ErrCompile reports a semantic error.
var ErrCompile = errors.New("cc: compile error")

// symbol kinds in the global scope.
type globalSym struct {
	isArray bool
	slot    int
}

// compiler generates bytecode for one function.
type compiler struct {
	unit    *Unit
	ids     *nodeIDs
	profile *Profile
	globals map[string]globalSym
	funcs   map[string]int
	arity   map[string]int

	code   []Instr
	locals []map[string]int
	nLoc   int
	maxLoc int
}

// coldJumpThreshold is the jump-taken probability below which codegen lays
// an if/else out in inverted polarity (FDO branch layout). The default
// layout (JZ to else) executes no unconditional jump on the cond-false
// path, so it already favors a frequently-taken JZ; inversion pays off only
// when the JZ is rarely taken (cond usually true), putting the then-path on
// the jump-free fallthrough.
const coldJumpThreshold = 0.4

// Compile lowers an optimized program to bytecode. The profile, when
// non-nil, drives branch-layout decisions.
func Compile(prog *Program, ids *nodeIDs, profile *Profile) (*Unit, error) {
	unit := &Unit{FuncIndex: map[string]int{}, GlobalIndex: map[string]int{}}
	globals := map[string]globalSym{}
	for _, g := range prog.Globals {
		if _, dup := globals[g.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate global %q", ErrCompile, g.Name)
		}
		if g.ArraySize > 0 {
			globals[g.Name] = globalSym{isArray: true, slot: len(unit.Arrays)}
			unit.Arrays = append(unit.Arrays, g.ArraySize)
		} else {
			globals[g.Name] = globalSym{slot: unit.NumGlobals}
			unit.GlobalIndex[g.Name] = unit.NumGlobals
			unit.GlobalInit = append(unit.GlobalInit, g.Init)
			unit.NumGlobals++
		}
	}
	funcs := map[string]int{}
	arity := map[string]int{}
	for i, fn := range prog.Funcs {
		if _, dup := funcs[fn.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate function %q", ErrCompile, fn.Name)
		}
		funcs[fn.Name] = i
		arity[fn.Name] = len(fn.Params)
		unit.FuncIndex[fn.Name] = i
	}
	for _, fn := range prog.Funcs {
		c := &compiler{unit: unit, ids: ids, profile: profile, globals: globals, funcs: funcs, arity: arity}
		cf, err := c.compileFunc(fn)
		if err != nil {
			return nil, err
		}
		unit.Funcs = append(unit.Funcs, cf)
	}
	return unit, nil
}

func (c *compiler) compileFunc(fn *Func) (*CompiledFunc, error) {
	c.pushScope()
	for _, p := range fn.Params {
		c.declare(p)
	}
	if err := c.stmt(fn.Body); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, fn.Name)
	}
	c.popScope()
	// Implicit return 0.
	c.emit(Instr{Op: OpConst, A: 0})
	c.emit(Instr{Op: OpRet})
	return &CompiledFunc{
		Name:      fn.Name,
		NumParams: len(fn.Params),
		NumLocals: c.maxLoc,
		Code:      c.code,
	}, nil
}

func (c *compiler) emit(i Instr) int {
	c.code = append(c.code, i)
	return len(c.code) - 1
}

func (c *compiler) patch(at int, target int) {
	c.code[at].A = int64(target)
}

func (c *compiler) pushScope() {
	c.locals = append(c.locals, map[string]int{})
}

func (c *compiler) popScope() {
	top := c.locals[len(c.locals)-1]
	c.nLoc -= len(top)
	c.locals = c.locals[:len(c.locals)-1]
}

func (c *compiler) declare(name string) int {
	slot := c.nLoc
	c.locals[len(c.locals)-1][name] = slot
	c.nLoc++
	if c.nLoc > c.maxLoc {
		c.maxLoc = c.nLoc
	}
	return slot
}

// resolve finds name as a local slot (ok) or returns ok=false.
func (c *compiler) resolveLocal(name string) (int, bool) {
	for i := len(c.locals) - 1; i >= 0; i-- {
		if slot, ok := c.locals[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

// jumpProb returns the profiled probability that branch id's jump is taken
// (-1 when unknown).
func (c *compiler) jumpProb(id int) float64 {
	if c.profile == nil || id == 0 {
		return -1
	}
	bc, ok := c.profile.Branches[id]
	if !ok || bc.Total == 0 {
		return -1
	}
	return float64(bc.Taken) / float64(bc.Total)
}

func (c *compiler) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		c.pushScope()
		for _, child := range st.Stmts {
			if err := c.stmt(child); err != nil {
				return err
			}
		}
		c.popScope()
		return nil
	case *DeclStmt:
		slot := c.declare(st.Name)
		if st.Init != nil {
			if err := c.expr(st.Init); err != nil {
				return err
			}
		} else {
			c.emit(Instr{Op: OpConst, A: 0})
		}
		c.emit(Instr{Op: OpStoreL, A: int64(slot)})
		return nil
	case *ExprStmt:
		if err := c.expr(st.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpPop})
		return nil
	case *IfStmt:
		return c.ifStmt(st)
	case *WhileStmt:
		return c.whileStmt(st)
	case *ForStmt:
		return c.forStmt(st)
	case *ReturnStmt:
		if st.X != nil {
			if err := c.expr(st.X); err != nil {
				return err
			}
		} else {
			c.emit(Instr{Op: OpConst, A: 0})
		}
		c.emit(Instr{Op: OpRet})
		return nil
	default:
		return fmt.Errorf("%w: unknown statement %T", ErrCompile, s)
	}
}

// ifStmt emits an if/else with profile-guided layout: when the jump-taken
// probability is high, polarity is inverted so the hot successor falls
// through.
func (c *compiler) ifStmt(st *IfStmt) error {
	id := c.ids.ifs[st]
	if err := c.expr(st.Cond); err != nil {
		return err
	}
	prob := c.jumpProb(id)
	invert := prob >= 0 && prob < coldJumpThreshold && st.Else != nil
	if !invert {
		// cond; JZ else; then; JMP end; else:; end:
		jz := c.emit(Instr{Op: OpJz, B: int32(id)})
		if err := c.stmt(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			c.patch(jz, len(c.code))
			return nil
		}
		jmp := c.emit(Instr{Op: OpJmp})
		c.patch(jz, len(c.code))
		if err := c.stmt(st.Else); err != nil {
			return err
		}
		c.patch(jmp, len(c.code))
		return nil
	}
	// Inverted: cond; JNZ then; else; JMP end; then:; end:
	jnz := c.emit(Instr{Op: OpJnz, B: int32(id)})
	if err := c.stmt(st.Else); err != nil {
		return err
	}
	jmp := c.emit(Instr{Op: OpJmp})
	c.patch(jnz, len(c.code))
	if err := c.stmt(st.Then); err != nil {
		return err
	}
	c.patch(jmp, len(c.code))
	return nil
}

// whileStmt emits a rotated loop (test at the bottom): one taken jump per
// iteration instead of two.
func (c *compiler) whileStmt(st *WhileStmt) error {
	id := c.ids.whiles[st]
	jmp := c.emit(Instr{Op: OpJmp}) // jump to test
	bodyStart := len(c.code)
	if err := c.stmt(st.Body); err != nil {
		return err
	}
	c.patch(jmp, len(c.code))
	if err := c.expr(st.Cond); err != nil {
		return err
	}
	c.emit(Instr{Op: OpJnz, A: int64(bodyStart), B: int32(id)})
	return nil
}

func (c *compiler) forStmt(st *ForStmt) error {
	id := c.ids.fors[st]
	c.pushScope()
	defer c.popScope()
	if st.Init != nil {
		if err := c.stmt(st.Init); err != nil {
			return err
		}
	}
	jmp := -1
	if st.Cond != nil {
		jmp = c.emit(Instr{Op: OpJmp}) // to test
	}
	bodyStart := len(c.code)
	if err := c.stmt(st.Body); err != nil {
		return err
	}
	if st.Post != nil {
		if err := c.stmt(st.Post); err != nil {
			return err
		}
	}
	if st.Cond == nil {
		c.emit(Instr{Op: OpJmp, A: int64(bodyStart)})
		return nil
	}
	c.patch(jmp, len(c.code))
	if err := c.expr(st.Cond); err != nil {
		return err
	}
	c.emit(Instr{Op: OpJnz, A: int64(bodyStart), B: int32(id)})
	return nil
}

var binOps = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"&": OpAnd, "|": OpOr, "^": OpXor, "<<": OpShl, ">>": OpShr,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
}

func (c *compiler) expr(e Expr) error {
	switch x := e.(type) {
	case *NumExpr:
		c.emit(Instr{Op: OpConst, A: x.V})
		return nil
	case *VarExpr:
		if slot, ok := c.resolveLocal(x.Name); ok {
			c.emit(Instr{Op: OpLoadL, A: int64(slot)})
			return nil
		}
		if g, ok := c.globals[x.Name]; ok && !g.isArray {
			c.emit(Instr{Op: OpLoadG, A: int64(g.slot)})
			return nil
		}
		return fmt.Errorf("%w: undeclared variable %q", ErrCompile, x.Name)
	case *IndexExpr:
		g, ok := c.globals[x.Name]
		if !ok || !g.isArray {
			return fmt.Errorf("%w: %q is not an array", ErrCompile, x.Name)
		}
		if err := c.expr(x.Idx); err != nil {
			return err
		}
		c.emit(Instr{Op: OpALoad, A: int64(g.slot)})
		return nil
	case *UnaryExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		switch x.Op {
		case "-":
			c.emit(Instr{Op: OpNeg})
		case "!":
			c.emit(Instr{Op: OpNot})
		case "~":
			c.emit(Instr{Op: OpBNot})
		default:
			return fmt.Errorf("%w: unary %q", ErrCompile, x.Op)
		}
		return nil
	case *BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			return c.logical(x)
		}
		if err := c.expr(x.L); err != nil {
			return err
		}
		if err := c.expr(x.R); err != nil {
			return err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return fmt.Errorf("%w: binary %q", ErrCompile, x.Op)
		}
		c.emit(Instr{Op: op})
		return nil
	case *CallExpr:
		return c.call(x)
	case *AssignExpr:
		return c.assign(x)
	default:
		return fmt.Errorf("%w: unknown expression %T", ErrCompile, e)
	}
}

// logical emits short-circuit && / || leaving a 0/1 value.
func (c *compiler) logical(x *BinaryExpr) error {
	id := c.ids.logic[x]
	if err := c.expr(x.L); err != nil {
		return err
	}
	c.emit(Instr{Op: OpDup})
	var jshort int
	if x.Op == "&&" {
		jshort = c.emit(Instr{Op: OpJz, B: int32(id)})
	} else {
		jshort = c.emit(Instr{Op: OpJnz, B: int32(id)})
	}
	c.emit(Instr{Op: OpPop})
	if err := c.expr(x.R); err != nil {
		return err
	}
	c.patch(jshort, len(c.code))
	c.emit(Instr{Op: OpBool})
	return nil
}

// call emits a function call or the print builtin.
func (c *compiler) call(x *CallExpr) error {
	for _, a := range x.Args {
		if err := c.expr(a); err != nil {
			return err
		}
	}
	if x.Name == "print" {
		if len(x.Args) != 1 {
			return fmt.Errorf("%w: print takes one argument", ErrCompile)
		}
		c.emit(Instr{Op: OpPrint})
		c.emit(Instr{Op: OpConst, A: 0}) // print's value
		return nil
	}
	idx, ok := c.funcs[x.Name]
	if !ok {
		return fmt.Errorf("%w: undeclared function %q", ErrCompile, x.Name)
	}
	if want := c.arity[x.Name]; len(x.Args) != want {
		return fmt.Errorf("%w: %q called with %d args, takes %d", ErrCompile, x.Name, len(x.Args), want)
	}
	c.emit(Instr{Op: OpCall, A: int64(idx), B: int32(c.ids.calls[x])})
	return nil
}

// assign emits an assignment, leaving the assigned value on the stack.
func (c *compiler) assign(x *AssignExpr) error {
	value := x.Value
	if x.Op != "" {
		value = &BinaryExpr{Op: x.Op, L: x.Target, R: x.Value}
	}
	switch target := x.Target.(type) {
	case *VarExpr:
		if err := c.expr(value); err != nil {
			return err
		}
		c.emit(Instr{Op: OpDup})
		if slot, ok := c.resolveLocal(target.Name); ok {
			c.emit(Instr{Op: OpStoreL, A: int64(slot)})
			return nil
		}
		if g, ok := c.globals[target.Name]; ok && !g.isArray {
			c.emit(Instr{Op: OpStoreG, A: int64(g.slot)})
			return nil
		}
		return fmt.Errorf("%w: undeclared variable %q", ErrCompile, target.Name)
	case *IndexExpr:
		g, ok := c.globals[target.Name]
		if !ok || !g.isArray {
			return fmt.Errorf("%w: %q is not an array", ErrCompile, target.Name)
		}
		if err := c.expr(value); err != nil {
			return err
		}
		c.emit(Instr{Op: OpDup})
		if err := c.expr(target.Idx); err != nil {
			return err
		}
		c.emit(Instr{Op: OpAStore, A: int64(g.slot)})
		return nil
	default:
		return fmt.Errorf("%w: bad assignment target %T", ErrCompile, x.Target)
	}
}
