package cc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/perf"
)

// mustRun compiles and executes src at the given level.
func mustRun(t *testing.T, src string, level OptLevel) RunResult {
	t.Helper()
	unit, err := CompileSource(src, level, nil, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Run(unit, VMOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int x = 42; // comment\n/* block */ x <<= 2;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := []string{"int", "x", "=", "42", ";", "x", "<<=", "2", ";"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("int x = $;"); !errors.Is(err, ErrLex) {
		t.Errorf("err = %v, want ErrLex", err)
	}
	if _, err := Lex("/* unterminated"); !errors.Is(err, ErrLex) {
		t.Errorf("err = %v, want ErrLex", err)
	}
}

func TestArithmetic(t *testing.T) {
	res := mustRun(t, `
int main() { return 2 + 3 * 4 - 10 / 2; }
`, O0)
	if res.Return != 9 {
		t.Errorf("return = %d, want 9", res.Return)
	}
}

func TestPrecedenceAndParens(t *testing.T) {
	res := mustRun(t, `
int main() { return (2 + 3) * 4 % 7 == 6 && 1 < 2; }
`, O0)
	if res.Return != 1 {
		t.Errorf("return = %d, want 1", res.Return)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	res := mustRun(t, `
int g = 5;
int arr[10];
int main() {
  arr[3] = g * 2;
  arr[4] = arr[3] + 1;
  g = arr[4];
  return g;
}
`, O0)
	if res.Return != 11 {
		t.Errorf("return = %d, want 11", res.Return)
	}
}

func TestControlFlow(t *testing.T) {
	res := mustRun(t, `
int main() {
  int sum = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 2 == 0) { sum += i; } else { sum -= 1; }
  }
  int j = 0;
  while (j < 3) { sum = sum + 100; j++; }
  return sum;
}
`, O0)
	// evens 0+2+4+6+8=20, minus 5 odds, plus 300.
	if res.Return != 315 {
		t.Errorf("return = %d, want 315", res.Return)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := mustRun(t, `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }
`, O0)
	if res.Return != 610 {
		t.Errorf("fib(15) = %d, want 610", res.Return)
	}
}

func TestShortCircuit(t *testing.T) {
	res := mustRun(t, `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  return g * 10 + a + b;
}
`, O0)
	// Neither bump should run: g=0, a=0, b=1.
	if res.Return != 1 {
		t.Errorf("return = %d, want 1", res.Return)
	}
}

func TestPrintOutput(t *testing.T) {
	r1 := mustRun(t, `int main() { print(1); print(2); return 0; }`, O0)
	r2 := mustRun(t, `int main() { print(2); print(1); return 0; }`, O0)
	if r1.Printed != 2 || r2.Printed != 2 {
		t.Fatalf("printed = %d/%d", r1.Printed, r2.Printed)
	}
	if r1.Output == r2.Output {
		t.Error("output checksum should be order sensitive")
	}
}

func TestOptimizationLevelsAgree(t *testing.T) {
	src := `
int acc = 0;
int sq(int x) { return x * x; }
int cube(int x) { return x * sq(x); }
int main() {
  for (int i = 1; i <= 20; i++) {
    if (i % 3 == 0) { acc += cube(i); } else { acc += sq(i) + 0; }
    acc = acc * 1;
  }
  if (0) { acc = 12345; }
  print(acc);
  return acc % 100000;
}
`
	var want int64
	var wantOut uint64
	for i, level := range []OptLevel{O0, O1, O2, O3} {
		res := mustRun(t, src, level)
		if i == 0 {
			want = res.Return
			wantOut = res.Output
			continue
		}
		if res.Return != want || res.Output != wantOut {
			t.Errorf("%v: return=%d output=%x, want %d/%x", level, res.Return, res.Output, want, wantOut)
		}
	}
}

func TestOptimizationReducesSteps(t *testing.T) {
	src := `
int sq(int x) { return x * x; }
int main() {
  int s = 0;
  for (int i = 0; i < 1000; i++) { s += sq(i) + 0 * i; }
  return s % 1000;
}
`
	steps := func(level OptLevel) uint64 {
		unit, err := CompileSource(src, level, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(unit, VMOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps
	}
	if s0, s3 := steps(O0), steps(O3); s3 >= s0 {
		t.Errorf("-O3 steps (%d) should be below -O0 (%d)", s3, s0)
	}
}

func TestConstantFolding(t *testing.T) {
	e := foldExpr(&BinaryExpr{Op: "+", L: &NumExpr{V: 2}, R: &BinaryExpr{Op: "*", L: &NumExpr{V: 3}, R: &NumExpr{V: 4}}})
	n, ok := e.(*NumExpr)
	if !ok || n.V != 14 {
		t.Errorf("folded to %#v, want 14", e)
	}
	// x*1 → x
	x := &VarExpr{Name: "x"}
	if got := foldExpr(&BinaryExpr{Op: "*", L: x, R: &NumExpr{V: 1}}); got != Expr(x) {
		t.Errorf("x*1 folded to %#v", got)
	}
	// Division by zero must not fold.
	dz := foldExpr(&BinaryExpr{Op: "/", L: &NumExpr{V: 1}, R: &NumExpr{V: 0}})
	if _, isNum := dz.(*NumExpr); isNum {
		t.Error("1/0 must not fold to a constant")
	}
}

func TestRuntimeErrors(t *testing.T) {
	unit, err := CompileSource(`int a[4]; int main() { return a[9]; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{}); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want ErrOutOfBounds", err)
	}
	unit, err = CompileSource(`int z = 0; int main() { return 5 / z; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{}); !errors.Is(err, ErrDivByZero) {
		t.Errorf("err = %v, want ErrDivByZero", err)
	}
	unit, err = CompileSource(`int main() { while (1) { } return 0; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{StepLimit: 1000}); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`int main() { return x; }`,            // undeclared variable
		`int main() { return f(1); }`,         // undeclared function
		`int a; int a; int main(){return 0;}`, // duplicate global
		`int f(){return 0;} int f(){return 1;} int main(){return 0;}`,
		`int a[3]; int main() { return a; }`, // array used as scalar
		`int main() { print(1, 2); return 0; }`,
	}
	for _, src := range bad {
		if _, err := CompileSource(src, O0, nil, nil); err == nil {
			t.Errorf("compile of %q should fail", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int main() {`,
		`int main() { 3 = x; }`,
		`int main() { return ; ; }`,
		`void v;`,
		`int a[0];`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse of %q should fail", src)
		}
	}
}

func TestPreprocess(t *testing.T) {
	src := `#define N 10
#define FLAG
#ifdef FLAG
int x = N;
#else
int x = 1;
#endif
#ifndef MISSING
int y = N;
#endif
#include "other.h"
`
	out, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int x = 10;") {
		t.Errorf("macro expansion failed: %q", out)
	}
	if strings.Contains(out, "int x = 1;") {
		t.Errorf("dead branch leaked: %q", out)
	}
	if !strings.Contains(out, "int y = 10;") {
		t.Errorf("ifndef failed: %q", out)
	}
	if strings.Contains(out, "include") {
		t.Errorf("#include not stripped: %q", out)
	}
}

func TestPreprocessErrors(t *testing.T) {
	for _, src := range []string{"#endif\n", "#else\n", "#ifdef X\n", "#define\n"} {
		if _, err := Preprocess(src); !errors.Is(err, ErrPreprocess) {
			t.Errorf("Preprocess(%q) err = %v, want ErrPreprocess", src, err)
		}
	}
}

func TestProfileCollection(t *testing.T) {
	src := `
int main() {
  int hot = 0;
  for (int i = 0; i < 100; i++) {
    if (i % 10 == 0) { hot += 1; }
  }
  return hot;
}
`
	unit, err := CompileSource(src, O1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	profile := NewProfile()
	res, err := Run(unit, VMOptions{Collect: profile})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 10 {
		t.Fatalf("return = %d", res.Return)
	}
	if len(profile.Branches) == 0 {
		t.Fatal("no branch counts collected")
	}
	total := uint64(0)
	for _, bc := range profile.Branches {
		total += bc.Total
	}
	if total < 100 {
		t.Errorf("branch events = %d, want ≥ 100", total)
	}
}

func TestFDOLayoutPreservesSemantics(t *testing.T) {
	src := `
int classify(int x) {
  if (x % 7 == 0) { return 1; } else { return 0; }
}
int main() {
  int n = 0;
  for (int i = 0; i < 500; i++) { n += classify(i); }
  return n;
}
`
	unit, err := CompileSource(src, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(unit, VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	profile := NewProfile()
	if _, err := Run(unit, VMOptions{Collect: profile}); err != nil {
		t.Fatal(err)
	}
	fdoUnit, err := CompileSource(src, O2, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	fdo, err := Run(fdoUnit, VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fdo.Return != base.Return {
		t.Errorf("FDO changed semantics: %d vs %d", fdo.Return, base.Return)
	}
}

func TestProfileMerge(t *testing.T) {
	a := NewProfile()
	a.Branches[1] = &BranchCount{Taken: 3, Total: 10}
	a.CallSites[2] = 5
	b := NewProfile()
	b.Branches[1] = &BranchCount{Taken: 1, Total: 4}
	b.Branches[9] = &BranchCount{Taken: 2, Total: 2}
	b.CallSites[2] = 7
	a.Merge(b)
	if a.Branches[1].Taken != 4 || a.Branches[1].Total != 14 {
		t.Errorf("merged branch = %+v", a.Branches[1])
	}
	if a.Branches[9].Total != 2 || a.CallSites[2] != 12 {
		t.Error("merge missed entries")
	}
}

func TestUnitChecksumStability(t *testing.T) {
	src := `int main() { return 42; }`
	u1, err := CompileSource(src, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := CompileSource(src, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u1.Checksum() != u2.Checksum() {
		t.Error("checksum unstable")
	}
	u3, err := CompileSource(`int main() { return 43; }`, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u3.Checksum() == u1.Checksum() {
		t.Error("checksum insensitive to code changes")
	}
}

func TestCompilerProfiled(t *testing.T) {
	p := perf.New()
	src := `
int sq(int x) { return x * x; }
int main() { int s = 0; for (int i = 0; i < 5; i++) { s += sq(i); } return s; }
`
	if _, err := CompileSource(src, O3, nil, p); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	for _, m := range []string{"preprocess", "parse", "codegen"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from compile coverage", m)
		}
	}
}

func TestVMProfiled(t *testing.T) {
	unit, err := CompileSource(`
int work(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }
int main() { return work(200) % 97; }
`, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	if _, err := Run(unit, VMOptions{Prof: p}); err != nil {
		t.Fatal(err)
	}
	rep := p.Report()
	if rep.Coverage["vm:work"] == 0 || rep.Coverage["vm:main"] == 0 {
		t.Errorf("vm coverage missing: %v", rep.Coverage)
	}
}

func TestOptLevelString(t *testing.T) {
	if O2.String() != "-O2" || OptLevel(9).String() == "" {
		t.Error("OptLevel.String misbehaves")
	}
}
