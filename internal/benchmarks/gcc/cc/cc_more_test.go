package cc

import (
	"errors"
	"strings"
	"testing"
)

func TestCompoundAssignmentOperators(t *testing.T) {
	res := mustRun(t, `
int main() {
  int x = 100;
  x += 5;
  x -= 3;
  x *= 2;
  x /= 4;
  x %= 40;
  x <<= 2;
  x >>= 1;
  x &= 127;
  x |= 64;
  x ^= 8;
  return x;
}
`, O0)
	// 100+5-3=102, *2=204, /4=51, %40=11, <<2=44, >>1=22, &127=22,
	// |64=86, ^8=94.
	if res.Return != 94 {
		t.Errorf("return = %d, want 94", res.Return)
	}
}

func TestUnaryOperators(t *testing.T) {
	res := mustRun(t, `
int main() {
  int a = -5;
  int b = !0;
  int c = !7;
  int d = ~0;
  return a * 100 + b * 10 + c + d;
}
`, O0)
	if res.Return != -491 {
		t.Errorf("return = %d, want -491", res.Return)
	}
}

func TestScopeShadowing(t *testing.T) {
	res := mustRun(t, `
int x = 1;
int main() {
  int r = x;
  {
    int x = 2;
    r = r * 10 + x;
    {
      int x = 3;
      r = r * 10 + x;
    }
    r = r * 10 + x;
  }
  r = r * 10 + x;
  return r;
}
`, O0)
	if res.Return != 12321 {
		t.Errorf("return = %d, want 12321", res.Return)
	}
}

func TestForLoopVariants(t *testing.T) {
	res := mustRun(t, `
int main() {
  int s = 0;
  int i = 0;
  for (i = 2; i < 5; i++) { s += i; }
  for (; i < 8;) { s += 100; i++; }
  for (int j = 0; j < 2; j = j + 1) { s += 1000; }
  return s;
}
`, O0)
	// 2+3+4 + 300 + 2000 = 2309.
	if res.Return != 2309 {
		t.Errorf("return = %d, want 2309", res.Return)
	}
}

func TestGlobalDeclList(t *testing.T) {
	res := mustRun(t, `
int a, b = 3, c[4];
int main() {
  c[1] = a + b;
  return c[1];
}
`, O0)
	if res.Return != 3 {
		t.Errorf("return = %d, want 3", res.Return)
	}
}

func TestVoidFunction(t *testing.T) {
	res := mustRun(t, `
int g = 0;
void bump(int n) { g = g + n; return; }
int main() {
  bump(4);
  bump(5);
	return g;
}
`, O0)
	if res.Return != 9 {
		t.Errorf("return = %d, want 9", res.Return)
	}
}

func TestStaticKeywordAccepted(t *testing.T) {
	res := mustRun(t, `
static int hidden = 7;
static int get() { return hidden; }
int main() { return get(); }
`, O0)
	if res.Return != 7 {
		t.Errorf("return = %d, want 7", res.Return)
	}
}

func TestDeepRecursionOverflows(t *testing.T) {
	unit, err := CompileSource(`
int down(int n) { return down(n + 1); }
int main() { return down(0); }
`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{}); !errors.Is(err, ErrStackOverflow) {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestNoMain(t *testing.T) {
	unit, err := CompileSource(`int f() { return 1; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{}); !errors.Is(err, ErrNoMain) {
		t.Errorf("err = %v, want ErrNoMain", err)
	}
}

func TestMainWithParamsRejected(t *testing.T) {
	unit, err := CompileSource(`int main(int argc) { return argc; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{}); err == nil {
		t.Error("main with parameters should be rejected at run time")
	}
}

func TestGlobalOverrideUnknownName(t *testing.T) {
	unit, err := CompileSource(`int main() { return 0; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(unit, VMOptions{Globals: map[string]int64{"nope": 1}}); err == nil {
		t.Error("unknown global override should fail")
	}
}

func TestGlobalOverrideChangesBehaviour(t *testing.T) {
	unit, err := CompileSource(`int n = 1; int main() { return n * 3; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(unit, VMOptions{Globals: map[string]int64{"n": 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 27 {
		t.Errorf("return = %d, want 27", res.Return)
	}
}

func TestPreprocessUndefAndNesting(t *testing.T) {
	src := `#define A
#ifdef A
#define B 2
#undef A
#endif
#ifdef A
int wrong = 1;
#else
int right = B;
#endif
#ifndef C
#ifdef B
int nested = B;
#endif
#endif
`
	out, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "wrong") {
		t.Errorf("undef failed: %q", out)
	}
	if !strings.Contains(out, "int right = 2;") || !strings.Contains(out, "int nested = 2;") {
		t.Errorf("nesting failed: %q", out)
	}
}

func TestPreprocessInactiveBranchSkipsDefines(t *testing.T) {
	src := `#ifdef MISSING
#define X 1
#endif
#ifdef X
int leaked = X;
#endif
int ok = 0;
`
	out, err := Preprocess(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "leaked") {
		t.Errorf("define inside inactive branch leaked: %q", out)
	}
}

func TestNestedLogicalShortCircuit(t *testing.T) {
	res := mustRun(t, `
int calls = 0;
int tick(int v) { calls = calls + 1; return v; }
int main() {
  int a = tick(1) && tick(0) && tick(1);
  int b = tick(0) || tick(1) || tick(1);
  return calls * 10 + a + b;
}
`, O0)
	// a: tick(1), tick(0) run (2 calls), third skipped → a=0.
	// b: tick(0), tick(1) run (2 calls), third skipped → b=1.
	if res.Return != 41 {
		t.Errorf("return = %d, want 41", res.Return)
	}
}

func TestFDOInliningStats(t *testing.T) {
	src := `
int helper(int x) { return ((x * 3 + 1) ^ (x >> 2)) % 997; }
int main() {
  int s = 0;
  for (int i = 0; i < 3000; i++) { s += helper(i); }
  print(s);
  return s % 251;
}
`
	// Static O2: helper is too big to inline.
	base, err := CompileSource(src, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Inlined != 0 {
		t.Errorf("static O2 inlined %d, want 0", base.Inlined)
	}
	// Collect a profile and recompile: the hot call site gets inlined.
	profile := NewProfile()
	if _, err := Run(base, VMOptions{Collect: profile}); err != nil {
		t.Fatal(err)
	}
	fdoUnit, err := CompileSource(src, O2, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fdoUnit.Inlined == 0 {
		t.Error("FDO compile should inline the hot helper")
	}
	// Semantics unchanged.
	r1, err := Run(base, VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(fdoUnit, VMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Return != r2.Return || r1.Output != r2.Output {
		t.Error("FDO inlining changed semantics")
	}
	if r2.Steps >= r1.Steps {
		t.Errorf("FDO steps %d should be below base %d", r2.Steps, r1.Steps)
	}
}
