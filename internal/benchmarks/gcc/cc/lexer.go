// Package cc is a miniature C-like compiler: preprocessor, lexer, parser,
// AST optimizer, bytecode generator and stack virtual machine. It plays two
// roles in the reproduction: it is the program under study for 502.gcc_r
// (whose workloads are single preprocessed compilation units), and it is the
// substrate for the Feedback-Directed Optimization study (profile-guided
// inlining and branch layout with edge profiles collected by the VM).
//
// The language: int-typed variables, one-dimensional int arrays, functions,
// if/else, while, for, return, and the usual C operator set, plus a print()
// builtin whose output stream is the program's checksummed result.
package cc

import (
	"errors"
	"fmt"
	"strings"
)

// TokenKind classifies tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokPunct   // operators and punctuation
	TokKeyword // int, if, else, while, for, return, void
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset, for error messages
	Line int
}

// keywords of the mini language.
var keywords = map[string]bool{
	"int": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "void": true, "static": true,
}

// ErrLex reports a lexing failure.
var ErrLex = errors.New("cc: lex error")

// punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
}

// Lex tokenizes src (after preprocessing).
func Lex(src string) ([]Token, error) {
	var toks []Token
	pos := 0
	line := 1
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == '\n':
			line++
			pos++
		case c == ' ' || c == '\t' || c == '\r':
			pos++
		case strings.HasPrefix(src[pos:], "//"):
			for pos < len(src) && src[pos] != '\n' {
				pos++
			}
		case strings.HasPrefix(src[pos:], "/*"):
			end := strings.Index(src[pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("%w: unterminated comment at line %d", ErrLex, line)
			}
			line += strings.Count(src[pos:pos+2+end+2], "\n")
			pos += 2 + end + 2
		case c >= '0' && c <= '9':
			start := pos
			for pos < len(src) && (src[pos] >= '0' && src[pos] <= '9' || src[pos] == 'x' ||
				(src[pos] >= 'a' && src[pos] <= 'f') || (src[pos] >= 'A' && src[pos] <= 'F')) {
				pos++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[start:pos], Pos: start, Line: line})
		case isIdentStart(c):
			start := pos
			for pos < len(src) && isIdentChar(src[pos]) {
				pos++
			}
			text := src[start:pos]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Pos: start, Line: line})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[pos:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Pos: pos, Line: line})
					pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("%w: unexpected byte %q at line %d", ErrLex, c, line)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: pos, Line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
