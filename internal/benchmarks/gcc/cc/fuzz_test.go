package cc

import (
	"math/rand"
	"testing"
)

// TestCompileSourceNeverPanics feeds token soup to the full pipeline: every
// input must produce a value or an error, never a panic.
func TestCompileSourceNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tokens := []string{
		"int", "void", "return", "if", "else", "while", "for", "static",
		"main", "x", "f", "(", ")", "{", "}", "[", "]", ";", ",", "=",
		"+", "-", "*", "/", "%", "<", ">", "==", "&&", "||", "42", "0",
		"#define A 1\n", "#ifdef A\n", "#endif\n",
	}
	for trial := 0; trial < 3000; trial++ {
		src := ""
		for k := 0; k < rng.Intn(24); k++ {
			src += tokens[rng.Intn(len(tokens))] + " "
		}
		unit, err := CompileSource(src, OptLevel(rng.Intn(4)), nil, nil)
		if err == nil && unit != nil {
			// Compiled token soup must also execute safely (bounded).
			_, _ = Run(unit, VMOptions{StepLimit: 10000})
		}
	}
}
