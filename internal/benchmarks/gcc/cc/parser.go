package cc

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrParse reports a syntax error.
var ErrParse = errors.New("cc: parse error")

// parser consumes the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse builds the AST of a preprocessed compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	return Token{}, fmt.Errorf("%w: line %d: expected %q, got %q", ErrParse, t.Line, text, t.Text)
}

func (p *parser) errHere(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrParse, p.cur().Line, fmt.Sprintf(format, args...))
}

// parseTopLevel parses one global declaration or function definition.
func (p *parser) parseTopLevel(prog *Program) error {
	static := p.accept(TokKeyword, "static")
	isVoid := false
	if p.accept(TokKeyword, "void") {
		isVoid = true
	} else if !p.accept(TokKeyword, "int") {
		return p.errHere("expected type, got %q", p.cur().Text)
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	// Function definition?
	if p.accept(TokPunct, "(") {
		fn := &Func{Name: name.Text, Static: static}
		if !p.accept(TokPunct, ")") {
			for {
				if p.accept(TokKeyword, "void") && p.at(TokPunct, ")") {
					break
				}
				if _, err := p.expect(TokKeyword, "int"); err != nil {
					return err
				}
				param, err := p.expect(TokIdent, "")
				if err != nil {
					return err
				}
				fn.Params = append(fn.Params, param.Text)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return err
			}
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		fn.Body = body
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	if isVoid {
		return p.errHere("void variable %q", name.Text)
	}
	// Global variable(s): int a, b = 3, c[10];
	for {
		g := &GlobalVar{Name: name.Text, Static: static}
		if p.accept(TokPunct, "[") {
			size, err := p.expect(TokNumber, "")
			if err != nil {
				return err
			}
			n, err := strconv.ParseInt(size.Text, 0, 64)
			if err != nil || n <= 0 {
				return p.errHere("bad array size %q", size.Text)
			}
			g.ArraySize = int(n)
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return err
			}
		} else if p.accept(TokPunct, "=") {
			v, err := p.expect(TokNumber, "")
			if err != nil {
				return err
			}
			n, err := strconv.ParseInt(v.Text, 0, 64)
			if err != nil {
				return p.errHere("bad initializer %q", v.Text)
			}
			g.Init = n
		}
		prog.Globals = append(prog.Globals, g)
		if !p.accept(TokPunct, ",") {
			break
		}
		name, err = p.expect(TokIdent, "")
		if err != nil {
			return err
		}
	}
	_, err = p.expect(TokPunct, ";")
	return err
}

func (p *parser) parseBlock() (*Block, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, p.errHere("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(TokPunct, "{"):
		return p.parseBlock()
	case p.accept(TokKeyword, "int"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(TokPunct, "=") {
			init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &DeclStmt{Name: name.Text, Init: init}, nil
	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokKeyword, "else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.accept(TokKeyword, "for"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var init, post Stmt
		var cond Expr
		var err error
		if !p.accept(TokPunct, ";") {
			if p.at(TokKeyword, "int") {
				init, err = p.parseStmt() // consumes the ';'
				if err != nil {
					return nil, err
				}
			} else {
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{X: x}
				if _, err := p.expect(TokPunct, ";"); err != nil {
					return nil, err
				}
			}
		}
		if !p.accept(TokPunct, ";") {
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
		if !p.at(TokPunct, ")") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			post = &ExprStmt{X: x}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil
	case p.accept(TokKeyword, "return"):
		var x Expr
		var err error
		if !p.at(TokPunct, ";") {
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, nil
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, nil
	}
}

// Operator precedence (binding powers), C-like.
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

// compound assignment operators mapped to their binary op.
var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		if t.Text == "=" {
			p.pos++
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			if err := checkLValue(lhs); err != nil {
				return nil, err
			}
			return &AssignExpr{Target: lhs, Value: rhs}, nil
		}
		if op, ok := compoundOps[t.Text]; ok {
			p.pos++
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			if err := checkLValue(lhs); err != nil {
				return nil, err
			}
			return &AssignExpr{Target: lhs, Op: op, Value: rhs}, nil
		}
	}
	return lhs, nil
}

func checkLValue(e Expr) error {
	switch e.(type) {
	case *VarExpr, *IndexExpr:
		return nil
	default:
		return fmt.Errorf("%w: assignment to non-lvalue", ErrParse)
	}
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec <= minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct && (t.Text == "-" || t.Text == "!" || t.Text == "~") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// Postfix ++/-- desugar to compound assignment (value semantics of
	// the postfix result are not needed at statement level, the only
	// position the generators use them in).
	if p.at(TokPunct, "++") || p.at(TokPunct, "--") {
		op := "+"
		if p.cur().Text == "--" {
			op = "-"
		}
		p.pos++
		if err := checkLValue(x); err != nil {
			return nil, err
		}
		return &AssignExpr{Target: x, Op: op, Value: &NumExpr{V: 1}}, nil
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad number %q", ErrParse, t.Line, t.Text)
		}
		return &NumExpr{V: v}, nil
	case t.Kind == TokIdent:
		p.pos++
		name := t.Text
		if p.accept(TokPunct, "(") {
			call := &CallExpr{Name: name}
			if !p.accept(TokPunct, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		if p.accept(TokPunct, "[") {
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name, Idx: idx}, nil
		}
		return &VarExpr{Name: name}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.pos++
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("%w: line %d: unexpected %q", ErrParse, t.Line, t.Text)
	}
}
