package cc

import (
	"reflect"
	"testing"

	"repro/internal/perf"
)

const scratchTestSrc = `
int g = 3;
int acc = 0;
int arr[16];
int weigh(int x) { return x * g + 1; }
int main() {
  for (int i = 0; i < 12; i++) {
    arr[i % 16] = weigh(i) % 251;
    if (arr[i % 16] % 2 == 0) { acc += arr[i % 16]; } else { acc -= 1; }
  }
  print(acc);
  return acc % 97;
}
`

// TestScratchReuseBitIdentical runs one unit repeatedly on a single Scratch
// and requires every run — result, steps, and the full modeled event
// stream — to match a fresh-buffer run exactly. This is the scratch-reset
// contract the gcc benchmark's prepared workloads rely on.
func TestScratchReuseBitIdentical(t *testing.T) {
	unit, err := CompileSource(scratchTestSrc, O2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sc *Scratch) (RunResult, perf.Report) {
		p := perf.NewWithOptions(perf.Options{Stride: 1})
		res, err := Run(unit, VMOptions{Prof: p, Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		rep := p.Report()
		rep.WallTime = 0
		rep.Methods = append([]perf.MethodProfile(nil), rep.Methods...)
		return res, rep
	}
	wantRes, wantRep := run(nil)
	sc := &Scratch{}
	for i := 0; i < 4; i++ {
		res, rep := run(sc)
		if res != wantRes {
			t.Errorf("run %d with scratch: result %+v, want %+v", i, res, wantRes)
		}
		if !reflect.DeepEqual(rep, wantRep) {
			t.Errorf("run %d with scratch: report diverges from fresh run", i)
		}
	}
}

// TestScratchGlobalsOverrideIsolated ensures a global override in one run
// does not leak into the next run on the same scratch.
func TestScratchGlobalsOverrideIsolated(t *testing.T) {
	unit, err := CompileSource(`int n = 2; int main() { return n * 10; }`, O0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	res, err := Run(unit, VMOptions{Globals: map[string]int64{"n": 7}, Scratch: sc})
	if err != nil || res.Return != 70 {
		t.Fatalf("override run: %v, %v", res.Return, err)
	}
	res, err = Run(unit, VMOptions{Scratch: sc})
	if err != nil || res.Return != 20 {
		t.Fatalf("follow-up run saw stale global: %v, %v", res.Return, err)
	}
}

// TestFoldShortCircuitConstants pins the logical-operator folds: a constant
// left operand decides the expression through the short-circuit rules, and
// only then — a constant RIGHT operand must never drop the left side.
func TestFoldShortCircuitConstants(t *testing.T) {
	call := func() Expr { return &CallExpr{Name: "f"} }
	num := func(v int64) Expr { return &NumExpr{V: v} }
	isConst := func(e Expr, want int64) bool {
		n, ok := e.(*NumExpr)
		return ok && n.V == want
	}

	// 0 && f() → 0 and 1 || f() → 1 even though f has side effects: the
	// right side never evaluates at run time either.
	if e := foldExpr(&BinaryExpr{Op: "&&", L: num(0), R: call()}); !isConst(e, 0) {
		t.Errorf("0 && f() folded to %#v, want 0", e)
	}
	if e := foldExpr(&BinaryExpr{Op: "||", L: num(1), R: call()}); !isConst(e, 1) {
		t.Errorf("1 || f() folded to %#v, want 1", e)
	}
	// Both-const logicals normalize to 0/1.
	if e := foldExpr(&BinaryExpr{Op: "&&", L: num(5), R: num(-2)}); !isConst(e, 1) {
		t.Errorf("5 && -2 folded to %#v, want 1", e)
	}
	if e := foldExpr(&BinaryExpr{Op: "||", L: num(0), R: num(0)}); !isConst(e, 0) {
		t.Errorf("0 || 0 folded to %#v, want 0", e)
	}
	// A truthy left of && (or falsy left of ||) decides nothing: the right
	// side is the value and must survive.
	if e := foldExpr(&BinaryExpr{Op: "&&", L: num(1), R: call()}); isConst(e, 0) || isConst(e, 1) {
		t.Errorf("1 && f() must not fold, got %#v", e)
	}
	// A constant right operand must never drop a side-effecting left.
	if e := foldExpr(&BinaryExpr{Op: "&&", L: call(), R: num(0)}); isConst(e, 0) {
		t.Errorf("f() && 0 must not fold, got %#v", e)
	}
	// x * 0 → 0 only for side-effect-free x.
	if e := foldExpr(&BinaryExpr{Op: "*", L: &VarExpr{Name: "x"}, R: num(0)}); !isConst(e, 0) {
		t.Errorf("x * 0 folded to %#v, want 0", e)
	}
	if e := foldExpr(&BinaryExpr{Op: "*", L: num(0), R: &VarExpr{Name: "x"}}); !isConst(e, 0) {
		t.Errorf("0 * x folded to %#v, want 0", e)
	}
	if e := foldExpr(&BinaryExpr{Op: "*", L: call(), R: num(0)}); isConst(e, 0) {
		t.Errorf("f() * 0 must not fold, got %#v", e)
	}
}

// TestShortCircuitFoldsPreserveSemantics runs a side-effect-laden program
// at every level and requires identical results — the end-to-end guard for
// the new folds.
func TestShortCircuitFoldsPreserveSemantics(t *testing.T) {
	src := `
int g = 0;
int bump() { g = g + 1; return 3; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  int c = bump() && 1;
  int d = bump() * 0;
  int e = 7 && 0 || 2;
  return g * 1000 + a * 100 + b * 10 + c + d + e;
}
`
	var want int64
	for i, level := range []OptLevel{O0, O1, O2, O3} {
		res := mustRun(t, src, level)
		if i == 0 {
			want = res.Return
			continue
		}
		if res.Return != want {
			t.Errorf("%v: return = %d, want %d", level, res.Return, want)
		}
	}
}

// BenchmarkVMRun measures the uninstrumented dispatch loop on a
// call-and-loop-heavy unit, with and without a recycled scratch.
func BenchmarkVMRun(b *testing.B) {
	unit, err := CompileSource(`
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int arr[64];
int main() {
  int s = 0;
  for (int i = 0; i < 40; i++) {
    arr[i % 64] = fib(14) + i;
    s += arr[i % 64] % 1009;
  }
  return s;
}
`, O2, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(unit, VMOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		sc := &Scratch{}
		for i := 0; i < b.N; i++ {
			if _, err := Run(unit, VMOptions{Scratch: sc}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
