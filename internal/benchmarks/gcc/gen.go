// Package gcc reproduces 502.gcc_r: the benchmark compiles single-file
// preprocessed C programs. Workloads are mini-C compilation units produced
// by a deterministic program generator (substituting for the "large
// single-compilation-unit C programs" the Alberta set downloads) and by the
// OneFile tool, which merges multi-file programs into one unit
// (internal/onefile), as the paper describes for mcf, lbm and johnripper.
package gcc

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenParams shape a generated program.
type GenParams struct {
	// Functions is the number of helper functions.
	Functions int
	// LoopDepth caps loop nesting in each function body.
	LoopDepth int
	// ExprDepth caps expression tree depth.
	ExprDepth int
	// Arrays is the number of global arrays.
	Arrays int
	// FixedArity, when positive, forces every helper to take exactly
	// this many parameters (used by the multi-file generator so module
	// entry points can call helpers without parsing their signatures).
	FixedArity int
	// MaxIters, when positive, clamps main's ITERS constant. The sweep
	// generator sets it from the program shape so validation work stays
	// bounded for every (seed, index) — an unlucky deep-loop × many-
	// function draw cannot exceed the VM step limit. Zero leaves the
	// drawn value untouched (and the emitted program byte-identical to
	// pre-MaxIters output: the clamp consumes no RNG draws).
	MaxIters int
	// Seed drives all choices.
	Seed int64
}

// generator emits a deterministic, terminating mini-C program.
type generator struct {
	rng     *rand.Rand
	p       GenParams
	sb      strings.Builder
	scalars []string
	arrays  []string
	arrLen  []int
	funcs   []string // generated helper names with arities
	arity   map[string]int
	// allowCalls permits function calls in expressions; enabled only in
	// main so helper-in-helper call chains cannot blow up run time.
	allowCalls bool
	locals     []string
	indent     int
}

// GenerateProgram emits a compilable, terminating mini-C source file.
func GenerateProgram(p GenParams) string {
	g := &generator{rng: rand.New(rand.NewSource(p.Seed)), p: p, arity: map[string]int{}}
	// Preprocessor header exercises the preprocess stage.
	iters := 8 + g.rng.Intn(24)
	if p.MaxIters > 0 && iters > p.MaxIters {
		iters = p.MaxIters
	}
	g.line("#define ITERS %d", iters)
	g.line("#define SCALE %d", 1+g.rng.Intn(5))
	g.line("#ifdef UNUSED_FLAG")
	g.line("int never_used;")
	g.line("#endif")
	// Globals.
	nScalars := 2 + g.rng.Intn(4)
	for i := 0; i < nScalars; i++ {
		name := fmt.Sprintf("g%d", i)
		g.scalars = append(g.scalars, name)
		g.line("int %s = %d;", name, g.rng.Intn(100))
	}
	for i := 0; i < p.Arrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		size := 16 + g.rng.Intn(112)
		g.arrays = append(g.arrays, name)
		g.arrLen = append(g.arrLen, size)
		g.line("int %s[%d];", name, size)
	}
	// Helper functions.
	for i := 0; i < p.Functions; i++ {
		g.genFunction(i)
	}
	g.genMain()
	return g.sb.String()
}

func (g *generator) line(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// genFunction emits helper i; about half are tiny single-return functions
// (inlining candidates), the rest have loops.
func (g *generator) genFunction(i int) {
	name := fmt.Sprintf("f%d", i)
	arity := 1 + g.rng.Intn(3)
	if g.p.FixedArity > 0 {
		arity = g.p.FixedArity
	}
	g.arity[name] = arity
	params := make([]string, arity)
	for j := range params {
		params[j] = fmt.Sprintf("int p%d", j)
	}
	g.line("int %s(%s) {", name, strings.Join(params, ", "))
	g.indent++
	g.locals = nil
	for j := 0; j < arity; j++ {
		g.locals = append(g.locals, fmt.Sprintf("p%d", j))
	}
	if g.rng.Intn(2) == 0 {
		// Single-return function: inlinable.
		g.line("return %s;", g.expr(min(g.p.ExprDepth, 3)))
	} else {
		g.line("int acc = %s;", g.expr(1))
		g.locals = append(g.locals, "acc")
		g.genLoop(g.p.LoopDepth, "acc")
		g.line("return acc;")
	}
	g.indent--
	g.line("}")
	// Only functions defined earlier are callable (no forward refs), so
	// register after emission.
	g.funcs = append(g.funcs, name)
}

// genLoop emits a bounded for loop accumulating into target.
func (g *generator) genLoop(depth int, target string) {
	iv := fmt.Sprintf("i%d", depth)
	bound := 4 + g.rng.Intn(28)
	g.line("for (int %s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
	g.indent++
	g.locals = append(g.locals, iv)
	defer func() { g.locals = g.locals[:len(g.locals)-1] }()
	// Body statements.
	for s := 0; s < 1+g.rng.Intn(3); s++ {
		switch g.rng.Intn(4) {
		case 0:
			g.line("%s += %s;", target, g.expr(g.p.ExprDepth))
		case 1:
			if len(g.arrays) > 0 {
				ai := g.rng.Intn(len(g.arrays))
				g.line("%s[%s %% %d] = %s;", g.arrays[ai], iv, g.arrLen[ai], g.expr(2))
			} else {
				g.line("%s -= %s;", target, g.expr(2))
			}
		case 2:
			g.line("if (%s %% %d == %d) { %s += %s; } else { %s -= 1; }",
				iv, 2+g.rng.Intn(5), g.rng.Intn(2), target, g.expr(2), target)
		case 3:
			if depth > 1 && g.rng.Intn(2) == 0 {
				g.genLoop(depth-1, target)
			} else {
				g.line("%s = %s ^ (%s >> 1);", target, target, target)
			}
		}
	}
	g.indent--
	g.line("}")
}

// expr emits an expression of bounded depth over in-scope names.
func (g *generator) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", 1+g.rng.Intn(50))
		case 1:
			if len(g.locals) > 0 {
				return g.locals[g.rng.Intn(len(g.locals))]
			}
			return "1"
		default:
			if len(g.scalars) > 0 {
				return g.scalars[g.rng.Intn(len(g.scalars))]
			}
			return "2"
		}
	}
	switch g.rng.Intn(6) {
	case 0, 1:
		ops := []string{"+", "-", "*", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
	case 2:
		// Division/modulo by a nonzero constant only.
		return fmt.Sprintf("(%s %% %d)", g.expr(depth-1), 2+g.rng.Intn(30))
	case 3:
		if len(g.arrays) > 0 {
			ai := g.rng.Intn(len(g.arrays))
			inner := g.expr(depth - 1)
			return fmt.Sprintf("%s[(%s) %% %d & %d]", g.arrays[ai], inner, g.arrLen[ai], g.arrLen[ai]-1)
		}
		return g.expr(depth - 1)
	case 4:
		if g.allowCalls && len(g.funcs) > 0 {
			name := g.funcs[g.rng.Intn(len(g.funcs))]
			args := make([]string, g.arity[name])
			for i := range args {
				args[i] = g.expr(1)
			}
			return fmt.Sprintf("%s(%s)", name, strings.Join(args, ", "))
		}
		return g.expr(depth - 1)
	default:
		return fmt.Sprintf("(%s < %s)", g.expr(depth-1), g.expr(depth-1))
	}
}

// genMain emits the driver.
func (g *generator) genMain() {
	g.line("int main() {")
	g.indent++
	g.allowCalls = true
	g.locals = nil
	g.line("int total = 0;")
	g.locals = append(g.locals, "total")
	g.line("for (int it = 0; it < ITERS; it++) {")
	g.indent++
	g.locals = append(g.locals, "it")
	for _, fn := range g.funcs {
		args := make([]string, g.arity[fn])
		for i := range args {
			args[i] = g.expr(1)
		}
		g.line("total += %s(%s);", fn, strings.Join(args, ", "))
	}
	g.line("total = total %% 1000000007;")
	g.indent--
	g.locals = g.locals[:1]
	g.line("}")
	g.line("print(total);")
	g.line("return total %% 251;")
	g.indent--
	g.line("}")
}
