package gcc

import (
	"fmt"
	"strings"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/core"
	"repro/internal/onefile"
	"repro/internal/perf"
)

// Workload is one 502.gcc_r input: a single preprocessed-ready compilation
// unit and the optimization level to compile it at (SPEC's gcc workloads
// likewise pair a source file with an option set).
type Workload struct {
	core.Meta
	Source string
	Level  cc.OptLevel
}

// GenerateMultiFile produces a multi-file mini-C program of the shape the
// OneFile tool was built for: several modules with colliding static helper
// names plus a main file. Deterministic in seed.
func GenerateMultiFile(modules int, seed int64) []onefile.SourceFile {
	if modules < 1 {
		modules = 1
	}
	var files []onefile.SourceFile
	var mainBody string
	for m := 0; m < modules; m++ {
		p := GenParams{Functions: 2, LoopDepth: 2, ExprDepth: 2, Arrays: 1, FixedArity: 1, Seed: seed + int64(m)*97}
		// Reuse the single-file generator, then strip its main and wrap
		// exported entry points.
		body := GenerateProgram(p)
		// Remove the generated main (everything from "int main" on).
		if i := strings.Index(body, "int main()"); i >= 0 {
			body = body[:i]
		}
		// The module exposes one entry point calling its local helpers;
		// every module also defines a static helper named "helper",
		// exercising the mangling path.
		entry := fmt.Sprintf("mod%d_run", m)
		body += fmt.Sprintf(`
static int helper(int x) { return x * %d + %d; }
int %s(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s += helper(i) + f0(i); }
  return s;
}
`, m+2, m, entry)
		files = append(files, onefile.SourceFile{
			Name:    fmt.Sprintf("mod%d.c", m),
			Content: renameModuleLocals(body, m),
		})
		mainBody += fmt.Sprintf("  total += %s(12);\n", entry)
	}
	files = append(files, onefile.SourceFile{
		Name: "main.c",
		Content: "int main() {\n  int total = 0;\n" + mainBody +
			"  print(total);\n  return total % 251;\n}\n",
	})
	return files
}

// renameModuleLocals prefixes the generator's default names so non-static
// definitions do not collide across modules (statics are OneFile's job).
func renameModuleLocals(src string, m int) string {
	// The generator emits g<i>, arr<i>, f<i>, ITERS, SCALE; prefix all
	// but keep "helper" static collisions intact on purpose.
	replacements := []struct{ from, to string }{
		{"ITERS", fmt.Sprintf("M%d_ITERS", m)},
		{"SCALE", fmt.Sprintf("M%d_SCALE", m)},
	}
	out := src
	for _, r := range replacements {
		out = replaceWord(out, r.from, r.to)
	}
	for i := 0; i < 8; i++ {
		out = replaceWord(out, fmt.Sprintf("g%d", i), fmt.Sprintf("m%d_g%d", m, i))
		out = replaceWord(out, fmt.Sprintf("arr%d", i), fmt.Sprintf("m%d_arr%d", m, i))
		if i > 0 {
			out = replaceWord(out, fmt.Sprintf("f%d", i), fmt.Sprintf("m%d_f%d", m, i))
		}
	}
	// f0 last so fN (N>0) renames don't clobber it; the module entry's
	// f0 reference is renamed consistently. The static "helper" names are
	// left colliding on purpose: mangling them is OneFile's job.
	out = replaceWord(out, "f0", fmt.Sprintf("m%d_f0", m))
	return out
}

// replaceWord substitutes whole-identifier occurrences.
func replaceWord(s, from, to string) string {
	var out []byte
	i := 0
	for i < len(s) {
		if i+len(from) <= len(s) && s[i:i+len(from)] == from {
			beforeOK := i == 0 || !isWordByte(s[i-1])
			afterOK := i+len(from) == len(s) || !isWordByte(s[i+len(from)])
			if beforeOK && afterOK {
				out = append(out, to...)
				i += len(from)
				continue
			}
		}
		out = append(out, s[i])
		i++
	}
	return string(out)
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// Benchmark is the 502.gcc_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "502.gcc_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Compiler" }

// Workloads returns SPEC-style inputs plus Alberta workloads: generated
// single-compilation-unit programs of several shapes, and OneFile-combined
// multi-file programs standing in for the paper's mcf/lbm/johnripper
// conversions.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mkGen := func(name string, kind core.Kind, p GenParams, level cc.OptLevel) core.Workload {
		return Workload{Meta: core.Meta{Name: name, Kind: kind}, Source: GenerateProgram(p), Level: level}
	}
	mkOneFile := func(name string, modules int, seed int64) (core.Workload, error) {
		combined, err := onefile.Combine(GenerateMultiFile(modules, seed))
		if err != nil {
			return nil, fmt.Errorf("gcc: building %s: %w", name, err)
		}
		return Workload{Meta: core.Meta{Name: name, Kind: core.KindAlberta}, Source: combined, Level: cc.O2}, nil
	}

	ws := []core.Workload{
		mkGen("test", core.KindTest, GenParams{Functions: 3, LoopDepth: 1, ExprDepth: 2, Arrays: 1, Seed: 1}, cc.O2),
		mkGen("train", core.KindTrain, GenParams{Functions: 12, LoopDepth: 2, ExprDepth: 3, Arrays: 2, Seed: 2}, cc.O2),
		mkGen("refrate", core.KindRefrate, GenParams{Functions: 40, LoopDepth: 3, ExprDepth: 4, Arrays: 4, Seed: 3}, cc.O3),
		mkGen("alberta.exprheavy", core.KindAlberta, GenParams{Functions: 24, LoopDepth: 1, ExprDepth: 6, Arrays: 2, Seed: 11}, cc.O3),
		mkGen("alberta.loopheavy", core.KindAlberta, GenParams{Functions: 16, LoopDepth: 4, ExprDepth: 2, Arrays: 3, Seed: 12}, cc.O2),
		mkGen("alberta.flat-O0", core.KindAlberta, GenParams{Functions: 48, LoopDepth: 1, ExprDepth: 3, Arrays: 2, Seed: 13}, cc.O0),
		mkGen("alberta.flat-O1", core.KindAlberta, GenParams{Functions: 48, LoopDepth: 1, ExprDepth: 3, Arrays: 2, Seed: 13}, cc.O1),
	}
	for i, spec := range []struct {
		name    string
		modules int
		seed    int64
	}{
		{"alberta.onefile-mcf", 4, 101},
		{"alberta.onefile-lbm", 6, 102},
		{"alberta.onefile-johnripper", 9, 103},
	} {
		w, err := mkOneFile(spec.name, spec.modules, spec.seed)
		if err != nil {
			return nil, fmt.Errorf("workload %d: %w", i, err)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gcc: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		p := GenParams{
			Functions: 8 + (i%5)*8,
			LoopDepth: 1 + i%3,
			ExprDepth: 2 + i%4,
			Arrays:    1 + i%3,
			Seed:      seed + int64(i),
		}
		// Clamp main's iteration count by the program shape: validation
		// work scales as ITERS × Functions × (loop bound)^LoopDepth, and
		// an unlucky draw at the heavy end (40 functions, depth-3 loops)
		// can otherwise exceed the VM's validation step limit. Inventory
		// workloads keep MaxIters zero — their programs are pinned by
		// baselines and never change.
		if cap := 512 / (p.Functions * p.LoopDepth * p.LoopDepth); cap < 32 {
			p.MaxIters = max(2, cap)
		}
		out = append(out, Workload{
			Meta:   core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Source: GenerateProgram(p),
			Level:  cc.OptLevel(i % 4),
		})
	}
	return out, nil
}

// Run implements core.Benchmark: the measured work is the compilation
// itself (as in SPEC's gcc); the compiled unit is then executed briefly,
// unprofiled, to validate the generated code.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared wraps the workload, whose source text is already the benchmark's
// input file: compilation itself is the measured phase. The VM scratch is
// recycled across Executes so the validation run performs no steady-state
// allocation.
type prepared struct {
	b  *Benchmark
	gw Workload
	sc *cc.Scratch
}

// Prepare implements core.Preparer.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	gw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	return &prepared{b: b, gw: gw, sc: &cc.Scratch{}}, nil
}

// Execute implements core.PreparedWorkload: compile the unit and validate
// it on the VM.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, gw := pw.b, pw.gw
	unit, err := cc.CompileSource(gw.Source, gw.Level, nil, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("gcc: %s: %w", gw.Name, err)
	}
	res, err := cc.Run(unit, cc.VMOptions{StepLimit: 20_000_000, Scratch: pw.sc})
	if err != nil {
		return core.Result{}, fmt.Errorf("gcc: %s: validation run: %w", gw.Name, err)
	}
	sum := core.NewChecksum().
		AddUint64(unit.Checksum()).
		AddUint64(uint64(res.Return)).
		AddUint64(res.Output).
		AddUint64(uint64(unit.Inlined))
	return core.Result{
		Benchmark: b.Name(),
		Workload:  gw.Name,
		Kind:      gw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
