package gcc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/core"
	"repro/internal/onefile"
	"repro/internal/perf"
)

func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := GenParams{
			Functions: 2 + int(seed%6),
			LoopDepth: 1 + int(seed%3),
			ExprDepth: 1 + int(seed%4),
			Arrays:    int(seed % 3),
			Seed:      seed,
		}
		src := GenerateProgram(p)
		unit, err := cc.CompileSource(src, cc.O2, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		if _, err := cc.Run(unit, cc.VMOptions{StepLimit: 20_000_000}); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
	}
}

func TestGeneratedProgramDeterministic(t *testing.T) {
	p := GenParams{Functions: 5, LoopDepth: 2, ExprDepth: 3, Arrays: 2, Seed: 9}
	if GenerateProgram(p) != GenerateProgram(p) {
		t.Error("generator not deterministic")
	}
}

func TestGeneratedProgramSemanticsStableAcrossLevels(t *testing.T) {
	src := GenerateProgram(GenParams{Functions: 8, LoopDepth: 2, ExprDepth: 3, Arrays: 2, Seed: 31})
	var want cc.RunResult
	for i, level := range []cc.OptLevel{cc.O0, cc.O1, cc.O2, cc.O3} {
		unit, err := cc.CompileSource(src, level, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cc.Run(unit, cc.VMOptions{StepLimit: 40_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		if res.Return != want.Return || res.Output != want.Output {
			t.Errorf("%v: output differs from -O0", level)
		}
	}
}

func TestGenerateMultiFileCombinesAndRuns(t *testing.T) {
	files := GenerateMultiFile(3, 7)
	combined, err := onefile.Combine(files)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := cc.CompileSource(combined, cc.O2, nil, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := cc.Run(unit, cc.VMOptions{StepLimit: 40_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Printed != 1 {
		t.Errorf("printed = %d, want 1", res.Printed)
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	onefileCount := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
			gw := w.(Workload)
			if len(gw.Source) == 0 {
				t.Errorf("%s: empty source", gw.Name)
			}
			if gw.Name[:15] == "alberta.onefile" {
				onefileCount++
			}
		}
	}
	if alberta < 6 {
		t.Errorf("alberta workloads = %d, want ≥ 6", alberta)
	}
	if onefileCount != 3 {
		t.Errorf("onefile workloads = %d, want 3 (mcf, lbm, johnripper stand-ins)", onefileCount)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"parse", "codegen", "preprocess"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
	// gcc is a flat-profile benchmark: several methods should matter.
	big := 0
	for _, c := range rep.Coverage {
		if c > 0.05 {
			big++
		}
	}
	if big < 2 {
		t.Errorf("expected a flat profile, got coverage %v", rep.Coverage)
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("workload %s: %v", w.WorkloadName(), err)
		}
	}
}

func TestSameSourceDifferentLevelsDifferentChecksums(t *testing.T) {
	b := New()
	w0, err := core.FindWorkload(b, "alberta.flat-O0")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := core.FindWorkload(b, "alberta.flat-O1")
	if err != nil {
		t.Fatal(err)
	}
	r0, err := b.Run(w0, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Run(w1, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	if r0.Checksum == r1.Checksum {
		t.Error("different optimization levels should produce different code checksums")
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsCompile(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(55, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		gw := w.(Workload)
		if _, err := cc.CompileSource(gw.Source, gw.Level, nil, nil); err != nil {
			t.Errorf("%s does not compile: %v", gw.Name, err)
		}
	}
}

func TestReplaceWord(t *testing.T) {
	if got := replaceWord("f0 + f01 + xf0 + f0", "f0", "Z"); got != "Z + f01 + xf0 + Z" {
		t.Errorf("replaceWord = %q", got)
	}
}

// TestGeneratedWorkloadsValidateAtHeavyShapes pins the MaxIters clamp:
// sweep-generated workloads at the heavy end of the shape cycle (40
// functions × depth-3 loops, indices ≡ 29 mod 30) must validate within
// the VM step limit for any seed. Index 29 at seed 1 is the draw that
// originally exceeded it.
func TestGeneratedWorkloadsValidateAtHeavyShapes(t *testing.T) {
	b := New()
	for _, seed := range []int64{1, 7} {
		ws, err := b.GenerateWorkloads(seed, 90)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range []int{29, 59, 89} {
			if _, err := b.Run(ws[i], perf.NewWithOptions(perf.Options{Stride: 64})); err != nil {
				t.Errorf("seed %d index %d: %v", seed, i, err)
			}
		}
	}
}

// TestMaxItersZeroLeavesProgramsUnchanged proves the clamp is inert when
// unset: inventory workloads (MaxIters zero) keep their exact pre-clamp
// program text, so pinned baselines cannot drift.
func TestMaxItersZeroLeavesProgramsUnchanged(t *testing.T) {
	p := GenParams{Functions: 40, LoopDepth: 3, ExprDepth: 4, Arrays: 4, Seed: 3}
	plain := GenerateProgram(p)
	p.MaxIters = 1000 // larger than any drawn ITERS: must not bind
	if GenerateProgram(p) != plain {
		t.Error("non-binding MaxIters changed the program")
	}
	p.MaxIters = 2
	clamped := GenerateProgram(p)
	if clamped == plain {
		t.Error("binding MaxIters left the program unchanged")
	}
	if !strings.Contains(clamped, "#define ITERS 2\n") {
		t.Error("clamped program does not define ITERS 2")
	}
}
