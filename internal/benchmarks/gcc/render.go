package gcc

import (
	"fmt"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: the single compilation unit
// plus the option file naming the optimization level.
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	gw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	return map[string][]byte{
		gw.Name + ".c":    []byte(gw.Source),
		gw.Name + ".opts": []byte(gw.Level.String() + "\n"),
	}, nil
}
