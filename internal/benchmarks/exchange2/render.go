package exchange2

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: the 81-character puzzle
// seeds the workload processes plus the per-seed puzzle count, matching
// the benchmark's input format.
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	xw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	var sb strings.Builder
	for _, si := range xw.SeedIndices {
		if si < 0 || si >= len(seeds) {
			return nil, fmt.Errorf("exchange2: seed index %d out of range", si)
		}
		sb.WriteString(seeds[si].String())
		sb.WriteByte('\n')
	}
	control := fmt.Sprintf("puzzles_per_seed %d\nrng_seed %d\n", xw.PerSeed, xw.RNGSeed)
	return map[string][]byte{
		"puzzles.txt": []byte(sb.String()),
		"control.txt": []byte(control),
	}, nil
}
