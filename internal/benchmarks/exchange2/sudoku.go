// Package exchange2 reproduces 548.exchange2_r: a Sudoku puzzle generator.
// The input is a collection of valid puzzles (81 characters each) used as
// seeds; the program generates new puzzles with identical clue patterns.
// As the paper reports, replacing the seed set made runs too short, so the
// Alberta workloads reuse the distributed seeds and vary only how many
// puzzles are processed — this reproduction does the same with its own
// deterministic 27-seed set.
package exchange2

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/perf"
)

// Grid is a 9x9 Sudoku grid; 0 means empty.
type Grid [81]uint8

// gridBase is the synthetic address base for solver state.
const gridBase = 0x80_0000_0000

// ErrBadPuzzle reports an invalid 81-character puzzle string.
var ErrBadPuzzle = errors.New("exchange2: bad puzzle")

// ParsePuzzle reads the benchmark's 81-character format ('.', '0' = empty).
func ParsePuzzle(s string) (Grid, error) {
	var g Grid
	if len(s) != 81 {
		return g, fmt.Errorf("%w: length %d", ErrBadPuzzle, len(s))
	}
	for i := 0; i < 81; i++ {
		c := s[i]
		switch {
		case c == '.' || c == '0':
			g[i] = 0
		case c >= '1' && c <= '9':
			g[i] = c - '0'
		default:
			return g, fmt.Errorf("%w: char %q at %d", ErrBadPuzzle, c, i)
		}
	}
	return g, nil
}

// String renders the 81-character format.
func (g Grid) String() string {
	var b [81]byte
	for i, v := range g {
		if v == 0 {
			b[i] = '.'
		} else {
			b[i] = '0' + v
		}
	}
	return string(b[:])
}

// Valid reports whether the filled cells violate no constraint.
func (g *Grid) Valid() bool {
	var rows, cols, boxes [9]uint16
	for i, v := range g {
		if v == 0 {
			continue
		}
		bit := uint16(1) << v
		r, c := i/9, i%9
		bx := (r/3)*3 + c/3
		if rows[r]&bit != 0 || cols[c]&bit != 0 || boxes[bx]&bit != 0 {
			return false
		}
		rows[r] |= bit
		cols[c] |= bit
		boxes[bx] |= bit
	}
	return true
}

// Solver is a bitmask backtracking solver with most-constrained-cell
// ordering (the recursive search 548.exchange2_r spends its time in).
type Solver struct {
	p *perf.Profiler
	// Backtracks counts failed placements (work metric).
	Backtracks uint64
	// Nodes counts recursive placements tried.
	Nodes uint64
}

// NewSolver returns a solver reporting to p (may be nil).
func NewSolver(p *perf.Profiler) *Solver {
	if p != nil {
		p.SetFootprint("solve_recurse", 4<<10)
		p.SetFootprint("propagate", 2<<10)
	}
	return &Solver{p: p}
}

// Solve fills g in place; returns false when unsolvable. The solution found
// is deterministic (lowest digit first).
func (s *Solver) Solve(g *Grid) bool {
	if !g.Valid() {
		return false
	}
	var rows, cols, boxes [9]uint16
	for i, v := range g {
		if v != 0 {
			bit := uint16(1) << v
			rows[i/9] |= bit
			cols[i%9] |= bit
			boxes[(i/27)*3+(i%9)/3] |= bit
		}
	}
	return s.recurse(g, &rows, &cols, &boxes)
}

// full is the bitmask of all nine digits.
const full = 0x3FE

func (s *Solver) recurse(g *Grid, rows, cols, boxes *[9]uint16) bool {
	if s.p != nil {
		s.p.Enter("solve_recurse")
		defer s.p.Leave()
	}
	// Most-constrained empty cell.
	best := -1
	bestCount := 10
	var bestMask uint16
	for i := 0; i < 81; i++ {
		if g[i] != 0 {
			continue
		}
		r, c := i/9, i%9
		bx := (r/3)*3 + c/3
		mask := full &^ (rows[r] | cols[c] | boxes[bx])
		n := popcount(mask)
		if s.p != nil {
			s.p.Ops(4)
			if i%24 == 0 {
				s.p.LongOps(1) // serial mask/popcount dependency chains
			}
			s.p.Load(gridBase + uint64(i)*2)
			if i%8 == 0 {
				s.p.Branch(300+uint64(i), n < bestCount)
			}
		}
		if n < bestCount {
			best, bestCount, bestMask = i, n, mask
			if n <= 1 {
				break
			}
		}
	}
	if best == -1 {
		return true // solved
	}
	if bestCount == 0 {
		s.Backtracks++
		return false
	}
	r, c := best/9, best%9
	bx := (r/3)*3 + c/3
	for d := uint8(1); d <= 9; d++ {
		bit := uint16(1) << d
		if bestMask&bit == 0 {
			continue
		}
		s.Nodes++
		g[best] = d
		rows[r] |= bit
		cols[c] |= bit
		boxes[bx] |= bit
		if s.p != nil {
			s.p.Ops(8)
			s.p.Store(gridBase + uint64(best)*2)
		}
		if s.recurse(g, rows, cols, boxes) {
			return true
		}
		g[best] = 0
		rows[r] &^= bit
		cols[c] &^= bit
		boxes[bx] &^= bit
		s.Backtracks++
	}
	return false
}

func popcount(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// transform derives a new complete grid from a solved one via
// validity-preserving operations: digit relabeling, row swaps within bands,
// column swaps within stacks, and band/stack swaps.
func transform(sol Grid, rng *rand.Rand) Grid {
	out := sol
	// Digit permutation.
	perm := rng.Perm(9)
	for i, v := range out {
		out[i] = uint8(perm[v-1] + 1)
	}
	// Row swaps within each band.
	for band := 0; band < 3; band++ {
		a, b := rng.Intn(3), rng.Intn(3)
		r1, r2 := band*3+a, band*3+b
		for c := 0; c < 9; c++ {
			out[r1*9+c], out[r2*9+c] = out[r2*9+c], out[r1*9+c]
		}
	}
	// Column swaps within each stack.
	for stack := 0; stack < 3; stack++ {
		a, b := rng.Intn(3), rng.Intn(3)
		c1, c2 := stack*3+a, stack*3+b
		for r := 0; r < 9; r++ {
			out[r*9+c1], out[r*9+c2] = out[r*9+c2], out[r*9+c1]
		}
	}
	return out
}

// GenerateFromSeed produces count new puzzles sharing seed's clue pattern:
// the seed is solved, the solution is transformed, and the seed's clue mask
// is re-applied (the benchmark's "new puzzles with identical clue
// patterns").
func GenerateFromSeed(seed Grid, count int, rng *rand.Rand, s *Solver) ([]Grid, error) {
	work := seed
	if !s.Solve(&work) {
		return nil, fmt.Errorf("exchange2: seed unsolvable: %s", seed.String())
	}
	var out []Grid
	for len(out) < count {
		candidate := transform(work, rng)
		var puzzle Grid
		for i := range puzzle {
			if seed[i] != 0 {
				puzzle[i] = candidate[i]
			}
		}
		// Every generated puzzle must be solvable (it is, by
		// construction: candidate solves it), verified defensively.
		check := puzzle
		if !s.Solve(&check) {
			return nil, fmt.Errorf("exchange2: generated unsolvable puzzle")
		}
		out = append(out, puzzle)
	}
	return out, nil
}

// DefaultSeeds builds the deterministic 27-puzzle seed collection standing
// in for the set distributed with the benchmark: random complete grids with
// 28-34 clues carved out.
func DefaultSeeds() []Grid {
	rng := rand.New(rand.NewSource(548))
	solver := NewSolver(nil)
	var seeds []Grid
	for len(seeds) < 27 {
		// Random complete grid: start empty with a shuffled first row.
		var g Grid
		perm := rng.Perm(9)
		for c := 0; c < 9; c++ {
			g[c] = uint8(perm[c] + 1)
		}
		if !solver.Solve(&g) {
			continue
		}
		g = transform(g, rng)
		// Carve to a puzzle.
		clues := 28 + rng.Intn(7)
		puzzle := g
		removed := 0
		order := rng.Perm(81)
		for _, i := range order {
			if 81-removed <= clues {
				break
			}
			puzzle[i] = 0
			removed++
		}
		check := puzzle
		if solver.Solve(&check) {
			seeds = append(seeds, puzzle)
		}
	}
	return seeds
}
