package exchange2

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

// A classic easy puzzle and its unique solution.
const (
	knownPuzzle   = "53..7....6..195....98....6.8...6...34..8.3..17...2...6.6....28....419..5....8..79"
	knownSolution = "534678912672195348198342567859761423426853791713924856961537284287419635345286179"
)

func TestParsePuzzle(t *testing.T) {
	g, err := ParsePuzzle(knownPuzzle)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 5 || g[2] != 0 || g[80] != 9 {
		t.Errorf("parsed cells wrong: %v %v %v", g[0], g[2], g[80])
	}
	if _, err := ParsePuzzle("short"); !errors.Is(err, ErrBadPuzzle) {
		t.Error("short input should fail")
	}
	if _, err := ParsePuzzle(knownPuzzle[:80] + "x"); !errors.Is(err, ErrBadPuzzle) {
		t.Error("bad char should fail")
	}
}

func TestStringRoundTrip(t *testing.T) {
	g, err := ParsePuzzle(knownPuzzle)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParsePuzzle(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if g != g2 {
		t.Error("round trip mismatch")
	}
}

func TestSolveKnownPuzzle(t *testing.T) {
	g, err := ParsePuzzle(knownPuzzle)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(nil)
	if !s.Solve(&g) {
		t.Fatal("known-solvable puzzle reported unsolvable")
	}
	if g.String() != knownSolution {
		t.Errorf("solution = %s, want %s", g.String(), knownSolution)
	}
}

func TestSolveDetectsUnsolvable(t *testing.T) {
	// Two 5s in the first row make it invalid.
	bad := "55" + knownPuzzle[2:]
	g, err := ParsePuzzle(bad)
	if err != nil {
		t.Fatal(err)
	}
	if NewSolver(nil).Solve(&g) {
		t.Error("contradictory puzzle reported solvable")
	}
}

func TestSolvedGridComplete(t *testing.T) {
	g, _ := ParsePuzzle(knownPuzzle)
	s := NewSolver(nil)
	s.Solve(&g)
	if !g.Valid() {
		t.Error("solution violates constraints")
	}
	for i, v := range g {
		if v == 0 {
			t.Fatalf("cell %d left empty", i)
		}
	}
}

func TestTransformPreservesValidity(t *testing.T) {
	g, _ := ParsePuzzle(knownPuzzle)
	s := NewSolver(nil)
	s.Solve(&g)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tg := transform(g, rng)
		if !tg.Valid() {
			t.Fatalf("transform %d produced invalid grid", i)
		}
		for _, v := range tg {
			if v == 0 {
				t.Fatal("transform left a hole")
			}
		}
	}
}

func TestGenerateFromSeedPreservesCluePattern(t *testing.T) {
	seed, _ := ParsePuzzle(knownPuzzle)
	rng := rand.New(rand.NewSource(2))
	s := NewSolver(nil)
	puzzles, err := GenerateFromSeed(seed, 5, rng, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(puzzles) != 5 {
		t.Fatalf("generated %d puzzles", len(puzzles))
	}
	for pi, pz := range puzzles {
		for i := range pz {
			if (seed[i] == 0) != (pz[i] == 0) {
				t.Fatalf("puzzle %d: clue pattern differs at cell %d", pi, i)
			}
		}
		check := pz
		if !NewSolver(nil).Solve(&check) {
			t.Fatalf("puzzle %d unsolvable", pi)
		}
	}
}

func TestDefaultSeeds(t *testing.T) {
	if len(seeds) != 27 {
		t.Fatalf("seed collection = %d, want 27 (as distributed with the benchmark)", len(seeds))
	}
	s := NewSolver(nil)
	for i, seed := range seeds {
		if !seed.Valid() {
			t.Errorf("seed %d invalid", i)
		}
		g := seed
		if !s.Solve(&g) {
			t.Errorf("seed %d unsolvable", i)
		}
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 10 {
		t.Errorf("alberta workloads = %d, want 10 (paper ships ten)", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	if rep.Coverage["solve_recurse"] == 0 {
		t.Errorf("solver missing from coverage: %v", rep.Coverage)
	}
	// exchange2 is the least workload-sensitive benchmark in the paper:
	// retiring should dominate strongly (Table II: r = 58.6).
	if rep.TopDown.Retiring < 0.3 {
		t.Errorf("retiring = %v, expected compute-bound profile", rep.TopDown.Retiring)
	}
}

func TestBenchmarkDeterminism(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Run(w, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(w, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum {
		t.Error("nondeterministic run")
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloads(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("generated %d", len(ws))
	}
	if _, err := b.GenerateWorkloads(4, 0); err == nil {
		t.Error("n=0 should fail")
	}
}
