package exchange2

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// Workload is one 548.exchange2_r input: which seed puzzles to process and
// how many new puzzles to generate per seed. The Alberta script's knob is
// exactly "the number of puzzles to process per workload", drawing from the
// distributed seed file.
type Workload struct {
	core.Meta
	// SeedIndices selects puzzles from the default seed collection.
	SeedIndices []int
	// PerSeed is the number of new puzzles generated per seed.
	PerSeed int
	// RNGSeed drives the transformations.
	RNGSeed int64
}

// Benchmark is the 548.exchange2_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "548.exchange2_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "AI: Sudoku recursive solution" }

// seeds is the process-wide seed collection (deterministic).
var seeds = DefaultSeeds()

// pickSeeds selects n seed indices deterministically.
func pickSeeds(rngSeed int64, n int) []int {
	rng := rand.New(rand.NewSource(rngSeed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(len(seeds))
	}
	return out
}

// Workloads returns SPEC-style inputs plus the ten Alberta workloads, all
// drawing from the same 27 distributed seeds (matching the paper's
// decision) and varying only the puzzle counts.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, rngSeed int64, nSeeds, perSeed int) core.Workload {
		return Workload{
			Meta:        core.Meta{Name: name, Kind: kind},
			SeedIndices: pickSeeds(rngSeed, nSeeds),
			PerSeed:     perSeed,
			RNGSeed:     rngSeed,
		}
	}
	ws := []core.Workload{
		mk("test", core.KindTest, 1, 2, 3),
		mk("train", core.KindTrain, 2, 9, 10),
		mk("refrate", core.KindRefrate, 3, 27, 20),
	}
	for i := 0; i < 10; i++ {
		ws = append(ws, mk(fmt.Sprintf("alberta.%d", i+1), core.KindAlberta,
			100+int64(i), 6+2*i, 8+3*(i%4)))
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("exchange2: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		out = append(out, Workload{
			Meta:        core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			SeedIndices: pickSeeds(seed+int64(i), 4+i%8),
			PerSeed:     6 + i%10,
			RNGSeed:     seed + int64(i),
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared wraps the workload after validating its seed indices: puzzle
// generation and solving are both measured, and the embedded seed boards are
// package-level constants, so there is nothing else to prepare.
type prepared struct {
	b  *Benchmark
	xw Workload
}

// Prepare implements core.Preparer.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	xw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	for _, si := range xw.SeedIndices {
		if si < 0 || si >= len(seeds) {
			return nil, fmt.Errorf("exchange2: %s: seed index %d out of range", xw.Name, si)
		}
	}
	return &prepared{b: b, xw: xw}, nil
}

// Execute implements core.PreparedWorkload: generate and solve the puzzles.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, xw := pw.b, pw.xw
	solver := NewSolver(p)
	rng := rand.New(rand.NewSource(xw.RNGSeed))
	sum := core.NewChecksum()
	for _, si := range xw.SeedIndices {
		if si < 0 || si >= len(seeds) {
			return core.Result{}, fmt.Errorf("exchange2: %s: seed index %d out of range", xw.Name, si)
		}
		puzzles, err := GenerateFromSeed(seeds[si], xw.PerSeed, rng, solver)
		if err != nil {
			return core.Result{}, fmt.Errorf("exchange2: %s: %w", xw.Name, err)
		}
		for _, pz := range puzzles {
			sum = sum.AddString(pz.String())
		}
	}
	sum = sum.AddUint64(solver.Nodes).AddUint64(solver.Backtracks)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  xw.Name,
		Kind:      xw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
