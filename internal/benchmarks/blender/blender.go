// Package blender reproduces 526.blender_r: 3D image creation through
// rendering of scene files. A workload is a scene description (the .blend
// file) plus a frame range; the renderer is a transform + z-buffer
// rasterizer with flat shading. The Crazy Glue and Elephants Dream .blend
// downloads are replaced by two procedural scene families, and the paper's
// two helper scripts are reproduced: CheckScene identifies scenes the
// renderer supports, and SelectScenes randomly picks renderable scenes for
// a workload.
package blender

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// Vec is a 3-vector.
type Vec struct{ X, Y, Z float64 }

func (a Vec) sub(b Vec) Vec { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a Vec) cross(b Vec) Vec {
	return Vec{a.Y*b.Z - a.Z*b.Y, a.Z*b.X - a.X*b.Z, a.X*b.Y - a.Y*b.X}
}
func (a Vec) dot(b Vec) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func (a Vec) norm() Vec {
	l := math.Sqrt(a.dot(a))
	if l == 0 {
		return a
	}
	return Vec{a.X / l, a.Y / l, a.Z / l}
}

// Triangle is one mesh face.
type Triangle struct {
	A, B, C Vec
	Shade   float64 // base gray level 0..1
}

// Mesh is a triangle soup.
type Mesh struct {
	Tris []Triangle
}

// Scene is the parsed .blend stand-in.
type Scene struct {
	Name   string
	Meshes []*Mesh
	// Spin is radians of rotation per frame (animation).
	Spin float64
	// Supported mirrors the paper's observation that not every .blend
	// file works with the benchmark: unsupported scenes must be filtered
	// out by CheckScene.
	Supported bool
}

// UVSphere builds a lat/long sphere mesh.
func UVSphere(center Vec, radius float64, segments int, shade float64) *Mesh {
	m := &Mesh{}
	for i := 0; i < segments; i++ {
		th0 := math.Pi * float64(i) / float64(segments)
		th1 := math.Pi * float64(i+1) / float64(segments)
		for j := 0; j < 2*segments; j++ {
			ph0 := math.Pi * float64(j) / float64(segments)
			ph1 := math.Pi * float64(j+1) / float64(segments)
			p := func(th, ph float64) Vec {
				return Vec{
					center.X + radius*math.Sin(th)*math.Cos(ph),
					center.Y + radius*math.Cos(th),
					center.Z + radius*math.Sin(th)*math.Sin(ph),
				}
			}
			a, b, c, d := p(th0, ph0), p(th1, ph0), p(th1, ph1), p(th0, ph1)
			m.Tris = append(m.Tris,
				Triangle{A: a, B: b, C: c, Shade: shade},
				Triangle{A: a, B: c, C: d, Shade: shade})
		}
	}
	return m
}

// Cuboid builds a box mesh.
func Cuboid(min, max Vec, shade float64) *Mesh {
	v := [8]Vec{
		{min.X, min.Y, min.Z}, {max.X, min.Y, min.Z}, {max.X, max.Y, min.Z}, {min.X, max.Y, min.Z},
		{min.X, min.Y, max.Z}, {max.X, min.Y, max.Z}, {max.X, max.Y, max.Z}, {min.X, max.Y, max.Z},
	}
	quads := [6][4]int{
		{0, 1, 2, 3}, {5, 4, 7, 6}, {4, 0, 3, 7}, {1, 5, 6, 2}, {3, 2, 6, 7}, {4, 5, 1, 0},
	}
	m := &Mesh{}
	for _, q := range quads {
		m.Tris = append(m.Tris,
			Triangle{A: v[q[0]], B: v[q[1]], C: v[q[2]], Shade: shade},
			Triangle{A: v[q[0]], B: v[q[2]], C: v[q[3]], Shade: shade})
	}
	return m
}

// SceneKind selects the scene family (the two .blend sources).
type SceneKind int

// The two Alberta scene sources.
const (
	// SceneCrazyGlue: a cluster of glued-together primitives.
	SceneCrazyGlue SceneKind = iota
	// SceneElephantsDream: a larger organic arrangement of spheres.
	SceneElephantsDream
)

// String names the kind.
func (k SceneKind) String() string {
	if k == SceneCrazyGlue {
		return "crazyglue"
	}
	return "elephantsdream"
}

// BuildScene constructs a deterministic scene. Some generated scenes are
// marked unsupported (resource-only .blend files in the paper's terms).
func BuildScene(kind SceneKind, detail int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	sc := &Scene{Name: fmt.Sprintf("%s-%d", kind, seed), Spin: 0.15, Supported: true}
	switch kind {
	case SceneCrazyGlue:
		for i := 0; i < 3+detail; i++ {
			c := Vec{-1.5 + 3*rng.Float64(), -1 + 2*rng.Float64(), -1.5 + 3*rng.Float64()}
			if i%2 == 0 {
				half := 0.3 + 0.3*rng.Float64()
				sc.Meshes = append(sc.Meshes, Cuboid(
					Vec{c.X - half, c.Y - half, c.Z - half},
					Vec{c.X + half, c.Y + half, c.Z + half},
					0.3+0.6*rng.Float64()))
			} else {
				sc.Meshes = append(sc.Meshes, UVSphere(c, 0.3+0.3*rng.Float64(), 4+detail/3, 0.3+0.6*rng.Float64()))
			}
		}
	case SceneElephantsDream:
		for i := 0; i < 2+detail/2; i++ {
			t := float64(i) * 0.8
			c := Vec{1.8 * math.Cos(t), 0.4 * float64(i%3), 1.8 * math.Sin(t)}
			sc.Meshes = append(sc.Meshes, UVSphere(c, 0.5+0.2*rng.Float64(), 5+detail/2, 0.4+0.5*rng.Float64()))
		}
	}
	// One in five scenes is a resource file, not meant to be rendered.
	if seed%5 == 0 {
		sc.Supported = false
	}
	return sc
}

// CheckScene is the paper's first script: identify .blend files that work
// with the benchmark.
func CheckScene(sc *Scene) error {
	if !sc.Supported {
		return fmt.Errorf("blender: scene %s uses unsupported features", sc.Name)
	}
	if len(sc.Meshes) == 0 {
		return fmt.Errorf("blender: scene %s has nothing to render", sc.Name)
	}
	return nil
}

// SelectScenes is the paper's second script: randomly select renderable
// scenes for use in a workload.
func SelectScenes(candidates []*Scene, n int, seed int64) []*Scene {
	rng := rand.New(rand.NewSource(seed))
	var ok []*Scene
	for _, sc := range candidates {
		if CheckScene(sc) == nil {
			ok = append(ok, sc)
		}
	}
	var out []*Scene
	for i := 0; i < n && len(ok) > 0; i++ {
		out = append(out, ok[rng.Intn(len(ok))])
	}
	return out
}

const fbBase = 0xF0_0000_0000

// Renderer rasterizes frames.
type Renderer struct {
	W, H int
	p    *perf.Profiler
	// TrisRasterized counts processed triangles (work metric).
	TrisRasterized uint64
}

// NewRenderer returns a renderer.
func NewRenderer(w, h int, p *perf.Profiler) (*Renderer, error) {
	if w < 8 || h < 8 {
		return nil, fmt.Errorf("blender: frame %dx%d too small", w, h)
	}
	if p != nil {
		p.SetFootprint("transform", 3<<10)
		p.SetFootprint("rasterize", 6<<10)
		p.SetFootprint("zbuffer", 2<<10)
	}
	return &Renderer{W: w, H: h, p: p}, nil
}

// RenderFrame draws the scene rotated for the given frame index and returns
// the grayscale framebuffer.
func (r *Renderer) RenderFrame(sc *Scene, frame int) []float64 {
	angle := sc.Spin * float64(frame)
	sin, cos := math.Sin(angle), math.Cos(angle)
	camZ := -6.0
	light := Vec{0.4, 0.8, -0.45}.norm()

	fb := make([]float64, r.W*r.H)
	zb := make([]float64, r.W*r.H)
	for i := range zb {
		zb[i] = math.Inf(1)
	}
	for _, mesh := range sc.Meshes {
		for _, tri := range mesh.Tris {
			if r.p != nil {
				r.p.Enter("transform")
			}
			// Rotate about Y and translate into camera space.
			xf := func(v Vec) Vec {
				return Vec{v.X*cos + v.Z*sin, v.Y, -v.X*sin + v.Z*cos - camZ}
			}
			a, b, c := xf(tri.A), xf(tri.B), xf(tri.C)
			if r.p != nil {
				r.p.Ops(36)
				r.p.LongOps(1)
				r.p.Leave()
			}
			if a.Z <= 0.1 || b.Z <= 0.1 || c.Z <= 0.1 {
				continue // behind the camera
			}
			// Flat shading from the world-space normal.
			n := tri.B.sub(tri.A).cross(tri.C.sub(tri.A)).norm()
			shade := tri.Shade * (0.25 + 0.75*math.Abs(n.dot(light)))
			// Project.
			px := func(v Vec) (float64, float64) {
				scale := float64(r.H) * 0.9
				return float64(r.W)/2 + scale*v.X/v.Z, float64(r.H)/2 - scale*v.Y/v.Z
			}
			ax, ay := px(a)
			bx, by := px(b)
			cx, cy := px(c)
			r.rasterize(fb, zb, ax, ay, a.Z, bx, by, b.Z, cx, cy, c.Z, shade)
			r.TrisRasterized++
		}
	}
	return fb
}

// rasterize fills one triangle with z-buffering (barycentric coverage).
func (r *Renderer) rasterize(fb, zb []float64, ax, ay, az, bx, by, bz, cx, cy, cz, shade float64) {
	if r.p != nil {
		r.p.Enter("rasterize")
		defer r.p.Leave()
	}
	minX := int(math.Max(0, math.Floor(math.Min(ax, math.Min(bx, cx)))))
	maxX := int(math.Min(float64(r.W-1), math.Ceil(math.Max(ax, math.Max(bx, cx)))))
	minY := int(math.Max(0, math.Floor(math.Min(ay, math.Min(by, cy)))))
	maxY := int(math.Min(float64(r.H-1), math.Ceil(math.Max(ay, math.Max(by, cy)))))
	area := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	if math.Abs(area) < 1e-9 {
		return
	}
	inv := 1 / area
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			fx, fy := float64(x)+0.5, float64(y)+0.5
			w0 := ((bx-ax)*(fy-ay) - (by-ay)*(fx-ax)) * inv
			w1 := ((cx-bx)*(fy-by) - (cy-by)*(fx-bx)) * inv
			w2 := 1 - w0 - w1
			inside := w0 >= 0 && w1 >= 0 && w2 >= 0
			if r.p != nil && (x+y)%8 == 0 {
				r.p.Ops(14)
				r.p.Branch(130, inside)
			}
			if !inside {
				continue
			}
			// Interpolated depth (affine approximation).
			z := w1*az + w2*bz + w0*cz
			i := y*r.W + x
			if z < zb[i] {
				zb[i] = z
				fb[i] = shade
				if r.p != nil && i%16 == 0 {
					r.p.Enter("zbuffer")
					r.p.Load(fbBase + uint64(i)*8)
					r.p.Store(fbBase + uint64(i)*8)
					r.p.Ops(4)
					r.p.Leave()
				}
			}
		}
	}
}

// Workload is one 526.blender_r input: selected scenes, start frame and
// frame count (the paper: workloads "start rendering at different frames,
// and also vary the number of frames rendered").
type Workload struct {
	core.Meta
	Kind       SceneKind
	Detail     int
	SceneSeed  int64
	StartFrame int
	Frames     int
	W, H       int
}

// Benchmark is the 526.blender_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "526.blender_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "3D rendering and animation" }

// Workloads returns SPEC-style inputs plus thirteen Alberta workloads drawn
// from the two scene families.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, sk SceneKind, detail int, seed int64, start, frames int) core.Workload {
		return Workload{
			Meta: core.Meta{Name: name, Kind: kind},
			Kind: sk, Detail: detail, SceneSeed: seed,
			StartFrame: start, Frames: frames, W: 64, H: 48,
		}
	}
	ws := []core.Workload{
		mk("test", core.KindTest, SceneCrazyGlue, 3, 1, 0, 1),
		mk("train", core.KindTrain, SceneCrazyGlue, 6, 2, 0, 3),
		mk("refrate", core.KindRefrate, SceneElephantsDream, 9, 3, 0, 6),
	}
	for i := 0; i < 13; i++ {
		kind := SceneCrazyGlue
		if i >= 6 {
			kind = SceneElephantsDream
		}
		// Seeds divisible by five generate unsupported scenes; skip them
		// as the CheckScene script would.
		seed := int64(101 + i)
		if seed%5 == 0 {
			seed++
		}
		ws = append(ws, mk(
			fmt.Sprintf("alberta.%d", i+1), core.KindAlberta,
			kind, 4+i%5, seed, i*2, 2+i%4))
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("blender: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		if s%5 == 0 {
			s++
		}
		out = append(out, Workload{
			Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Kind: SceneKind(i % 2), Detail: 3 + i%6, SceneSeed: s,
			StartFrame: i, Frames: 1 + i%4, W: 64, H: 48,
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the built, checked scene; the renderer animates per frame
// by transforming into its own buffers, leaving the scene unchanged.
type prepared struct {
	b  *Benchmark
	bw Workload
	sc *Scene
}

// Prepare implements core.Preparer: build and validate the scene once,
// uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	bw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	sc := BuildScene(bw.Kind, bw.Detail, bw.SceneSeed)
	if err := CheckScene(sc); err != nil {
		return nil, fmt.Errorf("blender: %s: %w", bw.Name, err)
	}
	return &prepared{b: b, bw: bw, sc: sc}, nil
}

// Execute implements core.PreparedWorkload: render every frame.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, bw, sc := pw.b, pw.bw, pw.sc
	rnd, err := NewRenderer(bw.W, bw.H, p)
	if err != nil {
		return core.Result{}, err
	}
	sum := core.NewChecksum()
	for f := bw.StartFrame; f < bw.StartFrame+bw.Frames; f++ {
		fb := rnd.RenderFrame(sc, f)
		covered := 0
		for _, v := range fb {
			sum = sum.AddFloat(v)
			if v > 0 {
				covered++
			}
		}
		if covered == 0 {
			return core.Result{}, fmt.Errorf("blender: %s: frame %d rendered empty", bw.Name, f)
		}
	}
	sum = sum.AddUint64(rnd.TrisRasterized)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  bw.Name,
		Kind:      bw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
