package blender

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestMeshGenerators(t *testing.T) {
	sph := UVSphere(Vec{0, 0, 0}, 1, 6, 0.5)
	if len(sph.Tris) != 2*6*12 {
		t.Errorf("sphere tris = %d", len(sph.Tris))
	}
	box := Cuboid(Vec{-1, -1, -1}, Vec{1, 1, 1}, 0.5)
	if len(box.Tris) != 12 {
		t.Errorf("box tris = %d", len(box.Tris))
	}
}

func TestBuildSceneFamilies(t *testing.T) {
	cg := BuildScene(SceneCrazyGlue, 5, 1)
	ed := BuildScene(SceneElephantsDream, 5, 1)
	if len(cg.Meshes) == 0 || len(ed.Meshes) == 0 {
		t.Fatal("scenes empty")
	}
	if cg.Name == ed.Name {
		t.Error("scene names should differ by family")
	}
}

func TestCheckSceneRejectsUnsupported(t *testing.T) {
	// Seeds divisible by 5 are resource-only scenes.
	bad := BuildScene(SceneCrazyGlue, 4, 10)
	if err := CheckScene(bad); err == nil {
		t.Error("unsupported scene should be rejected")
	}
	good := BuildScene(SceneCrazyGlue, 4, 11)
	if err := CheckScene(good); err != nil {
		t.Errorf("supported scene rejected: %v", err)
	}
	if err := CheckScene(&Scene{Supported: true}); err == nil {
		t.Error("empty scene should be rejected")
	}
}

func TestSelectScenesFiltersAndPicks(t *testing.T) {
	var candidates []*Scene
	for s := int64(1); s <= 10; s++ {
		candidates = append(candidates, BuildScene(SceneCrazyGlue, 3, s))
	}
	picked := SelectScenes(candidates, 5, 9)
	if len(picked) != 5 {
		t.Fatalf("picked %d scenes", len(picked))
	}
	for _, sc := range picked {
		if CheckScene(sc) != nil {
			t.Error("selected an unsupported scene")
		}
	}
}

func TestRenderFrameCoversPixels(t *testing.T) {
	sc := BuildScene(SceneElephantsDream, 6, 2)
	r, err := NewRenderer(64, 48, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb := r.RenderFrame(sc, 0)
	covered := 0
	for _, v := range fb {
		if v > 0 {
			covered++
		}
	}
	if covered < 64 {
		t.Errorf("only %d pixels covered", covered)
	}
	if r.TrisRasterized == 0 {
		t.Error("no triangles rasterized")
	}
}

func TestAnimationChangesFrames(t *testing.T) {
	sc := BuildScene(SceneCrazyGlue, 5, 3)
	r, err := NewRenderer(48, 36, nil)
	if err != nil {
		t.Fatal(err)
	}
	f0 := r.RenderFrame(sc, 0)
	f5 := r.RenderFrame(sc, 5)
	same := true
	for i := range f0 {
		if f0[i] != f5[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("rotation should change the image between frames")
	}
}

func TestZBufferOcclusion(t *testing.T) {
	// A nearer triangle must overwrite a farther one.
	sc := &Scene{
		Supported: true,
		Meshes: []*Mesh{
			{Tris: []Triangle{
				{A: Vec{-2, -2, 2}, B: Vec{2, -2, 2}, C: Vec{0, 2, 2}, Shade: 0.2}, // far
				{A: Vec{-1, -1, 0}, B: Vec{1, -1, 0}, C: Vec{0, 1, 0}, Shade: 0.9}, // near
			}},
		},
	}
	r, err := NewRenderer(32, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb := r.RenderFrame(sc, 0)
	center := fb[16*32+16]
	if center < 0.3 {
		t.Errorf("center pixel = %v, expected the near bright triangle", center)
	}
}

func TestRendererValidation(t *testing.T) {
	if _, err := NewRenderer(4, 48, nil); err == nil {
		t.Error("tiny width should fail")
	}
}

func TestDeterminism(t *testing.T) {
	render := func() []float64 {
		sc := BuildScene(SceneCrazyGlue, 5, 4)
		r, err := NewRenderer(40, 30, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.RenderFrame(sc, 2)
	}
	a, b := render(), render()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	starts := map[int]bool{}
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
			starts[w.(Workload).StartFrame] = true
		}
	}
	if alberta != 13 {
		t.Errorf("alberta workloads = %d, want 13 (paper ships thirteen)", alberta)
	}
	if len(starts) < 5 {
		t.Errorf("workloads should start at varied frames, got %d distinct", len(starts))
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"transform", "rasterize"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(41, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
