// Package benchmarks assembles the full reproduced SPEC CPU 2017 suite.
package benchmarks

import (
	"repro/internal/benchmarks/blender"
	"repro/internal/benchmarks/cactubssn"
	"repro/internal/benchmarks/deepsjeng"
	"repro/internal/benchmarks/exchange2"
	"repro/internal/benchmarks/gcc"
	"repro/internal/benchmarks/lbm"
	"repro/internal/benchmarks/leela"
	"repro/internal/benchmarks/mcf"
	"repro/internal/benchmarks/nab"
	"repro/internal/benchmarks/omnetpp"
	"repro/internal/benchmarks/parest"
	"repro/internal/benchmarks/perlbench"
	"repro/internal/benchmarks/povray"
	"repro/internal/benchmarks/wrf"
	"repro/internal/benchmarks/x264"
	"repro/internal/benchmarks/xalan"
	"repro/internal/benchmarks/xz"
	"repro/internal/core"
)

// All returns every reproduced benchmark, INT and FP.
func All() []core.Benchmark {
	return []core.Benchmark{
		perlbench.New(),
		gcc.New(),
		mcf.New(),
		cactubssn.New(),
		parest.New(),
		povray.New(),
		lbm.New(),
		omnetpp.New(),
		wrf.New(),
		xalan.New(),
		x264.New(),
		blender.New(),
		deepsjeng.New(),
		leela.New(),
		nab.New(),
		exchange2.New(),
		xz.New(),
	}
}

// Int returns the SPEC CPU INT 2017 members.
func Int() []core.Benchmark {
	return []core.Benchmark{
		perlbench.New(),
		gcc.New(),
		mcf.New(),
		omnetpp.New(),
		xalan.New(),
		x264.New(),
		deepsjeng.New(),
		leela.New(),
		exchange2.New(),
		xz.New(),
	}
}

// FP returns the SPEC CPU FP 2017 members that the reproduction covers.
func FP() []core.Benchmark {
	return []core.Benchmark{
		cactubssn.New(),
		parest.New(),
		povray.New(),
		lbm.New(),
		wrf.New(),
		blender.New(),
		nab.New(),
	}
}

// Suite wraps All in a core.Suite.
func Suite() (*core.Suite, error) {
	return core.NewSuite(All()...)
}

// CharacterizedSuite returns the Table II benchmark set: every benchmark
// with Alberta workloads (all but perlbench).
func CharacterizedSuite() (*core.Suite, error) {
	var bs []core.Benchmark
	for _, b := range All() {
		if b.Name() == "500.perlbench_r" {
			continue
		}
		bs = append(bs, b)
	}
	return core.NewSuite(bs...)
}
