package omnetpp

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Link is an undirected network link with a propagation delay.
type Link struct {
	A, B    int
	DelayUS int64
}

// Network is a parsed NED-lite network description.
type Network struct {
	Name  string
	Nodes int
	Links []Link
}

// ErrBadNED reports an unparseable network description.
var ErrBadNED = errors.New("omnetpp: bad NED description")

// Validate checks structural consistency.
func (n *Network) Validate() error {
	if n.Nodes <= 0 {
		return fmt.Errorf("%w: no nodes", ErrBadNED)
	}
	for i, l := range n.Links {
		if l.A < 0 || l.A >= n.Nodes || l.B < 0 || l.B >= n.Nodes || l.A == l.B {
			return fmt.Errorf("%w: link %d (%d,%d) invalid for %d nodes", ErrBadNED, i, l.A, l.B, n.Nodes)
		}
		if l.DelayUS < 0 {
			return fmt.Errorf("%w: link %d negative delay", ErrBadNED, i)
		}
	}
	return nil
}

// FormatNED renders the network in the NED-lite syntax ParseNED reads:
//
//	network <name>
//	nodes <count>
//	link <a> <b> <delay_us>
func (n *Network) FormatNED() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network %s\n", n.Name)
	fmt.Fprintf(&sb, "nodes %d\n", n.Nodes)
	for _, l := range n.Links {
		fmt.Fprintf(&sb, "link %d %d %d\n", l.A, l.B, l.DelayUS)
	}
	return sb.String()
}

// ParseNED parses the NED-lite syntax. Blank lines and '#' comments are
// allowed.
func ParseNED(src string) (*Network, error) {
	n := &Network{}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "network":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: %q", ErrBadNED, lineNo, line)
			}
			n.Name = fields[1]
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: %q", ErrBadNED, lineNo, line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &n.Nodes); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadNED, lineNo, err)
			}
		case "link":
			if len(fields) != 4 {
				return nil, fmt.Errorf("%w: line %d: %q", ErrBadNED, lineNo, line)
			}
			var l Link
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2]+" "+fields[3], "%d %d %d", &l.A, &l.B, &l.DelayUS); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadNED, lineNo, err)
			}
			n.Links = append(n.Links, l)
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrBadNED, lineNo, fields[0])
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Topology generators for the seven Alberta workloads.

// LineTopology chains n nodes.
func LineTopology(n int, delay int64) *Network {
	net := &Network{Name: fmt.Sprintf("line%d", n), Nodes: n}
	for i := 0; i+1 < n; i++ {
		net.Links = append(net.Links, Link{A: i, B: i + 1, DelayUS: delay})
	}
	return net
}

// RingTopology closes the line into a cycle.
func RingTopology(n int, delay int64) *Network {
	net := LineTopology(n, delay)
	net.Name = fmt.Sprintf("ring%d", n)
	if n > 2 {
		net.Links = append(net.Links, Link{A: n - 1, B: 0, DelayUS: delay})
	}
	return net
}

// StarTopology connects all nodes to hub 0.
func StarTopology(n int, delay int64) *Network {
	net := &Network{Name: fmt.Sprintf("star%d", n), Nodes: n}
	for i := 1; i < n; i++ {
		net.Links = append(net.Links, Link{A: 0, B: i, DelayUS: delay})
	}
	return net
}

// TreeTopology builds a complete binary tree.
func TreeTopology(n int, delay int64) *Network {
	net := &Network{Name: fmt.Sprintf("tree%d", n), Nodes: n}
	for i := 1; i < n; i++ {
		net.Links = append(net.Links, Link{A: (i - 1) / 2, B: i, DelayUS: delay})
	}
	return net
}

// RandomTopology builds a connected random graph with the requested number
// of edges (≥ n-1; extra edges are random chords). Edge count mirrors the
// paper's "three random topologies with 9, 18, and 27 edges".
func RandomTopology(n, edges int, seed int64) (*Network, error) {
	if edges < n-1 {
		return nil, fmt.Errorf("omnetpp: %d edges cannot connect %d nodes", edges, n)
	}
	maxEdges := n * (n - 1) / 2
	if edges > maxEdges {
		return nil, fmt.Errorf("omnetpp: %d edges exceeds the %d possible", edges, maxEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	net := &Network{Name: fmt.Sprintf("rand%d.%d", n, edges), Nodes: n}
	used := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || used[[2]int{a, b}] {
			return
		}
		used[[2]int{a, b}] = true
		net.Links = append(net.Links, Link{A: a, B: b, DelayUS: int64(1 + rng.Intn(8))})
	}
	// Random spanning tree first (connectedness).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[i], perm[rng.Intn(i)])
	}
	for len(net.Links) < edges {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	sort.Slice(net.Links, func(i, j int) bool {
		if net.Links[i].A != net.Links[j].A {
			return net.Links[i].A < net.Links[j].A
		}
		return net.Links[i].B < net.Links[j].B
	})
	return net, nil
}
