package omnetpp

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestEventHeapOrdering(t *testing.T) {
	h := &eventHeap{}
	times := []int64{50, 10, 30, 10, 90, 20}
	for i, tm := range times {
		h.push(event{time: tm, seq: int64(i)})
	}
	var got []int64
	for len(h.items) > 0 {
		got = append(got, h.pop().time)
	}
	want := append([]int64(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestEventHeapStableTieBreak(t *testing.T) {
	h := &eventHeap{}
	for i := 0; i < 10; i++ {
		h.push(event{time: 5, seq: int64(i)})
	}
	for i := 0; i < 10; i++ {
		if e := h.pop(); e.seq != int64(i) {
			t.Fatalf("tie-break broke FIFO: got seq %d at pos %d", e.seq, i)
		}
	}
}

func TestNEDRoundTrip(t *testing.T) {
	net := RingTopology(6, 4)
	parsed, err := ParseNED(net.FormatNED())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != net.Name || parsed.Nodes != net.Nodes || len(parsed.Links) != len(net.Links) {
		t.Errorf("round trip mismatch: %+v vs %+v", parsed, net)
	}
}

func TestParseNEDErrors(t *testing.T) {
	bad := []string{
		"nodes 0",
		"network x\nnodes 3\nlink 0 5 1",  // out of range
		"network x\nnodes 3\nlink 0 0 1",  // self loop
		"network x\nnodes 3\nfrobnicate",  // unknown directive
		"network x\nnodes 3\nlink 0 1 -2", // negative delay
	}
	for _, src := range bad {
		if _, err := ParseNED(src); !errors.Is(err, ErrBadNED) {
			t.Errorf("ParseNED(%q) err = %v, want ErrBadNED", src, err)
		}
	}
}

func TestParseNEDComments(t *testing.T) {
	src := "# a comment\nnetwork n\n\nnodes 2\nlink 0 1 3\n"
	net, err := ParseNED(src)
	if err != nil {
		t.Fatal(err)
	}
	if net.Nodes != 2 || len(net.Links) != 1 {
		t.Errorf("parsed %+v", net)
	}
}

func TestTopologyGenerators(t *testing.T) {
	cases := []struct {
		net       *Network
		wantLinks int
	}{
		{LineTopology(10, 1), 9},
		{RingTopology(10, 1), 10},
		{StarTopology(10, 1), 9},
		{TreeTopology(15, 1), 14},
	}
	for _, c := range cases {
		if err := c.net.Validate(); err != nil {
			t.Errorf("%s: %v", c.net.Name, err)
		}
		if len(c.net.Links) != c.wantLinks {
			t.Errorf("%s: %d links, want %d", c.net.Name, len(c.net.Links), c.wantLinks)
		}
	}
}

func TestRandomTopologyConnectedAndSized(t *testing.T) {
	for _, edges := range []int{9, 18, 27} {
		nodes := edges/2 + 3
		net, err := RandomTopology(nodes, edges, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(net.Links) != edges {
			t.Errorf("edges = %d, want %d", len(net.Links), edges)
		}
		// Connectivity check by union-find.
		parent := make([]int, net.Nodes)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, l := range net.Links {
			parent[find(l.A)] = find(l.B)
		}
		root := find(0)
		for i := 1; i < net.Nodes; i++ {
			if find(i) != root {
				t.Errorf("node %d disconnected in %s", i, net.Name)
			}
		}
	}
}

func TestRandomTopologyRejectsImpossible(t *testing.T) {
	if _, err := RandomTopology(10, 5, 1); err == nil {
		t.Error("too few edges should fail")
	}
	if _, err := RandomTopology(4, 100, 1); err == nil {
		t.Error("too many edges should fail")
	}
}

func TestSimulationDeliversTraffic(t *testing.T) {
	net := RingTopology(8, 2)
	sim, err := NewSimulator(net, Config{DurationUS: 20000, MeanInterarrivalUS: 50, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Delivered == 0 {
		t.Error("no messages delivered")
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d messages on a connected ring", st.Dropped)
	}
	if st.TotalLatencyUS <= 0 {
		t.Error("latency not accumulated")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() Stats {
		net := TreeTopology(15, 2)
		sim, err := NewSimulator(net, Config{DurationUS: 15000, MeanInterarrivalUS: 40, Seed: 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

func TestLongerSimulationProcessesMoreEvents(t *testing.T) {
	run := func(dur int64) uint64 {
		net := RingTopology(8, 2)
		sim, err := NewSimulator(net, Config{DurationUS: dur, MeanInterarrivalUS: 50, Seed: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().EventsProcessed
	}
	if short, long := run(5000), run(50000); long <= short {
		t.Errorf("longer horizon events %d should exceed %d", long, short)
	}
}

func TestTopologyAffectsHopCounts(t *testing.T) {
	avgHops := func(net *Network) float64 {
		sim, err := NewSimulator(net, Config{DurationUS: 30000, MeanInterarrivalUS: 50, Seed: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Run()
		if st.Delivered == 0 {
			t.Fatal("no deliveries")
		}
		return float64(st.TotalHops) / float64(st.Delivered)
	}
	line := avgHops(LineTopology(12, 2))
	star := avgHops(StarTopology(12, 2))
	// A line's average path is much longer than a star's (≤ 2 hops).
	if line <= star {
		t.Errorf("line avg hops %v should exceed star %v", line, star)
	}
	if star > 2.01 {
		t.Errorf("star avg hops = %v, want ≤ 2", star)
	}
}

func TestNewSimulatorRejectsBadConfig(t *testing.T) {
	net := RingTopology(4, 1)
	if _, err := NewSimulator(net, Config{DurationUS: 0, MeanInterarrivalUS: 10}, nil); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := NewSimulator(net, Config{DurationUS: 10, MeanInterarrivalUS: 0}, nil); err == nil {
		t.Error("zero interarrival should fail")
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	alberta := 0
	for _, w := range ws {
		names[w.WorkloadName()] = true
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 7 {
		t.Errorf("alberta workloads = %d, want 7 (paper ships seven)", alberta)
	}
	for _, want := range []string{"alberta.line", "alberta.ring", "alberta.star", "alberta.tree", "alberta.rand9", "alberta.rand18", "alberta.rand27"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestTrainAndRefShareTopology(t *testing.T) {
	// Fidelity check: SPEC's inputs differ only in simulated time.
	b := New()
	train, err := core.FindWorkload(b, "train")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.FindWorkload(b, "refrate")
	if err != nil {
		t.Fatal(err)
	}
	tw, rw := train.(Workload), ref.(Workload)
	if tw.NED != rw.NED {
		t.Error("train and refrate should share the topology")
	}
	if tw.Config.DurationUS >= rw.Config.DurationUS {
		t.Error("refrate should simulate longer than train")
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"schedule", "process_event", "route_packet"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloads(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("generated %d", len(ws))
	}
	for _, w := range ws {
		if _, err := ParseNED(w.(Workload).NED); err != nil {
			t.Errorf("generated NED invalid: %v", err)
		}
	}
}
