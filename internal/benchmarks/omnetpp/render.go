package omnetpp

import (
	"fmt"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: the NED file plus the
// configuration file, as distributed.
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	ow, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	ini := fmt.Sprintf("[General]\nsim-time-limit = %dus\nmean-interarrival = %gus\nseed = %d\n",
		ow.Config.DurationUS, ow.Config.MeanInterarrivalUS, ow.Config.Seed)
	return map[string][]byte{
		ow.Name + ".ned": []byte(ow.NED),
		"omnetpp.ini":    []byte(ini),
	}, nil
}
