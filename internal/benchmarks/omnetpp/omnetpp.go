package omnetpp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perf"
)

// Workload is one 520.omnetpp_r input: a NED-lite description plus a
// configuration.
type Workload struct {
	core.Meta
	NED    string
	Config Config
}

// Benchmark is the 520.omnetpp_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "520.omnetpp_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Discrete event simulation" }

// Workloads returns SPEC-style inputs (same topology, different simulated
// time — exactly the paper's observation about the distributed inputs) plus
// the seven Alberta topology workloads.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	specNet, err := RandomTopology(16, 24, 99)
	if err != nil {
		return nil, err
	}
	mk := func(name string, kind core.Kind, net *Network, dur int64, mean float64, seed int64) core.Workload {
		return Workload{
			Meta:   core.Meta{Name: name, Kind: kind},
			NED:    net.FormatNED(),
			Config: Config{DurationUS: dur, MeanInterarrivalUS: mean, Seed: seed},
		}
	}
	rand9, err := RandomTopology(8, 9, 301)
	if err != nil {
		return nil, err
	}
	rand18, err := RandomTopology(12, 18, 302)
	if err != nil {
		return nil, err
	}
	rand27, err := RandomTopology(14, 27, 303)
	if err != nil {
		return nil, err
	}
	return []core.Workload{
		mk("test", core.KindTest, specNet, 2_000, 50, 1),
		mk("train", core.KindTrain, specNet, 40_000, 50, 2),
		mk("refrate", core.KindRefrate, specNet, 200_000, 50, 3),
		mk("alberta.line", core.KindAlberta, LineTopology(12, 3), 120_000, 60, 11),
		mk("alberta.ring", core.KindAlberta, RingTopology(12, 3), 120_000, 60, 12),
		mk("alberta.star", core.KindAlberta, StarTopology(12, 3), 120_000, 60, 13),
		mk("alberta.tree", core.KindAlberta, TreeTopology(15, 3), 120_000, 60, 14),
		mk("alberta.rand9", core.KindAlberta, rand9, 120_000, 60, 15),
		mk("alberta.rand18", core.KindAlberta, rand18, 120_000, 60, 16),
		mk("alberta.rand27", core.KindAlberta, rand27, 120_000, 60, 17),
	}, nil
}

// GenerateWorkloads implements core.Generator: random topologies of varying
// size and edge density.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("omnetpp: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		nodes := 8 + (i%4)*4
		edges := nodes - 1 + (i%3)*nodes/2
		net, err := RandomTopology(nodes, edges, seed+int64(i))
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{
			Meta:   core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			NED:    net.FormatNED(),
			Config: Config{DurationUS: 100_000, MeanInterarrivalUS: 60, Seed: seed + int64(i)},
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the parsed network and the simulator whose routing tables
// (the expensive per-destination BFS construction) are built once; the
// simulator's run state is the scratch, reset in place per Execute.
type prepared struct {
	b   *Benchmark
	ow  Workload
	sim *Simulator
}

// Prepare implements core.Preparer: parse the NED file and build the
// routing tables once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	ow, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	net, err := ParseNED(ow.NED)
	if err != nil {
		return nil, fmt.Errorf("omnetpp: %s: %w", ow.Name, err)
	}
	sim, err := NewSimulator(net, ow.Config, nil)
	if err != nil {
		return nil, err
	}
	return &prepared{b: b, ow: ow, sim: sim}, nil
}

// Execute implements core.PreparedWorkload.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, ow := pw.b, pw.ow
	pw.sim.Reset(p)
	st := pw.sim.Run()
	if st.EventsProcessed == 0 {
		return core.Result{}, fmt.Errorf("omnetpp: %s: simulation processed no events", ow.Name)
	}
	sum := core.NewChecksum().
		AddUint64(st.EventsProcessed).
		AddUint64(st.Delivered).
		AddUint64(st.Dropped).
		AddUint64(uint64(st.TotalLatencyUS)).
		AddUint64(st.TotalHops)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  ow.Name,
		Kind:      ow.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
