// Package omnetpp reproduces 520.omnetpp_r: a discrete-event simulator of a
// message-passing network. A workload is a NED-lite network description plus
// a configuration (simulated duration, traffic intensity, seed). As the
// paper notes, SPEC's own train and ref inputs differ only in simulated
// time; the seven Alberta workloads instead vary the topology: line, ring,
// star, tree, and three random graphs with 9, 18 and 27 edges.
package omnetpp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/perf"
)

// Synthetic address bases for the modeled hierarchy.
const (
	heapBase  = 0x40_0000_0000
	msgBase   = 0x41_0000_0000
	tableBase = 0x42_0000_0000
)

// event is one scheduled occurrence.
type event struct {
	time int64 // microseconds of simulated time
	seq  int64 // tie-breaker for determinism
	kind eventKind
	msg  *message
	node int
}

type eventKind uint8

const (
	evArrival  eventKind = iota // message arrives at a node
	evGenerate                  // node creates new traffic
)

// message is a packet in flight.
type message struct {
	id       int64
	src, dst int
	hops     int
	created  int64
}

// eventHeap is a binary min-heap ordered by (time, seq).
type eventHeap struct {
	items []event
	p     *perf.Profiler
}

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].time != h.items[j].time {
		return h.items[i].time < h.items[j].time
	}
	return h.items[i].seq < h.items[j].seq
}

// push inserts an event (the simulator's scheduleAt).
func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		up := h.less(i, parent)
		if h.p != nil {
			h.p.Ops(3)
			h.p.Load(heapBase + uint64(parent)*48)
			h.p.Branch(30, up)
		}
		if !up {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		if h.p != nil {
			h.p.Store(heapBase + uint64(i)*48)
		}
		i = parent
	}
}

// pop removes the earliest event.
func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if h.p != nil {
			h.p.Ops(4)
			h.p.Load(heapBase + uint64(l%4096)*48)
			h.p.Branch(31, smallest != i)
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		if h.p != nil {
			h.p.Store(heapBase + uint64(i)*48)
		}
		i = smallest
	}
	return top
}

// Config is the simulation configuration file.
type Config struct {
	// DurationUS is the simulated time horizon in microseconds.
	DurationUS int64
	// MeanInterarrivalUS is the mean per-node traffic generation gap.
	MeanInterarrivalUS float64
	// Seed drives traffic randomness.
	Seed int64
}

// Stats summarizes a simulation run.
type Stats struct {
	EventsProcessed uint64
	Delivered       uint64
	Dropped         uint64
	TotalLatencyUS  int64
	TotalHops       uint64
}

// Simulator runs a network of store-and-forward nodes.
type Simulator struct {
	net  *Network
	cfg  Config
	p    *perf.Profiler
	rng  *rand.Rand
	heap eventHeap
	// next[from][to] is the next-hop neighbor on the shortest path.
	next  [][]int
	delay [][]int64 // per-edge propagation delay
	seq   int64
	msgID int64
	stats Stats
}

// NewSimulator prepares routing tables for the network.
func NewSimulator(net *Network, cfg Config, p *perf.Profiler) (*Simulator, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if cfg.DurationUS <= 0 || cfg.MeanInterarrivalUS <= 0 {
		return nil, fmt.Errorf("omnetpp: bad config %+v", cfg)
	}
	s := &Simulator{
		net: net, cfg: cfg, p: p,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		heap: eventHeap{p: p},
	}
	if p != nil {
		p.SetFootprint("schedule", 2<<10)
		p.SetFootprint("process_event", 6<<10)
		p.SetFootprint("route_packet", 3<<10)
	}
	n := net.Nodes
	s.next = make([][]int, n)
	s.delay = make([][]int64, n)
	adj := make([][]int, n)
	dly := make(map[[2]int]int64)
	for _, l := range net.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
		dly[[2]int{l.A, l.B}] = l.DelayUS
		dly[[2]int{l.B, l.A}] = l.DelayUS
	}
	// BFS from every destination to fill next-hop tables.
	for dst := 0; dst < n; dst++ {
		nh := make([]int, n)
		for i := range nh {
			nh[i] = -1
		}
		dist := make([]int, n)
		for i := range dist {
			dist[i] = math.MaxInt32
		}
		dist[dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] > dist[u]+1 {
					dist[v] = dist[u] + 1
					nh[v] = u // from v, step toward u to reach dst
					queue = append(queue, v)
				}
			}
		}
		s.next[dst] = nh
	}
	s.delay = make([][]int64, n)
	for i := 0; i < n; i++ {
		s.delay[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if d, ok := dly[[2]int{i, j}]; ok {
				s.delay[i][j] = d
			}
		}
	}
	return s, nil
}

// Reset returns the simulator to its initial pre-run state and re-aims it
// at p: rng reseeded from the config, heap emptied (its backing array is
// recycled), counters and stats zeroed. The routing and delay tables are
// untouched — they depend only on the immutable network, so one table
// construction serves every repetition.
func (s *Simulator) Reset(p *perf.Profiler) {
	s.p = p
	s.rng = rand.New(rand.NewSource(s.cfg.Seed))
	s.heap.p = p
	s.heap.items = s.heap.items[:0]
	s.seq = 0
	s.msgID = 0
	s.stats = Stats{}
	if p != nil {
		p.SetFootprint("schedule", 2<<10)
		p.SetFootprint("process_event", 6<<10)
		p.SetFootprint("route_packet", 3<<10)
	}
}

// schedule pushes an event at the given simulated time.
func (s *Simulator) schedule(t int64, kind eventKind, node int, msg *message) {
	if s.p != nil {
		s.p.Enter("schedule")
		defer s.p.Leave()
	}
	s.seq++
	s.heap.push(event{time: t, seq: s.seq, kind: kind, node: node, msg: msg})
}

// expInterval draws a deterministic exponential-ish interarrival time.
func (s *Simulator) expInterval() int64 {
	u := s.rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	iv := -s.cfg.MeanInterarrivalUS * math.Log(u)
	if iv < 1 {
		iv = 1
	}
	return int64(iv)
}

// Run executes the simulation to the configured horizon.
func (s *Simulator) Run() Stats {
	for node := 0; node < s.net.Nodes; node++ {
		s.schedule(s.expInterval(), evGenerate, node, nil)
	}
	for len(s.heap.items) > 0 {
		if s.p != nil {
			s.p.Enter("process_event")
		}
		ev := s.heap.pop()
		if ev.time > s.cfg.DurationUS {
			if s.p != nil {
				s.p.Leave()
			}
			break
		}
		s.stats.EventsProcessed++
		if s.p != nil {
			// Event handling touches module state, message payload and
			// gate tables scattered across a large simulation heap —
			// the pointer-chasing that makes omnetpp memory-bound.
			s.p.Ops(56)
			id := uint64(s.msgID) + uint64(ev.seq)
			s.p.Load(msgBase + (id*7919)%(24<<20))
			s.p.Load(tableBase + (id*31)%(8<<20))
			s.p.Store(msgBase + (id*13)%(24<<20))
		}
		switch ev.kind {
		case evGenerate:
			if s.net.Nodes > 1 {
				dst := s.rng.Intn(s.net.Nodes - 1)
				if dst >= ev.node {
					dst++
				}
				s.msgID++
				m := &message{id: s.msgID, src: ev.node, dst: dst, created: ev.time}
				if s.p != nil {
					s.p.Ops(12)
					s.p.Store(msgBase + uint64(m.id%65536)*64)
				}
				s.forward(ev.time, ev.node, m)
			}
			s.schedule(ev.time+s.expInterval(), evGenerate, ev.node, nil)
		case evArrival:
			m := ev.msg
			m.hops++
			if ev.node == m.dst {
				s.stats.Delivered++
				s.stats.TotalLatencyUS += ev.time - m.created
				s.stats.TotalHops += uint64(m.hops)
				if s.p != nil {
					s.p.Ops(6)
				}
			} else if m.hops > 4*s.net.Nodes {
				s.stats.Dropped++ // TTL guard (cannot trigger on trees/BFS routes)
			} else {
				s.forward(ev.time, ev.node, m)
			}
		}
		if s.p != nil {
			s.p.Leave()
		}
	}
	return s.stats
}

// forward routes m from node toward its destination.
func (s *Simulator) forward(now int64, node int, m *message) {
	if s.p != nil {
		s.p.Enter("route_packet")
		defer s.p.Leave()
	}
	nh := s.next[m.dst][node]
	if s.p != nil {
		s.p.Ops(5)
		s.p.Load(tableBase + uint64(m.dst*s.net.Nodes+node)*4)
		s.p.Branch(32, nh < 0)
	}
	if nh < 0 {
		s.stats.Dropped++ // unreachable (disconnected topology)
		return
	}
	// Service time models per-hop processing plus propagation.
	s.schedule(now+3+s.delay[node][nh], evArrival, nh, m)
}
