package omnetpp

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapMatchesSortProperty drains random event sets and compares the pop
// order with a stable sort by (time, seq).
func TestHeapMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		events := make([]event, n)
		for i := range events {
			events[i] = event{time: int64(rng.Intn(50)), seq: int64(i)}
		}
		h := &eventHeap{}
		for _, e := range events {
			h.push(e)
		}
		want := append([]event(nil), events...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].time != want[j].time {
				return want[i].time < want[j].time
			}
			return want[i].seq < want[j].seq
		})
		for i := 0; i < n; i++ {
			got := h.pop()
			if got.time != want[i].time || got.seq != want[i].seq {
				t.Fatalf("trial %d: pop %d = (%d,%d), want (%d,%d)",
					trial, i, got.time, got.seq, want[i].time, want[i].seq)
			}
		}
	}
}
