package omnetpp

import (
	"math/rand"
	"testing"
)

// TestParseNEDNeverPanics feeds random directive soup to the parser.
func TestParseNEDNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fragments := []string{
		"network", "nodes", "link", "n", "0", "1", "2", "-3", "x", "#c", "\n", " ",
	}
	for trial := 0; trial < 3000; trial++ {
		src := ""
		for k := 0; k < rng.Intn(16); k++ {
			src += fragments[rng.Intn(len(fragments))] + " "
		}
		if net, err := ParseNED(src); err == nil {
			// A parsed network must simulate without panicking.
			if sim, serr := NewSimulator(net, Config{DurationUS: 100, MeanInterarrivalUS: 10, Seed: 1}, nil); serr == nil {
				sim.Run()
			}
		}
	}
}
