package deepsjeng

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestPerftInitialPosition(t *testing.T) {
	// Standard perft values; depths 1-3 are unaffected by the omitted
	// castling/en-passant rules.
	b := StartPosition()
	for depth, want := range map[int]uint64{1: 20, 2: 400, 3: 8902} {
		if got := b.Perft(depth); got != want {
			t.Errorf("perft(%d) = %d, want %d", depth, got, want)
		}
	}
}

func TestFENRoundTrip(t *testing.T) {
	b := StartPosition()
	fen := b.FEN()
	if !strings.HasPrefix(fen, "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w") {
		t.Errorf("start FEN = %q", fen)
	}
	b2, err := ParseFEN(fen)
	if err != nil {
		t.Fatal(err)
	}
	if b2.FEN() != fen {
		t.Errorf("round trip: %q vs %q", b2.FEN(), fen)
	}
	if b2.Hash() != b.Hash() {
		t.Error("hash differs after FEN round trip")
	}
}

func TestParseFENErrors(t *testing.T) {
	bad := []string{
		"",
		"rnbqkbnr/pppppppp w", // 2 ranks
		"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR x",  // bad side
		"rnbqkbnr/ppppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w", // 9 files
		"rnbqkbnr/ppzppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w",  // bad piece
	}
	for _, fen := range bad {
		if _, err := ParseFEN(fen); !errors.Is(err, ErrBadFEN) {
			t.Errorf("ParseFEN(%q) err = %v, want ErrBadFEN", fen, err)
		}
	}
}

func TestMakeUnmakePreservesState(t *testing.T) {
	b := StartPosition()
	orig := *b
	for _, m := range b.LegalMoves() {
		u := b.MakeMove(m)
		b.UnmakeMove(u)
		if *b != orig {
			t.Fatalf("make/unmake of %+v corrupted the board", m)
		}
	}
}

func TestZobristIncrementalMatchesRecompute(t *testing.T) {
	b := StartPosition()
	moves := []Move{{From: 12, To: 28}, {From: 52, To: 36}, {From: 6, To: 21}}
	for _, m := range moves {
		b.MakeMove(m)
		inc := b.Hash()
		b.recomputeHash()
		if b.Hash() != inc {
			t.Fatalf("incremental hash diverged after move %+v", m)
		}
	}
}

func TestPromotion(t *testing.T) {
	b, err := ParseFEN("8/P6k/8/8/8/8/8/K7 w")
	if err != nil {
		t.Fatal(err)
	}
	moves := b.LegalMoves()
	var promo *Move
	for i, m := range moves {
		if m.From == 48 && m.To == 56 {
			promo = &moves[i]
		}
	}
	if promo == nil {
		t.Fatal("promotion move not generated")
	}
	b.MakeMove(*promo)
	if b.Squares[56] != Queen {
		t.Errorf("promoted piece = %v, want queen", b.Squares[56])
	}
}

func TestCheckDetection(t *testing.T) {
	b, err := ParseFEN("4k3/8/8/8/8/8/4R3/4K3 b") // rook gives check on e-file
	if err != nil {
		t.Fatal(err)
	}
	if !b.InCheck() {
		t.Error("black should be in check from the e2 rook")
	}
	// Every legal move must resolve the check.
	for _, m := range b.LegalMoves() {
		u := b.MakeMove(m)
		k := b.kingSquare(false)
		if b.SquareAttacked(k, true) {
			t.Errorf("move %+v leaves king in check", m)
		}
		b.UnmakeMove(u)
	}
}

func TestSearchFindsMateInOne(t *testing.T) {
	// Back-rank mate: Ra8#.
	b, err := ParseFEN("6k1/5ppp/8/8/8/8/8/R3K3 w")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(b, 14, nil)
	res := s.Analyze(3)
	if res.BestMove.From != 0 || res.BestMove.To != 56 {
		t.Errorf("best move = %+v, want Ra1-a8", res.BestMove)
	}
	if res.Score < mateScore-10 {
		t.Errorf("score = %d, want near-mate", res.Score)
	}
}

func TestSearchPrefersWinningCapture(t *testing.T) {
	// White queen on a1 can take the undefended black queen on a8.
	b, err := ParseFEN("q3k3/8/8/8/8/8/8/Q3K3 w")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(b, 14, nil)
	res := s.Analyze(4)
	if res.BestMove.To != 56 {
		t.Errorf("best move target = %d, want a8 (56)", res.BestMove.To)
	}
}

func TestSearchDeterministicNodeCount(t *testing.T) {
	run := func() uint64 {
		b := StartPosition()
		s := NewSearcher(b, 16, nil)
		s.Analyze(4)
		return s.Nodes
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("node counts: %d vs %d", a, b)
	}
}

func TestDeeperSearchVisitsMoreNodes(t *testing.T) {
	nodes := func(depth int) uint64 {
		b := StartPosition()
		s := NewSearcher(b, 16, nil)
		s.Analyze(depth)
		return s.Nodes
	}
	if n3, n5 := nodes(3), nodes(5); n5 <= n3 {
		t.Errorf("depth-5 nodes (%d) should exceed depth-3 (%d)", n5, n3)
	}
}

func TestGeneratePositionsValidAndDeterministic(t *testing.T) {
	a := GeneratePositions(7, 10)
	b := GeneratePositions(7, 10)
	if len(a) != 10 {
		t.Fatalf("generated %d positions", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("position %d differs across identical seeds", i)
		}
		board, err := ParseFEN(a[i])
		if err != nil {
			t.Errorf("position %d unparseable: %v", i, err)
			continue
		}
		if len(board.LegalMoves()) == 0 {
			t.Errorf("position %d has no legal moves", i)
		}
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
			dw := w.(Workload)
			if len(dw.Positions) != 8 {
				t.Errorf("%s has %d positions, want 8", dw.Name, len(dw.Positions))
			}
		}
	}
	if alberta != 9 {
		t.Errorf("alberta workloads = %d, want 9 (paper ships nine)", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	if rep.Coverage["search"] == 0 || rep.Coverage["evaluate"] == 0 {
		t.Errorf("expected search/evaluate in coverage, got %v", rep.Coverage)
	}
	// A game-tree search mispredicts: bad speculation should be visible,
	// as in the paper's Table II (s = 11.5 for deepsjeng).
	if rep.TopDown.BadSpec <= 0.005 {
		t.Errorf("bad speculation = %v, expected a visible fraction", rep.TopDown.BadSpec)
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloads(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d workloads", len(ws))
	}
	if _, err := b.GenerateWorkloads(5, 0); err == nil {
		t.Error("n=0 should fail")
	}
}
