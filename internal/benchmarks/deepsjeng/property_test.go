package deepsjeng

import (
	"math/rand"
	"testing"
)

// TestMakeUnmakeRandomWalk plays random legal games, unmaking every move in
// reverse, and checks the board returns to the exact original state —
// including the incremental Zobrist hash.
func TestMakeUnmakeRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		b := StartPosition()
		var undos []undo
		var hashes []uint64
		plies := 1 + rng.Intn(40)
		for i := 0; i < plies; i++ {
			moves := b.LegalMoves()
			if len(moves) == 0 {
				break
			}
			hashes = append(hashes, b.Hash())
			undos = append(undos, b.MakeMove(moves[rng.Intn(len(moves))]))
		}
		for i := len(undos) - 1; i >= 0; i-- {
			b.UnmakeMove(undos[i])
			if b.Hash() != hashes[i] {
				t.Fatalf("trial %d: hash mismatch at unmake %d", trial, i)
			}
		}
		if b.FEN() != StartPosition().FEN() {
			t.Fatalf("trial %d: board not restored: %s", trial, b.FEN())
		}
	}
}

// TestLegalMovesNeverLeaveKingInCheck is the core legality invariant.
func TestLegalMovesNeverLeaveKingInCheck(t *testing.T) {
	for _, fen := range GeneratePositions(55, 20) {
		b, err := ParseFEN(fen)
		if err != nil {
			t.Fatal(err)
		}
		mover := b.WhiteToMove
		for _, m := range b.LegalMoves() {
			u := b.MakeMove(m)
			k := b.kingSquare(mover)
			if k >= 0 && b.SquareAttacked(k, !mover) {
				t.Fatalf("position %q: move %+v leaves king attacked", fen, m)
			}
			b.UnmakeMove(u)
		}
	}
}
