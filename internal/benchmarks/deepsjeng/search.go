package deepsjeng

import (
	"repro/internal/perf"
)

// Evaluation material values in centipawns.
var pieceValue = [7]int{0, 100, 320, 330, 500, 900, 20000}

// Synthetic address bases for the modeled hierarchy.
const (
	ttBase    = 0x20_0000_0000
	boardBase = 0x21_0000_0000
)

// ttEntry is one transposition-table slot.
type ttEntry struct {
	key   uint64
	score int32
	depth int8
	flag  uint8 // 0 exact, 1 lower bound, 2 upper bound
	best  Move
}

const (
	ttExact = iota
	ttLower
	ttUpper
)

// Searcher runs fixed-depth alpha-beta analysis with a transposition table.
type Searcher struct {
	board *Board
	tt    []ttEntry
	p     *perf.Profiler
	// Nodes counts interior+leaf nodes visited (the benchmark's work
	// metric and checksum input).
	Nodes uint64
	// movesBuf reuses move slices per ply to avoid allocation noise.
	movesBuf [64][]Move
}

// NewSearcher builds a searcher with a table of 2^ttBits entries.
func NewSearcher(b *Board, ttBits uint, p *perf.Profiler) *Searcher {
	s := &Searcher{tt: make([]ttEntry, 1<<ttBits)}
	s.Reset(b, p)
	return s
}

// Reset re-aims the searcher at a new position and profiler, clearing the
// transposition table and node count in place. A cleared table is all-zero,
// exactly like a freshly allocated one, so a recycled searcher produces the
// same analysis — and the same probe-hit/miss event stream — as a fresh
// NewSearcher; one multi-megabyte table allocation serves a whole workload
// instead of one per position.
func (s *Searcher) Reset(b *Board, p *perf.Profiler) {
	s.board = b
	s.p = p
	s.Nodes = 0
	clear(s.tt)
	if p != nil {
		p.SetFootprint("search", 6<<10)
		p.SetFootprint("qsearch", 3<<10)
		p.SetFootprint("evaluate", 2<<10)
		p.SetFootprint("movegen", 4<<10)
	}
}

// evaluate scores the position from the side to move's perspective:
// material plus a small centralization term.
func (s *Searcher) evaluate() int {
	if s.p != nil {
		s.p.Enter("evaluate")
		defer s.p.Leave()
	}
	score := 0
	for sq, p := range s.board.Squares {
		if p == Empty {
			continue
		}
		v := pieceValue[abs8(p)]
		r, f := sq/8, sq%8
		center := 3 - max(absInt(2*r-7), absInt(2*f-7))/2
		v += 4 * center
		if p > 0 {
			score += v
		} else {
			score -= v
		}
	}
	if s.p != nil {
		s.p.Ops(64 * 3)
		s.p.Load(boardBase + uint64(s.board.hash%4096))
	}
	if !s.board.WhiteToMove {
		score = -score
	}
	return score
}

func abs8(p Piece) int {
	if p < 0 {
		return int(-p)
	}
	return int(p)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

const mateScore = 100000

// probe looks up the current position.
func (s *Searcher) probe() *ttEntry {
	idx := s.board.hash & uint64(len(s.tt)-1)
	e := &s.tt[idx]
	if s.p != nil {
		// Fused ops+branch, then the load: cross-channel reorder is
		// Report-invariant (DESIGN.md §10).
		s.p.OpsBranch(4, 10, e.key == s.board.hash)
		s.p.Load(ttBase + idx*24)
	}
	if e.key == s.board.hash {
		return e
	}
	return nil
}

// store records a search result (always-replace scheme).
func (s *Searcher) store(depth int, score int, flag uint8, best Move) {
	idx := s.board.hash & uint64(len(s.tt)-1)
	s.tt[idx] = ttEntry{key: s.board.hash, score: int32(score), depth: int8(depth), flag: flag, best: best}
	if s.p != nil {
		s.p.Ops(2)
		s.p.Store(ttBase + idx*24)
	}
}

// orderMoves sorts captures first (MVV-LVA) and the TT move to the front.
func (s *Searcher) orderMoves(moves []Move, ttMove Move) {
	if s.p != nil {
		s.p.Enter("movegen")
		defer s.p.Leave()
		s.p.Ops(uint64(len(moves)) * 4)
	}
	score := func(m Move) int {
		if m == ttMove {
			return 1 << 20
		}
		victim := s.board.Squares[m.To]
		if victim != Empty {
			return 1000*pieceValue[abs8(victim)] - pieceValue[abs8(s.board.Squares[m.From])]
		}
		return 0
	}
	// Insertion sort: move lists are short and mostly sorted.
	for i := 1; i < len(moves); i++ {
		m := moves[i]
		sc := score(m)
		j := i - 1
		for j >= 0 && score(moves[j]) < sc {
			moves[j+1] = moves[j]
			j--
		}
		moves[j+1] = m
		if s.p != nil {
			s.p.Branch(11, j != i-1)
		}
	}
}

// genLegal generates legal moves into the per-ply buffer.
func (s *Searcher) genLegal(ply int) []Move {
	if s.p != nil {
		s.p.Enter("movegen")
	}
	pseudo := s.board.GenMoves(s.movesBuf[ply][:0])
	if s.p != nil {
		s.p.Ops(uint64(len(pseudo)) * 6)
		s.p.Load(boardBase + uint64(s.board.hash%65536))
	}
	legal := pseudo[:0]
	for _, m := range pseudo {
		u := s.board.MakeMove(m)
		k := s.board.kingSquare(!s.board.WhiteToMove)
		ok := k >= 0 && !s.board.SquareAttacked(k, s.board.WhiteToMove)
		s.board.UnmakeMove(u)
		if s.p != nil {
			s.p.OpsBranch(12, 12, ok)
		}
		if ok {
			legal = append(legal, m)
		}
	}
	s.movesBuf[ply] = pseudo[:cap(pseudo)]
	if s.p != nil {
		s.p.Leave()
	}
	return legal
}

// qsearch resolves captures to quiet positions.
func (s *Searcher) qsearch(alpha, beta, ply int) int {
	s.Nodes++
	if s.p != nil {
		s.p.Enter("qsearch")
		defer s.p.Leave()
		s.p.Ops(8)
	}
	stand := s.evaluate()
	if stand >= beta {
		return beta
	}
	if stand > alpha {
		alpha = stand
	}
	if ply >= 32 {
		return alpha
	}
	moves := s.genLegal(ply)
	s.orderMoves(moves, Move{})
	for _, m := range moves {
		if s.board.Squares[m.To] == Empty {
			continue // captures only
		}
		u := s.board.MakeMove(m)
		score := -s.qsearch(-beta, -alpha, ply+1)
		s.board.UnmakeMove(u)
		cut := score >= beta
		if s.p != nil {
			s.p.Branch(13, cut)
		}
		if cut {
			return beta
		}
		if score > alpha {
			alpha = score
		}
	}
	return alpha
}

// alphaBeta is the main negamax search.
func (s *Searcher) alphaBeta(depth, alpha, beta, ply int) int {
	s.Nodes++
	if s.p != nil {
		s.p.Enter("search")
		defer s.p.Leave()
		s.p.Ops(10)
	}
	alphaOrig := alpha
	var ttMove Move
	if e := s.probe(); e != nil {
		ttMove = e.best
		if int(e.depth) >= depth {
			switch e.flag {
			case ttExact:
				return int(e.score)
			case ttLower:
				if int(e.score) > alpha {
					alpha = int(e.score)
				}
			case ttUpper:
				if int(e.score) < beta {
					beta = int(e.score)
				}
			}
			if alpha >= beta {
				return int(e.score)
			}
		}
	}
	if depth <= 0 {
		return s.qsearch(alpha, beta, ply)
	}
	moves := s.genLegal(ply)
	if len(moves) == 0 {
		if s.board.InCheck() {
			return -mateScore + ply // mated
		}
		return 0 // stalemate
	}
	s.orderMoves(moves, ttMove)
	best := -mateScore * 2
	var bestMove Move
	for _, m := range moves {
		u := s.board.MakeMove(m)
		score := -s.alphaBeta(depth-1, -beta, -alpha, ply+1)
		s.board.UnmakeMove(u)
		if score > best {
			best = score
			bestMove = m
		}
		if score > alpha {
			alpha = score
		}
		cut := alpha >= beta
		if s.p != nil {
			s.p.Branch(14, cut)
		}
		if cut {
			break
		}
	}
	flag := uint8(ttExact)
	if best <= alphaOrig {
		flag = ttUpper
	} else if best >= beta {
		flag = ttLower
	}
	s.store(depth, best, flag, bestMove)
	return best
}

// AnalysisResult is the outcome of analyzing one position.
type AnalysisResult struct {
	BestMove Move
	Score    int
	Nodes    uint64
	Depth    int
}

// Analyze runs iterative deepening to the given ply depth and returns the
// principal result.
func (s *Searcher) Analyze(depth int) AnalysisResult {
	var res AnalysisResult
	for d := 1; d <= depth; d++ {
		score := s.alphaBeta(d, -2*mateScore, 2*mateScore, 0)
		res.Score = score
		res.Depth = d
		if e := s.probe(); e != nil {
			res.BestMove = e.best
		}
	}
	res.Nodes = s.Nodes
	return res
}
