// Package deepsjeng reproduces 531.deepsjeng_r: a chess playing and
// analysis engine performing alpha-beta tree search with a transposition
// table, driven by workloads of FEN positions analyzed to a given ply depth
// (Section IV-A). The Alberta workload script's Arasan position suite is
// replaced by a deterministic position generator that plays out games with
// a weak randomized engine and records interesting middlegame positions.
//
// Simplifications relative to full chess (documented in DESIGN.md):
// castling and en passant are not implemented; pawns always promote to
// queens. These do not affect the benchmark's character (deep recursive
// search over a branching game tree with table lookups).
package deepsjeng

import (
	"errors"
	"fmt"
	"strings"
)

// Piece codes. Positive = white, negative = black, 0 = empty.
type Piece int8

// White piece codes; negate for black.
const (
	Empty  Piece = 0
	Pawn   Piece = 1
	Knight Piece = 2
	Bishop Piece = 3
	Rook   Piece = 4
	Queen  Piece = 5
	King   Piece = 6
)

// Board is a chess position in mailbox form: squares indexed rank*8+file,
// rank 0 = white's first rank.
type Board struct {
	Squares [64]Piece
	// WhiteToMove reports the side to move.
	WhiteToMove bool
	// hash is the incrementally maintained Zobrist key.
	hash uint64
}

// Move is a from/to square pair with promotion handled implicitly
// (pawns reaching the last rank become queens).
type Move struct {
	From, To int8
}

// zobrist keys: [piece+6][square], plus side to move.
var zobristTable [13][64]uint64
var zobristSide uint64

func init() {
	s := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for p := 0; p < 13; p++ {
		for sq := 0; sq < 64; sq++ {
			zobristTable[p][sq] = next()
		}
	}
	zobristSide = next()
}

// recomputeHash rebuilds the Zobrist key from scratch.
func (b *Board) recomputeHash() {
	h := uint64(0)
	for sq, p := range b.Squares {
		if p != Empty {
			h ^= zobristTable[p+6][sq]
		}
	}
	if !b.WhiteToMove {
		h ^= zobristSide
	}
	b.hash = h
}

// Hash returns the position's Zobrist key.
func (b *Board) Hash() uint64 { return b.hash }

// StartPosition returns the standard initial position.
func StartPosition() *Board {
	b := &Board{WhiteToMove: true}
	back := []Piece{Rook, Knight, Bishop, Queen, King, Bishop, Knight, Rook}
	for f := 0; f < 8; f++ {
		b.Squares[f] = back[f]
		b.Squares[8+f] = Pawn
		b.Squares[48+f] = -Pawn
		b.Squares[56+f] = -back[f]
	}
	b.recomputeHash()
	return b
}

// ErrBadFEN reports an unparseable FEN string.
var ErrBadFEN = errors.New("deepsjeng: bad FEN")

var fenPieces = map[byte]Piece{
	'P': Pawn, 'N': Knight, 'B': Bishop, 'R': Rook, 'Q': Queen, 'K': King,
	'p': -Pawn, 'n': -Knight, 'b': -Bishop, 'r': -Rook, 'q': -Queen, 'k': -King,
}

// ParseFEN parses the board and side-to-move fields of a FEN string
// (remaining fields are accepted and ignored).
func ParseFEN(fen string) (*Board, error) {
	fields := strings.Fields(fen)
	if len(fields) < 2 {
		return nil, fmt.Errorf("%w: %q", ErrBadFEN, fen)
	}
	b := &Board{}
	ranks := strings.Split(fields[0], "/")
	if len(ranks) != 8 {
		return nil, fmt.Errorf("%w: %d ranks", ErrBadFEN, len(ranks))
	}
	for r := 0; r < 8; r++ {
		rank := 7 - r // FEN starts at rank 8
		file := 0
		for i := 0; i < len(ranks[r]); i++ {
			ch := ranks[r][i]
			if ch >= '1' && ch <= '8' {
				file += int(ch - '0')
				continue
			}
			p, ok := fenPieces[ch]
			if !ok || file > 7 {
				return nil, fmt.Errorf("%w: rank %q", ErrBadFEN, ranks[r])
			}
			b.Squares[rank*8+file] = p
			file++
		}
		if file != 8 {
			return nil, fmt.Errorf("%w: rank %q has %d files", ErrBadFEN, ranks[r], file)
		}
	}
	switch fields[1] {
	case "w":
		b.WhiteToMove = true
	case "b":
		b.WhiteToMove = false
	default:
		return nil, fmt.Errorf("%w: side %q", ErrBadFEN, fields[1])
	}
	b.recomputeHash()
	return b, nil
}

// FEN renders the position's board and side fields.
func (b *Board) FEN() string {
	names := map[Piece]byte{
		Pawn: 'P', Knight: 'N', Bishop: 'B', Rook: 'R', Queen: 'Q', King: 'K',
		-Pawn: 'p', -Knight: 'n', -Bishop: 'b', -Rook: 'r', -Queen: 'q', -King: 'k',
	}
	var sb strings.Builder
	for r := 7; r >= 0; r-- {
		empty := 0
		for f := 0; f < 8; f++ {
			p := b.Squares[r*8+f]
			if p == Empty {
				empty++
				continue
			}
			if empty > 0 {
				sb.WriteByte(byte('0' + empty))
				empty = 0
			}
			sb.WriteByte(names[p])
		}
		if empty > 0 {
			sb.WriteByte(byte('0' + empty))
		}
		if r > 0 {
			sb.WriteByte('/')
		}
	}
	if b.WhiteToMove {
		sb.WriteString(" w")
	} else {
		sb.WriteString(" b")
	}
	return sb.String()
}

// undo captures the state needed to unmake a move.
type undo struct {
	move     Move
	captured Piece
	moved    Piece // pre-promotion piece
	hash     uint64
}

// MakeMove applies m (assumed pseudo-legal) and returns the undo record.
func (b *Board) MakeMove(m Move) undo {
	u := undo{move: m, captured: b.Squares[m.To], moved: b.Squares[m.From], hash: b.hash}
	p := b.Squares[m.From]
	// Update hash: remove moving piece from origin, any capture from
	// target, place (possibly promoted) piece.
	b.hash ^= zobristTable[p+6][m.From]
	if u.captured != Empty {
		b.hash ^= zobristTable[u.captured+6][m.To]
	}
	placed := p
	if p == Pawn && m.To >= 56 {
		placed = Queen
	} else if p == -Pawn && m.To < 8 {
		placed = -Queen
	}
	b.hash ^= zobristTable[placed+6][m.To]
	b.hash ^= zobristSide
	b.Squares[m.To] = placed
	b.Squares[m.From] = Empty
	b.WhiteToMove = !b.WhiteToMove
	return u
}

// UnmakeMove reverses a MakeMove.
func (b *Board) UnmakeMove(u undo) {
	b.Squares[u.move.From] = u.moved
	b.Squares[u.move.To] = u.captured
	b.WhiteToMove = !b.WhiteToMove
	b.hash = u.hash
}

// pieceDirs holds sliding/stepping offsets as (dr, df) pairs.
var (
	knightSteps = [8][2]int{{1, 2}, {2, 1}, {2, -1}, {1, -2}, {-1, -2}, {-2, -1}, {-2, 1}, {-1, 2}}
	kingSteps   = [8][2]int{{1, 0}, {1, 1}, {0, 1}, {-1, 1}, {-1, 0}, {-1, -1}, {0, -1}, {1, -1}}
	bishopDirs  = [4][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	rookDirs    = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
)

// SquareAttacked reports whether sq is attacked by the given side.
func (b *Board) SquareAttacked(sq int, byWhite bool) bool {
	r, f := sq/8, sq%8
	sign := Piece(1)
	if !byWhite {
		sign = -1
	}
	// Pawn attacks: a white pawn on r-1 attacks r.
	pr := r - 1
	if !byWhite {
		pr = r + 1
	}
	if pr >= 0 && pr < 8 {
		for _, df := range []int{-1, 1} {
			pf := f + df
			if pf >= 0 && pf < 8 && b.Squares[pr*8+pf] == sign*Pawn {
				return true
			}
		}
	}
	for _, st := range knightSteps {
		nr, nf := r+st[0], f+st[1]
		if nr >= 0 && nr < 8 && nf >= 0 && nf < 8 && b.Squares[nr*8+nf] == sign*Knight {
			return true
		}
	}
	for _, st := range kingSteps {
		nr, nf := r+st[0], f+st[1]
		if nr >= 0 && nr < 8 && nf >= 0 && nf < 8 && b.Squares[nr*8+nf] == sign*King {
			return true
		}
	}
	slide := func(dirs [4][2]int, p1, p2 Piece) bool {
		for _, d := range dirs {
			nr, nf := r+d[0], f+d[1]
			for nr >= 0 && nr < 8 && nf >= 0 && nf < 8 {
				q := b.Squares[nr*8+nf]
				if q != Empty {
					if q == p1 || q == p2 {
						return true
					}
					break
				}
				nr += d[0]
				nf += d[1]
			}
		}
		return false
	}
	if slide(bishopDirs, sign*Bishop, sign*Queen) {
		return true
	}
	return slide(rookDirs, sign*Rook, sign*Queen)
}

// kingSquare locates the given side's king (-1 if absent).
func (b *Board) kingSquare(white bool) int {
	want := King
	if !white {
		want = -King
	}
	for sq, p := range b.Squares {
		if p == want {
			return sq
		}
	}
	return -1
}

// InCheck reports whether the side to move is in check.
func (b *Board) InCheck() bool {
	k := b.kingSquare(b.WhiteToMove)
	if k < 0 {
		return false
	}
	return b.SquareAttacked(k, !b.WhiteToMove)
}

// GenMoves appends all pseudo-legal moves for the side to move to buf and
// returns it. Captures of the king never occur because search prunes
// illegal positions.
func (b *Board) GenMoves(buf []Move) []Move {
	white := b.WhiteToMove
	for sq := 0; sq < 64; sq++ {
		p := b.Squares[sq]
		if p == Empty || (p > 0) != white {
			continue
		}
		r, f := sq/8, sq%8
		add := func(nr, nf int) bool {
			// Returns true when sliding may continue past (nr,nf).
			if nr < 0 || nr > 7 || nf < 0 || nf > 7 {
				return false
			}
			t := b.Squares[nr*8+nf]
			if t == Empty {
				buf = append(buf, Move{From: int8(sq), To: int8(nr*8 + nf)})
				return true
			}
			if (t > 0) != white {
				buf = append(buf, Move{From: int8(sq), To: int8(nr*8 + nf)})
			}
			return false
		}
		switch p {
		case Pawn, -Pawn:
			dir := 1
			startRank := 1
			if p < 0 {
				dir = -1
				startRank = 6
			}
			if nr := r + dir; nr >= 0 && nr < 8 {
				if b.Squares[nr*8+f] == Empty {
					buf = append(buf, Move{From: int8(sq), To: int8(nr*8 + f)})
					if r == startRank && b.Squares[(r+2*dir)*8+f] == Empty {
						buf = append(buf, Move{From: int8(sq), To: int8((r+2*dir)*8 + f)})
					}
				}
				for _, df := range []int{-1, 1} {
					nf := f + df
					if nf >= 0 && nf < 8 {
						t := b.Squares[nr*8+nf]
						if t != Empty && (t > 0) != white {
							buf = append(buf, Move{From: int8(sq), To: int8(nr*8 + nf)})
						}
					}
				}
			}
		case Knight, -Knight:
			for _, st := range knightSteps {
				add(r+st[0], f+st[1])
			}
		case King, -King:
			for _, st := range kingSteps {
				add(r+st[0], f+st[1])
			}
		case Bishop, -Bishop:
			for _, d := range bishopDirs {
				for nr, nf := r+d[0], f+d[1]; add(nr, nf); nr, nf = nr+d[0], nf+d[1] {
				}
			}
		case Rook, -Rook:
			for _, d := range rookDirs {
				for nr, nf := r+d[0], f+d[1]; add(nr, nf); nr, nf = nr+d[0], nf+d[1] {
				}
			}
		case Queen, -Queen:
			for _, d := range bishopDirs {
				for nr, nf := r+d[0], f+d[1]; add(nr, nf); nr, nf = nr+d[0], nf+d[1] {
				}
			}
			for _, d := range rookDirs {
				for nr, nf := r+d[0], f+d[1]; add(nr, nf); nr, nf = nr+d[0], nf+d[1] {
				}
			}
		}
	}
	return buf
}

// LegalMoves filters GenMoves by king safety.
func (b *Board) LegalMoves() []Move {
	pseudo := b.GenMoves(nil)
	legal := pseudo[:0]
	for _, m := range pseudo {
		u := b.MakeMove(m)
		k := b.kingSquare(!b.WhiteToMove) // mover's king after the move
		ok := k >= 0 && !b.SquareAttacked(k, b.WhiteToMove)
		b.UnmakeMove(u)
		if ok {
			legal = append(legal, m)
		}
	}
	return legal
}

// Perft counts leaf nodes of the legal move tree to the given depth
// (validation helper).
func (b *Board) Perft(depth int) uint64 {
	if depth == 0 {
		return 1
	}
	var total uint64
	for _, m := range b.LegalMoves() {
		u := b.MakeMove(m)
		total += b.Perft(depth - 1)
		b.UnmakeMove(u)
	}
	return total
}
