package deepsjeng

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// Position is one analysis task: a FEN position and its ply depth, matching
// the paper's workload format ("a chess position in FEN ... and the depth
// to which this position should be analyzed").
type Position struct {
	FEN   string
	Depth int
}

// Workload is a set of positions, as produced by the Alberta workload
// script (eight positions per workload in the paper's nine workloads).
type Workload struct {
	core.Meta
	Positions []Position
}

// GeneratePositions plays deterministic weak-engine games from the start
// position and records middlegame positions. It substitutes for the Arasan
// test-suite file the paper's script reads.
func GeneratePositions(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	var out []string
	for len(out) < n {
		b := StartPosition()
		plies := 8 + rng.Intn(30)
		ok := true
		for i := 0; i < plies; i++ {
			moves := b.LegalMoves()
			if len(moves) == 0 {
				ok = false
				break
			}
			// Prefer captures occasionally to create sharp positions.
			var m Move
			if rng.Intn(3) == 0 {
				captures := moves[:0:0]
				for _, c := range moves {
					if b.Squares[c.To] != Empty {
						captures = append(captures, c)
					}
				}
				if len(captures) > 0 {
					m = captures[rng.Intn(len(captures))]
				} else {
					m = moves[rng.Intn(len(moves))]
				}
			} else {
				m = moves[rng.Intn(len(moves))]
			}
			b.MakeMove(m)
		}
		if ok && len(b.LegalMoves()) > 0 {
			out = append(out, b.FEN())
		}
	}
	return out
}

// Benchmark is the 531.deepsjeng_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "531.deepsjeng_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "AI: alpha-beta tree search" }

// suitePositions is the shared position pool (the stand-in for Arasan's 946
// test positions); generated once, deterministically.
var suitePositions = GeneratePositions(977, 96)

// workloadFromPool builds a workload of n positions drawn from the pool
// with depths in [minDepth, maxDepth], mirroring the Alberta script's
// parameters (positions per workload, ply-depth range).
func workloadFromPool(name string, kind core.Kind, seed int64, n, minDepth, maxDepth int) Workload {
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Meta: core.Meta{Name: name, Kind: kind}}
	for i := 0; i < n; i++ {
		w.Positions = append(w.Positions, Position{
			FEN:   suitePositions[rng.Intn(len(suitePositions))],
			Depth: minDepth + rng.Intn(maxDepth-minDepth+1),
		})
	}
	return w
}

// Workloads returns SPEC-style inputs plus nine Alberta workloads of eight
// positions each (the paper's counts; ply depths are scaled down from 11-16
// to 3-5 so the modeled engine finishes in reasonable wall time).
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	ws := []core.Workload{
		workloadFromPool("test", core.KindTest, 1, 2, 2, 2),
		workloadFromPool("train", core.KindTrain, 2, 4, 3, 4),
		workloadFromPool("refrate", core.KindRefrate, 3, 6, 4, 5),
	}
	for i := 0; i < 9; i++ {
		ws = append(ws, workloadFromPool(
			fmt.Sprintf("alberta.%d", i+1), core.KindAlberta,
			100+int64(i), 8, 3, 5))
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("deepsjeng: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		out = append(out, workloadFromPool(
			core.GeneratedName(seed, i), core.KindAlberta, seed+int64(i), 8, 3, 5))
	}
	return out, nil
}

// Run implements core.Benchmark: analyze every position to its depth. It is
// exactly Prepare followed by Execute, so prepared and cold runs share one
// code path.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared is the workload's parsed positions (immutable after Prepare)
// plus the reusable search scratch: one board copy target and one searcher
// whose transposition table is cleared in place between positions and
// between Execute calls.
type prepared struct {
	b      *Benchmark
	w      Workload
	boards []Board // parsed FENs; immutable
	// scratch
	board    Board
	searcher *Searcher
}

// Prepare implements core.Preparer: parse every FEN once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	dw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	pw := &prepared{b: b, w: dw, boards: make([]Board, 0, len(dw.Positions))}
	for i, pos := range dw.Positions {
		board, err := ParseFEN(pos.FEN)
		if err != nil {
			return nil, fmt.Errorf("deepsjeng: %s position %d: %w", dw.Name, i, err)
		}
		pw.boards = append(pw.boards, *board)
	}
	return pw, nil
}

// Execute implements core.PreparedWorkload: analyze every prepared position,
// copying it into the scratch board (the search mutates its board in place)
// and recycling one searcher across positions and repetitions.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	sum := core.NewChecksum()
	for i, pos := range pw.w.Positions {
		pw.board = pw.boards[i]
		if pw.searcher == nil {
			pw.searcher = NewSearcher(&pw.board, 18, p)
		} else {
			pw.searcher.Reset(&pw.board, p)
		}
		res := pw.searcher.Analyze(pos.Depth)
		sum = sum.AddUint64(res.Nodes).
			AddUint64(uint64(int64(res.Score))).
			AddUint64(uint64(res.BestMove.From)<<8 | uint64(res.BestMove.To))
	}
	return core.Result{
		Benchmark: pw.b.Name(),
		Workload:  pw.w.Name,
		Kind:      pw.w.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
