package deepsjeng

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: the EPD-style position list
// the workload script emits (FEN plus the analysis depth).
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	dw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	var sb strings.Builder
	for _, pos := range dw.Positions {
		fmt.Fprintf(&sb, "%s ; depth %d\n", pos.FEN, pos.Depth)
	}
	return map[string][]byte{dw.Name + ".epd": []byte(sb.String())}, nil
}
