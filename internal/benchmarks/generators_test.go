package benchmarks

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

// generatorBenchmarks returns every generator-capable benchmark of the
// full suite (all but perlbench, matching the paper).
func generatorBenchmarks(t *testing.T) []core.Benchmark {
	t.Helper()
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	var out []core.Benchmark
	for _, b := range suite.Benchmarks() {
		if _, ok := b.(core.Generator); ok {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		t.Fatal("no generator-capable benchmarks in the suite")
	}
	return out
}

// TestGeneratorProvenanceNames pins the core.Generator naming contract:
// workload i of a seed must be named core.GeneratedName(seed, i) and carry
// KindAlberta, so the name alone records how to regenerate the workload.
func TestGeneratorProvenanceNames(t *testing.T) {
	const seed, n = 77, 4
	for _, b := range generatorBenchmarks(t) {
		ws, err := b.(core.Generator).GenerateWorkloads(seed, n)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if len(ws) != n {
			t.Fatalf("%s: %d workloads, want %d", b.Name(), len(ws), n)
		}
		for i, w := range ws {
			if want := core.GeneratedName(seed, i); w.WorkloadName() != want {
				t.Errorf("%s: workload %d named %q, want %q", b.Name(), i, w.WorkloadName(), want)
			}
			if w.WorkloadKind() != core.KindAlberta {
				t.Errorf("%s/%s: kind %v, want alberta", b.Name(), w.WorkloadName(), w.WorkloadKind())
			}
		}
	}
}

// TestGeneratorPrefixStability pins the contract's prefix property: the
// i-th workload of a seed is the same whether generated as part of 2 or 5,
// so a workload's identity never depends on the sweep size that minted it.
func TestGeneratorPrefixStability(t *testing.T) {
	const seed = 31
	for _, b := range generatorBenchmarks(t) {
		gen := b.(core.Generator)
		short, err := gen.GenerateWorkloads(seed, 2)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		long, err := gen.GenerateWorkloads(seed, 5)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		for i := range short {
			if !reflect.DeepEqual(short[i], long[i]) {
				t.Errorf("%s: workload %d differs between n=2 and n=5 generations", b.Name(), i)
			}
		}
	}
}

// TestGeneratorSameSeedDeterminism proves same-seed generation is
// bit-identical across calls for every generator-capable benchmark: the
// workload values themselves (including any rendered file bytes) and the
// checksum + full profiler report of executing them.
func TestGeneratorSameSeedDeterminism(t *testing.T) {
	const seed, n = 42, 2
	for _, b := range generatorBenchmarks(t) {
		gen := b.(core.Generator)
		a, err := gen.GenerateWorkloads(seed, n)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		c, err := gen.GenerateWorkloads(seed, n)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if !reflect.DeepEqual(a, c) {
			t.Errorf("%s: same-seed generations differ", b.Name())
		}
		if r, ok := b.(core.FileRenderer); ok {
			fa, err := r.RenderWorkload(a[0])
			if err != nil {
				t.Fatalf("%s: render: %v", b.Name(), err)
			}
			fc, err := r.RenderWorkload(c[0])
			if err != nil {
				t.Fatalf("%s: render: %v", b.Name(), err)
			}
			if !reflect.DeepEqual(fa, fc) {
				t.Errorf("%s: rendered workload bytes differ between same-seed generations", b.Name())
			}
		}
		// Execute the first workload of each generation: checksums and the
		// full modeled report must be bit-identical.
		pa := perf.NewWithOptions(perf.Options{Stride: 4})
		ra, err := b.Run(a[0], pa)
		if err != nil {
			t.Fatalf("%s/%s: %v", b.Name(), a[0].WorkloadName(), err)
		}
		pc := perf.NewWithOptions(perf.Options{Stride: 4})
		rc, err := b.Run(c[0], pc)
		if err != nil {
			t.Fatalf("%s/%s: %v", b.Name(), c[0].WorkloadName(), err)
		}
		if ra.Checksum != rc.Checksum {
			t.Errorf("%s: same-seed checksums differ: %016x vs %016x", b.Name(), ra.Checksum, rc.Checksum)
		}
		repA, repC := pa.Report(), pc.Report()
		repA.WallTime, repC.WallTime = 0, 0
		repA.Methods = append([]perf.MethodProfile(nil), repA.Methods...)
		repC.Methods = append([]perf.MethodProfile(nil), repC.Methods...)
		if !reflect.DeepEqual(repA, repC) {
			t.Errorf("%s: same-seed profiler reports differ", b.Name())
		}
	}
}

// TestResolveWorkloadRegenerates proves a generated workload can be
// reconstructed from its name alone — the property that lets sweep cells
// execute on remote workers that never saw the original generation call.
func TestResolveWorkloadRegenerates(t *testing.T) {
	for _, b := range generatorBenchmarks(t) {
		ws, err := b.(core.Generator).GenerateWorkloads(9, 3)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		got, err := core.ResolveWorkload(b, ws[2].WorkloadName())
		if err != nil {
			t.Fatalf("%s: resolve %s: %v", b.Name(), ws[2].WorkloadName(), err)
		}
		if !reflect.DeepEqual(got, ws[2]) {
			t.Errorf("%s: resolved workload differs from the generated original", b.Name())
		}
		// Inventory names keep resolving through the same entry point.
		inv, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.ResolveWorkload(b, inv[0].WorkloadName()); err != nil {
			t.Errorf("%s: inventory workload %q failed to resolve: %v", b.Name(), inv[0].WorkloadName(), err)
		}
		if _, err := core.ResolveWorkload(b, "no-such-workload"); err == nil {
			t.Errorf("%s: unknown name resolved", b.Name())
		}
	}
}
