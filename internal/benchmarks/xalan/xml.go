// Package xalan reproduces 523.xalancbmk_r: an XML document transformer.
// A workload pairs an XML input with a stylesheet written in an XSLT-like
// template language (the paper: "one also needs to provide a .xsl file that
// describes, in a Xalan-specific language, the transformation"). The
// Alberta workloads are reproduced with an XSLTMark-style record-set
// generator (same format, different sizes, one stylesheet) and an
// XMark-style auction-site generator whose eighteen queries are combined
// into a single stylesheet, as the paper describes.
package xalan

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/perf"
)

// NodeKind distinguishes element and text nodes.
type NodeKind uint8

// Node kinds.
const (
	ElementNode NodeKind = iota
	TextNode
)

// Node is one XML tree node.
type Node struct {
	Kind     NodeKind
	Name     string // element name (ElementNode only)
	Text     string // text content (TextNode only)
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// Attr is one attribute.
type Attr struct {
	Name, Value string
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// TextContent concatenates all descendant text.
func (n *Node) TextContent() string {
	if n.Kind == TextNode {
		return n.Text
	}
	var sb strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == TextNode {
			sb.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return sb.String()
}

// ErrBadXML reports a malformed document.
var ErrBadXML = errors.New("xalan: malformed XML")

// parseAddr is the synthetic address base for parser working data.
const parseAddr = 0x50_0000_0000

// Parser is a small non-validating XML parser (elements, attributes, text,
// comments; predefined entities lt/gt/amp/quot/apos).
type Parser struct {
	src string
	pos int
	p   *perf.Profiler
}

// ParseXML parses a document and returns its root element.
func ParseXML(src string, p *perf.Profiler) (*Node, error) {
	ps := &Parser{src: src, p: p}
	if p != nil {
		p.SetFootprint("parse_xml", 8<<10)
		p.Enter("parse_xml")
		defer p.Leave()
	}
	ps.skipSpaceAndMisc()
	root, err := ps.parseElement()
	if err != nil {
		return nil, err
	}
	ps.skipSpaceAndMisc()
	if ps.pos != len(ps.src) {
		return nil, fmt.Errorf("%w: trailing content at %d", ErrBadXML, ps.pos)
	}
	return root, nil
}

func (ps *Parser) skipSpaceAndMisc() {
	for ps.pos < len(ps.src) {
		c := ps.src[ps.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			ps.pos++
			continue
		}
		if strings.HasPrefix(ps.src[ps.pos:], "<!--") {
			end := strings.Index(ps.src[ps.pos+4:], "-->")
			if end < 0 {
				ps.pos = len(ps.src)
				return
			}
			ps.pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(ps.src[ps.pos:], "<?") {
			end := strings.Index(ps.src[ps.pos:], "?>")
			if end < 0 {
				ps.pos = len(ps.src)
				return
			}
			ps.pos += end + 2
			continue
		}
		return
	}
}

func isNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (ps *Parser) parseName() (string, error) {
	start := ps.pos
	for ps.pos < len(ps.src) && isNameChar(ps.src[ps.pos]) {
		ps.pos++
	}
	if ps.pos == start {
		return "", fmt.Errorf("%w: expected name at %d", ErrBadXML, ps.pos)
	}
	return ps.src[start:ps.pos], nil
}

func (ps *Parser) skipSpace() {
	for ps.pos < len(ps.src) {
		c := ps.src[ps.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		ps.pos++
	}
}

func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	r := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&quot;", `"`, "&apos;", "'", "&amp;", "&")
	return r.Replace(s)
}

func (ps *Parser) parseElement() (*Node, error) {
	if ps.pos >= len(ps.src) || ps.src[ps.pos] != '<' {
		return nil, fmt.Errorf("%w: expected '<' at %d", ErrBadXML, ps.pos)
	}
	ps.pos++
	name, err := ps.parseName()
	if err != nil {
		return nil, err
	}
	n := &Node{Kind: ElementNode, Name: name}
	if ps.p != nil {
		ps.p.Ops(uint64(4 + len(name)))
		ps.p.Load(parseAddr + uint64(ps.pos%(1<<20)))
	}
	// Attributes.
	for {
		ps.skipSpace()
		if ps.pos >= len(ps.src) {
			return nil, fmt.Errorf("%w: unterminated tag %q", ErrBadXML, name)
		}
		if ps.src[ps.pos] == '/' {
			if ps.pos+1 < len(ps.src) && ps.src[ps.pos+1] == '>' {
				ps.pos += 2
				return n, nil
			}
			return nil, fmt.Errorf("%w: stray '/' at %d", ErrBadXML, ps.pos)
		}
		if ps.src[ps.pos] == '>' {
			ps.pos++
			break
		}
		aname, err := ps.parseName()
		if err != nil {
			return nil, err
		}
		ps.skipSpace()
		if ps.pos >= len(ps.src) || ps.src[ps.pos] != '=' {
			return nil, fmt.Errorf("%w: attribute %q missing '='", ErrBadXML, aname)
		}
		ps.pos++
		ps.skipSpace()
		if ps.pos >= len(ps.src) || (ps.src[ps.pos] != '"' && ps.src[ps.pos] != '\'') {
			return nil, fmt.Errorf("%w: attribute %q missing quote", ErrBadXML, aname)
		}
		quote := ps.src[ps.pos]
		ps.pos++
		end := strings.IndexByte(ps.src[ps.pos:], quote)
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated attribute %q", ErrBadXML, aname)
		}
		n.Attrs = append(n.Attrs, Attr{Name: aname, Value: decodeEntities(ps.src[ps.pos : ps.pos+end])})
		ps.pos += end + 1
		if ps.p != nil {
			ps.p.Ops(uint64(6 + end))
			ps.p.Branch(40, true)
		}
	}
	// Content.
	for {
		if ps.pos >= len(ps.src) {
			return nil, fmt.Errorf("%w: unterminated element %q", ErrBadXML, name)
		}
		if strings.HasPrefix(ps.src[ps.pos:], "<!--") {
			end := strings.Index(ps.src[ps.pos+4:], "-->")
			if end < 0 {
				return nil, fmt.Errorf("%w: unterminated comment", ErrBadXML)
			}
			ps.pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(ps.src[ps.pos:], "</") {
			ps.pos += 2
			cname, err := ps.parseName()
			if err != nil {
				return nil, err
			}
			if cname != name {
				return nil, fmt.Errorf("%w: mismatched </%s> for <%s>", ErrBadXML, cname, name)
			}
			ps.skipSpace()
			if ps.pos >= len(ps.src) || ps.src[ps.pos] != '>' {
				return nil, fmt.Errorf("%w: bad close tag </%s>", ErrBadXML, cname)
			}
			ps.pos++
			return n, nil
		}
		if ps.src[ps.pos] == '<' {
			child, err := ps.parseElement()
			if err != nil {
				return nil, err
			}
			child.Parent = n
			n.Children = append(n.Children, child)
			continue
		}
		// Text run.
		end := strings.IndexByte(ps.src[ps.pos:], '<')
		if end < 0 {
			return nil, fmt.Errorf("%w: text outside element", ErrBadXML)
		}
		raw := ps.src[ps.pos : ps.pos+end]
		ps.pos += end
		if strings.TrimSpace(raw) != "" {
			n.Children = append(n.Children, &Node{Kind: TextNode, Text: decodeEntities(raw), Parent: n})
			if ps.p != nil {
				ps.p.Ops(uint64(len(raw)))
			}
		}
	}
}

// escape encodes text for serialization.
func escape(s string) string {
	if !strings.ContainsAny(s, "<>&\"") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Serialize renders the tree back to markup.
func Serialize(n *Node, p *perf.Profiler) string {
	if p != nil {
		p.SetFootprint("serialize", 3<<10)
		p.Enter("serialize")
		defer p.Leave()
	}
	var sb strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == TextNode {
			sb.WriteString(escape(m.Text))
			if p != nil {
				p.Ops(uint64(len(m.Text)))
			}
			return
		}
		sb.WriteByte('<')
		sb.WriteString(m.Name)
		for _, a := range m.Attrs {
			fmt.Fprintf(&sb, " %s=%q", a.Name, escape(a.Value))
		}
		if len(m.Children) == 0 {
			sb.WriteString("/>")
			return
		}
		sb.WriteByte('>')
		for _, c := range m.Children {
			walk(c)
		}
		sb.WriteString("</")
		sb.WriteString(m.Name)
		sb.WriteByte('>')
		if p != nil {
			p.Ops(uint64(8 + len(m.Name)))
			p.Store(parseAddr + uint64(sb.Len()%(1<<20)))
		}
	}
	walk(n)
	return sb.String()
}
