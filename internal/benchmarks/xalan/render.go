package xalan

import (
	"fmt"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: the XML document and its
// .xsl transformation file (the pairing Section IV-A explains every valid
// workload needs).
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	xw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	return map[string][]byte{
		xw.Name + ".xml": []byte(xw.XML),
		xw.Name + ".xsl": []byte(xw.Stylesheet),
	}, nil
}
