package xalan

import (
	"math/rand"
	"testing"
)

// TestParseXMLNeverPanics feeds random byte soup and structured fragments
// to the parser: it must return errors, not panic.
func TestParseXMLNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := `<>/="' abcxyz&;!?-`
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(80)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		_, _ = ParseXML(string(b), nil) // must not panic
	}
}

// TestCompileStylesheetNeverPanics does the same for the stylesheet
// compiler, seeding with almost-valid documents.
func TestCompileStylesheetNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fragments := []string{
		"<stylesheet>", "</stylesheet>", "<template", " match=\"x\">",
		"<value-of select=\".\"/>", "</template>", "<for-each", ">", "text",
	}
	for trial := 0; trial < 1000; trial++ {
		src := ""
		for k := 0; k < rng.Intn(8); k++ {
			src += fragments[rng.Intn(len(fragments))]
		}
		if ss, err := CompileStylesheet(src); err == nil {
			// If it compiled, it must also transform without panicking.
			doc, derr := ParseXML("<r><a>1</a></r>", nil)
			if derr == nil {
				_ = NewTransformer(ss, nil).Transform(doc)
			}
		}
	}
}
