package xalan

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

// runBoth transforms one document through the retained tree-walker and the
// compiled instruction stream, returning rendered output and the modeled
// event reports of the transform phase for each.
func runBoth(t *testing.T, xml, ss string) (string, string, perf.Report, perf.Report) {
	t.Helper()
	sheet, err := CompileStylesheet(ss)
	if err != nil {
		t.Fatalf("compile stylesheet: %v", err)
	}
	doc, err := ParseXML(xml, nil)
	if err != nil {
		t.Fatalf("parse xml: %v", err)
	}

	p1 := perf.NewWithOptions(perf.Options{Stride: 1})
	treeOut := NewTransformer(sheet, p1).Transform(doc)
	r1 := p1.Report()
	r1.WallTime = 0

	p2 := perf.NewWithOptions(perf.Options{Stride: 1})
	compOut := compileSheet(sheet).transform(doc, p2)
	r2 := p2.Report()
	r2.WallTime = 0

	return Serialize(treeOut, nil), Serialize(compOut, nil), r1, r2
}

// assertSameTransform requires the two engines to agree on output and on
// the full event stream — the bit-identity contract for the compiled path.
func assertSameTransform(t *testing.T, xml, ss string) {
	t.Helper()
	treeStr, compStr, treeRep, compRep := runBoth(t, xml, ss)
	if treeStr != compStr {
		t.Errorf("output diverges\ntree: %q\ncompiled: %q", treeStr, compStr)
	}
	if !reflect.DeepEqual(treeRep, compRep) {
		t.Errorf("profiler report diverges\ntree: %+v\ncompiled: %+v", treeRep, compRep)
	}
}

// TestCompiledMatchesTreeWalk sweeps every xalan workload through both
// engines. The two largest inputs join under ALBERTA_DIFF_FULL=1.
func TestCompiledMatchesTreeWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"
	ws, err := New().Workloads()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		xw := w.(Workload)
		if !full && (xw.WorkloadKind() == core.KindRefrate || xw.Name == "alberta.xsltmark-large" || xw.Name == "alberta.xmark-large") {
			continue
		}
		t.Run(xw.Name, func(t *testing.T) {
			assertSameTransform(t, xw.XML, xw.Stylesheet)
		})
	}
}

// TestCompiledMatchesTreeWalkCorners pins the semantic corners of template
// dispatch and selection on both engines.
func TestCompiledMatchesTreeWalkCorners(t *testing.T) {
	doc := `<site a="1"><people><person id="p0"><name>ann</name></person><person id="p1"><name>bob</name></person></people><regions><region name="ca"><item><price>5</price></item></region></regions>note</site>`
	sheets := []string{
		// text() template, wildcard fallback, apply without select.
		`<stylesheet><template match="/"><apply-templates/></template><template match="text()"><text value="[T]"/></template><template match="*"><element name="w"><value-of select="name()"/></element><apply-templates/></template></stylesheet>`,
		// Descendant select, multi-step paths with wildcard steps, count.
		`<stylesheet><template match="/"><count select="//name"/><count select="people/*"/><count select="*/*"/><for-each select="//person"><value-of select="@id"/></for-each></template></stylesheet>`,
		// Predicates: eq over attr and path, bare attr, bare path, name().
		`<stylesheet><template match="/"><if test="@a='1'"><text value="A"/></if><for-each select="people/person"><if test="name='ann'"><text value="N"/></if><if test="@id"><text value="I"/></if><if test="missing"><text value="M"/></if><if test="name()='person'"><text value="P"/></if></for-each></template></stylesheet>`,
		// Unknown instructions copy through as literals; attribute + "." and
		// "" selects; nested elements.
		`<stylesheet><template match="/"><div class="x"><attribute name="all" select="."/><value-of select=""/><span><value-of select="regions/region/item/price"/></span></div></template></stylesheet>`,
		// Name-dispatch templates ahead of root; built-in recursion reaches
		// person before any template matches site.
		`<stylesheet><template match="person"><element name="p"><value-of select="name"/></element></template><template match="name"><text value="never"/></template></stylesheet>`,
	}
	for _, ss := range sheets {
		assertSameTransform(t, doc, ss)
	}
}

// TestPreparedUsesCompiledSheet proves Prepare lowers the stylesheet and
// repeated Executes on one prepared workload stay bit-identical.
func TestPreparedUsesCompiledSheet(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	pwp, err := b.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	if pwp.(*prepared).cs == nil {
		t.Fatal("prepared workload missing compiled sheet")
	}
	var first core.Result
	var firstRep perf.Report
	for rep := 0; rep < 4; rep++ {
		p := perf.NewWithOptions(perf.Options{Stride: 1})
		res, err := pwp.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Report()
		r.WallTime = 0
		r.Methods = append([]perf.MethodProfile(nil), r.Methods...)
		if rep == 0 {
			first, firstRep = res, r
			continue
		}
		if res.Checksum != first.Checksum {
			t.Errorf("rep %d checksum %x != first %x", rep, res.Checksum, first.Checksum)
		}
		if !reflect.DeepEqual(r, firstRep) {
			t.Errorf("rep %d report diverges from first", rep)
		}
	}
}

// FuzzMatchPatternDifferential fuzzes the pre-decomposed pattern space —
// template match patterns, select paths, and predicates — through both
// engines and requires identical output and event streams.
func FuzzMatchPatternDifferential(f *testing.F) {
	for _, seed := range [][3]string{
		{"person", "people/person", "name='ann'"},
		{"*", "//name", "@id"},
		{"text()", ".", "missing"},
		{"/", "*/*", "name()='site'"},
		{"name", "//", "=x"},
		{"people", "a//b", "@="},
		{"", "people/", "people='x'"},
	} {
		f.Add(seed[0], seed[1], seed[2])
	}
	doc := `<site a="1"><people><person id="p0"><name>ann</name></person></people>tail</site>`
	xmlSafe := func(s string) bool {
		if len(s) > 24 || strings.ContainsAny(s, "<>&\"'") {
			return false
		}
		for i := 0; i < len(s); i++ {
			if s[i] < 0x20 || s[i] >= 0x7f {
				return false
			}
		}
		return true
	}
	f.Fuzz(func(t *testing.T, match, sel, test string) {
		if !xmlSafe(match) || !xmlSafe(sel) || !xmlSafe(test) {
			t.Skip()
		}
		ss := `<stylesheet><template match="/"><for-each select="` + sel + `"><value-of select="` + sel + `"/></for-each><if test="` + test + `"><text value="hit"/></if><apply-templates/></template><template match="` + match + `"><count select="` + sel + `"/></template><template match="*"><apply-templates/></template></stylesheet>`
		if _, err := CompileStylesheet(ss); err != nil {
			t.Skip() // fuzzed string broke the XML shape itself
		}
		assertSameTransform(t, doc, ss)
	})
}

// BenchmarkTransform compares the two engines on the train-sized records
// workload, uninstrumented (document parsed outside the loop).
func BenchmarkTransform(b *testing.B) {
	xml := GenerateRecordsXML(1500, 2)
	sheet, err := CompileStylesheet(RecordsStylesheet)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := ParseXML(xml, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewTransformer(sheet, nil).Transform(doc)
		}
	})
	cs := compileSheet(sheet)
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cs.transform(doc, nil)
		}
	})
}
