package xalan

import (
	"strconv"
	"strings"

	"repro/internal/perf"
)

// This file is the compiled execution engine for stylesheets: templates are
// lowered once, at Prepare time, to an instruction stream with every string
// decision pre-decomposed — match patterns classified, select paths split
// into steps, instruction names and attribute lookups resolved to enum tags
// and struct fields. The tree-walking Transformer in xslt.go is retained as
// the differential reference; both engines emit the same modeled event
// stream and produce the same output tree, which the tests in
// compiled_test.go enforce bit-for-bit.

// matchKind classifies a template match pattern.
type matchKind uint8

const (
	matchName matchKind = iota // plain element name
	matchRoot                  // "/"
	matchText                  // "text()"
	matchWild                  // "*"
)

// cselKind classifies a select path.
type cselKind uint8

const (
	selSelf    cselKind = iota // "" or "."
	selDescend                 // "//name" or "//*"
	selPath                    // "a/b/c", single names and "*" steps
)

// cstep is one pre-split path step.
type cstep struct {
	name string
	wild bool
}

// csel is a pre-decomposed select expression.
type csel struct {
	kind  cselKind
	name  string // descend: element name ("" from a bare "//")
	wild  bool   // descend: "*"
	steps []cstep
}

// cvalKind classifies a value expression.
type cvalKind uint8

const (
	valSelf cvalKind = iota // "" or "." → context text content
	valName                 // "name()"
	valAttr                 // "@attr"
	valPath                 // node path, first match's text
)

// cval is a pre-decomposed value expression.
type cval struct {
	kind cvalKind
	attr string
	sel  csel
}

// ctestKind classifies a predicate.
type ctestKind uint8

const (
	testEq         ctestKind = iota // lhs='v'
	testAttrExists                  // "@attr"
	testPathExists                  // bare path
)

// ctest is a pre-parsed predicate.
type ctest struct {
	kind ctestKind
	lhs  cval
	rhs  string
	attr string
	sel  csel
}

// xop is a compiled instruction opcode.
type xop uint8

const (
	xText     xop = iota // literal text node from the template body
	xElement             // <element name=...>
	xAttr                // <attribute name=... select=...>
	xValueOf             // <value-of select=...>
	xCount               // <count select=...>
	xApplySel            // <apply-templates select=...>
	xApplyAll            // <apply-templates> without select
	xForEach             // <for-each select=...>
	xIf                  // <if test=...>
	xTextLit             // <text value=...>
	xLiteral             // unknown instruction copied through
)

// cinstr is one pre-decoded instruction.
type cinstr struct {
	op   xop
	text string // xText text, xElement/xAttr name, xTextLit value, xLiteral name
	val  cval   // xAttr, xValueOf
	sel  csel   // xCount, xApplySel, xForEach
	test ctest  // xIf
	attrs []Attr // xLiteral attribute copy
	body  []cinstr
}

// ctemplate is one compiled match rule. name keeps the original match
// string for all kinds: findTemplate's element-name comparison is a raw
// string compare in the reference engine (an element literally named "*"
// name-matches a wildcard template), and the compiled engine mirrors that.
type ctemplate struct {
	kind matchKind
	name string
	body []cinstr
}

// compiledSheet is the lowered stylesheet program.
type compiledSheet struct {
	templates []ctemplate
}

// compileSel pre-decomposes a select expression. Every string survives
// decomposition exactly as selectNodes would interpret it at run time, so
// compilation cannot fail.
func compileSel(sel string) csel {
	if sel == "" || sel == "." {
		return csel{kind: selSelf}
	}
	if rest, ok := strings.CutPrefix(sel, "//"); ok {
		return csel{kind: selDescend, name: rest, wild: rest == "*"}
	}
	parts := strings.Split(sel, "/")
	steps := make([]cstep, len(parts))
	for i, s := range parts {
		steps[i] = cstep{name: s, wild: s == "*"}
	}
	return csel{kind: selPath, steps: steps}
}

// compileVal pre-decomposes a value expression, in valueOf's case order.
func compileVal(sel string) cval {
	switch {
	case sel == "" || sel == ".":
		return cval{kind: valSelf}
	case sel == "name()":
		return cval{kind: valName}
	case strings.HasPrefix(sel, "@"):
		return cval{kind: valAttr, attr: sel[1:]}
	default:
		return cval{kind: valPath, sel: compileSel(sel)}
	}
}

// compileTest pre-parses a predicate, in evalTest's case order.
func compileTest(test string) ctest {
	if eq := strings.Index(test, "="); eq >= 0 {
		lhs := strings.TrimSpace(test[:eq])
		rhs := strings.Trim(strings.TrimSpace(test[eq+1:]), "'\"")
		return ctest{kind: testEq, lhs: compileVal(lhs), rhs: rhs}
	}
	if strings.HasPrefix(test, "@") {
		return ctest{kind: testAttrExists, attr: test[1:]}
	}
	return ctest{kind: testPathExists, sel: compileSel(test)}
}

// compileBody lowers a template body to the instruction stream.
func compileBody(body []*Node) []cinstr {
	out := make([]cinstr, 0, len(body))
	for _, instr := range body {
		if instr.Kind == TextNode {
			out = append(out, cinstr{op: xText, text: instr.Text})
			continue
		}
		switch instr.Name {
		case "element":
			name, _ := instr.Attr("name")
			out = append(out, cinstr{op: xElement, text: name, body: compileBody(instr.Children)})
		case "attribute":
			name, _ := instr.Attr("name")
			sel, _ := instr.Attr("select")
			out = append(out, cinstr{op: xAttr, text: name, val: compileVal(sel)})
		case "value-of":
			sel, _ := instr.Attr("select")
			out = append(out, cinstr{op: xValueOf, val: compileVal(sel)})
		case "count":
			sel, _ := instr.Attr("select")
			out = append(out, cinstr{op: xCount, sel: compileSel(sel)})
		case "apply-templates":
			sel, hasSel := instr.Attr("select")
			if hasSel {
				out = append(out, cinstr{op: xApplySel, sel: compileSel(sel)})
			} else {
				out = append(out, cinstr{op: xApplyAll})
			}
		case "for-each":
			sel, _ := instr.Attr("select")
			out = append(out, cinstr{op: xForEach, sel: compileSel(sel), body: compileBody(instr.Children)})
		case "if":
			test, _ := instr.Attr("test")
			out = append(out, cinstr{op: xIf, test: compileTest(test), body: compileBody(instr.Children)})
		case "text":
			v, _ := instr.Attr("value")
			out = append(out, cinstr{op: xTextLit, text: v})
		default:
			out = append(out, cinstr{op: xLiteral, text: instr.Name, attrs: instr.Attrs, body: compileBody(instr.Children)})
		}
	}
	return out
}

// compileSheet lowers a parsed stylesheet to its instruction-stream form.
func compileSheet(ss *Stylesheet) *compiledSheet {
	cs := &compiledSheet{templates: make([]ctemplate, len(ss.templates))}
	for i, tpl := range ss.templates {
		kind := matchName
		switch tpl.match {
		case "/":
			kind = matchRoot
		case "text()":
			kind = matchText
		case "*":
			kind = matchWild
		}
		cs.templates[i] = ctemplate{kind: kind, name: tpl.match, body: compileBody(tpl.body)}
	}
	return cs
}

// cexec executes a compiled sheet. It declares the same footprints and
// emits the same event stream as NewTransformer + Transform.
type cexec struct {
	cs *compiledSheet
	p  *perf.Profiler
}

// transform mirrors Transformer.Transform on the compiled program.
func (cs *compiledSheet) transform(root *Node, p *perf.Profiler) *Node {
	if p != nil {
		p.SetFootprint("match_template", 5<<10)
		p.SetFootprint("exec_template", 6<<10)
		p.SetFootprint("select_nodes", 4<<10)
		p.SetFootprint("exec_valueof", 2<<10)
		p.SetFootprint("exec_foreach", 2<<10)
		p.SetFootprint("exec_if", 2<<10)
	}
	e := &cexec{cs: cs, p: p}
	out := &Node{Kind: ElementNode, Name: "out"}
	e.applyTo(root, out, true)
	return out
}

// findTemplate mirrors Transformer.findTemplate: the full template scan,
// one Ops(3)+Load+Branch(41) triple per rule, first hit wins, first
// wildcard is the fallback.
func (e *cexec) findTemplate(n *Node, isRoot bool) *ctemplate {
	if e.p != nil {
		e.p.Enter("match_template")
		defer e.p.Leave()
	}
	var wildcard *ctemplate
	for i := range e.cs.templates {
		tpl := &e.cs.templates[i]
		var hit bool
		switch {
		case n.Kind == TextNode:
			hit = tpl.kind == matchText
		case isRoot && tpl.kind == matchRoot:
			hit = true
		case tpl.name == n.Name:
			hit = true
		case tpl.kind == matchWild:
			if wildcard == nil {
				wildcard = tpl
			}
		}
		if e.p != nil {
			e.p.Ops(3)
			e.p.Load(parseAddr + uint64(i)*64)
			e.p.Branch(41, hit)
		}
		if hit {
			return tpl
		}
	}
	return wildcard
}

// applyTo mirrors Transformer.applyTo, including the built-in rules.
func (e *cexec) applyTo(n *Node, parent *Node, isRoot bool) {
	tpl := e.findTemplate(n, isRoot)
	if tpl == nil {
		if n.Kind == TextNode {
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: n.Text, Parent: parent})
			return
		}
		for _, c := range n.Children {
			e.applyTo(c, parent, false)
		}
		return
	}
	if e.p != nil {
		e.p.Enter("exec_template")
		defer e.p.Leave()
	}
	e.execBody(tpl.body, n, parent)
}

// execBody is the compiled dispatch loop: a flat switch over pre-decoded
// opcodes in place of per-instruction name comparisons and attribute scans.
func (e *cexec) execBody(body []cinstr, ctx *Node, parent *Node) {
	for i := range body {
		in := &body[i]
		switch in.op {
		case xText:
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: in.text, Parent: parent})
			if e.p != nil {
				e.p.Ops(uint64(len(in.text)))
			}
		case xElement:
			el := &Node{Kind: ElementNode, Name: in.text, Parent: parent}
			parent.Children = append(parent.Children, el)
			e.execBody(in.body, ctx, el)
		case xAttr:
			parent.Attrs = append(parent.Attrs, Attr{Name: in.text, Value: e.valueOf(&in.val, ctx)})
		case xValueOf:
			if e.p != nil {
				e.p.Enter("exec_valueof")
			}
			v := e.valueOf(&in.val, ctx)
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: v, Parent: parent})
			if e.p != nil {
				e.p.Ops(uint64(4 + len(v)))
				e.p.Leave()
			}
		case xCount:
			nodes := e.selectNodes(&in.sel, ctx)
			parent.Children = append(parent.Children, &Node{
				Kind: TextNode, Text: strconv.Itoa(len(nodes)), Parent: parent,
			})
		case xApplySel:
			for _, target := range e.selectNodes(&in.sel, ctx) {
				e.applyTo(target, parent, false)
			}
		case xApplyAll:
			for _, target := range ctx.Children {
				e.applyTo(target, parent, false)
			}
		case xForEach:
			if e.p != nil {
				e.p.Enter("exec_foreach")
			}
			for _, target := range e.selectNodes(&in.sel, ctx) {
				e.execBody(in.body, target, parent)
				if e.p != nil {
					e.p.Ops(4)
					e.p.Branch(42, true)
				}
			}
			if e.p != nil {
				e.p.Leave()
			}
		case xIf:
			if e.p != nil {
				e.p.Enter("exec_if")
			}
			pass := e.evalTest(&in.test, ctx)
			if e.p != nil {
				e.p.Ops(6)
				e.p.Branch(43, pass)
				e.p.Leave()
			}
			if pass {
				e.execBody(in.body, ctx, parent)
			}
		case xTextLit:
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: in.text, Parent: parent})
		case xLiteral:
			el := &Node{Kind: ElementNode, Name: in.text, Attrs: in.attrs, Parent: parent}
			parent.Children = append(parent.Children, el)
			e.execBody(in.body, ctx, el)
		}
	}
}

// selectNodes mirrors Transformer.selectNodes on the pre-split path: the
// same Ops/Branch(44) cadence per candidate per step.
func (e *cexec) selectNodes(sel *csel, ctx *Node) []*Node {
	if e.p != nil {
		e.p.Enter("select_nodes")
		defer e.p.Leave()
	}
	switch sel.kind {
	case selSelf:
		return []*Node{ctx}
	case selDescend:
		var out []*Node
		var walk func(*Node)
		walk = func(n *Node) {
			if e.p != nil {
				e.p.Ops(2)
			}
			for _, c := range n.Children {
				if c.Kind == ElementNode {
					if c.Name == sel.name || sel.wild {
						out = append(out, c)
					}
					walk(c)
				}
			}
		}
		walk(ctx)
		return out
	default:
		current := []*Node{ctx}
		for _, step := range sel.steps {
			var next []*Node
			for _, n := range current {
				for _, c := range n.Children {
					match := c.Kind == ElementNode && (c.Name == step.name || step.wild)
					if e.p != nil {
						e.p.Ops(2)
						e.p.Branch(44, match)
					}
					if match {
						next = append(next, c)
					}
				}
			}
			current = next
		}
		return current
	}
}

// valueOf mirrors Transformer.valueOf on the pre-classified expression.
func (e *cexec) valueOf(v *cval, ctx *Node) string {
	switch v.kind {
	case valSelf:
		return ctx.TextContent()
	case valName:
		return ctx.Name
	case valAttr:
		s, _ := ctx.Attr(v.attr)
		return s
	default:
		nodes := e.selectNodes(&v.sel, ctx)
		if len(nodes) == 0 {
			return ""
		}
		return nodes[0].TextContent()
	}
}

// evalTest mirrors Transformer.evalTest on the pre-parsed predicate.
func (e *cexec) evalTest(t *ctest, ctx *Node) bool {
	switch t.kind {
	case testEq:
		return e.valueOf(&t.lhs, ctx) == t.rhs
	case testAttrExists:
		_, ok := ctx.Attr(t.attr)
		return ok
	default:
		return len(e.selectNodes(&t.sel, ctx)) > 0
	}
}
