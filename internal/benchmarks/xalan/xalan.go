package xalan

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/perf"
)

// Workload is one 523.xalancbmk_r input: an XML document plus the
// stylesheet describing its transformation.
type Workload struct {
	core.Meta
	XML        string
	Stylesheet string
}

// GenerateRecordsXML emits an XSLTMark-style record set: the same format at
// any size, so one stylesheet processes all of them (the paper's script
// "to produce new random XML files with different sizes but with the same
// format").
func GenerateRecordsXML(records int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"widget", "gadget", "sprocket", "gizmo", "doohickey", "contraption"}
	var sb strings.Builder
	sb.WriteString("<records>\n")
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb, `<record id="%d" category="c%d">`, i, rng.Intn(5))
		fmt.Fprintf(&sb, "<name>%s-%d</name>", names[rng.Intn(len(names))], rng.Intn(1000))
		fmt.Fprintf(&sb, "<price>%d.%02d</price>", 1+rng.Intn(500), rng.Intn(100))
		fmt.Fprintf(&sb, "<qty>%d</qty>", rng.Intn(100))
		fmt.Fprintf(&sb, "<desc>item description %d with some text body</desc>", rng.Intn(10000))
		sb.WriteString("</record>\n")
	}
	sb.WriteString("</records>")
	return sb.String()
}

// RecordsStylesheet converts a record set to an HTML-ish table.
const RecordsStylesheet = `<stylesheet>
<template match="/">
  <element name="html"><element name="body">
    <element name="table"><apply-templates select="record"/></element>
  </element></element>
</template>
<template match="record">
  <element name="tr">
    <attribute name="id" select="@id"/>
    <element name="td"><value-of select="name"/></element>
    <element name="td"><value-of select="price"/></element>
    <if test="@category='c0'">
      <element name="td"><text value="featured"/></element>
    </if>
    <if test="qty">
      <element name="td"><value-of select="qty"/></element>
    </if>
  </element>
</template>
</stylesheet>`

// GenerateAuctionXML emits an XMark-style auction site document: people,
// regional items and bids.
func GenerateAuctionXML(people, items, bids int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	countries := []string{"ca", "br", "us", "de", "jp", "au"}
	var sb strings.Builder
	sb.WriteString("<site><people>\n")
	for i := 0; i < people; i++ {
		fmt.Fprintf(&sb, `<person id="p%d"><name>person%d</name><country>%s</country><income>%d</income></person>`,
			i, i, countries[rng.Intn(len(countries))], 20000+rng.Intn(120000))
		sb.WriteString("\n")
	}
	sb.WriteString("</people><regions>\n")
	perRegion := items/len(countries) + 1
	id := 0
	for _, c := range countries {
		fmt.Fprintf(&sb, `<region name="%s">`, c)
		for j := 0; j < perRegion && id < items; j++ {
			fmt.Fprintf(&sb, `<item id="i%d"><name>item%d</name><price>%d</price><quantity>%d</quantity></item>`,
				id, id, 1+rng.Intn(900), 1+rng.Intn(10))
			id++
		}
		sb.WriteString("</region>\n")
	}
	sb.WriteString("</regions><bids>\n")
	for i := 0; i < bids; i++ {
		fmt.Fprintf(&sb, `<bid person="p%d" item="i%d" amount="%d"/>`,
			rng.Intn(people), rng.Intn(items), 1+rng.Intn(1500))
		sb.WriteString("\n")
	}
	sb.WriteString("</bids></site>")
	return sb.String()
}

// AuctionStylesheet combines eighteen XMark-style queries into one
// transformation, as the paper's combined workload does.
const AuctionStylesheet = `<stylesheet>
<template match="/">
  <element name="report">
    <element name="q1"><count select="people/person"/></element>
    <element name="q2"><count select="//item"/></element>
    <element name="q3"><count select="bids/bid"/></element>
    <element name="q4"><for-each select="people/person"><if test="country='ca'"><element name="hit"><value-of select="name"/></element></if></for-each></element>
    <element name="q5"><for-each select="//item"><if test="quantity='1'"><element name="rare"><value-of select="@id"/></element></if></for-each></element>
    <element name="q6"><for-each select="regions/region"><element name="region"><attribute name="name" select="@name"/><count select="item"/></element></for-each></element>
    <element name="q7"><for-each select="people/person"><element name="income"><value-of select="income"/></element></for-each></element>
    <element name="q8"><for-each select="bids/bid"><if test="@amount='100'"><element name="exact"/></if></for-each></element>
    <element name="q9"><for-each select="//item"><element name="price"><value-of select="price"/></element></for-each></element>
    <element name="q10"><count select="regions/region"/></element>
    <element name="q11"><for-each select="people/person"><if test="income"><element name="earns"><value-of select="@id"/></element></if></for-each></element>
    <element name="q12"><for-each select="regions/region"><if test="@name='br'"><count select="item"/></if></for-each></element>
    <element name="q13"><for-each select="//item"><element name="named"><value-of select="name"/></element></for-each></element>
    <element name="q14"><for-each select="bids/bid"><element name="b"><attribute name="who" select="@person"/></element></for-each></element>
    <element name="q15"><count select="people/person/name"/></element>
    <element name="q16"><for-each select="regions/region/item"><if test="price='500'"><element name="mid"/></if></for-each></element>
    <element name="q17"><for-each select="people/person"><element name="c"><value-of select="country"/></element></for-each></element>
    <element name="q18"><count select="//name"/></element>
  </element>
</template>
</stylesheet>`

// Benchmark is the 523.xalancbmk_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "523.xalancbmk_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "XML to HTML conversion" }

// Workloads returns SPEC-style inputs plus the five Alberta workloads from
// the XSLTMark- and XMark-derived generators.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, xml, ss string) core.Workload {
		return Workload{Meta: core.Meta{Name: name, Kind: kind}, XML: xml, Stylesheet: ss}
	}
	return []core.Workload{
		mk("test", core.KindTest, GenerateRecordsXML(50, 1), RecordsStylesheet),
		mk("train", core.KindTrain, GenerateRecordsXML(1500, 2), RecordsStylesheet),
		mk("refrate", core.KindRefrate, GenerateRecordsXML(9000, 3), RecordsStylesheet),
		mk("alberta.xsltmark-small", core.KindAlberta, GenerateRecordsXML(800, 11), RecordsStylesheet),
		mk("alberta.xsltmark-medium", core.KindAlberta, GenerateRecordsXML(3500, 12), RecordsStylesheet),
		mk("alberta.xsltmark-large", core.KindAlberta, GenerateRecordsXML(12000, 13), RecordsStylesheet),
		mk("alberta.xmark-combined", core.KindAlberta, GenerateAuctionXML(400, 700, 1800, 14), AuctionStylesheet),
		mk("alberta.xmark-large", core.KindAlberta, GenerateAuctionXML(1200, 2200, 5200, 15), AuctionStylesheet),
	}, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xalan: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		if i%2 == 0 {
			out = append(out, Workload{
				Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
				XML:  GenerateRecordsXML(500+int(s%7)*500, s), Stylesheet: RecordsStylesheet,
			})
		} else {
			out = append(out, Workload{
				Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
				XML:  GenerateAuctionXML(100+int(s%5)*100, 300, 700, s), Stylesheet: AuctionStylesheet,
			})
		}
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared carries the stylesheet lowered to its instruction-stream form
// (see compiled.go), which the executor only reads. XML parsing stays in
// Execute: it is part of the measured phase (ParseXML is instrumented),
// matching SPEC's xalancbmk where document parsing is timed.
type prepared struct {
	b  *Benchmark
	xw Workload
	ss *Stylesheet
	cs *compiledSheet
}

// Prepare implements core.Preparer: parse the stylesheet and lower its
// templates to the compiled instruction stream once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	xw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	ss, err := CompileStylesheet(xw.Stylesheet)
	if err != nil {
		return nil, fmt.Errorf("xalan: %s: %w", xw.Name, err)
	}
	return &prepared{b: b, xw: xw, ss: ss, cs: compileSheet(ss)}, nil
}

// Execute implements core.PreparedWorkload: parse, transform, serialize.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, xw := pw.b, pw.xw
	doc, err := ParseXML(xw.XML, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("xalan: %s: %w", xw.Name, err)
	}
	out := pw.cs.transform(doc, p)
	rendered := Serialize(out, p)
	if len(rendered) == 0 {
		return core.Result{}, fmt.Errorf("xalan: %s: empty output", xw.Name)
	}
	sum := core.NewChecksum().AddString(rendered).AddUint64(uint64(len(rendered)))
	return core.Result{
		Benchmark: b.Name(),
		Workload:  xw.Name,
		Kind:      xw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
