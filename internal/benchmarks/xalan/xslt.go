package xalan

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/perf"
)

// Stylesheet is a compiled transformation: an ordered list of templates.
type Stylesheet struct {
	templates []*template
}

// template is one match rule.
type template struct {
	match string // element name, "*", "/", or "text()"
	body  []*Node
}

// ErrBadStylesheet reports an invalid stylesheet document.
var ErrBadStylesheet = errors.New("xalan: bad stylesheet")

// CompileStylesheet parses a stylesheet document: a <stylesheet> root whose
// <template match="..."> children hold instruction bodies.
func CompileStylesheet(src string) (*Stylesheet, error) {
	root, err := ParseXML(src, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStylesheet, err)
	}
	if root.Name != "stylesheet" {
		return nil, fmt.Errorf("%w: root is %q", ErrBadStylesheet, root.Name)
	}
	ss := &Stylesheet{}
	for _, c := range root.Children {
		if c.Kind != ElementNode {
			continue
		}
		if c.Name != "template" {
			return nil, fmt.Errorf("%w: unexpected %q", ErrBadStylesheet, c.Name)
		}
		m, ok := c.Attr("match")
		if !ok || m == "" {
			return nil, fmt.Errorf("%w: template without match", ErrBadStylesheet)
		}
		ss.templates = append(ss.templates, &template{match: m, body: c.Children})
	}
	if len(ss.templates) == 0 {
		return nil, fmt.Errorf("%w: no templates", ErrBadStylesheet)
	}
	return ss, nil
}

// Transformer applies a stylesheet to a document.
type Transformer struct {
	ss *Stylesheet
	p  *perf.Profiler
}

// NewTransformer pairs a stylesheet with a profiler.
func NewTransformer(ss *Stylesheet, p *perf.Profiler) *Transformer {
	if p != nil {
		p.SetFootprint("match_template", 5<<10)
		p.SetFootprint("exec_template", 6<<10)
		p.SetFootprint("select_nodes", 4<<10)
		p.SetFootprint("exec_valueof", 2<<10)
		p.SetFootprint("exec_foreach", 2<<10)
		p.SetFootprint("exec_if", 2<<10)
	}
	return &Transformer{ss: ss, p: p}
}

// Transform applies the stylesheet to root and returns the output tree
// (wrapped in a synthetic "out" element).
func (t *Transformer) Transform(root *Node) *Node {
	out := &Node{Kind: ElementNode, Name: "out"}
	t.applyTo(root, out, true)
	return out
}

// findTemplate locates the best template for node n.
func (t *Transformer) findTemplate(n *Node, isRoot bool) *template {
	if t.p != nil {
		t.p.Enter("match_template")
		defer t.p.Leave()
	}
	var wildcard *template
	for i, tpl := range t.ss.templates {
		var hit bool
		switch {
		case n.Kind == TextNode:
			hit = tpl.match == "text()"
		case isRoot && tpl.match == "/":
			hit = true
		case tpl.match == n.Name:
			hit = true
		case tpl.match == "*":
			if wildcard == nil {
				wildcard = tpl
			}
		}
		if t.p != nil {
			t.p.Ops(3)
			t.p.Load(parseAddr + uint64(i)*64)
			t.p.Branch(41, hit)
		}
		if hit {
			return tpl
		}
	}
	return wildcard
}

// applyTo processes node n, appending output to parent.
func (t *Transformer) applyTo(n *Node, parent *Node, isRoot bool) {
	tpl := t.findTemplate(n, isRoot)
	if tpl == nil {
		// Built-in rules: text copies through; elements recurse.
		if n.Kind == TextNode {
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: n.Text, Parent: parent})
			return
		}
		for _, c := range n.Children {
			t.applyTo(c, parent, false)
		}
		return
	}
	if t.p != nil {
		t.p.Enter("exec_template")
		defer t.p.Leave()
	}
	t.execBody(tpl.body, n, parent)
}

// execBody runs a template body with context node ctx.
func (t *Transformer) execBody(body []*Node, ctx *Node, parent *Node) {
	for _, instr := range body {
		if instr.Kind == TextNode {
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: instr.Text, Parent: parent})
			if t.p != nil {
				t.p.Ops(uint64(len(instr.Text)))
			}
			continue
		}
		switch instr.Name {
		case "element":
			name, _ := instr.Attr("name")
			el := &Node{Kind: ElementNode, Name: name, Parent: parent}
			parent.Children = append(parent.Children, el)
			t.execBody(instr.Children, ctx, el)
		case "attribute":
			name, _ := instr.Attr("name")
			sel, _ := instr.Attr("select")
			parent.Attrs = append(parent.Attrs, Attr{Name: name, Value: t.valueOf(sel, ctx)})
		case "value-of":
			if t.p != nil {
				t.p.Enter("exec_valueof")
			}
			sel, _ := instr.Attr("select")
			v := t.valueOf(sel, ctx)
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: v, Parent: parent})
			if t.p != nil {
				t.p.Ops(uint64(4 + len(v)))
				t.p.Leave()
			}
		case "count":
			sel, _ := instr.Attr("select")
			nodes := t.selectNodes(sel, ctx)
			parent.Children = append(parent.Children, &Node{
				Kind: TextNode, Text: strconv.Itoa(len(nodes)), Parent: parent,
			})
		case "apply-templates":
			sel, hasSel := instr.Attr("select")
			var targets []*Node
			if hasSel {
				targets = t.selectNodes(sel, ctx)
			} else {
				targets = ctx.Children
			}
			for _, target := range targets {
				t.applyTo(target, parent, false)
			}
		case "for-each":
			if t.p != nil {
				t.p.Enter("exec_foreach")
			}
			sel, _ := instr.Attr("select")
			for _, target := range t.selectNodes(sel, ctx) {
				t.execBody(instr.Children, target, parent)
				if t.p != nil {
					t.p.Ops(4)
					t.p.Branch(42, true)
				}
			}
			if t.p != nil {
				t.p.Leave()
			}
		case "if":
			if t.p != nil {
				t.p.Enter("exec_if")
			}
			test, _ := instr.Attr("test")
			pass := t.evalTest(test, ctx)
			if t.p != nil {
				t.p.Ops(6)
				t.p.Branch(43, pass)
				t.p.Leave()
			}
			if pass {
				t.execBody(instr.Children, ctx, parent)
			}
		case "text":
			v, _ := instr.Attr("value")
			parent.Children = append(parent.Children, &Node{Kind: TextNode, Text: v, Parent: parent})
		default:
			// Unknown instructions are copied as literal result elements.
			el := &Node{Kind: ElementNode, Name: instr.Name, Attrs: instr.Attrs, Parent: parent}
			parent.Children = append(parent.Children, el)
			t.execBody(instr.Children, ctx, el)
		}
	}
}

// selectNodes resolves a path expression against ctx. Supported forms:
// ".", "name", "a/b/c", "//name", "*".
func (t *Transformer) selectNodes(sel string, ctx *Node) []*Node {
	if t.p != nil {
		t.p.Enter("select_nodes")
		defer t.p.Leave()
	}
	if sel == "" || sel == "." {
		return []*Node{ctx}
	}
	if rest, ok := strings.CutPrefix(sel, "//"); ok {
		var out []*Node
		var walk func(*Node)
		walk = func(n *Node) {
			if t.p != nil {
				t.p.Ops(2)
			}
			for _, c := range n.Children {
				if c.Kind == ElementNode {
					if c.Name == rest || rest == "*" {
						out = append(out, c)
					}
					walk(c)
				}
			}
		}
		walk(ctx)
		return out
	}
	current := []*Node{ctx}
	for _, step := range strings.Split(sel, "/") {
		var next []*Node
		for _, n := range current {
			for _, c := range n.Children {
				match := c.Kind == ElementNode && (c.Name == step || step == "*")
				if t.p != nil {
					t.p.Ops(2)
					t.p.Branch(44, match)
				}
				if match {
					next = append(next, c)
				}
			}
		}
		current = next
	}
	return current
}

// valueOf resolves a value expression: "@attr", a node path (first match's
// text), "name()" or ".".
func (t *Transformer) valueOf(sel string, ctx *Node) string {
	switch {
	case sel == "" || sel == ".":
		return ctx.TextContent()
	case sel == "name()":
		return ctx.Name
	case strings.HasPrefix(sel, "@"):
		v, _ := ctx.Attr(sel[1:])
		return v
	default:
		nodes := t.selectNodes(sel, ctx)
		if len(nodes) == 0 {
			return ""
		}
		return nodes[0].TextContent()
	}
}

// evalTest evaluates a predicate: "@attr='v'", "path='v'", or a bare
// path/attribute existence test.
func (t *Transformer) evalTest(test string, ctx *Node) bool {
	if eq := strings.Index(test, "="); eq >= 0 {
		lhs := strings.TrimSpace(test[:eq])
		rhs := strings.Trim(strings.TrimSpace(test[eq+1:]), "'\"")
		return t.valueOf(lhs, ctx) == rhs
	}
	if strings.HasPrefix(test, "@") {
		_, ok := ctx.Attr(test[1:])
		return ok
	}
	return len(t.selectNodes(test, ctx)) > 0
}
