package xalan

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestParseXMLBasics(t *testing.T) {
	n, err := ParseXML(`<a x="1"><b>hi</b><c/></a>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "a" {
		t.Errorf("root = %q", n.Name)
	}
	if v, ok := n.Attr("x"); !ok || v != "1" {
		t.Errorf("attr x = %q/%v", v, ok)
	}
	if len(n.Children) != 2 {
		t.Fatalf("children = %d", len(n.Children))
	}
	if n.Children[0].TextContent() != "hi" {
		t.Errorf("text = %q", n.Children[0].TextContent())
	}
	if n.Children[1].Name != "c" || len(n.Children[1].Children) != 0 {
		t.Errorf("self-closing child parsed wrong: %+v", n.Children[1])
	}
}

func TestParseXMLEntitiesAndComments(t *testing.T) {
	n, err := ParseXML(`<?xml version="1.0"?><!-- hello --><a t="&lt;x&gt;">&amp;ok<!-- mid --></a>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Attr("t"); v != "<x>" {
		t.Errorf("attr = %q", v)
	}
	if n.TextContent() != "&ok" {
		t.Errorf("text = %q", n.TextContent())
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := []string{
		"",
		"<a>",
		"<a></b>",
		"<a attr></a>",
		`<a x="1></a>`,
		"<a></a><b></b>",
		"plain text",
	}
	for _, src := range bad {
		if _, err := ParseXML(src, nil); !errors.Is(err, ErrBadXML) {
			t.Errorf("ParseXML(%q) err = %v, want ErrBadXML", src, err)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `<a x="1"><b>hi &amp; bye</b><c/></a>`
	n, err := ParseXML(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Serialize(n, nil)
	n2, err := ParseXML(out, nil)
	if err != nil {
		t.Fatalf("reserialized output unparseable: %v\n%s", err, out)
	}
	if Serialize(n2, nil) != out {
		t.Error("serialize not a fixed point")
	}
}

func TestCompileStylesheetErrors(t *testing.T) {
	bad := []string{
		"<notstylesheet/>",
		"<stylesheet/>",
		"<stylesheet><template/></stylesheet>",
		"<stylesheet><frob match='x'/></stylesheet>",
	}
	for _, src := range bad {
		if _, err := CompileStylesheet(src); !errors.Is(err, ErrBadStylesheet) {
			t.Errorf("CompileStylesheet(%q) err = %v, want ErrBadStylesheet", src, err)
		}
	}
}

func transform(t *testing.T, xml, ss string) string {
	t.Helper()
	doc, err := ParseXML(xml, nil)
	if err != nil {
		t.Fatal(err)
	}
	sheet, err := CompileStylesheet(ss)
	if err != nil {
		t.Fatal(err)
	}
	return Serialize(NewTransformer(sheet, nil).Transform(doc), nil)
}

func TestTransformValueOf(t *testing.T) {
	out := transform(t, `<r><name>zed</name></r>`, `<stylesheet>
<template match="/"><element name="p"><value-of select="name"/></element></template>
</stylesheet>`)
	if !strings.Contains(out, "<p>zed</p>") {
		t.Errorf("out = %s", out)
	}
}

func TestTransformAttributeAndIf(t *testing.T) {
	out := transform(t, `<r kind="hot"><x/></r>`, `<stylesheet>
<template match="/">
  <element name="div">
    <attribute name="k" select="@kind"/>
    <if test="@kind='hot'"><text value="HOT"/></if>
    <if test="@kind='cold'"><text value="COLD"/></if>
    <if test="x"><text value="HASX"/></if>
    <if test="y"><text value="HASY"/></if>
  </element>
</template>
</stylesheet>`)
	if !strings.Contains(out, `k="hot"`) || !strings.Contains(out, "HOT") || !strings.Contains(out, "HASX") {
		t.Errorf("out = %s", out)
	}
	if strings.Contains(out, "COLD") || strings.Contains(out, "HASY") {
		t.Errorf("false branch leaked: %s", out)
	}
}

func TestTransformForEachAndCount(t *testing.T) {
	out := transform(t, `<r><i>1</i><i>2</i><i>3</i></r>`, `<stylesheet>
<template match="/">
  <element name="n"><count select="i"/></element>
  <for-each select="i"><element name="v"><value-of select="."/></element></for-each>
</template>
</stylesheet>`)
	if !strings.Contains(out, "<n>3</n>") {
		t.Errorf("count missing: %s", out)
	}
	for _, want := range []string{"<v>1</v>", "<v>2</v>", "<v>3</v>"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in %s", want, out)
		}
	}
}

func TestTransformDescendantSelect(t *testing.T) {
	out := transform(t, `<r><a><i>x</i></a><b><c><i>y</i></c></b></r>`, `<stylesheet>
<template match="/"><count select="//i"/></template>
</stylesheet>`)
	if !strings.Contains(out, "2") {
		t.Errorf("descendant count wrong: %s", out)
	}
}

func TestTransformTemplateDispatchAndBuiltins(t *testing.T) {
	out := transform(t, `<r><special>a</special><plain>b</plain></r>`, `<stylesheet>
<template match="special"><element name="S"><value-of select="."/></element></template>
</stylesheet>`)
	// special hits the template; plain falls through built-in rules, so
	// its text is copied bare.
	if !strings.Contains(out, "<S>a</S>") {
		t.Errorf("template not applied: %s", out)
	}
	if !strings.Contains(out, "b") {
		t.Errorf("built-in rule dropped text: %s", out)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	if GenerateRecordsXML(10, 3) != GenerateRecordsXML(10, 3) {
		t.Error("records generator not deterministic")
	}
	if GenerateAuctionXML(5, 9, 12, 3) != GenerateAuctionXML(5, 9, 12, 3) {
		t.Error("auction generator not deterministic")
	}
}

func TestGeneratedDocumentsParse(t *testing.T) {
	for _, src := range []string{
		GenerateRecordsXML(100, 5),
		GenerateAuctionXML(20, 30, 50, 5),
	} {
		if _, err := ParseXML(src, nil); err != nil {
			t.Errorf("generated XML unparseable: %v", err)
		}
	}
}

func TestRecordsStylesheetOnGeneratedData(t *testing.T) {
	out := transform(t, GenerateRecordsXML(50, 7), RecordsStylesheet)
	if !strings.Contains(out, "<table>") || strings.Count(out, "<tr") != 50 {
		t.Errorf("table rows = %d, want 50", strings.Count(out, "<tr"))
	}
}

func TestAuctionStylesheetRunsAllQueries(t *testing.T) {
	out := transform(t, GenerateAuctionXML(30, 40, 80, 7), AuctionStylesheet)
	for q := 1; q <= 18; q++ {
		if !strings.Contains(out, "<q"+itoa(q)) {
			t.Errorf("query %d missing from combined output", q)
		}
	}
	// q1 counts people.
	if !strings.Contains(out, "<q1>30</q1>") {
		t.Errorf("q1 wrong: %s", out[:200])
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 5 {
		t.Errorf("alberta workloads = %d, want 5 (paper ships five)", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"parse_xml", "match_template", "serialize"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage: %v", m, rep.Coverage)
		}
	}
}

func TestBenchmarkDeterminism(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.Run(w, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(w, perf.New())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checksum != r2.Checksum {
		t.Error("nondeterministic checksum")
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsParseable(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		xw := w.(Workload)
		if _, err := ParseXML(xw.XML, nil); err != nil {
			t.Errorf("%s: bad XML: %v", xw.Name, err)
		}
		if _, err := CompileStylesheet(xw.Stylesheet); err != nil {
			t.Errorf("%s: bad stylesheet: %v", xw.Name, err)
		}
	}
}
