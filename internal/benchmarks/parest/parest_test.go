package parest

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 2, Blocks: 1, OuterIters: 1, CGTol: 1e-6},
		{N: 8, Blocks: 0, OuterIters: 1, CGTol: 1e-6},
		{N: 8, Blocks: 9, OuterIters: 1, CGTol: 1e-6},
		{N: 8, Blocks: 2, OuterIters: 0, CGTol: 1e-6},
		{N: 8, Blocks: 2, OuterIters: 1, CGTol: 0},
		{N: 8, Blocks: 2, OuterIters: 1, CGTol: 1e-6, Lambda: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestForwardSolveResidual(t *testing.T) {
	prm := Params{N: 10, Blocks: 2, Noise: 0, Lambda: 0.01, OuterIters: 1, CGTol: 1e-10, Seed: 1}
	pb, err := NewProblem(prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := []float64{1, 1, 1, 1}
	u, err := pb.Solve(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	// A u must equal f to the CG tolerance.
	out := make([]float64, len(u))
	pb.applyA(coeffs, u, out)
	var resid, fnorm float64
	for i := range out {
		d := out[i] - pb.f[i]
		resid += d * d
		fnorm += pb.f[i] * pb.f[i]
	}
	if math.Sqrt(resid/fnorm) > 1e-8 {
		t.Errorf("relative residual = %v", math.Sqrt(resid/fnorm))
	}
}

func TestSolveRejectsNonPositiveCoefficients(t *testing.T) {
	prm := Params{N: 8, Blocks: 2, Noise: 0, Lambda: 0.01, OuterIters: 1, CGTol: 1e-8, Seed: 1}
	pb, err := NewProblem(prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Solve([]float64{1, -1, 1, 1}); err == nil {
		t.Error("negative coefficient should fail")
	}
}

func TestHigherDiffusionLowersSolution(t *testing.T) {
	prm := Params{N: 12, Blocks: 1, Noise: 0, Lambda: 0.01, OuterIters: 1, CGTol: 1e-10, Seed: 2}
	pb, err := NewProblem(prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(c float64) float64 {
		u, err := pb.Solve([]float64{c})
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range u {
			s += v * v
		}
		return math.Sqrt(s)
	}
	if lo, hi := norm(0.5), norm(2.0); hi >= lo {
		t.Errorf("stiffer medium should damp the solution: a=0.5 → %v, a=2 → %v", lo, hi)
	}
}

func TestEstimateReducesObjectiveAndApproachesTruth(t *testing.T) {
	prm := Params{N: 12, Blocks: 2, Noise: 0.005, Lambda: 0.001, OuterIters: 8, CGTol: 1e-9, Seed: 3}
	pb, err := NewProblem(prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := pb.misfit([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pb.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective >= initial {
		t.Errorf("estimation did not improve: %v → %v", initial, res.Objective)
	}
	// The flat guess is on average distance ~0.6 from U(0.5, 2); the
	// estimate should be meaningfully closer.
	var flatErr float64
	for _, c := range pb.true {
		flatErr += (1 - c) * (1 - c)
	}
	flatErr = math.Sqrt(flatErr / float64(len(pb.true)))
	if res.TrueError >= flatErr {
		t.Errorf("estimate error %v not better than flat guess %v", res.TrueError, flatErr)
	}
	if res.CGIterations == 0 {
		t.Error("no CG iterations recorded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		prm := Params{N: 10, Blocks: 2, Noise: 0.01, Lambda: 0.01, OuterIters: 3, CGTol: 1e-8, Seed: 5}
		pb, err := NewProblem(prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pb.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		return res.Objective
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	measurement := 0
	for _, w := range ws {
		if w.WorkloadKind() != core.KindTest {
			measurement++
		}
	}
	// Table II lists 8 parest workloads.
	if measurement != 7 {
		t.Errorf("measurement workloads = %d, want 7 (train+ref+5 alberta)", measurement)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"apply_operator", "cg_solve", "gradient"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
	// parest is the most back-end/retiring benchmark pair in Table II
	// (b=26.0, r=53.7): the kernel should retire heavily.
	if rep.TopDown.Retiring < 0.2 {
		t.Errorf("retiring = %v, expected compute-heavy kernel", rep.TopDown.Retiring)
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(23, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
