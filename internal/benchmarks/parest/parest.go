// Package parest reproduces 510.parest_r: finite-element parameter
// estimation. The substitute solves the inverse problem the original (a
// deal.II application for optical tomography) solves in spirit: recover a
// piecewise-constant diffusion coefficient field from observations of the
// solution of -∇·(a∇u) = f on a 2D grid. The forward operator is a
// five-point finite-difference/FEM discretization solved with conjugate
// gradients; the outer loop is projected gradient descent with
// finite-difference gradients and Tikhonov regularization.
package parest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// Params configure one estimation run.
type Params struct {
	// N is the interior grid size (N×N unknowns).
	N int
	// Blocks partitions the domain into Blocks×Blocks coefficient
	// patches (the estimated parameters).
	Blocks int
	// Noise is the relative observation noise.
	Noise float64
	// Lambda is the Tikhonov regularization weight.
	Lambda float64
	// OuterIters is the number of gradient-descent iterations.
	OuterIters int
	// CGTol is the inner conjugate-gradient tolerance.
	CGTol float64
	// Seed drives the hidden true coefficients and the noise.
	Seed int64
}

// ErrBadParams reports an invalid configuration.
var ErrBadParams = errors.New("parest: bad parameters")

// Validate checks the configuration.
func (p Params) Validate() error {
	if p.N < 4 || p.Blocks < 1 || p.Blocks > p.N || p.OuterIters < 1 ||
		p.CGTol <= 0 || p.Lambda < 0 || p.Noise < 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

const solBase = 0x100_0000_0000

// Problem is one inverse problem instance.
type Problem struct {
	prm  Params
	f    []float64 // source term
	obs  []float64 // noisy observation of the true solution
	true []float64 // hidden true block coefficients
	p    *perf.Profiler
	// CGIterations accumulates inner iterations (work metric).
	CGIterations uint64
}

// blockOf maps grid cell (x,y) to its coefficient patch.
func (pb *Problem) blockOf(x, y int) int {
	bx := x * pb.prm.Blocks / pb.prm.N
	by := y * pb.prm.Blocks / pb.prm.N
	return by*pb.prm.Blocks + bx
}

// NewProblem builds the instance: hidden coefficients, source, observation.
func NewProblem(prm Params, p *perf.Profiler) (*Problem, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(prm.Seed))
	pb := &Problem{prm: prm, p: p}
	nb := prm.Blocks * prm.Blocks
	pb.true = make([]float64, nb)
	for i := range pb.true {
		pb.true[i] = 0.5 + 1.5*rng.Float64()
	}
	n := prm.N
	pb.f = make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			// Smooth source with a couple of bumps.
			fx := float64(x) / float64(n-1)
			fy := float64(y) / float64(n-1)
			pb.f[y*n+x] = math.Sin(math.Pi*fx)*math.Sin(math.Pi*fy) +
				0.5*math.Sin(3*math.Pi*fx)*math.Sin(2*math.Pi*fy)
		}
	}
	if p != nil {
		p.SetFootprint("apply_operator", 5<<10)
		p.SetFootprint("cg_solve", 4<<10)
		p.SetFootprint("gradient", 3<<10)
	}
	uTrue, err := pb.Solve(pb.true)
	if err != nil {
		return nil, err
	}
	pb.obs = make([]float64, len(uTrue))
	for i, v := range uTrue {
		pb.obs[i] = v * (1 + prm.Noise*(2*rng.Float64()-1))
	}
	return pb, nil
}

// applyA computes (A(coeffs) u)[i] for the five-point operator with
// homogeneous Dirichlet boundaries and harmonic-mean edge coefficients.
func (pb *Problem) applyA(coeffs, u, out []float64) {
	if pb.p != nil {
		pb.p.Enter("apply_operator")
		defer pb.p.Leave()
	}
	n := pb.prm.N
	get := func(x, y int) float64 {
		if x < 0 || x >= n || y < 0 || y >= n {
			return 0 // Dirichlet
		}
		return u[y*n+x]
	}
	edge := func(x1, y1, x2, y2 int) float64 {
		a := coeffs[pb.blockOf(x1, y1)]
		b := a
		if x2 >= 0 && x2 < n && y2 >= 0 && y2 < n {
			b = coeffs[pb.blockOf(x2, y2)]
		}
		return 2 * a * b / (a + b)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			c := u[i]
			aE := edge(x, y, x+1, y)
			aW := edge(x, y, x-1, y)
			aN := edge(x, y, x, y+1)
			aS := edge(x, y, x, y-1)
			out[i] = (aE+aW+aN+aS)*c -
				aE*get(x+1, y) - aW*get(x-1, y) -
				aN*get(x, y+1) - aS*get(x, y-1)
			if pb.p != nil && i%16 == 0 {
				pb.p.Ops(24)
			}
		}
	}
	if pb.p != nil {
		// The per-site load/store pairs of the loop above, hoisted into one
		// batched call: every 16th cell reads its solution entry and writes
		// the neighbouring field of the same record (same cache line, so
		// the pair costs one probe).
		pb.p.LoadStoreRange(solBase, 16*8, uint64(n*n+15)/16)
	}
}

// Solve runs conjugate gradients for A(coeffs) u = f.
func (pb *Problem) Solve(coeffs []float64) ([]float64, error) {
	for _, c := range coeffs {
		if c <= 0 {
			return nil, fmt.Errorf("%w: non-positive coefficient", ErrBadParams)
		}
	}
	if pb.p != nil {
		pb.p.Enter("cg_solve")
		defer pb.p.Leave()
	}
	n2 := pb.prm.N * pb.prm.N
	u := make([]float64, n2)
	r := append([]float64(nil), pb.f...)
	d := append([]float64(nil), r...)
	Ad := make([]float64, n2)
	rr := dot(r, r)
	target := pb.prm.CGTol * pb.prm.CGTol * rr
	maxIter := 4 * n2
	for iter := 0; iter < maxIter && rr > target && rr > 1e-30; iter++ {
		pb.applyA(coeffs, d, Ad)
		alpha := rr / dot(d, Ad)
		for i := range u {
			u[i] += alpha * d[i]
			r[i] -= alpha * Ad[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		for i := range d {
			d[i] = r[i] + beta*d[i]
		}
		rr = rrNew
		pb.CGIterations++
		if pb.p != nil {
			pb.p.OpsBranch(uint64(n2)/2, 140, rr > target)
			pb.p.LongOps(2)
		}
		if math.IsNaN(rr) {
			return nil, errors.New("parest: CG diverged")
		}
	}
	return u, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// misfit evaluates the regularized objective at coeffs.
func (pb *Problem) misfit(coeffs []float64) (float64, error) {
	u, err := pb.Solve(coeffs)
	if err != nil {
		return 0, err
	}
	m := 0.0
	for i := range u {
		d := u[i] - pb.obs[i]
		m += d * d
	}
	reg := 0.0
	for _, c := range coeffs {
		d := c - 1
		reg += d * d
	}
	return m + pb.prm.Lambda*reg, nil
}

// EstimateResult is the estimation outcome.
type EstimateResult struct {
	Coeffs    []float64
	Objective float64
	// TrueError is the L2 distance between estimated and hidden true
	// coefficients.
	TrueError    float64
	CGIterations uint64
}

// Estimate recovers the coefficients by projected gradient descent with
// central finite-difference gradients over the patch parameters.
func (pb *Problem) Estimate() (EstimateResult, error) {
	nb := pb.prm.Blocks * pb.prm.Blocks
	coeffs := make([]float64, nb)
	for i := range coeffs {
		coeffs[i] = 1 // flat initial guess
	}
	obj, err := pb.misfit(coeffs)
	if err != nil {
		return EstimateResult{}, err
	}
	const h = 1e-3
	step := 0.5
	grad := make([]float64, nb)
	for outer := 0; outer < pb.prm.OuterIters; outer++ {
		if pb.p != nil {
			pb.p.Enter("gradient")
		}
		for k := 0; k < nb; k++ {
			orig := coeffs[k]
			coeffs[k] = orig + h
			fp, err := pb.misfit(coeffs)
			if err != nil {
				return EstimateResult{}, err
			}
			coeffs[k] = orig - h
			fm, err := pb.misfit(coeffs)
			if err != nil {
				return EstimateResult{}, err
			}
			coeffs[k] = orig
			grad[k] = (fp - fm) / (2 * h)
		}
		if pb.p != nil {
			pb.p.Ops(uint64(nb) * 8)
			pb.p.Leave()
		}
		// Backtracking line search with projection to positive coeffs.
		improved := false
		for try := 0; try < 8; try++ {
			trial := make([]float64, nb)
			for k := range trial {
				trial[k] = math.Max(0.05, coeffs[k]-step*grad[k])
			}
			tObj, err := pb.misfit(trial)
			if err != nil {
				return EstimateResult{}, err
			}
			if tObj < obj {
				copy(coeffs, trial)
				obj = tObj
				improved = true
				step *= 1.2
				break
			}
			step /= 2
		}
		if !improved {
			break // converged
		}
	}
	res := EstimateResult{Coeffs: coeffs, Objective: obj, CGIterations: pb.CGIterations}
	for k := range coeffs {
		d := coeffs[k] - pb.true[k]
		res.TrueError += d * d
	}
	res.TrueError = math.Sqrt(res.TrueError / float64(nb))
	return res, nil
}

// Workload is one 510.parest_r input.
type Workload struct {
	core.Meta
	Params Params
}

// Benchmark is the 510.parest_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "510.parest_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Biomedical imaging: parameter estimation" }

// Workloads returns SPEC-style inputs plus five Alberta parameter
// variations (Table II lists eight parest workloads in total).
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, p Params) core.Workload {
		return Workload{Meta: core.Meta{Name: name, Kind: kind}, Params: p}
	}
	return []core.Workload{
		mk("test", core.KindTest, Params{N: 8, Blocks: 2, Noise: 0.01, Lambda: 0.01, OuterIters: 2, CGTol: 1e-6, Seed: 1}),
		mk("train", core.KindTrain, Params{N: 12, Blocks: 2, Noise: 0.01, Lambda: 0.01, OuterIters: 4, CGTol: 1e-7, Seed: 2}),
		mk("refrate", core.KindRefrate, Params{N: 16, Blocks: 3, Noise: 0.01, Lambda: 0.01, OuterIters: 6, CGTol: 1e-8, Seed: 3}),
		mk("alberta.fine", core.KindAlberta, Params{N: 20, Blocks: 2, Noise: 0.01, Lambda: 0.01, OuterIters: 4, CGTol: 1e-8, Seed: 11}),
		mk("alberta.manyblocks", core.KindAlberta, Params{N: 16, Blocks: 4, Noise: 0.01, Lambda: 0.02, OuterIters: 4, CGTol: 1e-7, Seed: 12}),
		mk("alberta.noisy", core.KindAlberta, Params{N: 14, Blocks: 3, Noise: 0.1, Lambda: 0.05, OuterIters: 5, CGTol: 1e-7, Seed: 13}),
		mk("alberta.tightcg", core.KindAlberta, Params{N: 14, Blocks: 2, Noise: 0.01, Lambda: 0.01, OuterIters: 4, CGTol: 1e-10, Seed: 14}),
		mk("alberta.unregularized", core.KindAlberta, Params{N: 12, Blocks: 3, Noise: 0.02, Lambda: 0, OuterIters: 6, CGTol: 1e-7, Seed: 15}),
	}, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parest: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		out = append(out, Workload{
			Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Params: Params{
				N: 10 + int(s%4)*2, Blocks: 2 + int(s%3),
				Noise: 0.01 * float64(s%5), Lambda: 0.01 + 0.01*float64(s%3),
				OuterIters: 3 + int(s%3), CGTol: 1e-7, Seed: s,
			},
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared wraps the workload: problem assembly and estimation are both part
// of the measured phase (NewProblem is instrumented), so Prepare only
// validates the workload type.
type prepared struct {
	b  *Benchmark
	pw Workload
}

// Prepare implements core.Preparer.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	pw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	return &prepared{b: b, pw: pw}, nil
}

// Execute implements core.PreparedWorkload: assemble and estimate.
func (ps *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, pw := ps.b, ps.pw
	pb, err := NewProblem(pw.Params, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("parest: %s: %w", pw.Name, err)
	}
	res, err := pb.Estimate()
	if err != nil {
		return core.Result{}, fmt.Errorf("parest: %s: %w", pw.Name, err)
	}
	sum := core.NewChecksum().
		AddFloat(res.Objective).
		AddFloat(res.TrueError).
		AddUint64(res.CGIterations)
	for _, c := range res.Coeffs {
		sum = sum.AddFloat(c)
	}
	return core.Result{
		Benchmark: b.Name(),
		Workload:  pw.Name,
		Kind:      pw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
