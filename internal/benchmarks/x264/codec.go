package x264

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/perf"
)

// Frame is a luma-only picture.
type Frame struct {
	W, H int
	Pix  []uint8
}

// NewFrame allocates a frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Clone deep-copies a frame.
func (f *Frame) Clone() *Frame {
	return &Frame{W: f.W, H: f.H, Pix: append([]uint8(nil), f.Pix...)}
}

// at reads with edge clamping.
func (f *Frame) at(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

const (
	blockSize = 8
	mbSize    = 16
	searchRng = 8
)

// Synthetic address bases.
const (
	frameBase = 0x70_0000_0000
	coefBase  = 0x71_0000_0000
)

// dctBasis holds the orthonormal DCT-II basis.
var dctBasis [blockSize][blockSize]float64

func init() {
	for k := 0; k < blockSize; k++ {
		scale := math.Sqrt(2.0 / blockSize)
		if k == 0 {
			scale = math.Sqrt(1.0 / blockSize)
		}
		for n := 0; n < blockSize; n++ {
			dctBasis[k][n] = scale * math.Cos(math.Pi*(float64(n)+0.5)*float64(k)/blockSize)
		}
	}
}

// fdct transforms an 8x8 residual block (row-major) in place semantics:
// returns coefficients.
func fdct(in *[blockSize * blockSize]int32) [blockSize * blockSize]float64 {
	var tmp, out [blockSize * blockSize]float64
	// Rows.
	for r := 0; r < blockSize; r++ {
		for k := 0; k < blockSize; k++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += float64(in[r*blockSize+n]) * dctBasis[k][n]
			}
			tmp[r*blockSize+k] = s
		}
	}
	// Columns.
	for c := 0; c < blockSize; c++ {
		for k := 0; k < blockSize; k++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += tmp[n*blockSize+c] * dctBasis[k][n]
			}
			out[k*blockSize+c] = s
		}
	}
	return out
}

// idct inverts fdct on dequantized coefficients.
func idct(in *[blockSize * blockSize]float64) [blockSize * blockSize]int32 {
	var tmp [blockSize * blockSize]float64
	var out [blockSize * blockSize]int32
	// Columns.
	for c := 0; c < blockSize; c++ {
		for n := 0; n < blockSize; n++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += in[k*blockSize+c] * dctBasis[k][n]
			}
			tmp[n*blockSize+c] = s
		}
	}
	// Rows.
	for r := 0; r < blockSize; r++ {
		for n := 0; n < blockSize; n++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += tmp[r*blockSize+k] * dctBasis[k][n]
			}
			out[r*blockSize+n] = int32(math.RoundToEven(s))
		}
	}
	return out
}

// zigzag scan order for an 8x8 block.
var zigzag = buildZigzag()

func buildZigzag() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	idx := 0
	for s := 0; s < 2*blockSize-1; s++ {
		if s%2 == 0 {
			for y := min(s, blockSize-1); y >= 0 && s-y < blockSize; y-- {
				order[idx] = y*blockSize + (s - y)
				idx++
			}
		} else {
			for x := min(s, blockSize-1); x >= 0 && s-x < blockSize; x-- {
				order[idx] = (s-x)*blockSize + x
				idx++
			}
		}
	}
	return order
}

// quantize maps a DCT coefficient to a level.
func quantize(coef float64, qp int) int32 {
	step := float64(qp)
	return int32(math.RoundToEven(coef / step))
}

// dequantize inverts quantize.
func dequantize(level int32, qp int) float64 {
	return float64(level) * float64(qp)
}

// Encoder compresses a frame sequence.
type Encoder struct {
	QP          int
	KeyInterval int // I-frame every KeyInterval frames (≥1)
	p           *perf.Profiler
	recon       *Frame // last reconstructed frame (reference)
	// SADPerFrame records per-frame motion-compensated SAD (rate-control
	// signal for two-pass encoding).
	SADPerFrame []uint64
}

// NewEncoder returns an encoder.
func NewEncoder(qp, keyInterval int, p *perf.Profiler) (*Encoder, error) {
	if qp < 1 || qp > 100 {
		return nil, fmt.Errorf("x264: bad QP %d", qp)
	}
	if keyInterval < 1 {
		return nil, fmt.Errorf("x264: bad key interval %d", keyInterval)
	}
	if p != nil {
		p.SetFootprint("me_search", 5<<10)
		p.SetFootprint("transform", 4<<10)
		p.SetFootprint("entropy", 3<<10)
		p.SetFootprint("reconstruct", 3<<10)
	}
	return &Encoder{QP: qp, KeyInterval: keyInterval, p: p}, nil
}

// sad computes the sum of absolute differences between a macroblock at
// (mx,my) in cur and (mx+dx, my+dy) in ref.
func (e *Encoder) sad(cur, ref *Frame, mx, my, dx, dy int) uint64 {
	var s uint64
	for y := 0; y < mbSize; y++ {
		for x := 0; x < mbSize; x++ {
			a := int(cur.at(mx+x, my+y))
			b := int(ref.at(mx+x+dx, my+y+dy))
			d := a - b
			if d < 0 {
				d = -d
			}
			s += uint64(d)
		}
	}
	if e.p != nil {
		e.p.Ops(mbSize * mbSize / 2)
		e.p.Load(frameBase + uint64((my+dy)*cur.W+mx+dx))
	}
	return s
}

// motionSearch runs a three-step diamond search.
func (e *Encoder) motionSearch(cur, ref *Frame, mx, my int) (int, int, uint64) {
	if e.p != nil {
		e.p.Enter("me_search")
		defer e.p.Leave()
	}
	bestX, bestY := 0, 0
	best := e.sad(cur, ref, mx, my, 0, 0)
	for step := 4; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range [4][2]int{{step, 0}, {-step, 0}, {0, step}, {0, -step}} {
				nx, ny := bestX+d[0], bestY+d[1]
				if nx < -searchRng || nx > searchRng || ny < -searchRng || ny > searchRng {
					continue
				}
				s := e.sad(cur, ref, mx, my, nx, ny)
				better := s < best
				if e.p != nil {
					e.p.Branch(60, better)
				}
				if better {
					best = s
					bestX, bestY = nx, ny
					improved = true
				}
			}
		}
	}
	return bestX, bestY, best
}

// encodeBlock transforms, quantizes and entropy-codes one 8x8 residual,
// then returns the reconstructed residual for the encoder's local decode.
func (e *Encoder) encodeBlock(w *bitWriter, res *[blockSize * blockSize]int32) [blockSize * blockSize]int32 {
	if e.p != nil {
		e.p.Enter("transform")
	}
	coefs := fdct(res)
	var levels [blockSize * blockSize]int32
	nz := 0
	for i, zi := range zigzag {
		l := quantize(coefs[zi], e.QP)
		levels[i] = l
		if l != 0 {
			nz++
		}
	}
	if e.p != nil {
		e.p.LongOps(blockSize * blockSize / 4)
		e.p.Ops(blockSize * blockSize)
		e.p.Load(coefBase + uint64(nz)*64)
		e.p.Leave()
		e.p.Enter("entropy")
	}
	// Entropy coding: count, then (run, level) pairs.
	w.writeUE(uint32(nz))
	run := uint32(0)
	written := 0
	for i := 0; i < blockSize*blockSize && written < nz; i++ {
		if levels[i] == 0 {
			run++
			continue
		}
		w.writeUE(run)
		w.writeSE(levels[i])
		run = 0
		written++
	}
	if e.p != nil {
		e.p.OpsBranch(uint64(8+nz*4), 61, nz > 0)
		e.p.Leave()
	}
	// Local reconstruction.
	var deq [blockSize * blockSize]float64
	for i, zi := range zigzag {
		deq[zi] = dequantize(levels[i], e.QP)
	}
	return idct(&deq)
}

// EncodeFrame appends frame f to the bitstream and returns the
// reconstruction.
func (e *Encoder) EncodeFrame(w *bitWriter, f *Frame, frameIdx int) *Frame {
	isIntra := e.recon == nil || frameIdx%e.KeyInterval == 0
	if isIntra {
		w.writeBit(1)
	} else {
		w.writeBit(0)
	}
	// Per-frame QP supports two-pass rate control.
	w.writeUE(uint32(e.QP))
	recon := NewFrame(f.W, f.H)
	var frameSAD uint64
	for my := 0; my < f.H; my += mbSize {
		for mx := 0; mx < f.W; mx += mbSize {
			var dx, dy int
			if !isIntra {
				var sad uint64
				dx, dy, sad = e.motionSearch(f, e.recon, mx, my)
				frameSAD += sad
				w.writeSE(int32(dx))
				w.writeSE(int32(dy))
			}
			// Each MB holds four 8x8 blocks.
			for by := 0; by < mbSize; by += blockSize {
				for bx := 0; bx < mbSize; bx += blockSize {
					var res [blockSize * blockSize]int32
					for y := 0; y < blockSize; y++ {
						for x := 0; x < blockSize; x++ {
							px, py := mx+bx+x, my+by+y
							var pred int32 = 128
							if !isIntra {
								pred = int32(e.recon.at(px+dx, py+dy))
							}
							res[y*blockSize+x] = int32(f.at(px, py)) - pred
						}
					}
					rec := e.encodeBlock(w, &res)
					if e.p != nil {
						e.p.Enter("reconstruct")
					}
					for y := 0; y < blockSize; y++ {
						for x := 0; x < blockSize; x++ {
							px, py := mx+bx+x, my+by+y
							if px >= f.W || py >= f.H {
								continue
							}
							var pred int32 = 128
							if !isIntra {
								pred = int32(e.recon.at(px+dx, py+dy))
							}
							recon.Pix[py*f.W+px] = clamp255(pred + rec[y*blockSize+x])
						}
					}
					if e.p != nil {
						e.p.Ops(blockSize * blockSize)
						e.p.Store(frameBase + uint64(my*f.W+mx))
						e.p.Leave()
					}
				}
			}
		}
	}
	e.SADPerFrame = append(e.SADPerFrame, frameSAD)
	e.recon = recon
	return recon
}

func clamp255(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Encode compresses the sequence into a bitstream.
func Encode(frames []*Frame, qp, keyInterval int, p *perf.Profiler) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("x264: no frames")
	}
	w := &bitWriter{}
	// Header: dimensions, frame count, QP, key interval.
	w.writeUE(uint32(frames[0].W))
	w.writeUE(uint32(frames[0].H))
	w.writeUE(uint32(len(frames)))
	w.writeUE(uint32(keyInterval))
	enc, err := NewEncoder(qp, keyInterval, p)
	if err != nil {
		return nil, err
	}
	for i, f := range frames {
		if f.W != frames[0].W || f.H != frames[0].H {
			return nil, fmt.Errorf("x264: frame %d has mismatched dimensions", i)
		}
		enc.EncodeFrame(w, f, i)
	}
	return w.buf, nil
}

// Decode expands a bitstream back to frames (the ldecod_r role).
func Decode(stream []byte, p *perf.Profiler) ([]*Frame, error) {
	if p != nil {
		p.SetFootprint("decode", 6<<10)
		p.Enter("decode")
		defer p.Leave()
	}
	r := &bitReader{buf: stream}
	w64, err := r.readUE()
	if err != nil {
		return nil, err
	}
	h64, err := r.readUE()
	if err != nil {
		return nil, err
	}
	n64, err := r.readUE()
	if err != nil {
		return nil, err
	}
	ki64, err := r.readUE()
	if err != nil {
		return nil, err
	}
	W, H, N := int(w64), int(h64), int(n64)
	if W <= 0 || H <= 0 || N <= 0 || N > 10000 || ki64 < 1 {
		return nil, errBitstream
	}
	var frames []*Frame
	var prev *Frame
	for fi := 0; fi < N; fi++ {
		intra, err := r.readBit()
		if err != nil {
			return nil, err
		}
		if intra == 0 && prev == nil {
			return nil, errBitstream
		}
		qp64, err := r.readUE()
		if err != nil {
			return nil, err
		}
		qp := int(qp64)
		if qp < 1 {
			return nil, errBitstream
		}
		cur := NewFrame(W, H)
		for my := 0; my < H; my += mbSize {
			for mx := 0; mx < W; mx += mbSize {
				var dx, dy int32
				if intra == 0 {
					if dx, err = r.readSE(); err != nil {
						return nil, err
					}
					if dy, err = r.readSE(); err != nil {
						return nil, err
					}
				}
				for by := 0; by < mbSize; by += blockSize {
					for bx := 0; bx < mbSize; bx += blockSize {
						nz, err := r.readUE()
						if err != nil {
							return nil, err
						}
						var deq [blockSize * blockSize]float64
						pos := 0
						for k := uint32(0); k < nz; k++ {
							run, err := r.readUE()
							if err != nil {
								return nil, err
							}
							lvl, err := r.readSE()
							if err != nil {
								return nil, err
							}
							pos += int(run)
							if pos >= blockSize*blockSize {
								return nil, errBitstream
							}
							deq[zigzag[pos]] = dequantize(lvl, qp)
							pos++
						}
						rec := idct(&deq)
						if p != nil {
							p.OpsBranch(blockSize*blockSize+uint64(nz)*4, 62, nz > 0)
							p.Load(frameBase + uint64(my*W+mx))
						}
						for y := 0; y < blockSize; y++ {
							for x := 0; x < blockSize; x++ {
								px, py := mx+bx+x, my+by+y
								if px >= W || py >= H {
									continue
								}
								var pred int32 = 128
								if intra == 0 {
									pred = int32(prev.at(px+int(dx), py+int(dy)))
								}
								cur.Pix[py*W+px] = clamp255(pred + rec[y*blockSize+x])
							}
						}
					}
				}
			}
		}
		frames = append(frames, cur)
		prev = cur
	}
	return frames, nil
}

// PSNR computes the peak signal-to-noise ratio between two frames
// (infinite for identical frames, capped at 99 dB).
func PSNR(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("x264: PSNR dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return 99, nil
	}
	psnr := 10 * math.Log10(255*255/mse)
	if psnr > 99 {
		psnr = 99
	}
	return psnr, nil
}

// Validate is the imagevalidate_r role: every decoded frame must reach the
// PSNR threshold against its original.
func Validate(orig, decoded []*Frame, threshold float64, p *perf.Profiler) (float64, error) {
	if p != nil {
		p.SetFootprint("psnr_validate", 2<<10)
		p.Enter("psnr_validate")
		defer p.Leave()
	}
	if len(orig) != len(decoded) {
		return 0, fmt.Errorf("x264: validate: %d original vs %d decoded frames", len(orig), len(decoded))
	}
	minPSNR := math.Inf(1)
	for i := range orig {
		v, err := PSNR(orig[i], decoded[i])
		if err != nil {
			return 0, err
		}
		if p != nil {
			p.Ops(uint64(orig[i].W*orig[i].H) / 4)
			p.LongOps(2)
		}
		if v < minPSNR {
			minPSNR = v
		}
		if v < threshold {
			return minPSNR, fmt.Errorf("x264: frame %d PSNR %.2f below threshold %.2f", i, v, threshold)
		}
	}
	return minPSNR, nil
}
