package x264

import (
	"testing"
	"testing/quick"
)

// TestExpGolombProperty round-trips arbitrary values through UE/SE coding.
func TestExpGolombProperty(t *testing.T) {
	f := func(u uint32, s int32, bits uint8) bool {
		u %= 1 << 24
		n := int(bits%20) + 1
		v := u & (1<<uint(n) - 1)
		w := &bitWriter{}
		w.writeUE(u)
		w.writeSE(s % (1 << 20))
		w.writeBits(v, n)
		r := &bitReader{buf: w.buf}
		gu, err1 := r.readUE()
		gs, err2 := r.readSE()
		gv, err3 := r.readBits(n)
		return err1 == nil && err2 == nil && err3 == nil &&
			gu == u && gs == s%(1<<20) && gv == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEncodeDecodeProperty round-trips random tiny frame sequences.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64, qp8 uint8) bool {
		qp := int(qp8%30) + 1
		frames := GenerateVideo(VideoParams{W: 32, H: 32, Frames: 2, Motion: 2, Noise: 10, Seed: seed})
		bits, err := Encode(frames, qp, 2, nil)
		if err != nil {
			return false
		}
		dec, err := Decode(bits, nil)
		return err == nil && len(dec) == 2 &&
			dec[0].W == 32 && dec[1].H == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
