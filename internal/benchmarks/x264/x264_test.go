package x264

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestBitstreamRoundTrip(t *testing.T) {
	w := &bitWriter{}
	w.writeBits(0b1011, 4)
	w.writeUE(0)
	w.writeUE(7)
	w.writeUE(255)
	w.writeSE(0)
	w.writeSE(-5)
	w.writeSE(9)
	r := &bitReader{buf: w.buf}
	if v, _ := r.readBits(4); v != 0b1011 {
		t.Errorf("bits = %b", v)
	}
	for _, want := range []uint32{0, 7, 255} {
		if v, err := r.readUE(); err != nil || v != want {
			t.Errorf("readUE = %d (%v), want %d", v, err, want)
		}
	}
	for _, want := range []int32{0, -5, 9} {
		if v, err := r.readSE(); err != nil || v != want {
			t.Errorf("readSE = %d (%v), want %d", v, err, want)
		}
	}
}

func TestBitReaderTruncation(t *testing.T) {
	r := &bitReader{buf: nil}
	if _, err := r.readBit(); !errors.Is(err, errBitstream) {
		t.Errorf("err = %v", err)
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range zigzag {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	// First entries follow the canonical pattern.
	if zigzag[0] != 0 || zigzag[1] != 1 || zigzag[2] != 8 {
		t.Errorf("zigzag head = %v", zigzag[:3])
	}
}

func TestDCTRoundTrip(t *testing.T) {
	var block [64]int32
	for i := range block {
		block[i] = int32((i*7)%255 - 127)
	}
	coefs := fdct(&block)
	back := idct(&coefs)
	for i := range block {
		if back[i] != block[i] {
			t.Fatalf("DCT round trip differs at %d: %d vs %d", i, back[i], block[i])
		}
	}
}

func TestEncodeDecodeReconstructionMatches(t *testing.T) {
	// The decoder must reproduce the encoder's local reconstruction
	// exactly (drift-free closed loop).
	frames := GenerateVideo(VideoParams{W: 48, H: 32, Frames: 5, Motion: 2, Noise: 8, Seed: 4})
	enc, err := NewEncoder(10, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &bitWriter{}
	w.writeUE(48)
	w.writeUE(32)
	w.writeUE(uint32(len(frames)))
	w.writeUE(3)
	var recons []*Frame
	for i, f := range frames {
		recons = append(recons, enc.EncodeFrame(w, f, i))
	}
	decoded, err := Decode(w.buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		for j := range decoded[i].Pix {
			if decoded[i].Pix[j] != recons[i].Pix[j] {
				t.Fatalf("frame %d pixel %d: decoder %d vs encoder recon %d",
					i, j, decoded[i].Pix[j], recons[i].Pix[j])
			}
		}
	}
}

func TestQualityImprovesWithFinerQP(t *testing.T) {
	frames := GenerateVideo(VideoParams{W: 64, H: 48, Frames: 4, Motion: 2, Noise: 8, Seed: 5})
	minPSNR := func(qp int) float64 {
		bits, err := Encode(frames, qp, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		worst := 1e9
		for i := range frames {
			v, err := PSNR(frames[i], dec[i])
			if err != nil {
				t.Fatal(err)
			}
			if v < worst {
				worst = v
			}
		}
		return worst
	}
	fine, coarse := minPSNR(2), minPSNR(40)
	if fine <= coarse {
		t.Errorf("fine QP PSNR %v should beat coarse %v", fine, coarse)
	}
	if fine < 35 {
		t.Errorf("fine-QP PSNR %v unexpectedly low", fine)
	}
}

func TestFinerQPCostsMoreBits(t *testing.T) {
	frames := GenerateVideo(VideoParams{W: 64, H: 48, Frames: 4, Motion: 2, Noise: 8, Seed: 6})
	fine, err := Encode(frames, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Encode(frames, 30, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) <= len(coarse) {
		t.Errorf("fine QP bits %d should exceed coarse %d", len(fine), len(coarse))
	}
}

func TestMotionCompensationHelps(t *testing.T) {
	// With moving content, P frames (keyInterval large) should need fewer
	// bits than all-intra.
	frames := GenerateVideo(VideoParams{W: 96, H: 64, Frames: 8, Motion: 2, Noise: 0, Seed: 7})
	inter, err := Encode(frames, 8, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	intra, err := Encode(frames, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inter) >= len(intra) {
		t.Errorf("inter coding (%d bytes) should beat all-intra (%d bytes)", len(inter), len(intra))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0x00}, nil); err == nil {
		t.Error("garbage stream should fail")
	}
	frames := GenerateVideo(VideoParams{W: 48, H: 32, Frames: 2, Motion: 1, Noise: 2, Seed: 8})
	bits, err := Encode(frames, 10, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bits[:len(bits)/2], nil); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, 1, nil); err == nil {
		t.Error("QP 0 should fail")
	}
	if _, err := NewEncoder(10, 0, nil); err == nil {
		t.Error("key interval 0 should fail")
	}
}

func TestGenerateVideoDeterministic(t *testing.T) {
	p := VideoParams{W: 32, H: 32, Frames: 3, Motion: 2, Noise: 8, Seed: 9}
	a, b := GenerateVideo(p), GenerateVideo(p)
	for i := range a {
		for j := range a[i].Pix {
			if a[i].Pix[j] != b[i].Pix[j] {
				t.Fatal("video generator not deterministic")
			}
		}
	}
}

func TestTwoPassRoundTripsAndAdapts(t *testing.T) {
	frames := GenerateVideo(VideoParams{W: 64, H: 48, Frames: 8, Motion: 4, Noise: 8, Seed: 10})
	bits, err := EncodeTwoPass(frames, 12, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bits, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(dec), len(frames))
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta < 5 {
		t.Errorf("alberta workloads = %d, want ≥ 5", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"me_search", "transform", "entropy", "decode", "psnr_validate"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(21, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
