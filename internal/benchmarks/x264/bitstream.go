// Package x264 reproduces 525.x264_r: a block-based video encoder. The
// benchmark's three-program structure is preserved: Decode (ldecod_r)
// expands the stored input video, Encode (x264_r) re-encodes it, and
// Validate (imagevalidate_r) compares frames by PSNR. The Alberta
// workloads' public-domain HD videos are replaced by a procedural video
// generator (moving patterns plus noise), and the script that prepares
// grayscale one- and two-pass variants is reproduced by the workload
// builder. Frames are luma-only (the paper's script generates grayscale
// versions).
package x264

import "errors"

// bitWriter emits a bitstream MSB first.
type bitWriter struct {
	buf  []byte
	bits uint8 // bits filled in the current byte
}

func (w *bitWriter) writeBit(b int) {
	if w.bits == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.bits)
	}
	w.bits = (w.bits + 1) % 8
}

func (w *bitWriter) writeBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(int(v>>uint(i)) & 1)
	}
}

// writeUE writes an unsigned exp-Golomb code.
func (w *bitWriter) writeUE(v uint32) {
	vv := v + 1
	n := 0
	for t := vv; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.writeBit(0)
	}
	w.writeBits(vv, n+1)
}

// writeSE writes a signed exp-Golomb code.
func (w *bitWriter) writeSE(v int32) {
	var u uint32
	if v <= 0 {
		u = uint32(-2 * v)
	} else {
		u = uint32(2*v - 1)
	}
	w.writeUE(u)
}

// errBitstream reports a truncated or invalid stream.
var errBitstream = errors.New("x264: corrupt bitstream")

// bitReader mirrors bitWriter.
type bitReader struct {
	buf  []byte
	pos  int
	bits uint8
}

func (r *bitReader) readBit() (int, error) {
	if r.pos >= len(r.buf) {
		return 0, errBitstream
	}
	b := int(r.buf[r.pos]>>(7-r.bits)) & 1
	r.bits++
	if r.bits == 8 {
		r.bits = 0
		r.pos++
	}
	return b, nil
}

func (r *bitReader) readBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// readUE reads an unsigned exp-Golomb code.
func (r *bitReader) readUE() (uint32, error) {
	zeros := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, errBitstream
		}
	}
	rest, err := r.readBits(zeros)
	if err != nil {
		return 0, err
	}
	return (1<<uint(zeros) | rest) - 1, nil
}

// readSE reads a signed exp-Golomb code.
func (r *bitReader) readSE() (int32, error) {
	u, err := r.readUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 0 {
		return -int32(u / 2), nil
	}
	return int32(u/2) + 1, nil
}
