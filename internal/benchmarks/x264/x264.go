package x264

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// VideoParams describe a procedurally generated test sequence. Resolutions
// are scaled-down stand-ins for the benchmark's 1280x720 requirement.
type VideoParams struct {
	W, H   int
	Frames int
	// Motion scales how fast patterns move (pixels/frame).
	Motion int
	// Noise is the per-pixel noise amplitude (0-64); more noise means
	// harder motion compensation and more residual energy.
	Noise int
	Seed  int64
}

// GenerateVideo renders the deterministic synthetic sequence: a moving
// bright rectangle and a moving dark disc over a gradient, plus noise.
func GenerateVideo(p VideoParams) []*Frame {
	rng := rand.New(rand.NewSource(p.Seed))
	frames := make([]*Frame, p.Frames)
	for t := 0; t < p.Frames; t++ {
		f := NewFrame(p.W, p.H)
		rectX := (t * p.Motion) % max(p.W-24, 1)
		rectY := (t * p.Motion / 2) % max(p.H-16, 1)
		discX := p.W - 20 - (t*p.Motion)%max(p.W-24, 1)
		discY := p.H / 2
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				v := 64 + (x*96)/max(p.W, 1) // background gradient
				if x >= rectX && x < rectX+24 && y >= rectY && y < rectY+16 {
					v = 220
				}
				dx, dy := x-discX, y-discY
				if dx*dx+dy*dy < 100 {
					v = 30
				}
				if p.Noise > 0 {
					v += rng.Intn(2*p.Noise+1) - p.Noise
				}
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				f.Pix[y*p.W+x] = uint8(v)
			}
		}
		frames[t] = f
	}
	return frames
}

// Workload is one 525.x264_r input: the source video parameters and the
// encoder controls (frames to encode, QP, key interval, one or two passes).
type Workload struct {
	core.Meta
	Video       VideoParams
	QP          int
	KeyInterval int
	TwoPass     bool
	// PSNRThreshold is the imagevalidate_r acceptance bar.
	PSNRThreshold float64
}

// EncodeTwoPass runs the two-pass pipeline the Alberta preparation script
// supports: pass 1 measures per-frame motion-compensation difficulty, pass
// 2 re-encodes with per-frame QP adapted to it (simple rate control).
func EncodeTwoPass(frames []*Frame, baseQP, keyInterval int, p *perf.Profiler) ([]byte, error) {
	pass1, err := NewEncoder(baseQP, keyInterval, p)
	if err != nil {
		return nil, err
	}
	w1 := &bitWriter{}
	w1.writeUE(uint32(frames[0].W))
	w1.writeUE(uint32(frames[0].H))
	w1.writeUE(uint32(len(frames)))
	w1.writeUE(uint32(keyInterval))
	for i, f := range frames {
		pass1.EncodeFrame(w1, f, i)
	}
	// Average SAD over P frames sets the baseline difficulty.
	var total, count uint64
	for i, s := range pass1.SADPerFrame {
		if i%keyInterval != 0 {
			total += s
			count++
		}
	}
	avg := uint64(1)
	if count > 0 {
		avg = max(total/count, 1)
	}
	// Pass 2: easy frames get finer quantization, hard frames coarser.
	enc, err := NewEncoder(baseQP, keyInterval, p)
	if err != nil {
		return nil, err
	}
	w := &bitWriter{}
	w.writeUE(uint32(frames[0].W))
	w.writeUE(uint32(frames[0].H))
	w.writeUE(uint32(len(frames)))
	w.writeUE(uint32(keyInterval))
	for i, f := range frames {
		qp := baseQP
		if i < len(pass1.SADPerFrame) && i%keyInterval != 0 {
			sad := pass1.SADPerFrame[i]
			switch {
			case sad > 2*avg:
				qp = baseQP + baseQP/2
			case sad*2 < avg:
				qp = max(baseQP/2, 1)
			}
		}
		enc.QP = qp
		enc.EncodeFrame(w, f, i)
	}
	return w.buf, nil
}

// Benchmark is the 525.x264_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "525.x264_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Video compression" }

// Workloads returns SPEC-style inputs plus Alberta workloads generated from
// different synthetic source videos and encoder settings.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, v VideoParams, qp, ki int, twoPass bool) core.Workload {
		return Workload{
			Meta: core.Meta{Name: name, Kind: kind}, Video: v,
			QP: qp, KeyInterval: ki, TwoPass: twoPass, PSNRThreshold: 26,
		}
	}
	return []core.Workload{
		mk("test", core.KindTest, VideoParams{W: 64, H: 48, Frames: 4, Motion: 2, Noise: 4, Seed: 1}, 12, 4, false),
		mk("train", core.KindTrain, VideoParams{W: 96, H: 64, Frames: 8, Motion: 3, Noise: 6, Seed: 2}, 12, 4, false),
		mk("refrate", core.KindRefrate, VideoParams{W: 128, H: 96, Frames: 12, Motion: 3, Noise: 6, Seed: 3}, 12, 6, false),
		mk("alberta.smooth", core.KindAlberta, VideoParams{W: 128, H: 96, Frames: 10, Motion: 1, Noise: 0, Seed: 11}, 10, 5, false),
		mk("alberta.noisy", core.KindAlberta, VideoParams{W: 128, H: 96, Frames: 10, Motion: 3, Noise: 24, Seed: 12}, 14, 5, false),
		mk("alberta.fastmotion", core.KindAlberta, VideoParams{W: 128, H: 96, Frames: 10, Motion: 7, Noise: 6, Seed: 13}, 12, 5, false),
		mk("alberta.twopass", core.KindAlberta, VideoParams{W: 112, H: 80, Frames: 10, Motion: 3, Noise: 8, Seed: 14}, 12, 5, true),
		mk("alberta.allintra", core.KindAlberta, VideoParams{W: 112, H: 80, Frames: 8, Motion: 3, Noise: 6, Seed: 15}, 12, 1, false),
	}, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("x264: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		out = append(out, Workload{
			Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Video: VideoParams{
				W: 96 + (i%3)*16, H: 64 + (i%3)*16,
				Frames: 6 + i%6, Motion: 1 + i%6, Noise: (i % 4) * 8,
				Seed: seed + int64(i),
			},
			QP: 8 + (i%4)*4, KeyInterval: 1 + i%6, TwoPass: i%3 == 0,
			PSNRThreshold: 24,
		})
	}
	return out, nil
}

// Run implements core.Benchmark: decode the stored input video, re-encode
// it, decode the result and validate frame quality — the benchmark's
// ldecod_r → x264_r → imagevalidate_r pipeline.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the stored .264 master bitstream, immutable after Prepare.
// The three measured phases allocate their frame buffers per Execute — the
// codec's output sizes are data-dependent — but the expensive master encode
// happens exactly once per cell.
type prepared struct {
	b      *Benchmark
	xw     Workload
	stored []byte
}

// Prepare implements core.Preparer: synthesize the source video and encode
// the high-quality master, both uninstrumented (the stored .264 input is
// prepared outside the measured run, as in SPEC's harness).
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	xw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	source := GenerateVideo(xw.Video)
	stored, err := Encode(source, 2, xw.KeyInterval, nil)
	if err != nil {
		return nil, err
	}
	return &prepared{b: b, xw: xw, stored: stored}, nil
}

// Execute implements core.PreparedWorkload: decode the master, encode with
// the workload's settings, then decode and PSNR-validate the result.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, xw := pw.b, pw.xw
	// ldecod_r: expand the stored input.
	master, err := Decode(pw.stored, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("x264: %s: decode input: %w", xw.Name, err)
	}
	// x264_r: encode with the workload's settings.
	var bits []byte
	if xw.TwoPass {
		bits, err = EncodeTwoPass(master, xw.QP, xw.KeyInterval, p)
	} else {
		bits, err = Encode(master, xw.QP, xw.KeyInterval, p)
	}
	if err != nil {
		return core.Result{}, fmt.Errorf("x264: %s: encode: %w", xw.Name, err)
	}
	// imagevalidate_r: decode and check PSNR against the master frames.
	decoded, err := Decode(bits, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("x264: %s: decode output: %w", xw.Name, err)
	}
	minPSNR, err := Validate(master, decoded, xw.PSNRThreshold, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("x264: %s: %w", xw.Name, err)
	}
	sum := core.NewChecksum().
		AddUint64(uint64(len(bits))).
		AddFloat(minPSNR)
	for _, f := range decoded {
		sum = sum.AddBytes(f.Pix[:min(len(f.Pix), 256)])
	}
	return core.Result{
		Benchmark: b.Name(),
		Workload:  xw.Name,
		Kind:      xw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
