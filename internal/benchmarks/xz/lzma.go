package xz

import (
	"encoding/binary"
	"fmt"

	"repro/internal/perf"
)

// Compression parameters.
const (
	minMatch    = 3
	maxMatch    = minMatch + 255
	hashBits    = 16
	maxChainLen = 64
)

// Synthetic address bases for the modeled cache hierarchy.
const (
	windowBase = 0x10_0000_0000
	hashBase   = 0x11_0000_0000
	chainBase  = 0x12_0000_0000
	outBase    = 0x13_0000_0000
)

// matchFinder locates LZ77 matches with a hash-chain dictionary over a
// sliding window of dictSize bytes — the data structure whose behaviour the
// paper found to dominate when a workload's repeated content fits in the
// dictionary.
type matchFinder struct {
	data     []byte
	dictSize int
	head     []int32
	prev     []int32
	p        *perf.Profiler
}

// Scratch holds the reusable buffers of repeated compress/decompress calls:
// the match finder's hash-chain arrays and the compressed-output buffer.
// The zero value is ready. Buffer identity never influences results or
// modeled events — reuse only removes allocation.
type Scratch struct {
	head    []int32
	prev    []int32
	payload []byte
	comp    []byte
}

// init resizes the scratch arrays for data, re-establishing the state a
// fresh matchFinder would see: head all -1; prev entries are only ever read
// after insert writes them, so stale contents are unreachable.
func (sc *Scratch) init(data []byte) {
	if cap(sc.head) < 1<<hashBits {
		sc.head = make([]int32, 1<<hashBits)
	}
	sc.head = sc.head[:1<<hashBits]
	for i := range sc.head {
		sc.head[i] = -1
	}
	if cap(sc.prev) < len(data) {
		sc.prev = make([]int32, len(data))
	}
	sc.prev = sc.prev[:len(data)]
}

func hash3(a, b, c byte) uint32 {
	return (uint32(a)<<16 | uint32(b)<<8 | uint32(c)) * 2654435761 >> (32 - hashBits)
}

// insert adds position pos to the dictionary.
func (m *matchFinder) insert(pos int) {
	if pos+minMatch > len(m.data) {
		return
	}
	h := hash3(m.data[pos], m.data[pos+1], m.data[pos+2])
	m.prev[pos] = m.head[h]
	m.head[h] = int32(pos)
	if m.p != nil {
		m.p.Ops(3)
		m.p.Store(hashBase + uint64(h)*4)
		m.p.Store(chainBase + uint64(pos%m.dictSize)*4)
	}
}

// find returns the longest match (length ≥ minMatch) for pos, walking at
// most maxChainLen dictionary entries inside the sliding window.
func (m *matchFinder) find(pos int) (length, dist int) {
	if pos+minMatch > len(m.data) {
		return 0, 0
	}
	limit := len(m.data) - pos
	if limit > maxMatch {
		limit = maxMatch
	}
	h := hash3(m.data[pos], m.data[pos+1], m.data[pos+2])
	cand := m.head[h]
	if m.p != nil {
		m.p.Ops(4)
		m.p.Load(hashBase + uint64(h)*4)
	}
	minPos := pos - m.dictSize
	bestLen := minMatch - 1
	for chain := 0; cand >= 0 && int(cand) > minPos && chain < maxChainLen; chain++ {
		c := int(cand)
		// Quick reject on the byte just past the current best.
		if m.p != nil {
			m.p.Ops(2)
			m.p.Load(windowBase + uint64(c%m.dictSize))
		}
		if bestLen >= limit {
			break // cannot improve: the best match already spans the limit
		}
		reject := c+bestLen >= len(m.data) || m.data[c+bestLen] != m.data[pos+bestLen]
		if m.p != nil {
			m.p.Branch(1, reject)
		}
		if !reject {
			l := 0
			for l < limit && m.data[c+l] == m.data[pos+l] {
				l++
				if m.p != nil && l%8 == 0 {
					m.p.Ops(8)
					m.p.Load(windowBase + uint64((c+l)%m.dictSize))
				}
			}
			if l > bestLen {
				bestLen = l
				dist = pos - c
			}
		}
		cand = m.prev[c]
		if m.p != nil {
			m.p.Ops(1)
			m.p.Load(chainBase + uint64(c%m.dictSize)*4)
		}
	}
	if bestLen >= minMatch {
		return bestLen, dist
	}
	return 0, 0
}

// models bundles the adaptive probability contexts of the stream.
type models struct {
	isMatch  [2]prob // context: 0 after literal, 1 after match
	literals []*bitTree
	length   *bitTree
	distSlot *bitTree
}

func newModels() *models {
	ms := &models{
		isMatch:  [2]prob{probInit, probInit},
		length:   newBitTree(8),
		distSlot: newBitTree(5),
	}
	for i := 0; i < 8; i++ {
		ms.literals = append(ms.literals, newBitTree(8))
	}
	return ms
}

func litContext(prev byte) int { return int(prev >> 5) }

// Compress compresses data with the given dictionary (window) size and
// reports modeled events to p (nil for unprofiled use).
func Compress(data []byte, dictSize int, p *perf.Profiler) ([]byte, error) {
	return compressWith(nil, data, dictSize, p)
}

// compressWith is Compress reusing sc's buffers (nil sc allocates fresh).
// The returned slice aliases sc's output buffer and is valid until the next
// compressWith on the same scratch.
func compressWith(sc *Scratch, data []byte, dictSize int, p *perf.Profiler) ([]byte, error) {
	if dictSize < 1<<10 {
		return nil, fmt.Errorf("xz: dictionary size %d too small", dictSize)
	}
	var local Scratch
	if sc == nil {
		sc = &local
	}
	sc.init(data)
	var header [12]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(dictSize))
	binary.LittleEndian.PutUint64(header[4:12], uint64(len(data)))

	// The payload gets its own buffer: the modeled Store addresses depend
	// on len(enc.out), so the header must not be prepended until the end.
	enc := newRangeEncoder()
	enc.out = sc.payload[:0]
	ms := newModels()
	mf := &matchFinder{data: data, dictSize: dictSize, head: sc.head, prev: sc.prev, p: p}

	if p != nil {
		p.SetFootprint("lz_find_matches", 4<<10)
		p.SetFootprint("rc_encode", 6<<10)
		p.SetFootprint("rc_decode", 6<<10)
	}

	pos := 0
	var prev byte
	afterMatch := 0
	for pos < len(data) {
		var length, dist int
		if p != nil {
			p.Enter("lz_find_matches")
		}
		length, dist = mf.find(pos)
		if p != nil {
			p.Leave()
			p.Enter("rc_encode")
		}
		if length == 0 {
			enc.encodeBit(&ms.isMatch[afterMatch], 0)
			ms.literals[litContext(prev)].encode(enc, uint32(data[pos]))
			if p != nil {
				p.Ops(12)
				// The coder's bit decisions are data dependent: random
				// data mispredicts, repetitive text is learnable.
				p.Branch(5, data[pos]&1 == 1)
				p.Branch(6, data[pos] > 127)
				p.Load(windowBase + uint64(pos%dictSize))
				p.Store(outBase + uint64(len(enc.out)%dictSize))
				p.Leave()
				p.Enter("lz_find_matches")
			}
			prev = data[pos]
			afterMatch = 0
			mf.insert(pos)
			pos++
		} else {
			enc.encodeBit(&ms.isMatch[afterMatch], 1)
			ms.length.encode(enc, uint32(length-minMatch))
			encodeDist(enc, ms, uint32(dist-1))
			if p != nil {
				p.Ops(20)
				p.Branch(7, length > 8)
				p.Branch(8, dist > 256)
				p.Store(outBase + uint64(len(enc.out)%dictSize))
				p.Leave()
				p.Enter("lz_find_matches")
			}
			for i := 0; i < length; i++ {
				mf.insert(pos + i)
			}
			prev = data[pos+length-1]
			afterMatch = 1
			pos += length
		}
		if p != nil {
			p.Leave()
		}
	}
	sc.payload = enc.finish()
	res := append(sc.comp[:0], header[:]...)
	res = append(res, sc.payload...)
	sc.comp = res
	return res, nil
}

// encodeDist writes dist (≥ 0) as a 5-bit significant-bit-count slot plus
// direct bits.
func encodeDist(enc *rangeEncoder, ms *models, dist uint32) {
	nbits := 1
	for v := dist; v > 1; v >>= 1 {
		nbits++
	}
	ms.distSlot.encode(enc, uint32(nbits-1))
	if nbits == 1 {
		// Distances 0 and 1 both have one significant-bit slot; a direct
		// bit disambiguates them.
		enc.encodeDirect(dist, 1)
		return
	}
	// Emit the bits below the implicit leading 1.
	enc.encodeDirect(dist&((1<<uint(nbits-1))-1), nbits-1)
}

func decodeDist(dec *rangeDecoder, ms *models) (uint32, error) {
	slot, err := ms.distSlot.decode(dec)
	if err != nil {
		return 0, err
	}
	nbits := int(slot) + 1
	if nbits == 1 {
		// dist is 0 or 1: the single significant bit pattern "1" would be
		// dist 1; dist 0 has nbits 1 too (value 0 encodes as 0 bits below
		// leading 1 of value... disambiguate via direct bit).
		b, err := dec.decodeDirect(1)
		if err != nil {
			return 0, err
		}
		return b, nil
	}
	low, err := dec.decodeDirect(nbits - 1)
	if err != nil {
		return 0, err
	}
	return 1<<uint(nbits-1) | low, nil
}

// Decompress reverses Compress.
func Decompress(comp []byte, p *perf.Profiler) ([]byte, error) {
	return decompressInto(nil, comp, p)
}

// decompressInto is Decompress appending into dst[:0] (growing it as
// needed), so repeated calls can recycle one output buffer.
func decompressInto(dst []byte, comp []byte, p *perf.Profiler) ([]byte, error) {
	if len(comp) < 12 {
		return nil, errCorrupt
	}
	dictSize := int(binary.LittleEndian.Uint32(comp[0:4]))
	origLen := int(binary.LittleEndian.Uint64(comp[4:12]))
	if dictSize <= 0 || origLen < 0 {
		return nil, errCorrupt
	}
	dec, err := newRangeDecoder(comp[12:])
	if err != nil {
		return nil, err
	}
	ms := newModels()
	out := dst[:0]
	if cap(out) < origLen {
		out = make([]byte, 0, origLen)
	}
	var prev byte
	afterMatch := 0
	if p != nil {
		p.Enter("rc_decode")
		defer p.Leave()
	}
	for len(out) < origLen {
		bit, err := dec.decodeBit(&ms.isMatch[afterMatch])
		if err != nil {
			return nil, err
		}
		if p != nil {
			p.Ops(8)
			p.Branch(2, bit == 1)
		}
		if bit == 0 {
			sym, err := ms.literals[litContext(prev)].decode(dec)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(sym))
			if p != nil {
				p.Branch(9, sym&1 == 1)
				p.Store(windowBase + uint64(len(out)%dictSize))
			}
			prev = byte(sym)
			afterMatch = 0
		} else {
			lraw, err := ms.length.decode(dec)
			if err != nil {
				return nil, err
			}
			length := int(lraw) + minMatch
			draw, err := decodeDist(dec, ms)
			if err != nil {
				return nil, err
			}
			dist := int(draw) + 1
			if dist > len(out) || len(out)+length > origLen {
				return nil, errCorrupt
			}
			start := len(out) - dist
			for i := 0; i < length; i++ {
				out = append(out, out[start+i])
			}
			if p != nil {
				p.Ops(uint64(length))
				p.Load(windowBase + uint64(start%dictSize))
				p.Store(windowBase + uint64(len(out)%dictSize))
			}
			prev = out[len(out)-1]
			afterMatch = 1
		}
	}
	return out, nil
}
