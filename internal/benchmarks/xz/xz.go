package xz

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// DataKind selects the synthetic data generator for a workload.
type DataKind int

const (
	// DataText is Markov-chain pseudo-text: highly compressible.
	DataText DataKind = iota
	// DataRandom is uniform random bytes: incompressible.
	DataRandom
	// DataRepeat repeats one block; when the block fits the dictionary
	// the run skews toward dictionary lookups (the paper's memoization
	// observation).
	DataRepeat
	// DataMixed interleaves text and random runs: medium entropy.
	DataMixed
)

// String names the data kind.
func (k DataKind) String() string {
	switch k {
	case DataText:
		return "text"
	case DataRandom:
		return "random"
	case DataRepeat:
		return "repeat"
	case DataMixed:
		return "mixed"
	default:
		return fmt.Sprintf("DataKind(%d)", int(k))
	}
}

// Workload is one 557.xz_r input: a synthetic data specification plus the
// dictionary size the compressor runs with.
type Workload struct {
	core.Meta
	Data      DataKind
	Size      int
	BlockSize int // DataRepeat block length
	DictSize  int
	Seed      int64
}

// GenerateData produces the workload's raw bytes deterministically.
func GenerateData(w Workload) []byte {
	rng := rand.New(rand.NewSource(w.Seed))
	switch w.Data {
	case DataText:
		return markovText(rng, w.Size)
	case DataRandom:
		b := make([]byte, w.Size)
		rng.Read(b)
		return b
	case DataRepeat:
		block := markovText(rng, w.BlockSize)
		out := make([]byte, 0, w.Size)
		for len(out) < w.Size {
			n := w.Size - len(out)
			if n > len(block) {
				n = len(block)
			}
			out = append(out, block[:n]...)
		}
		return out
	case DataMixed:
		out := make([]byte, 0, w.Size)
		for len(out) < w.Size {
			run := 256 + rng.Intn(1024)
			if run > w.Size-len(out) {
				run = w.Size - len(out)
			}
			if rng.Intn(2) == 0 {
				out = append(out, markovText(rng, run)...)
			} else {
				b := make([]byte, run)
				rng.Read(b)
				out = append(out, b...)
			}
		}
		return out
	default:
		return nil
	}
}

// markovText emits pseudo-text from a tiny order-1 word model.
func markovText(rng *rand.Rand, n int) []byte {
	words := []string{
		"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"compression", "dictionary", "window", "benchmark", "workload",
		"alberta", "spec", "cpu", "stream", "buffer", "encode", "decode",
	}
	out := make([]byte, 0, n)
	state := 0
	for len(out) < n {
		w := words[state]
		out = append(out, w...)
		out = append(out, ' ')
		// A sticky transition matrix creates repeated phrases.
		if rng.Intn(4) == 0 {
			state = rng.Intn(len(words))
		} else {
			state = (state*7 + 3) % len(words)
		}
		if rng.Intn(12) == 0 {
			out = append(out, '\n')
		}
	}
	return out[:n]
}

// Benchmark is the 557.xz_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "557.xz_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Data compression" }

const (
	kib = 1 << 10
	mib = 1 << 20
)

// Workloads returns SPEC-style inputs plus the eight Alberta workloads the
// paper describes: compressible and incompressible files, smaller and
// larger than the dictionary.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, dk DataKind, size, block, dict int, seed int64) core.Workload {
		return Workload{
			Meta: core.Meta{Name: name, Kind: kind},
			Data: dk, Size: size, BlockSize: block, DictSize: dict, Seed: seed,
		}
	}
	return []core.Workload{
		mk("test", core.KindTest, DataMixed, 8*kib, 0, 64*kib, 1),
		mk("train", core.KindTrain, DataMixed, 96*kib, 0, 64*kib, 2),
		mk("refrate", core.KindRefrate, DataMixed, 640*kib, 0, 256*kib, 3),
		// Compressibility × dictionary-fit grid (paper: "very
		// compressible and not very compressible... smaller and larger
		// than the dictionary").
		mk("alberta.text-small", core.KindAlberta, DataText, 48*kib, 0, 256*kib, 11),
		mk("alberta.text-large", core.KindAlberta, DataText, 768*kib, 0, 128*kib, 12),
		mk("alberta.random-small", core.KindAlberta, DataRandom, 48*kib, 0, 256*kib, 13),
		mk("alberta.random-large", core.KindAlberta, DataRandom, 512*kib, 0, 128*kib, 14),
		mk("alberta.repeat-fits", core.KindAlberta, DataRepeat, 512*kib, 4*kib, 256*kib, 15),
		mk("alberta.repeat-exceeds", core.KindAlberta, DataRepeat, 512*kib, 300*kib, 128*kib, 16),
		mk("alberta.mixed-small", core.KindAlberta, DataMixed, 64*kib, 0, 256*kib, 17),
		mk("alberta.mixed-large", core.KindAlberta, DataMixed, 512*kib, 0, 64*kib, 18),
	}, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("xz: n must be positive, got %d", n)
	}
	kinds := []DataKind{DataText, DataRandom, DataRepeat, DataMixed}
	dicts := []int{64 * kib, 128 * kib, 256 * kib}
	out := make([]core.Workload, 0, n)
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		out = append(out, Workload{
			Meta:      core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Data:      kinds[i%len(kinds)],
			Size:      (64 + int(s%8)*48) * kib,
			BlockSize: 4 * kib,
			DictSize:  dicts[i%len(dicts)],
			Seed:      s*2654435761 + 17,
		})
	}
	return out, nil
}

// Run implements core.Benchmark: decompress the stored input, recompress,
// decompress again, validate (the SPEC xz execution structure). It is
// exactly Prepare followed by Execute, so prepared and cold runs share one
// code path.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the stored (pre-compressed) input, immutable after
// Prepare, plus the reusable scratch: the compressor's hash-chain arrays
// and the two decompression output buffers (one per measured decompress —
// the round-trip output must not overwrite the phase-1 data it is checked
// against).
type prepared struct {
	b  *Benchmark
	xw Workload
	// stored is the compressed input file; immutable.
	stored []byte
	// scratch
	sc      Scratch
	dataBuf []byte
	rtBuf   []byte
}

// Prepare implements core.Preparer: generate the raw payload and compress
// it into the stored input, both uninstrumented (the stored input is
// prepared outside the measured run, as in SPEC's harness).
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	xw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	raw := GenerateData(xw)
	stored, err := Compress(raw, xw.DictSize, nil)
	if err != nil {
		return nil, err
	}
	return &prepared{b: b, xw: xw, stored: stored}, nil
}

// Execute implements core.PreparedWorkload: the three measured phases.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, xw := pw.b, pw.xw
	// Measured phase 1: decompress the stored file to memory.
	data, err := decompressInto(pw.dataBuf, pw.stored, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("xz: %s: decompress stored: %w", xw.Name, err)
	}
	pw.dataBuf = data
	// Phase 2: compress.
	comp, err := compressWith(&pw.sc, data, xw.DictSize, p)
	if err != nil {
		return core.Result{}, err
	}
	// Phase 3: decompress again and validate.
	rt, err := decompressInto(pw.rtBuf, comp, p)
	if err != nil {
		return core.Result{}, fmt.Errorf("xz: %s: decompress round trip: %w", xw.Name, err)
	}
	pw.rtBuf = rt
	var crcIn, crcOut core.Checksum
	if p != nil {
		p.Enter("check_crc")
	}
	crcIn = core.NewChecksum().AddBytes(data)
	crcOut = core.NewChecksum().AddBytes(rt)
	if p != nil {
		p.Ops(uint64(len(data)+len(rt)) / 4)
		p.Leave()
	}
	if crcIn != crcOut {
		return core.Result{}, fmt.Errorf("xz: %s: round trip mismatch", xw.Name)
	}
	sum := core.NewChecksum().
		AddUint64(crcIn.Value()).
		AddUint64(uint64(len(comp))).
		AddUint64(uint64(len(data)))
	return core.Result{
		Benchmark: b.Name(),
		Workload:  xw.Name,
		Kind:      xw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
