package xz

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestRoundTripSimple(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("abcabcabcabcabcabcabc"),
		[]byte("hello world hello world hello"),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("xyz"), 5000),
	}
	for _, data := range cases {
		comp, err := Compress(data, 64*kib, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(comp, nil)
		if err != nil {
			t.Fatalf("decompress %d bytes: %v", len(data), err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip failed for %d bytes", len(data))
		}
	}
}

func TestRoundTripRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50000)
		data := make([]byte, n)
		rng.Read(data)
		comp, err := Compress(data, 32*kib, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Decompress(comp, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp, err := Compress(data, 16*kib, nil)
		if err != nil {
			return false
		}
		out, err := Decompress(comp, nil)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompressionRatioOrdering(t *testing.T) {
	// Text compresses much better than random bytes.
	text := GenerateData(Workload{Data: DataText, Size: 64 * kib, Seed: 1})
	rnd := GenerateData(Workload{Data: DataRandom, Size: 64 * kib, Seed: 1})
	ct, err := Compress(text, 64*kib, nil)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Compress(rnd, 64*kib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) >= len(rnd)/4 {
		t.Errorf("text compressed to %d of %d: expected strong compression", len(ct), len(text))
	}
	if len(cr) < len(rnd) {
		t.Errorf("random data compressed from %d to %d: should not compress", len(rnd), len(cr))
	}
	if len(cr) > len(rnd)+len(rnd)/10 {
		t.Errorf("random data expanded by more than 10%%: %d → %d", len(rnd), len(cr))
	}
}

func TestRepeatBlockCompressesNearlyAway(t *testing.T) {
	// A 4 KiB block repeated to 256 KiB, with a dictionary that holds it,
	// should collapse to a tiny stream of long matches.
	data := GenerateData(Workload{Data: DataRepeat, Size: 256 * kib, BlockSize: 4 * kib, Seed: 3})
	comp, err := Compress(data, 64*kib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > len(data)/20 {
		t.Errorf("repeated block compressed only to %d of %d", len(comp), len(data))
	}
}

func TestDictionarySizeLimitsMatches(t *testing.T) {
	// With a block larger than the dictionary, matches can't reach the
	// previous copy, so compression degrades sharply versus a fitting
	// dictionary.
	data := GenerateData(Workload{Data: DataRepeat, Size: 128 * kib, BlockSize: 24 * kib, Seed: 4})
	fits, err := Compress(data, 64*kib, nil)
	if err != nil {
		t.Fatal(err)
	}
	tooSmall, err := Compress(data, 8*kib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tooSmall) <= len(fits) {
		t.Errorf("small dictionary (%d bytes out) should lose to fitting one (%d bytes out)",
			len(tooSmall), len(fits))
	}
	// Both must still round trip.
	for _, c := range [][]byte{fits, tooSmall} {
		out, err := Decompress(c, nil)
		if err != nil || !bytes.Equal(out, data) {
			t.Fatalf("round trip failed: %v", err)
		}
	}
}

func TestDecompressCorruptInput(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3}, nil); err == nil {
		t.Error("short input should fail")
	}
	data := []byte("some reasonable input data for compression")
	comp, err := Compress(data, 16*kib, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the stream body.
	if _, err := Decompress(comp[:len(comp)-6], nil); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestCompressRejectsTinyDictionary(t *testing.T) {
	if _, err := Compress([]byte("x"), 16, nil); err == nil {
		t.Error("tiny dictionary should be rejected")
	}
}

func TestGenerateDataDeterminism(t *testing.T) {
	for _, k := range []DataKind{DataText, DataRandom, DataRepeat, DataMixed} {
		w := Workload{Data: k, Size: 8 * kib, BlockSize: kib, Seed: 5}
		a, b := GenerateData(w), GenerateData(w)
		if !bytes.Equal(a, b) {
			t.Errorf("%v data not deterministic", k)
		}
		if len(a) != w.Size {
			t.Errorf("%v size = %d, want %d", k, len(a), w.Size)
		}
	}
}

func TestDataKindString(t *testing.T) {
	if DataText.String() != "text" || DataKind(42).String() == "" {
		t.Error("DataKind.String misbehaves")
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 8 {
		t.Errorf("alberta workloads = %d, want 8 (paper ships eight)", alberta)
	}
}

func TestBenchmarkRun(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"lz_find_matches", "rc_encode", "rc_decode"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{Name: "w"}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestCoverageShiftsWithCompressibility(t *testing.T) {
	// The paper's Figure 2 point: xz redistributes time between match
	// finding and entropy coding as the workload changes.
	coverage := func(dk DataKind, block int) map[string]float64 {
		b := New()
		p := perf.New()
		w := Workload{
			Meta: core.Meta{Name: "probe", Kind: core.KindAlberta},
			Data: dk, Size: 96 * kib, BlockSize: block, DictSize: 64 * kib, Seed: 7,
		}
		if _, err := b.Run(w, p); err != nil {
			t.Fatal(err)
		}
		return p.Report().Coverage
	}
	repeat := coverage(DataRepeat, 4*kib)
	random := coverage(DataRandom, 0)
	// Random data spends relatively more modeled time in the range coder
	// (every byte is a literal) than the repeated data, which skews
	// toward long matches.
	if random["rc_encode"] <= repeat["rc_encode"] {
		t.Errorf("rc_encode coverage: random %v should exceed repeat %v",
			random["rc_encode"], repeat["rc_encode"])
	}
}

func TestGenerateWorkloadsDeterministic(t *testing.T) {
	b := New()
	a1, err := b.GenerateWorkloads(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := b.GenerateWorkloads(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i].(Workload) != a2[i].(Workload) {
			t.Errorf("workload %d differs", i)
		}
	}
	if _, err := b.GenerateWorkloads(1, -1); err == nil {
		t.Error("negative n should fail")
	}
}

func TestBitTreeRoundTrip(t *testing.T) {
	enc := newRangeEncoder()
	tree := newBitTree(8)
	syms := []uint32{0, 1, 127, 128, 255, 42, 42, 42, 200}
	for _, s := range syms {
		tree.encode(enc, s)
	}
	buf := enc.finish()
	dec, err := newRangeDecoder(buf)
	if err != nil {
		t.Fatal(err)
	}
	tree2 := newBitTree(8)
	for i, want := range syms {
		got, err := tree2.decode(dec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("symbol %d: got %d, want %d", i, got, want)
		}
	}
}

func TestDirectBitsRoundTrip(t *testing.T) {
	enc := newRangeEncoder()
	vals := []struct {
		v uint32
		n int
	}{{0, 1}, {1, 1}, {5, 3}, {1023, 10}, {0xABCDE, 20}}
	for _, c := range vals {
		enc.encodeDirect(c.v, c.n)
	}
	dec, err := newRangeDecoder(enc.finish())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range vals {
		got, err := dec.decodeDirect(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.v {
			t.Errorf("value %d: got %d, want %d", i, got, c.v)
		}
	}
}
