// Package xz reproduces 557.xz_r: a sliding-window LZ77 compressor with an
// LZMA-style adaptive binary range coder. The benchmark's execution, like
// SPEC's, decompresses an input to memory, recompresses it, decompresses it
// again, and validates checksums. The Alberta workloads vary the
// compressibility of the data and its size relative to the dictionary,
// which shifts execution between dictionary lookups (match finding) and the
// entropy coder — the effect the paper's Section IV-A discussion of the
// sliding-window dictionary highlights.
package xz

import "errors"

// Probability model constants (LZMA-style 11-bit probabilities).
const (
	probBits  = 11
	probInit  = 1 << (probBits - 1)
	moveBits  = 5
	topValue  = 1 << 24
	byteShift = 8
)

// prob is an adaptive binary probability.
type prob uint16

// rangeEncoder is a carry-propagating binary range encoder.
type rangeEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

func newRangeEncoder() *rangeEncoder {
	return &rangeEncoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

func (e *rangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		carry := byte(e.low >> 32)
		for ; e.cacheSize > 0; e.cacheSize-- {
			e.out = append(e.out, e.cache+carry)
			e.cache = 0xFF
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// encodeBit encodes bit with the adaptive probability p.
func (e *rangeEncoder) encodeBit(p *prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// encodeDirect encodes n bits of v without a probability model.
func (e *rangeEncoder) encodeDirect(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		e.rng >>= 1
		bit := (v >> uint(i)) & 1
		if bit != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// finish flushes the encoder and returns the byte stream.
func (e *rangeEncoder) finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// errCorrupt reports a truncated or invalid compressed stream.
var errCorrupt = errors.New("xz: corrupt stream")

// rangeDecoder mirrors rangeEncoder.
type rangeDecoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
}

func newRangeDecoder(in []byte) (*rangeDecoder, error) {
	if len(in) < 5 {
		return nil, errCorrupt
	}
	d := &rangeDecoder{rng: 0xFFFFFFFF, in: in, pos: 1}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.in[d.pos])
		d.pos++
	}
	return d, nil
}

func (d *rangeDecoder) normalize() error {
	for d.rng < topValue {
		if d.pos >= len(d.in) {
			// Allow draining: the encoder appends 5 flush bytes, so
			// reads past the end only happen on corrupt input.
			return errCorrupt
		}
		d.code = d.code<<8 | uint32(d.in[d.pos])
		d.pos++
		d.rng <<= 8
	}
	return nil
}

func (d *rangeDecoder) decodeBit(p *prob) (int, error) {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> moveBits
		bit = 0
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	if err := d.normalize(); err != nil {
		return 0, err
	}
	return bit, nil
}

func (d *rangeDecoder) decodeDirect(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		d.rng >>= 1
		v <<= 1
		if d.code >= d.rng {
			d.code -= d.rng
			v |= 1
		}
		if err := d.normalize(); err != nil {
			return 0, err
		}
	}
	return v, nil
}

// bitTree is a fixed-depth binary tree of adaptive probabilities encoding
// n-bit symbols MSB first.
type bitTree struct {
	probs []prob
	bits  int
}

func newBitTree(bits int) *bitTree {
	t := &bitTree{probs: make([]prob, 1<<bits), bits: bits}
	for i := range t.probs {
		t.probs[i] = probInit
	}
	return t
}

func (t *bitTree) encode(e *rangeEncoder, sym uint32) {
	node := uint32(1)
	for i := t.bits - 1; i >= 0; i-- {
		bit := int((sym >> uint(i)) & 1)
		e.encodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

func (t *bitTree) decode(d *rangeDecoder) (uint32, error) {
	node := uint32(1)
	for i := 0; i < t.bits; i++ {
		bit, err := d.decodeBit(&t.probs[node])
		if err != nil {
			return 0, err
		}
		node = node<<1 | uint32(bit)
	}
	return node - 1<<t.bits, nil
}
