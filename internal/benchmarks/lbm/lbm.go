// Package lbm reproduces 519.lbm_r: a D3Q19 lattice-Boltzmann (BGK)
// simulation of incompressible fluid flowing through a channel containing
// obstacles. A workload is an obstacle-geometry description plus command
// line parameters (number of steps, relaxation). The twenty-four Alberta
// workloads vary the shape and size of the objects, the object density and
// the simulation parameters, exactly the knobs the paper lists.
package lbm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// q is the number of discrete velocities in D3Q19.
const q = 19

// D3Q19 velocity set and weights.
var (
	cx = [q]int{0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0}
	cy = [q]int{0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1}
	cz = [q]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1}
	wt = [q]float64{
		1.0 / 3,
		1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
		1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
	}
	// opposite[i] is the bounce-back direction of i.
	opposite [q]int
)

func init() {
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			if cx[j] == -cx[i] && cy[j] == -cy[i] && cz[j] == -cz[i] {
				opposite[i] = j
			}
		}
	}
}

// ObstacleKind selects the geometry generator.
type ObstacleKind int

// Obstacle shapes (the paper varies "the shape and size of the objects").
const (
	ObstacleNone ObstacleKind = iota
	ObstacleSphere
	ObstacleBox
	ObstacleCylinder
	ObstacleRandom // random porous blockage
)

// String names the kind.
func (k ObstacleKind) String() string {
	switch k {
	case ObstacleNone:
		return "none"
	case ObstacleSphere:
		return "sphere"
	case ObstacleBox:
		return "box"
	case ObstacleCylinder:
		return "cylinder"
	case ObstacleRandom:
		return "random"
	default:
		return fmt.Sprintf("ObstacleKind(%d)", int(k))
	}
}

// Geometry is the channel description (the benchmark's ASCII input file).
type Geometry struct {
	NX, NY, NZ int
	// Solid marks obstacle cells.
	Solid []bool
}

// idx flattens coordinates.
func (g *Geometry) idx(x, y, z int) int { return (z*g.NY+y)*g.NX + x }

// GenerateGeometry builds the channel with the requested obstacle.
func GenerateGeometry(nx, ny, nz int, kind ObstacleKind, size float64, density float64, seed int64) (*Geometry, error) {
	if nx < 4 || ny < 4 || nz < 4 {
		return nil, fmt.Errorf("lbm: grid %dx%dx%d too small", nx, ny, nz)
	}
	g := &Geometry{NX: nx, NY: ny, NZ: nz, Solid: make([]bool, nx*ny*nz)}
	cxf, cyf, czf := float64(nx)/2, float64(ny)/2, float64(nz)/2
	r := size * float64(min(nx, ny, nz)) / 2
	rng := rand.New(rand.NewSource(seed))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				// Channel walls on Y boundaries.
				if y == 0 || y == ny-1 {
					g.Solid[g.idx(x, y, z)] = true
					continue
				}
				dx, dy, dz := float64(x)-cxf, float64(y)-cyf, float64(z)-czf
				solid := false
				switch kind {
				case ObstacleSphere:
					solid = dx*dx+dy*dy+dz*dz < r*r
				case ObstacleBox:
					solid = math.Abs(dx) < r && math.Abs(dy) < r && math.Abs(dz) < r
				case ObstacleCylinder:
					solid = dx*dx+dy*dy < r*r
				case ObstacleRandom:
					solid = rng.Float64() < density
				}
				g.Solid[g.idx(x, y, z)] = solid
			}
		}
	}
	return g, nil
}

// Params are the command-line arguments of the benchmark.
type Params struct {
	Steps int
	// Omega is the BGK relaxation parameter (0 < omega < 2).
	Omega float64
	// Accel is the body force driving flow along X.
	Accel float64
}

// ErrBadParams reports invalid simulation parameters.
var ErrBadParams = errors.New("lbm: bad parameters")

// Sim is the lattice state.
type Sim struct {
	g    *Geometry
	f    []float64 // current distributions, cell-major [cell*q + dir]
	fNew []float64
	prm  Params
	p    *perf.Profiler
}

const cellBase = 0xA0_0000_0000

// NewSim initializes the lattice at rest.
func NewSim(g *Geometry, prm Params, p *perf.Profiler) (*Sim, error) {
	if prm.Steps <= 0 || prm.Omega <= 0 || prm.Omega >= 2 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, prm)
	}
	n := g.NX * g.NY * g.NZ
	s := &Sim{g: g, f: make([]float64, n*q), fNew: make([]float64, n*q), prm: prm}
	s.Reset(p)
	return s, nil
}

// Reset returns the lattice to its initial at-rest state and re-aims the
// sim at p, recycling the two distribution arrays: a reset sim is
// bit-identical to a fresh NewSim (f holds the rest-state weights, fNew is
// zeroed), so one pair of lattice allocations serves every repetition.
func (s *Sim) Reset(p *perf.Profiler) {
	s.p = p
	n := s.g.NX * s.g.NY * s.g.NZ
	for c := 0; c < n; c++ {
		for i := 0; i < q; i++ {
			s.f[c*q+i] = wt[i]
		}
	}
	clear(s.fNew)
	if p != nil {
		p.SetFootprint("collide", 6<<10)
		p.SetFootprint("stream", 4<<10)
	}
}

// step advances one time step: collide then stream with bounce-back.
func (s *Sim) step() {
	g := s.g
	n := g.NX * g.NY * g.NZ
	// Collision (BGK) with a body force on fluid cells.
	if s.p != nil {
		s.p.Enter("collide")
	}
	for c := 0; c < n; c++ {
		if g.Solid[c] {
			continue
		}
		base := c * q
		var rho, ux, uy, uz float64
		for i := 0; i < q; i++ {
			fi := s.f[base+i]
			rho += fi
			ux += fi * float64(cx[i])
			uy += fi * float64(cy[i])
			uz += fi * float64(cz[i])
		}
		ux = ux/rho + s.prm.Accel
		uy /= rho
		uz /= rho
		usq := ux*ux + uy*uy + uz*uz
		for i := 0; i < q; i++ {
			cu := float64(cx[i])*ux + float64(cy[i])*uy + float64(cz[i])*uz
			feq := wt[i] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*usq)
			s.f[base+i] += s.prm.Omega * (feq - s.f[base+i])
		}
		if s.p != nil && c%8 == 0 {
			// Sparse data-dependent guard (flow-direction dependent
			// handling in the real kernel's flag tests), fused with the
			// cell's arithmetic work.
			s.p.OpsBranch(q*6, 91, ux > 0)
			s.p.LongOps(2)
			s.p.LoadStore(cellBase + uint64(c)*152)
		}
	}
	if s.p != nil {
		s.p.Leave()
		s.p.Enter("stream")
	}
	// Streaming with periodic X/Z boundaries and bounce-back at solids.
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				c := g.idx(x, y, z)
				if g.Solid[c] {
					continue
				}
				for i := 0; i < q; i++ {
					tx := (x + cx[i] + g.NX) % g.NX
					ty := y + cy[i]
					tz := (z + cz[i] + g.NZ) % g.NZ
					if ty < 0 || ty >= g.NY {
						// Should not happen: walls at y=0 and ny-1
						// absorb via bounce-back below.
						continue
					}
					t := g.idx(tx, ty, tz)
					if g.Solid[t] {
						// Bounce back into the source cell.
						s.fNew[c*q+opposite[i]] = s.f[c*q+i]
					} else {
						s.fNew[t*q+i] = s.f[c*q+i]
					}
				}
				if s.p != nil && c%16 == 0 {
					s.p.OpsBranch(q*3, 90, g.Solid[(c+1)%n])
					s.p.Load(cellBase + uint64(c)*152)
					s.p.Store(cellBase + uint64((c+g.NX))*152)
				}
			}
		}
	}
	// Solid cells keep their (irrelevant) distributions.
	for c := 0; c < n; c++ {
		if g.Solid[c] {
			copy(s.fNew[c*q:(c+1)*q], s.f[c*q:(c+1)*q])
		}
	}
	s.f, s.fNew = s.fNew, s.f
	if s.p != nil {
		s.p.Leave()
	}
}

// Stats summarize the flow field.
type Stats struct {
	TotalMass  float64
	MeanUx     float64
	KineticE   float64
	FluidCells int
}

// Run advances the configured number of steps and reports statistics.
func (s *Sim) Run() Stats {
	for t := 0; t < s.prm.Steps; t++ {
		s.step()
	}
	g := s.g
	n := g.NX * g.NY * g.NZ
	var st Stats
	for c := 0; c < n; c++ {
		if g.Solid[c] {
			continue
		}
		st.FluidCells++
		base := c * q
		var rho, ux, uy, uz float64
		for i := 0; i < q; i++ {
			fi := s.f[base+i]
			rho += fi
			ux += fi * float64(cx[i])
			uy += fi * float64(cy[i])
			uz += fi * float64(cz[i])
		}
		st.TotalMass += rho
		if rho > 0 {
			st.MeanUx += ux / rho
			st.KineticE += (ux*ux + uy*uy + uz*uz) / rho
		}
	}
	if st.FluidCells > 0 {
		st.MeanUx /= float64(st.FluidCells)
	}
	return st
}

// Workload is one 519.lbm_r input.
type Workload struct {
	core.Meta
	NX, NY, NZ int
	Kind       ObstacleKind
	Size       float64
	Density    float64
	Seed       int64
	Params     Params
}

// Benchmark is the 519.lbm_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "519.lbm_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Fluid dynamics (Lattice Boltzmann)" }

// Workloads returns SPEC-style inputs plus twenty-four Alberta workloads
// varying obstacle shape, size, density and step count.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, ok ObstacleKind, size, density float64, steps int, seed int64) core.Workload {
		return Workload{
			Meta: core.Meta{Name: name, Kind: kind},
			NX:   16, NY: 12, NZ: 12,
			Kind: ok, Size: size, Density: density, Seed: seed,
			Params: Params{Steps: steps, Omega: 1.2, Accel: 0.003},
		}
	}
	ws := []core.Workload{
		mk("test", core.KindTest, ObstacleSphere, 0.4, 0, 4, 1),
		mk("train", core.KindTrain, ObstacleSphere, 0.4, 0, 20, 2),
		mk("refrate", core.KindRefrate, ObstacleSphere, 0.4, 0, 60, 3),
	}
	shapes := []ObstacleKind{ObstacleSphere, ObstacleBox, ObstacleCylinder, ObstacleRandom}
	sizes := []float64{0.25, 0.5}
	steps := []int{16, 32, 48}
	i := 0
	for _, sh := range shapes {
		for _, sz := range sizes {
			for _, st := range steps {
				density := 0.0
				if sh == ObstacleRandom {
					density = 0.05 + 0.05*float64(i%3)
				}
				ws = append(ws, mk(
					fmt.Sprintf("alberta.%s-s%.0f-t%d", sh, sz*100, st),
					core.KindAlberta, sh, sz, density, st, 100+int64(i)))
				i++
			}
		}
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("lbm: n must be positive, got %d", n)
	}
	shapes := []ObstacleKind{ObstacleSphere, ObstacleBox, ObstacleCylinder, ObstacleRandom}
	var out []core.Workload
	for i := 0; i < n; i++ {
		out = append(out, Workload{
			Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			NX:   12 + (i%3)*4, NY: 10 + (i%2)*4, NZ: 10,
			Kind: shapes[i%len(shapes)], Size: 0.2 + 0.1*float64(i%4),
			Density: 0.04 * float64(i%3), Seed: seed + int64(i),
			Params: Params{Steps: 12 + (i%4)*8, Omega: 0.8 + 0.2*float64(i%5), Accel: 0.003},
		})
	}
	return out, nil
}

// Run implements core.Benchmark. It is exactly Prepare followed by Execute,
// so prepared and cold runs share one code path.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the generated geometry (immutable after Prepare) and the
// sim whose lattice arrays are the reusable scratch, reset in place at the
// start of every Execute.
type prepared struct {
	b   *Benchmark
	lw  Workload
	sim *Sim
}

// Prepare implements core.Preparer: generate the geometry and allocate the
// lattice once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	lw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	g, err := GenerateGeometry(lw.NX, lw.NY, lw.NZ, lw.Kind, lw.Size, lw.Density, lw.Seed)
	if err != nil {
		return nil, err
	}
	sim, err := NewSim(g, lw.Params, nil)
	if err != nil {
		return nil, err
	}
	return &prepared{b: b, lw: lw, sim: sim}, nil
}

// Execute implements core.PreparedWorkload.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, lw := pw.b, pw.lw
	pw.sim.Reset(p)
	st := pw.sim.Run()
	if st.FluidCells == 0 {
		return core.Result{}, fmt.Errorf("lbm: %s: geometry has no fluid cells", lw.Name)
	}
	if math.IsNaN(st.TotalMass) || math.IsInf(st.TotalMass, 0) {
		return core.Result{}, fmt.Errorf("lbm: %s: simulation diverged", lw.Name)
	}
	sum := core.NewChecksum().
		AddFloat(st.TotalMass).
		AddFloat(st.MeanUx).
		AddFloat(st.KineticE).
		AddUint64(uint64(st.FluidCells))
	return core.Result{
		Benchmark: b.Name(),
		Workload:  lw.Name,
		Kind:      lw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
