package lbm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestOppositeDirections(t *testing.T) {
	for i := 0; i < q; i++ {
		o := opposite[i]
		if cx[o] != -cx[i] || cy[o] != -cy[i] || cz[o] != -cz[i] {
			t.Errorf("opposite[%d] = %d is not the reverse", i, o)
		}
		if opposite[o] != i {
			t.Errorf("opposite not involutive at %d", i)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	s := 0.0
	for _, w := range wt {
		s += w
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("weights sum to %v", s)
	}
}

func TestMassConservationNoForcing(t *testing.T) {
	// With no body force and no obstacle interior, total mass must be
	// conserved exactly by collide+stream+bounce-back.
	g, err := GenerateGeometry(8, 8, 8, ObstacleSphere, 0.3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, Params{Steps: 10, Omega: 1.0, Accel: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	massOf := func() float64 {
		total := 0.0
		n := g.NX * g.NY * g.NZ
		for c := 0; c < n; c++ {
			if g.Solid[c] {
				continue
			}
			for i := 0; i < q; i++ {
				total += sim.f[c*q+i]
			}
		}
		return total
	}
	before := massOf()
	for i := 0; i < 10; i++ {
		sim.step()
	}
	after := massOf()
	if math.Abs(before-after) > 1e-9*before {
		t.Errorf("mass drifted: %v → %v", before, after)
	}
}

func TestForcingProducesFlow(t *testing.T) {
	g, err := GenerateGeometry(12, 8, 8, ObstacleNone, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(g, Params{Steps: 40, Omega: 1.2, Accel: 0.005}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.MeanUx <= 0 {
		t.Errorf("mean flow = %v, want positive along the driven axis", st.MeanUx)
	}
}

func TestObstacleSlowsFlow(t *testing.T) {
	run := func(kind ObstacleKind, size float64) float64 {
		g, err := GenerateGeometry(16, 10, 10, kind, size, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(g, Params{Steps: 30, Omega: 1.2, Accel: 0.004}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run().MeanUx
	}
	open := run(ObstacleNone, 0)
	blocked := run(ObstacleCylinder, 0.6)
	if blocked >= open {
		t.Errorf("cylinder-obstructed flow %v should be slower than open channel %v", blocked, open)
	}
}

func TestGeometryShapes(t *testing.T) {
	for _, kind := range []ObstacleKind{ObstacleSphere, ObstacleBox, ObstacleCylinder, ObstacleRandom} {
		g, err := GenerateGeometry(10, 10, 10, kind, 0.5, 0.2, 3)
		if err != nil {
			t.Fatal(err)
		}
		solids := 0
		for _, s := range g.Solid {
			if s {
				solids++
			}
		}
		// Walls alone contribute 2*10*10 = 200 cells.
		if solids <= 200 {
			t.Errorf("%v: only %d solid cells, obstacle missing", kind, solids)
		}
		if solids >= len(g.Solid) {
			t.Errorf("%v: grid entirely solid", kind)
		}
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := GenerateGeometry(2, 8, 8, ObstacleNone, 0, 0, 1); err == nil {
		t.Error("tiny grid should fail")
	}
}

func TestParamValidation(t *testing.T) {
	g, _ := GenerateGeometry(8, 8, 8, ObstacleNone, 0, 0, 1)
	for _, prm := range []Params{
		{Steps: 0, Omega: 1},
		{Steps: 5, Omega: 0},
		{Steps: 5, Omega: 2.5},
	} {
		if _, err := NewSim(g, prm, nil); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: err = %v, want ErrBadParams", prm, err)
		}
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() Stats {
		g, err := GenerateGeometry(10, 8, 8, ObstacleRandom, 0, 0.1, 5)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(g, Params{Steps: 15, Omega: 1.1, Accel: 0.002}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 24 {
		t.Errorf("alberta workloads = %d, want 24 (paper ships twenty-four)", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	if rep.Coverage["collide"] == 0 || rep.Coverage["stream"] == 0 {
		t.Errorf("kernel coverage missing: %v", rep.Coverage)
	}
	// lbm in the paper is strongly back-end bound (b = 61.2) with almost
	// no bad speculation (s = 0.4).
	if rep.TopDown.BackEnd < rep.TopDown.BadSpec {
		t.Errorf("expected back-end >> bad-speculation, got %+v", rep.TopDown)
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
