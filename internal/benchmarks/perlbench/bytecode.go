package perlbench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/perf"
)

// Errors raised by the VM, identical in text and wrapping to the
// tree-walker's so errors.Is and messages agree between the two paths.
var (
	errStepLimit = fmt.Errorf("%w: step limit exceeded", ErrScript)
	errRunaway   = fmt.Errorf("%w: runaway while", ErrScript)
	errDivZero   = fmt.Errorf("%w: division by zero", ErrScript)
	errModZero   = fmt.Errorf("%w: modulo by zero", ErrScript)
)

// interpStepLimit matches Interp.limit: both paths bound scripts the same
// way.
const interpStepLimit = 20_000_000

// bcScratch is the mutable run state of a compiled program, recycled
// across Executes under the prepared-workload scratch-reset contract.
type bcScratch struct {
	scalars []Value
	arrays  [][]Value
	hashes  []map[string]Value
	stack   []Value
	ctrl    []uint64 // while-loop iteration counters
	iters   []iterFrame
	sb      strings.Builder // interpolation scratch
	out     strings.Builder
}

type iterFrame struct {
	items []Value
	idx   int
}

func newScratch(pr *program) *bcScratch {
	sc := &bcScratch{
		scalars: make([]Value, len(pr.scalarNames)),
		arrays:  make([][]Value, len(pr.arrayNames)),
		hashes:  make([]map[string]Value, len(pr.hashNames)),
		stack:   make([]Value, pr.maxStack),
	}
	for i := range sc.hashes {
		sc.hashes[i] = map[string]Value{}
	}
	return sc
}

// reset clears run state in place, keeping every allocation.
func (sc *bcScratch) reset() {
	for i := range sc.scalars {
		sc.scalars[i] = Value{}
	}
	for i := range sc.arrays {
		sc.arrays[i] = sc.arrays[i][:0]
	}
	for i := range sc.hashes {
		clear(sc.hashes[i])
	}
	sc.ctrl = sc.ctrl[:0]
	sc.iters = sc.iters[:0]
	sc.out.Reset()
}

// run executes the program: a flat dispatch loop over branch-free
// expression code plus explicit statement-frame ops, emitting the exact
// profiler event stream of Interp.exec/execOne/eval.
func (pr *program) run(sc *bcScratch, p *perf.Profiler, limit uint64) (uint64, error) {
	var (
		code  = pr.code
		stack = sc.stack
		sp    int
		steps uint64
		depth int
		err   error
	)
	if len(stack) < pr.maxStack {
		stack = make([]Value, pr.maxStack)
		sc.stack = stack
	}
	for pc := 0; ; pc++ {
		in := code[pc]
		switch in.op {
		case vHALT:
			return steps, nil

		case vSTMT:
			// Mirrors exec: count and bound BEFORE Enter, so the statement
			// that trips the limit leaves no frame to unwind.
			steps++
			if steps > limit {
				err = errStepLimit
				goto fail
			}
			if p != nil {
				p.Enter("pp_eval")
			}
			depth++

		case vEND:
			if p != nil {
				p.Ops(8)
				p.Leave()
			}
			depth--

		case vASSIGN:
			sp--
			sc.scalars[in.a] = stack[sp]

		case vPRINT:
			sp--
			sc.out.WriteString(stack[sp].Str())

		case vPUSHARR:
			sp--
			sc.arrays[in.a] = append(sc.arrays[in.a], stack[sp])

		case vHASHSET:
			val := stack[sp-1]
			key := stack[sp-2].Str()
			sp -= 2
			if p != nil {
				p.Enter("hash_ops")
				p.Ops(6)
				p.Store(0x90_0000_0000 + hashAddrSeeded(pr.hashSeeds[in.a], key))
				p.Leave()
			}
			sc.hashes[in.a][key] = val

		case vERRSTMT:
			err = pr.errs[in.a]
			goto fail

		case vIFBR:
			sp--
			t := stack[sp].Truthy()
			if p != nil {
				p.Branch(80, t)
			}
			if !t {
				pc = int(in.a) - 1
			}

		case vWHILEBR:
			sp--
			t := stack[sp].Truthy()
			if p != nil {
				p.Branch(81, t)
			}
			if !t {
				pc = int(in.a) - 1
			}

		case vLOOPPUSH:
			sc.ctrl = append(sc.ctrl, 0)

		case vLOOPPOP:
			sc.ctrl = sc.ctrl[:len(sc.ctrl)-1]

		case vITER:
			// Matches the tree-walker's post-body runaway check: iter holds
			// the number of completed bodies minus one.
			n := len(sc.ctrl) - 1
			if sc.ctrl[n] > limit {
				err = errRunaway
				goto fail
			}
			sc.ctrl[n]++
			pc = int(in.a) - 1

		case vJMP:
			pc = int(in.a) - 1

		case vFORA:
			// Slice-header snapshot: pushes inside the body that reallocate
			// the array do not affect this iteration, exactly like ranging
			// over the captured slice in execOne.
			sc.iters = append(sc.iters, iterFrame{items: sc.arrays[in.a]})

		case vFORK:
			h := sc.hashes[in.a]
			keys := make([]string, 0, len(h))
			for k := range h {
				keys = append(keys, k)
			}
			sort.Strings(keys) // deterministic iteration
			items := make([]Value, len(keys))
			for i, k := range keys {
				items[i] = StrValue(k)
			}
			sc.iters = append(sc.iters, iterFrame{items: items})

		case vITERNEXT:
			fr := &sc.iters[len(sc.iters)-1]
			if fr.idx >= len(fr.items) {
				sc.iters = sc.iters[:len(sc.iters)-1]
				pc = int(in.b) - 1
			} else {
				sc.scalars[in.a] = fr.items[fr.idx]
				fr.idx++
			}

		case vCONST:
			stack[sp] = pr.consts[in.a]
			sp++

		case vSCALAR:
			stack[sp] = sc.scalars[in.a]
			sp++

		case vINTERP:
			sc.sb.Reset()
			for _, part := range pr.interps[in.a] {
				if part.slot >= 0 {
					sc.sb.WriteString(sc.scalars[part.slot].s)
				} else {
					sc.sb.WriteString(part.lit)
				}
			}
			stack[sp] = Value{s: sc.sb.String()}
			sp++

		case vHASHGET:
			key := stack[sp-1].Str()
			if p != nil {
				p.Enter("hash_ops")
				p.Ops(4)
				p.Load(0x90_0000_0000 + hashAddrSeeded(pr.hashSeeds[in.a], key))
				p.Leave()
			}
			stack[sp-1] = sc.hashes[in.a][key]

		case vEXISTS:
			_, ok := sc.hashes[in.a][stack[sp-1].Str()]
			stack[sp-1] = boolVal(ok)

		case vMATCH:
			stack[sp-1] = boolVal(pr.regexes[in.a].matchProfiled(stack[sp-1].Str(), p))

		case vNOTMATCH:
			stack[sp-1] = boolVal(!pr.regexes[in.a].matchProfiled(stack[sp-1].Str(), p))

		case vADD:
			sp--
			stack[sp-1] = NumValue(stack[sp-1].Num() + stack[sp].Num())
		case vSUB:
			sp--
			stack[sp-1] = NumValue(stack[sp-1].Num() - stack[sp].Num())
		case vCONCAT:
			sp--
			stack[sp-1] = StrValue(stack[sp-1].Str() + stack[sp].Str())
		case vMUL:
			sp--
			stack[sp-1] = NumValue(stack[sp-1].Num() * stack[sp].Num())
		case vDIV:
			sp--
			if stack[sp].Num() == 0 {
				err = errDivZero
				goto fail
			}
			stack[sp-1] = NumValue(stack[sp-1].Num() / stack[sp].Num())
		case vMOD:
			sp--
			if int64(stack[sp].Num()) == 0 {
				err = errModZero
				goto fail
			}
			stack[sp-1] = NumValue(float64(int64(stack[sp-1].Num()) % int64(stack[sp].Num())))

		case vNUMEQ:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].Num() == stack[sp].Num())
		case vNUMNE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].Num() != stack[sp].Num())
		case vNUMLE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].Num() <= stack[sp].Num())
		case vNUMGE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].Num() >= stack[sp].Num())
		case vNUMLT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].Num() < stack[sp].Num())
		case vNUMGT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].Num() > stack[sp].Num())
		case vSTREQ:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].s == stack[sp].s)
		case vSTRNE:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].s != stack[sp].s)
		case vSTRLT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].s < stack[sp].s)
		case vSTRGT:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].s > stack[sp].s)

		case vOR:
			sp--
			if !stack[sp-1].Truthy() {
				stack[sp-1] = stack[sp]
			}
		case vAND:
			sp--
			if stack[sp-1].Truthy() {
				stack[sp-1] = stack[sp]
			}
		case vNOT:
			stack[sp-1] = boolVal(!stack[sp-1].Truthy())
		case vNEG:
			stack[sp-1] = NumValue(-stack[sp-1].Num())

		case vLENGTH:
			base := sp - int(in.b)
			stack[base] = NumValue(float64(len(stack[base].Str())))
			sp = base + 1
		case vUC:
			base := sp - int(in.b)
			stack[base] = StrValue(strings.ToUpper(stack[base].Str()))
			sp = base + 1
		case vLC:
			base := sp - int(in.b)
			stack[base] = StrValue(strings.ToLower(stack[base].Str()))
			sp = base + 1
		case vINTB:
			base := sp - int(in.b)
			stack[base] = NumValue(float64(int64(stack[base].Num())))
			sp = base + 1
		case vINDEXB:
			base := sp - int(in.b)
			stack[base] = NumValue(float64(strings.Index(stack[base].Str(), stack[base+1].Str())))
			sp = base + 1
		case vSUBSTRB:
			base := sp - int(in.b)
			stack[base] = StrValue(substrClamp(stack[base].Str(), int(stack[base+1].Num()), int(stack[base+2].Num())))
			sp = base + 1

		case vSCALARLEN:
			stack[sp] = NumValue(float64(len(sc.arrays[in.a])))
			sp++
		case vKEYSLEN:
			stack[sp] = NumValue(float64(len(sc.hashes[in.a])))
			sp++

		case vERR:
			err = pr.errs[in.a]
			goto fail
		}
	}

fail:
	// Unwind: the tree-walker emits Ops(8)+Leave for every statement frame
	// an error propagates through (exec runs them even on execOne failure),
	// innermost first.
	if p != nil {
		for ; depth > 0; depth-- {
			p.Ops(8)
			p.Leave()
		}
	}
	return steps, err
}

// fnvSeed is the FNV-1a state after folding in name; hashAddrSeeded
// continues with key. hashAddr(name, key) == hashAddrSeeded(fnvSeed(name),
// key) — precomputing the per-hash seed drops the name bytes from every
// probe.
func fnvSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

func hashAddrSeeded(seed uint64, key string) uint64 {
	h := seed
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h % (1 << 22)
}

// ---------------------------------------------------------------------------
// Precompiled regex

type regexQuant uint8

const (
	qOne regexQuant = iota
	qStar
	qPlus
)

type regexKind uint8

const (
	rLit regexKind = iota
	rAny
	rDigit
	rWord
	rSpace
	rClass
)

type regexAtom struct {
	quant regexQuant
	kind  regexKind
	lit   byte
	class *[256]bool
}

func (a *regexAtom) matches(c byte) bool {
	switch a.kind {
	case rLit:
		return c == a.lit
	case rAny:
		return true
	case rDigit:
		return c >= '0' && c <= '9'
	case rWord:
		return isWord(c)
	case rSpace:
		return c == ' ' || c == '\t' || c == '\n'
	default:
		return a.class[c]
	}
}

// regexProg is a pattern decomposed once: the atom walk mirrors
// matchHere/atomAt exactly, including the "$ is an end-anchor only when it
// is the entire remaining pattern" rule and the quirks of atomAt's class
// scanning.
type regexProg struct {
	atoms     []regexAtom
	anchored  bool
	endAnchor bool
	origLen   int // length of the original pattern incl. "^": Ops cost
}

func compileRegex(pattern string) *regexProg {
	rp := &regexProg{origLen: len(pattern)}
	p := pattern
	if strings.HasPrefix(p, "^") {
		rp.anchored = true
		p = p[1:]
	}
	for len(p) > 0 {
		if p == "$" {
			rp.endAnchor = true
			break
		}
		a, alen := compileAtom(p)
		p = p[alen:]
		if strings.HasPrefix(p, "*") {
			a.quant = qStar
			p = p[1:]
		} else if strings.HasPrefix(p, "+") {
			a.quant = qPlus
			p = p[1:]
		}
		rp.atoms = append(rp.atoms, a)
	}
	return rp
}

// compileAtom is atomAt translated to a table: same dispatch, same class
// expansion (strict k+2 bound, '^' negation, unterminated '[' is a
// literal), with the byte-range loop widened to int so a range ending at
// 0xff cannot wrap.
func compileAtom(p string) (regexAtom, int) {
	switch {
	case p[0] == '[':
		end := strings.IndexByte(p, ']')
		if end < 0 {
			return regexAtom{kind: rLit, lit: p[0]}, 1
		}
		set := p[1:end]
		neg := false
		if strings.HasPrefix(set, "^") {
			neg = true
			set = set[1:]
		}
		allowed := map[byte]bool{}
		for k := 0; k < len(set); k++ {
			if k+2 < len(set) && set[k+1] == '-' {
				for c := int(set[k]); c <= int(set[k+2]); c++ {
					allowed[byte(c)] = true
				}
				k += 2
				continue
			}
			allowed[set[k]] = true
		}
		var tbl [256]bool
		for c := 0; c < 256; c++ {
			tbl[c] = allowed[byte(c)] != neg
		}
		return regexAtom{kind: rClass, class: &tbl}, end + 1
	case p[0] == '.':
		return regexAtom{kind: rAny}, 1
	case p[0] == '\\' && len(p) > 1:
		switch p[1] {
		case 'd':
			return regexAtom{kind: rDigit}, 2
		case 'w':
			return regexAtom{kind: rWord}, 2
		case 's':
			return regexAtom{kind: rSpace}, 2
		default:
			return regexAtom{kind: rLit, lit: p[1]}, 2
		}
	default:
		return regexAtom{kind: rLit, lit: p[0]}, 1
	}
}

// matchProfiled emits regexMatch's event stream: Ops over the original
// pattern length, one Branch(82) per 8 unanchored start offsets, Leave
// after the scan.
func (rp *regexProg) matchProfiled(s string, p *perf.Profiler) bool {
	if p == nil {
		return rp.matchAt(s)
	}
	p.Enter("regex_match")
	p.Ops(uint64(len(s) + rp.origLen))
	ok := false
	if rp.anchored {
		ok = rp.match(s, 0)
	} else {
		for start := 0; start <= len(s); start++ {
			if start%8 == 0 {
				p.Branch(82, true)
			}
			if rp.match(s[start:], 0) {
				ok = true
				break
			}
		}
	}
	p.Leave()
	return ok
}

func (rp *regexProg) matchAt(s string) bool {
	if rp.anchored {
		return rp.match(s, 0)
	}
	for start := 0; start <= len(s); start++ {
		if rp.match(s[start:], 0) {
			return true
		}
	}
	return false
}

// match is matchHere over the precompiled atoms: greedy star/plus with
// backtracking, literal tail check for the end anchor.
func (rp *regexProg) match(s string, k int) bool {
	for {
		if k == len(rp.atoms) {
			if rp.endAnchor {
				return s == ""
			}
			return true
		}
		a := &rp.atoms[k]
		switch a.quant {
		case qStar, qPlus:
			n := 0
			for n < len(s) && a.matches(s[n]) {
				n++
			}
			min := 0
			if a.quant == qPlus {
				min = 1
			}
			for ; n >= min; n-- {
				if rp.match(s[n:], k+1) {
					return true
				}
			}
			return false
		default:
			if len(s) > 0 && a.matches(s[0]) {
				s = s[1:]
				k++
				continue
			}
			return false
		}
	}
}
