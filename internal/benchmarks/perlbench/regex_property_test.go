package perlbench

import (
	"math/rand"
	"regexp"
	"testing"
)

// TestRegexAgainstStdlib cross-validates the regex-lite matcher against the
// standard library on randomly generated patterns drawn from the supported
// subset (literals, '.', '*', '+', classes, anchors) and random subject
// strings.
func TestRegexAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	i := NewInterp(nil)

	randomAtom := func() string {
		switch rng.Intn(6) {
		case 0:
			return string(rune('a' + rng.Intn(4)))
		case 1:
			return "."
		case 2:
			return "[ab]"
		case 3:
			return "[a-c]"
		case 4:
			return `\d`
		default:
			return string(rune('x' + rng.Intn(3)))
		}
	}
	randomPattern := func() string {
		p := ""
		if rng.Intn(4) == 0 {
			p += "^"
		}
		n := 1 + rng.Intn(4)
		for k := 0; k < n; k++ {
			p += randomAtom()
			if rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					p += "*"
				} else {
					p += "+"
				}
			}
		}
		if rng.Intn(4) == 0 {
			p += "$"
		}
		return p
	}
	randomSubject := func() string {
		n := rng.Intn(10)
		b := make([]byte, n)
		alphabet := "abcxyz019 "
		for k := range b {
			b[k] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}

	for trial := 0; trial < 3000; trial++ {
		pat := randomPattern()
		subj := randomSubject()
		re, err := regexp.Compile(pat)
		if err != nil {
			continue // pattern outside stdlib syntax (should not happen)
		}
		want := re.MatchString(subj)
		got := i.regexMatch(subj, pat)
		if got != want {
			t.Fatalf("match(%q, %q) = %v, stdlib says %v", subj, pat, got, want)
		}
		if compiled := compileRegex(pat).matchProfiled(subj, nil); compiled != want {
			t.Fatalf("compiled match(%q, %q) = %v, stdlib says %v", subj, pat, compiled, want)
		}
	}
}
