package perlbench

import (
	"math/rand"
	"testing"
)

// TestScriptSoupNeverPanics runs random statement soup through parse and
// (bounded) execution.
func TestScriptSoupNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lines := []string{
		`$x = 1;`, `$x = $x + "a";`, `print $x;`, `if ($x) {`, `} else {`, `}`,
		`while ($x < 3) {`, `push @a, $x;`, `foreach $v (@a) {`,
		`$h{$v} = $v;`, `$y = $x =~ /a*b/;`, `$z = length($x);`, `garbage`,
	}
	for trial := 0; trial < 1500; trial++ {
		src := ""
		for k := 0; k < rng.Intn(10); k++ {
			src += lines[rng.Intn(len(lines))] + "\n"
		}
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		i := NewInterp(nil)
		i.limit = 20000 // bound runaway loops from random composition
		_ = i.Run(prog)
	}
}
