package perlbench

import (
	"math/rand"
	"strings"
	"testing"
)

// TestScriptSoupNeverPanics runs random statement soup through parse and
// (bounded) execution.
func TestScriptSoupNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lines := []string{
		`$x = 1;`, `$x = $x + "a";`, `print $x;`, `if ($x) {`, `} else {`, `}`,
		`while ($x < 3) {`, `push @a, $x;`, `foreach $v (@a) {`,
		`$h{$v} = $v;`, `$y = $x =~ /a*b/;`, `$z = length($x);`, `garbage`,
	}
	for trial := 0; trial < 1500; trial++ {
		src := ""
		for k := 0; k < rng.Intn(10); k++ {
			src += lines[rng.Intn(len(lines))] + "\n"
		}
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		i := NewInterp(nil)
		i.limit = 20000 // bound runaway loops from random composition
		_ = i.Run(prog)
	}
}

// FuzzExprDifferential feeds one expression through both engines — the
// retained tree-walk evaluator and the bytecode compiler+VM — inside a
// fixed preamble that populates scalars, an array and a hash, and requires
// identical output, step counts and error text. Expressions the compiler
// rejects are skipped: Prepare falls back to the tree-walker for those, so
// they cannot diverge by construction.
func FuzzExprDifferential(f *testing.F) {
	for _, expr := range []string{
		`1 + 2 * 3`,
		`$x + $y . "tail"`,
		`"$s-$x" . length($s)`,
		`$h{"k"} + $h{"k" . $x}`,
		`$s =~ /ab*c/ || $x > 1`,
		`($x || $y) && !($x eq "5")`,
		`substr($s, 0, $x) . uc($s) . lc("AB")`,
		`index($s, "b") + int($x / 2) - scalar(@a) * keys(%h)`,
		`exists($h{"k"}) . exists($h{$s})`,
		`$x % 3 + 10 / $x`,
		`1 / 0`,
		`substr($s, 1)`,
		`-$x * -2 . ("a" lt "b")`,
		`$s !~ /^a[b-d]+$/`,
	} {
		f.Add(expr)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		if strings.ContainsAny(expr, "\n\r") || len(expr) > 200 {
			t.Skip()
		}
		src := "$x = 5;\n$y = 0;\n$s = \"abc5\";\npush @a, 7;\npush @a, \"q\";\n$h{\"k\"} = 3;\n$r = " + expr + ";\nprint \"r=\" . $r;\n"
		prog, err := Parse(src)
		if err != nil {
			t.Skip()
		}
		bc, err := compileProgram(prog)
		if err != nil {
			t.Skip() // compiler rejects => Prepare falls back to the tree
		}

		ti := NewInterp(nil)
		ti.limit = 100000
		treeErr := ti.Run(prog)

		sc := newScratch(bc)
		steps, bcErr := bc.run(sc, nil, 100000)

		if (treeErr == nil) != (bcErr == nil) {
			t.Fatalf("error divergence on %q: tree %v, bc %v", expr, treeErr, bcErr)
		}
		if treeErr != nil && treeErr.Error() != bcErr.Error() {
			t.Fatalf("error text divergence on %q: tree %q, bc %q", expr, treeErr, bcErr)
		}
		if ti.Output() != sc.out.String() {
			t.Fatalf("output divergence on %q: tree %q, bc %q", expr, ti.Output(), sc.out.String())
		}
		if ti.Steps() != steps {
			t.Fatalf("steps divergence on %q: tree %d, bc %d", expr, ti.Steps(), steps)
		}
	})
}

// FuzzRegexCompiledDifferential cross-checks the precompiled matcher
// against the tree-walker's string-walking matcher on arbitrary patterns
// and subjects.
func FuzzRegexCompiledDifferential(f *testing.F) {
	for _, seed := range [][2]string{
		{"ab*c", "abbbc"},
		{"^a[b-d]+$", "acdb"},
		{`\w+\s\d`, "word 7"},
		{"[^xyz]*", "abc"},
		{"a$b", "a$b"},
		{"[ab", "x[aby"},
		{"", "anything"},
		{"^$", ""},
		{"a+$", "baaa"},
		{`\$.`, "$x"},
	} {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, pat, subj string) {
		// Bound backtracking blowup and skip the one intentional
		// divergence: the tree-walker's byte-range expansion wraps (and
		// hangs) on a class range ending at 0xff; the compiled form bounds
		// it.
		if len(pat) > 12 || len(subj) > 32 || strings.ContainsRune(pat, 0xff) || strings.Contains(pat, "\xff") {
			t.Skip()
		}
		i := NewInterp(nil)
		want := i.regexMatch(subj, pat)
		if got := compileRegex(pat).matchProfiled(subj, nil); got != want {
			t.Fatalf("match(%q, %q): tree %v, compiled %v", subj, pat, got, want)
		}
	})
}
