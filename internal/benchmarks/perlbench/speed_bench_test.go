package perlbench

import (
	"testing"

	"repro/internal/core"
)

func BenchmarkTreeWalkRefrate(b *testing.B) {
	bm := New()
	w, _ := core.FindWorkload(bm, "refrate")
	pw := w.(Workload)
	prog, _ := Parse(pw.Script)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewInterp(nil)
		for _, line := range pw.Corpus {
			it.arrays["input"] = append(it.arrays["input"], StrValue(line))
		}
		if err := it.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBytecodeRefrate(b *testing.B) {
	bm := New()
	w, _ := core.FindWorkload(bm, "refrate")
	pwp, _ := bm.Prepare(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pwp.Execute(nil); err != nil {
			b.Fatal(err)
		}
	}
}
