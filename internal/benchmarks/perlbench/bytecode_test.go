package perlbench

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

// treeRun executes src through the retained tree-walker with corpus bound,
// returning output, steps and error plus the profiler report.
func treeRun(t *testing.T, src string, corpus []string, limit uint64) (string, uint64, error, perf.Report) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := perf.NewWithOptions(perf.Options{Stride: 1})
	i := NewInterp(p)
	if limit > 0 {
		i.limit = limit
	}
	for _, line := range corpus {
		i.arrays["input"] = append(i.arrays["input"], StrValue(line))
	}
	runErr := i.Run(prog)
	rep := p.Report()
	rep.WallTime = 0
	return i.Output(), i.Steps(), runErr, rep
}

// bcRun executes src through the bytecode VM. Fails the test if the script
// does not compile (callers that want fallback behavior use Prepare).
func bcRun(t *testing.T, src string, corpus []string, limit uint64) (string, uint64, error, perf.Report) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bc, err := compileProgram(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if limit == 0 {
		limit = interpStepLimit
	}
	p := perf.NewWithOptions(perf.Options{Stride: 1})
	p.SetFootprint("pp_eval", 6<<10)
	p.SetFootprint("regex_match", 4<<10)
	p.SetFootprint("hash_ops", 3<<10)
	sc := newScratch(bc)
	for _, line := range corpus {
		sc.arrays[bc.inputSlot] = append(sc.arrays[bc.inputSlot], StrValue(line))
	}
	steps, runErr := bc.run(sc, p, limit)
	rep := p.Report()
	rep.WallTime = 0
	return sc.out.String(), steps, runErr, rep
}

// assertSameRun requires the two paths to agree on output, steps, error
// text and the full profiler report — the bit-identity argument for the
// compiled path.
func assertSameRun(t *testing.T, src string, corpus []string, limit uint64) {
	t.Helper()
	tOut, tSteps, tErr, tRep := treeRun(t, src, corpus, limit)
	bOut, bSteps, bErr, bRep := bcRun(t, src, corpus, limit)
	if tOut != bOut {
		t.Errorf("output diverges\ntree: %q\nbc:   %q", tOut, bOut)
	}
	if tSteps != bSteps {
		t.Errorf("steps diverge: tree %d, bc %d", tSteps, bSteps)
	}
	if (tErr == nil) != (bErr == nil) {
		t.Errorf("error diverges: tree %v, bc %v", tErr, bErr)
	} else if tErr != nil && tErr.Error() != bErr.Error() {
		t.Errorf("error text diverges: tree %q, bc %q", tErr, bErr)
	}
	if !reflect.DeepEqual(tRep, bRep) {
		t.Errorf("profiler report diverges\ntree: %+v\nbc:   %+v", tRep, bRep)
	}
}

// TestBytecodeMatchesTreeWalk sweeps every perlbench workload through both
// engines and requires bit-identical output, steps and profiler reports.
// The refrate workload joins under ALBERTA_DIFF_FULL=1 (the tree-walk side
// is the slow one).
func TestBytecodeMatchesTreeWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	full := os.Getenv("ALBERTA_DIFF_FULL") == "1"
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		pw := w.(Workload)
		if !full && pw.WorkloadKind() == core.KindRefrate {
			continue
		}
		t.Run(pw.Name, func(t *testing.T) {
			assertSameRun(t, pw.Script, pw.Corpus, 0)
		})
	}
}

// TestBytecodeMatchesTreeWalkScripts pins the tricky semantic corners on
// both paths: eager logical operators, hash-key expressions, interpolation,
// regex events, nested control flow, and the error-unwind event stream.
func TestBytecodeMatchesTreeWalkScripts(t *testing.T) {
	scripts := []string{
		// Eager Perl logicals.
		"$a = \"\" || \"fallback\";\n$b = \"x\" || \"ignored\";\n$c = \"x\" && \"kept\";\n$d = \"\" && \"never\";\nprint $a . \",\" . $b . \",\" . $c . \",\" . $d . \".\";\n",
		// Hash events inside expressions and key expressions.
		"$i = 3;\n$h{\"k\" . $i} = 42;\nprint $h{\"k3\"} . $h{\"k\" . (2 + 1)} . exists($h{\"k3\"}) . exists($h{\"zz\"});\n",
		// Regex branch cadence over longer subjects, anchored and not.
		"$s = \"the quick brown fox jumps over the lazy dog again and again\";\nif ($s =~ /qu.ck/) {\n  print \"m1\";\n}\nif ($s =~ /^the/) {\n  print \"m2\";\n}\nif ($s !~ /zebra+/) {\n  print \"m3\";\n}\n",
		// Constant folding must not change events or values.
		"$x = 2 + 3 * 4 - 1;\n$y = \"a\" . \"b\" . \"c\";\n$z = length(\"hello\") + index(\"hello\", \"llo\");\nprint $x . $y . $z . uc(\"q\") . substr(\"abcdef\", 1, 3) . int(7.9) . (10 % 3) . (9 / 2);\n",
		// Nested loops, foreach over array and keys, interpolation.
		"push @a, \"x\";\npush @a, \"y\";\nforeach $v (@a) {\n  $h{$v} = length($v);\n}\nforeach $k (keys %h) {\n  $t = \"$k=\" . $h{$k};\n  print $t . \";\";\n}\n$i = 0;\nwhile ($i < 3) {\n  $i = $i + 1;\n  if ($i == 2) {\n    print \"two\";\n  } else {\n    print $i;\n  }\n}\n",
		// Division by zero mid-script: error unwind event parity.
		"$x = 1;\nif ($x) {\n  $y = 1 / 0;\n}\nprint \"unreached\";\n",
		// Modulo by zero inside a while body.
		"$i = 0;\nwhile ($i < 2) {\n  $i = $i + 1;\n  $z = 5 % ($i - 1);\n}\n",
		// Arity error raised after args are evaluated (hash events first).
		"$h{\"k\"} = 1;\n$x = substr($h{\"k\"}, 0);\n",
		// Statically-broken statements in untaken branches must not fire.
		"if (0) {\n  $x = index(1);\n}\nif (0) {\n  foreach $v (bogus) {\n    $q = 1;\n  }\n}\nprint \"ok\";\n",
		// Negative/unary and numeric-string comparisons.
		"$x = -(2 + 3) * 2;\n$y = !(1 > 2);\nif (\"10\" == 10) {\n  print \"N\";\n}\nif (\"10\" lt \"9\") {\n  print \"S\";\n}\nprint $x . \"/\" . $y;\n",
	}
	for i, src := range scripts {
		assertSameRun(t, src, nil, 0)
		_ = i
	}
}

// TestBytecodeErrorLimitsMatchTree pins the step-limit and runaway-while
// bounds, including the unwind event stream, on a small custom limit.
func TestBytecodeErrorLimitsMatchTree(t *testing.T) {
	// Step limit trips mid-loop.
	assertSameRun(t, "$i = 0;\nwhile ($i < 100000) {\n  $i = $i + 1;\n}\n", nil, 50)
	// Runaway while: condition never falsifies.
	assertSameRun(t, "while (1) {\n  $x = 1;\n}\n", nil, 200)
}

// TestPrepareCompilesShippedScript proves the shipped workload script takes
// the bytecode path, not the fallback.
func TestPrepareCompilesShippedScript(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	pwp, err := b.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	ps := pwp.(*prepared)
	if ps.bc == nil {
		t.Fatal("shipped script fell back to the tree-walker")
	}
	if ps.bc.inputSlot < 0 || ps.bc.arrayNames[ps.bc.inputSlot] != "input" {
		t.Errorf("input slot not interned: %v", ps.bc.arrayNames)
	}
}

// TestPrepareFallsBackOnLazyParseHazard: the tree-walker parses expression
// strings only when executed, so a script with a malformed expression in a
// never-taken branch must still run. The compiler cannot represent it, so
// Prepare must fall back — and the run must succeed.
func TestPrepareFallsBackOnLazyParseHazard(t *testing.T) {
	b := New()
	w := Workload{
		Meta:   core.Meta{Name: "hazard", Kind: core.KindTest},
		Script: "if (0) {\n  $x = frob(1);\n}\nprint \"ok\";\n",
	}
	pwp, err := b.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	ps := pwp.(*prepared)
	if ps.bc != nil {
		t.Fatal("expected tree-walk fallback for uncompilable expression")
	}
	res, err := pwp.Execute(nil)
	if err != nil {
		t.Fatalf("fallback execute: %v", err)
	}
	if res.Checksum == 0 {
		t.Error("zero checksum from fallback path")
	}
}

// TestPreparedScratchReuse runs the same prepared workload repeatedly and
// requires bit-identical results and reports — the scratch-reset contract.
func TestPreparedScratchReuse(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	pwp, err := b.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	var first core.Result
	var firstRep perf.Report
	for rep := 0; rep < 4; rep++ {
		p := perf.NewWithOptions(perf.Options{Stride: 1})
		res, err := pwp.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Report()
		r.WallTime = 0
		r.Methods = append([]perf.MethodProfile(nil), r.Methods...)
		if rep == 0 {
			first, firstRep = res, r
			continue
		}
		if res.Checksum != first.Checksum {
			t.Errorf("rep %d checksum %x != first %x", rep, res.Checksum, first.Checksum)
		}
		if !reflect.DeepEqual(r, firstRep) {
			t.Errorf("rep %d report diverges from first", rep)
		}
	}
}

// TestRuntimeErrorsBytecode mirrors TestRuntimeErrors on the compiled path.
func TestRuntimeErrorsBytecode(t *testing.T) {
	for _, src := range []string{
		"$x = 1 / 0;",
		"$x = 1 % 0;",
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := compileProgram(prog)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		sc := newScratch(bc)
		if _, err := bc.run(sc, nil, interpStepLimit); !errors.Is(err, ErrScript) {
			t.Errorf("%q err = %v, want ErrScript", src, err)
		}
	}
}

// TestValueNumCacheInvariant: a cached numeric form must equal what the
// prefix parser would compute from the string form — the invariant that
// makes cached and uncached Values indistinguishable.
func TestValueNumCacheInvariant(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 42, -7.5, 3.14159, 1e17, 1.0000005e+06, 0.001, -1e-9, 123456789012345} {
		v := NumValue(f)
		if got, want := v.Num(), numPrefix(v.Str()); got != want {
			t.Errorf("NumValue(%v): cached %v, parsed %v (s=%q)", f, got, want, v.Str())
		}
	}
}
