package perlbench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/perf"
)

// Workload is one 500.perlbench_r input: a script plus a generated input
// corpus bound to the @input array before execution.
type Workload struct {
	core.Meta
	Script string
	// Corpus is bound to @input (the stand-in for the benchmark's input
	// files).
	Corpus []string
}

// Benchmark is the 500.perlbench_r reproduction. NOTE: faithful to the
// paper, it provides NO Alberta workloads — every real Perl application the
// Alberta team evaluated (Perl Defence Blaster, Perl Racer, BioPerl,
// Catalyst, Dancer) requires C-extension modules that the stripped-down
// interpreter cannot load. It also does not implement core.Generator.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "500.perlbench_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Perl interpreter" }

// wordFreqScript is the SPEC-style workload: a word-frequency and pattern
// scanner over the corpus.
const wordFreqScript = `
foreach $line (@input) {
  $i = 0;
  $word = "";
  while ($i <= length($line)) {
    $ch = substr($line, $i, 1);
    if ($ch =~ /[a-z]/) {
      $word = $word . $ch;
    } else {
      if (length($word) > 0) {
        $count{$word} = $count{$word} + 1;
        $total = $total + 1;
      }
      $word = "";
    }
    $i = $i + 1;
  }
}
$long = 0;
$vowelish = 0;
foreach $w (keys %count) {
  if (length($w) > 6) {
    $long = $long + 1;
  }
  if ($w =~ /^[aeiou]/) {
    $vowelish = $vowelish + $count{$w};
  }
}
print "total=" . $total . " distinct=" . scalar(@input) . " long=" . $long . " vowelish=" . $vowelish . "\n";
`

// genCorpus builds deterministic pseudo-text lines.
func genCorpus(lines int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	words := []string{
		"interpreter", "scalar", "workload", "alberta", "pattern", "regex",
		"hash", "array", "bench", "perl", "string", "number", "context",
		"aeiou", "onomatopoeia", "iteration", "execution",
	}
	out := make([]string, lines)
	for i := range out {
		var sb strings.Builder
		n := 4 + rng.Intn(10)
		for j := 0; j < n; j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		out[i] = sb.String()
	}
	return out
}

// Workloads returns only SPEC-style inputs (see the Benchmark doc comment
// for why there are no Alberta workloads).
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, lines int, seed int64) core.Workload {
		return Workload{
			Meta:   core.Meta{Name: name, Kind: kind},
			Script: wordFreqScript,
			Corpus: genCorpus(lines, seed),
		}
	}
	return []core.Workload{
		mk("test", core.KindTest, 20, 1),
		mk("train", core.KindTrain, 150, 2),
		mk("refrate", core.KindRefrate, 600, 3),
	}, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the compiled program plus its recycled run scratch. The
// script is bytecode-compiled once at Prepare; Execute is the flat VM
// dispatch loop in bytecode.go. When the compiler rejects an expression
// (the tree-walker parses expression strings lazily, so a malformed
// expression in an untaken branch must not fail the run) the prepared
// workload falls back to the tree-walk path for the whole script — the
// same interpreter that serves as the bytecode path's differential
// reference.
type prepared struct {
	b  *Benchmark
	pw Workload

	// Bytecode path.
	bc     *program
	sc     *bcScratch
	corpus []Value

	// Tree-walk fallback (non-nil only when compilation failed).
	prog []stmt
}

// Prepare implements core.Preparer: parse and compile the script once,
// uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	pw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	prog, err := Parse(pw.Script)
	if err != nil {
		return nil, fmt.Errorf("perlbench: %s: %w", pw.Name, err)
	}
	ps := &prepared{b: b, pw: pw}
	if bc, cerr := compileProgram(prog); cerr == nil {
		ps.bc = bc
		ps.sc = newScratch(bc)
		ps.corpus = make([]Value, len(pw.Corpus))
		for i, line := range pw.Corpus {
			ps.corpus[i] = StrValue(line)
		}
	} else {
		ps.prog = prog
	}
	return ps, nil
}

// Execute implements core.PreparedWorkload: run the compiled program over
// the corpus, resetting the scratch in place.
func (ps *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, pw := ps.b, ps.pw
	if ps.bc == nil {
		return ps.executeTree(p)
	}
	if p != nil {
		// Same footprint declarations as NewInterp, every Execute.
		p.SetFootprint("pp_eval", 6<<10)
		p.SetFootprint("regex_match", 4<<10)
		p.SetFootprint("hash_ops", 3<<10)
	}
	sc := ps.sc
	sc.reset()
	sc.arrays[ps.bc.inputSlot] = append(sc.arrays[ps.bc.inputSlot][:0], ps.corpus...)
	steps, err := ps.bc.run(sc, p, interpStepLimit)
	if err != nil {
		return core.Result{}, fmt.Errorf("perlbench: %s: %w", pw.Name, err)
	}
	out := sc.out.String()
	if out == "" {
		return core.Result{}, fmt.Errorf("perlbench: %s: script produced no output", pw.Name)
	}
	sum := core.NewChecksum().AddString(out).AddUint64(steps)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  pw.Name,
		Kind:      pw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}

// executeTree is the retained tree-walk path: a fresh interpreter over the
// prepared statement tree.
func (ps *prepared) executeTree(p *perf.Profiler) (core.Result, error) {
	b, pw := ps.b, ps.pw
	interp := NewInterp(p)
	for _, line := range pw.Corpus {
		interp.arrays["input"] = append(interp.arrays["input"], StrValue(line))
	}
	if err := interp.Run(ps.prog); err != nil {
		return core.Result{}, fmt.Errorf("perlbench: %s: %w", pw.Name, err)
	}
	if interp.Output() == "" {
		return core.Result{}, fmt.Errorf("perlbench: %s: script produced no output", pw.Name)
	}
	sum := core.NewChecksum().AddString(interp.Output()).AddUint64(interp.Steps())
	return core.Result{
		Benchmark: b.Name(),
		Workload:  pw.Name,
		Kind:      pw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
