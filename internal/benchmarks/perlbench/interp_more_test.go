package perlbench

import (
	"strings"
	"testing"
)

func TestLogicalOperatorsPerlSemantics(t *testing.T) {
	// Perl's || returns the first truthy operand, && the last evaluated.
	out := run(t, `
$a = "" || "fallback";
$b = "x" || "ignored";
$c = "x" && "kept";
$d = "" && "never";
print $a . "," . $b . "," . $c . "," . $d . ".";
`)
	if out != "fallback,x,kept,." {
		t.Errorf("out = %q", out)
	}
}

func TestNumericStringComparison(t *testing.T) {
	out := run(t, `
if ("10" == 10) {
  print "N";
}
if ("10" lt "9") {
  print "S";
}
`)
	// Numeric compare: equal. String compare: "10" < "9" lexically.
	if out != "NS" {
		t.Errorf("out = %q", out)
	}
}

func TestUnaryAndParens(t *testing.T) {
	out := run(t, `
$x = -(2 + 3) * 2;
$y = !(1 > 2);
print $x . "/" . $y;
`)
	if out != "-10/1" {
		t.Errorf("out = %q", out)
	}
}

func TestNestedIfElse(t *testing.T) {
	out := run(t, `
$v = 7;
if ($v > 10) {
  print "big";
} else {
  if ($v > 5) {
    print "mid";
  } else {
    print "small";
  }
}
`)
	if out != "mid" {
		t.Errorf("out = %q", out)
	}
}

func TestForeachOverEmptyCollections(t *testing.T) {
	out := run(t, `
$n = 0;
foreach $x (@nothing) {
  $n = $n + 1;
}
foreach $k (keys %nomap) {
  $n = $n + 1;
}
print $n;
`)
	if out != "0" {
		t.Errorf("out = %q", out)
	}
}

func TestHashKeyExpressions(t *testing.T) {
	out := run(t, `
$i = 3;
$h{"k" . $i} = 42;
print $h{"k3"} . $h{"k" . (2 + 1)};
`)
	if out != "4242" {
		t.Errorf("out = %q", out)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	out := run(t, `
# leading comment

$x = 1;
# middle comment
print $x;
`)
	if out != "1" {
		t.Errorf("out = %q", out)
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		`$x = (1 + 2;`,         // missing close paren
		`$x = "unterminated;`,  // unterminated string
		`$x = length 3;`,       // builtin without parens
		`$x = substr("a", 0);`, // wrong arity
		`$x = $y =~ bare;`,     // regex without slashes
		`$x = frob(1);`,        // unknown builtin
	}
	for _, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		if err := NewInterp(nil).Run(prog); err == nil {
			t.Errorf("%q should fail at eval time", src)
		}
	}
}

func TestStepsAccounting(t *testing.T) {
	prog, err := Parse(`
$i = 0;
while ($i < 50) {
  $i = $i + 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	i := NewInterp(nil)
	if err := i.Run(prog); err != nil {
		t.Fatal(err)
	}
	if i.Steps() < 50 {
		t.Errorf("steps = %d, want ≥ 50", i.Steps())
	}
}

func TestWordFreqOnRefrateScales(t *testing.T) {
	b := New()
	run := func(name string) uint64 {
		w, err := findW(b, name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(w.Script)
		if err != nil {
			t.Fatal(err)
		}
		i := NewInterp(nil)
		for _, line := range w.Corpus {
			i.arrays["input"] = append(i.arrays["input"], StrValue(line))
		}
		if err := i.Run(prog); err != nil {
			t.Fatal(err)
		}
		return i.Steps()
	}
	if tr, ref := run("train"), run("refrate"); ref <= tr {
		t.Errorf("refrate steps (%d) should exceed train (%d)", ref, tr)
	}
}

func findW(b *Benchmark, name string) (Workload, error) {
	ws, err := b.Workloads()
	if err != nil {
		return Workload{}, err
	}
	for _, w := range ws {
		if w.WorkloadName() == name {
			return w.(Workload), nil
		}
	}
	return Workload{}, nil
}

func TestInterpolationEdgeCases(t *testing.T) {
	out := run(t, `
$a = "v";
print "$a$a end$ stray";
`)
	if !strings.HasPrefix(out, "vv end$") {
		t.Errorf("out = %q", out)
	}
}
