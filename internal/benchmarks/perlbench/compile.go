package perlbench

import (
	"fmt"
	"strings"
)

// This file is the bytecode compiler: it turns a parsed []stmt into a flat
// program executed by the stack machine in bytecode.go. Each expression
// STRING is parsed exactly once (the tree-walker in eval.go re-parses it on
// every evaluation), constant subtrees are folded, variable/hash/array
// names are interned to slot indices, and regex literals are precompiled to
// matcher structs. The tree-walker is retained unchanged as the
// differential reference; any expression the compiler cannot handle makes
// Prepare fall back to it for the whole script, because the tree-walker
// parses expressions lazily — a malformed expression in a never-taken
// branch must NOT fail the run.
//
// The modeled profiler events are keyed to workload semantics (statement
// enters, hash probes, regex scans), not to how the interpreter is
// implemented, so the compiled program emits the exact event stream of the
// tree-walk path; the differential tests prove bit-identity.

// vop is a bytecode opcode.
type vop uint8

const (
	vHALT vop = iota

	// Statement frame ops.
	vSTMT    // steps++, limit check, Enter("pp_eval")
	vEND     // Ops(8), Leave
	vASSIGN  // scalars[a] = pop
	vPRINT   // out += pop.Str()
	vPUSHARR // arrays[a] = append(arrays[a], pop)
	vHASHSET // val=pop, key=pop: hash_ops events, hashes[a][key]=val
	vERRSTMT // raise errs[a]

	// Control flow.
	vIFBR     // c=pop, Branch(80, c); if !c jump a
	vWHILEBR  // c=pop, Branch(81, c); if !c jump a
	vLOOPPUSH // push a zero iteration counter
	vLOOPPOP  // pop the iteration counter
	vITER     // runaway check, counter++, jump a (loop top)
	vJMP      // jump a
	vFORA     // push iterator over arrays[a]
	vFORK     // push iterator over sorted keys of hashes[a]
	vITERNEXT // next item -> scalars[a], or pop iterator and jump b

	// Expressions (stack ops; branch-free because Perl's && and || are
	// eager in this dialect — see eval.go parseOr/parseAnd).
	vCONST     // push consts[a]
	vSCALAR    // push scalars[a]
	vINTERP    // push interpolated string interps[a]
	vHASHGET   // key=pop: hash_ops events, push hashes[a][key]
	vEXISTS    // key=pop: push boolVal(key in hashes[a]); no events
	vMATCH     // s=pop: push boolVal(regexes[a].match(s))
	vNOTMATCH  // s=pop: push boolVal(!regexes[a].match(s))
	vADD       // binary numeric/string ops: r=pop, l=pop, push l OP r
	vSUB
	vCONCAT
	vMUL
	vDIV
	vMOD
	vNUMEQ
	vNUMNE
	vNUMLE
	vNUMGE
	vNUMLT
	vNUMGT
	vSTREQ
	vSTRNE
	vSTRLT
	vSTRGT
	vOR  // eager Perl ||: first truthy operand, else the last
	vAND // eager Perl &&: last operand if first truthy, else the first
	vNOT
	vNEG
	vLENGTH    // builtins: b = evaluated arg count, extras discarded
	vUC
	vLC
	vINTB
	vINDEXB
	vSUBSTRB
	vSCALARLEN // push len(arrays[a])
	vKEYSLEN   // push len(hashes[a])
	vERR       // discard b args, raise errs[a] (statically-known arity error)
)

// instr is one bytecode instruction. a is a slot/index/jump target, b an
// argument count or secondary target.
type instr struct {
	op   vop
	a, b int32
}

// interpPart is one piece of an interpolated string: a literal chunk
// (slot < 0) or a scalar slot reference.
type interpPart struct {
	lit  string
	slot int32
}

// program is a compiled script.
type program struct {
	code    []instr
	consts  []Value
	interps [][]interpPart
	regexes []*regexProg
	errs    []error

	scalarNames []string
	arrayNames  []string
	hashNames   []string
	hashSeeds   []uint64 // fnv state after the hash name, see hashAddr

	inputSlot int // arrays slot bound to the workload corpus
	maxStack  int
}

// fragment is the compiled form of one expression string: branch-free
// stack code plus the stack depth it needs above its entry depth.
type fragment struct {
	ins      []instr
	maxDepth int
}

// compiler interns names and constants and assembles the program. All
// interning is first-encounter order over a deterministic source-order
// walk, so slot tables never depend on map iteration order.
type compiler struct {
	scalarSlots map[string]int
	scalarNames []string
	arraySlots  map[string]int
	arrayNames  []string
	hashSlots   map[string]int
	hashNames   []string

	consts   []Value
	constIdx map[string]int
	interps  [][]interpPart
	regexes  []*regexProg
	regexIdx map[string]int
	errs     []error
	errIdx   map[string]int

	// memo caches compiled fragments by expression source, so repeated
	// expression strings ("$i = $i + 1" across loop bodies) are parsed
	// and folded once.
	memo map[string]fragment

	code     []instr
	cur      int // stack depth at the current emission point
	maxStack int
}

// compileProgram compiles a parsed script. A non-nil error means the
// caller must fall back to the tree-walker for the whole script.
func compileProgram(stmts []stmt) (*program, error) {
	c := &compiler{
		scalarSlots: map[string]int{},
		arraySlots:  map[string]int{},
		hashSlots:   map[string]int{},
		constIdx:    map[string]int{},
		regexIdx:    map[string]int{},
		errIdx:      map[string]int{},
		memo:        map[string]fragment{},
	}
	input := c.arraySlot("input") // always bound by Execute
	if err := c.block(stmts); err != nil {
		return nil, err
	}
	c.op(vHALT, 0, 0)
	seeds := make([]uint64, len(c.hashNames))
	for i, n := range c.hashNames {
		seeds[i] = fnvSeed(n)
	}
	return &program{
		code:        c.code,
		consts:      c.consts,
		interps:     c.interps,
		regexes:     c.regexes,
		errs:        c.errs,
		scalarNames: c.scalarNames,
		arrayNames:  c.arrayNames,
		hashNames:   c.hashNames,
		hashSeeds:   seeds,
		inputSlot:   input,
		maxStack:    c.maxStack + 1,
	}, nil
}

func (c *compiler) scalarSlot(name string) int {
	if s, ok := c.scalarSlots[name]; ok {
		return s
	}
	s := len(c.scalarNames)
	c.scalarSlots[name] = s
	c.scalarNames = append(c.scalarNames, name)
	return s
}

func (c *compiler) arraySlot(name string) int {
	if s, ok := c.arraySlots[name]; ok {
		return s
	}
	s := len(c.arrayNames)
	c.arraySlots[name] = s
	c.arrayNames = append(c.arrayNames, name)
	return s
}

func (c *compiler) hashSlot(name string) int {
	if s, ok := c.hashSlots[name]; ok {
		return s
	}
	s := len(c.hashNames)
	c.hashSlots[name] = s
	c.hashNames = append(c.hashNames, name)
	return s
}

// constSlot interns a constant. Constants are deduplicated by string form
// — hasN is an invariant cache of numPrefix(s), so two Values with equal s
// are semantically identical — and stored with the numeric cache filled.
func (c *compiler) constSlot(v Value) int {
	if idx, ok := c.constIdx[v.s]; ok {
		return idx
	}
	idx := len(c.consts)
	c.constIdx[v.s] = idx
	c.consts = append(c.consts, Value{s: v.s, n: numPrefix(v.s), hasN: true})
	return idx
}

func (c *compiler) interpSlot(parts []interpPart) int {
	c.interps = append(c.interps, parts)
	return len(c.interps) - 1
}

func (c *compiler) regexSlot(pattern string) int {
	if idx, ok := c.regexIdx[pattern]; ok {
		return idx
	}
	idx := len(c.regexes)
	c.regexIdx[pattern] = idx
	c.regexes = append(c.regexes, compileRegex(pattern))
	return idx
}

func (c *compiler) errSlot(err error) int {
	if idx, ok := c.errIdx[err.Error()]; ok {
		return idx
	}
	idx := len(c.errs)
	c.errIdx[err.Error()] = idx
	c.errs = append(c.errs, err)
	return idx
}

// op appends one instruction and returns its index (for jump patching).
func (c *compiler) op(op vop, a, b int) int {
	c.code = append(c.code, instr{op: op, a: int32(a), b: int32(b)})
	return len(c.code) - 1
}

// splice appends a compiled expression fragment; every fragment nets
// exactly one pushed value.
func (c *compiler) splice(f fragment) {
	c.code = append(c.code, f.ins...)
	if d := c.cur + f.maxDepth; d > c.maxStack {
		c.maxStack = d
	}
	c.cur++
}

func (c *compiler) block(stmts []stmt) error {
	for i := range stmts {
		if err := c.stmtCompile(&stmts[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmtCompile(st *stmt) error {
	switch st.kind {
	case "assign":
		f, err := c.exprFrag(st.expr)
		if err != nil {
			return err
		}
		c.op(vSTMT, 0, 0)
		c.splice(f)
		c.op(vASSIGN, c.scalarSlot(st.lhs), 0)
		c.cur--
		c.op(vEND, 0, 0)

	case "print":
		f, err := c.exprFrag(st.expr)
		if err != nil {
			return err
		}
		c.op(vSTMT, 0, 0)
		c.splice(f)
		c.op(vPRINT, 0, 0)
		c.cur--
		c.op(vEND, 0, 0)

	case "pushArr":
		f, err := c.exprFrag(st.expr)
		if err != nil {
			return err
		}
		c.op(vSTMT, 0, 0)
		c.splice(f)
		c.op(vPUSHARR, c.arraySlot(st.lhs), 0)
		c.cur--
		c.op(vEND, 0, 0)

	case "hashSet":
		// Mirrors execOne's lvalue split: first '{', last '}'.
		open := strings.IndexByte(st.lhs, '{')
		closeB := strings.LastIndexByte(st.lhs, '}')
		if open < 0 || closeB < open {
			c.op(vSTMT, 0, 0)
			c.op(vERRSTMT, c.errSlot(fmt.Errorf("%w: bad hash lvalue %q", ErrScript, st.lhs)), 0)
			c.op(vEND, 0, 0)
			return nil
		}
		name := st.lhs[1:open]
		kf, err := c.exprFrag(st.lhs[open+1 : closeB])
		if err != nil {
			return err
		}
		vf, err := c.exprFrag(st.expr)
		if err != nil {
			return err
		}
		c.op(vSTMT, 0, 0)
		c.splice(kf)
		c.splice(vf)
		c.op(vHASHSET, c.hashSlot(name), 0)
		c.cur -= 2
		c.op(vEND, 0, 0)

	case "if":
		f, err := c.exprFrag(st.cond)
		if err != nil {
			return err
		}
		c.op(vSTMT, 0, 0)
		c.splice(f)
		br := c.op(vIFBR, 0, 0)
		c.cur--
		if err := c.block(st.body); err != nil {
			return err
		}
		jmp := c.op(vJMP, 0, 0)
		c.code[br].a = int32(len(c.code))
		if err := c.block(st.else_); err != nil {
			return err
		}
		c.code[jmp].a = int32(len(c.code))
		c.op(vEND, 0, 0)

	case "while":
		f, err := c.exprFrag(st.cond)
		if err != nil {
			return err
		}
		c.op(vSTMT, 0, 0)
		c.op(vLOOPPUSH, 0, 0)
		top := len(c.code)
		c.splice(f)
		br := c.op(vWHILEBR, 0, 0)
		c.cur--
		if err := c.block(st.body); err != nil {
			return err
		}
		c.op(vITER, top, 0)
		c.code[br].a = int32(len(c.code))
		c.op(vLOOPPOP, 0, 0)
		c.op(vEND, 0, 0)

	case "foreach":
		varSlot := c.scalarSlot(st.k1)
		c.op(vSTMT, 0, 0)
		if rest, ok := strings.CutPrefix(st.k2, "keys %"); ok {
			c.op(vFORK, c.hashSlot(rest), 0)
		} else if rest, ok := strings.CutPrefix(st.k2, "@"); ok {
			c.op(vFORA, c.arraySlot(rest), 0)
		} else {
			c.op(vERRSTMT, c.errSlot(fmt.Errorf("%w: bad foreach source %q", ErrScript, st.k2)), 0)
			c.op(vEND, 0, 0)
			return nil
		}
		next := c.op(vITERNEXT, varSlot, 0)
		if err := c.block(st.body); err != nil {
			return err
		}
		c.op(vJMP, next, 0)
		c.code[next].b = int32(len(c.code))
		c.op(vEND, 0, 0)

	default:
		return fmt.Errorf("%w: unknown statement %q", ErrScript, st.kind)
	}
	return nil
}

// exprFrag compiles (and memoizes) one expression string.
func (c *compiler) exprFrag(src string) (fragment, error) {
	if f, ok := c.memo[src]; ok {
		return f, nil
	}
	ec := &exprCompiler{in: src, c: c}
	n, err := ec.full()
	if err != nil {
		return fragment{}, err
	}
	n = foldNode(n)
	em := &emitter{}
	c.emitNode(em, n)
	f := fragment{ins: em.ins, maxDepth: em.max}
	c.memo[src] = f
	return f, nil
}

// emitter builds one fragment, tracking the stack depth it needs.
type emitter struct {
	ins      []instr
	cur, max int
}

func (em *emitter) op(op vop, a, b, delta int) {
	em.ins = append(em.ins, instr{op: op, a: int32(a), b: int32(b)})
	em.cur += delta
	if em.cur > em.max {
		em.max = em.cur
	}
}

func (c *compiler) emitNode(em *emitter, n *enode) {
	switch n.kind {
	case econst:
		em.op(vCONST, c.constSlot(n.val), 0, 1)
	case escalar:
		em.op(vSCALAR, n.slot, 0, 1)
	case einterp:
		em.op(vINTERP, c.interpSlot(n.parts), 0, 1)
	case ehashget:
		c.emitNode(em, n.kids[0])
		em.op(vHASHGET, n.slot, 0, 0)
	case eexists:
		c.emitNode(em, n.kids[0])
		em.op(vEXISTS, n.slot, 0, 0)
	case ematch:
		c.emitNode(em, n.kids[0])
		em.op(n.op, n.re, 0, 0)
	case ebin:
		c.emitNode(em, n.kids[0])
		c.emitNode(em, n.kids[1])
		em.op(n.op, 0, 0, -1)
	case eunary:
		c.emitNode(em, n.kids[0])
		em.op(n.op, 0, 0, 0)
	case ebuiltin:
		for _, k := range n.kids {
			c.emitNode(em, k)
		}
		em.op(n.op, 0, len(n.kids), 1-len(n.kids))
	case escalarlen:
		em.op(vSCALARLEN, n.slot, 0, 1)
	case ekeyslen:
		em.op(vKEYSLEN, n.slot, 0, 1)
	case eerr:
		for _, k := range n.kids {
			c.emitNode(em, k)
		}
		em.op(vERR, n.errIdx, len(n.kids), 1-len(n.kids))
	}
}

// ---------------------------------------------------------------------------
// Expression AST

type ekind uint8

const (
	econst ekind = iota
	escalar
	einterp
	ehashget
	eexists
	ematch
	ebin
	eunary // vNOT / vNEG
	ebuiltin
	escalarlen
	ekeyslen
	eerr
)

type enode struct {
	kind   ekind
	val    Value // econst
	slot   int   // escalar/ehashget/eexists/escalarlen/ekeyslen
	op     vop   // ebin/eunary/ebuiltin/ematch opcode
	re     int   // ematch: regex index
	errIdx int   // eerr
	parts  []interpPart
	kids   []*enode
}

func cnode(v Value) *enode { return &enode{kind: econst, val: v} }

// foldNode constant-folds bottom-up, blua-style: a node folds only when
// every operand is constant, never across non-constant subtrees, and never
// when the operation emits profiler events (hash probes, regex scans) or
// can raise a value-dependent runtime error (division/modulo by a zero
// denominator stays a runtime op so the error surfaces exactly as the
// tree-walker raises it).
func foldNode(n *enode) *enode {
	for i, k := range n.kids {
		n.kids[i] = foldNode(k)
	}
	switch n.kind {
	case ebin:
		l, r := n.kids[0], n.kids[1]
		if l.kind != econst || r.kind != econst {
			return n
		}
		lv, rv := l.val, r.val
		switch n.op {
		case vADD:
			return cnode(NumValue(lv.Num() + rv.Num()))
		case vSUB:
			return cnode(NumValue(lv.Num() - rv.Num()))
		case vCONCAT:
			return cnode(StrValue(lv.Str() + rv.Str()))
		case vMUL:
			return cnode(NumValue(lv.Num() * rv.Num()))
		case vDIV:
			if rv.Num() == 0 {
				return n
			}
			return cnode(NumValue(lv.Num() / rv.Num()))
		case vMOD:
			if int64(rv.Num()) == 0 {
				return n
			}
			return cnode(NumValue(float64(int64(lv.Num()) % int64(rv.Num()))))
		case vNUMEQ:
			return cnode(boolVal(lv.Num() == rv.Num()))
		case vNUMNE:
			return cnode(boolVal(lv.Num() != rv.Num()))
		case vNUMLE:
			return cnode(boolVal(lv.Num() <= rv.Num()))
		case vNUMGE:
			return cnode(boolVal(lv.Num() >= rv.Num()))
		case vNUMLT:
			return cnode(boolVal(lv.Num() < rv.Num()))
		case vNUMGT:
			return cnode(boolVal(lv.Num() > rv.Num()))
		case vSTREQ:
			return cnode(boolVal(lv.Str() == rv.Str()))
		case vSTRNE:
			return cnode(boolVal(lv.Str() != rv.Str()))
		case vSTRLT:
			return cnode(boolVal(lv.Str() < rv.Str()))
		case vSTRGT:
			return cnode(boolVal(lv.Str() > rv.Str()))
		case vOR:
			if lv.Truthy() {
				return l
			}
			return r
		case vAND:
			if lv.Truthy() {
				return r
			}
			return l
		}
	case eunary:
		k := n.kids[0]
		if k.kind != econst {
			return n
		}
		if n.op == vNOT {
			return cnode(boolVal(!k.val.Truthy()))
		}
		return cnode(NumValue(-k.val.Num()))
	case ebuiltin:
		for _, k := range n.kids {
			if k.kind != econst {
				return n
			}
		}
		args := n.kids
		switch n.op {
		case vLENGTH:
			return cnode(NumValue(float64(len(args[0].val.Str()))))
		case vUC:
			return cnode(StrValue(strings.ToUpper(args[0].val.Str())))
		case vLC:
			return cnode(StrValue(strings.ToLower(args[0].val.Str())))
		case vINTB:
			return cnode(NumValue(float64(int64(args[0].val.Num()))))
		case vINDEXB:
			return cnode(NumValue(float64(strings.Index(args[0].val.Str(), args[1].val.Str()))))
		case vSUBSTRB:
			return cnode(StrValue(substrClamp(args[0].val.Str(), int(args[1].val.Num()), int(args[2].val.Num()))))
		}
	}
	return n
}

// substrClamp is substr's clamping, shared by the folder and the VM;
// semantics identical to eval.go's parseBuiltin "substr" case.
func substrClamp(s string, off, n int) string {
	if off < 0 {
		off = 0
	}
	if off > len(s) {
		off = len(s)
	}
	if off+n > len(s) {
		n = len(s) - off
	}
	if n < 0 {
		n = 0
	}
	return s[off : off+n]
}

// ---------------------------------------------------------------------------
// Expression parser: a structural mirror of eval.go's exprParser that
// builds an AST instead of evaluating. Token acceptance (whitespace, word
// boundaries, case order) matches exprParser exactly so the compiled
// grammar is the interpreted grammar; the differential fuzz target pins
// the equivalence.

type exprCompiler struct {
	in  string
	pos int
	c   *compiler
}

func (e *exprCompiler) full() (*enode, error) {
	n, err := e.parseOr()
	if err != nil {
		return nil, err
	}
	e.skipSpace()
	if e.pos != len(e.in) {
		return nil, fmt.Errorf("%w: trailing %q in expression %q", ErrScript, e.in[e.pos:], e.in)
	}
	return n, nil
}

func (e *exprCompiler) skipSpace() {
	for e.pos < len(e.in) && (e.in[e.pos] == ' ' || e.in[e.pos] == '\t') {
		e.pos++
	}
}

func (e *exprCompiler) peek(s string) bool {
	e.skipSpace()
	return strings.HasPrefix(e.in[e.pos:], s)
}

func (e *exprCompiler) accept(s string) bool {
	if e.peek(s) {
		e.pos += len(s)
		return true
	}
	return false
}

func (e *exprCompiler) acceptWord(s string) bool {
	e.skipSpace()
	if !strings.HasPrefix(e.in[e.pos:], s) {
		return false
	}
	end := e.pos + len(s)
	if end < len(e.in) && isWord(e.in[end]) {
		return false
	}
	e.pos = end
	return true
}

func (e *exprCompiler) parseOr() (*enode, error) {
	v, err := e.parseAnd()
	if err != nil {
		return nil, err
	}
	for e.accept("||") {
		r, err := e.parseAnd()
		if err != nil {
			return nil, err
		}
		v = &enode{kind: ebin, op: vOR, kids: []*enode{v, r}}
	}
	return v, nil
}

func (e *exprCompiler) parseAnd() (*enode, error) {
	v, err := e.parseCmp()
	if err != nil {
		return nil, err
	}
	for e.accept("&&") {
		r, err := e.parseCmp()
		if err != nil {
			return nil, err
		}
		v = &enode{kind: ebin, op: vAND, kids: []*enode{v, r}}
	}
	return v, nil
}

func (e *exprCompiler) parseCmp() (*enode, error) {
	v, err := e.parseAdd()
	if err != nil {
		return nil, err
	}
	bin := func(op vop) error {
		r, err := e.parseAdd()
		if err != nil {
			return err
		}
		v = &enode{kind: ebin, op: op, kids: []*enode{v, r}}
		return nil
	}
	match := func(neg bool) error {
		re, err := e.parseRegexLiteral()
		if err != nil {
			return err
		}
		op := vMATCH
		if neg {
			op = vNOTMATCH
		}
		v = &enode{kind: ematch, op: op, re: e.c.regexSlot(re), kids: []*enode{v}}
		return nil
	}
	for {
		var err error
		switch {
		case e.accept("=="):
			err = bin(vNUMEQ)
		case e.accept("!="):
			err = bin(vNUMNE)
		case e.accept("<="):
			err = bin(vNUMLE)
		case e.accept(">="):
			err = bin(vNUMGE)
		case e.accept("=~"):
			err = match(false)
		case e.accept("!~"):
			err = match(true)
		case e.accept("<"):
			err = bin(vNUMLT)
		case e.accept(">"):
			err = bin(vNUMGT)
		case e.acceptWord("eq"):
			err = bin(vSTREQ)
		case e.acceptWord("ne"):
			err = bin(vSTRNE)
		case e.acceptWord("lt"):
			err = bin(vSTRLT)
		case e.acceptWord("gt"):
			err = bin(vSTRGT)
		default:
			return v, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func (e *exprCompiler) parseAdd() (*enode, error) {
	v, err := e.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case e.accept("+"):
			r, err := e.parseMul()
			if err != nil {
				return nil, err
			}
			v = &enode{kind: ebin, op: vADD, kids: []*enode{v, r}}
		case e.peek("-") && !e.peek("->"):
			e.pos++
			r, err := e.parseMul()
			if err != nil {
				return nil, err
			}
			v = &enode{kind: ebin, op: vSUB, kids: []*enode{v, r}}
		case e.accept("."):
			r, err := e.parseMul()
			if err != nil {
				return nil, err
			}
			v = &enode{kind: ebin, op: vCONCAT, kids: []*enode{v, r}}
		default:
			return v, nil
		}
	}
}

func (e *exprCompiler) parseMul() (*enode, error) {
	v, err := e.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case e.accept("*"):
			r, err := e.parseUnary()
			if err != nil {
				return nil, err
			}
			v = &enode{kind: ebin, op: vMUL, kids: []*enode{v, r}}
		case e.accept("/"):
			r, err := e.parseUnary()
			if err != nil {
				return nil, err
			}
			v = &enode{kind: ebin, op: vDIV, kids: []*enode{v, r}}
		case e.accept("%"):
			r, err := e.parseUnary()
			if err != nil {
				return nil, err
			}
			v = &enode{kind: ebin, op: vMOD, kids: []*enode{v, r}}
		default:
			return v, nil
		}
	}
}

func (e *exprCompiler) parseUnary() (*enode, error) {
	switch {
	case e.accept("!"):
		v, err := e.parseUnary()
		if err != nil {
			return nil, err
		}
		return &enode{kind: eunary, op: vNOT, kids: []*enode{v}}, nil
	case e.accept("-"):
		v, err := e.parseUnary()
		if err != nil {
			return nil, err
		}
		return &enode{kind: eunary, op: vNEG, kids: []*enode{v}}, nil
	default:
		return e.parsePrimary()
	}
}

func (e *exprCompiler) parsePrimary() (*enode, error) {
	e.skipSpace()
	if e.pos >= len(e.in) {
		return nil, fmt.Errorf("%w: unexpected end of expression %q", ErrScript, e.in)
	}
	c := e.in[e.pos]
	switch {
	case c == '(':
		e.pos++
		v, err := e.parseOr()
		if err != nil {
			return nil, err
		}
		if !e.accept(")") {
			return nil, fmt.Errorf("%w: missing ')' in %q", ErrScript, e.in)
		}
		return v, nil
	case c == '"':
		return e.parseString()
	case c >= '0' && c <= '9':
		start := e.pos
		for e.pos < len(e.in) && (e.in[e.pos] >= '0' && e.in[e.pos] <= '9' || e.in[e.pos] == '.') {
			e.pos++
		}
		return cnode(StrValue(e.in[start:e.pos])), nil
	case c == '$':
		return e.parseDollar()
	default:
		for _, fn := range []string{"length", "substr", "uc", "lc", "index", "scalar", "exists", "keys", "int"} {
			if e.acceptWord(fn) {
				return e.parseBuiltin(fn)
			}
		}
		return nil, fmt.Errorf("%w: unexpected %q in expression %q", ErrScript, c, e.in)
	}
}

// parseString mirrors eval.go's parseString, splitting the literal into
// chunks and scalar-slot references resolved at execution time.
func (e *exprCompiler) parseString() (*enode, error) {
	e.pos++ // opening quote
	var parts []interpPart
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			parts = append(parts, interpPart{lit: sb.String(), slot: -1})
			sb.Reset()
		}
	}
	for e.pos < len(e.in) {
		c := e.in[e.pos]
		switch c {
		case '"':
			e.pos++
			flush()
			for _, p := range parts {
				if p.slot >= 0 {
					return &enode{kind: einterp, parts: parts}, nil
				}
			}
			var all strings.Builder
			for _, p := range parts {
				all.WriteString(p.lit)
			}
			return cnode(StrValue(all.String())), nil
		case '\\':
			e.pos++
			if e.pos >= len(e.in) {
				return nil, fmt.Errorf("%w: dangling escape", ErrScript)
			}
			switch e.in[e.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(e.in[e.pos])
			}
			e.pos++
		case '$':
			j := e.pos + 1
			for j < len(e.in) && isWord(e.in[j]) {
				j++
			}
			name := e.in[e.pos+1 : j]
			if name == "" {
				sb.WriteByte('$')
				e.pos++
				continue
			}
			flush()
			parts = append(parts, interpPart{slot: int32(e.c.scalarSlot(name))})
			e.pos = j
		default:
			sb.WriteByte(c)
			e.pos++
		}
	}
	return nil, fmt.Errorf("%w: unterminated string", ErrScript)
}

func (e *exprCompiler) parseDollar() (*enode, error) {
	e.pos++ // '$'
	start := e.pos
	for e.pos < len(e.in) && isWord(e.in[e.pos]) {
		e.pos++
	}
	name := e.in[start:e.pos]
	if name == "" {
		return nil, fmt.Errorf("%w: bare '$'", ErrScript)
	}
	if e.pos < len(e.in) && e.in[e.pos] == '{' {
		depth := 0
		j := e.pos
		for ; j < len(e.in); j++ {
			if e.in[j] == '{' {
				depth++
			} else if e.in[j] == '}' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if depth != 0 {
			return nil, fmt.Errorf("%w: unbalanced hash braces", ErrScript)
		}
		keySrc := e.in[e.pos+1 : j]
		e.pos = j + 1
		sub := &exprCompiler{in: keySrc, c: e.c}
		key, err := sub.full()
		if err != nil {
			return nil, err
		}
		return &enode{kind: ehashget, slot: e.c.hashSlot(name), kids: []*enode{key}}, nil
	}
	return &enode{kind: escalar, slot: e.c.scalarSlot(name)}, nil
}

func (e *exprCompiler) parseRegexLiteral() (string, error) {
	e.skipSpace()
	if e.pos >= len(e.in) || e.in[e.pos] != '/' {
		return "", fmt.Errorf("%w: expected /regex/", ErrScript)
	}
	end := strings.IndexByte(e.in[e.pos+1:], '/')
	if end < 0 {
		return "", fmt.Errorf("%w: unterminated regex", ErrScript)
	}
	re := e.in[e.pos+1 : e.pos+1+end]
	e.pos += end + 2
	return re, nil
}

func (e *exprCompiler) parseBuiltin(fn string) (*enode, error) {
	if !e.accept("(") {
		return nil, fmt.Errorf("%w: %s requires parentheses", ErrScript, fn)
	}
	switch fn {
	case "scalar", "keys":
		e.skipSpace()
		sigil := byte('@')
		if fn == "keys" {
			sigil = '%'
		}
		if e.pos >= len(e.in) || e.in[e.pos] != sigil {
			return nil, fmt.Errorf("%w: %s expects %c-name", ErrScript, fn, sigil)
		}
		e.pos++
		start := e.pos
		for e.pos < len(e.in) && isWord(e.in[e.pos]) {
			e.pos++
		}
		name := e.in[start:e.pos]
		if !e.accept(")") {
			return nil, fmt.Errorf("%w: missing ')'", ErrScript)
		}
		if fn == "scalar" {
			return &enode{kind: escalarlen, slot: e.c.arraySlot(name)}, nil
		}
		return &enode{kind: ekeyslen, slot: e.c.hashSlot(name)}, nil
	case "exists":
		e.skipSpace()
		if e.pos >= len(e.in) || e.in[e.pos] != '$' {
			return nil, fmt.Errorf("%w: exists expects $hash{key}", ErrScript)
		}
		e.pos++
		start := e.pos
		for e.pos < len(e.in) && isWord(e.in[e.pos]) {
			e.pos++
		}
		name := e.in[start:e.pos]
		if e.pos >= len(e.in) || e.in[e.pos] != '{' {
			return nil, fmt.Errorf("%w: exists expects $hash{key}", ErrScript)
		}
		depth := 0
		j := e.pos
		for ; j < len(e.in); j++ {
			if e.in[j] == '{' {
				depth++
			} else if e.in[j] == '}' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if depth != 0 {
			// The tree-walker scans past the end here; bail to it.
			return nil, fmt.Errorf("%w: unbalanced hash braces", ErrScript)
		}
		keySrc := e.in[e.pos+1 : j]
		e.pos = j + 1
		if !e.accept(")") {
			return nil, fmt.Errorf("%w: missing ')'", ErrScript)
		}
		sub := &exprCompiler{in: keySrc, c: e.c}
		key, err := sub.full()
		if err != nil {
			return nil, err
		}
		return &enode{kind: eexists, slot: e.c.hashSlot(name), kids: []*enode{key}}, nil
	}
	var args []*enode
	for {
		v, err := e.parseOr()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
		if e.accept(",") {
			continue
		}
		break
	}
	if !e.accept(")") {
		return nil, fmt.Errorf("%w: missing ')' after %s", ErrScript, fn)
	}
	// Arity failures are raised AFTER the args are evaluated, exactly as
	// the tree-walker does: compile the args, then an unconditional raise.
	switch fn {
	case "length":
		return &enode{kind: ebuiltin, op: vLENGTH, kids: args}, nil
	case "uc":
		return &enode{kind: ebuiltin, op: vUC, kids: args}, nil
	case "lc":
		return &enode{kind: ebuiltin, op: vLC, kids: args}, nil
	case "int":
		return &enode{kind: ebuiltin, op: vINTB, kids: args}, nil
	case "index":
		if len(args) < 2 {
			return &enode{kind: eerr, errIdx: e.c.errSlot(fmt.Errorf("%w: index needs 2 args", ErrScript)), kids: args}, nil
		}
		return &enode{kind: ebuiltin, op: vINDEXB, kids: args}, nil
	case "substr":
		if len(args) < 3 {
			return &enode{kind: eerr, errIdx: e.c.errSlot(fmt.Errorf("%w: substr needs 3 args", ErrScript)), kids: args}, nil
		}
		return &enode{kind: ebuiltin, op: vSUBSTRB, kids: args}, nil
	default:
		return nil, fmt.Errorf("%w: unknown builtin %s", ErrScript, fn)
	}
}
