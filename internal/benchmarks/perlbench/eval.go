package perlbench

import (
	"fmt"
	"strings"
)

// eval evaluates an expression string. The grammar (precedence low→high):
//
//	or:      ||
//	and:     &&
//	cmp:     == != < > <= >= eq ne lt gt  and  =~ /re/  !~ /re/
//	add:     + - .
//	mul:     * / %
//	unary:   - !
//	primary: number, "string", $var, $hash{expr}, scalar(@a), builtins, ( )
func (i *Interp) eval(src string) (Value, error) {
	e := &exprParser{in: src, i: i}
	v, err := e.parseOr()
	if err != nil {
		return Value{}, err
	}
	e.skipSpace()
	if e.pos != len(e.in) {
		return Value{}, fmt.Errorf("%w: trailing %q in expression %q", ErrScript, e.in[e.pos:], src)
	}
	return v, nil
}

type exprParser struct {
	in  string
	pos int
	i   *Interp
}

func (e *exprParser) skipSpace() {
	for e.pos < len(e.in) && (e.in[e.pos] == ' ' || e.in[e.pos] == '\t') {
		e.pos++
	}
}

func (e *exprParser) peek(s string) bool {
	e.skipSpace()
	return strings.HasPrefix(e.in[e.pos:], s)
}

func (e *exprParser) accept(s string) bool {
	if e.peek(s) {
		e.pos += len(s)
		return true
	}
	return false
}

// acceptWord matches a keyword operator at a word boundary.
func (e *exprParser) acceptWord(s string) bool {
	e.skipSpace()
	if !strings.HasPrefix(e.in[e.pos:], s) {
		return false
	}
	end := e.pos + len(s)
	if end < len(e.in) && isWord(e.in[end]) {
		return false
	}
	e.pos = end
	return true
}

func isWord(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (e *exprParser) parseOr() (Value, error) {
	v, err := e.parseAnd()
	if err != nil {
		return v, err
	}
	for e.accept("||") {
		r, err := e.parseAnd()
		if err != nil {
			return v, err
		}
		if v.Truthy() {
			// keep v (Perl returns the first truthy operand)
		} else {
			v = r
		}
	}
	return v, nil
}

func (e *exprParser) parseAnd() (Value, error) {
	v, err := e.parseCmp()
	if err != nil {
		return v, err
	}
	for e.accept("&&") {
		r, err := e.parseCmp()
		if err != nil {
			return v, err
		}
		if v.Truthy() {
			v = r
		}
	}
	return v, nil
}

// trueValue/falseValue carry the numeric cache; numPrefix("1") is 1 and
// numPrefix("") is 0, so they are indistinguishable from the uncached
// StrValue forms.
var (
	trueValue  = Value{s: "1", n: 1, hasN: true}
	falseValue = Value{s: "", n: 0, hasN: true}
)

func boolVal(b bool) Value {
	if b {
		return trueValue
	}
	return falseValue
}

func (e *exprParser) parseCmp() (Value, error) {
	v, err := e.parseAdd()
	if err != nil {
		return v, err
	}
	for {
		switch {
		case e.accept("=="):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Num() == r.Num())
		case e.accept("!="):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Num() != r.Num())
		case e.accept("<="):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Num() <= r.Num())
		case e.accept(">="):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Num() >= r.Num())
		case e.accept("=~"):
			re, err := e.parseRegexLiteral()
			if err != nil {
				return v, err
			}
			v = boolVal(e.i.regexMatch(v.Str(), re))
		case e.accept("!~"):
			re, err := e.parseRegexLiteral()
			if err != nil {
				return v, err
			}
			v = boolVal(!e.i.regexMatch(v.Str(), re))
		case e.accept("<"):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Num() < r.Num())
		case e.accept(">"):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Num() > r.Num())
		case e.acceptWord("eq"):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Str() == r.Str())
		case e.acceptWord("ne"):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Str() != r.Str())
		case e.acceptWord("lt"):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Str() < r.Str())
		case e.acceptWord("gt"):
			r, err := e.parseAdd()
			if err != nil {
				return v, err
			}
			v = boolVal(v.Str() > r.Str())
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseAdd() (Value, error) {
	v, err := e.parseMul()
	if err != nil {
		return v, err
	}
	for {
		switch {
		case e.accept("+"):
			r, err := e.parseMul()
			if err != nil {
				return v, err
			}
			v = NumValue(v.Num() + r.Num())
		case e.peek("-") && !e.peek("->"):
			e.pos++
			r, err := e.parseMul()
			if err != nil {
				return v, err
			}
			v = NumValue(v.Num() - r.Num())
		case e.accept("."):
			r, err := e.parseMul()
			if err != nil {
				return v, err
			}
			v = StrValue(v.Str() + r.Str())
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseMul() (Value, error) {
	v, err := e.parseUnary()
	if err != nil {
		return v, err
	}
	for {
		switch {
		case e.accept("*"):
			r, err := e.parseUnary()
			if err != nil {
				return v, err
			}
			v = NumValue(v.Num() * r.Num())
		case e.accept("/"):
			r, err := e.parseUnary()
			if err != nil {
				return v, err
			}
			if r.Num() == 0 {
				return v, fmt.Errorf("%w: division by zero", ErrScript)
			}
			v = NumValue(v.Num() / r.Num())
		case e.accept("%"):
			r, err := e.parseUnary()
			if err != nil {
				return v, err
			}
			if int64(r.Num()) == 0 {
				return v, fmt.Errorf("%w: modulo by zero", ErrScript)
			}
			v = NumValue(float64(int64(v.Num()) % int64(r.Num())))
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseUnary() (Value, error) {
	switch {
	case e.accept("!"):
		v, err := e.parseUnary()
		if err != nil {
			return v, err
		}
		return boolVal(!v.Truthy()), nil
	case e.accept("-"):
		v, err := e.parseUnary()
		if err != nil {
			return v, err
		}
		return NumValue(-v.Num()), nil
	default:
		return e.parsePrimary()
	}
}

func (e *exprParser) parsePrimary() (Value, error) {
	e.skipSpace()
	if e.pos >= len(e.in) {
		return Value{}, fmt.Errorf("%w: unexpected end of expression %q", ErrScript, e.in)
	}
	c := e.in[e.pos]
	switch {
	case c == '(':
		e.pos++
		v, err := e.parseOr()
		if err != nil {
			return v, err
		}
		if !e.accept(")") {
			return v, fmt.Errorf("%w: missing ')' in %q", ErrScript, e.in)
		}
		return v, nil
	case c == '"':
		return e.parseString()
	case c >= '0' && c <= '9':
		start := e.pos
		for e.pos < len(e.in) && (e.in[e.pos] >= '0' && e.in[e.pos] <= '9' || e.in[e.pos] == '.') {
			e.pos++
		}
		return StrValue(e.in[start:e.pos]), nil
	case c == '$':
		return e.parseDollar()
	default:
		// Builtin function call?
		for _, fn := range []string{"length", "substr", "uc", "lc", "index", "scalar", "exists", "keys", "int"} {
			if e.acceptWord(fn) {
				return e.parseBuiltin(fn)
			}
		}
		return Value{}, fmt.Errorf("%w: unexpected %q in expression %q", ErrScript, c, e.in)
	}
}

// parseString reads a double-quoted literal with \n, \t, \\ and \" escapes
// and $name interpolation.
func (e *exprParser) parseString() (Value, error) {
	e.pos++ // opening quote
	var sb strings.Builder
	for e.pos < len(e.in) {
		c := e.in[e.pos]
		switch c {
		case '"':
			e.pos++
			return StrValue(sb.String()), nil
		case '\\':
			e.pos++
			if e.pos >= len(e.in) {
				return Value{}, fmt.Errorf("%w: dangling escape", ErrScript)
			}
			switch e.in[e.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(e.in[e.pos])
			}
			e.pos++
		case '$':
			// Interpolate $name.
			j := e.pos + 1
			for j < len(e.in) && isWord(e.in[j]) {
				j++
			}
			name := e.in[e.pos+1 : j]
			if name == "" {
				sb.WriteByte('$')
				e.pos++
				continue
			}
			sb.WriteString(e.i.scalars[name].Str())
			e.pos = j
		default:
			sb.WriteByte(c)
			e.pos++
		}
	}
	return Value{}, fmt.Errorf("%w: unterminated string", ErrScript)
}

// parseDollar reads $name or $hash{expr}.
func (e *exprParser) parseDollar() (Value, error) {
	e.pos++ // '$'
	start := e.pos
	for e.pos < len(e.in) && isWord(e.in[e.pos]) {
		e.pos++
	}
	name := e.in[start:e.pos]
	if name == "" {
		return Value{}, fmt.Errorf("%w: bare '$'", ErrScript)
	}
	if e.pos < len(e.in) && e.in[e.pos] == '{' {
		// Hash element: find the matching brace.
		depth := 0
		j := e.pos
		for ; j < len(e.in); j++ {
			if e.in[j] == '{' {
				depth++
			} else if e.in[j] == '}' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if depth != 0 {
			return Value{}, fmt.Errorf("%w: unbalanced hash braces", ErrScript)
		}
		keySrc := e.in[e.pos+1 : j]
		e.pos = j + 1
		key, err := e.i.eval(keySrc)
		if err != nil {
			return Value{}, err
		}
		if e.i.p != nil {
			e.i.p.Enter("hash_ops")
			e.i.p.Ops(4)
			e.i.p.Load(0x90_0000_0000 + hashAddr(name, key.Str()))
			e.i.p.Leave()
		}
		return e.i.hashes[name][key.Str()], nil
	}
	return e.i.scalars[name], nil
}

// parseRegexLiteral reads /pattern/.
func (e *exprParser) parseRegexLiteral() (string, error) {
	e.skipSpace()
	if e.pos >= len(e.in) || e.in[e.pos] != '/' {
		return "", fmt.Errorf("%w: expected /regex/", ErrScript)
	}
	end := strings.IndexByte(e.in[e.pos+1:], '/')
	if end < 0 {
		return "", fmt.Errorf("%w: unterminated regex", ErrScript)
	}
	re := e.in[e.pos+1 : e.pos+1+end]
	e.pos += end + 2
	return re, nil
}

// parseBuiltin evaluates a builtin call; fn's name was already consumed.
func (e *exprParser) parseBuiltin(fn string) (Value, error) {
	if !e.accept("(") {
		return Value{}, fmt.Errorf("%w: %s requires parentheses", ErrScript, fn)
	}
	// scalar(@a), keys(%h) and exists($h{k}) have special argument forms.
	switch fn {
	case "scalar", "keys":
		e.skipSpace()
		sigil := byte('@')
		if fn == "keys" {
			sigil = '%'
		}
		if e.pos >= len(e.in) || e.in[e.pos] != sigil {
			return Value{}, fmt.Errorf("%w: %s expects %c-name", ErrScript, fn, sigil)
		}
		e.pos++
		start := e.pos
		for e.pos < len(e.in) && isWord(e.in[e.pos]) {
			e.pos++
		}
		name := e.in[start:e.pos]
		if !e.accept(")") {
			return Value{}, fmt.Errorf("%w: missing ')'", ErrScript)
		}
		if fn == "scalar" {
			return NumValue(float64(len(e.i.arrays[name]))), nil
		}
		return NumValue(float64(len(e.i.hashes[name]))), nil
	case "exists":
		e.skipSpace()
		if e.pos >= len(e.in) || e.in[e.pos] != '$' {
			return Value{}, fmt.Errorf("%w: exists expects $hash{key}", ErrScript)
		}
		e.pos++
		start := e.pos
		for e.pos < len(e.in) && isWord(e.in[e.pos]) {
			e.pos++
		}
		name := e.in[start:e.pos]
		if e.pos >= len(e.in) || e.in[e.pos] != '{' {
			return Value{}, fmt.Errorf("%w: exists expects $hash{key}", ErrScript)
		}
		depth := 0
		j := e.pos
		for ; j < len(e.in); j++ {
			if e.in[j] == '{' {
				depth++
			} else if e.in[j] == '}' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		keySrc := e.in[e.pos+1 : j]
		e.pos = j + 1
		if !e.accept(")") {
			return Value{}, fmt.Errorf("%w: missing ')'", ErrScript)
		}
		key, err := e.i.eval(keySrc)
		if err != nil {
			return Value{}, err
		}
		_, ok := e.i.hashes[name][key.Str()]
		return boolVal(ok), nil
	}
	// Generic comma-separated value arguments.
	var args []Value
	for {
		v, err := e.parseOr()
		if err != nil {
			return Value{}, err
		}
		args = append(args, v)
		if e.accept(",") {
			continue
		}
		break
	}
	if !e.accept(")") {
		return Value{}, fmt.Errorf("%w: missing ')' after %s", ErrScript, fn)
	}
	switch fn {
	case "length":
		return NumValue(float64(len(args[0].Str()))), nil
	case "uc":
		return StrValue(strings.ToUpper(args[0].Str())), nil
	case "lc":
		return StrValue(strings.ToLower(args[0].Str())), nil
	case "int":
		return NumValue(float64(int64(args[0].Num()))), nil
	case "index":
		if len(args) < 2 {
			return Value{}, fmt.Errorf("%w: index needs 2 args", ErrScript)
		}
		return NumValue(float64(strings.Index(args[0].Str(), args[1].Str()))), nil
	case "substr":
		if len(args) < 3 {
			return Value{}, fmt.Errorf("%w: substr needs 3 args", ErrScript)
		}
		s := args[0].Str()
		off, n := int(args[1].Num()), int(args[2].Num())
		if off < 0 {
			off = 0
		}
		if off > len(s) {
			off = len(s)
		}
		if off+n > len(s) {
			n = len(s) - off
		}
		if n < 0 {
			n = 0
		}
		return StrValue(s[off : off+n]), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown builtin %s", ErrScript, fn)
	}
}

// regexMatch implements the literal/dot/star/class/anchor subset with
// backtracking.
func (i *Interp) regexMatch(s, pattern string) bool {
	if i.p != nil {
		i.p.Enter("regex_match")
		defer i.p.Leave()
		i.p.Ops(uint64(len(s) + len(pattern)))
	}
	anchored := strings.HasPrefix(pattern, "^")
	if anchored {
		pattern = pattern[1:]
	}
	if anchored {
		return matchHere(s, pattern, i)
	}
	for start := 0; start <= len(s); start++ {
		if i.p != nil && start%8 == 0 {
			i.p.Branch(82, true)
		}
		if matchHere(s[start:], pattern, i) {
			return true
		}
	}
	return false
}

// atom reads one pattern atom at p[0...]; returns the matcher and its
// length in the pattern.
func atomAt(p string) (func(byte) bool, int) {
	switch {
	case p[0] == '[':
		end := strings.IndexByte(p, ']')
		if end < 0 {
			lit := p[0]
			return func(c byte) bool { return c == lit }, 1
		}
		set := p[1:end]
		neg := false
		if strings.HasPrefix(set, "^") {
			neg = true
			set = set[1:]
		}
		// Expand a-z ranges.
		allowed := map[byte]bool{}
		for k := 0; k < len(set); k++ {
			if k+2 < len(set) && set[k+1] == '-' {
				for c := set[k]; c <= set[k+2]; c++ {
					allowed[c] = true
				}
				k += 2
				continue
			}
			allowed[set[k]] = true
		}
		return func(c byte) bool { return allowed[c] != neg }, end + 1
	case p[0] == '.':
		return func(byte) bool { return true }, 1
	case p[0] == '\\' && len(p) > 1:
		switch p[1] {
		case 'd':
			return func(c byte) bool { return c >= '0' && c <= '9' }, 2
		case 'w':
			return func(c byte) bool { return isWord(c) }, 2
		case 's':
			return func(c byte) bool { return c == ' ' || c == '\t' || c == '\n' }, 2
		default:
			lit := p[1]
			return func(c byte) bool { return c == lit }, 2
		}
	default:
		lit := p[0]
		return func(c byte) bool { return c == lit }, 1
	}
}

func matchHere(s, p string, i *Interp) bool {
	if p == "" {
		return true
	}
	if p == "$" {
		return s == ""
	}
	m, alen := atomAt(p)
	rest := p[alen:]
	if strings.HasPrefix(rest, "*") {
		rest = rest[1:]
		// Greedy with backtracking.
		n := 0
		for n < len(s) && m(s[n]) {
			n++
		}
		for ; n >= 0; n-- {
			if matchHere(s[n:], rest, i) {
				return true
			}
		}
		return false
	}
	if strings.HasPrefix(rest, "+") {
		rest = rest[1:]
		n := 0
		for n < len(s) && m(s[n]) {
			n++
		}
		for ; n >= 1; n-- {
			if matchHere(s[n:], rest, i) {
				return true
			}
		}
		return false
	}
	if len(s) > 0 && m(s[0]) {
		return matchHere(s[1:], rest, i)
	}
	return false
}
