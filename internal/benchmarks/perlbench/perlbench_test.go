package perlbench

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

// run parses and executes src, returning output.
func run(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	i := NewInterp(nil)
	if err := i.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return i.Output()
}

func TestValueDualNature(t *testing.T) {
	if NumValue(42).Str() != "42" {
		t.Error("NumValue formatting")
	}
	if StrValue("3.5abc").Num() != 3.5 {
		t.Errorf("Num(3.5abc) = %v", StrValue("3.5abc").Num())
	}
	if StrValue("abc").Num() != 0 {
		t.Error("non-numeric string should be 0")
	}
	if StrValue("-7").Num() != -7 {
		t.Error("negative parse")
	}
	if StrValue("0").Truthy() || StrValue("").Truthy() {
		t.Error("0 and empty are false")
	}
	if !StrValue("0.0").Truthy() {
		t.Error(`"0.0" is true in Perl`)
	}
}

func TestArithmeticAndStrings(t *testing.T) {
	out := run(t, `
$x = 2 + 3 * 4;
$s = "a" . "b" . $x;
print $s;
`)
	if out != "ab14" {
		t.Errorf("out = %q, want ab14", out)
	}
}

func TestStringInterpolation(t *testing.T) {
	out := run(t, `
$name = "world";
print "hello $name\n";
`)
	if out != "hello world\n" {
		t.Errorf("out = %q", out)
	}
}

func TestControlFlow(t *testing.T) {
	out := run(t, `
$n = 0;
$i = 0;
while ($i < 10) {
  if ($i % 2 == 0) {
    $n = $n + $i;
  } else {
    $n = $n - 1;
  }
  $i = $i + 1;
}
print $n;
`)
	if out != "15" {
		t.Errorf("out = %q, want 15 (0+2+4+6+8 - 5)", out)
	}
}

func TestArraysAndForeach(t *testing.T) {
	out := run(t, `
push @a, 3;
push @a, 5;
push @a, 7;
$sum = 0;
foreach $x (@a) {
  $sum = $sum + $x;
}
print $sum . "/" . scalar(@a);
`)
	if out != "15/3" {
		t.Errorf("out = %q", out)
	}
}

func TestHashes(t *testing.T) {
	out := run(t, `
$h{"one"} = 1;
$h{"two"} = 2;
$h{"one"} = $h{"one"} + 10;
$ks = "";
foreach $k (keys %h) {
  $ks = $ks . $k . "=" . $h{$k} . ";";
}
print $ks . exists($h{"one"}) . exists($h{"three"});
`)
	if out != "one=11;two=2;1" {
		t.Errorf("out = %q", out)
	}
}

func TestStringComparisons(t *testing.T) {
	out := run(t, `
if ("abc" eq "abc") {
  print "E";
}
if ("abc" lt "abd") {
  print "L";
}
if (2 <= 2) {
  print "N";
}
`)
	if out != "ELN" {
		t.Errorf("out = %q", out)
	}
}

func TestBuiltins(t *testing.T) {
	out := run(t, `
$s = "Hello World";
print length($s) . "," . uc(substr($s, 0, 5)) . "," . lc(substr($s, 6, 5)) . "," . index($s, "World") . "," . int(7.9);
`)
	if out != "11,HELLO,world,6,7" {
		t.Errorf("out = %q", out)
	}
}

func TestRegexMatching(t *testing.T) {
	cases := []struct {
		s, re string
		want  bool
	}{
		{"hello", "ell", true},
		{"hello", "^ell", false},
		{"hello", "^hel", true},
		{"hello", "o$", true},
		{"hello", "^h.*o$", true},
		{"hello", "z", false},
		{"abc123", "[0-9]+", true},
		{"abcdef", "[0-9]+", false},
		{"aaa", "^a*$", true},
		{"word space", `\w+\s\w+`, true},
		{"x7", `\d`, true},
		{"cat", "^[^c]", false},
	}
	i := NewInterp(nil)
	for _, tc := range cases {
		if got := i.regexMatch(tc.s, tc.re); got != tc.want {
			t.Errorf("match(%q, %q) = %v, want %v", tc.s, tc.re, got, tc.want)
		}
	}
}

func TestRegexInScript(t *testing.T) {
	out := run(t, `
push @words, "apple";
push @words, "banana";
push @words, "cherry";
$n = 0;
foreach $w (@words) {
  if ($w =~ /^[ab]/) {
    $n = $n + 1;
  }
  if ($w !~ /y$/) {
    $n = $n + 10;
  }
}
print $n;
`)
	if out != "22" {
		t.Errorf("out = %q, want 22", out)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"garbage",
		"if (1) {",  // unterminated block
		"}",         // stray close
		"$x = ;",    // empty expr
		"$x = 1 +;", // trailing op
		"push @a;",  // push without value
	}
	for _, src := range bad {
		prog, err := Parse(src)
		if err == nil {
			if i := NewInterp(nil); i.Run(prog) == nil {
				t.Errorf("script %q should fail", src)
			}
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	for _, src := range []string{
		"$x = 1 / 0;",
		"$x = 1 % 0;",
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := NewInterp(nil).Run(prog); !errors.Is(err, ErrScript) {
			t.Errorf("%q err = %v, want ErrScript", src, err)
		}
	}
}

func TestNoAlbertaWorkloads(t *testing.T) {
	// The paper's key fact about perlbench: all but one benchmark gained
	// Alberta workloads; this is the one.
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			t.Errorf("perlbench must not have Alberta workloads, found %s", w.WorkloadName())
		}
	}
	if _, isGen := interface{}(b).(core.Generator); isGen {
		t.Error("perlbench must not implement core.Generator")
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"pp_eval", "regex_match", "hash_ops"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestWordFreqScriptOutputShape(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	pw := w.(Workload)
	prog, err := Parse(pw.Script)
	if err != nil {
		t.Fatal(err)
	}
	i := NewInterp(nil)
	for _, line := range pw.Corpus {
		i.arrays["input"] = append(i.arrays["input"], StrValue(line))
	}
	if err := i.Run(prog); err != nil {
		t.Fatal(err)
	}
	out := i.Output()
	for _, field := range []string{"total=", "long=", "vowelish="} {
		if !strings.Contains(out, field) {
			t.Errorf("output %q missing %s", out, field)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}
