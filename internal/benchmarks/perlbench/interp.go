// Package perlbench reproduces 500.perlbench_r: a stripped-down script
// interpreter. Faithful to the paper, this is the one benchmark with NO
// Alberta workloads: real Perl applications all depend on C-extension
// modules that the stripped-down interpreter cannot load, so only the
// SPEC-style test/train/refrate scripts ship. The interpreter implements a
// Perl-flavored dynamic language: dual string/number scalars, arrays,
// hashes, string operators, control flow, and a literal/star regex matcher.
package perlbench

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/perf"
)

// Value is a Perl-style scalar: it carries a string and converts to a
// number on demand. Values built numerically cache the conversion (hasN),
// so arithmetic chains stop round-tripping strconv; the invariant is that
// n always equals numPrefix(s), making cached and uncached Values
// semantically indistinguishable.
type Value struct {
	s    string
	n    float64
	hasN bool
}

// NumValue builds a numeric scalar.
func NumValue(f float64) Value {
	if f == float64(int64(f)) {
		// The decimal form of int64(f) parses back to exactly f.
		return Value{s: strconv.FormatInt(int64(f), 10), n: f, hasN: true}
	}
	// 'g' may format with an exponent ("1.0000005e+06"), whose numeric
	// prefix ends at 'e' — cache what Num would parse, not f itself.
	s := strconv.FormatFloat(f, 'g', -1, 64)
	return Value{s: s, n: numPrefix(s), hasN: true}
}

// StrValue builds a string scalar.
func StrValue(s string) Value { return Value{s: s} }

// Str returns the string form.
func (v Value) Str() string { return v.s }

// Num converts like Perl: the longest numeric prefix, else 0.
func (v Value) Num() float64 {
	if v.hasN {
		return v.n
	}
	return numPrefix(v.s)
}

// numPrefix parses the longest numeric prefix, else 0.
func numPrefix(raw string) float64 {
	s := strings.TrimSpace(raw)
	end := 0
	seenDigit := false
	for end < len(s) {
		c := s[end]
		if c == '-' || c == '+' {
			if end != 0 {
				break
			}
		} else if c == '.' {
			// allowed once; a second dot ends the number
			if strings.IndexByte(s[:end], '.') >= 0 {
				break
			}
		} else if c < '0' || c > '9' {
			break
		} else {
			seenDigit = true
		}
		end++
	}
	if !seenDigit {
		return 0
	}
	f, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0
	}
	return f
}

// Truthy follows Perl: "" and "0" are false.
func (v Value) Truthy() bool { return v.s != "" && v.s != "0" }

// ErrScript reports a parse or runtime failure.
var ErrScript = errors.New("perlbench: script error")

// Interp runs one script.
type Interp struct {
	scalars map[string]Value
	arrays  map[string][]Value
	hashes  map[string]map[string]Value
	out     strings.Builder
	p       *perf.Profiler
	steps   uint64
	limit   uint64
}

// NewInterp returns a fresh interpreter.
func NewInterp(p *perf.Profiler) *Interp {
	if p != nil {
		p.SetFootprint("pp_eval", 6<<10)
		p.SetFootprint("regex_match", 4<<10)
		p.SetFootprint("hash_ops", 3<<10)
	}
	return &Interp{
		scalars: map[string]Value{},
		arrays:  map[string][]Value{},
		hashes:  map[string]map[string]Value{},
		p:       p,
		limit:   20_000_000,
	}
}

// Output returns everything printed by the script.
func (i *Interp) Output() string { return i.out.String() }

// Steps returns the statement count executed.
func (i *Interp) Steps() uint64 { return i.steps }

// line-based parser: the language is statement-per-line with explicit
// block markers, which keeps the interpreter honest without a full yacc
// grammar. Syntax:
//
//	$x = <expr>;
//	push @a, <expr>;
//	$h{<expr>} = <expr>;
//	print <expr>;
//	if (<expr>) { ... } else { ... }
//	while (<expr>) { ... }
//	foreach $v (@a) { ... }
//	foreach $k (keys %h) { ... }
type stmt struct {
	kind   string // assign, pushArr, hashSet, print, if, while, foreach
	text   string // raw content
	lhs    string
	expr   string
	cond   string
	body   []stmt
	else_  []stmt
	k1, k2 string
}

// Parse compiles a script to a statement tree.
func Parse(src string) ([]stmt, error) {
	lines := strings.Split(src, "\n")
	pos := 0
	return parseBlock(lines, &pos, false)
}

func parseBlock(lines []string, pos *int, inBlock bool) ([]stmt, error) {
	var out []stmt
	for *pos < len(lines) {
		raw := strings.TrimSpace(lines[*pos])
		*pos++
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		if raw == "}" {
			if !inBlock {
				return nil, fmt.Errorf("%w: unexpected '}' at line %d", ErrScript, *pos)
			}
			return out, nil
		}
		if raw == "} else {" {
			if !inBlock {
				return nil, fmt.Errorf("%w: unexpected else at line %d", ErrScript, *pos)
			}
			*pos-- // let the caller see it
			return out, nil
		}
		switch {
		case strings.HasPrefix(raw, "if (") && strings.HasSuffix(raw, ") {"):
			cond := raw[4 : len(raw)-3]
			body, err := parseBlock(lines, pos, true)
			if err != nil {
				return nil, err
			}
			st := stmt{kind: "if", cond: cond, body: body}
			if *pos < len(lines) && strings.TrimSpace(lines[*pos]) == "} else {" {
				*pos++
				els, err := parseBlock(lines, pos, true)
				if err != nil {
					return nil, err
				}
				st.else_ = els
			}
			out = append(out, st)
		case strings.HasPrefix(raw, "while (") && strings.HasSuffix(raw, ") {"):
			cond := raw[7 : len(raw)-3]
			body, err := parseBlock(lines, pos, true)
			if err != nil {
				return nil, err
			}
			out = append(out, stmt{kind: "while", cond: cond, body: body})
		case strings.HasPrefix(raw, "foreach ") && strings.HasSuffix(raw, ") {"):
			// foreach $v (@a) {   |   foreach $k (keys %h) {
			inner := raw[len("foreach ") : len(raw)-3]
			parts := strings.SplitN(inner, " (", 2)
			if len(parts) != 2 || !strings.HasPrefix(parts[0], "$") {
				return nil, fmt.Errorf("%w: bad foreach %q", ErrScript, raw)
			}
			body, err := parseBlock(lines, pos, true)
			if err != nil {
				return nil, err
			}
			out = append(out, stmt{kind: "foreach", k1: parts[0][1:], k2: parts[1], body: body})
		case strings.HasSuffix(raw, ";"):
			body := raw[:len(raw)-1]
			switch {
			case strings.HasPrefix(body, "print "):
				out = append(out, stmt{kind: "print", expr: body[6:]})
			case strings.HasPrefix(body, "push @"):
				rest := body[6:]
				comma := strings.Index(rest, ",")
				if comma < 0 {
					return nil, fmt.Errorf("%w: bad push %q", ErrScript, raw)
				}
				out = append(out, stmt{kind: "pushArr", lhs: strings.TrimSpace(rest[:comma]), expr: strings.TrimSpace(rest[comma+1:])})
			case strings.HasPrefix(body, "$"):
				eq := findAssign(body)
				if eq < 0 {
					return nil, fmt.Errorf("%w: expected assignment in %q", ErrScript, raw)
				}
				lhs := strings.TrimSpace(body[:eq])
				rhs := strings.TrimSpace(body[eq+1:])
				if strings.Contains(lhs, "{") {
					out = append(out, stmt{kind: "hashSet", lhs: lhs, expr: rhs})
				} else {
					out = append(out, stmt{kind: "assign", lhs: lhs[1:], expr: rhs})
				}
			default:
				return nil, fmt.Errorf("%w: cannot parse %q", ErrScript, raw)
			}
		default:
			return nil, fmt.Errorf("%w: cannot parse %q", ErrScript, raw)
		}
	}
	if inBlock {
		return nil, fmt.Errorf("%w: unterminated block", ErrScript)
	}
	return out, nil
}

// findAssign locates the top-level '=' (not ==, !=, <=, >=, =~).
func findAssign(s string) int {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '{':
			depth++
		case ')', '}':
			depth--
		case '=':
			if depth == 0 {
				prev := byte(0)
				if i > 0 {
					prev = s[i-1]
				}
				next := byte(0)
				if i+1 < len(s) {
					next = s[i+1]
				}
				if prev != '=' && prev != '!' && prev != '<' && prev != '>' &&
					next != '=' && next != '~' {
					return i
				}
			}
		}
	}
	return -1
}

// Run executes a parsed script.
func (i *Interp) Run(prog []stmt) error {
	return i.exec(prog)
}

func (i *Interp) exec(prog []stmt) error {
	for _, st := range prog {
		i.steps++
		if i.steps > i.limit {
			return fmt.Errorf("%w: step limit exceeded", ErrScript)
		}
		if i.p != nil {
			i.p.Enter("pp_eval")
		}
		err := i.execOne(st)
		if i.p != nil {
			i.p.Ops(8)
			i.p.Leave()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (i *Interp) execOne(st stmt) error {
	switch st.kind {
	case "assign":
		v, err := i.eval(st.expr)
		if err != nil {
			return err
		}
		i.scalars[st.lhs] = v
	case "hashSet":
		// $h{key} = expr
		open := strings.IndexByte(st.lhs, '{')
		closeB := strings.LastIndexByte(st.lhs, '}')
		if open < 0 || closeB < open {
			return fmt.Errorf("%w: bad hash lvalue %q", ErrScript, st.lhs)
		}
		name := st.lhs[1:open]
		key, err := i.eval(st.lhs[open+1 : closeB])
		if err != nil {
			return err
		}
		val, err := i.eval(st.expr)
		if err != nil {
			return err
		}
		if i.hashes[name] == nil {
			i.hashes[name] = map[string]Value{}
		}
		if i.p != nil {
			i.p.Enter("hash_ops")
			i.p.Ops(6)
			i.p.Store(0x90_0000_0000 + hashAddr(name, key.Str()))
			i.p.Leave()
		}
		i.hashes[name][key.Str()] = val
	case "pushArr":
		v, err := i.eval(st.expr)
		if err != nil {
			return err
		}
		i.arrays[st.lhs] = append(i.arrays[st.lhs], v)
	case "print":
		v, err := i.eval(st.expr)
		if err != nil {
			return err
		}
		i.out.WriteString(v.Str())
	case "if":
		c, err := i.eval(st.cond)
		if err != nil {
			return err
		}
		if i.p != nil {
			i.p.Branch(80, c.Truthy())
		}
		if c.Truthy() {
			return i.exec(st.body)
		}
		return i.exec(st.else_)
	case "while":
		for iter := 0; ; iter++ {
			c, err := i.eval(st.cond)
			if err != nil {
				return err
			}
			if i.p != nil {
				i.p.Branch(81, c.Truthy())
			}
			if !c.Truthy() {
				return nil
			}
			if err := i.exec(st.body); err != nil {
				return err
			}
			if uint64(iter) > i.limit {
				return fmt.Errorf("%w: runaway while", ErrScript)
			}
		}
	case "foreach":
		src := st.k2
		var items []Value
		if rest, ok := strings.CutPrefix(src, "keys %"); ok {
			h := i.hashes[rest]
			keys := make([]string, 0, len(h))
			for k := range h {
				keys = append(keys, k)
			}
			sort.Strings(keys) // deterministic iteration
			for _, k := range keys {
				items = append(items, StrValue(k))
			}
		} else if rest, ok := strings.CutPrefix(src, "@"); ok {
			items = i.arrays[rest]
		} else {
			return fmt.Errorf("%w: bad foreach source %q", ErrScript, src)
		}
		for _, it := range items {
			i.scalars[st.k1] = it
			if err := i.exec(st.body); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown statement %q", ErrScript, st.kind)
	}
	return nil
}

func hashAddr(name, key string) uint64 {
	return hashAddrSeeded(fnvSeed(name), key)
}
