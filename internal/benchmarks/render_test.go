package benchmarks

import (
	"strings"
	"testing"

	"repro/internal/benchmarks/deepsjeng"
	"repro/internal/benchmarks/exchange2"
	"repro/internal/benchmarks/gcc/cc"
	"repro/internal/benchmarks/leela"
	"repro/internal/benchmarks/omnetpp"
	"repro/internal/benchmarks/xalan"
	"repro/internal/core"
)

// TestRenderedWorkloadsRoundTrip renders every FileRenderer benchmark's
// refrate workload to its natural on-disk format and parses the files back
// with the corresponding reader — the property that makes the rendered
// files genuine distributable workloads, not just dumps.
func TestRenderedWorkloadsRoundTrip(t *testing.T) {
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	rendered := 0
	for _, b := range suite.Benchmarks() {
		renderer, ok := b.(core.FileRenderer)
		if !ok {
			continue
		}
		rendered++
		w, err := core.FindWorkload(b, "refrate")
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		files, err := renderer.RenderWorkload(w)
		if err != nil {
			t.Fatalf("%s: render: %v", b.Name(), err)
		}
		if len(files) == 0 {
			t.Errorf("%s: rendered no files", b.Name())
		}
		for name, content := range files {
			if len(content) == 0 {
				t.Errorf("%s: empty file %s", b.Name(), name)
			}
			switch {
			case strings.HasSuffix(name, ".ned"):
				if _, err := omnetpp.ParseNED(string(content)); err != nil {
					t.Errorf("%s: %s does not parse: %v", b.Name(), name, err)
				}
			case strings.HasSuffix(name, ".sgf"):
				if _, err := leela.ParseSGF(string(content)); err != nil {
					t.Errorf("%s: %s does not parse: %v", b.Name(), name, err)
				}
			case strings.HasSuffix(name, ".epd"):
				for _, line := range strings.Split(strings.TrimSpace(string(content)), "\n") {
					fen := strings.SplitN(line, ";", 2)[0]
					if _, err := deepsjeng.ParseFEN(strings.TrimSpace(fen)); err != nil {
						t.Errorf("%s: EPD line %q: %v", b.Name(), line, err)
					}
				}
			case strings.HasSuffix(name, ".xml"):
				if _, err := xalan.ParseXML(string(content), nil); err != nil {
					t.Errorf("%s: %s does not parse: %v", b.Name(), name, err)
				}
			case strings.HasSuffix(name, ".xsl"):
				if _, err := xalan.CompileStylesheet(string(content)); err != nil {
					t.Errorf("%s: %s does not compile: %v", b.Name(), name, err)
				}
			case strings.HasSuffix(name, ".c"):
				if _, err := cc.CompileSource(string(content), cc.O1, nil, nil); err != nil {
					t.Errorf("%s: %s does not compile: %v", b.Name(), name, err)
				}
			case name == "puzzles.txt":
				for _, line := range strings.Split(strings.TrimSpace(string(content)), "\n") {
					if _, err := exchange2.ParsePuzzle(line); err != nil {
						t.Errorf("%s: puzzle %q: %v", b.Name(), line, err)
					}
				}
			}
		}
		// Renderers must reject foreign workloads.
		if _, err := renderer.RenderWorkload(core.Meta{Name: "x"}); err == nil {
			t.Errorf("%s: foreign workload should be rejected", b.Name())
		}
	}
	if rendered < 7 {
		t.Errorf("only %d benchmarks implement FileRenderer, want ≥ 7", rendered)
	}
}
