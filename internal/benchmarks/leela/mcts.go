package leela

import (
	"math"
	"math/rand"

	"repro/internal/perf"
)

// Synthetic address bases for the modeled hierarchy.
const (
	treeBase  = 0x30_0000_0000
	boardAddr = 0x31_0000_0000
)

// mctsNode is one UCT tree node.
type mctsNode struct {
	move     int
	visits   int32
	wins     int32 // from the perspective of the player who made move
	children []*mctsNode
	expanded bool
}

// Engine plays moves with fixed-simulation MCTS.
type Engine struct {
	rng        *rand.Rand
	Sims       int // simulations per move (fixed, as in the benchmark)
	maxPlayout int
	p          *perf.Profiler
	// Playouts counts completed playouts (work metric).
	Playouts uint64
	// working is the engine-owned simulation board, reset in place from the
	// root position each simulate call instead of cloning per simulation.
	working *Board
	// moveBuf backs playout's legal-move lists across moves and playouts.
	moveBuf []int
	// pathBuf backs simulate's selection path.
	pathBuf []*mctsNode
}

// NewEngine returns an engine with the given per-move simulation budget.
func NewEngine(sims int, seed int64, p *perf.Profiler) *Engine {
	e := &Engine{Sims: sims}
	e.Reset(seed, p)
	return e
}

// Reset returns the engine to its just-constructed state — fresh rng from
// seed, zero playout count — while keeping its simulation scratch (working
// board, move and path buffers), whose contents never influence results. A
// reset engine plays identically to a fresh NewEngine with the same seed.
func (e *Engine) Reset(seed int64, p *perf.Profiler) {
	e.rng = rand.New(rand.NewSource(seed))
	e.p = p
	e.Playouts = 0
	if p != nil {
		p.SetFootprint("uct_select", 3<<10)
		p.SetFootprint("playout", 5<<10)
		p.SetFootprint("score_game", 2<<10)
		p.SetFootprint("play_move", 3<<10)
	}
}

// legalMoves lists non-eye-filling legal points (plus pass when none). One
// scanGroups pass amortizes the group flood fills over the whole scan; the
// per-point legalScanned verdicts — which feed the profiler's branch event
// stream — are bit-identical to Legal's (see legalScanned).
func (e *Engine) legalMoves(b *Board, c Color, buf []int) []int {
	buf = buf[:0]
	b.scanGroups()
	for p := 0; p < b.Size*b.Size; p++ {
		if b.points[p] != Vacant || b.isEyeLike(p, c) {
			continue
		}
		legal := b.legalScanned(p, c)
		if e.p != nil {
			// Fused ops+branch, then the load: the three event channels are
			// independent, so hoisting the branch past the load is
			// Report-invariant (DESIGN.md §10).
			e.p.OpsBranch(3, 200+uint64(p), legal)
			e.p.Load(boardAddr + uint64(p)*2)
		}
		if legal {
			buf = append(buf, p)
		}
	}
	return buf
}

// playout plays random moves to the end and returns the winner.
func (e *Engine) playout(b *Board, toMove Color) Color {
	if e.p != nil {
		e.p.Enter("playout")
		defer e.p.Leave()
	}
	maxMoves := 3 * b.Size * b.Size
	passes := 0
	for mv := 0; mv < maxMoves && passes < 2; mv++ {
		moves := e.legalMoves(b, toMove, e.moveBuf)
		e.moveBuf = moves
		if len(moves) == 0 {
			passes++
			_, _ = b.Play(PassMove, toMove)
		} else {
			passes = 0
			p := moves[e.rng.Intn(len(moves))]
			if _, err := b.Play(p, toMove); err != nil {
				// Race with ko bookkeeping: treat as pass.
				passes++
			}
			if e.p != nil {
				e.p.Ops(8)
				e.p.Store(boardAddr + uint64(p)*2)
			}
		}
		toMove = toMove.Opponent()
	}
	e.Playouts++
	if e.p != nil {
		e.p.Enter("score_game")
	}
	black, white := b.Score()
	if e.p != nil {
		e.p.Ops(uint64(b.Size * b.Size))
		e.p.Leave()
	}
	// 7.5 komi favors white on ties.
	if float64(black) > float64(white)+7.5 {
		return Black
	}
	return White
}

// uctChild selects the best child by the UCT formula.
func (e *Engine) uctChild(n *mctsNode) *mctsNode {
	if e.p != nil {
		e.p.Enter("uct_select")
		defer e.p.Leave()
	}
	var best *mctsNode
	bestVal := math.Inf(-1)
	logN := math.Log(float64(n.visits + 1))
	for i, c := range n.children {
		var val float64
		if c.visits == 0 {
			val = 10 + e.rng.Float64()
		} else {
			val = float64(c.wins)/float64(c.visits) +
				1.2*math.Sqrt(logN/float64(c.visits))
		}
		better := val > bestVal
		if e.p != nil {
			e.p.OpsBranch(6, 21, better)
			e.p.LongOps(1) // sqrt/log
			e.p.Load(treeBase + uint64(i)*32)
		}
		if better {
			bestVal = val
			best = c
		}
	}
	return best
}

// simulate runs one MCTS iteration from the root position.
func (e *Engine) simulate(root *mctsNode, b *Board, toMove Color) {
	// Reuse the engine's working board: CopyFrom resets it to the root
	// position in place, so simulations allocate no board state.
	if e.working == nil || e.working.Size != b.Size {
		e.working = b.Clone()
	} else {
		e.working.CopyFrom(b)
	}
	working := e.working
	path := append(e.pathBuf[:0], root)
	node := root
	color := toMove
	// Selection + expansion.
	for node.expanded && len(node.children) > 0 {
		node = e.uctChild(node)
		path = append(path, node)
		if node.move != PassMove {
			_, _ = working.Play(node.move, color)
		}
		color = color.Opponent()
	}
	if !node.expanded {
		moves := e.legalMoves(working, color, e.moveBuf)
		e.moveBuf = moves
		node.expanded = true
		for _, m := range moves {
			node.children = append(node.children, &mctsNode{move: m})
		}
		if len(moves) == 0 {
			node.children = append(node.children, &mctsNode{move: PassMove})
		}
		if e.p != nil {
			e.p.Ops(uint64(len(node.children)) * 4)
			e.p.Store(treeBase + uint64(len(path))*32)
		}
	}
	winner := e.playout(working, color)
	// Backpropagate: a node's wins are from the mover's perspective.
	moverColor := toMove
	for _, n := range path {
		n.visits++
		// n.move was played by the opponent of the color to move at n.
		if winner == moverColor.Opponent() {
			n.wins++
		}
		moverColor = moverColor.Opponent()
	}
	e.pathBuf = path[:0]
}

// BestMove runs the fixed simulation budget and returns the most-visited
// move for toMove.
func (e *Engine) BestMove(b *Board, toMove Color) int {
	root := &mctsNode{move: PassMove}
	for i := 0; i < e.Sims; i++ {
		e.simulate(root, b, toMove)
	}
	best := PassMove
	bestVisits := int32(-1)
	for _, c := range root.children {
		if c.visits > bestVisits {
			bestVisits = c.visits
			best = c.move
		}
	}
	return best
}

// PlayToEnd continues the game from the given position, playing both sides
// with the engine until two consecutive passes (or a move cap), and returns
// the final score.
func (e *Engine) PlayToEnd(b *Board, toMove Color) (black, white int, moves int) {
	passes := 0
	cap := 2 * b.Size * b.Size
	for moves = 0; moves < cap && passes < 2; moves++ {
		m := e.BestMove(b, toMove)
		if e.p != nil {
			e.p.Enter("play_move")
		}
		if m == PassMove {
			passes++
		} else {
			passes = 0
		}
		_, _ = b.Play(m, toMove)
		if e.p != nil {
			e.p.Ops(16)
			e.p.Leave()
		}
		toMove = toMove.Opponent()
	}
	black, white = b.Score()
	return black, white, moves
}
