package leela

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestBoardBasics(t *testing.T) {
	b, err := NewBoard(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Play(40, Black); err != nil {
		t.Fatal(err)
	}
	if b.At(40) != Black {
		t.Error("stone not placed")
	}
	if _, err := b.Play(40, White); !errors.Is(err, ErrIllegalMove) {
		t.Error("occupied point should be illegal")
	}
	if _, err := NewBoard(2); err == nil {
		t.Error("size 2 should be rejected")
	}
}

func TestCaptureSingleStone(t *testing.T) {
	b, _ := NewBoard(5)
	// White stone at center (12), black surrounds it.
	mustPlay(t, b, 12, White)
	mustPlay(t, b, 7, Black)
	mustPlay(t, b, 11, Black)
	mustPlay(t, b, 13, Black)
	caps, err := b.Play(17, Black)
	if err != nil {
		t.Fatal(err)
	}
	if caps != 1 {
		t.Errorf("captured %d, want 1", caps)
	}
	if b.At(12) != Vacant {
		t.Error("captured stone not removed")
	}
	if b.Captures(Black) != 1 {
		t.Errorf("black captures = %d", b.Captures(Black))
	}
}

func TestCaptureGroup(t *testing.T) {
	b, _ := NewBoard(5)
	// Two white stones at 11,12 surrounded by black.
	mustPlay(t, b, 11, White)
	mustPlay(t, b, 12, White)
	for _, p := range []int{6, 7, 10, 16, 17} {
		mustPlay(t, b, p, Black)
	}
	caps, err := b.Play(13, Black)
	if err != nil {
		t.Fatal(err)
	}
	if caps != 2 {
		t.Errorf("captured %d, want 2", caps)
	}
}

func TestSuicideForbidden(t *testing.T) {
	b, _ := NewBoard(5)
	// Black surrounds point 12; white playing there is suicide.
	for _, p := range []int{7, 11, 13, 17} {
		mustPlay(t, b, p, Black)
	}
	if b.Legal(12, White) {
		t.Error("suicide should be illegal")
	}
	// But capturing into that point is legal for black.
	if !b.Legal(12, Black) {
		t.Error("filling own surrounded point is legal (not suicide)")
	}
}

func TestKoForbidsImmediateRecapture(t *testing.T) {
	b, _ := NewBoard(5)
	// Build:      . B W .
	//             B W . W      with black to capture at (1,2)=7...
	// Points: (0,1)=1 B, (0,2)=2 W, (1,0)=5 B, (1,1)=6 W, (1,3)=8 W, (2,1)=11 B?
	// Simpler canonical ko:
	//  row0:  . B W .
	//  row1:  B W . W
	//  row2:  . B W .
	mustPlay(t, b, 1, Black)
	mustPlay(t, b, 2, White)
	mustPlay(t, b, 5, Black)
	mustPlay(t, b, 6, White)
	mustPlay(t, b, 8, White)
	mustPlay(t, b, 11, Black)
	mustPlay(t, b, 12, White)
	// Black plays at 7, capturing the single white stone at 6.
	caps, err := b.Play(7, Black)
	if err != nil {
		t.Fatal(err)
	}
	if caps != 1 {
		t.Fatalf("captured %d, want 1 (the ko stone)", caps)
	}
	// White may not immediately recapture at 6.
	if b.Legal(6, White) {
		t.Error("immediate ko recapture should be illegal")
	}
	// After white plays elsewhere, the ko lifts.
	mustPlay(t, b, 20, White)
	if !b.Legal(6, White) {
		t.Error("ko should lift after a move elsewhere")
	}
}

func TestScoreTerritory(t *testing.T) {
	b, _ := NewBoard(5)
	// Black wall on column 2 splits the board; black plays col 3 too.
	for r := 0; r < 5; r++ {
		mustPlay(t, b, r*5+2, Black)
	}
	black, white := b.Score()
	// Black: 5 stones + all 20 empty points (white has none adjacent).
	if black != 25 || white != 0 {
		t.Errorf("score = %d/%d, want 25/0", black, white)
	}
}

func TestScoreNeutralRegion(t *testing.T) {
	b, _ := NewBoard(5)
	mustPlay(t, b, 0, Black)
	mustPlay(t, b, 24, White)
	black, white := b.Score()
	// The shared empty region touches both: counts for neither.
	if black != 1 || white != 1 {
		t.Errorf("score = %d/%d, want 1/1", black, white)
	}
}

func TestSGFRoundTrip(t *testing.T) {
	g := &Game{Size: 9, Moves: []int{40, 41, PassMove, 0}}
	s := g.FormatSGF()
	parsed, err := ParseSGF(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Size != 9 || len(parsed.Moves) != 4 {
		t.Fatalf("parsed %+v", parsed)
	}
	for i := range g.Moves {
		if parsed.Moves[i] != g.Moves[i] {
			t.Errorf("move %d: %d vs %d", i, parsed.Moves[i], g.Moves[i])
		}
	}
}

func TestParseSGFErrors(t *testing.T) {
	bad := []string{
		"",
		"(;B[aa])",       // move before SZ
		"(;SZ[9];W[aa])", // white moves first
		"(;SZ[9];B[zz])", // off-board
		"not an sgf",
	}
	for _, s := range bad {
		if _, err := ParseSGF(s); err == nil {
			t.Errorf("ParseSGF(%q) should fail", s)
		}
	}
}

func TestSelfPlayGameAndCull(t *testing.T) {
	g, err := SelfPlayGame(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Moves) < 10 {
		t.Fatalf("self-play game too short: %d moves", len(g.Moves))
	}
	culled := CullMoves(g, 5)
	if len(culled.Moves) != len(g.Moves)-5 {
		t.Errorf("cull removed %d, want 5", len(g.Moves)-len(culled.Moves))
	}
	// Culled prefix must replay cleanly.
	if _, _, err := culled.Replay(); err != nil {
		t.Errorf("culled game does not replay: %v", err)
	}
	over := CullMoves(g, len(g.Moves)+10)
	if len(over.Moves) != 0 {
		t.Error("over-culling should leave an empty game")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		b, _ := NewBoard(7)
		e := NewEngine(8, 42, nil)
		m := e.BestMove(b, Black)
		return m, e.Playouts
	}
	m1, p1 := run()
	m2, p2 := run()
	if m1 != m2 || p1 != p2 {
		t.Errorf("nondeterministic engine: (%d,%d) vs (%d,%d)", m1, p1, m2, p2)
	}
	if p1 == 0 {
		t.Error("no playouts recorded")
	}
}

func TestPlayToEndTerminates(t *testing.T) {
	b, _ := NewBoard(7)
	e := NewEngine(4, 7, nil)
	black, white, moves := e.PlayToEnd(b, Black)
	if moves == 0 {
		t.Error("no moves played")
	}
	if black+white == 0 {
		t.Error("empty final score")
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
			lw := w.(Workload)
			if len(lw.SGFs) != 6 {
				t.Errorf("%s has %d games, want 6 (paper: exactly six positions)", lw.Name, len(lw.SGFs))
			}
		}
	}
	if alberta != 9 {
		t.Errorf("alberta workloads = %d, want 9", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	if rep.Coverage["playout"] == 0 {
		t.Errorf("playout missing from coverage: %v", rep.Coverage)
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func mustPlay(t *testing.T, b *Board, p int, c Color) {
	t.Helper()
	if _, err := b.Play(p, c); err != nil {
		t.Fatalf("play %d %v: %v", p, c, err)
	}
}
