package leela

import (
	"fmt"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: one SGF file per incomplete
// game plus the control file naming the simulation budget.
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	lw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	out := map[string][]byte{
		"control.txt": []byte(fmt.Sprintf("simulations %d\nseed %d\n", lw.Sims, lw.Seed)),
	}
	for i, sgf := range lw.SGFs {
		out[fmt.Sprintf("game%02d.sgf", i+1)] = []byte(sgf)
	}
	return out, nil
}
