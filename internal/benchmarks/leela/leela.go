package leela

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/perf"
)

// Game is a parsed SGF-lite game record.
type Game struct {
	Size  int
	Moves []int // board points; PassMove for passes
	// first player is always Black, alternating thereafter.
}

// FormatSGF renders the game in the SGF subset the package reads.
func (g *Game) FormatSGF() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(;SZ[%d]", g.Size)
	color := Black
	for _, m := range g.Moves {
		tag := "B"
		if color == White {
			tag = "W"
		}
		fmt.Fprintf(&sb, ";%s[%s]", tag, MoveToSGF(m, g.Size))
		color = color.Opponent()
	}
	sb.WriteString(")")
	return sb.String()
}

// ParseSGF parses the SGF subset produced by FormatSGF: a single game tree
// with an SZ property and alternating B/W moves.
func ParseSGF(s string) (*Game, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(;") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("leela: not an SGF game: %q", truncate(s, 32))
	}
	body := s[2 : len(s)-1]
	g := &Game{}
	expect := Black
	for _, node := range strings.Split(body, ";") {
		node = strings.TrimSpace(node)
		if node == "" {
			continue
		}
		open := strings.IndexByte(node, '[')
		close := strings.IndexByte(node, ']')
		if open < 0 || close < open {
			return nil, fmt.Errorf("leela: bad SGF node %q", node)
		}
		prop := node[:open]
		val := node[open+1 : close]
		switch prop {
		case "SZ":
			if _, err := fmt.Sscanf(val, "%d", &g.Size); err != nil {
				return nil, fmt.Errorf("leela: bad SZ %q", val)
			}
		case "B", "W":
			if g.Size == 0 {
				return nil, fmt.Errorf("leela: move before SZ")
			}
			want := "B"
			if expect == White {
				want = "W"
			}
			if prop != want {
				return nil, fmt.Errorf("leela: expected %s move, got %s", want, prop)
			}
			m, err := SGFToMove(val, g.Size)
			if err != nil {
				return nil, err
			}
			g.Moves = append(g.Moves, m)
			expect = expect.Opponent()
		default:
			// Other properties are ignored.
		}
	}
	if g.Size == 0 {
		return nil, fmt.Errorf("leela: SGF without SZ")
	}
	return g, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Replay applies the game's moves to a fresh board and returns it with the
// color to move next.
func (g *Game) Replay() (*Board, Color, error) {
	b, err := NewBoard(g.Size)
	if err != nil {
		return nil, Vacant, err
	}
	color := Black
	for i, m := range g.Moves {
		if _, err := b.Play(m, color); err != nil {
			return nil, Vacant, fmt.Errorf("leela: move %d: %w", i, err)
		}
		color = color.Opponent()
	}
	return b, color, nil
}

// CullMoves removes n moves from the end of the game so that it is
// incomplete — the Alberta script's transformation of archive games.
func CullMoves(g *Game, n int) *Game {
	keep := len(g.Moves) - n
	if keep < 0 {
		keep = 0
	}
	return &Game{Size: g.Size, Moves: append([]int(nil), g.Moves[:keep]...)}
}

// SelfPlayGame generates a complete random-legal game record (the stand-in
// for an NNGS archive game).
func SelfPlayGame(size int, seed int64) (*Game, error) {
	b, err := NewBoard(size)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Game{Size: size}
	color := Black
	passes := 0
	e := &Engine{rng: rng}
	var buf []int
	for len(g.Moves) < 3*size*size && passes < 2 {
		moves := e.legalMoves(b, color, buf)
		buf = moves
		var m int
		if len(moves) == 0 {
			m = PassMove
			passes++
		} else {
			m = moves[rng.Intn(len(moves))]
			passes = 0
		}
		if _, err := b.Play(m, color); err != nil {
			m = PassMove
			passes++
			_, _ = b.Play(m, color)
		}
		g.Moves = append(g.Moves, m)
		color = color.Opponent()
	}
	return g, nil
}

// Workload is one 541.leela_r input: incomplete games plus the fixed
// simulation budget per move.
type Workload struct {
	core.Meta
	SGFs []string
	Sims int
	Seed int64
}

// Benchmark is the 541.leela_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "541.leela_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "AI: Go game playing" }

// buildWorkload assembles games positions with the given board sizes and
// culling depths (paper: six positions per workload; sizes and cull counts
// vary between workloads).
func buildWorkload(name string, kind core.Kind, seed int64, sizes []int, cull, sims, positions int) (core.Workload, error) {
	w := Workload{Meta: core.Meta{Name: name, Kind: kind}, Sims: sims, Seed: seed}
	for i := 0; i < positions; i++ {
		size := sizes[i%len(sizes)]
		g, err := SelfPlayGame(size, seed*131+int64(i))
		if err != nil {
			return nil, err
		}
		culled := CullMoves(g, cull+i%3)
		w.SGFs = append(w.SGFs, culled.FormatSGF())
	}
	return w, nil
}

// Workloads returns SPEC-style inputs plus nine Alberta workloads of six
// positions each (board sizes and culled-move counts vary, as in the
// paper; sizes are scaled down from 9/13/19 to 7/9/11 for wall-time).
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	var ws []core.Workload
	add := func(w core.Workload, err error) error {
		if err != nil {
			return err
		}
		ws = append(ws, w)
		return nil
	}
	if err := add(buildWorkload("test", core.KindTest, 1, []int{7}, 20, 8, 1)); err != nil {
		return nil, err
	}
	if err := add(buildWorkload("train", core.KindTrain, 2, []int{7, 9}, 28, 16, 2)); err != nil {
		return nil, err
	}
	if err := add(buildWorkload("refrate", core.KindRefrate, 3, []int{9, 9, 11}, 36, 24, 3)); err != nil {
		return nil, err
	}
	sizesByWorkload := [][]int{
		{7}, {9}, {11}, {7, 9}, {9, 11}, {7, 11}, {7, 9, 11}, {9}, {11},
	}
	for i := 0; i < 9; i++ {
		err := add(buildWorkload(
			fmt.Sprintf("alberta.%d", i+1), core.KindAlberta,
			50+int64(i), sizesByWorkload[i], 18+4*i, 12+2*(i%4), 6))
		if err != nil {
			return nil, err
		}
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("leela: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		w, err := buildWorkload(core.GeneratedName(seed, i), core.KindAlberta,
			seed+int64(i), []int{7, 9}, 20+i%10, 12, 6)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Run implements core.Benchmark: play each incomplete game to the end. It
// is exactly Prepare followed by Execute, so prepared and cold runs share
// one code path.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds each game's replayed starting position (immutable after
// Prepare) plus per-game scratch: a working board the engine plays on and
// the engine itself, whose simulation buffers are recycled across
// repetitions.
type prepared struct {
	b      *Benchmark
	lw     Workload
	boards []*Board // replayed positions; immutable
	toMove []Color
	// scratch
	play    []*Board
	engines []*Engine
}

// Prepare implements core.Preparer: parse and replay every SGF once,
// uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	lw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	pw := &prepared{b: b, lw: lw,
		play: make([]*Board, len(lw.SGFs)), engines: make([]*Engine, len(lw.SGFs))}
	for i, sgf := range lw.SGFs {
		g, err := ParseSGF(sgf)
		if err != nil {
			return nil, fmt.Errorf("leela: %s game %d: %w", lw.Name, i, err)
		}
		board, toMove, err := g.Replay()
		if err != nil {
			return nil, fmt.Errorf("leela: %s game %d: %w", lw.Name, i, err)
		}
		pw.boards = append(pw.boards, board)
		pw.toMove = append(pw.toMove, toMove)
	}
	return pw, nil
}

// Execute implements core.PreparedWorkload: play every prepared game to the
// end on a recycled working board with a recycled engine.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	lw := pw.lw
	sum := core.NewChecksum()
	for i, board := range pw.boards {
		if pw.play[i] == nil {
			pw.play[i] = board.Clone()
		} else {
			pw.play[i].CopyFrom(board)
		}
		seed := lw.Seed*1009 + int64(i)
		if pw.engines[i] == nil {
			pw.engines[i] = NewEngine(lw.Sims, seed, p)
		} else {
			pw.engines[i].Reset(seed, p)
		}
		engine := pw.engines[i]
		black, white, moves := engine.PlayToEnd(pw.play[i], pw.toMove[i])
		sum = sum.AddUint64(uint64(black)).
			AddUint64(uint64(white)).
			AddUint64(uint64(moves)).
			AddUint64(engine.Playouts)
	}
	return core.Result{
		Benchmark: pw.b.Name(),
		Workload:  lw.Name,
		Kind:      lw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
