package leela

import (
	"math/rand"
	"testing"
)

// TestLegalScannedMatchesLegal pins the scan-cached legality test to the
// flood-fill reference: over random game positions, legalScanned under a
// fresh scanGroups cache must agree with Legal at every vacant point for
// both colors. The MCTS move scan feeds these verdicts straight into the
// profiler's branch event stream, so any divergence would change Reports.
func TestLegalScannedMatchesLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, size := range []int{5, 9, 13} {
		for trial := 0; trial < 40; trial++ {
			b, err := NewBoard(size)
			if err != nil {
				t.Fatal(err)
			}
			c := Black
			// Play a random game, checking every position along the way.
			for mv := 0; mv < 3*size*size; mv++ {
				b.scanGroups()
				for p := 0; p < size*size; p++ {
					if b.At(p) != Vacant {
						continue
					}
					for _, col := range []Color{Black, White} {
						if got, want := b.legalScanned(p, col), b.Legal(p, col); got != want {
							t.Fatalf("size %d trial %d move %d: legalScanned(%d, %s) = %v, Legal = %v",
								size, trial, mv, p, col, got, want)
						}
					}
				}
				// Advance with a random legal move (or pass).
				var legal []int
				for p := 0; p < size*size; p++ {
					if b.At(p) == Vacant && b.Legal(p, c) {
						legal = append(legal, p)
					}
				}
				if len(legal) == 0 {
					break
				}
				if _, err := b.Play(legal[rng.Intn(len(legal))], c); err != nil {
					t.Fatal(err)
				}
				c = c.Opponent()
			}
		}
	}
}

// TestCopyFromMatchesClone pins the in-place board reset: after CopyFrom,
// the destination must behave identically to a fresh Clone of the source.
func TestCopyFromMatchesClone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src, err := NewBoard(9)
	if err != nil {
		t.Fatal(err)
	}
	dst := src.Clone()
	c := Black
	for mv := 0; mv < 200; mv++ {
		// Mutate dst arbitrarily, then reset it from src and compare
		// observable state against a fresh clone.
		for k := 0; k < 5; k++ {
			p := rng.Intn(81)
			if dst.At(p) == Vacant && dst.Legal(p, c) {
				_, _ = dst.Play(p, c)
			}
		}
		dst.CopyFrom(src)
		ref := src.Clone()
		for p := 0; p < 81; p++ {
			if dst.At(p) != ref.At(p) {
				t.Fatalf("move %d: point %d differs after CopyFrom", mv, p)
			}
			for _, col := range []Color{Black, White} {
				if dst.At(p) == Vacant && dst.Legal(p, col) != ref.Legal(p, col) {
					t.Fatalf("move %d: Legal(%d, %s) differs after CopyFrom", mv, p, col)
				}
			}
		}
		// Advance the source game.
		var legal []int
		for p := 0; p < 81; p++ {
			if src.At(p) == Vacant && src.Legal(p, c) {
				legal = append(legal, p)
			}
		}
		if len(legal) == 0 {
			break
		}
		if _, err := src.Play(legal[rng.Intn(len(legal))], c); err != nil {
			t.Fatal(err)
		}
		c = c.Opponent()
	}
}

// TestParseSGFNeverPanics feeds random SGF-shaped noise to the parser.
func TestParseSGFNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fragments := []string{"(;", ")", ";B[", ";W[", "]", "SZ[9", "SZ[", "aa", "zz", "[", ";"}
	for trial := 0; trial < 3000; trial++ {
		src := ""
		for k := 0; k < rng.Intn(10); k++ {
			src += fragments[rng.Intn(len(fragments))]
		}
		if g, err := ParseSGF(src); err == nil {
			_, _, _ = g.Replay() // replay of parsed games must not panic
		}
	}
}
