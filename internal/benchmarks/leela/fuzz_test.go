package leela

import (
	"math/rand"
	"testing"
)

// TestParseSGFNeverPanics feeds random SGF-shaped noise to the parser.
func TestParseSGFNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	fragments := []string{"(;", ")", ";B[", ";W[", "]", "SZ[9", "SZ[", "aa", "zz", "[", ";"}
	for trial := 0; trial < 3000; trial++ {
		src := ""
		for k := 0; k < rng.Intn(10); k++ {
			src += fragments[rng.Intn(len(fragments))]
		}
		if g, err := ParseSGF(src); err == nil {
			_, _, _ = g.Replay() // replay of parsed games must not panic
		}
	}
}
