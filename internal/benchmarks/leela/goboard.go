// Package leela reproduces 541.leela_r: a Go-playing engine that takes an
// incomplete game (board state plus move history) and plays it to the end
// with a fixed number of Monte-Carlo tree-search simulations per move
// (Section IV-A). The Alberta workloads' NNGS archive games are replaced by
// deterministic self-play game prefixes; the culling script that removes
// moves from the end of each game is reproduced as CullMoves.
package leela

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Color of a point.
type Color int8

// Point states.
const (
	Vacant Color = iota
	Black
	White
)

// Opponent returns the other player.
func (c Color) Opponent() Color {
	switch c {
	case Black:
		return White
	case White:
		return Black
	default:
		return Vacant
	}
}

// String names the color.
func (c Color) String() string {
	switch c {
	case Black:
		return "black"
	case White:
		return "white"
	default:
		return "vacant"
	}
}

// PassMove is the move value representing a pass.
const PassMove = -1

// Board is a Go position with simple-ko tracking.
type Board struct {
	Size   int
	points []Color
	// koPoint is the point forbidden by simple ko (-1 when none).
	koPoint int
	// Captures by each player (index by Color).
	captures [3]int
	// scratch buffers for group search.
	visited []int32
	stamp   int32
	queue   []int
	// Precomputed neighbor table: nbr[p*4 : p*4+nbrN[p]] are p's orthogonal
	// neighbors, in the fixed up/down/left/right order the flood fills and
	// capture scans depend on. Immutable after NewBoard; shared by clones.
	nbr  []int16
	nbrN []uint8
	// Legal-scan cache, valid only between scanGroups and the next board
	// mutation: gid maps each occupied point to a group index, libs holds
	// each group's liberty count. legalMoves computes it once per scan so
	// per-point legality tests need no flood fills.
	gid  []int32
	libs []int32
}

// NewBoard returns an empty board of the given size (9, 13 or 19 in the
// workloads; any size ≥ 3 is accepted).
func NewBoard(size int) (*Board, error) {
	if size < 3 || size > 25 {
		return nil, fmt.Errorf("leela: unsupported board size %d", size)
	}
	b := &Board{
		Size:    size,
		points:  make([]Color, size*size),
		koPoint: -1,
		visited: make([]int32, size*size),
		nbr:     make([]int16, size*size*4),
		nbrN:    make([]uint8, size*size),
	}
	for p := 0; p < size*size; p++ {
		r, c := p/size, p%size
		k := p * 4
		if r > 0 {
			b.nbr[k] = int16(p - size)
			k++
		}
		if r < size-1 {
			b.nbr[k] = int16(p + size)
			k++
		}
		if c > 0 {
			b.nbr[k] = int16(p - 1)
			k++
		}
		if c < size-1 {
			b.nbr[k] = int16(p + 1)
			k++
		}
		b.nbrN[p] = uint8(k - p*4)
		// Pad edge/corner slots with the point itself so flood fills can
		// iterate a fixed 4 entries: a self entry is already stamped (every
		// queued point is) and never Vacant there, so it is a no-op.
		for ; k < p*4+4; k++ {
			b.nbr[k] = int16(p)
		}
	}
	return b, nil
}

// At returns the point's color.
func (b *Board) At(p int) Color { return b.points[p] }

// Captures reports stones captured by c.
func (b *Board) Captures(c Color) int { return b.captures[c] }

// neighbors appends p's orthogonal neighbors to buf.
func (b *Board) neighbors(p int, buf []int) []int {
	k := p * 4
	for _, nb := range b.nbr[k : k+int(b.nbrN[p])] {
		buf = append(buf, int(nb))
	}
	return buf
}

// nextStamp advances the visited-marking stamp, clearing the visited array
// on (unlikely) wraparound so long-lived boards stay correct.
func (b *Board) nextStamp() {
	if b.stamp == math.MaxInt32 {
		for i := range b.visited {
			b.visited[i] = 0
		}
		b.stamp = 0
	}
	b.stamp++
}

// scanGroups flood-fills every group on the board once, filling the gid and
// libs caches. The cache is invalidated by any mutation (Play, removeGroup);
// legalMoves recomputes it at the start of each scan.
func (b *Board) scanGroups() {
	if b.gid == nil {
		b.gid = make([]int32, len(b.points))
	}
	for i := range b.gid {
		b.gid[i] = -1
	}
	b.libs = b.libs[:0]
	for p := range b.points {
		if b.points[p] == Vacant || b.gid[p] >= 0 {
			continue
		}
		col := b.points[p]
		id := int32(len(b.libs))
		// One stamp per group: visited dedupes this group's liberties.
		b.nextStamp()
		b.queue = b.queue[:0]
		b.queue = append(b.queue, p)
		b.gid[p] = id
		nlibs := int32(0)
		for i := 0; i < len(b.queue); i++ {
			q := b.queue[i]
			k := q * 4
			// Self pads are col-colored with gid already set: no-ops.
			for _, nb := range b.nbr[k : k+4 : k+4] {
				switch b.points[nb] {
				case Vacant:
					if b.visited[nb] != b.stamp {
						b.visited[nb] = b.stamp
						nlibs++
					}
				case col:
					if b.gid[nb] < 0 {
						b.gid[nb] = id
						b.queue = append(b.queue, int(nb))
					}
				}
			}
		}
		b.libs = append(b.libs, nlibs)
	}
}

// legalScanned is Legal for a vacant point under a fresh scanGroups cache.
// It decides without flood fills, by the same rules Legal applies with them:
// a vacant neighbor is a liberty of the new stone; an opponent neighbor
// group with exactly one liberty must have p as that liberty (p is vacant
// and adjacent), so the move captures; a friendly neighbor group with a
// second liberty beyond p keeps the merged group alive. Otherwise the move
// is suicide. The returned boolean is bit-identical to Legal(p, c).
func (b *Board) legalScanned(p int, c Color) bool {
	if p == b.koPoint {
		return false
	}
	opp := c.Opponent()
	k := p * 4
	for _, nb := range b.nbr[k : k+int(b.nbrN[p])] {
		switch b.points[nb] {
		case Vacant:
			return true
		case opp:
			if b.libs[b.gid[nb]] == 1 {
				return true
			}
		default: // own color
			if b.libs[b.gid[nb]] >= 2 {
				return true
			}
		}
	}
	return false
}

// groupHasLiberty reports whether the group containing p (of color col) has
// at least one liberty. When it returns false the group's points are
// recorded in b.queue (which removeGroup and the ko check consume); on true
// it returns at the first liberty, so b.queue holds only a partial group —
// no caller reads it in that case.
func (b *Board) groupHasLiberty(p int, col Color) bool {
	b.nextStamp()
	b.queue = b.queue[:0]
	b.queue = append(b.queue, p)
	b.visited[p] = b.stamp
	for i := 0; i < len(b.queue); i++ {
		q := b.queue[i]
		k := q * 4
		// Fixed 4-wide iteration over the padded table (see NewBoard): every
		// queued point is col-colored and stamped, so self pads fall through.
		for _, nb := range b.nbr[k : k+4 : k+4] {
			switch b.points[nb] {
			case Vacant:
				return true
			case col:
				if b.visited[nb] != b.stamp {
					b.visited[nb] = b.stamp
					b.queue = append(b.queue, int(nb))
				}
			}
		}
	}
	return false
}

// removeGroup removes the group recorded in b.queue, crediting captures.
func (b *Board) removeGroup(captor Color) int {
	for _, q := range b.queue {
		b.points[q] = Vacant
	}
	b.captures[captor] += len(b.queue)
	return len(b.queue)
}

// ErrIllegalMove reports an illegal play.
var ErrIllegalMove = errors.New("leela: illegal move")

// Legal reports whether c may play at p.
func (b *Board) Legal(p int, c Color) bool {
	if p == PassMove {
		return true
	}
	if p < 0 || p >= len(b.points) || b.points[p] != Vacant || p == b.koPoint {
		return false
	}
	k := p * 4
	nbrs := b.nbr[k : k+int(b.nbrN[p])]
	// A vacant neighbor is a liberty of the placed stone's group, so the move
	// can be neither suicide nor ko-barred (p != koPoint already held): legal.
	for _, nb := range nbrs {
		if b.points[nb] == Vacant {
			return true
		}
	}
	// Tentatively place and test for suicide.
	b.points[p] = c
	opp := c.Opponent()
	capturesSomething := false
	for _, nb := range nbrs {
		if b.points[nb] == opp && !b.groupHasLiberty(int(nb), opp) {
			capturesSomething = true
			break
		}
	}
	ok := capturesSomething || b.groupHasLiberty(p, c)
	b.points[p] = Vacant
	return ok
}

// Play places a stone for c at p (or passes). It returns the number of
// stones captured, or an error for illegal moves.
func (b *Board) Play(p int, c Color) (int, error) {
	if p == PassMove {
		b.koPoint = -1
		return 0, nil
	}
	if !b.Legal(p, c) {
		return 0, fmt.Errorf("%w: %s at %d", ErrIllegalMove, c, p)
	}
	b.points[p] = c
	opp := c.Opponent()
	var nbuf [4]int
	captured := 0
	koCandidate := -1
	for _, nb := range b.neighbors(p, nbuf[:0]) {
		if b.points[nb] == opp && !b.groupHasLiberty(nb, opp) {
			if len(b.queue) == 1 {
				koCandidate = b.queue[0]
			}
			captured += b.removeGroup(c)
		}
	}
	// Simple ko: exactly one stone captured by a single new stone whose
	// group has exactly that one liberty.
	if captured == 1 && koCandidate >= 0 && b.isSingleStoneWithOneLiberty(p, c) {
		b.koPoint = koCandidate
	} else {
		b.koPoint = -1
	}
	return captured, nil
}

// isSingleStoneWithOneLiberty checks the ko precondition for the stone just
// placed at p.
func (b *Board) isSingleStoneWithOneLiberty(p int, c Color) bool {
	var nbuf [4]int
	libs := 0
	for _, nb := range b.neighbors(p, nbuf[:0]) {
		switch b.points[nb] {
		case Vacant:
			libs++
		case c:
			return false
		}
	}
	return libs == 1
}

// Clone deep-copies the board.
func (b *Board) Clone() *Board {
	nb := &Board{
		Size:     b.Size,
		points:   append([]Color(nil), b.points...),
		koPoint:  b.koPoint,
		captures: b.captures,
		visited:  make([]int32, len(b.points)),
		// The neighbor table is immutable — clones share it.
		nbr:  b.nbr,
		nbrN: b.nbrN,
	}
	return nb
}

// CopyFrom resets b to src's position without allocating. The boards must
// share a size; scratch state (visited stamps, scan caches) is left as-is —
// stamps only ever advance, so stale marks never alias fresh ones, and the
// scan cache is recomputed per legalMoves call.
func (b *Board) CopyFrom(src *Board) {
	copy(b.points, src.points)
	b.koPoint = src.koPoint
	b.captures = src.captures
}

// Score computes area scores (stones + surrounded empty territory) for both
// players. Empty regions touching both colors count for neither.
func (b *Board) Score() (black, white int) {
	n := len(b.points)
	// One stamp marks every visited vacant point: regions are disjoint, so
	// a single stamp suffices and no per-call allocation is needed.
	b.nextStamp()
	var nbuf [4]int
	for p := 0; p < n; p++ {
		switch b.points[p] {
		case Black:
			black++
		case White:
			white++
		case Vacant:
			if b.visited[p] == b.stamp {
				continue
			}
			// Flood-fill the vacant region, noting bordering colors.
			b.queue = b.queue[:0]
			b.queue = append(b.queue, p)
			b.visited[p] = b.stamp
			touchBlack, touchWhite := false, false
			for i := 0; i < len(b.queue); i++ {
				for _, nb := range b.neighbors(b.queue[i], nbuf[:0]) {
					switch b.points[nb] {
					case Black:
						touchBlack = true
					case White:
						touchWhite = true
					case Vacant:
						if b.visited[nb] != b.stamp {
							b.visited[nb] = b.stamp
							b.queue = append(b.queue, nb)
						}
					}
				}
			}
			if touchBlack && !touchWhite {
				black += len(b.queue)
			} else if touchWhite && !touchBlack {
				white += len(b.queue)
			}
		}
	}
	return black, white
}

// isEyeLike reports whether p is a single-point eye for c (playout move
// filter: never fill your own eyes).
func (b *Board) isEyeLike(p int, c Color) bool {
	var nbuf [4]int
	for _, nb := range b.neighbors(p, nbuf[:0]) {
		if b.points[nb] != c {
			return false
		}
	}
	return true
}

// sgfCoords are the letter coordinates of SGF point notation.
const sgfCoords = "abcdefghijklmnopqrstuvwxy"

// MoveToSGF renders a move in SGF point notation ("" for pass).
func MoveToSGF(p, size int) string {
	if p == PassMove {
		return ""
	}
	return string([]byte{sgfCoords[p%size], sgfCoords[p/size]})
}

// SGFToMove parses an SGF point ("" = pass).
func SGFToMove(s string, size int) (int, error) {
	if s == "" {
		return PassMove, nil
	}
	if len(s) != 2 {
		return 0, fmt.Errorf("leela: bad SGF point %q", s)
	}
	c := strings.IndexByte(sgfCoords, s[0])
	r := strings.IndexByte(sgfCoords, s[1])
	if c < 0 || r < 0 || c >= size || r >= size {
		return 0, fmt.Errorf("leela: SGF point %q outside %dx%d board", s, size, size)
	}
	return r*size + c, nil
}
