package povray

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perf"
)

// SceneKind is the paper's workload taxonomy.
type SceneKind int

// Scene categories.
const (
	// SceneCollection renders moderately complex geometry made of simple
	// primitives ("real-world uses of POV-Ray").
	SceneCollection SceneKind = iota
	// SceneLumpy renders a single object over a checkered plane lit by
	// two spotlights (floating-point stress).
	SceneLumpy
	// ScenePrimitive renders built-in primitives emphasizing reflection,
	// refraction and camera aperture.
	ScenePrimitive
)

// String names the kind.
func (k SceneKind) String() string {
	switch k {
	case SceneCollection:
		return "collection"
	case SceneLumpy:
		return "lumpy"
	case ScenePrimitive:
		return "primitive"
	default:
		return fmt.Sprintf("SceneKind(%d)", int(k))
	}
}

// BuildScene constructs a deterministic scene of the given kind.
func BuildScene(kind SceneKind, complexity int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	sc := &Scene{
		Background: Vec3{0.1, 0.12, 0.18},
		MaxDepth:   4,
		Camera: Camera{
			Pos: Vec3{0, 2.5, -7}, LookAt: Vec3{0, 0.8, 0},
			FOV: math.Pi / 3,
		},
	}
	floor := &Plane{Y: 0, Mat: Material{
		Color: Vec3{0.9, 0.9, 0.9}, Color2: Vec3{0.1, 0.1, 0.1},
		Checker: true, Reflectivity: 0.1,
	}}
	switch kind {
	case SceneCollection:
		sc.Objects = append(sc.Objects, floor)
		for i := 0; i < complexity; i++ {
			mat := Material{
				Color:     Vec3{0.3 + 0.7*rng.Float64(), 0.3 + 0.7*rng.Float64(), 0.3 + 0.7*rng.Float64()},
				Specular:  0.4,
				Shininess: 24,
			}
			pos := Vec3{-4 + 8*rng.Float64(), 0.3 + 1.5*rng.Float64(), -2 + 6*rng.Float64()}
			if i%3 == 0 {
				half := 0.2 + 0.4*rng.Float64()
				sc.Objects = append(sc.Objects, &Box{
					Min: pos.Sub(Vec3{half, half, half}),
					Max: pos.Add(Vec3{half, half, half}),
					Mat: mat,
				})
			} else {
				sc.Objects = append(sc.Objects, &Sphere{Center: pos, Radius: 0.25 + 0.5*rng.Float64(), Mat: mat})
			}
		}
		sc.Lights = []Light{
			{Pos: Vec3{-6, 8, -6}, Color: Vec3{0.9, 0.9, 0.85}},
			{Pos: Vec3{5, 6, -3}, Color: Vec3{0.3, 0.3, 0.4}},
		}
	case SceneLumpy:
		sc.Objects = append(sc.Objects, floor)
		// A lump: a cluster of overlapping spheres forming one object.
		for i := 0; i < complexity; i++ {
			theta := rng.Float64() * 2 * math.Pi
			phi := rng.Float64() * math.Pi
			r := 0.9 * rng.Float64()
			center := Vec3{
				r * math.Sin(phi) * math.Cos(theta),
				1.2 + 0.7*r*math.Cos(phi),
				r * math.Sin(phi) * math.Sin(theta),
			}
			sc.Objects = append(sc.Objects, &Sphere{
				Center: center,
				Radius: 0.35 + 0.25*rng.Float64(),
				Mat: Material{
					Color: Vec3{0.8, 0.5, 0.3}, Specular: 0.7, Shininess: 48,
				},
			})
		}
		// Two spotlights, per the paper.
		mkSpot := func(pos Vec3) Light {
			dir := Vec3{0, 1.2, 0}.Sub(pos).Norm()
			return Light{
				Pos: pos, Color: Vec3{1, 0.95, 0.9},
				Spot: true, Direction: dir, CosCutoff: math.Cos(math.Pi / 7),
			}
		}
		sc.Lights = []Light{mkSpot(Vec3{-4, 7, -4}), mkSpot(Vec3{4, 6, -3})}
	case ScenePrimitive:
		sc.Objects = append(sc.Objects, floor,
			&Sphere{Center: Vec3{-1.4, 1, 0}, Radius: 1, Mat: Material{
				Color: Vec3{0.1, 0.1, 0.1}, Specular: 1, Shininess: 96, Reflectivity: 0.8,
			}},
			&Sphere{Center: Vec3{1.4, 1, 0}, Radius: 1, Mat: Material{
				Color: Vec3{0.05, 0.05, 0.1}, Transparency: 0.9, IOR: 1.5, Specular: 0.8, Shininess: 96,
			}},
			&Box{Min: Vec3{-0.4, 0, 2.0}, Max: Vec3{0.4, 2.2, 2.8}, Mat: Material{
				Color: Vec3{0.2, 0.7, 0.3}, Specular: 0.4, Shininess: 16, Reflectivity: 0.2,
			}},
		)
		sc.Lights = []Light{
			{Pos: Vec3{-5, 8, -5}, Color: Vec3{1, 1, 1}},
			{Pos: Vec3{6, 4, -2}, Color: Vec3{0.4, 0.4, 0.5}},
		}
		// Camera lens aperture exercises depth of field.
		sc.Camera.Aperture = 0.12
		sc.Camera.FocalDist = 7
	}
	return sc
}

// Workload is one 511.povray_r input.
type Workload struct {
	core.Meta
	Scene      SceneKind
	Complexity int
	W, H       int
	Seed       int64
}

// Benchmark is the 511.povray_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "511.povray_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Ray tracing" }

// Workloads returns SPEC-style inputs plus the seven Alberta workloads in
// the paper's collection/lumpy/primitive split.
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, sk SceneKind, cx, w, h int, seed int64) core.Workload {
		return Workload{Meta: core.Meta{Name: name, Kind: kind}, Scene: sk, Complexity: cx, W: w, H: h, Seed: seed}
	}
	return []core.Workload{
		mk("test", core.KindTest, SceneCollection, 6, 32, 24, 1),
		mk("train", core.KindTrain, SceneCollection, 14, 64, 48, 2),
		mk("refrate", core.KindRefrate, SceneCollection, 24, 96, 72, 3),
		mk("alberta.collection-1", core.KindAlberta, SceneCollection, 18, 80, 60, 11),
		mk("alberta.collection-2", core.KindAlberta, SceneCollection, 30, 80, 60, 12),
		mk("alberta.collection-3", core.KindAlberta, SceneCollection, 12, 96, 72, 13),
		mk("alberta.lumpy-1", core.KindAlberta, SceneLumpy, 10, 80, 60, 14),
		mk("alberta.lumpy-2", core.KindAlberta, SceneLumpy, 18, 80, 60, 15),
		mk("alberta.primitive-1", core.KindAlberta, ScenePrimitive, 0, 80, 60, 16),
		mk("alberta.primitive-2", core.KindAlberta, ScenePrimitive, 0, 96, 72, 17),
	}, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("povray: n must be positive, got %d", n)
	}
	kinds := []SceneKind{SceneCollection, SceneLumpy, ScenePrimitive}
	var out []core.Workload
	for i := 0; i < n; i++ {
		out = append(out, Workload{
			Meta:       core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Scene:      kinds[i%len(kinds)],
			Complexity: 8 + (i%4)*6,
			W:          64, H: 48,
			Seed: seed + int64(i),
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// preparedScene holds the built scene, immutable after Prepare: the tracer
// only reads it while rendering.
type preparedScene struct {
	b  *Benchmark
	pw Workload
	sc *Scene
}

// Prepare implements core.Preparer: build the scene once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	pw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	if pw.W <= 0 || pw.H <= 0 {
		return nil, fmt.Errorf("povray: %s: bad image size %dx%d", pw.Name, pw.W, pw.H)
	}
	return &preparedScene{b: b, pw: pw, sc: BuildScene(pw.Scene, pw.Complexity, pw.Seed)}, nil
}

// Execute implements core.PreparedWorkload: trace the prepared scene.
func (ps *preparedScene) Execute(p *perf.Profiler) (core.Result, error) {
	b, pw := ps.b, ps.pw
	tr := NewTracer(p)
	img := tr.Render(ps.sc, pw.W, pw.H)
	// A degenerate all-background image means the scene failed to build.
	distinct := map[byte]bool{}
	for _, v := range img {
		distinct[v] = true
	}
	if len(distinct) < 3 {
		return core.Result{}, fmt.Errorf("povray: %s: degenerate render", pw.Name)
	}
	sum := core.NewChecksum().AddBytes(img).AddUint64(tr.Rays)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  pw.Name,
		Kind:      pw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
