package povray

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func almostEqual(a, b Vec3, tol float64) bool {
	return math.Abs(a.X-b.X) < tol && math.Abs(a.Y-b.Y) < tol && math.Abs(a.Z-b.Z) < tol
}

func TestVectorOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Dot(b) != 32 {
		t.Errorf("dot = %v", a.Dot(b))
	}
	if !almostEqual(a.Cross(b), Vec3{-3, 6, -3}, 1e-12) {
		t.Errorf("cross = %v", a.Cross(b))
	}
	if math.Abs(Vec3{3, 4, 0}.Len()-5) > 1e-12 {
		t.Error("len")
	}
	n := Vec3{0, 0, 9}.Norm()
	if !almostEqual(n, Vec3{0, 0, 1}, 1e-12) {
		t.Errorf("norm = %v", n)
	}
}

func TestSphereIntersect(t *testing.T) {
	s := &Sphere{Center: Vec3{0, 0, 5}, Radius: 1}
	h, ok := s.Intersect(Vec3{0, 0, 0}, Vec3{0, 0, 1})
	if !ok || math.Abs(h.T-4) > 1e-9 {
		t.Fatalf("hit = %+v ok=%v, want t=4", h, ok)
	}
	if !almostEqual(h.Normal, Vec3{0, 0, -1}, 1e-9) {
		t.Errorf("normal = %v", h.Normal)
	}
	if _, ok := s.Intersect(Vec3{0, 0, 0}, Vec3{0, 1, 0}); ok {
		t.Error("miss reported as hit")
	}
	// Ray starting inside hits the far side.
	h, ok = s.Intersect(Vec3{0, 0, 5}, Vec3{0, 0, 1})
	if !ok || math.Abs(h.T-1) > 1e-9 {
		t.Errorf("inside hit = %+v", h)
	}
}

func TestPlaneIntersectAndChecker(t *testing.T) {
	pl := &Plane{Y: 0, Mat: Material{
		Color: Vec3{1, 1, 1}, Color2: Vec3{0, 0, 0}, Checker: true,
	}}
	h, ok := pl.Intersect(Vec3{0.5, 1, 0.5}, Vec3{0, -1, 0})
	if !ok || math.Abs(h.T-1) > 1e-9 {
		t.Fatalf("plane hit = %+v", h)
	}
	h2, _ := pl.Intersect(Vec3{1.5, 1, 0.5}, Vec3{0, -1, 0})
	if h.Mat.Color == h2.Mat.Color {
		t.Error("checker texture should alternate between adjacent tiles")
	}
	if _, ok := pl.Intersect(Vec3{0, 1, 0}, Vec3{0, 1, 0}); ok {
		t.Error("ray leaving the plane should miss")
	}
}

func TestBoxIntersect(t *testing.T) {
	b := &Box{Min: Vec3{-1, -1, 4}, Max: Vec3{1, 1, 6}}
	h, ok := b.Intersect(Vec3{0, 0, 0}, Vec3{0, 0, 1})
	if !ok || math.Abs(h.T-4) > 1e-9 {
		t.Fatalf("box hit = %+v ok=%v", h, ok)
	}
	if !almostEqual(h.Normal, Vec3{0, 0, -1}, 1e-9) {
		t.Errorf("box normal = %v", h.Normal)
	}
	if _, ok := b.Intersect(Vec3{5, 0, 0}, Vec3{0, 0, 1}); ok {
		t.Error("parallel miss reported as hit")
	}
}

func TestShadows(t *testing.T) {
	// A blocker between the light and the floor must darken the point.
	sc := &Scene{
		Objects: []Object{
			&Plane{Y: 0, Mat: Material{Color: Vec3{1, 1, 1}}},
			&Sphere{Center: Vec3{0, 2, 0}, Radius: 0.8, Mat: Material{Color: Vec3{1, 0, 0}}},
		},
		Lights:   []Light{{Pos: Vec3{0, 5, 0}, Color: Vec3{1, 1, 1}}},
		MaxDepth: 2,
	}
	tr := NewTracer(nil)
	shadowed := tr.Trace(sc, Vec3{0, 0.5, -3}, Vec3{0, -0.15, 0.97}.Norm(), 0)
	lit := tr.Trace(sc, Vec3{3, 0.5, -3}, Vec3{0, -0.15, 0.97}.Norm(), 0)
	if shadowed.X >= lit.X {
		t.Errorf("shadowed %v should be darker than lit %v", shadowed, lit)
	}
}

func TestReflectionShowsEnvironment(t *testing.T) {
	// A perfect mirror sphere over a red floor reflects red downward rays.
	sc := &Scene{
		Objects: []Object{
			&Plane{Y: 0, Mat: Material{Color: Vec3{1, 0, 0}}},
			&Sphere{Center: Vec3{0, 2, 0}, Radius: 1, Mat: Material{
				Color: Vec3{0, 0, 0}, Reflectivity: 1,
			}},
		},
		Lights:     []Light{{Pos: Vec3{0, 10, -5}, Color: Vec3{1, 1, 1}}},
		Background: Vec3{0, 0, 1},
		MaxDepth:   3,
	}
	tr := NewTracer(nil)
	// Aim at the sphere's lower half so the reflection goes to the floor.
	col := tr.Trace(sc, Vec3{0, 1.0, -4}, Vec3{0, 0.05, 1}.Norm(), 0)
	if col.X <= col.Z {
		t.Errorf("mirror should reflect the red floor, got %v", col)
	}
}

func TestSpotlightCone(t *testing.T) {
	spot := Light{
		Pos: Vec3{0, 5, 0}, Color: Vec3{1, 1, 1},
		Spot: true, Direction: Vec3{0, -1, 0}, CosCutoff: math.Cos(math.Pi / 12),
	}
	sc := &Scene{
		Objects:  []Object{&Plane{Y: 0, Mat: Material{Color: Vec3{1, 1, 1}}}},
		Lights:   []Light{spot},
		MaxDepth: 1,
	}
	tr := NewTracer(nil)
	inside := tr.Trace(sc, Vec3{0, 1, -0.2}, Vec3{0, -1, 0.1}.Norm(), 0)
	outside := tr.Trace(sc, Vec3{8, 1, -0.2}, Vec3{0, -1, 0.1}.Norm(), 0)
	if inside.X <= outside.X {
		t.Errorf("inside-cone %v should be brighter than outside %v", inside, outside)
	}
}

func TestRenderDeterministicAndNonTrivial(t *testing.T) {
	render := func() []byte {
		sc := BuildScene(SceneLumpy, 8, 3)
		return NewTracer(nil).Render(sc, 40, 30)
	}
	a, b := render(), render()
	if len(a) != 40*30*3 {
		t.Fatalf("image size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("render not deterministic")
		}
	}
}

func TestApertureBlursOutOfFocus(t *testing.T) {
	// With a large aperture, geometry far from the focal plane changes
	// relative to the pinhole render; the image must still be valid.
	sc := BuildScene(ScenePrimitive, 0, 1)
	pin := *sc
	pin.Camera.Aperture = 0
	imgP := NewTracer(nil).Render(&pin, 32, 24)
	imgA := NewTracer(nil).Render(sc, 32, 24)
	diff := 0
	for i := range imgP {
		if imgP[i] != imgA[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("aperture rendering should differ from pinhole")
	}
}

func TestSceneKindString(t *testing.T) {
	if SceneCollection.String() != "collection" || SceneLumpy.String() != "lumpy" ||
		ScenePrimitive.String() != "primitive" {
		t.Error("SceneKind.String misbehaves")
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	kinds := map[SceneKind]int{}
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
			kinds[w.(Workload).Scene]++
		}
	}
	if alberta != 7 {
		t.Errorf("alberta workloads = %d, want 7 (paper ships seven)", alberta)
	}
	if kinds[SceneCollection] == 0 || kinds[SceneLumpy] == 0 || kinds[ScenePrimitive] == 0 {
		t.Errorf("missing a scene category: %v", kinds)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"trace_ray", "intersect_all", "shade"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(17, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
