// Package povray reproduces 511.povray_r: a recursive ray tracer. The seven
// Alberta workloads fall into the paper's three categories: "collection"
// scenes render moderately complex geometry built from simple primitives,
// "lumpy" scenes render a single object over a checkered plane lit by two
// spotlights (stressing the floating-point unit), and "primitive" scenes
// emphasize reflection, refraction and camera lens aperture.
package povray

import (
	"math"

	"repro/internal/perf"
)

// Vec3 is a 3-vector.
type Vec3 struct{ X, Y, Z float64 }

// Vector operations.
func (a Vec3) Add(b Vec3) Vec3      { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a Vec3) Sub(b Vec3) Vec3      { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a Vec3) Mul(s float64) Vec3   { return Vec3{a.X * s, a.Y * s, a.Z * s} }
func (a Vec3) Dot(b Vec3) float64   { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func (a Vec3) Hadamard(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{a.Y*b.Z - a.Z*b.Y, a.Z*b.X - a.X*b.Z, a.X*b.Y - a.Y*b.X}
}
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }
func (a Vec3) Norm() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Mul(1 / l)
}

// Material describes surface response.
type Material struct {
	Color        Vec3 // diffuse albedo
	Specular     float64
	Shininess    float64
	Reflectivity float64
	Transparency float64
	IOR          float64
	// Checker enables the two-tone procedural texture (plane floors).
	Checker bool
	Color2  Vec3
}

// Hit is an intersection record.
type Hit struct {
	T      float64
	Point  Vec3
	Normal Vec3
	Mat    Material
}

// Object is anything a ray can hit.
type Object interface {
	// Intersect returns the nearest positive hit distance along the ray,
	// or ok=false.
	Intersect(origin, dir Vec3) (Hit, bool)
}

// Sphere is a primitive.
type Sphere struct {
	Center Vec3
	Radius float64
	Mat    Material
}

// Intersect implements Object.
func (s *Sphere) Intersect(o, d Vec3) (Hit, bool) {
	oc := o.Sub(s.Center)
	b := oc.Dot(d)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - c
	if disc < 0 {
		return Hit{}, false
	}
	sq := math.Sqrt(disc)
	t := -b - sq
	if t < 1e-4 {
		t = -b + sq
		if t < 1e-4 {
			return Hit{}, false
		}
	}
	p := o.Add(d.Mul(t))
	return Hit{T: t, Point: p, Normal: p.Sub(s.Center).Norm(), Mat: s.Mat}, true
}

// Plane is an infinite horizontal plane y = Y.
type Plane struct {
	Y   float64
	Mat Material
}

// Intersect implements Object.
func (pl *Plane) Intersect(o, d Vec3) (Hit, bool) {
	if math.Abs(d.Y) < 1e-9 {
		return Hit{}, false
	}
	t := (pl.Y - o.Y) / d.Y
	if t < 1e-4 {
		return Hit{}, false
	}
	p := o.Add(d.Mul(t))
	mat := pl.Mat
	if mat.Checker {
		if (int(math.Floor(p.X))+int(math.Floor(p.Z)))%2 != 0 {
			mat.Color = mat.Color2
		}
	}
	n := Vec3{0, 1, 0}
	if d.Y > 0 {
		n = Vec3{0, -1, 0}
	}
	return Hit{T: t, Point: p, Normal: n, Mat: mat}, true
}

// Box is an axis-aligned box.
type Box struct {
	Min, Max Vec3
	Mat      Material
}

// Intersect implements Object (slab method).
func (b *Box) Intersect(o, d Vec3) (Hit, bool) {
	tmin, tmax := -math.MaxFloat64, math.MaxFloat64
	var nmin Vec3
	axes := [3]struct {
		o, d, lo, hi float64
		n            Vec3
	}{
		{o.X, d.X, b.Min.X, b.Max.X, Vec3{1, 0, 0}},
		{o.Y, d.Y, b.Min.Y, b.Max.Y, Vec3{0, 1, 0}},
		{o.Z, d.Z, b.Min.Z, b.Max.Z, Vec3{0, 0, 1}},
	}
	for _, ax := range axes {
		if math.Abs(ax.d) < 1e-12 {
			if ax.o < ax.lo || ax.o > ax.hi {
				return Hit{}, false
			}
			continue
		}
		t1 := (ax.lo - ax.o) / ax.d
		t2 := (ax.hi - ax.o) / ax.d
		n := ax.n.Mul(-1)
		if t1 > t2 {
			t1, t2 = t2, t1
			n = ax.n
		}
		if t1 > tmin {
			tmin = t1
			nmin = n
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return Hit{}, false
		}
	}
	if tmin < 1e-4 {
		return Hit{}, false
	}
	return Hit{T: tmin, Point: o.Add(d.Mul(tmin)), Normal: nmin, Mat: b.Mat}, true
}

// Light is a point light, optionally a spotlight with a cone.
type Light struct {
	Pos       Vec3
	Color     Vec3
	Spot      bool
	Direction Vec3    // spotlight axis (normalized)
	CosCutoff float64 // cos of the cone half-angle
}

// Camera with optional lens aperture (depth of field).
type Camera struct {
	Pos, LookAt Vec3
	FOV         float64 // radians
	Aperture    float64 // lens radius; 0 = pinhole
	FocalDist   float64
}

// Scene is the full render input.
type Scene struct {
	Objects    []Object
	Lights     []Light
	Camera     Camera
	Background Vec3
	MaxDepth   int
}

// Tracer renders scenes.
type Tracer struct {
	p *perf.Profiler
	// Rays counts primary+secondary rays (work metric).
	Rays uint64
}

const objBase = 0xB0_0000_0000

// NewTracer returns a tracer.
func NewTracer(p *perf.Profiler) *Tracer {
	if p != nil {
		p.SetFootprint("trace_ray", 4<<10)
		p.SetFootprint("intersect_all", 5<<10)
		p.SetFootprint("shade", 4<<10)
	}
	return &Tracer{p: p}
}

// nearestHit intersects the ray with every object.
func (tr *Tracer) nearestHit(sc *Scene, o, d Vec3) (Hit, bool) {
	if tr.p != nil {
		tr.p.Enter("intersect_all")
		defer tr.p.Leave()
	}
	var best Hit
	found := false
	for i, obj := range sc.Objects {
		h, ok := obj.Intersect(o, d)
		if tr.p != nil {
			tr.p.Ops(12)
			if i%4 == 0 {
				tr.p.LongOps(1) // sqrt in the hit path
			}
			tr.p.Load(objBase + uint64(i)*128)
			tr.p.Branch(100, ok)
		}
		if ok && (!found || h.T < best.T) {
			best = h
			found = true
		}
	}
	return best, found
}

// occluded tests the shadow ray toward a light.
func (tr *Tracer) occluded(sc *Scene, p Vec3, l Light) bool {
	toL := l.Pos.Sub(p)
	dist := toL.Len()
	dir := toL.Mul(1 / dist)
	h, ok := tr.nearestHit(sc, p.Add(dir.Mul(1e-3)), dir)
	return ok && h.T < dist
}

// Trace returns the color seen along the ray.
func (tr *Tracer) Trace(sc *Scene, o, d Vec3, depth int) Vec3 {
	tr.Rays++
	if tr.p != nil {
		tr.p.Enter("trace_ray")
		defer tr.p.Leave()
		tr.p.Ops(8)
	}
	if depth > sc.MaxDepth {
		return sc.Background
	}
	h, ok := tr.nearestHit(sc, o, d)
	if !ok {
		return sc.Background
	}
	if tr.p != nil {
		tr.p.Enter("shade")
	}
	col := h.Mat.Color.Mul(0.08) // ambient
	for _, l := range sc.Lights {
		toL := l.Pos.Sub(h.Point).Norm()
		if l.Spot {
			// Outside the cone contributes nothing.
			if l.Direction.Mul(-1).Dot(toL) < l.CosCutoff {
				continue
			}
		}
		if tr.occluded(sc, h.Point, l) {
			continue
		}
		diff := math.Max(0, h.Normal.Dot(toL))
		col = col.Add(h.Mat.Color.Hadamard(l.Color).Mul(diff))
		if h.Mat.Specular > 0 {
			refl := toL.Mul(-1).Sub(h.Normal.Mul(-2 * toL.Dot(h.Normal)))
			spec := math.Pow(math.Max(0, refl.Dot(d)), h.Mat.Shininess)
			col = col.Add(l.Color.Mul(h.Mat.Specular * spec))
		}
		if tr.p != nil {
			tr.p.Ops(24)
			tr.p.LongOps(1)
		}
	}
	if tr.p != nil {
		tr.p.Leave()
	}
	// Reflection.
	if h.Mat.Reflectivity > 0 {
		rdir := d.Sub(h.Normal.Mul(2 * d.Dot(h.Normal))).Norm()
		col = col.Add(tr.Trace(sc, h.Point.Add(rdir.Mul(1e-3)), rdir, depth+1).Mul(h.Mat.Reflectivity))
	}
	// Refraction.
	if h.Mat.Transparency > 0 {
		n := h.Normal
		eta := 1 / h.Mat.IOR
		cosi := -d.Dot(n)
		if cosi < 0 {
			n = n.Mul(-1)
			cosi = -cosi
			eta = h.Mat.IOR
		}
		k := 1 - eta*eta*(1-cosi*cosi)
		if k > 0 {
			tdir := d.Mul(eta).Add(n.Mul(eta*cosi - math.Sqrt(k))).Norm()
			col = col.Add(tr.Trace(sc, h.Point.Add(tdir.Mul(1e-3)), tdir, depth+1).Mul(h.Mat.Transparency))
		}
	}
	return col
}

// lensOffsets are the fixed aperture sample points (deterministic DOF).
var lensOffsets = [4][2]float64{{0.35, 0.35}, {-0.35, 0.35}, {0.35, -0.35}, {-0.35, -0.35}}

// Render draws the scene into an RGB byte image (3 bytes per pixel).
func (tr *Tracer) Render(sc *Scene, w, h int) []byte {
	cam := sc.Camera
	forward := cam.LookAt.Sub(cam.Pos).Norm()
	right := forward.Cross(Vec3{0, 1, 0}).Norm()
	up := right.Cross(forward)
	aspect := float64(w) / float64(h)
	scale := math.Tan(cam.FOV / 2)

	img := make([]byte, w*h*3)
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			sx := (2*(float64(px)+0.5)/float64(w) - 1) * scale * aspect
			sy := (1 - 2*(float64(py)+0.5)/float64(h)) * scale
			dir := forward.Add(right.Mul(sx)).Add(up.Mul(sy)).Norm()
			var col Vec3
			if cam.Aperture > 0 {
				// Depth of field: average fixed lens samples focused at
				// FocalDist.
				focal := cam.Pos.Add(dir.Mul(cam.FocalDist))
				for _, off := range lensOffsets {
					lensPos := cam.Pos.
						Add(right.Mul(off[0] * cam.Aperture)).
						Add(up.Mul(off[1] * cam.Aperture))
					ldir := focal.Sub(lensPos).Norm()
					col = col.Add(tr.Trace(sc, lensPos, ldir, 0))
				}
				col = col.Mul(1.0 / float64(len(lensOffsets)))
			} else {
				col = tr.Trace(sc, cam.Pos, dir, 0)
			}
			i := (py*w + px) * 3
			img[i] = toByte(col.X)
			img[i+1] = toByte(col.Y)
			img[i+2] = toByte(col.Z)
		}
	}
	return img
}

func toByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 255
	}
	return byte(v * 255)
}
