package benchmarks

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestSuiteComposition(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("suite has %d benchmarks, want 17", len(all))
	}
	if len(Int()) != 10 {
		t.Errorf("INT suite = %d, want 10", len(Int()))
	}
	if len(FP()) != 7 {
		t.Errorf("FP suite = %d, want 7", len(FP()))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name()] {
			t.Errorf("duplicate benchmark %s", b.Name())
		}
		seen[b.Name()] = true
	}
}

func TestCharacterizedSuiteExcludesPerlbench(t *testing.T) {
	s, err := CharacterizedSuite()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("500.perlbench_r"); ok {
		t.Error("perlbench must not be in the characterized suite")
	}
	if s.Len() != 16 {
		t.Errorf("characterized suite = %d, want 16", s.Len())
	}
}

// TestAllButOneHaveAlbertaWorkloads verifies the paper's headline claim:
// "The Alberta Workloads provide new workloads to all but one ...
// 500.perlbench_r" of the INT suite, and to the covered FP benchmarks.
func TestAllButOneHaveAlbertaWorkloads(t *testing.T) {
	for _, b := range All() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		alberta := 0
		for _, w := range ws {
			if w.WorkloadKind() == core.KindAlberta {
				alberta++
			}
		}
		if b.Name() == "500.perlbench_r" {
			if alberta != 0 {
				t.Errorf("perlbench has %d Alberta workloads, want 0", alberta)
			}
			if _, isGen := b.(core.Generator); isGen {
				t.Error("perlbench must not be a Generator")
			}
			continue
		}
		if alberta == 0 {
			t.Errorf("%s has no Alberta workloads", b.Name())
		}
		if _, isGen := b.(core.Generator); !isGen {
			t.Errorf("%s should implement core.Generator", b.Name())
		}
	}
}

// TestEveryBenchmarkHasSpecStyleInputs checks the SPEC inventory: test,
// train and refrate inputs, with test excluded from measurement.
func TestEveryBenchmarkHasSpecStyleInputs(t *testing.T) {
	for _, b := range All() {
		for _, name := range []string{"test", "train", "refrate"} {
			if _, err := core.FindWorkload(b, name); err != nil {
				t.Errorf("%s: missing %s workload: %v", b.Name(), name, err)
			}
		}
	}
}

// TestEveryBenchmarkRunsDeterministically runs each test workload twice and
// compares checksums and modeled cycles — the property the entire Table II
// pipeline depends on.
func TestEveryBenchmarkRunsDeterministically(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			w, err := core.FindWorkload(b, "test")
			if err != nil {
				t.Fatal(err)
			}
			run := func() (uint64, uint64) {
				p := perf.New()
				res, err := b.Run(w, p)
				if err != nil {
					t.Fatal(err)
				}
				return res.Checksum, p.Report().Cycles
			}
			c1, cy1 := run()
			c2, cy2 := run()
			if c1 != c2 {
				t.Errorf("checksum differs: %x vs %x", c1, c2)
			}
			if cy1 != cy2 {
				t.Errorf("modeled cycles differ: %d vs %d", cy1, cy2)
			}
			if c1 == 0 || cy1 == 0 {
				t.Errorf("degenerate run: checksum=%x cycles=%d", c1, cy1)
			}
		})
	}
}

// TestWorkloadNamesUniquePerBenchmark guards the harness's name-based
// workload lookups.
func TestWorkloadNamesUniquePerBenchmark(t *testing.T) {
	for _, b := range All() {
		ws, err := b.Workloads()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, w := range ws {
			if seen[w.WorkloadName()] {
				t.Errorf("%s: duplicate workload name %q", b.Name(), w.WorkloadName())
			}
			seen[w.WorkloadName()] = true
		}
	}
}

// TestTrainAndRefrateDiffer ensures the two SPEC-style inputs are distinct
// measurements (different checksums or cycle counts).
func TestTrainAndRefrateDiffer(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			train, err := core.FindWorkload(b, "train")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := core.FindWorkload(b, "refrate")
			if err != nil {
				t.Fatal(err)
			}
			p1 := perf.NewWithOptions(perf.Options{Stride: 4})
			r1, err := b.Run(train, p1)
			if err != nil {
				t.Fatal(err)
			}
			p2 := perf.NewWithOptions(perf.Options{Stride: 4})
			r2, err := b.Run(ref, p2)
			if err != nil {
				t.Fatal(err)
			}
			if r1.Checksum == r2.Checksum && p1.Report().Cycles == p2.Report().Cycles {
				t.Error("train and refrate produce identical measurements")
			}
			// refrate must be the bigger run.
			if p2.Report().Cycles <= p1.Report().Cycles {
				t.Errorf("refrate cycles (%d) should exceed train (%d)",
					p2.Report().Cycles, p1.Report().Cycles)
			}
		})
	}
}
