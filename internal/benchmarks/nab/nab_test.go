package nab

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func TestGenerateAndParsePDB(t *testing.T) {
	src := GeneratePDB("1tst", 40, 7)
	if !strings.HasPrefix(src, "HEADER") || !strings.Contains(src, "ATOM") {
		t.Fatalf("unexpected PDB text:\n%s", src[:100])
	}
	mol, err := ParsePDB(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(mol.Atoms) != 40 {
		t.Errorf("atoms = %d, want 40", len(mol.Atoms))
	}
	if len(mol.Bonds) != 39 {
		t.Errorf("bonds = %d, want 39", len(mol.Bonds))
	}
}

func TestParsePDBErrors(t *testing.T) {
	if _, err := ParsePDB("HEADER only\nEND\n"); !errors.Is(err, ErrBadPDB) {
		t.Errorf("no atoms: err = %v", err)
	}
	if _, err := ParsePDB("ATOM 1 C\n"); !errors.Is(err, ErrBadPDB) {
		t.Errorf("short record: err = %v", err)
	}
	if _, err := ParsePDB("ATOM  1  C ALA A 1  x y z\n"); !errors.Is(err, ErrBadPDB) {
		t.Errorf("bad coords: err = %v", err)
	}
}

func TestSimValidation(t *testing.T) {
	mol, _ := ParsePDB(GeneratePDB("t", 10, 1))
	for _, prm := range []Params{
		{Steps: 0, Dt: 0.01, CutoffDist: 5},
		{Steps: 5, Dt: 0, CutoffDist: 5},
		{Steps: 5, Dt: 0.5, CutoffDist: 5},
		{Steps: 5, Dt: 0.01, CutoffDist: 0},
	} {
		if _, err := NewSim(mol, prm, nil); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: err = %v, want ErrBadParams", prm, err)
		}
	}
}

func TestBondSpringRestoringForce(t *testing.T) {
	// Two atoms stretched beyond equilibrium must attract.
	mol := &Molecule{
		Atoms: []Atom{{X: 0, Y: 0, Z: 0}, {X: 5, Y: 0, Z: 0}},
		Bonds: [][2]int{{0, 1}},
	}
	prm := DefaultParams()
	prm.LJEpsilon = 0 // isolate the spring
	prm.CoulombK = 0
	s, err := NewSim(mol, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.computeForces()
	if s.fx[0] <= 0 || s.fx[1] >= 0 {
		t.Errorf("stretched bond forces = %v, %v; want attraction", s.fx[0], s.fx[1])
	}
	// Compressed bond must repel.
	mol.Atoms[1].X = 0.5
	s.computeForces()
	if s.fx[0] >= 0 || s.fx[1] <= 0 {
		t.Errorf("compressed bond forces = %v, %v; want repulsion", s.fx[0], s.fx[1])
	}
}

func TestLJRepelsAtShortRange(t *testing.T) {
	// Non-bonded atoms much closer than sigma must repel strongly.
	mol := &Molecule{
		Atoms: []Atom{{X: 0}, {X: 100}, {X: 1.0}}, // 0 and 2 are non-bonded (skip i+1)
		Bonds: nil,
	}
	prm := DefaultParams()
	prm.CoulombK = 0
	s, err := NewSim(mol, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.computeForces()
	if s.fx[0] >= 0 || s.fx[2] <= 0 {
		t.Errorf("LJ at r<<sigma: forces %v, %v; want repulsion", s.fx[0], s.fx[2])
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	mol, _ := ParsePDB(GeneratePDB("t", 30, 3))
	s, err := NewSim(mol, DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.computeForces()
	var sx, sy, sz float64
	for i := range s.fx {
		sx += s.fx[i]
		sy += s.fy[i]
		sz += s.fz[i]
	}
	if math.Abs(sx)+math.Abs(sy)+math.Abs(sz) > 1e-8 {
		t.Errorf("net force = (%v, %v, %v), want ~0", sx, sy, sz)
	}
}

func TestSimulationRunsAndMoves(t *testing.T) {
	mol, _ := ParsePDB(GeneratePDB("t", 50, 4))
	prm := DefaultParams()
	prm.Steps = 20
	s, err := NewSim(mol, prm, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSD <= 0 {
		t.Error("structure should relax away from its start")
	}
	if res.KineticE <= 0 {
		t.Error("forces should produce motion")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		mol, _ := ParsePDB(GeneratePDB("t", 40, 5))
		prm := DefaultParams()
		prm.Steps = 10
		s, err := NewSim(mol, prm, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
		}
	}
	if alberta != 7 {
		t.Errorf("alberta workloads = %d, want 7 (paper: seven distinct proteins)", alberta)
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"bond_forces", "nonbond_forces", "integrate"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(31, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
