// Package nab reproduces 544.nab_r (Nucleic Acid Builder): molecular-level
// force simulation. An input pairs a protein-data-bank (pdb) structure file
// with a parameter (prm) file. The Brookhaven PDB downloads of the paper's
// seven proteins are replaced by a deterministic generator that emits
// helix-like backbone chains in PDB ATOM-record format; the force field
// (bond springs, Lennard-Jones, Coulomb) and velocity-Verlet integrator are
// real.
package nab

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/perf"
)

// Atom is one particle.
type Atom struct {
	Name    string
	X, Y, Z float64
	Charge  float64
}

// Molecule is the parsed structure with its bond list.
type Molecule struct {
	Atoms []Atom
	// Bonds are index pairs (chain bonds: consecutive backbone atoms).
	Bonds [][2]int
}

// ErrBadPDB reports an unparseable structure file.
var ErrBadPDB = errors.New("nab: bad PDB")

// GeneratePDB emits a helix-like chain of n atoms in ATOM-record format —
// the stand-in for a Brookhaven download.
func GeneratePDB(name string, n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	fmt.Fprintf(&sb, "HEADER    synthetic protein %s\n", name)
	elements := []string{"C", "N", "O", "S"}
	for i := 0; i < n; i++ {
		t := float64(i) * 0.6
		x := 2.3*math.Cos(t) + 0.2*rng.Float64()
		y := 2.3*math.Sin(t) + 0.2*rng.Float64()
		z := 0.9*float64(i) + 0.2*rng.Float64()
		el := elements[rng.Intn(len(elements))]
		fmt.Fprintf(&sb, "ATOM  %5d  %-3s ALA A%4d    %8.3f%8.3f%8.3f\n",
			i+1, el, i/4+1, x, y, z)
	}
	sb.WriteString("END\n")
	return sb.String()
}

// ParsePDB reads ATOM records (columns per the PDB fixed format, parsed
// leniently by fields) and derives chain bonds between consecutive atoms.
func ParsePDB(src string) (*Molecule, error) {
	m := &Molecule{}
	sc := bufio.NewScanner(strings.NewReader(src))
	charges := map[string]float64{"C": 0.1, "N": -0.3, "O": -0.5, "S": -0.1}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "ATOM") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 8 {
			return nil, fmt.Errorf("%w: short ATOM record %q", ErrBadPDB, line)
		}
		x, err1 := strconv.ParseFloat(f[len(f)-3], 64)
		y, err2 := strconv.ParseFloat(f[len(f)-2], 64)
		z, err3 := strconv.ParseFloat(f[len(f)-1], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: bad coordinates in %q", ErrBadPDB, line)
		}
		name := f[2]
		m.Atoms = append(m.Atoms, Atom{Name: name, X: x, Y: y, Z: z, Charge: charges[name]})
	}
	if len(m.Atoms) == 0 {
		return nil, fmt.Errorf("%w: no ATOM records", ErrBadPDB)
	}
	for i := 0; i+1 < len(m.Atoms); i++ {
		m.Bonds = append(m.Bonds, [2]int{i, i + 1})
	}
	return m, nil
}

// Params is the prm file contents.
type Params struct {
	Steps      int
	Dt         float64
	BondK      float64 // bond spring constant
	BondLen    float64 // equilibrium bond length
	LJEpsilon  float64
	LJSigma    float64
	CoulombK   float64
	CutoffDist float64 // nonbonded interaction cutoff
}

// DefaultParams returns a stable configuration.
func DefaultParams() Params {
	return Params{
		Steps: 30, Dt: 0.002,
		BondK: 100, BondLen: 1.8,
		LJEpsilon: 0.2, LJSigma: 2.2,
		CoulombK: 8, CutoffDist: 9,
	}
}

// ErrBadParams reports invalid parameters.
var ErrBadParams = errors.New("nab: bad parameters")

const atomBase = 0xE0_0000_0000

// Sim integrates molecular dynamics.
type Sim struct {
	mol        *Molecule
	prm        Params
	vx, vy, vz []float64
	fx, fy, fz []float64
	p          *perf.Profiler
}

// NewSim prepares the integrator.
func NewSim(mol *Molecule, prm Params, p *perf.Profiler) (*Sim, error) {
	if prm.Steps < 1 || prm.Dt <= 0 || prm.Dt > 0.1 || prm.CutoffDist <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, prm)
	}
	n := len(mol.Atoms)
	s := &Sim{
		mol: mol, prm: prm,
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		fx: make([]float64, n), fy: make([]float64, n), fz: make([]float64, n),
	}
	s.p = p
	if p != nil {
		p.SetFootprint("bond_forces", 3<<10)
		p.SetFootprint("nonbond_forces", 6<<10)
		p.SetFootprint("integrate", 2<<10)
	}
	return s, nil
}

// computeForces fills the force arrays and returns the potential energy.
func (s *Sim) computeForces() float64 {
	n := len(s.mol.Atoms)
	for i := 0; i < n; i++ {
		s.fx[i], s.fy[i], s.fz[i] = 0, 0, 0
	}
	energy := 0.0
	// Bond springs.
	if s.p != nil {
		s.p.Enter("bond_forces")
	}
	for _, b := range s.mol.Bonds {
		i, j := b[0], b[1]
		a, c := &s.mol.Atoms[i], &s.mol.Atoms[j]
		dx, dy, dz := c.X-a.X, c.Y-a.Y, c.Z-a.Z
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if r < 1e-9 {
			continue
		}
		stretch := r - s.prm.BondLen
		f := s.prm.BondK * stretch / r
		s.fx[i] += f * dx
		s.fy[i] += f * dy
		s.fz[i] += f * dz
		s.fx[j] -= f * dx
		s.fy[j] -= f * dy
		s.fz[j] -= f * dz
		energy += 0.5 * s.prm.BondK * stretch * stretch
		if s.p != nil {
			s.p.Ops(20)
			s.p.LongOps(1)
			s.p.Load(atomBase + uint64(i)*64)
			s.p.Load(atomBase + uint64(j)*64)
		}
	}
	if s.p != nil {
		s.p.Leave()
		s.p.Enter("nonbond_forces")
	}
	// Nonbonded pairs: Lennard-Jones + Coulomb within the cutoff,
	// excluding directly bonded neighbors.
	cutoff2 := s.prm.CutoffDist * s.prm.CutoffDist
	for i := 0; i < n; i++ {
		ai := &s.mol.Atoms[i]
		for j := i + 2; j < n; j++ { // i+1 is chain-bonded
			aj := &s.mol.Atoms[j]
			dx, dy, dz := aj.X-ai.X, aj.Y-ai.Y, aj.Z-ai.Z
			r2 := dx*dx + dy*dy + dz*dz
			inCutoff := r2 < cutoff2 && r2 > 1e-9
			if s.p != nil && (i+j)%16 == 0 {
				s.p.Ops(10)
				s.p.Load(atomBase + uint64(j)*64)
				s.p.Branch(120, inCutoff)
			}
			if !inCutoff {
				continue
			}
			r := math.Sqrt(r2)
			sr := s.prm.LJSigma / r
			sr6 := sr * sr * sr * sr * sr * sr
			sr12 := sr6 * sr6
			// LJ force magnitude /r and energy.
			flj := 24 * s.prm.LJEpsilon * (2*sr12 - sr6) / r2
			energy += 4 * s.prm.LJEpsilon * (sr12 - sr6)
			// Coulomb.
			qq := s.prm.CoulombK * ai.Charge * aj.Charge
			fc := qq / (r2 * r)
			energy += qq / r
			f := flj + fc
			s.fx[i] -= f * dx
			s.fy[i] -= f * dy
			s.fz[i] -= f * dz
			s.fx[j] += f * dx
			s.fy[j] += f * dy
			s.fz[j] += f * dz
			if s.p != nil && (i+j)%16 == 0 {
				s.p.Ops(30)
				s.p.LongOps(2)
			}
		}
	}
	if s.p != nil {
		s.p.Leave()
	}
	return energy
}

// Result summarizes a simulation.
type Result struct {
	PotentialE float64
	KineticE   float64
	// RMSD is the root-mean-square displacement from the start structure.
	RMSD float64
}

// Run integrates with velocity Verlet and returns the summary.
func (s *Sim) Run() (Result, error) {
	n := len(s.mol.Atoms)
	startX := make([]float64, n)
	startY := make([]float64, n)
	startZ := make([]float64, n)
	for i, a := range s.mol.Atoms {
		startX[i], startY[i], startZ[i] = a.X, a.Y, a.Z
	}
	pot := s.computeForces()
	dt := s.prm.Dt
	for t := 0; t < s.prm.Steps; t++ {
		if s.p != nil {
			s.p.Enter("integrate")
		}
		for i := 0; i < n; i++ {
			// Half kick + drift.
			s.vx[i] += 0.5 * dt * s.fx[i]
			s.vy[i] += 0.5 * dt * s.fy[i]
			s.vz[i] += 0.5 * dt * s.fz[i]
			s.mol.Atoms[i].X += dt * s.vx[i]
			s.mol.Atoms[i].Y += dt * s.vy[i]
			s.mol.Atoms[i].Z += dt * s.vz[i]
			if s.p != nil && i%8 == 0 {
				s.p.Ops(18)
				s.p.Store(atomBase + uint64(i)*64)
			}
		}
		if s.p != nil {
			s.p.Leave()
		}
		pot = s.computeForces()
		if s.p != nil {
			s.p.Enter("integrate")
		}
		for i := 0; i < n; i++ {
			s.vx[i] += 0.5 * dt * s.fx[i]
			s.vy[i] += 0.5 * dt * s.fy[i]
			s.vz[i] += 0.5 * dt * s.fz[i]
		}
		if s.p != nil {
			s.p.Leave()
		}
	}
	var res Result
	res.PotentialE = pot
	for i := 0; i < n; i++ {
		res.KineticE += 0.5 * (s.vx[i]*s.vx[i] + s.vy[i]*s.vy[i] + s.vz[i]*s.vz[i])
		dx := s.mol.Atoms[i].X - startX[i]
		dy := s.mol.Atoms[i].Y - startY[i]
		dz := s.mol.Atoms[i].Z - startZ[i]
		res.RMSD += dx*dx + dy*dy + dz*dz
	}
	res.RMSD = math.Sqrt(res.RMSD / float64(n))
	if math.IsNaN(res.PotentialE) || math.IsInf(res.PotentialE, 0) ||
		math.IsNaN(res.KineticE) || math.IsInf(res.KineticE, 0) {
		return res, errors.New("nab: simulation diverged")
	}
	return res, nil
}

// Workload is one 544.nab_r input: the structure file plus parameters.
type Workload struct {
	core.Meta
	PDB    string
	Params Params
}

// Benchmark is the 544.nab_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "544.nab_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Molecular dynamics" }

// Workloads returns SPEC-style inputs plus the seven Alberta workloads
// modeling "forces in seven distinct proteins".
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, atoms int, seed int64, mod func(*Params)) core.Workload {
		p := DefaultParams()
		if mod != nil {
			mod(&p)
		}
		return Workload{
			Meta:   core.Meta{Name: name, Kind: kind},
			PDB:    GeneratePDB(name, atoms, seed),
			Params: p,
		}
	}
	ws := []core.Workload{
		mk("test", core.KindTest, 30, 1, func(p *Params) { p.Steps = 6 }),
		mk("train", core.KindTrain, 90, 2, nil),
		mk("refrate", core.KindRefrate, 220, 3, func(p *Params) { p.Steps = 50 }),
	}
	proteins := []struct {
		id    string
		atoms int
		mod   func(*Params)
	}{
		{"1aby", 70, nil},
		{"1bcd", 120, nil},
		{"2cef", 160, func(p *Params) { p.Steps = 40 }},
		{"3dgh", 200, nil},
		{"4eij", 110, func(p *Params) { p.CutoffDist = 14 }},
		{"5fkl", 140, func(p *Params) { p.CoulombK = 16 }},
		{"6gmn", 180, func(p *Params) { p.LJEpsilon = 0.5 }},
	}
	for i, pr := range proteins {
		ws = append(ws, mk("alberta."+pr.id, core.KindAlberta, pr.atoms, 100+int64(i), pr.mod))
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("nab: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		p := DefaultParams()
		p.Steps = 20 + (i%4)*10
		out = append(out, Workload{
			Meta:   core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			PDB:    GeneratePDB(fmt.Sprintf("gen%d", i), 60+(i%6)*30, seed+int64(i)),
			Params: p,
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared holds the parsed molecule. The simulation integrates atom
// positions in place, so Execute works on a scratch copy of the atoms (work)
// refreshed from the immutable parse (mol) each call; bonds are topology-only
// and shared read-only.
type prepared struct {
	b    *Benchmark
	nw   Workload
	mol  *Molecule
	work Molecule
}

// Prepare implements core.Preparer: parse the PDB once, uninstrumented.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	nw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	mol, err := ParsePDB(nw.PDB)
	if err != nil {
		return nil, fmt.Errorf("nab: %s: %w", nw.Name, err)
	}
	pw := &prepared{b: b, nw: nw, mol: mol}
	pw.work.Bonds = mol.Bonds
	pw.work.Atoms = make([]Atom, len(mol.Atoms))
	return pw, nil
}

// Execute implements core.PreparedWorkload: refresh the scratch atoms from
// the parsed molecule, then simulate.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, nw := pw.b, pw.nw
	copy(pw.work.Atoms, pw.mol.Atoms)
	sim, err := NewSim(&pw.work, nw.Params, p)
	if err != nil {
		return core.Result{}, err
	}
	res, err := sim.Run()
	if err != nil {
		return core.Result{}, fmt.Errorf("nab: %s: %w", nw.Name, err)
	}
	sum := core.NewChecksum().
		AddFloat(res.PotentialE).AddFloat(res.KineticE).AddFloat(res.RMSD).
		AddUint64(uint64(len(pw.mol.Atoms)))
	return core.Result{
		Benchmark: b.Name(),
		Workload:  nw.Name,
		Kind:      nw.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
