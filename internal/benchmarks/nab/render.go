package nab

import (
	"fmt"

	"repro/internal/core"
)

// RenderWorkload implements core.FileRenderer: the pdb structure and the
// prm parameter file, exactly the input pair the paper describes.
func (b *Benchmark) RenderWorkload(w core.Workload) (map[string][]byte, error) {
	nw, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	prm := fmt.Sprintf("steps %d\ndt %g\nbond_k %g\nbond_len %g\nlj_epsilon %g\nlj_sigma %g\ncoulomb_k %g\ncutoff %g\n",
		nw.Params.Steps, nw.Params.Dt, nw.Params.BondK, nw.Params.BondLen,
		nw.Params.LJEpsilon, nw.Params.LJSigma, nw.Params.CoulombK, nw.Params.CutoffDist)
	return map[string][]byte{
		nw.Name + ".pdb": []byte(nw.PDB),
		nw.Name + ".prm": []byte(prm),
	}, nil
}
