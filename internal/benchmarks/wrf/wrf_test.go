package wrf

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/perf"
)

func defaultPhysics() Physics {
	return Physics{Microphysics: true, Radiation: true, SurfaceDrag: true, PeriodicBoundary: true}
}

func TestModelValidation(t *testing.T) {
	bad := []Params{
		{N: 4, Steps: 5, Dt: 0.02},
		{N: 16, Steps: 0, Dt: 0.02},
		{N: 16, Steps: 5, Dt: 0},
		{N: 16, Steps: 5, Dt: 0.5},
	}
	for _, p := range bad {
		if _, err := NewModel(p, nil); !errors.Is(err, ErrBadParams) {
			t.Errorf("params %+v: err = %v, want ErrBadParams", p, err)
		}
	}
}

func TestStormProducesWind(t *testing.T) {
	m, err := NewModel(Params{N: 24, Steps: 15, Dt: 0.02, Dataset: StormKatrina, Physics: defaultPhysics()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fc.MaxWind <= 0 {
		t.Error("storm should produce wind")
	}
	if fc.MinHeight >= 10 {
		t.Error("vortex depression missing")
	}
}

func TestDatasetsDiffer(t *testing.T) {
	run := func(ds StormDataset) Forecast {
		m, err := NewModel(Params{N: 24, Steps: 10, Dt: 0.02, Dataset: ds, Physics: defaultPhysics()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fc
	}
	if run(StormKatrina) == run(StormRusa) {
		t.Error("the two storm datasets should produce different forecasts")
	}
}

func TestMicrophysicsProducesRain(t *testing.T) {
	run := func(micro bool) float64 {
		ph := defaultPhysics()
		ph.Microphysics = micro
		m, err := NewModel(Params{N: 24, Steps: 20, Dt: 0.02, Dataset: StormKatrina, Physics: ph}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fc.TotalRain
	}
	if on, off := run(true), run(false); on <= 0 || off != 0 {
		t.Errorf("rain on=%v off=%v; want positive with microphysics, zero without", on, off)
	}
}

func TestRadiationCools(t *testing.T) {
	ph := defaultPhysics()
	ph.Radiation = false
	m, err := NewModel(Params{N: 20, Steps: 10, Dt: 0.02, Dataset: StormRusa, Physics: ph}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fc.TotalCooling != 0 {
		t.Error("radiation disabled but cooling recorded")
	}
}

func TestDragSlowsWind(t *testing.T) {
	run := func(drag bool) float64 {
		ph := defaultPhysics()
		ph.SurfaceDrag = drag
		m, err := NewModel(Params{N: 24, Steps: 30, Dt: 0.02, Dataset: StormKatrina, Physics: ph}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fc.MaxWind
	}
	if withDrag, noDrag := run(true), run(false); withDrag >= noDrag {
		t.Errorf("drag should reduce peak wind: %v vs %v", withDrag, noDrag)
	}
}

func TestBoundarySchemeMatters(t *testing.T) {
	run := func(periodic bool) Forecast {
		ph := defaultPhysics()
		ph.PeriodicBoundary = periodic
		m, err := NewModel(Params{N: 20, Steps: 20, Dt: 0.02, Dataset: StormRusa, Physics: ph}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fc
	}
	if run(true) == run(false) {
		t.Error("boundary scheme should change the forecast")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Forecast {
		m, err := NewModel(Params{N: 16, Steps: 10, Dt: 0.02, Dataset: StormKatrina, Physics: defaultPhysics()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fc
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWorkloadInventory(t *testing.T) {
	b := New()
	ws, err := b.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	alberta := 0
	katrina, rusa := 0, 0
	for _, w := range ws {
		if w.WorkloadKind() == core.KindAlberta {
			alberta++
			if w.(Workload).Params.Dataset == StormKatrina {
				katrina++
			} else {
				rusa++
			}
		}
	}
	if alberta != 12 {
		t.Errorf("alberta workloads = %d, want 12 (paper ships twelve)", alberta)
	}
	if katrina == 0 || rusa == 0 {
		t.Error("both storm datasets must be represented")
	}
}

func TestBenchmarkRunProfiled(t *testing.T) {
	b := New()
	w, err := core.FindWorkload(b, "test")
	if err != nil {
		t.Fatal(err)
	}
	p := perf.New()
	r, err := b.Run(w, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum")
	}
	rep := p.Report()
	for _, m := range []string{"advect", "microphysics", "radiation"} {
		if rep.Coverage[m] == 0 {
			t.Errorf("method %s missing from coverage", m)
		}
	}
}

func TestBenchmarkRejectsForeignWorkload(t *testing.T) {
	if _, err := New().Run(core.Meta{}, perf.New()); !errors.Is(err, core.ErrUnknownWorkload) {
		t.Errorf("err = %v", err)
	}
}

func TestGenerateWorkloadsRun(t *testing.T) {
	b := New()
	ws, err := b.GenerateWorkloads(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := b.Run(w, perf.New()); err != nil {
			t.Errorf("%s: %v", w.WorkloadName(), err)
		}
	}
}
