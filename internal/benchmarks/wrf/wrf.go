// Package wrf reproduces 521.wrf_r: a numerical weather prediction step.
// The substitute model integrates the 2D shallow-water equations with
// moisture, seeded by storm-like initial conditions standing in for the
// paper's hurricane Katrina and typhoon Rusa datasets. Workload parameters
// toggle the same physics-option families the Alberta generation script
// manipulates: microphysics, long-wave radiation, surface (drag) scheme and
// the boundary-layer scheme.
package wrf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/perf"
)

// StormDataset selects the initial-condition builder (the WRF input file).
type StormDataset int

// The two source datasets of the paper.
const (
	// StormKatrina is a large single-vortex initialization.
	StormKatrina StormDataset = iota
	// StormRusa is a smaller, faster-moving double-vortex initialization.
	StormRusa
)

// String names the dataset.
func (d StormDataset) String() string {
	switch d {
	case StormKatrina:
		return "katrina"
	case StormRusa:
		return "rusa"
	default:
		return fmt.Sprintf("StormDataset(%d)", int(d))
	}
}

// Physics toggles the optional schemes (the namelist options).
type Physics struct {
	// Microphysics enables condensation/rain moisture sinks.
	Microphysics bool
	// Radiation enables long-wave radiative cooling.
	Radiation bool
	// SurfaceDrag enables surface momentum drag.
	SurfaceDrag bool
	// PeriodicBoundary selects periodic (true) or reflective (false)
	// lateral boundaries.
	PeriodicBoundary bool
}

// Params is the run configuration.
type Params struct {
	N       int // grid size
	Steps   int
	Dt      float64
	Dataset StormDataset
	Physics Physics
}

// ErrBadParams reports an invalid configuration.
var ErrBadParams = errors.New("wrf: bad parameters")

const gridBase = 0xD0_0000_0000

// Model is the shallow-water state: height h, momenta hu/hv, moisture q.
type Model struct {
	prm        Params
	h, hu, hv  []float64
	q          []float64
	nh, nhu    []float64
	nhv, nq    []float64
	p          *perf.Profiler
	rainTotal  float64
	coolingSum float64
}

// NewModel builds the storm initial conditions.
func NewModel(prm Params, p *perf.Profiler) (*Model, error) {
	if prm.N < 8 || prm.Steps < 1 || prm.Dt <= 0 || prm.Dt > 0.2 {
		return nil, fmt.Errorf("%w: %+v", ErrBadParams, prm)
	}
	n := prm.N
	m := &Model{
		prm: prm,
		h:   make([]float64, n*n), hu: make([]float64, n*n),
		hv: make([]float64, n*n), q: make([]float64, n*n),
		nh: make([]float64, n*n), nhu: make([]float64, n*n),
		nhv: make([]float64, n*n), nq: make([]float64, n*n),
		p: p,
	}
	addVortex := func(cx, cy, amp, radius float64) {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				r2 := dx*dx + dy*dy
				g := amp * math.Exp(-r2/(2*radius*radius))
				i := y*n + x
				m.h[i] += -g // low-pressure depression
				// Cyclonic rotation around the center.
				m.hu[i] += g * (-dy) / radius
				m.hv[i] += g * dx / radius
				m.q[i] += 0.5 * g
			}
		}
	}
	for i := range m.h {
		m.h[i] = 10 // mean depth
		m.q[i] = 0.2
	}
	switch prm.Dataset {
	case StormKatrina:
		addVortex(float64(n)/2, float64(n)/2, 2.0, float64(n)/6)
	case StormRusa:
		addVortex(float64(n)/3, float64(n)/3, 1.2, float64(n)/10)
		addVortex(2*float64(n)/3, 2*float64(n)/3, 1.0, float64(n)/12)
	default:
		return nil, fmt.Errorf("%w: unknown dataset %d", ErrBadParams, prm.Dataset)
	}
	if p != nil {
		p.SetFootprint("advect", 6<<10)
		p.SetFootprint("pressure", 4<<10)
		p.SetFootprint("microphysics", 3<<10)
		p.SetFootprint("radiation", 2<<10)
		p.SetFootprint("boundary", 2<<10)
	}
	return m, nil
}

// at reads index with the configured boundary scheme.
func (m *Model) at(f []float64, x, y int) float64 {
	n := m.prm.N
	if m.prm.Physics.PeriodicBoundary {
		x = (x + n) % n
		y = (y + n) % n
	} else {
		if x < 0 {
			x = 0
		}
		if x >= n {
			x = n - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= n {
			y = n - 1
		}
	}
	return f[y*n+x]
}

// Step advances one time step (Lax-Friedrichs flux + source terms).
func (m *Model) Step() {
	n := m.prm.N
	dt := m.prm.Dt
	const grav = 9.8
	if m.p != nil {
		m.p.Enter("advect")
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			// Lax-Friedrichs average + central flux differences.
			avg := func(f []float64) float64 {
				return 0.25 * (m.at(f, x+1, y) + m.at(f, x-1, y) + m.at(f, x, y+1) + m.at(f, x, y-1))
			}
			ddx := func(f []float64) float64 { return 0.5 * (m.at(f, x+1, y) - m.at(f, x-1, y)) }
			ddy := func(f []float64) float64 { return 0.5 * (m.at(f, x, y+1) - m.at(f, x, y-1)) }

			h := m.h[i]
			if h < 1e-6 {
				h = 1e-6
			}
			u := m.hu[i] / h
			v := m.hv[i] / h

			m.nh[i] = avg(m.h) - dt*(ddx(m.hu)+ddy(m.hv))
			m.nhu[i] = avg(m.hu) - dt*(u*ddx(m.hu)+v*ddy(m.hu)+grav*h*ddx(m.h))
			m.nhv[i] = avg(m.hv) - dt*(u*ddx(m.hv)+v*ddy(m.hv)+grav*h*ddy(m.h))
			m.nq[i] = avg(m.q) - dt*(u*ddx(m.q)+v*ddy(m.q))
			if m.p != nil && i%16 == 0 {
				m.p.Ops(80)
				m.p.LongOps(1)
				m.p.Load(gridBase + uint64(i)*32)
				m.p.Store(gridBase + uint64(i)*32 + 8)
				// Upwinding-style data-dependent guards.
				m.p.Branch(111, u > 0)
				m.p.Branch(112, v > 0)
			}
		}
	}
	if m.p != nil {
		m.p.Leave()
	}
	// Source terms (the physics options). Disabled schemes still pay
	// their per-cell guard checks, as in the real model's option
	// dispatch, so their methods never drop to exactly zero time.
	ph := m.prm.Physics
	if !ph.Microphysics && m.p != nil {
		m.p.Enter("microphysics")
		m.p.Ops(uint64(len(m.nq)) / 48)
		m.p.Leave()
	}
	if ph.Microphysics {
		if m.p != nil {
			m.p.Enter("microphysics")
		}
		for i := range m.nq {
			if m.nq[i] > 0.5 {
				rain := 0.1 * (m.nq[i] - 0.5)
				m.nq[i] -= rain
				m.nh[i] += 0.05 * rain // latent heating bumps the column
				m.rainTotal += rain
				if m.p != nil && i%32 == 0 {
					m.p.Ops(8)
					m.p.Branch(110, true)
				}
			}
		}
		if m.p != nil {
			m.p.Leave()
		}
	}
	if !ph.Radiation && m.p != nil {
		m.p.Enter("radiation")
		m.p.Ops(uint64(len(m.nh)) / 48)
		m.p.Leave()
	}
	if ph.Radiation {
		if m.p != nil {
			m.p.Enter("radiation")
		}
		for i := range m.nh {
			cool := 0.0005 * (m.nh[i] - 10)
			m.nh[i] -= cool
			m.coolingSum += math.Abs(cool)
		}
		if m.p != nil {
			m.p.Ops(uint64(len(m.nh)) / 4)
			m.p.LongOps(4)
			m.p.Leave()
		}
	}
	if ph.SurfaceDrag {
		for i := range m.nhu {
			m.nhu[i] *= 0.998
			m.nhv[i] *= 0.998
		}
	}
	if m.p != nil {
		m.p.Enter("boundary")
		m.p.Ops(uint64(4 * n))
		m.p.Leave()
	}
	m.h, m.nh = m.nh, m.h
	m.hu, m.nhu = m.nhu, m.hu
	m.hv, m.nhv = m.nhv, m.hv
	m.q, m.nq = m.nq, m.q
}

// Forecast summarizes the run.
type Forecast struct {
	MinHeight, MaxWind float64
	TotalRain          float64
	TotalCooling       float64
	MeanMoisture       float64
}

// Run integrates and summarizes.
func (m *Model) Run() (Forecast, error) {
	for t := 0; t < m.prm.Steps; t++ {
		m.Step()
	}
	var fc Forecast
	fc.MinHeight = math.Inf(1)
	for i := range m.h {
		if m.h[i] < fc.MinHeight {
			fc.MinHeight = m.h[i]
		}
		h := math.Max(m.h[i], 1e-6)
		wind := math.Hypot(m.hu[i]/h, m.hv[i]/h)
		if wind > fc.MaxWind {
			fc.MaxWind = wind
		}
		fc.MeanMoisture += m.q[i]
	}
	fc.MeanMoisture /= float64(len(m.q))
	fc.TotalRain = m.rainTotal
	fc.TotalCooling = m.coolingSum
	if math.IsNaN(fc.MinHeight) || math.IsNaN(fc.MaxWind) ||
		math.IsInf(fc.MaxWind, 0) {
		return fc, errors.New("wrf: forecast diverged")
	}
	return fc, nil
}

// Workload is one 521.wrf_r input.
type Workload struct {
	core.Meta
	Params Params
}

// Benchmark is the 521.wrf_r reproduction.
type Benchmark struct{}

// New returns the benchmark.
func New() *Benchmark { return &Benchmark{} }

// Name implements core.Benchmark.
func (*Benchmark) Name() string { return "521.wrf_r" }

// Area implements core.Benchmark.
func (*Benchmark) Area() string { return "Weather forecasting" }

// Workloads returns SPEC-style inputs plus the twelve Alberta workloads:
// two storm datasets × six physics-option combinations (the script "allows
// for the easy manipulation of different physics options").
func (b *Benchmark) Workloads() ([]core.Workload, error) {
	mk := func(name string, kind core.Kind, ds StormDataset, ph Physics, n, steps int) core.Workload {
		return Workload{
			Meta:   core.Meta{Name: name, Kind: kind},
			Params: Params{N: n, Steps: steps, Dt: 0.02, Dataset: ds, Physics: ph},
		}
	}
	allOn := Physics{Microphysics: true, Radiation: true, SurfaceDrag: true, PeriodicBoundary: true}
	ws := []core.Workload{
		mk("test", core.KindTest, StormKatrina, allOn, 16, 5),
		mk("train", core.KindTrain, StormKatrina, allOn, 32, 25),
		mk("refrate", core.KindRefrate, StormKatrina, allOn, 48, 60),
	}
	options := []struct {
		tag string
		ph  Physics
	}{
		{"allphysics", allOn},
		{"nomicro", Physics{Radiation: true, SurfaceDrag: true, PeriodicBoundary: true}},
		{"norad", Physics{Microphysics: true, SurfaceDrag: true, PeriodicBoundary: true}},
		{"nodrag", Physics{Microphysics: true, Radiation: true, PeriodicBoundary: true}},
		{"reflective", Physics{Microphysics: true, Radiation: true, SurfaceDrag: true}},
		{"dynamicsonly", Physics{PeriodicBoundary: true}},
	}
	for _, ds := range []StormDataset{StormKatrina, StormRusa} {
		for _, opt := range options {
			ws = append(ws, mk(
				fmt.Sprintf("alberta.%s-%s", ds, opt.tag),
				core.KindAlberta, ds, opt.ph, 32, 30))
		}
	}
	return ws, nil
}

// GenerateWorkloads implements core.Generator.
func (b *Benchmark) GenerateWorkloads(seed int64, n int) ([]core.Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wrf: n must be positive, got %d", n)
	}
	var out []core.Workload
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		out = append(out, Workload{
			Meta: core.Meta{Name: core.GeneratedName(seed, i), Kind: core.KindAlberta},
			Params: Params{
				N: 24 + int(s%3)*8, Steps: 15 + int(s%4)*10, Dt: 0.02,
				Dataset: StormDataset(s % 2),
				Physics: Physics{
					Microphysics:     s%2 == 0,
					Radiation:        s%3 != 0,
					SurfaceDrag:      s%5 != 0,
					PeriodicBoundary: s%7 != 0,
				},
			},
		})
	}
	return out, nil
}

// Run implements core.Benchmark.
func (b *Benchmark) Run(w core.Workload, p *perf.Profiler) (core.Result, error) {
	pw, err := b.Prepare(w)
	if err != nil {
		return core.Result{}, err
	}
	return pw.Execute(p)
}

// prepared wraps the workload: model construction initializes the fields the
// integration then evolves, so the whole model lifecycle belongs to the
// measured phase and Prepare only validates the workload type.
type prepared struct {
	b  *Benchmark
	ww Workload
}

// Prepare implements core.Preparer.
func (b *Benchmark) Prepare(w core.Workload) (core.PreparedWorkload, error) {
	ww, ok := w.(Workload)
	if !ok {
		return nil, fmt.Errorf("%w: %T", core.ErrUnknownWorkload, w)
	}
	return &prepared{b: b, ww: ww}, nil
}

// Execute implements core.PreparedWorkload: build the model and integrate.
func (pw *prepared) Execute(p *perf.Profiler) (core.Result, error) {
	b, ww := pw.b, pw.ww
	model, err := NewModel(ww.Params, p)
	if err != nil {
		return core.Result{}, err
	}
	fc, err := model.Run()
	if err != nil {
		return core.Result{}, fmt.Errorf("wrf: %s: %w", ww.Name, err)
	}
	sum := core.NewChecksum().
		AddFloat(fc.MinHeight).AddFloat(fc.MaxWind).
		AddFloat(fc.TotalRain).AddFloat(fc.TotalCooling).
		AddFloat(fc.MeanMoisture)
	return core.Result{
		Benchmark: b.Name(),
		Workload:  ww.Name,
		Kind:      ww.WorkloadKind(),
		Checksum:  sum.Value(),
	}, nil
}
