package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across tests: the standard-library source import
// is the dominant cost and its cache makes every later fixture cheap.
var (
	loaderOnce sync.Once
	sharedLdr  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLdr, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedLdr
}

// expectation is one `// want <rule-id> "substr"` annotation in a fixture.
type expectation struct {
	line   int
	rule   string
	substr string
}

// wantRE matches `want <rule-id>` with an optional quoted or backquoted
// message substring.
var wantRE = regexp.MustCompile("// want ([a-z-]+)(?: (?:\"([^\"]*)\"|`([^`]*)`))?")

func parseWants(t *testing.T, path string) []expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	var wants []expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		substr := m[2]
		if substr == "" {
			substr = m[3]
		}
		wants = append(wants, expectation{line: i + 1, rule: m[1], substr: substr})
	}
	return wants
}

// runFixture lints one fixture file with one rule under a synthetic
// package path and matches the diagnostics against the fixture's want
// annotations, both ways.
func runFixture(t *testing.T, rule Rule, pkgpath, fixture string) {
	t.Helper()
	l := testLoader(t)
	path := filepath.Join("testdata", fixture)
	pass, err := l.LoadFiles(pkgpath, path)
	if err != nil {
		t.Fatalf("loading %s: %v", fixture, err)
	}
	matchWants(t, fixture, path, Lint(pass, []Rule{rule}))
}

// runProgramFixture is runFixture for interprocedural rules: the fixture
// becomes a one-package Program.
func runProgramFixture(t *testing.T, rule ProgramRule, pkgpath, fixture string) {
	t.Helper()
	l := testLoader(t)
	path := filepath.Join("testdata", fixture)
	pass, err := l.LoadFiles(pkgpath, path)
	if err != nil {
		t.Fatalf("loading %s: %v", fixture, err)
	}
	matchWants(t, fixture, path, NewProgram(pass).Lint(nil, []ProgramRule{rule}))
}

// matchWants matches diagnostics against the fixture's want annotations,
// both ways.
func matchWants(t *testing.T, fixture, path string, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, path)

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Line != w.line || d.RuleID != w.rule {
				continue
			}
			if w.substr != "" && !strings.Contains(d.Message, w.substr) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("%s:%d: expected %s diagnostic (substr %q), got none", fixture, w.line, w.rule, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s", fixture, d)
		}
	}
}

// benchPkg is a synthetic benchmark-kernel package path used to trigger
// the benchmark-scoped rules; statsPkg is outside every special scope.
const (
	benchPkg = "repro/internal/benchmarks/fixture"
	statsPkg = "repro/internal/stats/fixture"
)

func TestNoGlobalRand(t *testing.T) {
	runFixture(t, NoGlobalRand{}, benchPkg, "rand.go")
}

func TestNoWallClock(t *testing.T) {
	runFixture(t, NoWallClock{}, statsPkg, "wallclock.go")
}

func TestNoWallClockAllowedInTimingPackages(t *testing.T) {
	l := testLoader(t)
	for _, pkg := range []string{"repro/internal/harness", "repro/internal/perf"} {
		pass, err := l.LoadFiles(pkg, filepath.Join("testdata", "wallclock.go"))
		if err != nil {
			t.Fatal(err)
		}
		if diags := Lint(pass, []Rule{NoWallClock{}}); len(diags) != 0 {
			t.Errorf("%s: wall-clock reads should be allowed, got %v", pkg, diags)
		}
	}
}

func TestNoMapOrderDependence(t *testing.T) {
	runFixture(t, NoMapOrderDependence{}, statsPkg, "maporder.go")
}

// TestNoMapOrderDependenceInternedSlots pins the interned-slot-table
// pattern the bytecode compilers rely on (first-seen-order interning,
// keyed inversion) as clean, and the raw-range leaks as findings. It
// runs under the benchmark package scope, where the compilers live.
func TestNoMapOrderDependenceInternedSlots(t *testing.T) {
	runFixture(t, NoMapOrderDependence{}, benchPkg, "internslots.go")
}

// TestNoMapOrderDependenceIntervalHistogram pins the interval-histogram
// pattern the sampled-execution profiler is built on (fixed-size BBV
// signature array indexed by a deterministic hash bucket, normalized by
// index-order walks) as clean, and the map-keyed histogram variants that
// leak iteration order into the signature or its norm as findings. It
// runs under the perf package path, where the signatures live.
func TestNoMapOrderDependenceIntervalHistogram(t *testing.T) {
	runFixture(t, NoMapOrderDependence{}, "repro/internal/perf", "sighist.go")
}

func TestNoGoroutinesInKernels(t *testing.T) {
	runFixture(t, NoGoroutinesInKernels{}, benchPkg, "goroutine.go")
}

func TestGoroutinesAllowedOutsideKernels(t *testing.T) {
	l := testLoader(t)
	pass, err := l.LoadFiles(statsPkg, filepath.Join("testdata", "goroutine.go"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Lint(pass, []Rule{NoGoroutinesInKernels{}}); len(diags) != 0 {
		t.Errorf("goroutines outside kernels should pass, got %v", diags)
	}
}

func TestForbiddenImports(t *testing.T) {
	runFixture(t, ForbiddenImports{}, benchPkg, "imports.go")
}

func TestImportsAllowedOutsideKernels(t *testing.T) {
	l := testLoader(t)
	pass, err := l.LoadFiles(statsPkg, filepath.Join("testdata", "imports.go"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Lint(pass, []Rule{ForbiddenImports{}}); len(diags) != 0 {
		t.Errorf("imports outside kernels should pass, got %v", diags)
	}
}

func TestChecksumDiscipline(t *testing.T) {
	runFixture(t, ChecksumDiscipline{}, benchPkg, "checksum.go")
}

func TestNoProfilerInPrepare(t *testing.T) {
	runFixture(t, NoProfilerInPrepare{}, benchPkg, "prepare.go")
}

func TestProfilerInPrepareAllowedOutsideBenchmarks(t *testing.T) {
	l := testLoader(t)
	pass, err := l.LoadFiles(statsPkg, filepath.Join("testdata", "prepare.go"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Lint(pass, []Rule{NoProfilerInPrepare{}}); len(diags) != 0 {
		t.Errorf("Prepare outside benchmark packages should pass, got %v", diags)
	}
}

func TestAllowSuppression(t *testing.T) {
	runFixture(t, NoWallClock{}, statsPkg, "allow.go")
}

func TestStaleSuppression(t *testing.T) {
	runFixture(t, NoWallClock{}, statsPkg, "stale.go")
}

func TestGuardedBy(t *testing.T) {
	runFixture(t, GuardedBy{}, statsPkg, "guardedby.go")
}

func TestGoroutineContext(t *testing.T) {
	runFixture(t, GoroutineContext{}, statsPkg, "ctxgoroutine.go")
}

func TestBlockingSend(t *testing.T) {
	runFixture(t, BlockingSend{}, statsPkg, "send.go")
}

func TestWorkerJoin(t *testing.T) {
	runFixture(t, WorkerJoin{}, statsPkg, "join.go")
}

func TestNondeterministicTaint(t *testing.T) {
	runProgramFixture(t, NondeterministicTaint{}, statsPkg, "taint.go")
}

func TestTaintSanctionedInTimingPackage(t *testing.T) {
	l := testLoader(t)
	pass, err := l.LoadFiles("repro/internal/harness", filepath.Join("testdata", "taint_timing.go"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := NewProgram(pass).Lint(nil, DefaultProgramRules()); len(diags) != 0 {
		t.Errorf("clock reads in the timing package must be sanctioned sources, got %v", diags)
	}
}

// TestLoaderSharesPasses pins the pass cache: a package type-checked as a
// dependency is the same Pass — and the same *types.Package — when later
// loaded as a lint root, so cross-package objects are identical and no
// package is checked twice.
func TestLoaderSharesPasses(t *testing.T) {
	l := testLoader(t)
	svc, err := l.LoadDir(filepath.Join(l.RepoRoot, "internal/service"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.LoadDir(filepath.Join(l.RepoRoot, "internal/harness/report"))
	if err != nil {
		t.Fatal(err)
	}
	again, err := l.LoadDir(filepath.Join(l.RepoRoot, "internal/harness/report"))
	if err != nil {
		t.Fatal(err)
	}
	if rep != again {
		t.Error("LoadDir re-checked an already loaded package")
	}
	found := false
	for _, imp := range svc.Pkg.Imports() {
		if imp.Path() == "repro/internal/harness/report" {
			found = true
			if imp != rep.Pkg {
				t.Error("import-resolved report package is not the pass-cached one")
			}
		}
	}
	if !found {
		t.Fatal("internal/service does not import the report package?")
	}
	var hasReport bool
	for _, p := range l.Passes() {
		if p.PkgPath == "repro/internal/harness/report" {
			hasReport = true
			if p != rep {
				t.Error("Passes() returns a different report pass")
			}
		}
	}
	if !hasReport {
		t.Error("Passes() is missing the report package")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 7, RuleID: "no-wall-clock", Message: "m"}
	if got, want := d.String(), "a/b.go:7: no-wall-clock: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultRuleIDs(t *testing.T) {
	want := []string{
		"no-global-rand",
		"no-wall-clock",
		"no-map-order-dependence",
		"no-goroutines-in-kernels",
		"forbidden-imports",
		"checksum-discipline",
		"no-profiler-in-prepare",
		"guardedby",
		"goroutine-context",
		"blocking-send",
		"worker-join",
	}
	rules := DefaultRules()
	if len(rules) != len(want) {
		t.Fatalf("DefaultRules() has %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.ID() != want[i] {
			t.Errorf("rule %d: id %q, want %q", i, r.ID(), want[i])
		}
		if r.Doc() == "" {
			t.Errorf("rule %s: empty Doc", r.ID())
		}
	}
}

func TestDefaultProgramRuleIDs(t *testing.T) {
	want := []string{"nondeterministic-taint"}
	rules := DefaultProgramRules()
	if len(rules) != len(want) {
		t.Fatalf("DefaultProgramRules() has %d rules, want %d", len(rules), len(want))
	}
	for i, r := range rules {
		if r.ID() != want[i] {
			t.Errorf("program rule %d: id %q, want %q", i, r.ID(), want[i])
		}
		if r.Doc() == "" {
			t.Errorf("program rule %s: empty Doc", r.ID())
		}
	}
}

func TestSelectDirs(t *testing.T) {
	l := testLoader(t)
	all, err := SelectDirs(l.RepoRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("./... selected no surface directories")
	}
	for _, d := range all {
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata directory selected: %s", d)
		}
	}
	one, err := SelectDirs(l.RepoRoot, []string{"internal/stats"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "internal/stats" {
		t.Errorf("internal/stats selected %v", one)
	}
	sub, err := SelectDirs(l.RepoRoot, []string{"./internal/benchmarks/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) < 2 {
		t.Errorf("internal/benchmarks/... selected only %v", sub)
	}
	for _, d := range sub {
		if !strings.HasPrefix(d, "internal/benchmarks") {
			t.Errorf("pattern leaked outside subtree: %s", d)
		}
	}
	none, err := SelectDirs(l.RepoRoot, []string{"internal/perf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("internal/perf is outside the surface, selected %v", none)
	}
}

// TestRepoIsClean is the acceptance gate: the repository's own analyzed
// surface must lint clean — per-package rules, the interprocedural taint
// engine, and the stale-suppression audit all at once. Every package is
// loaded exactly once (the Loader's pass cache); the non-surface module
// packages the loads pulled in become call-graph context.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole surface")
	}
	l := testLoader(t)
	dirs, err := SurfaceDirs(l.RepoRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("suspiciously small surface: %v", dirs)
	}
	var passes []*Pass
	for _, dir := range dirs {
		pass, err := l.LoadDir(filepath.Join(l.RepoRoot, dir))
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		if pass == nil {
			continue
		}
		passes = append(passes, pass)
	}
	prog := NewProgram(passes...).WithContext(l.Passes()...)
	var failures []string
	for _, d := range prog.Lint(DefaultRules(), DefaultProgramRules()) {
		failures = append(failures, d.String())
	}
	if len(failures) > 0 {
		t.Errorf("repository surface has %d violation(s):\n%s",
			len(failures), strings.Join(failures, "\n"))
	}
}

// Example output shape kept in sync with the README's sample run.
func ExampleDiagnostic_String() {
	d := Diagnostic{
		File:    "internal/harness/report/figures.go",
		Line:    78,
		RuleID:  "no-map-order-dependence",
		Message: "float others accumulated in map iteration order; the rounded sum differs run to run",
	}
	fmt.Println(d)
	// Output: internal/harness/report/figures.go:78: no-map-order-dependence: float others accumulated in map iteration order; the rounded sum differs run to run
}
