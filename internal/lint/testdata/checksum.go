// Fixture for the checksum-discipline rule: checksum/hash helper results
// must be folded onward, never dropped.
package fixture

// Checksum mirrors the repo's core.Checksum: a value type whose Add
// methods return the folded value.
type Checksum uint64

// NewChecksum returns the offset basis.
func NewChecksum() Checksum { return 14695981039346656037 }

// AddUint64 folds v into the checksum.
func (c Checksum) AddUint64(v uint64) Checksum { return (c ^ Checksum(v)) * 1099511628211 }

// hashBytes is a name-matched helper with a plain uint64 result.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

// rehashInPlace has no results: calling it for effect discards nothing.
func rehashInPlace(c *Checksum) { *c = c.AddUint64(1) }

func discards(data []uint64) uint64 {
	c := NewChecksum()
	NewChecksum()      // want checksum-discipline "result of NewChecksum is discarded"
	c.AddUint64(1)     // want checksum-discipline "result of AddUint64 is discarded"
	_ = c.AddUint64(2) // want checksum-discipline "result of AddUint64 is discarded"
	hashBytes(nil)     // want checksum-discipline "result of hashBytes is discarded"
	rehashInPlace(&c)  // void call: nothing to discard
	for _, v := range data {
		c = c.AddUint64(v) // folded onward: fine
	}
	return uint64(c) + hashBytes([]byte("x"))
}
