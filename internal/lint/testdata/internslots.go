// Fixture for the interned-slot-table pattern used by the bytecode
// compilers (perlbench variable slots, gcc locals, xalan template
// streams): a name→slot map is *written* in deterministic first-seen
// order during an AST/source walk and *read* by key or inverted with
// keyed writes — never ranged to build ordered state. The no-map-order
// rule must stay silent on the blessed shapes and still fire when the
// table leaks into map-iteration order.
package fixture

import "sort"

// internSlots assigns slot numbers in first-seen source order: writes
// are keyed lookups driven by a deterministic slice walk, so the map's
// own iteration order is never consulted. No diagnostic.
func internSlots(names []string) map[string]int {
	slots := make(map[string]int, len(names))
	for _, name := range names {
		if _, ok := slots[name]; !ok {
			slots[name] = len(slots)
		}
	}
	return slots
}

// invertSlots rebuilds the dense slot→name table with writes keyed by
// the slot value: every key lands at its own index, so visit order is
// irrelevant. No diagnostic.
func invertSlots(slots map[string]int) []string {
	names := make([]string, len(slots))
	for name, slot := range slots {
		names[slot] = name
	}
	return names
}

// dumpSlotsSorted is the blessed way to enumerate a slot table when the
// dense inversion is unavailable: collect, then sort. No diagnostic.
func dumpSlotsSorted(slots map[string]int) []string {
	var names []string
	for name := range slots {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// dumpSlotsRaw ranges the table straight into a slice: slot order would
// differ run to run, and so would any bytecode emitted from it.
func dumpSlotsRaw(slots map[string]int) []string {
	var names []string
	for name := range slots {
		names = append(names, name) // want no-map-order-dependence "never sorted"
	}
	return names
}

// hashSlots folds names into a multiplicative hash in map order: the
// checksum drifts run to run.
func hashSlots(slots map[string]int) uint64 {
	var sum uint64
	for name := range slots {
		sum = sum*31 + uint64(len(name)) // want no-map-order-dependence "folded in map iteration order"
	}
	return sum
}

// slotMask is an order-independent integer fold over the table: xor is
// commutative and exact. No diagnostic.
func slotMask(slots map[string]int) uint64 {
	var mask uint64
	for _, slot := range slots {
		mask ^= 1 << (uint(slot) & 63)
	}
	return mask
}
