// Fixture for the no-map-order-dependence rule.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// appendNoSort builds a slice in map order and never sorts it.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want no-map-order-dependence "never sorted"
	}
	return keys
}

// appendThenSort is the blessed idiom: collect, then sort.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSortSlice also counts: any sort./slices. call naming the slice.
func appendThenSortSlice(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// floatFold accumulates a float in map order: the rounded sum drifts.
func floatFold(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want no-map-order-dependence "float total accumulated"
	}
	return total
}

// intSum is exact and commutative: order cannot matter.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// keyedWrites land on the range key: order-independent by construction.
func keyedWrites(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// hashFold mixes a multiplicative hash in map order.
func hashFold(m map[string]uint64) uint64 {
	h := uint64(17)
	for _, v := range m {
		h = h*31 + v // want no-map-order-dependence "folded in map iteration order"
	}
	return h
}

// xorFold is commutative bit mixing: order-independent.
func xorFold(m map[string]uint64) uint64 {
	h := uint64(0)
	for _, v := range m {
		h = h ^ v
	}
	return h
}

// methodFold threads an accumulator through a method call in map order.
type folder uint64

func (f folder) add(v uint64) folder { return folder(uint64(f)*31 + v) }

func methodFold(m map[string]uint64) folder {
	var f folder
	for _, v := range m {
		f = f.add(v) // want no-map-order-dependence "folded in map iteration order"
	}
	return f
}

// printsInLoop emits output in map order.
func printsInLoop(m map[string]int) string {
	var sb strings.Builder
	for k, v := range m {
		fmt.Fprintf(&sb, "%s=%d\n", k, v) // want no-map-order-dependence "fmt.Fprintf"
	}
	for k := range m {
		sb.WriteString(k) // want no-map-order-dependence "WriteString"
	}
	return sb.String()
}

// loopLocalBuilder's writer dies with the iteration: per-key text is fine.
func loopLocalBuilder(m map[string]int) map[string]string {
	out := map[string]string{}
	for k, v := range m {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s=%d", k, v)
		out[k] = sb.String()
	}
	return out
}

// sliceRange is not a map range at all.
func sliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
