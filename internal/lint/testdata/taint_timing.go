// Fixture proving wall-clock reads are sanctioned taint sources inside
// the timing packages: loaded under the internal/harness package path,
// the same clock→Measurement shape that taint.go flags must stay silent
// (the harness owns WallSeconds by design).
package fixture

import (
	"time"

	"repro/internal/harness/report"
)

func timedProduce() report.Measurement {
	return report.Measurement{Benchmark: "x", WallSeconds: elapsed()}
}

func elapsed() float64 {
	start := time.Now()
	return time.Since(start).Seconds()
}
