// Fixture for the blocking-send rule: bare channel sends can block
// shutdown; sends inside a select or on locally made buffered channels
// cannot (locally, at least — the bound is the buffer).
package fixture

import "context"

func relay(ctx context.Context, out chan<- int, v int) {
	out <- v // want blocking-send "outside a select"
	select {
	case out <- v:
	case <-ctx.Done():
	}
}

func buffered(n int, v int) chan int {
	ch := make(chan int, n)
	ch <- v
	return ch
}

func unbuffered(v int) {
	ch := make(chan int)
	ch <- v // want blocking-send "outside a select"
	close(ch)
}
