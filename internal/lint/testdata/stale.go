// Fixture for stale-suppression detection: an //lint:allow must suppress
// a real finding to stay; unused and unknown-rule allows are findings
// themselves. Exercised with the no-wall-clock rule.
package fixture

import "time"

func used() time.Time {
	return time.Now() //lint:allow no-wall-clock fixture: legitimate suppression
}

func unused() int {
	//lint:allow no-wall-clock nothing here reads the clock // want stale-suppression "matches no finding"
	return 42
}

//lint:allow no-such-rule this id is not in the registry // want stale-suppression "unknown rule"
func alsoClean() {}
