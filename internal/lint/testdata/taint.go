// Fixture for the interprocedural nondeterministic-taint rule: sources
// several hops below a report sink must be reported with the full call
// chain, and sources no sink can reach must stay silent.
package fixture

import (
	"os"
	"time"

	"repro/internal/harness/report"
)

// produce is the sink: it returns a report.Measurement.
func produce() report.Measurement {
	return report.Measurement{Benchmark: "x", WallSeconds: mid()}
}

// Three hops between the sink and the clock read.
func mid() float64 { return inner() }

func inner() float64 { return leaf() }

func leaf() float64 {
	return float64(time.Now().UnixNano()) // want nondeterministic-taint "call chain: produce → mid → inner → leaf"
}

// tag consumes a Measurement (parameter sink) and reaches an environment
// read one hop down.
func tag(m report.Measurement) string {
	return m.Benchmark + hostTag()
}

func hostTag() string {
	h, _ := os.Hostname() // want nondeterministic-taint "environment read os.Hostname"
	return h
}

// cleanProduce touches no source: no finding.
func cleanProduce() report.Measurement {
	return report.Measurement{Benchmark: "y", WallSeconds: 1.5}
}

// orphan reads the clock but nothing on a sink path calls it, so the
// taint rule stays silent (the per-function no-wall-clock rule is the
// one that owns this case).
func orphan() time.Duration {
	return time.Since(time.Unix(0, 0))
}
