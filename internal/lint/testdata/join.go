// Fixture for the worker-join rule: every spawned goroutine needs join
// evidence — a WaitGroup the spawner waits on, or a completion signal
// (send/close/Done) the spawner can observe.
package fixture

import "sync"

func fanout(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			f(v)
		}(it)
	}
	wg.Wait()
}

func fireAndForget(f func()) {
	go f() // want worker-join "never joined"
}

func signaled(f func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- f() }()
	return <-ch
}

var pumpDone = make(chan struct{})

// runs spawns a named function whose body closes a channel: the static
// callee provides the completion signal.
func runs() {
	go pump()
	<-pumpDone
}

func pump() {
	close(pumpDone)
}
