// Fixture for the goroutine-context rule: where a context.Context is in
// scope, spawned goroutines must reference one.
package fixture

import "context"

func spawnBad(ctx context.Context, work func()) {
	go work() // want goroutine-context "ignores the context"
	<-ctx.Done()
}

func spawnGood(ctx context.Context, work func(context.Context)) {
	go work(ctx)
}

func spawnLit(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func spawnDerived(ctx context.Context, work func(context.Context)) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	go work(sub)
}

// noCtx has nothing to propagate: exempt.
func noCtx(work func()) {
	go work()
}
