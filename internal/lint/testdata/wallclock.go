// Fixture for the no-wall-clock rule: time.Now/time.Since are reserved
// for internal/harness and internal/perf.
package fixture

import "time"

func reads() time.Duration {
	start := time.Now()      // want no-wall-clock "time.Now"
	return time.Since(start) // want no-wall-clock "time.Since"
}

func allowedUses() time.Time {
	// Constructing times and durations is fine; only reading the clock is
	// restricted.
	d := 3 * time.Second
	return time.Unix(0, 0).Add(d)
}
