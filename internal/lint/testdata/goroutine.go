// Fixture for the no-goroutines-in-kernels rule. Loaded under a
// benchmark package path the `go` statements are violations; under any
// other path the rule stays silent (scoping is covered by the test).
package fixture

func spawns(ch chan int) int {
	go func() { ch <- 1 }() // want no-goroutines-in-kernels "go statement"
	go helper(ch)           // want no-goroutines-in-kernels "go statement"
	return <-ch + <-ch
}

func helper(ch chan int) { ch <- 2 }

func sequential(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
