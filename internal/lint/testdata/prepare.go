// Fixture for the no-profiler-in-prepare rule. Loaded under a benchmark
// package path the profiler touches inside Prepare methods are violations;
// Execute and free functions may use the profiler freely, and passing a
// literal nil profiler through a constructor is sanctioned.
package fixture

import "repro/internal/perf"

type benchFixture struct {
	prof *perf.Profiler
}

type preparedFixture struct {
	data []byte
}

// Prepare with a profiler parameter: the signature itself is a violation,
// and so is every use of the parameter.
func (b *benchFixture) Prepare(n int, p *perf.Profiler) (*preparedFixture, error) { // want no-profiler-in-prepare "Prepare takes a"
	p.Ops(4) // want no-profiler-in-prepare `value "p" used inside Prepare`
	return &preparedFixture{data: make([]byte, n)}, nil
}

type benchFieldFixture struct {
	prof *perf.Profiler
}

// Prepare reaching the profiler through a receiver field is a violation, as
// is constructing one via the perf package.
func (b *benchFieldFixture) Prepare(n int) (*preparedFixture, error) {
	b.prof.Ops(1) // want no-profiler-in-prepare "value used inside Prepare"
	perf.New()    // want no-profiler-in-prepare "perf package referenced"
	return &preparedFixture{data: make([]byte, n)}, nil
}

type benchCleanFixture struct{}

// Prepare passing a literal nil profiler to shared instrumented helpers is
// the sanctioned pattern and must not be flagged.
func (b *benchCleanFixture) Prepare(n int) (*preparedFixture, error) {
	return &preparedFixture{data: instrumented(n, nil)}, nil
}

// Execute is the measured phase; profiler use here is fine.
func (pw *preparedFixture) Execute(p *perf.Profiler) int {
	p.Ops(uint64(len(pw.data)))
	return len(pw.data)
}

// instrumented stands in for a constructor shared by Prepare (nil profiler)
// and Execute (live profiler).
func instrumented(n int, p *perf.Profiler) []byte {
	if p != nil {
		p.Ops(uint64(n))
	}
	return make([]byte, n)
}

// prepareFreeFunc is not a method named Prepare, so it is out of scope even
// with a profiler in hand.
func prepareFreeFunc(p *perf.Profiler) {
	p.Ops(1)
}
