// Fixture for the forbidden-imports rule: benchmark kernels are pure
// compute and may not reach the OS, processes, the network, or unsafe.
package fixture

import (
	"net"     // want forbidden-imports `imports "net"`
	"os"      // want forbidden-imports `imports "os"`
	"os/exec" // want forbidden-imports `imports "os/exec"`
	"unsafe"  // want forbidden-imports `imports "unsafe"`

	"math"    // pure compute: fine
	"strings" // pure compute: fine
)

var (
	_ = os.Args
	_ = exec.ErrNotFound
	_ = net.IPv4len
	_ = unsafe.Sizeof(0)
	_ = math.Pi
	_ = strings.TrimSpace
)
