// Fixture for the guardedby rule: //lint:guardedby fields may only be
// touched under their declared mutex, from *Locked helpers, or in
// constructors.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //lint:guardedby mu
	// hits uses the doc-comment annotation form.
	//lint:guardedby mu
	hits int
	// free has no annotation and is never checked.
	free int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.hits++
}

func (c *counter) bad() int {
	return c.n // want guardedby `n is guarded by "mu"`
}

func (c *counter) alsoBad() {
	c.hits++ // want guardedby `hits is guarded by "mu"`
	c.free++
}

// snapshotLocked runs under the caller's lock by convention.
func (c *counter) snapshotLocked() int {
	return c.n + c.hits
}

// newCounter owns the value exclusively until it returns.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

type table struct {
	rw   sync.RWMutex
	rows map[string]int //lint:guardedby rw
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func (t *table) badLen() int {
	return len(t.rows) // want guardedby `rows is guarded by "rw"`
}
