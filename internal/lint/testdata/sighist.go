// Fixture for the interval-histogram pattern the sampled-execution
// profiler relies on (internal/perf BBV signatures): per-interval basic
// block counts land in a fixed-size array indexed by a deterministic
// hash bucket, and the signature is normalized by walking that array in
// index order. The no-map-order rule must stay silent on the blessed
// array shape and still fire when a map-keyed histogram leaks its
// iteration order into the signature vector or its norm.
package fixture

import "sort"

// sigDims mirrors perf.SigDims: the bucketed signature width.
const sigDims = 64

// sigBucket folds a block address into a bucket with a multiplicative
// finalizer — pure arithmetic, identical every run. No diagnostic.
func sigBucket(pc uint64) int {
	pc *= 0x9e3779b97f4a7c15
	pc ^= pc >> 29
	return int(pc % sigDims)
}

// histogramArray is the blessed idiom: counts accumulate into a dense
// array at hash-derived indices, so the visit order of the instruction
// stream is the only order in play and it is deterministic by
// construction. No diagnostic.
func histogramArray(blocks []uint64, weights []uint32) [sigDims]uint32 {
	var sig [sigDims]uint32
	for i, pc := range blocks {
		sig[sigBucket(pc)] += weights[i]
	}
	return sig
}

// normalizeArray walks the array in index order to build the unit-norm
// signature: slice iteration is ordered, nothing drifts. No diagnostic.
func normalizeArray(sig [sigDims]uint32) [sigDims]float64 {
	var total float64
	for _, c := range sig {
		total += float64(c)
	}
	var out [sigDims]float64
	if total == 0 {
		return out
	}
	for i, c := range sig {
		out[i] = float64(c) / total
	}
	return out
}

// histogramMapFlatten builds the histogram in a map and ranges it
// straight into the signature slice: bucket order differs run to run,
// and so does every downstream clustering distance.
func histogramMapFlatten(hist map[uint64]uint32) []uint32 {
	var sig []uint32
	for _, c := range hist {
		sig = append(sig, c) // want no-map-order-dependence "never sorted"
	}
	return sig
}

// histogramMapNorm accumulates the float norm in map order: the rounded
// total — and therefore the normalized signature — drifts per run.
func histogramMapNorm(hist map[uint64]float64) float64 {
	var total float64
	for _, c := range hist {
		total += c // want no-map-order-dependence "accumulated in map iteration order"
	}
	return total
}

// histogramMapKeyed converts a sparse map histogram into the dense
// bucketed array with writes keyed by the hashed bucket: each count
// lands at its own index and integer adds commute, so iteration order
// cannot matter. No diagnostic.
func histogramMapKeyed(hist map[uint64]uint32) [sigDims]uint32 {
	var sig [sigDims]uint32
	for pc, c := range hist {
		sig[sigBucket(pc)] += c
	}
	return sig
}

// histogramMapSorted is the blessed escape hatch when the map must be
// enumerated: collect the keys, sort, then walk deterministically. No
// diagnostic.
func histogramMapSorted(hist map[uint64]uint32) []uint32 {
	keys := make([]uint64, 0, len(hist))
	for pc := range hist {
		keys = append(keys, pc)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sig := make([]uint32, 0, len(keys))
	for _, pc := range keys {
		sig = append(sig, hist[pc])
	}
	return sig
}
