// Fixture for the no-global-rand rule: only a seeded *rand.Rand may
// produce randomness; the auto-seeded package-level source may not.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraws() int {
	n := rand.Intn(10)                 // want no-global-rand "global rand.Intn"
	f := rand.Float64()                // want no-global-rand "global rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want no-global-rand "global rand.Shuffle"
	m := randv2.IntN(4)                // want no-global-rand "global rand.IntN"
	return n + int(f) + m
}

func seededDraws(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are allowed
	zipf := rand.NewZipf(rng, 1.2, 1, 100)
	pcg := randv2.New(randv2.NewPCG(1, 2))
	return rng.Intn(10) + int(zipf.Uint64()) + pcg.IntN(3)
}
