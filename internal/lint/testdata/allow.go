// Fixture for //lint:allow suppression handling, exercised with the
// no-wall-clock rule.
package fixture

import "time"

func suppressed() time.Duration {
	start := time.Now() //lint:allow no-wall-clock fixture demonstrates trailing suppression
	//lint:allow no-wall-clock fixture demonstrates line-above suppression
	mid := time.Now()
	return mid.Sub(start)
}

func notSuppressed() time.Time {
	//lint:allow no-wall-clock
	a := time.Now() // want no-wall-clock "time.Now"
	//lint:allow no-global-rand wrong rule id does not suppress
	b := time.Now()             // want no-wall-clock "time.Now"
	return a.Add(time.Since(b)) // want no-wall-clock "time.Since"
}
