package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// funcNode is one declared function or method in the program: its type
// object plus the syntax and pass needed to inspect its body.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pass *Pass
}

// callEdge is one statically resolvable call site inside a function.
// Calls made inside function literals are attributed to the enclosing
// declared function: a closure runs with its creator's determinism
// obligations.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// callGraph maps every declared function in the program to its node and
// outgoing static call edges. Dynamic calls (interface methods without a
// body in the program, function values) simply have no outgoing edge —
// taint propagation is best-effort across them and exact everywhere else.
type callGraph struct {
	nodes map[*types.Func]*funcNode
	calls map[*types.Func][]callEdge
}

// buildCallGraph walks every function body in the passes. The passes must
// share one FileSet and one type-checked object world so that a call in
// package A to a function declared in package B resolves to the same
// *types.Func that keys B's node.
func buildCallGraph(passes []*Pass) *callGraph {
	g := &callGraph{
		nodes: map[*types.Func]*funcNode{},
		calls: map[*types.Func][]callEdge{},
	}
	for _, p := range passes {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok || g.nodes[fn] != nil {
					continue
				}
				g.nodes[fn] = &funcNode{fn: fn, decl: fd, pass: p}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(p.Info, call); callee != nil {
						g.calls[fn] = append(g.calls[fn], callEdge{callee: callee, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	return g
}

// staticCallee resolves a call expression to the *types.Func it invokes,
// or nil for dynamic calls (function values, builtins) and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// sortedNodes returns every node ordered by source position (file name,
// then offset) so program rules iterate deterministically.
func (g *callGraph) sortedNodes() []*funcNode {
	out := make([]*funcNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		pi := out[i].pass.Fset.Position(out[i].decl.Pos())
		pj := out[j].pass.Fset.Position(out[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}

// callersOf inverts the edge set: callee → callers, deduplicated.
func (g *callGraph) callersOf() map[*types.Func][]*types.Func {
	rev := map[*types.Func][]*types.Func{}
	seen := map[[2]*types.Func]bool{}
	for caller, edges := range g.calls {
		for _, e := range edges {
			k := [2]*types.Func{caller, e.callee}
			if seen[k] {
				continue
			}
			seen[k] = true
			rev[e.callee] = append(rev[e.callee], caller)
		}
	}
	return rev
}
