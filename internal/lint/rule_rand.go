package lint

import "go/ast"

// NoGlobalRand flags calls to the package-level math/rand (and
// math/rand/v2) functions: Intn, Float64, Shuffle, etc. draw from the
// auto-seeded global source, so workload generation that uses them cannot
// be replayed from a recorded seed. Constructors that build an explicit
// seeded generator (rand.New, rand.NewSource, ...) are the only allowed
// entry points; everything else must go through a *rand.Rand.
type NoGlobalRand struct{}

func (NoGlobalRand) ID() string { return "no-global-rand" }

func (NoGlobalRand) Doc() string {
	return "kernel code must draw randomness from a seeded *rand.Rand, never the global math/rand source"
}

// globalRandAllowed lists the package-level functions that construct or
// parameterize an explicit generator rather than drawing from the global
// source.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *rand.Rand
	"NewPCG":     true, // math/rand/v2 seeded source
	"NewChaCha8": true, // math/rand/v2 seeded source
}

func (r NoGlobalRand) Check(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := pkgCall(p, call, path); ok && !globalRandAllowed[name] {
					out = append(out, p.diag(r.ID(), call,
						"call to global rand.%s; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so the workload is replayable", name))
				}
			}
			return true
		})
	}
	return out
}
