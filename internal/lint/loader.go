package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module without
// shelling out to the go tool. Imports of the module itself are resolved
// from source relative to the repository root; standard-library imports go
// through the compiler's source importer. All type-checked packages are
// cached, so checking many packages in one process pays the (dominant)
// standard-library cost once.
//
// Module-internal packages are additionally cached as full Passes (with
// types.Info populated): a package type-checked once as a dependency is
// the same *Pass — and therefore holds the same *types.Func objects — when
// later linted as a root. That identity is what lets the interprocedural
// call graph connect callers and callees across package boundaries.
type Loader struct {
	Fset *token.FileSet
	// RepoRoot is the directory containing go.mod.
	RepoRoot string
	// ModulePath is the module path declared in go.mod (e.g. "repro").
	ModulePath string

	std    types.Importer
	cache  map[string]*types.Package
	passes map[string]*Pass
}

// NewLoader builds a Loader rooted at the module containing dir (dir or any
// of its ancestors must hold a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		RepoRoot:   root,
		ModulePath: modpath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
		passes:     map[string]*Pass{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and extracts the
// module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// pkgPathFor maps a directory inside the repository to its import path.
func (l *Loader) pkgPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.RepoRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.RepoRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the non-test .go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, names, nil
}

// LoadDir parses and type-checks the package in dir, returning a Pass ready
// for rules to inspect. Directories with no non-test .go files return a nil
// Pass and no error. The result is cached by import path, so a package
// already type-checked as someone else's dependency is returned as-is
// rather than re-parsed and re-checked.
func (l *Loader) LoadDir(dir string) (*Pass, error) {
	pkgpath, err := l.pkgPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.passes[pkgpath]; ok {
		return p, nil
	}
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	pass, err := l.check(pkgpath, files)
	if err != nil {
		return nil, err
	}
	l.passes[pkgpath] = pass
	l.cache[pkgpath] = pass.Pkg
	return pass, nil
}

// Passes returns every module-internal package type-checked so far (as a
// root or as a dependency), sorted by import path. The interprocedural
// engine uses this as call-graph context so that paths through helper
// packages outside the linted surface are still visible.
func (l *Loader) Passes() []*Pass {
	out := make([]*Pass, 0, len(l.passes))
	for _, p := range l.passes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

// LoadFiles type-checks an explicit file set under a caller-chosen package
// path. Rules scope themselves by package path, so tests use synthetic
// paths (e.g. ".../internal/benchmarks/fixture") to exercise scoping.
// LoadFiles deliberately bypasses the pass cache: fixtures reuse the same
// synthetic path for different file sets.
func (l *Loader) LoadFiles(pkgpath string, paths ...string) (*Pass, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(pkgpath, files)
}

// check runs the type checker over one package's files.
func (l *Loader) check(pkgpath string, files []*ast.File) (*Pass, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(pkgpath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgpath, err)
	}
	return &Pass{Fset: l.Fset, PkgPath: pkgpath, Files: files, Pkg: pkg, Info: info}, nil
}

// loaderImporter resolves imports during type-checking: module-internal
// paths from source, everything else via the standard-library importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		// Build the full Pass (with types.Info), not just the bare
		// *types.Package: when the same package is later linted as a root,
		// LoadDir returns this Pass from the cache instead of checking it a
		// second time.
		dir := filepath.Join(l.RepoRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		files, _, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		pass, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.passes[path] = pass
		l.cache[path] = pass.Pkg
		return pass.Pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		l.cache[path] = pkg
	}
	return pkg, err
}
