package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module without
// shelling out to the go tool. Imports of the module itself are resolved
// from source relative to the repository root; standard-library imports go
// through the compiler's source importer. All type-checked packages are
// cached, so checking many packages in one process pays the (dominant)
// standard-library cost once.
type Loader struct {
	Fset *token.FileSet
	// RepoRoot is the directory containing go.mod.
	RepoRoot string
	// ModulePath is the module path declared in go.mod (e.g. "repro").
	ModulePath string

	std   types.Importer
	cache map[string]*types.Package
}

// NewLoader builds a Loader rooted at the module containing dir (dir or any
// of its ancestors must hold a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		RepoRoot:   root,
		ModulePath: modpath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and extracts the
// module path.
func findModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// pkgPathFor maps a directory inside the repository to its import path.
func (l *Loader) pkgPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.RepoRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.RepoRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the non-test .go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, []string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	return files, names, nil
}

// LoadDir parses and type-checks the package in dir, returning a Pass ready
// for rules to inspect. Directories with no non-test .go files return a nil
// Pass and no error.
func (l *Loader) LoadDir(dir string) (*Pass, error) {
	files, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkgpath, err := l.pkgPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.check(pkgpath, files)
}

// LoadFiles type-checks an explicit file set under a caller-chosen package
// path. Rules scope themselves by package path, so tests use synthetic
// paths (e.g. ".../internal/benchmarks/fixture") to exercise scoping.
func (l *Loader) LoadFiles(pkgpath string, paths ...string) (*Pass, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(pkgpath, files)
}

// check runs the type checker over one package's files.
func (l *Loader) check(pkgpath string, files []*ast.File) (*Pass, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(pkgpath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgpath, err)
	}
	return &Pass{Fset: l.Fset, PkgPath: pkgpath, Files: files, Pkg: pkg, Info: info}, nil
}

// loaderImporter resolves imports during type-checking: module-internal
// paths from source, everything else via the standard-library importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.RepoRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		files, _, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: li}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		l.cache[path] = pkg
	}
	return pkg, err
}
