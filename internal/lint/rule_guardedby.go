package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces comment-declared mutex invariants on struct fields.
// A field annotated
//
//	jobs map[string]*job //lint:guardedby mu
//
// (trailing or doc-comment form; the guard names a sibling sync.Mutex or
// sync.RWMutex field) may only be read or written in functions that lock
// the guard on the same receiver/base expression before the access.
//
// The check is deliberately flow-insensitive — any base.mu.Lock() or
// base.mu.RLock() call earlier in the same function body satisfies it —
// so it catches the real bug class (a field access with no locking
// discipline at all) without modeling unlock paths. Two structural
// exemptions keep it honest: functions whose name ends in "Locked"
// (helpers documented to run under the caller's lock) and constructors
// (functions named new*/New*, where the value is not yet shared).
type GuardedBy struct{}

func (GuardedBy) ID() string { return "guardedby" }

func (GuardedBy) Doc() string {
	return "fields annotated //lint:guardedby <mutex> must be accessed with the guard locked (exempt: *Locked helpers, new*/New* constructors)"
}

func (r GuardedBy) Check(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, v := range guardedByViolations(p) {
		out = append(out, p.diag(r.ID(), v.node,
			"%s is guarded by %q but accessed without %s.%s.Lock() in %s",
			v.field, v.guard, v.base, v.guard, v.fnName))
	}
	return out
}

// gbViolation is one unguarded access to a //lint:guardedby field. The
// taint engine also consumes these: an unsynchronized read is a
// goroutine-scheduling-dependent nondeterminism source.
type gbViolation struct {
	fn     *types.Func
	fnName string
	node   ast.Node
	field  string
	guard  string
	base   string
}

// collectGuardedFields parses //lint:guardedby annotations off struct
// field comments (trailing or doc form), mapping each annotated field
// object to its guard name.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	guarded := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guard
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the guard name from a field's comments.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "//lint:guardedby"); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// guardedByViolations finds every access to an annotated field with no
// preceding lock of its guard in the enclosing function.
func guardedByViolations(p *Pass) []gbViolation {
	guarded := collectGuardedFields(p)
	if len(guarded) == 0 {
		return nil
	}
	var out []gbViolation
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasSuffix(name, "Locked") ||
				strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New") {
				continue
			}
			fn, _ := p.Info.Defs[fd.Name].(*types.Func)
			locks := lockCalls(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := p.Info.Selections[sel]
				if selection == nil || selection.Kind() != types.FieldVal {
					return true
				}
				v, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				guard, ok := guarded[v]
				if !ok {
					return true
				}
				base := types.ExprString(sel.X)
				held := false
				for _, lc := range locks {
					if lc.base == base && lc.guard == guard && lc.pos < sel.Pos() {
						held = true
						break
					}
				}
				if !held {
					out = append(out, gbViolation{
						fn: fn, fnName: name, node: sel,
						field: v.Name(), guard: guard, base: base,
					})
				}
				return true
			})
		}
	}
	return out
}

// lockCall is one base.guard.Lock()/RLock() call site.
type lockCall struct {
	base  string
	guard string
	pos   token.Pos
}

// lockCalls collects every mutex acquisition in a function body.
func lockCalls(p *Pass, body *ast.BlockStmt) []lockCall {
	var out []lockCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (fun.Sel.Name != "Lock" && fun.Sel.Name != "RLock") {
			return true
		}
		guardSel, ok := fun.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		out = append(out, lockCall{
			base:  types.ExprString(guardSel.X),
			guard: guardSel.Sel.Name,
			pos:   call.Pos(),
		})
		return true
	})
	return out
}
