package lint

import (
	"go/ast"
	"go/types"
)

// perfPkgPath is the modeled profiler's import path.
const perfPkgPath = "repro/internal/perf"

// NoProfilerInPrepare enforces the core.Preparer contract inside benchmark
// packages: Prepare is the uninstrumented phase, so a Prepare method must not
// take a *perf.Profiler, touch a profiler-typed value, or reach into the perf
// package at all. Passing a literal nil profiler to shared constructors
// (e.g. NewSim(g, params, nil)) is the sanctioned way to reuse instrumented
// code paths during preparation and is not flagged.
type NoProfilerInPrepare struct{}

func (NoProfilerInPrepare) ID() string { return "no-profiler-in-prepare" }

func (NoProfilerInPrepare) Doc() string {
	return "benchmark Prepare methods must stay uninstrumented: no *perf.Profiler parameters, values, or perf package references"
}

// isProfilerType reports whether t is perf.Profiler or *perf.Profiler.
func isProfilerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Profiler" && obj.Pkg() != nil && obj.Pkg().Path() == perfPkgPath
}

func (r NoProfilerInPrepare) Check(p *Pass) []Diagnostic {
	if !isBenchmarkPkg(p.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Prepare" {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if tv, ok := p.Info.Types[field.Type]; ok && isProfilerType(tv.Type) {
					out = append(out, p.diag(r.ID(), field.Type,
						"Prepare takes a *perf.Profiler; preparation must stay uninstrumented (profile in Execute)"))
				}
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					if e.Name == "nil" {
						return true
					}
					if pkgNameOf(p, e) == perfPkgPath {
						out = append(out, p.diag(r.ID(), e,
							"perf package referenced inside Prepare; preparation must stay uninstrumented (profile in Execute)"))
						return true
					}
					if tv, ok := p.Info.Types[ast.Expr(e)]; ok && isProfilerType(tv.Type) {
						out = append(out, p.diag(r.ID(), e,
							"*perf.Profiler value %q used inside Prepare; preparation must stay uninstrumented (profile in Execute)", e.Name))
					}
				case *ast.SelectorExpr:
					// A profiler-typed selector (e.g. a struct field holding
					// the profiler) is one finding; don't descend and
					// re-report its components.
					if tv, ok := p.Info.Types[ast.Expr(e)]; ok && isProfilerType(tv.Type) {
						out = append(out, p.diag(r.ID(), e,
							"*perf.Profiler value used inside Prepare; preparation must stay uninstrumented (profile in Execute)"))
						return false
					}
				}
				return true
			})
		}
	}
	return out
}
