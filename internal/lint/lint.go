// Package lint is a static analyzer for the repository's determinism and
// harness invariants: replayable RNG, no wall-clock reads outside the
// timing packages, no map-iteration-order dependence in anything that
// feeds a report or a checksum, no goroutines inside benchmark kernels,
// pure-compute imports in benchmark packages, no silently discarded
// checksum folds, and uninstrumented benchmark Prepare methods (the
// prepared-workload contract of core.Preparer).
//
// The analyzer is stdlib-only (go/parser, go/ast, go/types, go/token).
// Each invariant is a Rule; rules receive a fully type-checked Pass and
// report Diagnostics. A finding can be suppressed — explicitly and
// auditably — with a comment on the flagged line or the line above it:
//
//	//lint:allow <rule-id> <reason>
//
// The reason is mandatory; an allow comment without one is ignored.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	RuleID  string         `json:"rule"`
	Message string         `json:"message"`
}

// String renders the canonical "file:line: rule-id: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.RuleID, d.Message)
}

// Pass is one type-checked package presented to rules.
type Pass struct {
	Fset    *token.FileSet
	PkgPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// diag builds a Diagnostic at n's position.
func (p *Pass) diag(ruleID string, n ast.Node, format string, args ...any) Diagnostic {
	pos := p.Fset.Position(n.Pos())
	return Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		RuleID:  ruleID,
		Message: fmt.Sprintf(format, args...),
	}
}

// Rule checks one invariant over a package.
type Rule interface {
	// ID is the stable identifier used in diagnostics and allow comments.
	ID() string
	// Doc is a one-line description for -rules listings and documentation.
	Doc() string
	// Check inspects the package and returns every violation found.
	Check(p *Pass) []Diagnostic
}

// DefaultRules returns the full rule set in a stable order.
func DefaultRules() []Rule {
	return []Rule{
		NoGlobalRand{},
		NoWallClock{},
		NoMapOrderDependence{},
		NoGoroutinesInKernels{},
		ForbiddenImports{},
		ChecksumDiscipline{},
		NoProfilerInPrepare{},
	}
}

// Lint runs rules over the pass, drops suppressed findings, and returns
// the rest sorted by position.
func Lint(p *Pass, rules []Rule) []Diagnostic {
	allows := collectAllows(p)
	var out []Diagnostic
	for _, r := range rules {
		for _, d := range r.Check(p) {
			if allows.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].RuleID < out[j].RuleID
	})
	return out
}

// allowKey identifies one allow grant: a rule on a line of a file.
type allowKey struct {
	file   string
	line   int
	ruleID string
}

type allowSet map[allowKey]bool

// collectAllows parses every "//lint:allow <rule-id> <reason>" comment in
// the pass. A grant covers the comment's own line (trailing form) and the
// line below it (standalone form). Comments without a reason are ignored
// so that every suppression carries its justification.
func collectAllows(p *Pass) allowSet {
	set := allowSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					// Rule id but no reason (or nothing at all): not a
					// valid suppression.
					continue
				}
				pos := p.Fset.Position(c.Pos())
				set[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				set[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
			}
		}
	}
	return set
}

func (s allowSet) suppresses(d Diagnostic) bool {
	return s[allowKey{d.File, d.Line, d.RuleID}]
}

// --- shared helpers used by several rules ---

// isBenchmarkPkg reports whether pkgpath is a benchmark-kernel package
// (anything under internal/benchmarks).
func isBenchmarkPkg(pkgpath string) bool {
	return strings.Contains(pkgpath, "/internal/benchmarks")
}

// isTimingPkg reports whether pkgpath is allowed to read the wall clock:
// the harness (wall-time averaging) and the modeled profiler.
func isTimingPkg(pkgpath string) bool {
	return strings.HasSuffix(pkgpath, "/internal/harness") ||
		strings.HasSuffix(pkgpath, "/internal/perf")
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" if it is not a package qualifier.
func pkgNameOf(p *Pass, id *ast.Ident) string {
	if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// pkgCall matches a call of the form pkg.Fn(...) where pkg's import path
// is pkgpath, returning the function name.
func pkgCall(p *Pass, call *ast.CallExpr, pkgpath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkgNameOf(p, id) != pkgpath {
		return "", false
	}
	return sel.Sel.Name, true
}
