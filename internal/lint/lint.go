// Package lint is a static analyzer for the repository's determinism and
// concurrency invariants, organized as two rule families plus an
// interprocedural dataflow engine.
//
// The determinism family guards the measurement path syntactically:
// replayable RNG, no wall-clock reads outside the timing packages, no
// map-iteration-order dependence in anything that feeds a report or a
// checksum, no goroutines inside benchmark kernels, pure-compute imports
// in benchmark packages, no silently discarded checksum folds, and
// uninstrumented benchmark Prepare methods (the prepared-workload
// contract of core.Preparer).
//
// The concurrency family guards the invariants the multi-node service
// depends on: mutex-guarded struct fields accessed without their guard
// (declared with a //lint:guardedby <mutex> field comment), goroutines
// launched without propagating an in-scope context.Context, channel sends
// outside a select that can block shutdown, and spawned workers with no
// Wait/join evidence.
//
// On top of the per-package rules, the interprocedural engine (Program,
// NondeterministicTaint) builds a whole-surface call graph over the
// type-checked packages and taint-propagates nondeterminism sources (wall
// clock, global rand, map-order folds, env/hostname reads, unsynchronized
// guarded-field access) to report sinks — functions producing
// report.Measurement/Results/Suite values or checksums — reporting the
// full source-to-sink call chain.
//
// The analyzer is stdlib-only (go/parser, go/ast, go/types, go/token).
// Each invariant is a Rule (per package) or ProgramRule (whole program);
// rules receive fully type-checked input and report Diagnostics. A
// finding can be suppressed — explicitly and auditably — with a comment
// on the flagged line or the line above it:
//
//	//lint:allow <rule-id> <reason>
//
// The reason is mandatory; an allow comment without one is ignored. An
// allow that suppresses nothing is itself reported as stale-suppression.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	RuleID  string         `json:"rule"`
	Message string         `json:"message"`
}

// String renders the canonical "file:line: rule-id: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.RuleID, d.Message)
}

// Pass is one type-checked package presented to rules.
type Pass struct {
	Fset    *token.FileSet
	PkgPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// diag builds a Diagnostic at n's position.
func (p *Pass) diag(ruleID string, n ast.Node, format string, args ...any) Diagnostic {
	pos := p.Fset.Position(n.Pos())
	return Diagnostic{
		Pos:     pos,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		RuleID:  ruleID,
		Message: fmt.Sprintf(format, args...),
	}
}

// Rule checks one invariant over a package.
type Rule interface {
	// ID is the stable identifier used in diagnostics and allow comments.
	ID() string
	// Doc is a one-line description for -rules listings and documentation.
	Doc() string
	// Check inspects the package and returns every violation found.
	Check(p *Pass) []Diagnostic
}

// DefaultRules returns the full per-package rule set in a stable order:
// the determinism family first, then the concurrency-invariant family.
func DefaultRules() []Rule {
	return []Rule{
		NoGlobalRand{},
		NoWallClock{},
		NoMapOrderDependence{},
		NoGoroutinesInKernels{},
		ForbiddenImports{},
		ChecksumDiscipline{},
		NoProfilerInPrepare{},
		GuardedBy{},
		GoroutineContext{},
		BlockingSend{},
		WorkerJoin{},
	}
}

// Lint runs per-package rules over one pass, drops suppressed findings,
// flags stale suppressions, and returns the rest sorted by position. It is
// the single-package form of Program.Lint.
func Lint(p *Pass, rules []Rule) []Diagnostic {
	return NewProgram(p).Lint(rules, nil)
}

// sortDiagnostics orders diagnostics by file, line, column, rule id.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].RuleID < out[j].RuleID
	})
}

// StaleSuppressionID is the rule id under which unused or unknown
// //lint:allow comments are reported. It is emitted by the engine itself
// (not a Rule) and cannot be suppressed with another allow comment.
const StaleSuppressionID = "stale-suppression"

// allowKey identifies one allow grant: a rule on a line of a file.
type allowKey struct {
	file   string
	line   int
	ruleID string
}

// allowGrant is one parsed //lint:allow comment. used is set when the
// grant suppresses at least one diagnostic; surface marks grants from the
// linted packages (as opposed to call-graph context), which are the only
// ones eligible for stale reporting.
type allowGrant struct {
	pos     token.Position
	ruleID  string
	reason  string
	used    bool
	surface bool
}

// allowIndex holds every grant plus a by-(file,line,rule) lookup. One
// grant registers under two keys: the comment's own line (trailing form)
// and the line below it (standalone form).
type allowIndex struct {
	grants []*allowGrant
	byKey  map[allowKey]*allowGrant
}

// collectAllows parses every "//lint:allow <rule-id> <reason>" comment in
// the given passes. Comments without a reason are ignored so that every
// suppression carries its justification.
func collectAllows(surface, context []*Pass) *allowIndex {
	ai := &allowIndex{byKey: map[allowKey]*allowGrant{}}
	ai.add(surface, true)
	ai.add(context, false)
	return ai
}

func (ai *allowIndex) add(passes []*Pass, surface bool) {
	for _, p := range passes {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						// Rule id but no reason (or nothing at all): not a
						// valid suppression.
						continue
					}
					pos := p.Fset.Position(c.Pos())
					g := &allowGrant{
						pos:     pos,
						ruleID:  fields[0],
						reason:  strings.Join(fields[1:], " "),
						surface: surface,
					}
					ai.grants = append(ai.grants, g)
					ai.byKey[allowKey{pos.Filename, pos.Line, g.ruleID}] = g
					ai.byKey[allowKey{pos.Filename, pos.Line + 1, g.ruleID}] = g
				}
			}
		}
	}
}

func (ai *allowIndex) suppresses(d Diagnostic) bool {
	if d.RuleID == StaleSuppressionID {
		return false
	}
	g := ai.byKey[allowKey{d.File, d.Line, d.RuleID}]
	if g == nil {
		return false
	}
	g.used = true
	return true
}

// stale reports every surface grant that suppressed nothing. A grant whose
// rule id is unknown to the registry is always stale; a known rule id is
// only judged when that rule actually ran (fixture tests run one rule at a
// time and must not see stale findings for the others).
func (ai *allowIndex) stale(ran, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, g := range ai.grants {
		if g.used || !g.surface {
			continue
		}
		var msg string
		switch {
		case !known[g.ruleID]:
			msg = fmt.Sprintf("//lint:allow names unknown rule %q; remove or fix the suppression", g.ruleID)
		case ran[g.ruleID]:
			msg = fmt.Sprintf("//lint:allow %s (%s) matches no finding; remove the stale suppression", g.ruleID, g.reason)
		default:
			continue
		}
		out = append(out, Diagnostic{
			Pos:     g.pos,
			File:    g.pos.Filename,
			Line:    g.pos.Line,
			Col:     g.pos.Column,
			RuleID:  StaleSuppressionID,
			Message: msg,
		})
	}
	return out
}

// --- shared helpers used by several rules ---

// isBenchmarkPkg reports whether pkgpath is a benchmark-kernel package
// (anything under internal/benchmarks).
func isBenchmarkPkg(pkgpath string) bool {
	return strings.Contains(pkgpath, "/internal/benchmarks")
}

// isTimingPkg reports whether pkgpath is allowed to read the wall clock:
// the harness (wall-time averaging) and the modeled profiler.
func isTimingPkg(pkgpath string) bool {
	return strings.HasSuffix(pkgpath, "/internal/harness") ||
		strings.HasSuffix(pkgpath, "/internal/perf")
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" if it is not a package qualifier.
func pkgNameOf(p *Pass, id *ast.Ident) string {
	if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// pkgCall matches a call of the form pkg.Fn(...) where pkg's import path
// is pkgpath, returning the function name.
func pkgCall(p *Pass, call *ast.CallExpr, pkgpath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pkgNameOf(p, id) != pkgpath {
		return "", false
	}
	return sel.Sel.Name, true
}
