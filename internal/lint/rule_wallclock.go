package lint

import "go/ast"

// NoWallClock flags reads of the wall clock (time.Now, time.Since)
// outside internal/harness and internal/perf. Those two packages own all
// timing; a kernel or a stats routine that consults the clock produces
// output that can never be bit-identical across runs.
type NoWallClock struct{}

func (NoWallClock) ID() string { return "no-wall-clock" }

func (NoWallClock) Doc() string {
	return "only internal/harness and internal/perf may read the wall clock (time.Now/time.Since)"
}

func (r NoWallClock) Check(p *Pass) []Diagnostic {
	if isTimingPkg(p.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgCall(p, call, "time"); ok && (name == "Now" || name == "Since") {
				out = append(out, p.diag(r.ID(), call,
					"time.%s outside the timing packages; measurements belong to internal/harness and internal/perf", name))
			}
			return true
		})
	}
	return out
}
