package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SurfaceRoots are the module-relative trees the analyzer covers: every
// package whose behavior feeds measurements, statistics, or reports —
// including internal/service, whose cache keys and envelopes depend on the
// same determinism guarantees. internal/perf is deliberately absent — it
// owns the wall clock — and the CLIs and examples are I/O by nature.
var SurfaceRoots = []string{
	"internal/benchmarks",
	"internal/harness",
	"internal/stats",
	"internal/uarch",
	"internal/fdo",
	"internal/service",
	"internal/sweep",
	"internal/cluster",
}

// SurfaceDirs walks the analyzed trees under root, returning every
// directory (module-relative, slash-separated, sorted) holding non-test Go
// files. testdata directories are skipped, as the go tool does.
func SurfaceDirs(root string) ([]string, error) {
	var dirs []string
	for _, sr := range SurfaceRoots {
		base := filepath.Join(root, filepath.FromSlash(sr))
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) && path == base {
					return filepath.SkipDir
				}
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" || (strings.HasPrefix(d.Name(), ".") && path != base) {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					rel, err := filepath.Rel(root, path)
					if err != nil {
						return err
					}
					dirs = append(dirs, filepath.ToSlash(rel))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// SelectDirs expands go-style package patterns ("./...", "internal/stats",
// "internal/benchmarks/...") into the sorted subset of the surface they
// match. Patterns outside the surface select nothing.
func SelectDirs(root string, patterns []string) ([]string, error) {
	all, err := SurfaceDirs(root)
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		switch {
		case pat == "..." || pat == "":
			for _, d := range all {
				keep[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			for _, d := range all {
				if d == prefix || strings.HasPrefix(d, prefix+"/") {
					keep[d] = true
				}
			}
		default:
			for _, d := range all {
				if d == pat {
					keep[d] = true
				}
			}
		}
	}
	out := make([]string, 0, len(keep))
	for d := range keep {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}
