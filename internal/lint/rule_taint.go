package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NondeterministicTaint is the interprocedural dataflow engine: it builds
// the whole-program call graph, marks every function that touches a
// nondeterminism source, propagates that taint caller-ward through the
// graph, and reports any path that reaches a report sink — a function
// producing or consuming report.Measurement/Results/Suite values or a
// checksum. Each diagnostic sits on the source call itself (so a
// //lint:allow on that line is the suppression point) and carries the
// full sink-to-source call chain.
//
// Sources: wall-clock reads (time.Now/Since — sanctioned inside the
// timing packages, which own wall time), global math/rand draws,
// environment/host identity reads (os.Getenv & friends), map-iteration-
// order dependence (the same detector the per-function rule uses), and
// unsynchronized reads of //lint:guardedby fields (goroutine-scheduling-
// dependent values).
//
// Propagation is over static call edges only; dynamic calls (interface
// methods, function values) end the walk. That makes the rule sound on
// the paths it reports and quiet on the ones it cannot see, which is the
// right bias for a gate that must stay clean.
type NondeterministicTaint struct{}

func (NondeterministicTaint) ID() string { return "nondeterministic-taint" }

func (NondeterministicTaint) Doc() string {
	return "no call path may carry a nondeterminism source (clock, global rand, map order, env, unsynchronized read) into a report/checksum sink"
}

// sourceRef is one nondeterminism source occurrence inside a function.
type sourceRef struct {
	pos  token.Position
	desc string
}

func (r NondeterministicTaint) CheckProgram(prog *Program) []Diagnostic {
	g := prog.callGraphOnce()
	nodes := g.sortedNodes()

	// Per-pass guardedby violations, grouped by enclosing function.
	gbByFn := map[*types.Func][]sourceRef{}
	for _, p := range prog.allPasses() {
		for _, v := range guardedByViolations(p) {
			if v.fn != nil {
				gbByFn[v.fn] = append(gbByFn[v.fn], sourceRef{
					pos:  p.Fset.Position(v.node.Pos()),
					desc: fmt.Sprintf("unsynchronized read of guarded field %s", v.field),
				})
			}
		}
	}

	// Classify every node: sources it contains, sink shape if any.
	sources := map[*types.Func][]sourceRef{}
	for _, n := range nodes {
		refs := taintSourcesIn(n.pass, n.decl)
		refs = append(refs, gbByFn[n.fn]...)
		if len(refs) > 0 {
			sources[n.fn] = refs
		}
	}

	// Multi-source BFS caller-ward: dist[f] = hops from f down to the
	// nearest tainted function. FIFO order makes the distances exact
	// regardless of within-level ordering.
	dist := map[*types.Func]int{}
	var queue []*types.Func
	for _, n := range nodes {
		if _, tainted := sources[n.fn]; tainted {
			dist[n.fn] = 0
			queue = append(queue, n.fn)
		}
	}
	rev := g.callersOf()
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		for _, caller := range rev[cur] {
			if _, seen := dist[caller]; !seen {
				dist[caller] = dist[cur] + 1
				queue = append(queue, caller)
			}
		}
	}

	// Walk the sinks in source order; for each tainted sink, rebuild the
	// chain down to a source and report at the source position. One
	// diagnostic per source position — the shortest chain wins.
	type finding struct {
		d     Diagnostic
		hops  int
		order int
	}
	best := map[token.Position]finding{}
	order := 0
	for _, n := range nodes {
		sink := sinkShape(n.fn)
		if sink == "" {
			continue
		}
		d, tainted := dist[n.fn]
		if !tainted {
			continue
		}
		chain := []string{n.fn.Name()}
		cur := n.fn
		for d > 0 {
			var next *types.Func
			for _, e := range g.calls[cur] {
				if dc, ok := dist[e.callee]; ok && dc == d-1 {
					next = e.callee
					break
				}
			}
			if next == nil {
				break
			}
			chain = append(chain, next.Name())
			cur, d = next, d-1
		}
		refs := sources[cur]
		if len(refs) == 0 {
			continue
		}
		src := refs[0]
		for _, ref := range refs[1:] {
			if ref.pos.Filename < src.pos.Filename ||
				(ref.pos.Filename == src.pos.Filename && ref.pos.Offset < src.pos.Offset) {
				src = ref
			}
		}
		f := finding{
			d: Diagnostic{
				Pos:    src.pos,
				File:   src.pos.Filename,
				Line:   src.pos.Line,
				Col:    src.pos.Column,
				RuleID: r.ID(),
				Message: fmt.Sprintf("%s reaches %s (%s); call chain: %s",
					src.desc, n.fn.Name(), sink, strings.Join(chain, " → ")),
			},
			hops:  len(chain),
			order: order,
		}
		order++
		if prev, ok := best[src.pos]; !ok || f.hops < prev.hops {
			best[src.pos] = f
		}
	}

	out := make([]Diagnostic, 0, len(best))
	for _, f := range best {
		out = append(out, f.d)
	}
	sortDiagnostics(out)
	return out
}

// envSources lists the os package reads that leak host identity or
// per-run environment into results.
var envSources = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
	"Hostname":  true,
	"Getpid":    true,
	"Getppid":   true,
}

// taintSourcesIn scans one function declaration for direct nondeterminism
// sources: clock reads (outside the timing packages), global rand draws,
// environment reads, and map-iteration-order dependence.
func taintSourcesIn(p *Pass, fd *ast.FuncDecl) []sourceRef {
	if fd.Body == nil {
		return nil
	}
	var refs []sourceRef
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := pkgCall(p, call, "time"); ok && (name == "Now" || name == "Since") && !isTimingPkg(p.PkgPath) {
			refs = append(refs, sourceRef{p.Fset.Position(call.Pos()), "wall-clock read time." + name})
		}
		for _, path := range []string{"math/rand", "math/rand/v2"} {
			if name, ok := pkgCall(p, call, path); ok && !globalRandAllowed[name] {
				refs = append(refs, sourceRef{p.Fset.Position(call.Pos()), "global rand." + name})
			}
		}
		if name, ok := pkgCall(p, call, "os"); ok && envSources[name] {
			refs = append(refs, sourceRef{p.Fset.Position(call.Pos()), "environment read os." + name})
		}
		return true
	})
	var mapDiags []Diagnostic
	NoMapOrderDependence{}.walkFunc(p, fd.Body, &mapDiags)
	for _, d := range mapDiags {
		refs = append(refs, sourceRef{d.Pos, "map-iteration-order dependence"})
	}
	return refs
}

// sinkShape classifies fn as a report sink, returning a short description
// ("" when fn is not a sink): its signature mentions a report envelope
// type, or it returns a checksum-typed value.
func sinkShape(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if name := reportTypeName(recv.Type()); name != "" {
			return "method on report." + name
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if name := reportTypeName(sig.Params().At(i).Type()); name != "" {
			return "takes report." + name
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if name := reportTypeName(t); name != "" {
			return "produces report." + name
		}
		if resultsContainChecksum(t) {
			return "produces a checksum"
		}
	}
	return ""
}

// reportTypeName unwraps pointers/slices and reports the type name when t
// is one of the report package's envelope types.
func reportTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/harness/report") {
		return ""
	}
	switch obj.Name() {
	case "Measurement", "Results", "Suite":
		return obj.Name()
	}
	return ""
}
