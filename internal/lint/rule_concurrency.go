package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineContext flags goroutines launched from a function that has a
// context.Context parameter when the goroutine body/arguments never
// mention a context. Such a goroutine cannot observe cancellation: it
// outlives request deadlines and blocks graceful drain. Functions without
// a context parameter are exempt — there is nothing to propagate.
// Benchmark packages are exempt too; no-goroutines-in-kernels already
// bans the goroutine itself.
type GoroutineContext struct{}

func (GoroutineContext) ID() string { return "goroutine-context" }

func (GoroutineContext) Doc() string {
	return "goroutines launched where a context.Context is in scope must propagate it (reference some ctx in the go statement)"
}

func (r GoroutineContext) Check(p *Pass) []Diagnostic {
	if isBenchmarkPkg(p.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasContextParam(p, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !mentionsContext(p, g.Call) {
					out = append(out, p.diag(r.ID(), g,
						"goroutine in %s ignores the context.Context in scope; propagate it so cancellation reaches the worker", fd.Name.Name))
				}
				return true
			})
		}
	}
	return out
}

// hasContextParam reports whether fd declares a context.Context parameter.
func hasContextParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// mentionsContext reports whether any expression under n has static type
// context.Context (the ctx being passed along or selected from).
func mentionsContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isContextType(p.Info.TypeOf(e)) {
			found = true
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// BlockingSend flags channel sends outside a select statement. An
// unconditional send blocks its goroutine forever if the receiver is gone
// — the classic shutdown hang. Two shapes are exempt: sends that are a
// select communication clause (they have an escape path), and sends on a
// channel made with non-zero capacity in the same function, where the
// local code bounds the outstanding sends.
type BlockingSend struct{}

func (BlockingSend) ID() string { return "blocking-send" }

func (BlockingSend) Doc() string {
	return "channel sends must sit in a select (or target a locally made buffered channel); a bare send can block shutdown forever"
}

func (r BlockingSend) Check(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inSelect := map[*ast.SendStmt]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectStmt); ok {
					for _, clause := range sel.Body.List {
						if cc, ok := clause.(*ast.CommClause); ok {
							if send, ok := cc.Comm.(*ast.SendStmt); ok {
								inSelect[send] = true
							}
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				send, ok := n.(*ast.SendStmt)
				if !ok || inSelect[send] {
					return true
				}
				if madeBufferedLocally(p, fd.Body, send.Chan) {
					return true
				}
				out = append(out, p.diag(r.ID(), send,
					"send on %s outside a select can block forever; add a select with a cancellation/default case or bound it with a buffered channel", types.ExprString(send.Chan)))
				return true
			})
		}
	}
	return out
}

// madeBufferedLocally reports whether ch resolves to a variable assigned
// make(chan T, n) with n not the constant 0, somewhere in the same
// function body.
func madeBufferedLocally(p *Pass, body *ast.BlockStmt, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || p.Info.ObjectOf(lid) != obj || i >= len(as.Rhs) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBufferedMake(p, call) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBufferedMake matches make(chan T, n) where n is not literally 0.
func isBufferedMake(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	if _, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
		return false
	}
	return true
}

// WorkerJoin flags goroutines with no join evidence: nothing in the
// spawning function waits for them (no WaitGroup Wait, no Add feeding a
// package-level Wait) and the goroutine signals no completion (no channel
// send, close, or WaitGroup Done in its body or its statically resolved
// target). An unjoined worker outlives Drain and leaks past shutdown.
type WorkerJoin struct{}

func (WorkerJoin) ID() string { return "worker-join" }

func (WorkerJoin) Doc() string {
	return "spawned goroutines need join evidence: a WaitGroup Wait/Add+Done or a completion signal (send/close) the spawner can observe"
}

func (r WorkerJoin) Check(p *Pass) []Diagnostic {
	if isBenchmarkPkg(p.PkgPath) {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	pkgHasWait := false
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if containsWaitGroupCall(p, fd.Body, "Wait") {
				pkgHasWait = true
			}
		}
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			waitsHere := containsWaitGroupCall(p, fd.Body, "Wait")
			addsHere := containsWaitGroupCall(p, fd.Body, "Add")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				switch {
				case waitsHere:
				case addsHere && pkgHasWait:
				case goroutineSignalsCompletion(p, g, decls):
				default:
					out = append(out, p.diag(r.ID(), g,
						"goroutine in %s is never joined: no WaitGroup Wait/Add and no completion signal; it can outlive shutdown", fd.Name.Name))
				}
				return true
			})
		}
	}
	return out
}

// goroutineSignalsCompletion reports whether the spawned code observably
// finishes: its function literal (or same-package static target) contains
// a channel send, a close, or a WaitGroup Done.
func goroutineSignalsCompletion(p *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	var body ast.Node
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if callee := staticCallee(p.Info, g.Call); callee != nil {
		if fd := decls[callee]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if isWaitGroupCallExpr(p, n, "Done") {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsWaitGroupCall reports whether body calls method (Wait/Add/Done)
// on a sync.WaitGroup value.
func containsWaitGroupCall(p *Pass, body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCallExpr(p, call, method) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupCallExpr matches x.<method>() where x is a sync.WaitGroup.
func isWaitGroupCallExpr(p *Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
