package lint

import "sync"

// Program is a set of type-checked packages analyzed together. Passes are
// the linted surface — rules report into them and their allow comments
// are audited for staleness. Context holds additional module packages
// (typically every dependency the Loader type-checked along the way);
// their function bodies feed the call graph so interprocedural paths
// through helper packages stay visible, but no diagnostics are filed
// against them for per-package rules.
//
// All passes must share one *token.FileSet and one type-checked object
// world (the Loader guarantees this via its pass cache): the call graph
// keys functions by *types.Func identity across package boundaries.
type Program struct {
	Passes  []*Pass
	Context []*Pass

	graphOnce sync.Once
	graph     *callGraph
}

// NewProgram builds a Program over the given surface passes.
func NewProgram(passes ...*Pass) *Program {
	return &Program{Passes: passes}
}

// WithContext attaches call-graph context packages (deduplicated against
// the surface by import path) and returns prog for chaining.
func (prog *Program) WithContext(passes ...*Pass) *Program {
	surface := map[string]bool{}
	for _, p := range prog.Passes {
		surface[p.PkgPath] = true
	}
	for _, p := range passes {
		if p == nil || surface[p.PkgPath] {
			continue
		}
		prog.Context = append(prog.Context, p)
	}
	return prog
}

// allPasses returns surface then context passes.
func (prog *Program) allPasses() []*Pass {
	out := make([]*Pass, 0, len(prog.Passes)+len(prog.Context))
	out = append(out, prog.Passes...)
	return append(out, prog.Context...)
}

// callGraphOnce builds (once) the whole-program call graph.
func (prog *Program) callGraphOnce() *callGraph {
	prog.graphOnce.Do(func() { prog.graph = buildCallGraph(prog.allPasses()) })
	return prog.graph
}

// ProgramRule checks one invariant over the whole program; its Check sees
// every pass at once, so it can follow calls across package boundaries.
type ProgramRule interface {
	// ID is the stable identifier used in diagnostics and allow comments.
	ID() string
	// Doc is a one-line description for -rules listings and documentation.
	Doc() string
	// CheckProgram inspects the program and returns every violation found.
	CheckProgram(prog *Program) []Diagnostic
}

// DefaultProgramRules returns the interprocedural rule set.
func DefaultProgramRules() []ProgramRule {
	return []ProgramRule{
		NondeterministicTaint{},
	}
}

// knownRuleIDs is the registry used to classify //lint:allow rule ids:
// every default rule (both kinds), the engine's own stale-suppression id,
// and whatever extra rules the caller passed.
func knownRuleIDs(rules []Rule, progRules []ProgramRule) map[string]bool {
	known := map[string]bool{StaleSuppressionID: true}
	for _, r := range DefaultRules() {
		known[r.ID()] = true
	}
	for _, r := range DefaultProgramRules() {
		known[r.ID()] = true
	}
	for _, r := range rules {
		known[r.ID()] = true
	}
	for _, r := range progRules {
		known[r.ID()] = true
	}
	return known
}

// Lint runs the per-package rules over every surface pass and the program
// rules over the whole program, drops suppressed findings, appends a
// stale-suppression diagnostic for every surface allow comment that
// suppressed nothing (restricted to rules that actually ran, so partial
// runs don't misreport), and returns everything sorted by position.
func (prog *Program) Lint(rules []Rule, progRules []ProgramRule) []Diagnostic {
	allows := collectAllows(prog.Passes, prog.Context)
	ran := map[string]bool{}
	var out []Diagnostic
	for _, p := range prog.Passes {
		for _, r := range rules {
			ran[r.ID()] = true
			for _, d := range r.Check(p) {
				if allows.suppresses(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	for _, r := range progRules {
		ran[r.ID()] = true
		for _, d := range r.CheckProgram(prog) {
			if allows.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, allows.stale(ran, knownRuleIDs(rules, progRules))...)
	sortDiagnostics(out)
	return out
}
