package lint

import "go/ast"

// NoGoroutinesInKernels flags `go` statements inside benchmark packages.
// Parallelism belongs to the harness Runner: goroutine scheduling inside a
// kernel reorders floating-point accumulation and makes the checksum
// depend on the interleaving, which breaks the bit-identical-results
// contract regardless of worker count.
type NoGoroutinesInKernels struct{}

func (NoGoroutinesInKernels) ID() string { return "no-goroutines-in-kernels" }

func (NoGoroutinesInKernels) Doc() string {
	return "benchmark kernels must be single-threaded; parallelism belongs to the harness Runner"
}

func (r NoGoroutinesInKernels) Check(p *Pass) []Diagnostic {
	if !isBenchmarkPkg(p.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, p.diag(r.ID(), g,
					"go statement in a benchmark kernel; scheduling reorders accumulation and breaks run-to-run determinism"))
			}
			return true
		})
	}
	return out
}
