package lint

import (
	"strconv"
	"strings"
)

// ForbiddenImports flags benchmark packages that import the outside world.
// Kernels must stay pure compute: no filesystem, no processes, no network,
// no unsafe — their only inputs are the seeded workload parameters, and
// their only output is the checksum and modeled events.
type ForbiddenImports struct{}

func (ForbiddenImports) ID() string { return "forbidden-imports" }

func (ForbiddenImports) Doc() string {
	return "benchmark packages must stay pure compute: no os, os/exec, net, or unsafe imports"
}

// forbiddenInKernels lists exact import paths and prefixes banned in
// benchmark packages.
var forbiddenInKernels = []string{"os", "os/exec", "net", "unsafe"}

func forbiddenImport(path string) bool {
	for _, f := range forbiddenInKernels {
		if path == f || strings.HasPrefix(path, f+"/") {
			return true
		}
	}
	return false
}

func (r ForbiddenImports) Check(p *Pass) []Diagnostic {
	if !isBenchmarkPkg(p.PkgPath) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenImport(path) {
				out = append(out, p.diag(r.ID(), imp,
					"benchmark package imports %q; kernels are pure compute and may not touch the OS, network, or unsafe", path))
			}
		}
	}
	return out
}
