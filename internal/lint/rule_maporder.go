package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoMapOrderDependence flags loops that range over a map while building
// order-sensitive state declared outside the loop: appending to a slice
// (unless the slice is sorted afterwards in the same function), folding
// into a float or checksum accumulator, or writing output. Go randomizes
// map iteration order per run, so each of these produces run-to-run drift
// in reports, summary statistics, and checksums.
//
// Order-insensitive updates are permitted: writes keyed by the range
// variable (m[k] = v), integer sums, and bitwise-commutative folds.
type NoMapOrderDependence struct{}

func (NoMapOrderDependence) ID() string { return "no-map-order-dependence" }

func (NoMapOrderDependence) Doc() string {
	return "ranging over a map must not feed order-sensitive state (slice append without a later sort, float/checksum folds, output writes)"
}

func (r NoMapOrderDependence) Check(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.walkFunc(p, fd.Body, &out)
		}
	}
	return out
}

// walkFunc scans one function body, recursing into function literals so
// each closure is analyzed against its own body (the scope a post-loop
// sort could live in).
func (r NoMapOrderDependence) walkFunc(p *Pass, body *ast.BlockStmt, out *[]Diagnostic) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			r.walkFunc(p, n.Body, out)
			return false
		case *ast.RangeStmt:
			if isMapType(p.Info.TypeOf(n.X)) {
				r.checkMapRange(p, n, body, out)
			}
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body. funcBody is the enclosing
// function's body, searched for a sort call that launders an append.
func (r NoMapOrderDependence) checkMapRange(p *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, out *[]Diagnostic) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately by walkFunc
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			r.checkAssign(p, rs, funcBody, n, out)
		case *ast.CallExpr:
			r.checkOutputCall(p, rs, n, out)
		}
		return true
	})
}

// checkAssign classifies an assignment inside a map-range body.
func (r NoMapOrderDependence) checkAssign(p *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, as *ast.AssignStmt, out *[]Diagnostic) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	target, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		// Indexed writes (m[k] = v) are keyed by the range variable and
		// therefore order-independent; selector targets are rare enough
		// to leave to the ident rules below.
		return
	}
	obj := p.Info.ObjectOf(target)
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	t := p.Info.TypeOf(target)

	switch as.Tok {
	case token.ASSIGN:
		// s = append(s, ...) builds a slice in map order: fine only if the
		// slice is sorted later in the same function.
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isAppendOf(p, call, obj) {
			if !sortedAfter(p, funcBody, rs, obj) {
				*out = append(*out, p.diag(r.ID(), as,
					"%s is appended to in map iteration order and never sorted afterwards", obj.Name()))
			}
			return
		}
		// x = f(x, ...) or x = x*31 + v: a fold whose result depends on
		// visit order, unless it is a commutative integer update.
		if usesObject(p, as.Rhs[0], obj) && !commutativeUpdate(p, as.Rhs[0], obj, t) {
			*out = append(*out, p.diag(r.ID(), as,
				"%s is folded in map iteration order; iterate sorted keys instead", obj.Name()))
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Exact and commutative for integers, order-sensitive for floats
		// (rounding differs with accumulation order).
		if isFloat(t) {
			*out = append(*out, p.diag(r.ID(), as,
				"float %s accumulated in map iteration order; the rounded sum differs run to run", obj.Name()))
		}
	case token.QUO_ASSIGN, token.REM_ASSIGN:
		*out = append(*out, p.diag(r.ID(), as,
			"%s updated with a non-commutative operator in map iteration order", obj.Name()))
	}
}

// checkOutputCall flags writes (fmt.Fprint*, Builder/Writer methods) whose
// destination outlives the loop: emitted text would appear in map order.
func (r NoMapOrderDependence) checkOutputCall(p *Pass, rs *ast.RangeStmt, call *ast.CallExpr, out *[]Diagnostic) {
	if name, ok := pkgCall(p, call, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println":
			*out = append(*out, p.diag(r.ID(), call,
				"fmt.%s inside a map range writes output in map iteration order", name))
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && rootDeclaredOutside(p, call.Args[0], rs) {
				*out = append(*out, p.diag(r.ID(), call,
					"fmt.%s inside a map range writes output in map iteration order", name))
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if p.Info.Selections[sel] != nil && rootDeclaredOutside(p, sel.X, rs) {
			*out = append(*out, p.diag(r.ID(), call,
				"%s on a writer that outlives the loop emits output in map iteration order", sel.Sel.Name))
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node's span
// (e.g. a loop-local variable).
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// rootDeclaredOutside resolves an expression like &sb, w.out, or sb to its
// root identifier and reports whether that identifier was declared outside
// the range statement.
func rootDeclaredOutside(p *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := p.Info.ObjectOf(x)
			return obj != nil && !declaredWithin(obj, rs)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isAppendOf matches append(obj, ...).
func isAppendOf(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	return ok && p.Info.ObjectOf(first) == obj
}

// usesObject reports whether obj appears anywhere in e.
func usesObject(p *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// commutativeUpdate reports whether `x = rhs` is an order-independent
// self-update: an integer x combined with one other operand by +, |, &,
// or ^ at the top level (x + v, v ^ x, ...). Anything else — float math,
// nested folds like x*31 + v, or calls like x.Add(v) — is order-sensitive.
func commutativeUpdate(p *Pass, rhs ast.Expr, obj types.Object, t types.Type) bool {
	if isFloat(t) {
		return false
	}
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.OR, token.AND, token.XOR:
	default:
		return false
	}
	xIsObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && p.Info.ObjectOf(id) == obj
	}
	// Exactly one side is x itself, and x does not also hide in the other.
	switch {
	case xIsObj(bin.X):
		return !usesObject(p, bin.Y, obj)
	case xIsObj(bin.Y):
		return !usesObject(p, bin.X, obj)
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedAfter reports whether a sort.* or slices.Sort* call referencing
// obj appears after the range statement in the enclosing function body —
// the append-then-sort idiom that makes map-order appends deterministic.
func sortedAfter(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch pkgNameOf(p, id) {
		case "sort", "slices":
			for _, arg := range call.Args {
				if usesObject(p, arg, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
