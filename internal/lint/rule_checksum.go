package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChecksumDiscipline flags discarded results of checksum/hash helpers.
// The repo's checksum type (core.Checksum) is a value type whose Add*
// methods return the folded value: calling `c.AddUint64(v)` as a
// statement silently drops the fold, so the benchmark's output stops
// contributing to the checksum the harness verifies. The same applies to
// any function whose name marks it as a checksum/hash producer.
type ChecksumDiscipline struct{}

func (ChecksumDiscipline) ID() string { return "checksum-discipline" }

func (ChecksumDiscipline) Doc() string {
	return "results of checksum/hash helpers must be used (folded into the returned checksum), not discarded"
}

func (r ChecksumDiscipline) Check(p *Pass) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.AssignStmt:
				// _ = checksum(...) discards just as surely.
				if len(n.Rhs) == 1 && allBlank(n.Lhs) {
					call, _ = n.Rhs[0].(*ast.CallExpr)
				}
			}
			if call == nil {
				return true
			}
			if name, ok := checksumProducer(p, call); ok {
				out = append(out, p.diag(r.ID(), call,
					"result of %s is discarded; fold it into the checksum that Run returns", name))
			}
			return true
		})
	}
	return out
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// checksumProducer reports whether call yields a checksum: its result type
// is a named Checksum/Hash type, or its callee is named like a
// checksum/hash helper. Returns a display name for the diagnostic.
func checksumProducer(p *Pass, call *ast.CallExpr) (string, bool) {
	// A call with no results (e.g. a recomputeHash that mutates its
	// receiver) discards nothing.
	if tv, ok := p.Info.Types[call]; !ok || tv.IsVoid() {
		return "", false
	}
	name := calleeName(call)
	if t := p.Info.TypeOf(call); t != nil && resultsContainChecksum(t) {
		return name, true
	}
	lower := strings.ToLower(name)
	if strings.Contains(lower, "checksum") || strings.Contains(lower, "hash") || strings.Contains(lower, "digest") {
		return name, true
	}
	return "", false
}

// calleeName extracts the called function's name for the message.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return "call"
}

// resultsContainChecksum reports whether a call's result type (single or
// tuple) includes a named type whose name marks it as a checksum.
func resultsContainChecksum(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if resultsContainChecksum(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := strings.ToLower(named.Obj().Name())
	return strings.Contains(name, "checksum") || strings.Contains(name, "hash")
}
