package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness/report"
	"repro/internal/perf"
	"repro/internal/phase"
)

// runWorkloadSampled is the sampled-mode counterpart of runWorkload's
// repetition loop. Options.Reps counts total executions, as in exact mode,
// but they split into the sampled pipeline's roles: one profile pass
// (interval signatures, no probes), one warm pass (exact probing, counters
// discarded, simulator state checkpointed at the plan's restore points),
// and max(1, Reps-2) measure passes that restore checkpoints at dead→live
// edges and fully simulate only the plan's live intervals. WallSeconds is
// the mean of the measure passes alone — the steady-state cost of one more
// sampled measurement, which is the number the speedup claims are about —
// and every pass's checksum is cross-checked, so the benchmark's
// architectural execution is verified exact even though probe counters
// extrapolate.
func runWorkloadSampled(ctx context.Context, b core.Benchmark, w core.Workload, opts Options, p *perf.Profiler, pw core.PreparedWorkload) (report.Measurement, error) {
	name := fmt.Sprintf("%s/%s", b.Name(), w.WorkloadName())
	fail := func(stage string, err error) (report.Measurement, error) {
		return report.Measurement{}, fmt.Errorf("harness: %s: %s: %w", name, stage, err)
	}

	if err := ctx.Err(); err != nil {
		return report.Measurement{}, err
	}
	if err := p.BeginSampleProfile(opts.SampledInterval); err != nil {
		return fail("profile", err)
	}
	res, err := pw.Execute(p)
	if err != nil {
		return fail("profile", err)
	}
	checksum := res.Checksum
	sigs, err := p.FinishSampleProfile()
	if err != nil {
		return fail("profile", err)
	}
	plan, err := phase.BuildPlan(sigs, phase.Config{
		IntervalOps: opts.SampledInterval,
		Phases:      opts.SampledPhases,
	})
	if err != nil {
		return fail("plan", err)
	}

	if err := ctx.Err(); err != nil {
		return report.Measurement{}, err
	}
	p.Reset()
	if err := p.BeginSampleWarm(plan); err != nil {
		return fail("warm", err)
	}
	if res, err = pw.Execute(p); err != nil {
		return fail("warm", err)
	}
	if res.Checksum != checksum {
		return fail("warm", fmt.Errorf("nondeterministic checksum across passes"))
	}
	ckpts, err := p.FinishSampleWarm()
	if err != nil {
		return fail("warm", err)
	}

	var m report.Measurement
	measures := opts.Reps - 2
	if measures < 1 {
		measures = 1
	}
	for rep := 0; rep < measures; rep++ {
		if err := ctx.Err(); err != nil {
			return report.Measurement{}, err
		}
		p.Reset()
		if err := p.BeginSampleMeasure(plan, ckpts); err != nil {
			return fail("measure", err)
		}
		start := time.Now()
		if res, err = pw.Execute(p); err != nil {
			return report.Measurement{}, fmt.Errorf("harness: %s: measure rep %d: %w", name, rep, err)
		}
		wall := time.Since(start).Seconds()
		if res.Checksum != checksum {
			return fail("measure", fmt.Errorf("nondeterministic checksum across passes"))
		}
		rpt := p.Report()
		if rep == 0 {
			m = report.Measurement{
				Benchmark: b.Name(),
				Workload:  w.WorkloadName(),
				Kind:      w.WorkloadKind(),
				Checksum:  checksum,
				TopDown:   rpt.TopDown,
				Coverage:  rpt.Coverage,
				Cycles:    rpt.Cycles,
				Sampled:   true,
			}
			m.ModeledSeconds = perf.ModeledSeconds(rpt.Cycles)
		} else if m.Cycles != rpt.Cycles || m.TopDown != rpt.TopDown {
			return fail("measure", fmt.Errorf("nondeterministic profile across repetitions"))
		}
		m.WallSeconds += wall
	}
	m.WallSeconds /= float64(measures)
	return m, nil
}

// SampledComparison is the paired outcome of measuring one workload both
// exactly and phase-sampled: the two Reports, their per-counter error, the
// plan the sampled run used, and single-pass wall times (one exact
// execution vs one sampled measure pass — the steady-state costs).
type SampledComparison struct {
	Exact       perf.Report
	Sampled     perf.Report
	Diff        perf.ReportDiff
	Plan        *perf.SamplePlan
	ExactWall   float64
	SampledWall float64
}

// SampledDiff measures b/w exactly and phase-sampled on the same prepared
// input and returns both sides with their per-counter error. It is the
// engine of the `make diff-sampled` validator and albertabench's sampled
// rows. Options follow Normalize's sampled rules (Sampled is implied).
func SampledDiff(ctx context.Context, b core.Benchmark, w core.Workload, opts Options) (*SampledComparison, error) {
	opts.Sampled = true
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s/%s", b.Name(), w.WorkloadName())
	pw, err := core.PrepareOrRun(b, w)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: prepare: %w", name, err)
	}

	p := perf.New()
	start := time.Now()
	res, err := pw.Execute(p)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: exact: %w", name, err)
	}
	c := &SampledComparison{ExactWall: time.Since(start).Seconds(), Exact: p.Report()}
	checksum := res.Checksum

	p.Reset()
	if err := p.BeginSampleProfile(opts.SampledInterval); err != nil {
		return nil, fmt.Errorf("harness: %s: profile: %w", name, err)
	}
	if res, err = pw.Execute(p); err != nil {
		return nil, fmt.Errorf("harness: %s: profile: %w", name, err)
	}
	if res.Checksum != checksum {
		return nil, fmt.Errorf("harness: %s: profile: nondeterministic checksum across passes", name)
	}
	sigs, err := p.FinishSampleProfile()
	if err != nil {
		return nil, fmt.Errorf("harness: %s: profile: %w", name, err)
	}
	if c.Plan, err = phase.BuildPlan(sigs, phase.Config{
		IntervalOps: opts.SampledInterval,
		Phases:      opts.SampledPhases,
	}); err != nil {
		return nil, fmt.Errorf("harness: %s: plan: %w", name, err)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.Reset()
	if err := p.BeginSampleWarm(c.Plan); err != nil {
		return nil, fmt.Errorf("harness: %s: warm: %w", name, err)
	}
	if res, err = pw.Execute(p); err != nil {
		return nil, fmt.Errorf("harness: %s: warm: %w", name, err)
	}
	if res.Checksum != checksum {
		return nil, fmt.Errorf("harness: %s: warm: nondeterministic checksum across passes", name)
	}
	ckpts, err := p.FinishSampleWarm()
	if err != nil {
		return nil, fmt.Errorf("harness: %s: warm: %w", name, err)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.Reset()
	if err := p.BeginSampleMeasure(c.Plan, ckpts); err != nil {
		return nil, fmt.Errorf("harness: %s: measure: %w", name, err)
	}
	start = time.Now()
	if res, err = pw.Execute(p); err != nil {
		return nil, fmt.Errorf("harness: %s: measure: %w", name, err)
	}
	c.SampledWall = time.Since(start).Seconds()
	if res.Checksum != checksum {
		return nil, fmt.Errorf("harness: %s: measure: nondeterministic checksum across passes", name)
	}
	c.Sampled = p.Report()
	c.Diff = perf.ReportError(c.Exact, c.Sampled)
	return c, nil
}
