package report

import (
	"fmt"
	"sort"
	"strings"
)

// BenchmarkReport renders the per-benchmark report the Alberta Workloads
// distribution ships for every benchmark (Section V: "The reports
// distributed with the Alberta Workloads contain bar plots representing
// the mean and variance of the execution time of each workload", plus the
// top-down and method-coverage data).
func BenchmarkReport(name string, ms []Measurement) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Benchmark report: %s (%d measurement workloads)\n\n", name, len(ms))

	// Section 1: execution-time bar plot (modeled seconds).
	sb.WriteString("Execution time per workload (modeled):\n")
	maxT := 0.0
	for _, m := range ms {
		if m.ModeledSeconds > maxT {
			maxT = m.ModeledSeconds
		}
	}
	for _, m := range ms {
		bar := 0
		if maxT > 0 {
			bar = int(48 * m.ModeledSeconds / maxT)
		}
		fmt.Fprintf(&sb, "  %-26s %10.6fs |%s\n", m.Workload, m.ModeledSeconds, strings.Repeat("#", bar))
	}

	// Section 2: top-down per workload.
	sb.WriteString("\nTop-down classification per workload:\n")
	fmt.Fprintf(&sb, "  %-26s %9s %9s %9s %9s\n", "workload", "frontend", "backend", "badspec", "retiring")
	for _, m := range ms {
		fmt.Fprintf(&sb, "  %-26s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			m.Workload, m.TopDown.FrontEnd*100, m.TopDown.BackEnd*100,
			m.TopDown.BadSpec*100, m.TopDown.Retiring*100)
	}

	// Section 3: hottest methods per workload (top 3).
	sb.WriteString("\nHottest methods per workload:\n")
	for _, m := range ms {
		fmt.Fprintf(&sb, "  %-26s", m.Workload)
		for i, mc := range topMethods(m, 3) {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s %.0f%%", mc.name, mc.frac*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

type methodFrac struct {
	name string
	frac float64
}

// topMethods returns the n methods with the largest coverage.
func topMethods(m Measurement, n int) []methodFrac {
	out := make([]methodFrac, 0, len(m.Coverage))
	for name, frac := range m.Coverage {
		out = append(out, methodFrac{name, frac})
	}
	sort.Slice(out, rankedLess(out))
	if len(out) > n {
		out = out[:n]
	}
	return out
}
