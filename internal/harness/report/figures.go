package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// FigureSeries is one benchmark's per-workload top-down breakdown: the data
// behind Figure 1.
type FigureSeries struct {
	Benchmark string          `json:"benchmark"`
	Workloads []string        `json:"workloads"`
	Values    []stats.TopDown `json:"values"`
}

// Figure1 extracts the stacked top-down series for the requested
// benchmarks (the paper plots 523.xalancbmk_r and 557.xz_r).
func Figure1(results Results, benchmarks ...string) ([]FigureSeries, error) {
	var out []FigureSeries
	for _, name := range benchmarks {
		ms, ok := results[name]
		if !ok {
			return nil, fmt.Errorf("report: figure 1: no results for %s", name)
		}
		fs := FigureSeries{Benchmark: name}
		for _, m := range ms {
			fs.Workloads = append(fs.Workloads, m.Workload)
			fs.Values = append(fs.Values, m.TopDown)
		}
		out = append(out, fs)
	}
	return out, nil
}

// FormatFigure1 renders the per-workload stacked fractions as text bars.
func FormatFigure1(series []FigureSeries) string {
	var sb strings.Builder
	for _, fs := range series {
		fmt.Fprintf(&sb, "Figure 1 data: %s (per-workload top-down fractions)\n", fs.Benchmark)
		fmt.Fprintf(&sb, "%-26s %9s %9s %9s %9s\n", "workload", "frontend", "backend", "badspec", "retiring")
		for i, w := range fs.Workloads {
			v := fs.Values[i]
			fmt.Fprintf(&sb, "%-26s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
				w, v.FrontEnd*100, v.BackEnd*100, v.BadSpec*100, v.Retiring*100)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CoverageSeries is one benchmark's per-workload method coverage: the data
// behind Figure 2.
type CoverageSeries struct {
	Benchmark string   `json:"benchmark"`
	Workloads []string `json:"workloads"`
	// Methods lists the reported methods (top methods by mean coverage,
	// plus "others").
	Methods []string `json:"methods"`
	// Values[w][m] is workload w's fraction in Methods[m].
	Values [][]float64 `json:"values"`
}

// Figure2 extracts per-workload method coverage for the requested
// benchmarks (the paper plots 531.deepsjeng_r and 557.xz_r), keeping the
// topN methods by mean coverage and folding the rest into "others".
func Figure2(results Results, topN int, benchmarks ...string) ([]CoverageSeries, error) {
	var out []CoverageSeries
	for _, name := range benchmarks {
		ms, ok := results[name]
		if !ok {
			return nil, fmt.Errorf("report: figure 2: no results for %s", name)
		}
		// Rank methods by mean coverage across workloads.
		mean := map[string]float64{}
		for _, m := range ms {
			for meth, frac := range m.Coverage {
				mean[meth] += frac
			}
		}
		ranked := make([]methodFrac, 0, len(mean))
		for meth, v := range mean {
			ranked = append(ranked, methodFrac{meth, v})
		}
		sort.Slice(ranked, rankedLess(ranked))
		keep := map[string]bool{}
		cs := CoverageSeries{Benchmark: name}
		for i, r := range ranked {
			if i >= topN {
				break
			}
			keep[r.name] = true
			cs.Methods = append(cs.Methods, r.name)
		}
		cs.Methods = append(cs.Methods, "others")
		for _, m := range ms {
			cs.Workloads = append(cs.Workloads, m.Workload)
			row := make([]float64, len(cs.Methods))
			// Walk the coverage in sorted order so the "others" float sum
			// is identical run to run.
			others := 0.0
			for _, meth := range m.Coverage.SortedMethods() {
				frac := m.Coverage[meth]
				if keep[meth] {
					for k, kept := range cs.Methods {
						if kept == meth {
							row[k] = frac
						}
					}
				} else {
					others += frac
				}
			}
			row[len(row)-1] = others
			cs.Values = append(cs.Values, row)
		}
		out = append(out, cs)
	}
	return out, nil
}

// FormatFigure2 renders the coverage series as a table.
func FormatFigure2(series []CoverageSeries) string {
	var sb strings.Builder
	for _, cs := range series {
		fmt.Fprintf(&sb, "Figure 2 data: %s (per-workload method coverage)\n", cs.Benchmark)
		fmt.Fprintf(&sb, "%-26s", "workload")
		for _, m := range cs.Methods {
			fmt.Fprintf(&sb, " %14s", truncName(m, 14))
		}
		sb.WriteString("\n")
		for i, w := range cs.Workloads {
			fmt.Fprintf(&sb, "%-26s", w)
			for _, v := range cs.Values[i] {
				fmt.Fprintf(&sb, " %13.1f%%", v*100)
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
