package report

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func builderCell(bench, work string, cycles uint64) Measurement {
	return Measurement{
		Benchmark: bench, Workload: work, Kind: core.KindAlberta,
		Checksum: core.NewChecksum().AddString(bench).AddString(work).Value(),
		TopDown:  stats.TopDown{FrontEnd: 0.1, BackEnd: 0.4, BadSpec: 0.1, Retiring: 0.4},
		Cycles:   cycles,
		// WallSeconds varies run to run; the builder must ignore it.
		WallSeconds: float64(cycles),
	}
}

// TestBuilderOrderIndependent pins the streaming determinism contract:
// whatever order cells arrive in, the summary folds in plan-index order
// and is identical.
func TestBuilderOrderIndependent(t *testing.T) {
	cells := []Measurement{
		builderCell("b1", "w0", 100),
		builderCell("b1", "w1", 300),
		builderCell("b2", "w0", 50),
		builderCell("b1", "w2", 200),
	}
	inOrder := NewBuilder()
	for i, m := range cells {
		inOrder.Add(i, m)
	}
	shuffled := NewBuilder()
	for _, i := range []int{2, 0, 3, 1} {
		shuffled.Add(i, cells[i])
	}
	a, b := inOrder.Summaries(), shuffled.Summaries()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("summaries depend on arrival order:\n%+v\n%+v", a, b)
	}
	if len(a) != 2 || a[0].Benchmark != "b1" || a[0].Cells != 3 || a[1].Cells != 1 {
		t.Fatalf("summary shape: %+v", a)
	}
	if a[0].CyclesMin != 100 || a[0].CyclesMax != 300 || a[0].CyclesSum != 600 {
		t.Errorf("cycles fold: %+v", a[0])
	}
	if a[0].Kinds["alberta"] != 3 {
		t.Errorf("kind fold: %+v", a[0].Kinds)
	}
}

// TestBuilderChecksumSensitive: the per-benchmark checksum must move when
// any cell's result moves, and missing cells must not alias a complete
// set.
func TestBuilderChecksumSensitive(t *testing.T) {
	full := NewBuilder()
	full.Add(0, builderCell("b1", "w0", 100))
	full.Add(1, builderCell("b1", "w1", 100))
	mutated := NewBuilder()
	mutated.Add(0, builderCell("b1", "w0", 100))
	m := builderCell("b1", "w1", 100)
	m.Checksum++
	mutated.Add(1, m)
	if full.Summaries()[0].Checksum == mutated.Summaries()[0].Checksum {
		t.Error("checksum ignores a cell's result")
	}
	partial := NewBuilder()
	partial.Add(0, builderCell("b1", "w0", 100))
	if full.Summaries()[0].Checksum == partial.Summaries()[0].Checksum {
		t.Error("checksum ignores a missing cell")
	}
}
