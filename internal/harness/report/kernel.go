package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// KernelRow quantifies one of the paper's Section VII questions: "it would
// be nice to know if kernels created from SPEC benchmark suites ...
// actually represent the range of behaviours of the benchmarks when they
// are executed with multiple workloads". The computer-architecture practice
// the paper describes derives kernels from a single workload (usually the
// reference input); this analysis measures how far the other workloads'
// behaviour vectors sit from that single reference point.
type KernelRow struct {
	Benchmark string `json:"benchmark"`
	// Reference is the workload the kernel would be derived from.
	Reference string `json:"reference"`
	// MeanDistance and MaxDistance are the Euclidean distances between
	// the reference's top-down vector and every other workload's.
	MeanDistance float64 `json:"mean_distance"`
	MaxDistance  float64 `json:"max_distance"`
	// WorstWorkload is the workload farthest from the reference.
	WorstWorkload string `json:"worst_workload"`
}

// topDownVector embeds a measurement for distance computation.
func topDownVector(m Measurement) [4]float64 {
	return [4]float64{m.TopDown.FrontEnd, m.TopDown.BackEnd, m.TopDown.BadSpec, m.TopDown.Retiring}
}

func vecDistance(a, b [4]float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Kernels computes, per benchmark, how well the refrate workload (the
// kernel source) represents the full workload set. benchmarks is the
// input order — normally results.SortedBenchmarks(), computed once by the
// caller. Rows are sorted by descending maximum distance: the top rows
// are the benchmarks whose single-workload kernels would be least
// representative.
func Kernels(results Results, benchmarks []string) ([]KernelRow, error) {
	var rows []KernelRow
	for _, name := range benchmarks {
		ms := results[name]
		ref, ok := refrateOf(ms)
		if !ok {
			return nil, fmt.Errorf("report: kernel analysis: %s has no refrate workload", name)
		}
		refVec := topDownVector(ref)
		row := KernelRow{Benchmark: name, Reference: ref.Workload}
		n := 0
		for _, m := range ms {
			if m.Workload == ref.Workload {
				continue
			}
			d := vecDistance(refVec, topDownVector(m))
			row.MeanDistance += d
			if d > row.MaxDistance {
				row.MaxDistance = d
				row.WorstWorkload = m.Workload
			}
			n++
		}
		if n > 0 {
			row.MeanDistance /= float64(n)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MaxDistance != rows[j].MaxDistance {
			return rows[i].MaxDistance > rows[j].MaxDistance
		}
		return rows[i].Benchmark < rows[j].Benchmark
	})
	return rows, nil
}

// FormatKernelRows renders the analysis.
func FormatKernelRows(rows []KernelRow) string {
	var sb strings.Builder
	sb.WriteString("Kernel representativeness (distance of other workloads' top-down vectors\n")
	sb.WriteString("from the refrate workload a kernel would be derived from; larger = a\n")
	sb.WriteString("single-workload kernel misses more of the behaviour range):\n")
	fmt.Fprintf(&sb, "%-18s %10s %10s  %s\n", "benchmark", "mean-dist", "max-dist", "farthest workload")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %10.4f %10.4f  %s\n", r.Benchmark, r.MeanDistance, r.MaxDistance, r.WorstWorkload)
	}
	return sb.String()
}
