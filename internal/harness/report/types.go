package report

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// Measurement is the summarized observation of one workload (over the
// run's repetitions). Every field except WallSeconds is deterministic:
// bit-identical across runs, worker counts and event paths.
type Measurement struct {
	Benchmark string         `json:"benchmark"`
	Workload  string         `json:"workload"`
	Kind      core.Kind      `json:"kind"`
	Checksum  uint64         `json:"checksum"`
	TopDown   stats.TopDown  `json:"top_down"`
	Coverage  stats.Coverage `json:"coverage"`
	Cycles    uint64         `json:"cycles"`
	// ModeledSeconds is cycles at the modeled 3.4 GHz clock.
	ModeledSeconds float64 `json:"modeled_seconds"`
	// WallSeconds is the mean wall-clock run time of the repetitions. It
	// is the only field that may differ between runs (and between worker
	// counts); everything else is deterministic. In sampled mode it is the
	// mean of the measure passes alone — the steady-state repeat cost —
	// excluding the one-time profile and warm passes.
	WallSeconds float64 `json:"wall_seconds"`
	// Sampled marks a measurement taken by phase-sampled simulation:
	// probe-derived fields are extrapolated from representative intervals,
	// not exact. Exact measurements omit the key, so their envelopes are
	// byte-identical to schema version 1 before sampling existed.
	Sampled bool `json:"sampled,omitempty"`
}

// Results maps benchmark name to its per-workload measurements, in
// workload inventory order. It is the raw data every derived section is
// computed from (harness.SuiteResults is an alias of this type).
type Results map[string][]Measurement

// SortedBenchmarks returns the result keys in name order. The sort is
// recomputed on every call; code that needs the order more than once — a
// Build over several sections, a CLI invocation with several modes —
// should call it once and pass the slice down.
func (r Results) SortedBenchmarks() []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Assemble groups per-cell measurements into Results. It is the
// cell-addressable build path: a coordinator that resolves the cells of a
// job independently — from a cache, a local run, or a remote worker —
// passes them here in plan (inventory) order and gets back exactly the
// Results a monolithic Runner.Run would have produced, because each
// benchmark's slice preserves the input order and Results' map form
// carries no order of its own (consumers sort by name).
func Assemble(ms []Measurement) Results {
	r := Results{}
	for _, m := range ms {
		r[m.Benchmark] = append(r[m.Benchmark], m)
	}
	return r
}

// KindBreakdown counts workloads by kind for a benchmark's measurements
// (used by inventory reporting).
func KindBreakdown(ms []Measurement) map[core.Kind]int {
	out := map[core.Kind]int{}
	for _, m := range ms {
		out[m.Kind]++
	}
	return out
}

// refrateOf finds the refrate measurement in a benchmark's list.
func refrateOf(ms []Measurement) (Measurement, bool) {
	for _, m := range ms {
		if m.Kind == core.KindRefrate {
			return m, true
		}
	}
	return Measurement{}, false
}
