package report

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// Measurement is the summarized observation of one workload (over the
// run's repetitions). Every field except WallSeconds is deterministic:
// bit-identical across runs, worker counts and event paths.
type Measurement struct {
	Benchmark string         `json:"benchmark"`
	Workload  string         `json:"workload"`
	Kind      core.Kind      `json:"kind"`
	Checksum  uint64         `json:"checksum"`
	TopDown   stats.TopDown  `json:"top_down"`
	Coverage  stats.Coverage `json:"coverage"`
	Cycles    uint64         `json:"cycles"`
	// ModeledSeconds is cycles at the modeled 3.4 GHz clock.
	ModeledSeconds float64 `json:"modeled_seconds"`
	// WallSeconds is the mean wall-clock run time of the repetitions. It
	// is the only field that may differ between runs (and between worker
	// counts); everything else is deterministic.
	WallSeconds float64 `json:"wall_seconds"`
}

// Results maps benchmark name to its per-workload measurements, in
// workload inventory order. It is the raw data every derived section is
// computed from (harness.SuiteResults is an alias of this type).
type Results map[string][]Measurement

// SortedBenchmarks returns the result keys in name order. The sort is
// recomputed on every call; code that needs the order more than once — a
// Build over several sections, a CLI invocation with several modes —
// should call it once and pass the slice down.
func (r Results) SortedBenchmarks() []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// refrateOf finds the refrate measurement in a benchmark's list.
func refrateOf(ms []Measurement) (Measurement, bool) {
	for _, m := range ms {
		if m.Kind == core.KindRefrate {
			return m, true
		}
	}
	return Measurement{}, false
}
