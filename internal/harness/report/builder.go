package report

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// Row is the compact per-cell record a Builder retains: every
// deterministic scalar of a Measurement, without the Coverage map — the
// dominant payload. WallSeconds is excluded by design: a streaming
// summary must be bit-identical across worker counts and runs.
type Row struct {
	Benchmark string
	Workload  string
	Kind      core.Kind
	Checksum  uint64
	TopDown   stats.TopDown
	Cycles    uint64
}

// Builder is the streaming counterpart of Assemble: cells arrive one at a
// time, in any order — a parallel runner delivers completion order — and
// the summaries fold in plan-index order, so serial and parallel runs of
// the same plan summarize byte-identically. The Builder retains one
// compact Row per cell (a few dozen bytes) but never the Measurement
// itself, which is what lets a 10k-cell sweep hold O(workers)
// Measurements instead of O(cells).
type Builder struct {
	rows  map[int]Row
	total int
}

// NewBuilder returns an empty streaming builder.
func NewBuilder() *Builder {
	return &Builder{rows: map[int]Row{}}
}

// Add records the cell at plan position index. The Measurement is not
// retained; only the compact Row survives the call.
func (b *Builder) Add(index int, m Measurement) {
	b.rows[index] = Row{
		Benchmark: m.Benchmark,
		Workload:  m.Workload,
		Kind:      m.Kind,
		Checksum:  m.Checksum,
		TopDown:   m.TopDown,
		Cycles:    m.Cycles,
	}
	if index+1 > b.total {
		b.total = index + 1
	}
}

// Len is the number of cells recorded.
func (b *Builder) Len() int { return len(b.rows) }

// BenchSummary is one benchmark's deterministic fold over its cells.
type BenchSummary struct {
	Benchmark string `json:"benchmark"`
	Cells     int    `json:"cells"`
	// Kinds counts cells by workload kind, keyed by Kind.String().
	Kinds map[string]int `json:"kinds"`
	// Cycles aggregates modeled cycles over the cells.
	CyclesMin uint64 `json:"cycles_min"`
	CyclesMax uint64 `json:"cycles_max"`
	CyclesSum uint64 `json:"cycles_sum"`
	// TopDownMean is the per-field mean of the top-down fractions, folded
	// in plan order (so the float accumulation order is fixed).
	TopDownMean stats.TopDown `json:"top_down_mean"`
	// Checksum chains every cell's (workload, checksum) pair in plan
	// order — one value that pins the benchmark's whole result set.
	Checksum uint64 `json:"checksum"`
}

// Summaries folds the recorded rows into per-benchmark summaries, in
// benchmark name order. The fold visits cells in plan-index order, so the
// result is a pure function of the plan's cell set — never of completion
// order.
func (b *Builder) Summaries() []BenchSummary {
	type accum struct {
		s   BenchSummary
		sum stats.TopDown
		ck  core.Checksum
	}
	byBench := map[string]*accum{}
	for idx := 0; idx < b.total; idx++ {
		row, ok := b.rows[idx]
		if !ok {
			continue
		}
		a := byBench[row.Benchmark]
		if a == nil {
			a = &accum{s: BenchSummary{
				Benchmark: row.Benchmark,
				Kinds:     map[string]int{},
				CyclesMin: row.Cycles,
			}, ck: core.NewChecksum()}
			byBench[row.Benchmark] = a
		}
		a.s.Cells++
		a.s.Kinds[row.Kind.String()]++
		if row.Cycles < a.s.CyclesMin {
			a.s.CyclesMin = row.Cycles
		}
		if row.Cycles > a.s.CyclesMax {
			a.s.CyclesMax = row.Cycles
		}
		a.s.CyclesSum += row.Cycles
		a.sum.FrontEnd += row.TopDown.FrontEnd
		a.sum.BackEnd += row.TopDown.BackEnd
		a.sum.BadSpec += row.TopDown.BadSpec
		a.sum.Retiring += row.TopDown.Retiring
		a.ck = a.ck.AddString(row.Workload).AddUint64(row.Checksum)
	}
	names := make([]string, 0, len(byBench))
	for name := range byBench {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]BenchSummary, 0, len(names))
	for _, name := range names {
		a := byBench[name]
		n := float64(a.s.Cells)
		a.s.TopDownMean = stats.TopDown{
			FrontEnd: a.sum.FrontEnd / n,
			BackEnd:  a.sum.BackEnd / n,
			BadSpec:  a.sum.BadSpec / n,
			Retiring: a.sum.Retiring / n,
		}
		a.s.Checksum = a.ck.Value()
		out = append(out, a.s)
	}
	return out
}
