package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// fakeResults builds a small deterministic Results fixture with enough
// variation for every section builder.
func fakeResults() Results {
	mk := func(bench, w string, kind core.Kind, f, b float64, cycles uint64, cov stats.Coverage) Measurement {
		return Measurement{
			Benchmark: bench, Workload: w, Kind: kind,
			Checksum: 42,
			TopDown:  stats.TopDown{FrontEnd: f, BackEnd: b, BadSpec: 0.1, Retiring: 1 - f - b - 0.1},
			Coverage: cov,
			Cycles:   cycles, ModeledSeconds: float64(cycles) / 3.4e9,
			WallSeconds: 0.001,
		}
	}
	return Results{
		"901.alpha_r": {
			mk("901.alpha_r", "train", core.KindTrain, 0.2, 0.3, 1000, stats.Coverage{"a": 0.7, "b": 0.3}),
			mk("901.alpha_r", "refrate", core.KindRefrate, 0.25, 0.35, 2000, stats.Coverage{"a": 0.6, "b": 0.4}),
			mk("901.alpha_r", "alberta.x", core.KindAlberta, 0.3, 0.2, 1500, stats.Coverage{"a": 0.5, "b": 0.5}),
		},
		"902.beta_r": {
			mk("902.beta_r", "train", core.KindTrain, 0.15, 0.45, 3000, stats.Coverage{"c": 0.9, "d": 0.1}),
			mk("902.beta_r", "refrate", core.KindRefrate, 0.18, 0.4, 4000, stats.Coverage{"c": 0.8, "d": 0.2}),
		},
	}
}

func TestBuildAllSections(t *testing.T) {
	res := fakeResults()
	s, err := Build(res, RunConfig{Reps: 1, Stride: 1}, BuildOptions{Sections: AllSections()})
	if err != nil {
		t.Fatal(err)
	}
	if s.SchemaVersion != SchemaVersion {
		t.Errorf("schema_version = %d", s.SchemaVersion)
	}
	if len(s.Benchmarks) != 2 || s.Benchmarks[0] != "901.alpha_r" {
		t.Errorf("benchmarks = %v", s.Benchmarks)
	}
	if len(s.Table2) != 2 || s.Table2[0].Benchmark != "901.alpha_r" {
		t.Errorf("table2 = %+v", s.Table2)
	}
	if len(s.Table1) != len(PaperTableI) {
		t.Errorf("table1 rows = %d", len(s.Table1))
	}
	if len(s.Figure1) != 2 || len(s.Figure2) != 2 {
		t.Errorf("figures = %d/%d series", len(s.Figure1), len(s.Figure2))
	}
	if len(s.Kernels) != 2 {
		t.Errorf("kernels = %+v", s.Kernels)
	}
	if s.Measurements == nil {
		t.Error("measurements section missing")
	}
}

func TestBuildSectionSelection(t *testing.T) {
	res := fakeResults()
	s, err := Build(res, RunConfig{Reps: 1, Stride: 1}, BuildOptions{Sections: Sections{Table2: true}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Table2 == nil || s.Table1 != nil || s.Figure1 != nil || s.Figure2 != nil || s.Kernels != nil || s.Measurements != nil {
		t.Errorf("unexpected sections populated: %+v", s)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	res := fakeResults()
	var docs [][]byte
	for i := 0; i < 3; i++ {
		s, err := Build(res, RunConfig{Reps: 3, Stride: 1}, BuildOptions{Sections: AllSections()})
		if err != nil {
			t.Fatal(err)
		}
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, data)
	}
	if !bytes.Equal(docs[0], docs[1]) || !bytes.Equal(docs[1], docs[2]) {
		t.Error("Encode is not byte-deterministic for equal envelopes")
	}
	if !strings.Contains(string(docs[0]), "\"schema_version\": 1") {
		t.Errorf("missing schema_version in:\n%.200s", docs[0])
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	if _, err := Decode([]byte(`{"schema_version": 999}`)); err == nil {
		t.Error("wrong schema_version accepted")
	}
	s, err := Decode([]byte(`{"schema_version": 1, "benchmarks": ["x"]}`))
	if err != nil || len(s.Benchmarks) != 1 {
		t.Errorf("decode: %v %+v", err, s)
	}
}

func TestParseSections(t *testing.T) {
	all, err := ParseSections(nil)
	if err != nil || all != AllSections() {
		t.Errorf("empty list: %v %+v", err, all)
	}
	s, err := ParseSections([]string{"table2", "kernels"})
	if err != nil || !s.Table2 || !s.Kernels || s.Table1 || s.Measurements {
		t.Errorf("subset: %v %+v", err, s)
	}
	if _, err := ParseSections([]string{"nope"}); err == nil {
		t.Error("unknown section accepted")
	}
	names := AllSections().Names()
	want := []string{"measurements", "table1", "table2", "figure1", "figure2", "kernels"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestFigureBenchmarkRestriction(t *testing.T) {
	res := fakeResults()
	s, err := Build(res, RunConfig{}, BuildOptions{
		Sections:          Sections{Figure1: true, Figure2: true},
		Figure1Benchmarks: []string{"902.beta_r"},
		Figure2Benchmarks: []string{"901.alpha_r"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Figure1) != 1 || s.Figure1[0].Benchmark != "902.beta_r" {
		t.Errorf("figure1 = %+v", s.Figure1)
	}
	if len(s.Figure2) != 1 || s.Figure2[0].Benchmark != "901.alpha_r" {
		t.Errorf("figure2 = %+v", s.Figure2)
	}
	if _, err := Build(res, RunConfig{}, BuildOptions{
		Sections:          Sections{Figure1: true},
		Figure1Benchmarks: []string{"903.missing_r"},
	}); err == nil {
		t.Error("unknown figure benchmark accepted")
	}
}

func TestTopMethods(t *testing.T) {
	m := Measurement{Coverage: stats.Coverage{"a": 0.5, "b": 0.3, "c": 0.15, "d": 0.05}}
	top := topMethods(m, 2)
	if len(top) != 2 || top[0].name != "a" || top[1].name != "b" {
		t.Errorf("topMethods = %+v", top)
	}
	if got := topMethods(m, 10); len(got) != 4 {
		t.Errorf("over-request returns %d", len(got))
	}
}
