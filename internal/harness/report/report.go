// Package report is the result schema of the characterization system: the
// row and series types behind the paper's Table I, Table II, Figure 1 and
// Figure 2, the per-benchmark kernel-representativeness analysis, and the
// versioned Suite envelope that carries them between producers and
// consumers.
//
// Two frontends emit the envelope — `albertarun -json` for one-shot runs
// and the albertad service (internal/service) for cached, queued runs —
// and both produce the same document for the same benchmark × workload
// matrix, so results can be exchanged and compared across machines and
// across time (the "consistent and comparable evaluation" concern of the
// related work).
//
// Schema versioning policy: SchemaVersion identifies the JSON layout of
// Suite and everything reachable from it. Additive, backward-compatible
// changes (new optional fields, new sections) do not bump the version;
// any change that renames, removes or re-types an existing field does.
// Consumers reject documents whose schema_version they do not know.
package report

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion is the version of the Suite JSON layout emitted by this
// tree. See the package comment for the bump policy.
const SchemaVersion = 1

// RunConfig is the result-affecting subset of the harness run options,
// recorded in the envelope so a consumer knows how the measurements were
// taken. Scheduling knobs (worker counts, fail-fast, progress callbacks)
// are deliberately absent: they never change a deterministic field of the
// results, only wall-clock behaviour.
type RunConfig struct {
	// Reps is the number of repetitions each workload was executed.
	// It affects only the WallSeconds averaging, never the modeled fields.
	Reps int `json:"reps"`
	// Stride is the profiler's event-sampling stride (1 = exact).
	Stride int `json:"stride"`
	// IncludeTest records whether SPEC test inputs were measured.
	IncludeTest bool `json:"include_test"`
	// Reference records whether the retained pre-optimization event path
	// was used (bit-identical modeled fields, different wall time).
	Reference bool `json:"reference"`
	// Sampled records whether measurements were taken by phase-sampled
	// simulation; SampledInterval and SampledPhases are its profiling
	// interval (retired ops) and cluster count. All three are omitted from
	// exact envelopes, keeping them byte-identical to pre-sampling schema
	// version 1.
	Sampled         bool   `json:"sampled,omitempty"`
	SampledInterval uint64 `json:"sampled_interval,omitempty"`
	SampledPhases   int    `json:"sampled_phases,omitempty"`
}

// Sections selects which derived sections Build computes for a Suite.
// Measurements is the raw per-workload data; the rest are derived views.
type Sections struct {
	Measurements bool
	Table1       bool
	Table2       bool
	Figure1      bool
	Figure2      bool
	Kernels      bool
}

// AllSections enables everything.
func AllSections() Sections {
	return Sections{Measurements: true, Table1: true, Table2: true, Figure1: true, Figure2: true, Kernels: true}
}

// Names returns the enabled section names in canonical order (the order
// used by cache keys and the HTTP API).
func (s Sections) Names() []string {
	var out []string
	for _, n := range sectionOrder {
		if *n.field(&s) {
			out = append(out, n.name)
		}
	}
	return out
}

// sectionOrder maps canonical section names to Sections fields.
var sectionOrder = []struct {
	name  string
	field func(*Sections) *bool
}{
	{"measurements", func(s *Sections) *bool { return &s.Measurements }},
	{"table1", func(s *Sections) *bool { return &s.Table1 }},
	{"table2", func(s *Sections) *bool { return &s.Table2 }},
	{"figure1", func(s *Sections) *bool { return &s.Figure1 }},
	{"figure2", func(s *Sections) *bool { return &s.Figure2 }},
	{"kernels", func(s *Sections) *bool { return &s.Kernels }},
}

// ParseSections builds a Sections from canonical names; unknown names are
// an error. An empty list selects everything.
func ParseSections(names []string) (Sections, error) {
	if len(names) == 0 {
		return AllSections(), nil
	}
	var s Sections
	for _, name := range names {
		found := false
		for _, n := range sectionOrder {
			if n.name == name {
				*n.field(&s) = true
				found = true
				break
			}
		}
		if !found {
			return Sections{}, fmt.Errorf("report: unknown section %q", name)
		}
	}
	return s, nil
}

// Suite is the versioned envelope every characterization result travels
// in: the raw measurements plus the derived tables and figures, under a
// schema_version consumers can dispatch on. Field order (and therefore
// the marshaled byte layout) is part of the schema: Encode output for
// equal envelopes is byte-identical, which the service's result cache
// relies on.
type Suite struct {
	SchemaVersion int      `json:"schema_version"`
	Benchmarks    []string `json:"benchmarks"`
	Config        RunConfig `json:"config"`

	Measurements Results          `json:"measurements,omitempty"`
	Table1       []TableIRow      `json:"table1,omitempty"`
	Table2       []TableIIRow     `json:"table2,omitempty"`
	Figure1      []FigureSeries   `json:"figure1,omitempty"`
	Figure2      []CoverageSeries `json:"figure2,omitempty"`
	Kernels      []KernelRow      `json:"kernels,omitempty"`
}

// BuildOptions configure Build beyond the section selection.
type BuildOptions struct {
	Sections Sections
	// Figure1Benchmarks / Figure2Benchmarks restrict the figure series;
	// nil means every benchmark in the results (the service default). The
	// albertarun frontend passes the paper's plotted benchmarks here.
	Figure1Benchmarks []string
	Figure2Benchmarks []string
	// Figure2TopN is the number of named methods before the "others" fold;
	// zero means 6, matching the paper's plots.
	Figure2TopN int
}

// Build assembles a Suite envelope from run results. The benchmark name
// order is computed once and shared by every section builder.
func Build(results Results, cfg RunConfig, o BuildOptions) (*Suite, error) {
	sorted := results.SortedBenchmarks()
	s := &Suite{SchemaVersion: SchemaVersion, Benchmarks: sorted, Config: cfg}
	if o.Sections.Measurements {
		s.Measurements = results
	}
	if o.Sections.Table1 {
		s.Table1 = TableI(results)
	}
	if o.Sections.Table2 {
		rows, err := TableII(results, sorted)
		if err != nil {
			return nil, err
		}
		s.Table2 = rows
	}
	if o.Sections.Figure1 {
		series, err := Figure1(results, benchmarksOr(o.Figure1Benchmarks, sorted)...)
		if err != nil {
			return nil, err
		}
		s.Figure1 = series
	}
	if o.Sections.Figure2 {
		topN := o.Figure2TopN
		if topN <= 0 {
			topN = 6
		}
		series, err := Figure2(results, topN, benchmarksOr(o.Figure2Benchmarks, sorted)...)
		if err != nil {
			return nil, err
		}
		s.Figure2 = series
	}
	if o.Sections.Kernels {
		rows, err := Kernels(results, sorted)
		if err != nil {
			return nil, err
		}
		s.Kernels = rows
	}
	return s, nil
}

func benchmarksOr(explicit, all []string) []string {
	if len(explicit) > 0 {
		return explicit
	}
	return all
}

// Encode marshals the envelope in its canonical form: two-space indented
// JSON with a trailing newline. Struct fields marshal in declaration
// order and map keys sort, so equal envelopes encode to equal bytes.
func (s *Suite) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses an envelope, rejecting documents from a different schema
// version.
func Decode(data []byte) (*Suite, error) {
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	if s.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("report: unsupported schema_version %d (want %d)", s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}
