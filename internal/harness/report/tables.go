package report

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// TableIIRow is one benchmark's line of Table II: workload count, geometric
// mean and standard deviation of the four top-down categories, the
// variation scores μg(V) and μg(M), and the refrate time.
type TableIIRow struct {
	Benchmark     string                `json:"benchmark"`
	Workloads     int                   `json:"workloads"`
	TopDown       stats.TopDownSummary  `json:"top_down"`
	Coverage      stats.CoverageSummary `json:"coverage"`
	RefrateTimeS  float64               `json:"refrate_modeled_seconds"`
	RefrateCycles uint64                `json:"refrate_cycles"`
}

// TableII summarizes suite results into the paper's Table II rows.
// benchmarks is the row order — normally results.SortedBenchmarks(),
// computed once by the caller and shared with the other builders.
func TableII(results Results, benchmarks []string) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, name := range benchmarks {
		ms := results[name]
		if len(ms) == 0 {
			continue
		}
		var obs []stats.TopDown
		var covs []stats.Coverage
		for _, m := range ms {
			obs = append(obs, m.TopDown)
			covs = append(covs, m.Coverage)
		}
		td, err := stats.SummarizeTopDown(obs)
		if err != nil {
			return nil, fmt.Errorf("report: table II %s: %w", name, err)
		}
		cov, err := stats.SummarizeCoverage(covs, stats.DefaultCoverageOptions())
		if err != nil {
			return nil, fmt.Errorf("report: table II %s coverage: %w", name, err)
		}
		row := TableIIRow{
			Benchmark: name,
			Workloads: len(ms),
			TopDown:   td,
			Coverage:  cov,
		}
		if ref, ok := refrateOf(ms); ok {
			row.RefrateTimeS = ref.ModeledSeconds
			row.RefrateCycles = ref.Cycles
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableII renders rows in the paper's column layout (percentages for
// the category means; σg dimensionless).
func FormatTableII(rows []TableIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table II: workload sensitivity summary (modeled hardware)\n")
	fmt.Fprintf(&sb, "%-17s %3s | %6s %5s | %6s %5s | %6s %5s | %6s %5s | %6s %6s | %10s\n",
		"Benchmark", "#w",
		"f%", "σg", "b%", "σg", "s%", "σg", "r%", "σg",
		"μg(V)", "μg(M)", "refrate(s)")
	sb.WriteString(strings.Repeat("-", 118) + "\n")
	for _, r := range rows {
		td := r.TopDown
		fmt.Fprintf(&sb, "%-17s %3d | %6.1f %5.2f | %6.1f %5.2f | %6.1f %5.2f | %6.1f %5.2f | %6.2f %6.1f | %10.4f\n",
			r.Benchmark, r.Workloads,
			td.FrontEnd.GeoMean*100, td.FrontEnd.GeoStd,
			td.BackEnd.GeoMean*100, td.BackEnd.GeoStd,
			td.BadSpec.GeoMean*100, td.BadSpec.GeoStd,
			td.Retiring.GeoMean*100, td.Retiring.GeoStd,
			td.Score, r.Coverage.Score, r.RefrateTimeS)
	}
	return sb.String()
}

// PaperTableI holds the published Table I values (seconds on the i7-6700K
// SPEC submissions) for the INT suite; used to render the historical
// comparison next to this reproduction's modeled refrate times.
var PaperTableI = []struct {
	Area     string
	Name2017 string
	Name2006 string
	Time2017 float64
	Time2006 float64
}{
	{"Perl interpreter", "500.perlbench_r", "400.perlbench", 542, 425},
	{"Compiler", "502.gcc_r", "403.gcc", 518, 346},
	{"Route planning", "505.mcf_r", "429.mcf", 633, 333},
	{"Discrete event simulation", "520.omnetpp_r", "471.omnetpp", 787, 483},
	{"SML to HTML conversion", "523.xalancbmk_r", "483.xalancbmk", 323, 221},
	{"Video compression", "525.x264_r", "464.h264ref", 379, 575},
	{"AI: alpha-beta tree search", "531.deepsjeng_r", "458.sjeng", 373, 562},
	{"AI: Sudoku recursive solution", "548.exchange2_r", "", 498, 0},
	{"Data compression", "557.xz_r", "401.bzip2", 532, 681},
	{"AI: Go game playing", "541.leela_r", "445.gobmk", 586, 506},
}

// TableIRow is one line of the reproduced Table I.
type TableIRow struct {
	Area      string  `json:"area"`
	Name      string  `json:"name"`
	Paper2017 float64 `json:"paper_2017_seconds"`
	Paper2006 float64 `json:"paper_2006_seconds"`
	// MeasuredS is this reproduction's modeled refrate time.
	MeasuredS float64 `json:"modeled_seconds"`
}

// TableI builds the historical comparison with this run's measured column.
// Rows follow the paper's fixed order, so no benchmark ordering is needed.
func TableI(results Results) []TableIRow {
	var rows []TableIRow
	for _, e := range PaperTableI {
		row := TableIRow{Area: e.Area, Name: e.Name2017, Paper2017: e.Time2017, Paper2006: e.Time2006}
		if ms, ok := results[e.Name2017]; ok {
			if ref, ok := refrateOf(ms); ok {
				row.MeasuredS = ref.ModeledSeconds
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTableI renders the Table I reproduction, including the arithmetic
// averages reported in the paper's last line.
func FormatTableI(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("Table I: SPEC CPU 2006 → 2017 INT evolution (paper times) + modeled reproduction\n")
	fmt.Fprintf(&sb, "%-30s %-17s %10s %10s %12s\n",
		"Application Area", "SPEC 2017", "2017 (s)", "2006 (s)", "modeled (s)")
	sb.WriteString(strings.Repeat("-", 84) + "\n")
	var sum17, sum06, sumM float64
	var n17, n06, nM int
	for _, r := range rows {
		p06 := "-"
		if r.Paper2006 > 0 {
			p06 = fmt.Sprintf("%10.0f", r.Paper2006)
			sum06 += r.Paper2006
			n06++
		}
		meas := "-"
		if r.MeasuredS > 0 {
			meas = fmt.Sprintf("%12.4f", r.MeasuredS)
			sumM += r.MeasuredS
			nM++
		}
		sum17 += r.Paper2017
		n17++
		fmt.Fprintf(&sb, "%-30s %-17s %10.0f %10s %12s\n", r.Area, r.Name, r.Paper2017, p06, meas)
	}
	sb.WriteString(strings.Repeat("-", 84) + "\n")
	avg := func(s float64, n int) float64 {
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	fmt.Fprintf(&sb, "%-30s %-17s %10.0f %10.0f %12.4f\n",
		"Arithmetic Average of Times", "", avg(sum17, n17), avg(sum06, n06), avg(sumM, nM))
	return sb.String()
}

// rankedLess orders method/value pairs by descending value, name-breaking
// ties; use as sort.Slice(ranked, rankedLess(ranked)). Shared by Figure 2
// and the per-benchmark report.
func rankedLess(ranked []methodFrac) func(i, j int) bool {
	return func(i, j int) bool {
		if ranked[i].frac != ranked[j].frac {
			return ranked[i].frac > ranked[j].frac
		}
		return ranked[i].name < ranked[j].name
	}
}
